/// Example: porting a CUDA application with hipify — the §2.1 workflow.
///
/// A small CUDA source file is translated to HIP, the report is reviewed
/// (including the "outdated CUDA syntax" cases the paper flags as the
/// manual-review exceptions), and the same workload is then executed
/// through the runtime under both API flavors to confirm parity.
///
/// Build & run:  ./build/examples/port_a_cuda_app

#include <cstdio>

#include "apps/shoc/shoc.hpp"
#include "hip/hipify.hpp"
#include "support/stats.hpp"

using namespace exa;

namespace {

constexpr const char* kCudaSource = R"(#include <cuda_runtime.h>
#include "cuda_runtime.h"

// Legacy molecular-dynamics force driver (CUDA, circa 2015).
extern __global__ void lj_forces(const float4* pos, float4* force, int n);

int run_step(const float4* host_pos, float4* host_force, int n,
             cudaStream_t stream) {
  float4 *dpos, *dforce;
  cudaMalloc((void**)&dpos, n * sizeof(float4));
  cudaMalloc((void**)&dforce, n * sizeof(float4));
  cudaMemcpyAsync(dpos, host_pos, n * sizeof(float4),
                  cudaMemcpyHostToDevice, stream);
  lj_forces<<<(n + 127) / 128, 128, 0, stream>>>(dpos, dforce, n);
  cudaError_t err = cudaGetLastError();
  if (err != cudaSuccess) return -1;
  cudaMemcpyAsync(host_force, dforce, n * sizeof(float4),
                  cudaMemcpyDeviceToHost, stream);
  cudaThreadSynchronize();  // pre-CUDA-4.0 style: flagged by the tool
  cudaFree(dpos);
  cudaFree(dforce);
  return 0;
}
)";

}  // namespace

int main() {
  std::printf("Step 1: hipify the CUDA source\n");
  std::printf("------------------------------\n");
  const auto report = hip::hipify::translate(kCudaSource);
  std::printf("%s\n", report.output.c_str());
  std::printf("replacements: %d (launches converted: %d)\n",
              report.replacements, report.launches_converted);
  for (const auto& [name, count] : report.by_identifier) {
    std::printf("  %-28s x%d\n", name.c_str(), count);
  }
  if (!report.warnings.empty()) {
    std::printf("\nmanual review needed (the paper: 'the primary exception "
                "being code that used outdated CUDA syntax'):\n");
    for (const auto& w : report.warnings) std::printf("  ! %s\n", w.c_str());
  }
  for (const auto& u : report.unrecognized) {
    std::printf("  ? unrecognized: %s\n", u.c_str());
  }

  std::printf("\nStep 2: validate parity on the V100 model (the Figure 1 "
              "experiment)\n");
  std::printf("----------------------------------------------------------\n");
  hip::Runtime::instance().configure(arch::v100(), 1);
  const auto points =
      apps::shoc::compare_hip_vs_cuda(apps::shoc::SizeClass::kSmall, 42);
  std::vector<double> ratios;
  for (const auto& p : points) {
    std::printf("  %-18s HIP/CUDA = %.4f\n",
                apps::shoc::to_string(p.id).c_str(), p.ratio_with_transfer);
    ratios.push_back(p.ratio_with_transfer);
  }
  std::printf("\n  geometric mean: %.4f -> the port costs essentially "
              "nothing.\n",
              support::geomean(ratios));
  return 0;
}
