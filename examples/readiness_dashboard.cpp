/// Example: the COE readiness dashboard (§5-§6).
///
/// Registers the paper's application portfolio, records baseline and
/// target measurements the way the COE Management Council reviews did,
/// and renders the readiness state: Table 1, the early-access platform
/// assessment, and per-application target tracking.
///
/// Build & run:  ./build/examples/readiness_dashboard

#include <cstdio>

#include "apps/coast/apsp.hpp"
#include "apps/gamess/rimp2.hpp"
#include "apps/lsms/kkr.hpp"
#include "apps/nuccor/ccd.hpp"
#include "coe/readiness.hpp"
#include "coe/registry.hpp"

using namespace exa;

int main() {
  std::printf("Frontier Center of Excellence readiness dashboard\n\n");

  coe::Registry registry = coe::Registry::paper_applications();

  // Record FOM measurements from the mini-app models (per-GPU basis;
  // one MI250X module = two GCD devices).
  {
    const double v100 =
        apps::gamess::simulate_fragment_time(arch::v100(), 40, 160, 700, true);
    const double mi250x = apps::gamess::simulate_fragment_time(
                              arch::mi250x_gcd(), 40, 160, 700, true) / 2.0;
    registry.find("GAMESS")
        ->add_measurement({"Summit", 2020, 1.0 / v100, "V100 baseline"})
        .add_measurement({"Frontier", 2023, 1.0 / mi250x, "tuned MI250X"})
        .set_phase(coe::ReadinessPhase::kReady);
  }
  {
    const auto v100 = apps::lsms::simulate_atom_solve(
        arch::v100(), 113, 32, apps::lsms::SolverPath::kBlockInversion, true);
    const auto gcd = apps::lsms::simulate_atom_solve(
        arch::mi250x_gcd(), 113, 32, apps::lsms::SolverPath::kLibraryLu, true);
    registry.find("LSMS")
        ->add_measurement({"Summit", 2020, 1.0 / v100.total(), ""})
        .add_measurement({"Frontier", 2023, 2.0 / gcd.total(), ""})
        .set_phase(coe::ReadinessPhase::kReady);
  }
  {
    const double v100 =
        apps::nuccor::simulate_ccd_iteration_time(arch::v100(), 60, 20);
    const double gcd =
        apps::nuccor::simulate_ccd_iteration_time(arch::mi250x_gcd(), 60, 20);
    registry.find("NuCCOR")
        ->add_measurement({"Summit", 2020, 1.0 / v100, ""})
        .add_measurement({"Frontier", 2023, 2.0 / gcd, ""})
        .set_phase(coe::ReadinessPhase::kReady);
  }
  registry.find("E3SM")->set_phase(coe::ReadinessPhase::kPerformance);

  std::printf("%s\n", registry.table1_motifs().render().c_str());
  std::printf("%s\n",
              registry.table2_speedups("Summit", "Frontier").render().c_str());
  std::printf("%s\n", coe::early_access_table().render().c_str());

  std::printf("Per-application status:\n");
  for (const auto& app : registry.applications()) {
    const auto s = app.speedup("Summit", "Frontier");
    std::printf("  %-8s phase: %-16s target %.1fx  %s\n", app.name().c_str(),
                coe::to_string(app.phase()).c_str(), app.target_speedup(),
                s.has_value()
                    ? (std::string("measured ") +
                       support::Table::cell(*s, 1) + "x" +
                       (app.met_target("Summit", "Frontier") ? "  [target met]"
                                                             : ""))
                          .c_str()
                    : "awaiting challenge-problem runs");
  }
  return 0;
}
