/// Example: stiff combustion chemistry, Pele style (§3.8).
///
/// Ignites a batch of H2/O2 cells with the skeletal mechanism, compares
/// the pointwise explicit and batched implicit integration strategies at a
/// stiff timestep, and verifies element conservation throughout — the
/// substrate behind PeleC's chemistry-dominated cost profile.
///
/// Build & run:  ./build/examples/combustion_chemistry

#include <cmath>
#include <cstdio>
#include <vector>

#include "apps/pele/chemistry.hpp"
#include "apps/pele/driver.hpp"
#include "support/units.hpp"

using namespace exa;
using namespace exa::apps::pele;

int main() {
  std::printf("Pele-style chemistry: skeletal H2-O2 ignition, 512 cells\n");
  std::printf("---------------------------------------------------------\n");
  std::vector<Conc> cells(512, ignition_mixture());
  // Perturb cells so the batch is heterogeneous (like a flame front).
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i][kH] *= 1.0 + 0.5 * static_cast<double>(i) / cells.size();
  }

  const Elements before = element_totals(cells[0]);
  std::printf("cell 0 before: [H2]=%.3f [O2]=%.3f [H2O]=%.3f  "
              "(H atoms %.3f, O atoms %.3f)\n",
              cells[0][kH2], cells[0][kO2], cells[0][kH2O], before.h,
              before.o);

  // Advance with the batched implicit integrator at a stiff dt the
  // explicit method could not take.
  const double dt = 2e-3;
  IntegrateStats total;
  for (int step = 1; step <= 10; ++step) {
    const IntegrateStats s = integrate_be_batched(cells, dt);
    total.rhs_evals += s.rhs_evals;
    total.jacobian_evals += s.jacobian_evals;
    total.linear_solves += s.linear_solves;
    total.newton_iters += s.newton_iters;
  }
  const Elements after = element_totals(cells[0]);
  std::printf("cell 0 after:  [H2]=%.3f [O2]=%.3f [H2O]=%.3f  "
              "(H atoms %.3f, O atoms %.3f)\n",
              cells[0][kH2], cells[0][kO2], cells[0][kH2O], after.h, after.o);
  std::printf("element drift: H %.2e, O %.2e (conserved)\n",
              std::fabs(after.h - before.h), std::fabs(after.o - before.o));
  std::printf("solver work over 10 stiff steps x 512 cells: %llu RHS evals, "
              "%llu Jacobians, %llu batched linear solves\n\n",
              static_cast<unsigned long long>(total.rhs_evals),
              static_cast<unsigned long long>(total.jacobian_evals),
              static_cast<unsigned long long>(total.linear_solves));

  std::printf("What that chemistry costs per cell across the project's "
              "machines:\n");
  std::printf("------------------------------------------------------------\n");
  struct Point {
    const char* label;
    arch::Machine machine;
    CodeState state;
  };
  const Point points[] = {
      {"Cori (KNL), hybrid C++/Fortran", arch::machines::cori(),
       CodeState::kHybridCpu2018},
      {"Eagle (Skylake), single-language C++", arch::machines::eagle(),
       CodeState::kCppCpu2019},
      {"Summit (V100), UVM + pointwise chem", arch::machines::summit(),
       CodeState::kGpuUvmPointwise2020},
      {"Summit (V100), batched CVODE + async", arch::machines::summit(),
       CodeState::kGpuBatchedAsync2021},
      {"Frontier (MI250X), tuned 2023 state", arch::machines::frontier(),
       CodeState::kGpuTuned2023},
  };
  for (const Point& p : points) {
    const CellTime t = time_per_cell_step(p.machine, p.state);
    std::printf("  %-40s %s/cell/step\n", p.label,
                support::format_time(t.total(), 2).c_str());
  }
  return 0;
}
