/// Example: a small pseudo-spectral turbulence solve, GESTS style (§3.3).
///
/// Runs a real distributed 3-D FFT (slab decomposition, explicit alltoall
/// transposes) on a Taylor-Green-like initial field, applies spectral
/// viscous decay for a few steps, verifies energy behaves, and then asks
/// the machine models what the same solve costs at exascale sizes.
///
/// Build & run:  ./build/examples/turbulence_dns

#include <cmath>
#include <complex>
#include <cstdio>
#include <numbers>
#include <vector>

#include "apps/gests/psdns.hpp"
#include "support/units.hpp"

using namespace exa;
using apps::gests::Decomposition;
using ml::zcomplex;

namespace {

std::vector<zcomplex> taylor_green(std::size_t n) {
  std::vector<zcomplex> u(n * n * n);
  const double k = 2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t z = 0; z < n; ++z) {
        u[(x * n + y) * n + z] = {std::sin(k * x) * std::cos(k * y) *
                                      std::cos(k * z),
                                  0.0};
      }
    }
  }
  return u;
}

double energy(const std::vector<zcomplex>& u) {
  double e = 0.0;
  for (const auto& v : u) e += std::norm(v);
  return e;
}

}  // namespace

int main() {
  std::printf("GESTS-style pseudo-spectral decay, N=32, 8 slab ranks\n");
  std::printf("-----------------------------------------------------\n");
  const std::size_t n = 32;
  apps::gests::SlabField field(taylor_green(n), n, 8);

  const double e0 = energy(field.gather());
  std::printf("initial kinetic energy: %.6f\n", e0);

  // Spectral viscous decay: u_k <- u_k * exp(-nu k^2 dt), done in k-space
  // between a forward and inverse distributed transform each step.
  const double nu = 5e-3;
  const double dt = 0.05;
  for (int step = 1; step <= 5; ++step) {
    field.fft3d(false);
    auto hat = field.gather();
    const double two_pi = 2.0 * std::numbers::pi;
    auto kof = [&](std::size_t i) {
      long k = static_cast<long>(i);
      if (k >= static_cast<long>(n / 2)) k -= static_cast<long>(n);
      return two_pi * static_cast<double>(k);
    };
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t z = 0; z < n; ++z) {
          const double k2 =
              kof(x) * kof(x) + kof(y) * kof(y) + kof(z) * kof(z);
          hat[(x * n + y) * n + z] *= std::exp(-nu * k2 * dt);
        }
      }
    }
    // Transform the damped spectrum back (single-brick inverse here; the
    // production path would keep the distributed layout end to end) and
    // redistribute for the next step's distributed forward transform.
    ml::fft3d(hat, n, n, n, true);
    field = apps::gests::SlabField(hat, n, 8);
    std::printf("step %d: energy = %.6f (monotone decay expected)\n", step,
                energy(field.gather()) / static_cast<double>(n * n * n));
  }
  const double e_final = energy(field.gather());
  std::printf("energy ratio final/initial: %.4f (< 1)\n\n", e_final / e0);

  std::printf("Now the exascale question: the same solver at paper scale\n");
  std::printf("----------------------------------------------------------\n");
  for (const auto& [name, machine, grid, nodes] :
       {std::tuple<const char*, arch::Machine, std::size_t, int>{
            "Summit, N=16384 (2019 INCITE-class)", arch::machines::summit(),
            16384, 2730},
        std::tuple<const char*, arch::Machine, std::size_t, int>{
            "Frontier, N=32768 (CAAR target)", arch::machines::frontier(),
            32768, 4096}}) {
    apps::gests::PsdnsConfig cfg;
    cfg.n = grid;
    cfg.decomp = Decomposition::kSlabs;
    const auto t = apps::gests::step_time(machine, nodes, cfg);
    std::printf("  %-38s t/step = %8s   FOM = %s grid-points/s\n", name,
                support::format_time(t.total(), 2).c_str(),
                support::format_si(t.fom, 3).c_str());
  }
  return 0;
}
