/// Quickstart: the exaready public API in one tour.
///
/// 1. Pick a machine model from the catalog.
/// 2. Configure the simulated HIP runtime for its GPU.
/// 3. Write a kernel: real host math + a cost profile.
/// 4. Launch it, move data, time it with events — the HIP API you know.
/// 5. Ask "what would this cost on Frontier vs Summit?"
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "arch/machine.hpp"
#include "hip/hip_runtime.hpp"
#include "support/units.hpp"

using namespace exa;

/// Abort on a failed HIP call — the standard porting idiom (and what
/// exa-lint's unchecked-hip-call rule asks for).
#define HIP_CHECK(expr)                                          \
  do {                                                           \
    const hip::hipError_t hip_check_err_ = (expr);               \
    if (hip_check_err_ != hip::hipSuccess) {                     \
      std::fprintf(stderr, "%s failed: %s\n", #expr,             \
                   hip::hipGetErrorString(hip_check_err_));      \
      std::exit(1);                                              \
    }                                                            \
  } while (0)

namespace {

/// A saxpy kernel: y = a*x + y over n floats. The body does the real
/// arithmetic; the profile tells the performance model what one launch
/// costs (flops, HBM traffic, register pressure).
hip::Kernel make_saxpy(std::vector<float>& x, std::vector<float>& y,
                       float a) {
  hip::Kernel k;
  const double n = static_cast<double>(x.size());
  k.profile.name = "saxpy";
  k.profile.add_flops(arch::DType::kF32, 2.0 * n);
  k.profile.bytes_read = 8.0 * n;
  k.profile.bytes_written = 4.0 * n;
  k.profile.registers_per_thread = 24;
  k.body = [&x, &y, a](const hip::KernelContext& ctx) {
    if (ctx.global_id < x.size()) {
      y[ctx.global_id] = a * x[ctx.global_id] + y[ctx.global_id];
    }
  };
  return k;
}

void run_on(const arch::Machine& machine) {
  // One device of this machine's GPU architecture.
  hip::Runtime::instance().configure(*machine.node.gpu, 1);

  constexpr std::size_t kN = 1 << 20;
  std::vector<float> x(kN, 1.0f);
  std::vector<float> y(kN, 2.0f);

  // Device buffers are real allocations (kernels execute functionally);
  // capacity and latency are charged against the modeled GPU. The raw
  // hipMalloc/hipFree pairs are the point of this tour (the pfw layer's
  // pooled views are the production path), so the raw-device-alloc lint
  // rule is suppressed here deliberately.
  void* dx = nullptr;
  void* dy = nullptr;
  if (hip::hipMalloc(&dx, kN * sizeof(float)) !=  // exa-lint: allow(raw-device-alloc)
          hip::hipSuccess ||
      hip::hipMalloc(&dy, kN * sizeof(float)) !=  // exa-lint: allow(raw-device-alloc)
          hip::hipSuccess) {
    std::fprintf(stderr, "allocation failed\n");
    return;
  }
  HIP_CHECK(hip::hipMemcpy(dx, x.data(), kN * sizeof(float),
                           hip::hipMemcpyHostToDevice));
  HIP_CHECK(hip::hipMemcpy(dy, y.data(), kN * sizeof(float),
                           hip::hipMemcpyHostToDevice));

  hip::hipEvent_t start = nullptr;
  hip::hipEvent_t stop = nullptr;
  HIP_CHECK(hip::hipEventCreate(&start));
  HIP_CHECK(hip::hipEventCreate(&stop));

  hip::Kernel saxpy = make_saxpy(x, y, 3.0f);
  HIP_CHECK(hip::hipEventRecord(start, nullptr));
  for (int i = 0; i < 10; ++i) {
    HIP_CHECK(hip::hipLaunchKernelEXA(saxpy, sim::LaunchConfig{kN / 256, 256}));
  }
  HIP_CHECK(hip::hipEventRecord(stop, nullptr));
  HIP_CHECK(hip::hipEventSynchronize(stop));

  float ms = 0.0f;
  HIP_CHECK(hip::hipEventElapsedTime(&ms, start, stop));
  const double bytes = 10.0 * 12.0 * static_cast<double>(kN);
  const double ms_d = static_cast<double>(ms);
  std::printf("  %-28s 10x saxpy(%zu): %7.3f ms  -> %s effective\n",
              machine.node.gpu->name.c_str(), kN, ms_d,
              support::format_rate(bytes / (ms_d * 1e-3), "B").c_str());
  std::printf("      result check: y[0] = %.1f (expect 32.0 after 10 "
              "iterations)\n",
              static_cast<double>(y[0]));

  HIP_CHECK(hip::hipEventDestroy(start));
  HIP_CHECK(hip::hipEventDestroy(stop));
  HIP_CHECK(hip::hipFree(dx));  // exa-lint: allow(raw-device-alloc)
  HIP_CHECK(hip::hipFree(dy));  // exa-lint: allow(raw-device-alloc)
}

}  // namespace

int main() {
  std::printf("exaready quickstart: one kernel, two exascale-era GPUs\n\n");
  run_on(arch::machines::summit());
  run_on(arch::machines::frontier());
  std::printf(
      "\nThe same code ran on both models - that is the portability story\n"
      "of the paper: HIP-style code moves across vendors, and the device\n"
      "model predicts what the move costs.\n");
  return 0;
}
