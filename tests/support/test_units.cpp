#include "support/units.hpp"

#include <gtest/gtest.h>

namespace exa::support {
namespace {

TEST(Units, FormatSiPicksPrefix) {
  EXPECT_EQ(format_si(6.71e18, 2), "6.71 E");
  EXPECT_EQ(format_si(1.004e18, 3), "1.004 E");
  EXPECT_EQ(format_si(136.0e15, 0), "136 P");
  EXPECT_EQ(format_si(5.6e12, 1), "5.6 T");
  EXPECT_EQ(format_si(900.0e9, 0), "900 G");
  EXPECT_EQ(format_si(1.5e6, 1), "1.5 M");
  EXPECT_EQ(format_si(2.0e3, 0), "2 k");
  EXPECT_EQ(format_si(42.0, 0), "42 ");
}

TEST(Units, FormatSiNegative) {
  EXPECT_EQ(format_si(-5.6e12, 1), "-5.6 T");
}

TEST(Units, FormatBytesBinaryPrefixes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(64ull * MiB), "64.00 MiB");
  EXPECT_EQ(format_bytes(16ull * GiB), "16.00 GiB");
  EXPECT_EQ(format_bytes(2ull * TiB), "2.00 TiB");
}

TEST(Units, FormatTimeAdaptiveUnit) {
  EXPECT_EQ(format_time(2.5, 1), "2.5 s");
  EXPECT_EQ(format_time(2.5e-3, 1), "2.5 ms");
  EXPECT_EQ(format_time(2.5e-6, 1), "2.5 us");
  EXPECT_EQ(format_time(2.5e-9, 1), "2.5 ns");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(format_rate(1.6e12, "B", 2), "1.60 TB/s");
  EXPECT_EQ(format_rate(900e9, "B", 0), "900 GB/s");
}

TEST(Units, ConstantsConsistent) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_DOUBLE_EQ(EXA / PETA, 1000.0);
  EXPECT_DOUBLE_EQ(TERA / GIGA, 1000.0);
}

}  // namespace
}  // namespace exa::support
