#include "support/csv.hpp"

#include <gtest/gtest.h>

#include "support/assert.hpp"
#include "support/string_util.hpp"

namespace exa::support {
namespace {

TEST(Csv, RendersHeaderAndRows) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "2"});
  EXPECT_EQ(w.render(), "a,b\n1,2\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RowWidthEnforced) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), Error);
}

TEST(Csv, EmptyHeaderRejected) {
  EXPECT_THROW(CsvWriter({}), Error);
}

TEST(Csv, RowCount) {
  CsvWriter w({"x"});
  w.add_row({"1"});
  w.add_row({"2"});
  EXPECT_EQ(w.row_count(), 2u);
}

}  // namespace
}  // namespace exa::support
