#include "support/table.hpp"

#include <gtest/gtest.h>

#include "support/assert.hpp"
#include "support/string_util.hpp"

namespace exa::support {
namespace {

TEST(Table, RendersTitleHeaderRows) {
  Table t("Table X: demo");
  t.set_header({"Application", "Speed-up"});
  t.add_row({"GAMESS", "5.0"});
  t.add_row({"LSMS", "7.5"});
  const std::string out = t.render();
  EXPECT_TRUE(contains(out, "Table X: demo"));
  EXPECT_TRUE(contains(out, "Application"));
  EXPECT_TRUE(contains(out, "GAMESS"));
  EXPECT_TRUE(contains(out, "7.5"));
}

TEST(Table, RowWidthMustMatchHeader) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, AlignmentDefaultsLeftThenRight) {
  Table t;
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  const auto lines = split_lines(t.render());
  // Data row: left-aligned name has trailing spaces, right-aligned value
  // has leading spaces.
  bool found = false;
  for (const auto& line : lines) {
    if (contains(line, "| x ")) {
      EXPECT_TRUE(contains(line, "     1 |"));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Table, SeparatorAndNotes) {
  Table t;
  t.set_header({"c"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  t.add_note("hello note");
  const std::string out = t.render();
  EXPECT_TRUE(contains(out, "note: hello note"));
}

TEST(Table, NumericCells) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(std::uint64_t{42}), "42");
}

TEST(Table, RowCount) {
  Table t;
  t.set_header({"c"});
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace exa::support
