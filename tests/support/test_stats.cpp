#include "support/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "support/assert.hpp"

namespace exa::support {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
}

TEST(Stats, GeomeanOfRatios) {
  const std::vector<double> xs = {2.0, 8.0};
  EXPECT_DOUBLE_EQ(geomean(xs), 4.0);
  // Geomean of a value and its reciprocal is 1 (why it is the right
  // average for normalized performance ratios like Figure 1's).
  const std::vector<double> ratios = {0.5, 2.0};
  EXPECT_DOUBLE_EQ(geomean(ratios), 1.0);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW((void)geomean(xs), Error);
}

TEST(Stats, EmptyInputsRejected) {
  const std::vector<double> empty;
  EXPECT_THROW((void)mean(empty), Error);
  EXPECT_THROW((void)percentile(empty, 50.0), Error);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 17.5);
}

TEST(Stats, PercentileSingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 95.0), 7.0);
}

TEST(Stats, LinearFitExact) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {3.0, 5.0, 7.0, 9.0};  // y = 2x + 1
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LogLogFitRecoversExponent) {
  // y = 3 x^2.5
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 1.0; x <= 64.0; x *= 2.0) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 2.5));
  }
  const LinearFit fit = loglog_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(Stats, WeakScalingEfficiency) {
  const std::vector<double> times = {1.0, 1.0, 1.25};
  const auto eff = weak_scaling_efficiency(times);
  EXPECT_DOUBLE_EQ(eff[0], 1.0);
  EXPECT_DOUBLE_EQ(eff[1], 1.0);
  EXPECT_DOUBLE_EQ(eff[2], 0.8);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

}  // namespace
}  // namespace exa::support
