#include "support/string_util.hpp"

#include <gtest/gtest.h>

#include "support/assert.hpp"

namespace exa::support {
namespace {

TEST(StringUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, SplitLinesDropsTrailingNewline) {
  const auto lines = split_lines("one\ntwo\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "two");
  const auto keep = split_lines("one\n\ntwo");
  ASSERT_EQ(keep.size(), 3u);
  EXPECT_EQ(keep[1], "");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi\t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringUtil, StartsEndsContains) {
  EXPECT_TRUE(starts_with("cudaMalloc", "cuda"));
  EXPECT_FALSE(starts_with("cu", "cuda"));
  EXPECT_TRUE(ends_with("file.h", ".h"));
  EXPECT_FALSE(ends_with(".h", "file.h"));
  EXPECT_TRUE(contains("hipLaunchKernelGGL", "Launch"));
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("none here", "xyz", "q"), "none here");
  // Replacement containing the needle must not recurse.
  EXPECT_EQ(replace_all("ab", "a", "aa"), "aab");
  EXPECT_THROW((void)replace_all("x", "", "y"), Error);
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("FrOnTiEr"), "frontier");
}

TEST(StringUtil, IdentifierChars) {
  EXPECT_TRUE(is_identifier_char('a'));
  EXPECT_TRUE(is_identifier_char('_'));
  EXPECT_TRUE(is_identifier_char('9'));
  EXPECT_FALSE(is_identifier_char('-'));
  EXPECT_FALSE(is_identifier_char(' '));
}

}  // namespace
}  // namespace exa::support
