#include "support/rng.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace exa::support {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_u64(10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.normal(3.0, 2.0);
  EXPECT_NEAR(mean(xs), 3.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int ones = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, 0.3, 0.01);
}

TEST(Rng, ReseedResets) {
  Rng rng(23);
  const auto first = rng.next();
  rng.next();
  rng.reseed(23);
  EXPECT_EQ(rng.next(), first);
}

}  // namespace
}  // namespace exa::support
