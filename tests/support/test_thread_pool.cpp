#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace exa::support {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, NonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+...+19
}

TEST(ThreadPool, ChunkedVariantCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for_chunks(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, RepeatedDispatch) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 100) << "round " << round;
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, SingleElementRunsInline) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ForEachTemplateCoversRange) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.for_each(0, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ChunkBoundariesAreGrainAlignedAcrossPoolSizes) {
  // Chunk k must cover [begin + k*grain, begin + (k+1)*grain) regardless
  // of the pool size — deterministic reductions depend on it.
  const auto boundaries_of = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::mutex mutex;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.for_chunks(
        10, 1007,
        [&](std::size_t lo, std::size_t hi) {
          const std::lock_guard<std::mutex> lock(mutex);
          chunks.emplace_back(lo, hi);
        },
        64);
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto one = boundaries_of(1);
  const auto four = boundaries_of(4);
  EXPECT_EQ(one, four);
  ASSERT_EQ(one.size(), (1007u - 10u + 63u) / 64u);
  for (std::size_t k = 0; k < one.size(); ++k) {
    EXPECT_EQ(one[k].first, 10u + k * 64u);
    EXPECT_EQ(one[k].second, std::min<std::size_t>(1007, 10 + (k + 1) * 64));
  }
}

TEST(ThreadPool, ZeroLengthTemplateDispatchIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.for_each(7, 7, [&](std::size_t) { ++calls; });
  pool.for_chunks(7, 7, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, GrainCoveringRangeRunsInline) {
  ThreadPool pool(4);
  int calls = 0;
  std::thread::id ran_on;
  pool.for_chunks(
      0, 100,
      [&](std::size_t lo, std::size_t hi) {
        ++calls;
        ran_on = std::this_thread::get_id();
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 100u);
      },
      100);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(ThreadPool, NestedDispatchRunsInline) {
  // A body that dispatches on the same pool must not deadlock: the inner
  // range runs inline on whichever thread the outer chunk landed on.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.for_chunks(
      0, 4,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t outer = lo; outer < hi; ++outer) {
          const std::thread::id outer_thread = std::this_thread::get_id();
          pool.for_each(0, 50, [&](std::size_t) {
            ++inner_total;
            EXPECT_EQ(std::this_thread::get_id(), outer_thread);
          });
        }
      },
      1);
  EXPECT_EQ(inner_total.load(), 4 * 50);
}

TEST(ThreadPool, ExceptionsFromMultipleChunksSurfaceOne) {
  // Every chunk throws; exactly one exception must surface and the pool
  // must stay usable.
  ThreadPool pool(4);
  EXPECT_THROW(pool.for_chunks(
                   0, 1024,
                   [](std::size_t lo, std::size_t) {
                     throw std::runtime_error("chunk " + std::to_string(lo));
                   },
                   64),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.for_each(0, 256, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 256);
}

TEST(ThreadPool, ConcurrentGlobalDispatches) {
  // Two threads driving the shared global pool at once: dispatches are
  // serialized internally and each caller sees exactly its own work.
  constexpr std::size_t kN = 4096;
  const auto worker = [](std::vector<int>& out, int value) {
    for (int round = 0; round < 10; ++round) {
      ThreadPool::global().for_each(0, kN,
                                    [&](std::size_t i) { out[i] += value; });
    }
  };
  std::vector<int> a(kN, 0), b(kN, 0);
  std::thread ta(worker, std::ref(a), 1);
  std::thread tb(worker, std::ref(b), 3);
  ta.join();
  tb.join();
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i], 10) << i;
    ASSERT_EQ(b[i], 30) << i;
  }
}

}  // namespace
}  // namespace exa::support
