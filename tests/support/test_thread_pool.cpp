#include "support/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace exa::support {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, NonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+...+19
}

TEST(ThreadPool, ChunkedVariantCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for_chunks(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, RepeatedDispatch) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 100) << "round " << round;
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, SingleElementRunsInline) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace exa::support
