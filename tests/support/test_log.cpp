#include "support/log.hpp"

#include <gtest/gtest.h>

namespace exa::support {
namespace {

TEST(Log, LevelFromNameParsesNamesAndDigits) {
  EXPECT_EQ(log_level_from_name("debug", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_name("INFO", LogLevel::kWarn), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_name("Warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_name("error", LogLevel::kWarn), LogLevel::kError);
  EXPECT_EQ(log_level_from_name("off", LogLevel::kWarn), LogLevel::kOff);
  EXPECT_EQ(log_level_from_name("0", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_name("3", LogLevel::kWarn), LogLevel::kError);
}

TEST(Log, LevelFromNameFallsBackOnUnknownInput) {
  EXPECT_EQ(log_level_from_name("loud", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_name("", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_name("99", LogLevel::kError), LogLevel::kError);
}

TEST(Log, SetAndGetThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
}

}  // namespace
}  // namespace exa::support
