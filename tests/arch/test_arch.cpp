#include <gtest/gtest.h>

#include "arch/machine.hpp"
#include "support/assert.hpp"
#include "support/units.hpp"

namespace exa::arch {
namespace {

TEST(DType, Sizes) {
  EXPECT_EQ(size_of(DType::kF64), 8u);
  EXPECT_EQ(size_of(DType::kF16), 2u);
  EXPECT_EQ(size_of(DType::kI8), 1u);
  EXPECT_EQ(size_of(DType::kC64), 16u);
}

TEST(DType, ComplexMapsToReal) {
  EXPECT_EQ(real_of(DType::kC64), DType::kF64);
  EXPECT_EQ(real_of(DType::kC32), DType::kF32);
  EXPECT_EQ(real_of(DType::kF16), DType::kF16);
  EXPECT_TRUE(is_complex(DType::kC64));
  EXPECT_FALSE(is_complex(DType::kF64));
}

TEST(GpuArch, WavefrontWidths) {
  EXPECT_EQ(v100().wavefront_size, 32);
  EXPECT_EQ(mi60().wavefront_size, 64);
  EXPECT_EQ(mi100().wavefront_size, 64);
  EXPECT_EQ(mi250x_gcd().wavefront_size, 64);
}

TEST(GpuArch, PeakTableLookups) {
  const GpuArch g = mi250x_gcd();
  EXPECT_NEAR(g.peak_flops(DType::kF64), 23.9e12, 1e9);
  EXPECT_NEAR(g.peak_flops(DType::kF64, true), 47.9e12, 1e9);
  // Complex types charge against the real peak.
  EXPECT_DOUBLE_EQ(g.peak_flops(DType::kC64), g.peak_flops(DType::kF64));
}

TEST(GpuArch, MatrixFallsBackToVector) {
  const GpuArch g = mi60();  // no matrix cores
  EXPECT_DOUBLE_EQ(g.peak_flops(DType::kF16, true),
                   g.peak_flops(DType::kF16, false));
}

TEST(GpuArch, V100HasFp16TensorCoresOnly) {
  const GpuArch g = v100();
  EXPECT_GT(g.peak_flops(DType::kF16, true), 100e12);
  // FP64 tensor path falls back to the vector peak on Volta.
  EXPECT_DOUBLE_EQ(g.peak_flops(DType::kF64, true), 7.8e12);
}

TEST(GpuArch, BalancePointSensible) {
  // V100: 7.8 TF / 900 GB/s ~ 8.7 flop/byte.
  EXPECT_NEAR(v100().balance_fp64(), 8.67, 0.1);
  // MI250X GCD: 23.9 TF / 1.6 TB/s ~ 15 flop/byte — more compute-rich,
  // which is why higher arithmetic intensity suits it (§3.5).
  EXPECT_GT(mi250x_gcd().balance_fp64(), v100().balance_fp64());
}

TEST(GpuArch, GenerationalProgression) {
  // Successive EAS GPU generations increase FP64 peak.
  EXPECT_LT(mi60().peak_flops(DType::kF64), mi100().peak_flops(DType::kF64));
  EXPECT_LT(mi100().peak_flops(DType::kF64),
            mi250x_gcd().peak_flops(DType::kF64));
}

TEST(Machine, FrontierShape) {
  const Machine f = machines::frontier();
  EXPECT_EQ(f.node_count, 9408);
  EXPECT_EQ(f.node.gpus_per_node, 8);  // 4 MI250X = 8 GCD devices
  EXPECT_EQ(f.total_devices(), 9408 * 8);
  // System FP64 peak ~ 1.8 EF vector.
  EXPECT_GT(f.system_peak_fp64_flops(), 1.5e18);
  EXPECT_LT(f.system_peak_fp64_flops(), 2.2e18);
}

TEST(Machine, SummitShape) {
  const Machine s = machines::summit();
  EXPECT_EQ(s.node_count, 4608);
  EXPECT_EQ(s.node.gpus_per_node, 6);
  // ~200 PF peak.
  EXPECT_NEAR(s.system_peak_fp64_flops(), 215e15, 15e15);
}

TEST(Machine, CrusherMatchesFrontierNode) {
  const Machine c = machines::crusher();
  const Machine f = machines::frontier();
  EXPECT_EQ(c.node.gpu->name, f.node.gpu->name);
  EXPECT_EQ(c.node.gpus_per_node, f.node.gpus_per_node);
  EXPECT_EQ(c.node_count, 192);
  EXPECT_TRUE(c.nda_restricted);
  EXPECT_FALSE(f.nda_restricted);
}

TEST(Machine, EarlyAccessGenerationsOrdered) {
  const auto gens = machines::early_access_generations();
  ASSERT_EQ(gens.size(), 3u);
  EXPECT_EQ(gens[0].name, "Poplar");
  EXPECT_EQ(gens[1].name, "Spock");
  EXPECT_EQ(gens[2].name, "Crusher");
  EXPECT_LT(gens[0].year, gens[2].year);
  for (const auto& g : gens) EXPECT_TRUE(g.nda_restricted);
}

TEST(Machine, SpockAndBirchSizesFromPaper) {
  EXPECT_EQ(machines::spock().node_count, 6);
  EXPECT_EQ(machines::birch().node_count, 12);
  EXPECT_EQ(machines::spock().node.gpus_per_node, 4);
}

TEST(Machine, CpuOnlyMachinesHaveNoGpu) {
  for (const char* name : {"Cori", "Theta", "Eagle"}) {
    const Machine m = machines::by_name(name);
    EXPECT_FALSE(m.node.has_gpu()) << name;
    EXPECT_GT(m.node.peak_fp64_flops(), 0.0);
  }
}

TEST(Machine, ByNameIsCaseInsensitive) {
  EXPECT_EQ(machines::by_name("frontier").name, "Frontier");
  EXPECT_EQ(machines::by_name("SUMMIT").name, "Summit");
  EXPECT_THROW((void)machines::by_name("El Capitan"), support::Error);
}

TEST(Machine, AllSortedByYear) {
  const auto ms = machines::all();
  for (std::size_t i = 1; i < ms.size(); ++i) {
    EXPECT_LE(ms[i - 1].year, ms[i].year);
  }
}

TEST(Machine, NodeBandwidthPrefersGpu) {
  const Machine f = machines::frontier();
  EXPECT_DOUBLE_EQ(f.node.memory_bandwidth(), 8 * 1.6e12);
  const Machine e = machines::eagle();
  EXPECT_DOUBLE_EQ(e.node.memory_bandwidth(),
                   e.node.cpu.mem_bandwidth_bytes_per_s);
}

TEST(Interconnect, InjectionBandwidth) {
  const Machine f = machines::frontier();
  EXPECT_DOUBLE_EQ(f.network.node_injection_bandwidth(), 100e9);
  const Machine s = machines::summit();
  EXPECT_DOUBLE_EQ(s.network.node_injection_bandwidth(), 25e9);
}

}  // namespace
}  // namespace exa::arch
