/// Failure-injection tests: the unhappy paths of the runtime and the
/// translator — malformed sources, exhausted memory, invalid handles.

#include <vector>

#include <gtest/gtest.h>

#include "hip/hip_runtime.hpp"
#include "hip/hipify.hpp"
#include "support/string_util.hpp"

namespace exa::hip {
namespace {

class FailureModes : public ::testing::Test {
 protected:
  void SetUp() override {
    Runtime::instance().configure(arch::mi250x_gcd(), 1);
  }
};

TEST_F(FailureModes, PooledAllocationExhaustionReportsOom) {
  auto& dev = Runtime::instance().current_device();
  dev.set_alloc_mode(sim::AllocMode::kPooled, 1 << 20);  // 1 MiB pool
  void* a = nullptr;
  ASSERT_EQ(hipMalloc(&a, 1 << 19), hipSuccess);
  void* b = nullptr;
  EXPECT_EQ(hipMalloc(&b, 1 << 20), hipErrorOutOfMemory);
  EXPECT_EQ(b, nullptr);
  // Freeing makes room again.
  EXPECT_EQ(hipFree(a), hipSuccess);
  EXPECT_EQ(hipMalloc(&b, 1 << 19), hipSuccess);
  EXPECT_EQ(hipFree(b), hipSuccess);
}

TEST_F(FailureModes, FragmentedPoolCanFailLargeAlloc) {
  auto& dev = Runtime::instance().current_device();
  dev.set_alloc_mode(sim::AllocMode::kPooled, 1 << 20);
  std::vector<void*> blocks;
  for (int i = 0; i < 4; ++i) {
    void* p = nullptr;
    ASSERT_EQ(hipMalloc(&p, 1 << 18), hipSuccess);
    blocks.push_back(p);
  }
  // Free alternating blocks: half the pool is free but not contiguous.
  EXPECT_EQ(hipFree(blocks[0]), hipSuccess);
  EXPECT_EQ(hipFree(blocks[2]), hipSuccess);
  void* big = nullptr;
  EXPECT_EQ(hipMalloc(&big, (1 << 18) + (1 << 17)), hipErrorOutOfMemory);
  EXPECT_EQ(hipFree(blocks[1]), hipSuccess);
  EXPECT_EQ(hipFree(blocks[3]), hipSuccess);
}

TEST_F(FailureModes, MemcpyNullPointers) {
  char buf[8] = {};
  EXPECT_EQ(hipMemcpy(nullptr, buf, 8, hipMemcpyHostToDevice),
            hipErrorInvalidValue);
  EXPECT_EQ(hipMemcpy(buf, nullptr, 8, hipMemcpyDeviceToHost),
            hipErrorInvalidValue);
}

TEST_F(FailureModes, ElapsedTimeOnUnrecordedEvent) {
  hipEvent_t a = nullptr;
  hipEvent_t b = nullptr;
  ASSERT_EQ(hipEventCreate(&a), hipSuccess);
  ASSERT_EQ(hipEventCreate(&b), hipSuccess);
  float ms = 0.0f;
  EXPECT_EQ(hipEventElapsedTime(&ms, a, b), hipErrorInvalidResourceHandle);
  EXPECT_EQ(hipEventDestroy(a), hipSuccess);
  EXPECT_EQ(hipEventDestroy(b), hipSuccess);
}

TEST_F(FailureModes, ElapsedTimeAcrossDevicesRejected) {
  Runtime::instance().configure(arch::mi250x_gcd(), 2);
  hipEvent_t a = nullptr;
  ASSERT_EQ(hipSetDevice(0), hipSuccess);
  ASSERT_EQ(hipEventCreate(&a), hipSuccess);
  ASSERT_EQ(hipEventRecord(a, nullptr), hipSuccess);
  hipEvent_t b = nullptr;
  ASSERT_EQ(hipSetDevice(1), hipSuccess);
  ASSERT_EQ(hipEventCreate(&b), hipSuccess);
  ASSERT_EQ(hipEventRecord(b, nullptr), hipSuccess);
  float ms = 0.0f;
  EXPECT_EQ(hipEventElapsedTime(&ms, a, b), hipErrorInvalidValue);
}

TEST_F(FailureModes, FreeingTwiceRejected) {
  void* p = nullptr;
  ASSERT_EQ(hipMalloc(&p, 64), hipSuccess);
  ASSERT_EQ(hipFree(p), hipSuccess);
  EXPECT_EQ(hipFree(p), hipErrorInvalidDevicePointer);
}

}  // namespace

namespace hf = hipify;

TEST(HipifyFailureModes, UnterminatedBlockCommentConsumedSafely) {
  const auto r = hf::translate("cudaMalloc(&p, 8); /* trailing comment");
  EXPECT_TRUE(support::contains(r.output, "hipMalloc"));
  EXPECT_TRUE(support::contains(r.output, "/* trailing comment"));
}

TEST(HipifyFailureModes, UnterminatedStringConsumedSafely) {
  const auto r = hf::translate("printf(\"cudaMalloc is fine");
  EXPECT_TRUE(support::contains(r.output, "\"cudaMalloc is fine"));
  EXPECT_EQ(r.replacements, 0);
}

TEST(HipifyFailureModes, UnclosedChevronLeftAlone) {
  const auto r = hf::translate("kernel<<<grid, block>>(a);");  // missing >
  // No valid launch; the text survives untranslated rather than crashing.
  EXPECT_EQ(r.launches_converted, 0);
  EXPECT_TRUE(support::contains(r.output, "<<<"));
}

TEST(HipifyFailureModes, LaunchWithoutArgListLeftAlone) {
  const auto r = hf::translate("auto x = k<<<g, b>>>;");
  EXPECT_EQ(r.launches_converted, 0);
}

TEST(HipifyFailureModes, ChevronInsideCommentIgnored) {
  const auto r = hf::translate("// k<<<g, b>>>(x);\ncudaFree(p);");
  EXPECT_EQ(r.launches_converted, 0);
  EXPECT_TRUE(support::contains(r.output, "// k<<<g, b>>>(x);"));
  EXPECT_TRUE(support::contains(r.output, "hipFree(p);"));
}

TEST(HipifyFailureModes, EmptyInput) {
  const auto r = hf::translate("");
  EXPECT_TRUE(r.output.empty());
  EXPECT_TRUE(r.fully_automatic());
}

TEST(HipifyFailureModes, LaunchConfigWithTooManyArgsLeftAlone) {
  const auto r = hf::translate("k<<<a, b, c, d, e>>>(x);");
  EXPECT_EQ(r.launches_converted, 0);
}

}  // namespace exa::hip
