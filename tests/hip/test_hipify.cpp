#include "hip/hipify.hpp"

#include <gtest/gtest.h>

#include "support/string_util.hpp"

namespace exa::hip::hipify {
namespace {

using support::contains;

TEST(Hipify, BasicApiCalls) {
  const auto r = translate(
      "cudaMalloc(&p, n);\n"
      "cudaMemcpy(dst, src, n, cudaMemcpyHostToDevice);\n"
      "cudaFree(p);\n");
  EXPECT_TRUE(contains(r.output, "hipMalloc(&p, n);"));
  EXPECT_TRUE(contains(r.output, "hipMemcpy(dst, src, n, hipMemcpyHostToDevice);"));
  EXPECT_TRUE(contains(r.output, "hipFree(p);"));
  EXPECT_EQ(r.replacements, 4);
  EXPECT_TRUE(r.fully_automatic());
}

TEST(Hipify, TypesAndEnums) {
  const auto r = translate(
      "cudaError_t err = cudaSuccess;\n"
      "cudaStream_t s;\n"
      "cudaEvent_t e;\n");
  EXPECT_TRUE(contains(r.output, "hipError_t err = hipSuccess;"));
  EXPECT_TRUE(contains(r.output, "hipStream_t s;"));
  EXPECT_TRUE(contains(r.output, "hipEvent_t e;"));
}

TEST(Hipify, LongestMatchWins) {
  const auto r = translate("cudaMemcpyAsync(d, s, n, k, st);");
  EXPECT_TRUE(contains(r.output, "hipMemcpyAsync"));
  EXPECT_FALSE(contains(r.output, "hipMemcpyAsynchip"));
}

TEST(Hipify, IdentifierBoundariesRespected) {
  // A user symbol merely containing an API name must not be rewritten.
  const auto r = translate("int my_cudaMalloc_count = 0; mycudaMalloc();");
  EXPECT_TRUE(contains(r.output, "my_cudaMalloc_count"));
  EXPECT_TRUE(contains(r.output, "mycudaMalloc()"));
  EXPECT_EQ(r.replacements, 0);
}

TEST(Hipify, AngleBracketInclude) {
  const auto r = translate("#include <cuda_runtime.h>\n");
  EXPECT_TRUE(contains(r.output, "#include <hip/hip_runtime.h>"));
}

TEST(Hipify, QuotedInclude) {
  const auto r = translate("#include \"cuda_runtime.h\"\n");
  EXPECT_TRUE(contains(r.output, "#include \"hip/hip_runtime.h\""));
  EXPECT_EQ(r.replacements, 1);
}

TEST(Hipify, StringLiteralsNotTranslated) {
  const auto r = translate("printf(\"cudaMalloc failed\\n\");");
  EXPECT_TRUE(contains(r.output, "\"cudaMalloc failed\\n\""));
  EXPECT_EQ(r.replacements, 0);
}

TEST(Hipify, CommentsNotTranslated) {
  const auto r = translate(
      "// cudaMalloc here\n"
      "/* cudaFree there */\n"
      "cudaDeviceSynchronize();\n");
  EXPECT_TRUE(contains(r.output, "// cudaMalloc here"));
  EXPECT_TRUE(contains(r.output, "/* cudaFree there */"));
  EXPECT_TRUE(contains(r.output, "hipDeviceSynchronize();"));
  EXPECT_EQ(r.replacements, 1);
}

TEST(Hipify, TripleChevronLaunchTwoArgs) {
  const auto r = translate("mykernel<<<grid, block>>>(a, b, n);");
  EXPECT_TRUE(contains(r.output,
                       "hipLaunchKernelGGL(mykernel, grid, block, 0, 0, a, b, n)"));
  EXPECT_EQ(r.launches_converted, 1);
}

TEST(Hipify, TripleChevronLaunchFourArgs) {
  const auto r = translate("k<<<g, b, shmem, stream>>>(x);");
  EXPECT_TRUE(contains(r.output, "hipLaunchKernelGGL(k, g, b, shmem, stream, x)"));
}

TEST(Hipify, TripleChevronNoKernelArgs) {
  const auto r = translate("init<<<1, 64>>>();");
  EXPECT_TRUE(contains(r.output, "hipLaunchKernelGGL(init, 1, 64, 0, 0)"));
}

TEST(Hipify, LaunchConfigWithNestedCommas) {
  const auto r = translate("k<<<dim3(gx, gy), dim3(bx, by)>>>(p, q);");
  EXPECT_TRUE(contains(
      r.output, "hipLaunchKernelGGL(k, dim3(gx, gy), dim3(bx, by), 0, 0, p, q)"));
}

TEST(Hipify, OutdatedSyntaxFlagged) {
  const auto r = translate("cudaThreadSynchronize();");
  EXPECT_TRUE(contains(r.output, "hipDeviceSynchronize();"));
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_TRUE(contains(r.warnings[0], "outdated CUDA syntax"));
  EXPECT_FALSE(r.fully_automatic());
}

TEST(Hipify, UnrecognizedCudaIdentifierReported) {
  const auto r = translate("cudaGraphLaunch(graph, stream);");
  ASSERT_EQ(r.unrecognized.size(), 1u);
  EXPECT_EQ(r.unrecognized[0], "cudaGraphLaunch");
  EXPECT_TRUE(contains(r.output, "cudaGraphLaunch"));  // left as-is
  EXPECT_FALSE(r.fully_automatic());
}

TEST(Hipify, UnrecognizedReportedOnce) {
  const auto r = translate("cudaFoo(); cudaFoo();");
  EXPECT_EQ(r.unrecognized.size(), 1u);
}

TEST(Hipify, LibraryPrefixes) {
  const auto r = translate(
      "cublasHandle_t h; cublasCreate(&h);\n"
      "cublasDgemm(h, a, b, c);\n"
      "cufftHandle plan; cufftPlan3d(&plan, n, n, n, t);\n"
      "curandGenerator_t g; curandCreateGenerator(&g, kind);\n");
  EXPECT_TRUE(contains(r.output, "hipblasHandle_t h; hipblasCreate(&h);"));
  EXPECT_TRUE(contains(r.output, "hipblasDgemm(h, a, b, c);"));
  EXPECT_TRUE(contains(r.output, "hipfftPlan3d(&plan, n, n, n, t);"));
  EXPECT_TRUE(contains(r.output, "hiprandCreateGenerator(&g, kind);"));
}

TEST(Hipify, CusolverToRocsolver) {
  const auto r = translate("cusolverDnZgetrf(h, m, n, a, lda, w, ipiv, info);");
  EXPECT_TRUE(contains(r.output, "rocsolver_zgetrf"));
}

TEST(Hipify, CountsPerIdentifier) {
  const auto r = translate("cudaFree(a); cudaFree(b); cudaFree(c);");
  EXPECT_EQ(r.by_identifier.at("cudaFree"), 3);
}

TEST(Hipify, RoundTripRealisticKernelFile) {
  const char* source = R"(#include <cuda_runtime.h>
// Vector add demo
__global__ void vadd(const float* a, const float* b, float* c, int n);

int main() {
  float *da, *db, *dc;
  cudaMalloc((void**)&da, N * sizeof(float));
  cudaMalloc((void**)&db, N * sizeof(float));
  cudaMalloc((void**)&dc, N * sizeof(float));
  cudaMemcpy(da, ha, N * sizeof(float), cudaMemcpyHostToDevice);
  cudaMemcpy(db, hb, N * sizeof(float), cudaMemcpyHostToDevice);
  vadd<<<(N + 255) / 256, 256>>>(da, db, dc, N);
  cudaError_t err = cudaGetLastError();
  if (err != cudaSuccess) printf("err: %s\n", cudaGetErrorString(err));
  cudaMemcpy(hc, dc, N * sizeof(float), cudaMemcpyDeviceToHost);
  cudaFree(da); cudaFree(db); cudaFree(dc);
  cudaDeviceSynchronize();
  return 0;
}
)";
  const auto r = translate(source);
  EXPECT_TRUE(r.fully_automatic());
  EXPECT_EQ(r.launches_converted, 1);
  EXPECT_FALSE(contains(r.output, "cudaMalloc"));
  EXPECT_FALSE(contains(r.output, "cudaMemcpy"));
  EXPECT_FALSE(contains(r.output, "<<<"));
  EXPECT_TRUE(contains(r.output,
                       "hipLaunchKernelGGL(vadd, (N + 255) / 256, 256, 0, 0, "
                       "da, db, dc, N)"));
  // Translating already-HIP output is idempotent.
  const auto r2 = translate(r.output);
  EXPECT_EQ(r2.replacements, 0);
  EXPECT_EQ(r2.output, r.output);
}

TEST(Hipify, ApiTableWellFormed) {
  const auto& table = api_table();
  EXPECT_GT(table.size(), 60u);
  for (const auto& m : table) {
    EXPECT_FALSE(m.cuda.empty());
    EXPECT_FALSE(m.hip.empty());
    EXPECT_NE(m.cuda, m.hip);
  }
}

}  // namespace
}  // namespace exa::hip::hipify
