#include "hip/hip_runtime.hpp"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "hip/cuda_compat.hpp"

namespace exa::hip {
namespace {

class HipRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Runtime::instance().configure(arch::mi250x_gcd(), 2, ApiFlavor::kHip);
  }
};

TEST_F(HipRuntimeTest, DeviceManagement) {
  int count = 0;
  ASSERT_EQ(hipGetDeviceCount(&count), hipSuccess);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(hipSetDevice(1), hipSuccess);
  int current = -1;
  ASSERT_EQ(hipGetDevice(&current), hipSuccess);
  EXPECT_EQ(current, 1);
  EXPECT_EQ(hipSetDevice(7), hipErrorInvalidDevice);
  EXPECT_EQ(hipSetDevice(0), hipSuccess);
  EXPECT_EQ(hipGetDeviceCount(nullptr), hipErrorInvalidValue);
}

TEST_F(HipRuntimeTest, MallocMemcpyRoundTrip) {
  constexpr std::size_t kN = 1024;
  std::vector<double> host_in(kN);
  for (std::size_t i = 0; i < kN; ++i) host_in[i] = static_cast<double>(i);
  std::vector<double> host_out(kN, 0.0);

  void* dev_ptr = nullptr;
  ASSERT_EQ(hipMalloc(&dev_ptr, kN * sizeof(double)), hipSuccess);
  ASSERT_NE(dev_ptr, nullptr);
  ASSERT_EQ(hipMemcpy(dev_ptr, host_in.data(), kN * sizeof(double),
                      hipMemcpyHostToDevice),
            hipSuccess);
  ASSERT_EQ(hipMemcpy(host_out.data(), dev_ptr, kN * sizeof(double),
                      hipMemcpyDeviceToHost),
            hipSuccess);
  EXPECT_EQ(host_in, host_out);
  EXPECT_EQ(hipFree(dev_ptr), hipSuccess);
}

TEST_F(HipRuntimeTest, FreeSemantics) {
  EXPECT_EQ(hipFree(nullptr), hipSuccess);  // HIP allows freeing null
  int not_device = 0;
  EXPECT_EQ(hipFree(&not_device), hipErrorInvalidDevicePointer);
}

TEST_F(HipRuntimeTest, FreeOnForeignDeviceRejected) {
  // hipFree must run with the allocating device current: freeing another
  // device's pointer is hipErrorInvalidValue (real HIP's contract), and
  // the allocation stays live for the rightful owner to release.
  ASSERT_EQ(hipSetDevice(0), hipSuccess);
  void* p = nullptr;
  ASSERT_EQ(hipMalloc(&p, 256), hipSuccess);
  ASSERT_EQ(hipSetDevice(1), hipSuccess);
  EXPECT_EQ(hipFree(p), hipErrorInvalidValue);
  ASSERT_EQ(hipSetDevice(0), hipSuccess);
  EXPECT_EQ(hipFree(p), hipSuccess);
}

TEST_F(HipRuntimeTest, MallocZeroRejected) {
  void* p = nullptr;
  EXPECT_EQ(hipMalloc(&p, 0), hipErrorInvalidValue);
  EXPECT_EQ(hipMalloc(nullptr, 16), hipErrorInvalidValue);
}

TEST_F(HipRuntimeTest, OutOfMemoryReported) {
  void* p = nullptr;
  EXPECT_EQ(hipMalloc(&p, 1ull << 60), hipErrorOutOfMemory);
  EXPECT_EQ(p, nullptr);
}

TEST_F(HipRuntimeTest, MemsetWrites) {
  void* p = nullptr;
  ASSERT_EQ(hipMalloc(&p, 256), hipSuccess);
  ASSERT_EQ(hipMemset(p, 0xAB, 256), hipSuccess);
  const auto* bytes = static_cast<unsigned char*>(p);
  for (int i = 0; i < 256; ++i) ASSERT_EQ(bytes[i], 0xAB);
  EXPECT_EQ(hipFree(p), hipSuccess);
}

TEST_F(HipRuntimeTest, KernelLaunchExecutesBody) {
  constexpr std::size_t kN = 4096;
  std::vector<float> a(kN, 2.0f);
  std::vector<float> b(kN, 3.0f);
  std::vector<float> c(kN, 0.0f);
  Kernel k;
  k.profile.name = "saxpy";
  k.profile.add_flops(arch::DType::kF32, 2.0 * kN);
  k.profile.bytes_read = 8.0 * kN;
  k.profile.bytes_written = 4.0 * kN;
  k.body = [&](const KernelContext& ctx) {
    if (ctx.global_id < kN) {
      c[ctx.global_id] = a[ctx.global_id] + 2.0f * b[ctx.global_id];
    }
  };
  sim::LaunchConfig cfg{kN / 256, 256};
  ASSERT_EQ(hipLaunchKernelEXA(k, cfg), hipSuccess);
  ASSERT_EQ(hipDeviceSynchronize(), hipSuccess);
  for (const float v : c) ASSERT_FLOAT_EQ(v, 8.0f);
  EXPECT_GT(hipLastLaunchTiming().total_s, 0.0);
}

TEST_F(HipRuntimeTest, KernelContextCoordinates) {
  std::vector<int> block_ids(512, -1);
  Kernel k;
  k.body = [&](const KernelContext& ctx) {
    block_ids[ctx.global_id] = static_cast<int>(ctx.block_id);
    EXPECT_EQ(ctx.block_dim, 128u);
    EXPECT_EQ(ctx.global_id % 128, ctx.thread_id);
  };
  ASSERT_EQ(hipLaunchKernelEXA(k, sim::LaunchConfig{4, 128}), hipSuccess);
  for (std::size_t i = 0; i < block_ids.size(); ++i) {
    EXPECT_EQ(block_ids[i], static_cast<int>(i / 128));
  }
}

TEST_F(HipRuntimeTest, LaunchCachedReplaysAndRecomputes) {
  sim::KernelProfile profile;
  profile.name = "cached";
  profile.add_flops(arch::DType::kF64, 1.0e9);
  profile.bytes_read = 1.0e6;
  sim::LaunchConfig cfg{1u << 10, 256};
  sim::KernelTiming timing{};
  std::uint64_t epoch = 0;
  EXPECT_EQ(hipLaunchCachedEXA(profile, cfg, nullptr, &epoch),
            hipErrorInvalidValue);
  EXPECT_EQ(hipLaunchCachedEXA(profile, cfg, &timing, nullptr),
            hipErrorInvalidValue);

  ASSERT_EQ(hipLaunchCachedEXA(profile, cfg, &timing, &epoch), hipSuccess);
  EXPECT_NE(epoch, 0u);  // epoch written back on the compute path
  EXPECT_GT(timing.total_s, 0.0);
  const double computed = timing.total_s;

  // Unchanged profile + same device epoch: the cached timing replays.
  ASSERT_EQ(hipLaunchCachedEXA(profile, cfg, &timing, &epoch), hipSuccess);
  EXPECT_EQ(timing.total_s, computed);
  EXPECT_EQ(hipLastLaunchTiming().total_s, computed);

  // The caller mutated the profile and reset the epoch: recompute.
  profile.add_flops(arch::DType::kF64, 9.0e9);
  epoch = 0;
  ASSERT_EQ(hipLaunchCachedEXA(profile, cfg, &timing, &epoch), hipSuccess);
  EXPECT_GT(timing.total_s, computed);

  // A tuning change bumps the device epoch, invalidating the cache even
  // though the caller's epoch is nonzero.
  const std::uint64_t stale = epoch;
  Runtime::instance().current_device().mutable_tuning();
  ASSERT_EQ(hipLaunchCachedEXA(profile, cfg, &timing, &epoch), hipSuccess);
  EXPECT_NE(epoch, stale);
}

TEST_F(HipRuntimeTest, InvalidLaunchRejected) {
  Kernel k;
  EXPECT_EQ(hipLaunchKernelEXA(k, sim::LaunchConfig{0, 256}),
            hipErrorInvalidValue);
}

TEST_F(HipRuntimeTest, StreamsAndEventsMeasureTime) {
  hipStream_t stream = nullptr;
  ASSERT_EQ(hipStreamCreate(&stream), hipSuccess);
  hipEvent_t start = nullptr;
  hipEvent_t stop = nullptr;
  ASSERT_EQ(hipEventCreate(&start), hipSuccess);
  ASSERT_EQ(hipEventCreate(&stop), hipSuccess);

  Kernel k;
  k.profile.add_flops(arch::DType::kF64, 23.9e9);  // ~1 ms on a GCD
  k.profile.compute_efficiency = 1.0;
  ASSERT_EQ(hipEventRecord(start, stream), hipSuccess);
  ASSERT_EQ(hipLaunchKernelEXA(k, sim::LaunchConfig{1u << 16, 256}, stream),
            hipSuccess);
  ASSERT_EQ(hipEventRecord(stop, stream), hipSuccess);
  ASSERT_EQ(hipEventSynchronize(stop), hipSuccess);
  float ms = 0.0f;
  ASSERT_EQ(hipEventElapsedTime(&ms, start, stop), hipSuccess);
  EXPECT_NEAR(ms, 1.0f, 0.3f);

  EXPECT_EQ(hipEventDestroy(start), hipSuccess);
  EXPECT_EQ(hipEventDestroy(stop), hipSuccess);
  EXPECT_EQ(hipStreamDestroy(stream), hipSuccess);
}

TEST_F(HipRuntimeTest, StreamQueryReflectsPendingWork) {
  hipStream_t stream = nullptr;
  ASSERT_EQ(hipStreamCreate(&stream), hipSuccess);
  Kernel k;
  k.profile.add_flops(arch::DType::kF64, 23.9e9);
  ASSERT_EQ(hipLaunchKernelEXA(k, sim::LaunchConfig{1u << 16, 256}, stream),
            hipSuccess);
  EXPECT_EQ(hipStreamQuery(stream), hipErrorNotReady);
  ASSERT_EQ(hipStreamSynchronize(stream), hipSuccess);
  EXPECT_EQ(hipStreamQuery(stream), hipSuccess);
  EXPECT_EQ(hipStreamDestroy(stream), hipSuccess);
}

TEST_F(HipRuntimeTest, DestroyedHandlesRejected) {
  hipStream_t stream = nullptr;
  ASSERT_EQ(hipStreamCreate(&stream), hipSuccess);
  ASSERT_EQ(hipStreamDestroy(stream), hipSuccess);
  EXPECT_EQ(hipStreamDestroy(stream), hipErrorInvalidResourceHandle);
  EXPECT_EQ(hipStreamSynchronize(stream), hipErrorInvalidResourceHandle);
}

TEST_F(HipRuntimeTest, UvmFaultRequiresManagedPointer) {
  void* p = nullptr;
  ASSERT_EQ(hipMallocManaged(&p, 1 << 20), hipSuccess);
  EXPECT_EQ(hipUvmFault(p, 1 << 20, hipMemcpyHostToDevice), hipSuccess);
  int local = 0;
  EXPECT_EQ(hipUvmFault(&local, 4, hipMemcpyHostToDevice),
            hipErrorInvalidDevicePointer);
  EXPECT_EQ(hipFree(p), hipSuccess);
}

TEST_F(HipRuntimeTest, ErrorStrings) {
  EXPECT_STREQ(hipGetErrorString(hipSuccess), "hipSuccess");
  EXPECT_STREQ(hipGetErrorString(hipErrorOutOfMemory), "hipErrorOutOfMemory");
}

TEST_F(HipRuntimeTest, HostClockHelpers) {
  const double t0 = hipHostTimeSec();
  hipHostBusy(0.25);
  EXPECT_NEAR(hipHostTimeSec() - t0, 0.25, 1e-9);
}

TEST_F(HipRuntimeTest, CudaCompatHeaderMapsToSameRuntime) {
  using namespace exa::cuda;
  void* p = nullptr;
  ASSERT_EQ(cudaMalloc(&p, 4096), cudaSuccess);
  std::vector<char> data(4096, 'x');
  ASSERT_EQ(cudaMemcpy(p, data.data(), 4096, cudaMemcpyHostToDevice),
            cudaSuccess);
  // The same pointer is visible through the HIP API — one runtime.
  EXPECT_EQ(hipFree(p), hipSuccess);

  cudaStream_t s = nullptr;
  ASSERT_EQ(cudaStreamCreate(&s), cudaSuccess);
  EXPECT_EQ(cudaStreamSynchronize(s), cudaSuccess);
  EXPECT_EQ(cudaStreamDestroy(s), cudaSuccess);
  EXPECT_EQ(cudaGetDevice(nullptr), cudaErrorInvalidValue);
}

TEST_F(HipRuntimeTest, FlavorOverheadTiny) {
  auto& rt = Runtime::instance();
  rt.set_flavor(ApiFlavor::kCuda);
  EXPECT_DOUBLE_EQ(rt.flavor_overhead(), 0.0);
  rt.set_flavor(ApiFlavor::kHip);
  EXPECT_GT(rt.flavor_overhead(), 0.0);
  EXPECT_LT(rt.flavor_overhead(), 1e-7);  // header-only veneer
}

}  // namespace
}  // namespace exa::hip
