#include "mathlib/fft.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "mathlib/dense.hpp"
#include "support/rng.hpp"

namespace exa::ml {
namespace {

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<zcomplex> x(8, zcomplex{});
  x[0] = {1.0, 0.0};
  fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  std::vector<zcomplex> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * std::numbers::pi * tone * i / n;
    x[i] = {std::cos(phase), std::sin(phase)};
  }
  fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double mag = std::abs(x[k]);
    if (k == tone) EXPECT_NEAR(mag, static_cast<double>(n), 1e-9);
    else EXPECT_NEAR(mag, 0.0, 1e-9);
  }
}

TEST(Fft, RoundTripIdentity) {
  support::Rng rng(21);
  std::vector<zcomplex> x(256);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  const std::vector<zcomplex> orig = x;
  fft(x, false);
  fft(x, true);
  EXPECT_LT(rel_error<zcomplex>(x, orig), 1e-12);
}

TEST(Fft, ParsevalHolds) {
  support::Rng rng(33);
  const std::size_t n = 128;
  std::vector<zcomplex> x(n);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = {rng.normal(), rng.normal()};
    time_energy += std::norm(v);
  }
  fft(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              time_energy * 1e-12);
}

TEST(Fft, LinearityProperty) {
  support::Rng rng(4);
  const std::size_t n = 64;
  std::vector<zcomplex> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {rng.normal(), rng.normal()};
    b[i] = {rng.normal(), rng.normal()};
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft(a);
  fft(b);
  fft(sum);
  for (std::size_t i = 0; i < n; ++i) {
    const zcomplex expect = a[i] + 2.0 * b[i];
    EXPECT_NEAR(std::abs(sum[i] - expect), 0.0, 1e-9);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<zcomplex> x(12);
  EXPECT_THROW(fft(x), support::Error);
}

TEST(Fft, TrivialLengths) {
  std::vector<zcomplex> one = {{3.0, 1.0}};
  fft(one);
  EXPECT_DOUBLE_EQ(one[0].real(), 3.0);
  std::vector<zcomplex> empty;
  fft(empty);  // no-op, no crash
}

TEST(Fft, BatchMatchesIndividual) {
  support::Rng rng(8);
  const std::size_t n = 32, count = 5;
  std::vector<zcomplex> batch(n * count);
  for (auto& v : batch) v = {rng.normal(), rng.normal()};
  std::vector<zcomplex> individual = batch;
  fft_batch(batch, n, count);
  for (std::size_t line = 0; line < count; ++line) {
    fft(std::span<zcomplex>(individual.data() + line * n, n));
  }
  EXPECT_LT(rel_error<zcomplex>(batch, individual), 1e-13);
}

TEST(Fft, Fft3dRoundTrip) {
  support::Rng rng(14);
  const std::size_t n = 8;
  std::vector<zcomplex> x(n * n * n);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  const auto orig = x;
  fft3d(x, n, n, n, false);
  fft3d(x, n, n, n, true);
  EXPECT_LT(rel_error<zcomplex>(x, orig), 1e-12);
}

TEST(Fft, Fft3dPlaneWave) {
  const std::size_t n = 8;
  std::vector<zcomplex> x(n * n * n);
  const std::size_t kx = 2, ky = 1, kz = 3;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const double phase = 2.0 * std::numbers::pi *
                             (static_cast<double>(kx * i + ky * j + kz * k)) /
                             static_cast<double>(n);
        x[(i * n + j) * n + k] = {std::cos(phase), std::sin(phase)};
      }
    }
  }
  fft3d(x, n, n, n, false);
  const std::size_t peak = (kx * n + ky) * n + kz;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (i == peak) {
      EXPECT_NEAR(std::abs(x[i]), static_cast<double>(n * n * n), 1e-8);
    } else {
      EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-8);
    }
  }
}

TEST(Fft, FlopCountConvention) {
  EXPECT_DOUBLE_EQ(fft_flops(1), 0.0);
  EXPECT_DOUBLE_EQ(fft_flops(1024), 5.0 * 1024.0 * 10.0);
}

TEST(Fft, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

}  // namespace
}  // namespace exa::ml
