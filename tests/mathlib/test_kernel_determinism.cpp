#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mathlib/dense.hpp"
#include "mathlib/fft.hpp"
#include "mathlib/lu.hpp"
#include "mathlib/reference.hpp"
#include "support/rng.hpp"

// The vectorized kernels (packed-panel GEMM, cached-twiddle simd FFT,
// row-parallel LU) must be *bitwise* equal to the serial scalar reference
// path — not tolerance-close. ctest re-runs this suite with EXA_THREADS
// pinned to 1/4/16 (see tests/CMakeLists.txt), which is what turns the
// memcmp checks below into cross-thread-count bit-identity regressions.

namespace exa::ml {
namespace {

template <typename T>
std::vector<T> random_matrix(std::size_t count, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<T> out(count);
  for (auto& x : out) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return out;
}

std::vector<zcomplex> random_zmatrix(std::size_t count, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<zcomplex> out(count);
  for (auto& x : out) x = zcomplex(rng.uniform(-1.0, 1.0),
                                   rng.uniform(-1.0, 1.0));
  return out;
}

template <typename T>
void expect_bitwise(const std::vector<T>& kernel,
                    const std::vector<T>& reference, const char* what) {
  ASSERT_EQ(kernel.size(), reference.size());
  EXPECT_EQ(std::memcmp(kernel.data(), reference.data(),
                        kernel.size() * sizeof(T)),
            0)
      << what << " diverged bitwise from the scalar reference";
}

TEST(KernelDeterminism, DgemmMatchesReferenceBitwise) {
  // Sizes straddle the MR=4/NR=32 tile edges (ragged rows and columns).
  for (const auto [m, n, k] : {std::array<std::size_t, 3>{96, 96, 96},
                               {130, 67, 75},
                               {17, 200, 33}}) {
    const auto a = random_matrix<double>(m * k, 0xD0 + m);
    const auto b = random_matrix<double>(k * n, 0xD1 + n);
    auto c1 = random_matrix<double>(m * n, 0xD2 + k);
    auto c2 = c1;
    gemm<double>(a, b, c1, m, n, k, 1.25, 0.5);
    gemm_reference<double>(a, b, c2, m, n, k, 1.25, 0.5);
    expect_bitwise(c1, c2, "dgemm");
  }
}

TEST(KernelDeterminism, SgemmMatchesReferenceBitwise) {
  const std::size_t m = 100, n = 90, k = 110;
  const auto a = random_matrix<float>(m * k, 0x51);
  const auto b = random_matrix<float>(k * n, 0x52);
  auto c1 = random_matrix<float>(m * n, 0x53);
  auto c2 = c1;
  gemm<float>(a, b, c1, m, n, k, 0.75f, 1.0f);
  gemm_reference<float>(a, b, c2, m, n, k, 0.75f, 1.0f);
  expect_bitwise(c1, c2, "sgemm");
}

TEST(KernelDeterminism, ZgemmMatchesReferenceBitwise) {
  const std::size_t m = 80, n = 70, k = 90;
  const auto a = random_zmatrix(m * k, 0xC0);
  const auto b = random_zmatrix(k * n, 0xC1);
  auto c1 = random_zmatrix(m * n, 0xC2);
  auto c2 = c1;
  const zcomplex alpha(1.5, -0.25);
  const zcomplex beta(0.5, 0.125);
  gemm<zcomplex>(a, b, c1, m, n, k, alpha, beta);
  gemm_reference<zcomplex>(a, b, c2, m, n, k, alpha, beta);
  expect_bitwise(c1, c2, "zgemm");
}

TEST(KernelDeterminism, FftMatchesReferenceBitwise) {
  for (const std::size_t n : {2u, 8u, 64u, 1024u, 4096u}) {
    auto x1 = random_zmatrix(n, 0xF0 + n);
    auto x2 = x1;
    fft(x1, /*inverse=*/false);
    fft_reference(x2, /*inverse=*/false);
    expect_bitwise(x1, x2, "fft(forward)");
    fft(x1, /*inverse=*/true);
    fft_reference(x2, /*inverse=*/true);
    expect_bitwise(x1, x2, "fft(inverse)");
  }
}

TEST(KernelDeterminism, FftBatchMatchesReferencePerLine) {
  const std::size_t n = 256, count = 40;
  auto batch = random_zmatrix(n * count, 0xFB);
  auto lines = batch;
  fft_batch(batch, n, count);
  for (std::size_t line = 0; line < count; ++line) {
    fft_reference(std::span<zcomplex>(lines).subspan(line * n, n));
  }
  expect_bitwise(batch, lines, "fft_batch");
}

TEST(KernelDeterminism, DgetrfMatchesReferenceBitwise) {
  // 200 crosses the kParallelRows=128 dispatch threshold, so early
  // columns take the pool path and late columns the serial path.
  for (const std::size_t n : {48u, 200u}) {
    auto a1 = random_matrix<double>(n * n, 0x10 + n);
    auto a2 = a1;
    std::vector<int> p1(n);
    std::vector<int> p2(n);
    const int info1 = dgetrf(a1, n, p1);
    const int info2 = getrf_reference(a2, n, p2);
    EXPECT_EQ(info1, info2);
    EXPECT_EQ(p1, p2);
    expect_bitwise(a1, a2, "dgetrf");
  }
}

}  // namespace
}  // namespace exa::ml
