#include "mathlib/lu.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "mathlib/dense.hpp"
#include "support/rng.hpp"

namespace exa::ml {
namespace {

std::vector<zcomplex> random_nonsingular(std::size_t n, support::Rng& rng) {
  std::vector<zcomplex> a(n * n);
  for (auto& x : a) x = {rng.normal(), rng.normal()};
  // Diagonal boost guarantees nonsingularity.
  for (std::size_t i = 0; i < n; ++i) {
    a[i * n + i] += zcomplex{4.0 + static_cast<double>(n) * 0.2, 0.0};
  }
  return a;
}

TEST(Lu, ZgetrfZgetrsSolvesSystem) {
  support::Rng rng(3);
  const std::size_t n = 24;
  const std::vector<zcomplex> a = random_nonsingular(n, rng);
  std::vector<zcomplex> x_true(n);
  for (auto& v : x_true) v = {rng.normal(), rng.normal()};
  // b = A x
  std::vector<zcomplex> b(n, zcomplex{});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
  }
  std::vector<zcomplex> lu = a;
  std::vector<int> piv(n);
  ASSERT_EQ(zgetrf(lu, n, piv), 0);
  std::vector<zcomplex> x = b;  // nrhs = 1
  zgetrs(lu, n, piv, x, 1);
  EXPECT_LT(rel_error<zcomplex>(x, x_true), 1e-10);
}

TEST(Lu, ZgetrfReportsSingular) {
  std::vector<zcomplex> a = {{1, 0}, {2, 0}, {2, 0}, {4, 0}};  // rank 1
  std::vector<int> piv(2);
  EXPECT_NE(zgetrf(a, 2, piv), 0);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  std::vector<zcomplex> a = {{0, 0}, {1, 0}, {1, 0}, {0, 0}};  // antidiag
  std::vector<int> piv(2);
  ASSERT_EQ(zgetrf(a, 2, piv), 0);
  std::vector<zcomplex> b = {{2, 0}, {3, 0}};
  zgetrs(a, 2, piv, b, 1);
  // Solution of [[0,1],[1,0]] x = [2,3] is [3,2].
  EXPECT_NEAR(b[0].real(), 3.0, 1e-12);
  EXPECT_NEAR(b[1].real(), 2.0, 1e-12);
}

TEST(Lu, MultipleRhs) {
  support::Rng rng(5);
  const std::size_t n = 12;
  const std::size_t nrhs = 4;
  const std::vector<zcomplex> a = random_nonsingular(n, rng);
  std::vector<zcomplex> lu = a;
  std::vector<int> piv(n);
  ASSERT_EQ(zgetrf(lu, n, piv), 0);
  // Identity RHS: solution is the inverse; verify A * A^-1 = I.
  std::vector<zcomplex> rhs(n * nrhs, zcomplex{});
  for (std::size_t i = 0; i < nrhs; ++i) rhs[i * nrhs + i] = {1.0, 0.0};
  zgetrs(lu, n, piv, rhs, nrhs);
  std::vector<zcomplex> prod(n * nrhs, zcomplex{});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < nrhs; ++j) {
      for (std::size_t p = 0; p < n; ++p) {
        prod[i * nrhs + j] += a[i * n + p] * rhs[p * nrhs + j];
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < nrhs; ++j) {
      const double expected = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(prod[i * nrhs + j].real(), expected, 1e-10);
      EXPECT_NEAR(prod[i * nrhs + j].imag(), 0.0, 1e-10);
    }
  }
}

TEST(Lu, ZinverseIsActualInverse) {
  support::Rng rng(9);
  const std::size_t n = 16;
  const std::vector<zcomplex> a = random_nonsingular(n, rng);
  const std::vector<zcomplex> inv = zinverse(a, n);
  std::vector<zcomplex> prod(n * n, zcomplex{});
  zgemm(a, inv, prod, n, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double expected = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(prod[i * n + j].real(), expected, 1e-9);
      EXPECT_NEAR(prod[i * n + j].imag(), 0.0, 1e-9);
    }
  }
}

// The LSMS equivalence: block inversion and LU produce the same top-left
// inverse tile, across several matrix/block shapes.
class BlockLuEquivalence
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(BlockLuEquivalence, MatchesFullInverseTopLeft) {
  const auto [nblocks, block] = GetParam();
  const std::size_t n = nblocks * block;
  support::Rng rng(1000 + n);
  const std::vector<zcomplex> a = random_nonsingular(n, rng);

  std::vector<zcomplex> work = a;
  std::vector<zcomplex> tile(block * block);
  zblock_lu_inverse_topleft(work, n, block, tile);

  const std::vector<zcomplex> inv = zinverse(a, n);
  std::vector<zcomplex> ref(block * block);
  for (std::size_t i = 0; i < block; ++i) {
    for (std::size_t j = 0; j < block; ++j) ref[i * block + j] = inv[i * n + j];
  }
  EXPECT_LT(rel_error<zcomplex>(tile, ref), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockLuEquivalence,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(2, 4),
                      std::make_pair<std::size_t, std::size_t>(3, 8),
                      std::make_pair<std::size_t, std::size_t>(5, 6),
                      std::make_pair<std::size_t, std::size_t>(1, 10),
                      std::make_pair<std::size_t, std::size_t>(8, 4)));

TEST(Lu, DgetrfSolvesRealSystem) {
  support::Rng rng(77);
  const std::size_t n = 10;
  std::vector<double> a(n * n);
  for (auto& x : a) x = rng.normal();
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += 6.0;
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.normal();
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
  }
  std::vector<double> lu = a;
  std::vector<int> piv(n);
  ASSERT_EQ(dgetrf(lu, n, piv), 0);
  dgetrs(lu, n, piv, b, 1);
  EXPECT_LT(rel_error<double>(b, x_true), 1e-10);
}

TEST(Lu, BatchedSolvesAllSystems) {
  support::Rng rng(88);
  constexpr std::size_t n = 6;
  constexpr std::size_t count = 32;
  std::vector<double> a(n * n * count);
  std::vector<double> x_true(n * count);
  std::vector<double> b(n * count, 0.0);
  for (std::size_t c = 0; c < count; ++c) {
    for (std::size_t i = 0; i < n * n; ++i) a[c * n * n + i] = rng.normal();
    for (std::size_t i = 0; i < n; ++i) {
      a[c * n * n + i * n + i] += 5.0;
      x_true[c * n + i] = rng.normal();
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        b[c * n + i] += a[c * n * n + i * n + j] * x_true[c * n + j];
      }
    }
  }
  std::vector<double> lu = a;
  std::vector<int> piv(n * count);
  ASSERT_EQ(dgetrf_batched(lu, n, count, piv), 0);
  dgetrs_batched(lu, n, count, piv, b, 1);
  EXPECT_LT(rel_error<double>(b, x_true), 1e-10);
}

TEST(Lu, BatchedReportsSingularMember) {
  constexpr std::size_t n = 2;
  std::vector<double> a = {1.0, 0.0, 0.0, 1.0,   // identity: fine
                           1.0, 2.0, 2.0, 4.0};  // rank 1: singular
  std::vector<int> piv(n * 2);
  EXPECT_NE(dgetrf_batched(a, n, 2, piv), 0);
}

TEST(Lu, FlopCounts) {
  EXPECT_NEAR(zgetrf_flops(100), 8.0 / 3.0 * 1e6, 1.0);
  EXPECT_DOUBLE_EQ(zgetrs_flops(100, 10), 8.0 * 100.0 * 100.0 * 10.0);
}

}  // namespace
}  // namespace exa::ml
