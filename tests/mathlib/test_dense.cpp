#include "mathlib/dense.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace exa::ml {
namespace {

TEST(Dense, DgemmSmallKnownResult) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {5, 6, 7, 8};
  std::vector<double> c(4, 0.0);
  dgemm(a, b, c, 2, 2, 2);
  EXPECT_DOUBLE_EQ(c[0], 19.0);
  EXPECT_DOUBLE_EQ(c[1], 22.0);
  EXPECT_DOUBLE_EQ(c[2], 43.0);
  EXPECT_DOUBLE_EQ(c[3], 50.0);
}

TEST(Dense, AlphaBetaSemantics) {
  const std::vector<double> a = {1, 0, 0, 1};  // identity
  const std::vector<double> b = {2, 0, 0, 2};
  std::vector<double> c = {10, 0, 0, 10};
  dgemm(a, b, c, 2, 2, 2, 3.0, 0.5);  // C = 3*A*B + 0.5*C
  EXPECT_DOUBLE_EQ(c[0], 11.0);
  EXPECT_DOUBLE_EQ(c[3], 11.0);
}

TEST(Dense, GemmAgainstNaiveRandom) {
  support::Rng rng(101);
  const std::size_t m = 37, n = 29, k = 53;  // awkward, non-tile sizes
  std::vector<double> a(m * k), b(k * n), c(m * n, 0.0), ref(m * n, 0.0);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  dgemm(a, b, c, m, n, k);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += a[i * k + p] * b[p * n + j];
      ref[i * n + j] = s;
    }
  }
  EXPECT_LT(rel_error<double>(c, ref), 1e-13);
}

TEST(Dense, ZgemmComplex) {
  support::Rng rng(7);
  const std::size_t n = 16;
  std::vector<zcomplex> a(n * n), b(n * n), c(n * n), ref(n * n);
  for (auto& x : a) x = {rng.normal(), rng.normal()};
  for (auto& x : b) x = {rng.normal(), rng.normal()};
  zgemm(a, b, c, n, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      zcomplex s{};
      for (std::size_t p = 0; p < n; ++p) s += a[i * n + p] * b[p * n + j];
      ref[i * n + j] = s;
    }
  }
  EXPECT_LT(rel_error<zcomplex>(c, ref), 1e-13);
}

TEST(Dense, GemmDegenerateDims) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, 5, 6};
  std::vector<double> c(1, 99.0);
  dgemm(a, b, c, 1, 1, 3);  // dot product
  EXPECT_DOUBLE_EQ(c[0], 32.0);
}

TEST(Dense, RoundToF16Properties) {
  // Small integers are exact in binary16.
  for (float v : {0.0f, 1.0f, -1.0f, 2.0f, 100.0f, 2047.0f}) {
    EXPECT_EQ(round_to_f16(v), v);
  }
  // 2049 is not representable (11-bit significand): rounds to even.
  EXPECT_EQ(round_to_f16(2049.0f), 2048.0f);
  // Above binary16 max clamps.
  EXPECT_EQ(round_to_f16(1e6f), 65504.0f);
  EXPECT_EQ(round_to_f16(-1e6f), -65504.0f);
  // Subnormals flush to zero.
  EXPECT_EQ(round_to_f16(1e-6f), 0.0f);
  // Rounding error bounded by 2^-11 relative.
  const float x = 0.1f;
  EXPECT_NEAR(round_to_f16(x), x, x / 1024.0f);
}

TEST(Dense, MixedPrecisionGemmExactForSmallIntegers) {
  // 0/1 matrices with k <= 2048: FP16 inputs and FP32 accumulation are
  // exact — the CoMet correctness precondition.
  support::Rng rng(55);
  const std::size_t m = 8, n = 8, k = 512;
  std::vector<float> a(m * k), b(k * n);
  for (auto& x : a) x = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  for (auto& x : b) x = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  std::vector<float> c(m * n), ref(m * n, 0.0f);
  hgemm_f32acc(a, b, c, m, n, k);
  sgemm(a, b, ref, m, n, k);
  for (std::size_t i = 0; i < m * n; ++i) EXPECT_EQ(c[i], ref[i]);
}

TEST(Dense, MixedPrecisionQuantizesInputs) {
  // A value that differs after FP16 rounding must show the quantization.
  std::vector<float> a = {2049.0f};
  std::vector<float> b = {1.0f};
  std::vector<float> c(1, 0.0f);
  hgemm_f32acc(a, b, c, 1, 1, 1);
  EXPECT_EQ(c[0], 2048.0f);
}

TEST(Dense, RelError) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(rel_error<double>(x, y), 0.0);
  const std::vector<double> z = {1.1, 2.0};
  EXPECT_GT(rel_error<double>(z, y), 0.0);
}

TEST(Dense, FlopConventions) {
  EXPECT_DOUBLE_EQ(gemm_flops_real(10, 20, 30), 12000.0);
  EXPECT_DOUBLE_EQ(gemm_flops_complex(10, 20, 30), 48000.0);
}

}  // namespace
}  // namespace exa::ml
