#include "mathlib/device_blas.hpp"

#include <gtest/gtest.h>

#include "mathlib/dense.hpp"

namespace exa::ml {
namespace {

using arch::DType;

class DeviceBlasTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TuningRegistry::instance().clear();
    hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  }
  void TearDown() override { TuningRegistry::instance().clear(); }
};

TEST_F(DeviceBlasTest, GemmEfficiencyGrowsWithSize) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const double tiny = gemm_efficiency(gpu, DType::kF64, false, 8, 8, 8);
  const double small = gemm_efficiency(gpu, DType::kF64, false, 100, 100, 100);
  const double large = gemm_efficiency(gpu, DType::kF64, false, 4096, 4096, 4096);
  EXPECT_LT(tiny, small);
  EXPECT_LT(small, large);
  EXPECT_GT(large, 0.8);
}

TEST_F(DeviceBlasTest, ShortestDimensionGoverns) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  // A skinny GEMM is punished even when the other dims are huge.
  EXPECT_LT(gemm_efficiency(gpu, DType::kF64, false, 8192, 8192, 8),
            gemm_efficiency(gpu, DType::kF64, false, 512, 512, 512));
}

TEST_F(DeviceBlasTest, MatrixCoreSustainedAboutHalfPeak) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const double eff = gemm_efficiency(gpu, DType::kF64, true, 8192, 8192, 8192);
  EXPECT_NEAR(eff, 0.5, 0.05);
}

TEST_F(DeviceBlasTest, TuningRegistryBoostsRegisteredShapes) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const double before = gemm_efficiency(gpu, DType::kF64, false, 160, 160, 700);
  TuningRegistry::instance().register_gemm("CoMet", 160, 160, 700, DType::kF64);
  const double after = gemm_efficiency(gpu, DType::kF64, false, 160, 160, 700);
  EXPECT_GT(after, before);
  EXPECT_GE(after, 0.92);
  // Other shapes unaffected.
  EXPECT_DOUBLE_EQ(gemm_efficiency(gpu, DType::kF64, false, 161, 160, 700),
                   before);
}

TEST_F(DeviceBlasTest, GemmProfileCounts) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const sim::KernelProfile p =
      gemm_profile(gpu, DType::kF64, false, 100, 200, 300);
  EXPECT_DOUBLE_EQ(p.total_flops(), 2.0 * 100 * 200 * 300);
  EXPECT_GT(p.bytes_read, (100.0 * 300 + 300 * 200) * 8);
  // Complex GEMM: 4x the real flops.
  const sim::KernelProfile z =
      gemm_profile(gpu, DType::kC64, false, 100, 200, 300);
  EXPECT_DOUBLE_EQ(z.total_flops(), 8.0 * 100 * 200 * 300);
}

TEST_F(DeviceBlasTest, GetrfCheaperPerFlopThanItsOwnSmallSizes) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  EXPECT_LT(getrf_efficiency(gpu, 64), getrf_efficiency(gpu, 4096));
}

TEST_F(DeviceBlasTest, FftProfileMemoryBound) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const sim::KernelProfile p = fft_profile(gpu, 1 << 20, 4);
  // 5 N log N flops, huge traffic: FFT should sit below the machine
  // balance point (memory bound).
  EXPECT_LT(p.arithmetic_intensity(), gpu.balance_fp64());
}

TEST_F(DeviceBlasTest, SpmvMultiVectorAmortizesMatrixTraffic) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const sim::KernelProfile one = spmv_profile(gpu, 100000, 2600000, 1);
  const sim::KernelProfile two = spmv_profile(gpu, 100000, 2600000, 2);
  EXPECT_DOUBLE_EQ(two.total_flops(), 2.0 * one.total_flops());
  // Two fused vectors move much less than 2x the bytes.
  EXPECT_LT(two.total_bytes(), 1.7 * one.total_bytes());
}

TEST_F(DeviceBlasTest, LaunchHelpersChargeDevice) {
  auto& dev = hip::Runtime::instance().current_device();
  const auto k0 = dev.counters().kernels_launched;
  const sim::KernelTiming t = launch_gemm(DType::kF64, true, 1024, 1024, 1024);
  EXPECT_GT(t.total_s, 0.0);
  EXPECT_EQ(dev.counters().kernels_launched, k0 + 1);
  launch_getrf(DType::kC64, 512);
  launch_getrs(DType::kC64, 512, 16);
  launch_fft(1 << 16, 8);
  EXPECT_EQ(dev.counters().kernels_launched, k0 + 4);
}

TEST_F(DeviceBlasTest, SortProfileScalesWithElementSize) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const auto small = sort_profile(gpu, 1 << 20, 4);
  const auto large = sort_profile(gpu, 1 << 20, 8);
  EXPECT_GT(large.total_bytes(), small.total_bytes());
}

}  // namespace
}  // namespace exa::ml
