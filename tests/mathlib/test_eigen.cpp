#include "mathlib/eigen.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mathlib/dense.hpp"
#include "sim/exec_model.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace exa::ml {
namespace {

std::vector<double> random_symmetric(std::size_t n, support::Rng& rng) {
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal();
      a[i * n + j] = v;
      a[j * n + i] = v;
    }
  }
  return a;
}

TEST(Eigen, DiagonalMatrixTrivial) {
  const std::vector<double> a = {3.0, 0.0, 0.0,
                                 0.0, 1.0, 0.0,
                                 0.0, 0.0, 2.0};
  std::vector<double> evals(3), evecs(9);
  syev(a, 3, evals, evecs);
  EXPECT_NEAR(evals[0], 1.0, 1e-12);
  EXPECT_NEAR(evals[1], 2.0, 1e-12);
  EXPECT_NEAR(evals[2], 3.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]]: eigenvalues 1 and 3.
  const std::vector<double> a = {2.0, 1.0, 1.0, 2.0};
  std::vector<double> evals(2), evecs(4);
  syev(a, 2, evals, evecs);
  EXPECT_NEAR(evals[0], 1.0, 1e-12);
  EXPECT_NEAR(evals[1], 3.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(evecs[0 * 2 + 1]), 1.0 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(evecs[0 * 2 + 1], evecs[1 * 2 + 1], 1e-10);
}

TEST(Eigen, ReconstructsMatrix) {
  support::Rng rng(12);
  const std::size_t n = 12;
  const auto a = random_symmetric(n, rng);
  std::vector<double> evals(n), v(n * n);
  syev(a, n, evals, v);
  // A = V diag(w) V^T.
  std::vector<double> vd(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t j = 0; j < n; ++j) vd[r * n + j] = v[r * n + j] * evals[j];
  }
  std::vector<double> vt(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t j = 0; j < n; ++j) vt[r * n + j] = v[j * n + r];
  }
  std::vector<double> recon(n * n, 0.0);
  dgemm(vd, vt, recon, n, n, n);
  EXPECT_LT(rel_error<double>(recon, a), 1e-9);
}

TEST(Eigen, VectorsOrthonormal) {
  support::Rng rng(14);
  const std::size_t n = 10;
  const auto a = random_symmetric(n, rng);
  std::vector<double> evals(n), v(n * n);
  syev(a, n, evals, v);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t r = 0; r < n; ++r) dot += v[r * n + i] * v[r * n + j];
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Eigen, TraceAndOrderingInvariants) {
  support::Rng rng(16);
  const std::size_t n = 16;
  const auto a = random_symmetric(n, rng);
  std::vector<double> evals(n);
  syev_values(a, n, evals);
  // Ascending order.
  for (std::size_t i = 1; i < n; ++i) EXPECT_LE(evals[i - 1], evals[i]);
  // Trace preserved.
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += a[i * n + i];
  double sum = 0.0;
  for (const double w : evals) sum += w;
  EXPECT_NEAR(sum, trace, 1e-9 * std::max(1.0, std::fabs(trace)));
}

TEST(Eigen, ValuesOnlyMatchesFull) {
  support::Rng rng(18);
  const std::size_t n = 9;
  const auto a = random_symmetric(n, rng);
  std::vector<double> w1(n), w2(n), v(n * n);
  syev(a, n, w1, v);
  syev_values(a, n, w2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(w1[i], w2[i], 1e-9);
}

TEST(Eigen, AsymmetricRejected) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> evals(2), evecs(4);
  EXPECT_THROW(syev(a, 2, evals, evecs), support::Error);
}

TEST(Eigen, DivideAndConquerProfileFaster) {
  // The §3.1 upgrade: the D&C eigensolver beats QR iteration on the GPU.
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const sim::LaunchConfig launch{1u << 14, 256};
  const double qr =
      sim::kernel_timing(gpu, syevd_profile(gpu, 4096, EigenAlgo::kQrIteration),
                         launch)
          .total_s;
  const double dc = sim::kernel_timing(
                        gpu, syevd_profile(gpu, 4096, EigenAlgo::kDivideAndConquer),
                        launch)
                        .total_s;
  EXPECT_GT(qr / dc, 1.5);
}

}  // namespace
}  // namespace exa::ml
