/// Unit tests of the in-process metric proxy (svc::MetricProxy):
/// counter/gauge registration semantics, snapshotting, the Prometheus
/// text exporter (round-tripped through a minimal parser written here),
/// the zero-overhead-off profile buffer, and the Extra-P export/fit path
/// — a planted a + b·p^c model must be recovered both in-process
/// (fit_live) and from the exported JSONL (trace::load_jsonl +
/// fit_profiles). The SvcMetricsExport fixture additionally writes the
/// sweep to the path in EXA_SVC_PLANT_JSONL so ctest can chain the
/// standalone `exaready-scaling-fit` CLI onto the same file.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/assert.hpp"
#include "svc/metrics.hpp"
#include "trace/profile.hpp"
#include "trace/scaling_model.hpp"

namespace exa::svc {
namespace {

/// Minimal Prometheus text-exposition parser: `# TYPE <name> <kind>`
/// comment lines followed by `<name> <value>` sample lines. Returns
/// name → (kind, value); throws on any malformed line, untyped sample,
/// or type/sample name mismatch, so the round-trip test fails loudly.
std::map<std::string, std::pair<std::string, double>> parse_prometheus(
    const std::string& text) {
  std::map<std::string, std::pair<std::string, double>> out;
  std::map<std::string, std::string> types;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    if (line[0] == '#') {
      std::string hash, keyword, name, kind;
      fields >> hash >> keyword >> name >> kind;
      if (keyword != "TYPE" || name.empty() ||
          (kind != "counter" && kind != "gauge")) {
        throw support::Error("bad TYPE line: " + line);
      }
      types[name] = kind;
      continue;
    }
    std::string name;
    double value = 0.0;
    if (!(fields >> name >> value)) {
      throw support::Error("bad sample line: " + line);
    }
    const auto type = types.find(name);
    if (type == types.end()) {
      throw support::Error("sample without TYPE: " + name);
    }
    out[name] = {type->second, value};
  }
  return out;
}

TEST(SvcMetrics, CounterAndGaugeSemantics) {
  MetricProxy proxy;
  Counter& jobs = proxy.counter("jobs_total");
  jobs.add();
  jobs.add(41);
  EXPECT_EQ(jobs.value(), 42u);
  // Same name → same instance (hot paths cache the reference).
  EXPECT_EQ(&proxy.counter("jobs_total"), &jobs);

  Gauge& depth = proxy.gauge("queue_depth");
  depth.set(7.5);
  EXPECT_EQ(depth.value(), 7.5);
  EXPECT_EQ(&proxy.gauge("queue_depth"), &depth);

  // One name cannot be both a counter and a gauge.
  EXPECT_THROW((void)proxy.gauge("jobs_total"), support::Error);
  EXPECT_THROW((void)proxy.counter("queue_depth"), support::Error);
}

TEST(SvcMetrics, SnapshotScrapesEverything) {
  MetricProxy proxy;
  proxy.counter("a_total").add(3);
  proxy.gauge("b").set(-2.5);
  const MetricSnapshot snap = proxy.snapshot();
  EXPECT_GE(snap.uptime_s, 0.0);
  ASSERT_EQ(snap.values.count("a_total"), 1u);
  ASSERT_EQ(snap.values.count("b"), 1u);
  EXPECT_EQ(snap.values.at("a_total"), 3.0);
  EXPECT_EQ(snap.values.at("b"), -2.5);
}

TEST(SvcMetrics, PrometheusTextRoundTrips) {
  MetricProxy proxy;
  proxy.counter("svc_jobs_submitted_total").add(12000);
  proxy.gauge("svc_queue_depth").set(17.0);
  // Names needing sanitization: dots/dashes → '_', leading digit prefixed.
  proxy.counter("svc.jobs-weird").add(5);
  proxy.gauge("9lives").set(9.0);

  const auto parsed = parse_prometheus(proxy.prometheus_text());
  ASSERT_EQ(parsed.size(), 4u);
  EXPECT_EQ(parsed.at("svc_jobs_submitted_total"),
            (std::pair<std::string, double>{"counter", 12000.0}));
  EXPECT_EQ(parsed.at("svc_queue_depth"),
            (std::pair<std::string, double>{"gauge", 17.0}));
  EXPECT_EQ(parsed.at("svc_jobs_weird"),
            (std::pair<std::string, double>{"counter", 5.0}));
  EXPECT_EQ(parsed.at("_9lives"),
            (std::pair<std::string, double>{"gauge", 9.0}));
}

TEST(SvcMetrics, ProfileRecordingIsOffByDefault) {
  MetricProxy proxy;
  EXPECT_FALSE(proxy.profiles_enabled());
  proxy.record_profile("svc/ignored", 64.0, 1.0);
  EXPECT_TRUE(proxy.profile_samples().empty());

  proxy.enable_profiles();
  proxy.record_profile("svc/pele", 64.0, 0.125);
  const auto samples = proxy.profile_samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].callpath, "svc/pele");
  EXPECT_EQ(samples[0].metric, "time");
  EXPECT_EQ(samples[0].value, 0.125);
  ASSERT_EQ(samples[0].params.count("p"), 1u);
  EXPECT_EQ(samples[0].params.at("p"), 64.0);

  proxy.disable_profiles();
  proxy.record_profile("svc/ignored", 128.0, 2.0);
  EXPECT_EQ(proxy.profile_samples().size(), 1u);
}

TEST(SvcMetrics, SamplerCollectsASeries) {
  MetricProxy proxy;
  Counter& ticks = proxy.counter("ticks_total");
  proxy.start_sampler(std::chrono::milliseconds(5));
  EXPECT_THROW(proxy.start_sampler(std::chrono::milliseconds(5)),
               support::Error);
  for (int i = 0; i < 5; ++i) {
    ticks.add();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto series = proxy.stop_sampler();
  ASSERT_GE(series.size(), 2u);
  // Counters are monotone, so the series must be non-decreasing.
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].values.at("ticks_total"),
              series[i - 1].values.at("ticks_total"));
    EXPECT_GE(series[i].uptime_s, series[i - 1].uptime_s);
  }
  // Stopped: safe to call again, returns the (empty) next series.
  EXPECT_TRUE(proxy.stop_sampler().empty());
}

/// The planted model the export/fit pipeline must recover. c = 1.5 is in
/// the fitter's default exponent grid, so the recovery is exact.
constexpr double kPlantA = 0.5;
constexpr double kPlantB = 0.02;
constexpr double kPlantC = 1.5;

double planted(double p) { return kPlantA + kPlantB * std::pow(p, kPlantC); }

void record_planted_sweep(MetricProxy& proxy) {
  proxy.enable_profiles();
  for (const double p : {64.0, 256.0, 1024.0}) {  // the 3-size sweep
    proxy.record_profile("svc/planted_step", p, planted(p));
  }
}

void expect_recovers_plant(const trace::ScalingFit& fit) {
  EXPECT_EQ(fit.points, 3u);
  EXPECT_GT(fit.r2, 0.999);
  EXPECT_EQ(fit.d, 0);
  EXPECT_NEAR(fit.c, kPlantC, 1e-9);
  EXPECT_NEAR(fit.a, kPlantA, 1e-6);
  EXPECT_NEAR(fit.b, kPlantB, 1e-9);
  EXPECT_NEAR(fit.eval(4096.0), planted(4096.0), 1e-6 * planted(4096.0));
}

TEST(SvcMetrics, FitLiveRecoversPlantedModel) {
  MetricProxy proxy;
  record_planted_sweep(proxy);
  const auto fits = proxy.fit_live();
  ASSERT_EQ(fits.count("svc/planted_step"), 1u);
  expect_recovers_plant(fits.at("svc/planted_step"));
}

/// Fixture half of the ctest pipeline (svc_extrap_plant →
/// svc_extrap_fit): exports the planted sweep as Extra-P JSONL — to
/// $EXA_SVC_PLANT_JSONL when ctest provides it, else a temp file — and
/// proves the file itself round-trips through the offline fitter. The
/// follow-up ctest runs `exaready-scaling-fit --min-r2` over the same
/// file.
TEST(SvcMetricsExport, PlantedModelJsonlFeedsScalingFit) {
  const char* env = std::getenv("EXA_SVC_PLANT_JSONL");
  const std::string path =
      env != nullptr ? env : testing::TempDir() + "svc_plant.jsonl";
  std::remove(path.c_str());  // export appends; start from a clean file

  {
    MetricProxy proxy;
    record_planted_sweep(proxy);
    proxy.export_extrap_jsonl(path);
  }

  const std::vector<trace::ProfileSample> loaded = trace::load_jsonl(path);
  ASSERT_EQ(loaded.size(), 3u);
  const auto fits = trace::fit_profiles(loaded);
  ASSERT_EQ(fits.count("svc/planted_step"), 1u);
  expect_recovers_plant(fits.at("svc/planted_step"));
}

TEST(SvcMetricsExport, StreamingMirrorsBufferedExport) {
  const std::string streamed = testing::TempDir() + "svc_stream.jsonl";
  const std::string buffered = testing::TempDir() + "svc_buffer.jsonl";
  std::remove(streamed.c_str());
  std::remove(buffered.c_str());

  MetricProxy proxy;
  proxy.stream_profiles_to(streamed);  // implies enable_profiles()
  EXPECT_TRUE(proxy.profiles_enabled());
  record_planted_sweep(proxy);
  proxy.export_extrap_jsonl(buffered);

  // Same samples whether streamed line-by-line or exported at the end.
  const auto a = trace::load_jsonl(streamed);
  const auto b = trace::load_jsonl(buffered);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].callpath, b[i].callpath);
    EXPECT_EQ(a[i].metric, b[i].metric);
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].params, b[i].params);
  }
}

}  // namespace
}  // namespace exa::svc
