/// Soak/stress test of the always-on service: four producer threads
/// flood one Server with 10k mixed scenarios — pool draws under mixed
/// priorities, unique-key deadline jobs that expire at pop, and racing
/// cancellation attempts — then the suite audits the full ledger:
///
///   * no job lost or duplicated (the returned ids are exactly 1..N),
///   * conservation: submitted == completed + cancelled,
///   * the queue drains (depth 0, nothing left running),
///   * the dedupe identity completed − executed == dedupe_hits,
///   * every completed duplicate of a key saw the same bitwise report.
///
/// The ctest registrations re-run this suite with EXA_THREADS=1/4/16
/// (label "sanitize"), and the -DEXA_SANITIZE=thread build must pass it:
/// this is the race gate for the queue/dedupe/deadline machinery.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "svc/metrics.hpp"
#include "svc/server.hpp"

namespace exa::svc {
namespace {

/// Cheap distinct scenarios: tiny analytic model runs, so the 10k-job
/// soak spends its time in the scheduler, not the app models.
std::vector<Scenario> soak_pool() {
  std::vector<Scenario> pool;
  for (const int nodes : {1, 2, 4}) {
    for (const bool hydro : {false, true}) {
      Scenario s;
      s.app = App::kExaSky;
      s.nodes = nodes;
      s.params = {{"particles_per_rank", 1.0e5}, {"hydro", hydro ? 1.0 : 0.0}};
      pool.push_back(s);
    }
  }
  for (const int nodes : {1, 2}) {
    Scenario s;
    s.app = App::kGests;
    s.nodes = nodes;
    s.params = {{"n", 512.0}, {"pencils", 1.0}};
    pool.push_back(s);
  }
  for (const int nodes : {1, 2}) {
    Scenario s;
    s.app = App::kComet;
    s.nodes = nodes;
    s.params = {{"vectors_per_device", 512.0}, {"samples", 1000.0}};
    pool.push_back(s);
  }
  return pool;
}

TEST(SvcSoak, ProducerFloodLosesNoJob) {
  constexpr std::size_t kJobs = 10000;
  constexpr std::size_t kProducers = 4;
  const std::vector<Scenario> pool = soak_pool();

  MetricProxy metrics;
  ServerConfig config;
  config.workers = 0;  // EXA_THREADS when set — the ctest variants' knob
  config.queue_capacity = 1024;  // small enough to exercise backpressure
  config.metrics = &metrics;
  Server server(config);

  // Producer t submits jobs t, t+P, t+2P, ... — each from its own seeded
  // rng, collecting the ids the server handed back. Every 9th job is a
  // unique-key deadline job (expires at pop); every 11th draws a racing
  // cancel right after submit, which may win (job still queued) or lose
  // (already popped) — conservation must hold either way.
  std::vector<std::vector<JobId>> ids(kProducers);
  std::vector<std::vector<JobId>> deadline_ids(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      support::Rng rng(0x50ac'0000 + t);
      for (std::size_t i = t; i < kJobs; i += kProducers) {
        SubmitOptions opts;
        JobId id = 0;
        if (i % 9 == 8) {
          Scenario unique;
          unique.app = App::kExaSky;
          unique.params = {{"particles_per_rank", 2.0e9 + double(i)}};
          opts.deadline_tick = 0;  // always expires (ordinals start at 1)
          opts.dedupe = false;
          id = server.submit(unique, opts);
          deadline_ids[t].push_back(id);
        } else {
          opts.priority = int(rng.next() % 3);
          id = server.submit(pool[rng.next() % pool.size()], opts);
        }
        ids[t].push_back(id);
        if (i % 11 == 10) (void)server.cancel(id);
      }
    });
  }
  for (std::thread& p : producers) p.join();
  server.drain();

  // No job lost or duplicated: the ids handed out are exactly 1..kJobs.
  std::vector<JobId> all;
  all.reserve(kJobs);
  for (const auto& slice : ids) all.insert(all.end(), slice.begin(), slice.end());
  ASSERT_EQ(all.size(), kJobs);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < kJobs; ++i) ASSERT_EQ(all[i], JobId(i + 1));

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kJobs);
  // Conservation: every accepted job reached exactly one terminal state.
  EXPECT_EQ(stats.completed + stats.cancelled, kJobs);
  // The queue drained and nothing is left mid-flight.
  EXPECT_EQ(stats.queue_depth, 0u);
  // Dedupe identity: every completed job either ran distinctly or was
  // served by another execution — independent of worker count or timing.
  EXPECT_EQ(stats.completed - stats.executed, stats.dedupe_hits);
  // Every deadline job terminated cancelled — tick 0 can never survive a
  // pop, and the only other exit is winning a racing explicit cancel.
  std::size_t deadline_jobs = 0;
  for (const auto& slice : deadline_ids) {
    deadline_jobs += slice.size();
    for (const JobId id : slice) {
      EXPECT_EQ(server.status(id).state, JobState::kCancelled) << id;
    }
  }
  EXPECT_EQ(deadline_jobs, kJobs / 9);  // every 9th of 10k
  EXPECT_GE(stats.cancelled, deadline_jobs);
  EXPECT_GT(stats.expired, 0u);
  EXPECT_EQ(server.latencies().size(), kJobs);

  // Terminal-state audit + purity: duplicates of a scenario key must all
  // hold the same bitwise report.
  std::map<std::string, double> first_time;
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  for (JobId id = 1; id <= kJobs; ++id) {
    const JobStatus status = server.status(id);
    if (status.state == JobState::kCancelled) {
      ++cancelled;
      continue;
    }
    ASSERT_EQ(status.state, JobState::kCompleted) << "job " << id;
    EXPECT_TRUE(status.error.empty());
    ++completed;
    const std::string key = status.report.scenario.key();
    const auto [it, inserted] = first_time.emplace(key, status.report.time_s);
    if (!inserted) EXPECT_EQ(status.report.time_s, it->second) << key;
  }
  EXPECT_EQ(completed, stats.completed);
  EXPECT_EQ(cancelled, stats.cancelled);

  // The metric proxy saw the same ledger the stats did.
  const MetricSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.values.at("svc_jobs_submitted_total"), double(kJobs));
  EXPECT_EQ(snap.values.at("svc_jobs_completed_total"),
            double(stats.completed));
  EXPECT_EQ(snap.values.at("svc_jobs_cancelled_total"),
            double(stats.cancelled));
  EXPECT_EQ(snap.values.at("svc_dedupe_hits_total"),
            double(stats.dedupe_hits));
  EXPECT_EQ(snap.values.at("svc_queue_depth"), 0.0);
}

TEST(SvcSoak, PauseResumeUnderLoad) {
  // A smaller soak that toggles pause/resume while producers are active:
  // pausing must never strand a job (drain still terminates) and the
  // ledger must still balance.
  constexpr std::size_t kJobs = 2000;
  const std::vector<Scenario> pool = soak_pool();

  ServerConfig config;
  config.workers = 0;
  config.queue_capacity = 256;
  Server server(config);

  std::thread toggler([&] {
    for (int i = 0; i < 50; ++i) {
      server.pause();
      std::this_thread::yield();
      server.resume();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < 2; ++t) {
    producers.emplace_back([&, t] {
      support::Rng rng(t + 1);
      for (std::size_t i = t; i < kJobs; i += 2) {
        (void)server.submit(pool[rng.next() % pool.size()]);
      }
    });
  }
  for (std::thread& p : producers) p.join();
  toggler.join();
  server.resume();  // the toggler may have exited paused
  server.drain();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kJobs);
  EXPECT_EQ(stats.completed + stats.cancelled, kJobs);
  EXPECT_EQ(stats.cancelled, 0u);  // nothing here expires or cancels
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.completed - stats.executed, stats.dedupe_hits);
}

}  // namespace
}  // namespace exa::svc
