/// Property tests of the service scheduler (exa::qa core, EXA_QA_SEED
/// replayable): random submission/cancellation/deadline interleavings
/// checked against a single-threaded reference scheduler.
///
/// The load-bearing claim (server.hpp "Determinism for the property
/// suite"): submissions and cancellations admitted while the server is
/// paused, then resume() + drain(), execute in the fully-determined
/// (priority desc, submit order asc) order — so per-job terminal states,
/// the dedupe count, and the expiry set must match a 40-line sequential
/// model of the scheduler EXACTLY, no matter how many workers EXA_THREADS
/// grants the real server (the ctest variants pin 1/4/16). A second
/// property drops the pause and checks the timing-independent invariants
/// under live racing: conservation, the dedupe identity, and report
/// purity per scenario key.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qa/property.hpp"
#include "svc/server.hpp"

namespace exa::qa {
namespace {

using svc::App;
using svc::JobId;
using svc::JobState;
using svc::Scenario;
using svc::Server;
using svc::ServerConfig;
using svc::ServerStats;
using svc::SubmitOptions;

/// Small pool of cheap distinct scenarios (collisions are the point:
/// dedupe must fire often).
std::vector<Scenario> prop_pool() {
  std::vector<Scenario> pool;
  for (const int nodes : {1, 2}) {
    for (const bool hydro : {false, true}) {
      Scenario s;
      s.app = App::kExaSky;
      s.nodes = nodes;
      s.params = {{"particles_per_rank", 1.0e5}, {"hydro", hydro ? 1.0 : 0.0}};
      pool.push_back(s);
    }
  }
  return pool;
}

struct PlannedJob {
  std::size_t pool_index = 0;
  int priority = 0;
  std::int64_t deadline_tick = -1;
  bool dedupe = true;
  bool cancel = false;  ///< cancelled while the server is still paused
};

std::vector<PlannedJob> gen_plan(Gen& g, std::size_t jobs,
                                 std::size_t pool_size) {
  std::vector<PlannedJob> plan(jobs);
  for (PlannedJob& job : plan) {
    job.pool_index = g.index(pool_size);
    job.priority = int(g.range_int(0, 2));
    if (g.chance(0.3)) {
      job.deadline_tick = g.range_int(0, std::int64_t(jobs));
    }
    job.dedupe = !g.chance(0.15);
    job.cancel = g.chance(0.2);
  }
  return plan;
}

/// The sequential model: replays the exact pop-time rules of
/// Server::worker_loop over the fully-determined queue order.
struct ReferenceOutcome {
  std::vector<JobState> state;  ///< per submit index
  std::uint64_t executed = 0;
  std::uint64_t dedupe_hits = 0;
  std::uint64_t expired = 0;
};

ReferenceOutcome reference_schedule(const std::vector<PlannedJob>& plan) {
  ReferenceOutcome out;
  out.state.assign(plan.size(), JobState::kQueued);

  // Queue order: (priority desc, submission order asc); pre-resume
  // cancellations never reach the queue walk.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (plan[i].cancel) {
      out.state[i] = JobState::kCancelled;
    } else {
      order.push_back(i);
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return plan[a].priority > plan[b].priority;
                   });

  // Pop walk. Only dedupe-enabled executions populate the report cache
  // (a dedupe opt-out never creates a slot or a cache entry), and
  // expired jobs never execute, so they add nothing either.
  std::map<std::size_t, bool> cached;  // pool index → report cached
  std::uint64_t ordinal = 0;
  for (const std::size_t i : order) {
    const PlannedJob& job = plan[i];
    ++ordinal;
    if (job.deadline_tick >= 0 &&
        std::int64_t(ordinal) > job.deadline_tick) {
      out.state[i] = JobState::kCancelled;
      ++out.expired;
      continue;
    }
    out.state[i] = JobState::kCompleted;
    if (job.dedupe && cached[job.pool_index]) {
      ++out.dedupe_hits;
      continue;
    }
    ++out.executed;
    if (job.dedupe) cached[job.pool_index] = true;
  }
  return out;
}

EXA_PROPERTY(SvcProps, PausedScheduleMatchesReference) {
  const std::vector<Scenario> pool = prop_pool();
  const std::size_t jobs = g.size(1, 80);
  const std::vector<PlannedJob> plan = gen_plan(g, jobs, pool.size());

  ServerConfig config;
  config.workers = 0;  // EXA_THREADS — the whole point of the property
  config.queue_capacity = jobs;
  config.start_paused = true;
  Server server(config);

  std::vector<JobId> ids(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    SubmitOptions opts;
    opts.priority = plan[i].priority;
    opts.deadline_tick = plan[i].deadline_tick;
    opts.dedupe = plan[i].dedupe;
    ids[i] = server.submit(pool[plan[i].pool_index], opts);
  }
  for (std::size_t i = 0; i < jobs; ++i) {
    if (plan[i].cancel) {
      require(server.cancel(ids[i]), "paused cancel must win");
    }
  }
  server.resume();
  server.drain();

  const ReferenceOutcome want = reference_schedule(plan);
  for (std::size_t i = 0; i < jobs; ++i) {
    const JobState got = server.status(ids[i]).state;
    require(got == want.state[i],
            "job " + std::to_string(i) + ": server says " +
                svc::to_string(got) + ", reference says " +
                svc::to_string(want.state[i]));
  }
  const ServerStats stats = server.stats();
  require(stats.executed == want.executed,
          "executed " + std::to_string(stats.executed) + " != " +
              std::to_string(want.executed));
  require(stats.dedupe_hits == want.dedupe_hits,
          "dedupe_hits " + std::to_string(stats.dedupe_hits) + " != " +
              std::to_string(want.dedupe_hits));
  require(stats.expired == want.expired,
          "expired " + std::to_string(stats.expired) + " != " +
              std::to_string(want.expired));
  require(stats.submitted == stats.completed + stats.cancelled,
          "conservation violated");
}

EXA_PROPERTY(SvcProps, LiveInterleavingsKeepInvariants) {
  // No pause: producers race the workers, so which cancels win and who
  // leads each execution is timing-dependent — but the ledger identities
  // and report purity are not.
  const std::vector<Scenario> pool = prop_pool();
  const std::size_t jobs = g.size(1, 60);

  ServerConfig config;
  config.workers = 0;
  config.queue_capacity = jobs;
  Server server(config);

  std::vector<JobId> ids;
  ids.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    SubmitOptions opts;
    opts.priority = int(g.range_int(0, 2));
    opts.dedupe = !g.chance(0.2);
    if (g.chance(0.2)) opts.deadline_tick = g.range_int(0, std::int64_t(jobs));
    ids.push_back(server.submit(pool[g.index(pool.size())], opts));
    if (g.chance(0.25)) (void)server.cancel(ids[g.index(ids.size())]);
  }
  server.drain();

  const ServerStats stats = server.stats();
  require(stats.submitted == jobs, "submitted != planned");
  require(stats.submitted == stats.completed + stats.cancelled,
          "conservation violated");
  require(stats.completed - stats.executed == stats.dedupe_hits,
          "dedupe identity violated");
  require(stats.queue_depth == 0, "queue did not drain");

  std::map<std::string, double> first_time;
  for (const JobId id : ids) {
    const svc::JobStatus status = server.status(id);
    require(status.state == JobState::kCompleted ||
                status.state == JobState::kCancelled,
            "job left non-terminal");
    if (status.state != JobState::kCompleted) continue;
    const std::string key = status.report.scenario.key();
    const auto [it, inserted] = first_time.emplace(key, status.report.time_s);
    require(inserted || it->second == status.report.time_s,
            "two completions of one key disagree: " + key);
  }
}

}  // namespace
}  // namespace exa::qa
