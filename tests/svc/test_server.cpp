/// Unit tests of the always-on service (svc::Server): scheduling order,
/// cancellation, logical and wall-clock deadlines, content-keyed dedupe
/// (including the error cache), backpressure, metric integration, and
/// the conservation identity `submitted == completed + cancelled` — at
/// teardown too.
///
/// Execution order is observed through the deadline machinery rather
/// than timing: the server numbers every dequeue with a pop ordinal, so
/// giving job J `deadline_tick = k` asks "was J among the first k pops?"
/// — a deterministic probe of the priority/FIFO order that works at any
/// worker count.

#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "support/assert.hpp"
#include "svc/metrics.hpp"
#include "svc/server.hpp"

namespace exa::svc {
namespace {

Scenario tiny_exasky(double particles = 1.0e5) {
  Scenario s;
  s.app = App::kExaSky;
  s.nodes = 1;
  s.params = {{"particles_per_rank", particles}};
  return s;
}

TEST(SvcServer, SubmitValidatesAndNumbersJobs) {
  ServerConfig config;
  config.workers = 2;
  Server server(config);

  Scenario bad = tiny_exasky();
  bad.params["no_such_knob"] = 1.0;
  EXPECT_THROW((void)server.submit(bad), support::Error);

  const JobId a = server.submit(tiny_exasky(1.0e5));
  const JobId b = server.submit(tiny_exasky(2.0e5));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_THROW((void)server.status(99), support::Error);
  EXPECT_THROW((void)server.wait(99), support::Error);

  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(server.latencies().size(), 2u);
}

TEST(SvcServer, PriorityThenFifoOrder) {
  // Paused submit fixes the queue; deadline_tick probes the pop order.
  // Expected order: B (priority 1), then A, C, D (priority 0, FIFO).
  ServerConfig config;
  config.workers = 1;
  config.start_paused = true;
  Server server(config);

  SubmitOptions pri0;
  SubmitOptions pri1;
  pri1.priority = 1;

  // Distinct scenarios so dedupe never merges the probes.
  const JobId a = server.submit(tiny_exasky(1.0e5), pri0);
  const JobId b = server.submit(tiny_exasky(2.0e5), pri1);
  SubmitOptions pri0_tick2 = pri0;
  pri0_tick2.deadline_tick = 2;  // expires unless popped 1st or 2nd
  const JobId c = server.submit(tiny_exasky(3.0e5), pri0_tick2);
  SubmitOptions pri0_tick4 = pri0;
  pri0_tick4.deadline_tick = 4;  // survives anywhere in the first 4 pops
  const JobId d = server.submit(tiny_exasky(4.0e5), pri0_tick4);

  server.resume();
  server.drain();

  // Pops: B=1, A=2, C=3 (> 2 → expired), D=4 (≤ 4 → runs).
  EXPECT_EQ(server.status(b).state, JobState::kCompleted);
  EXPECT_EQ(server.status(a).state, JobState::kCompleted);
  EXPECT_EQ(server.status(c).state, JobState::kCancelled);
  EXPECT_EQ(server.status(d).state, JobState::kCompleted);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.cancelled, 1u);
}

TEST(SvcServer, DeadlineTickEdgeCases) {
  ServerConfig config;
  config.workers = 1;
  config.start_paused = true;
  Server server(config);

  SubmitOptions always_expires;
  always_expires.deadline_tick = 0;  // ordinals start at 1
  const JobId dead = server.submit(tiny_exasky(1.0e5), always_expires);

  SubmitOptions never_expires;
  never_expires.deadline_tick = -1;
  const JobId alive = server.submit(tiny_exasky(2.0e5), never_expires);

  server.resume();
  server.drain();
  EXPECT_EQ(server.status(dead).state, JobState::kCancelled);
  EXPECT_EQ(server.status(alive).state, JobState::kCompleted);
  EXPECT_EQ(server.stats().expired, 1u);
}

TEST(SvcServer, WallClockDeadlineExpiresAtPop) {
  ServerConfig config;
  config.workers = 1;
  config.start_paused = true;
  Server server(config);

  SubmitOptions expired_opts;
  expired_opts.deadline_s = 0.0;  // any queue wait exceeds it
  const JobId dead = server.submit(tiny_exasky(1.0e5), expired_opts);
  SubmitOptions generous;
  generous.deadline_s = 3600.0;
  const JobId alive = server.submit(tiny_exasky(2.0e5), generous);

  server.resume();
  server.drain();
  EXPECT_EQ(server.status(dead).state, JobState::kCancelled);
  EXPECT_EQ(server.status(alive).state, JobState::kCompleted);
}

TEST(SvcServer, CancelQueuedOnlyOnce) {
  ServerConfig config;
  config.workers = 1;
  config.start_paused = true;
  Server server(config);

  const JobId id = server.submit(tiny_exasky());
  EXPECT_THROW((void)server.cancel(99), support::Error);
  EXPECT_TRUE(server.cancel(id));
  EXPECT_EQ(server.status(id).state, JobState::kCancelled);
  EXPECT_FALSE(server.cancel(id));  // already cancelled

  const JobId done = server.submit(tiny_exasky());
  server.resume();
  server.drain();
  EXPECT_EQ(server.status(done).state, JobState::kCompleted);
  EXPECT_FALSE(server.cancel(done));  // already completed

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled);
}

TEST(SvcServer, DedupeCollapsesEqualScenarios) {
  ServerConfig config;
  config.workers = 4;
  Server server(config);

  const Scenario shared = tiny_exasky();
  std::vector<JobId> dups;
  for (int i = 0; i < 50; ++i) dups.push_back(server.submit(shared));
  const JobId other = server.submit(tiny_exasky(2.0e5));
  server.drain();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.executed, 2u);
  EXPECT_EQ(stats.dedupe_hits, 49u);
  EXPECT_EQ(stats.completed, 51u);

  // Every duplicate observed the same bitwise-identical report.
  const Report first = server.status(dups.front()).report;
  EXPECT_GT(first.time_s, 0.0);
  for (const JobId id : dups) {
    const JobStatus status = server.status(id);
    EXPECT_EQ(status.state, JobState::kCompleted);
    EXPECT_TRUE(status.error.empty());
    EXPECT_EQ(status.report.time_s, first.time_s);
    EXPECT_EQ(status.report.metrics, first.metrics);
  }
  EXPECT_NE(server.status(other).report.time_s, 0.0);
}

TEST(SvcServer, DedupeOptOutsAlwaysExecute) {
  ServerConfig config;
  config.workers = 2;
  Server server(config);
  SubmitOptions no_dedupe;
  no_dedupe.dedupe = false;
  for (int i = 0; i < 5; ++i) {
    (void)server.submit(tiny_exasky(), no_dedupe);
  }
  server.drain();
  EXPECT_EQ(server.stats().executed, 5u);
  EXPECT_EQ(server.stats().dedupe_hits, 0u);

  // Master switch off behaves the same for default options.
  ServerConfig raw;
  raw.workers = 2;
  raw.dedupe = false;
  Server nodedupe(raw);
  for (int i = 0; i < 5; ++i) (void)nodedupe.submit(tiny_exasky());
  nodedupe.drain();
  EXPECT_EQ(nodedupe.stats().executed, 5u);
  EXPECT_EQ(nodedupe.stats().dedupe_hits, 0u);
}

TEST(SvcServer, FailedRunsCompleteWithCachedError) {
  // validate_on_submit off lets an invalid scenario reach execution; the
  // run throws, the job completes with the error string, and dedupe
  // serves the *error* from cache rather than re-running.
  ServerConfig config;
  config.workers = 1;
  config.validate_on_submit = false;
  Server server(config);

  Scenario bad = tiny_exasky();
  bad.params["no_such_knob"] = 1.0;
  const JobId first = server.submit(bad);
  const JobId second = server.submit(bad);
  server.drain();

  const JobStatus a = server.wait(first);
  const JobStatus b = server.wait(second);
  EXPECT_EQ(a.state, JobState::kCompleted);
  EXPECT_FALSE(a.error.empty());
  EXPECT_EQ(b.state, JobState::kCompleted);
  EXPECT_EQ(b.error, a.error);
  EXPECT_EQ(server.stats().executed, 1u);
  EXPECT_EQ(server.stats().dedupe_hits, 1u);
}

TEST(SvcServer, TrySubmitBackpressure) {
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.start_paused = true;
  Server server(config);

  const std::optional<JobId> first = server.try_submit(tiny_exasky(1.0e5));
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(server.try_submit(tiny_exasky(2.0e5)).has_value());

  // Cancelling the queued job frees the slot.
  EXPECT_TRUE(server.cancel(*first));
  const std::optional<JobId> second = server.try_submit(tiny_exasky(2.0e5));
  ASSERT_TRUE(second.has_value());

  server.resume();
  server.drain();
  EXPECT_EQ(server.status(*second).state, JobState::kCompleted);
}

TEST(SvcServer, ShutdownCancelsQueuedJobsAndKeepsConservation) {
  MetricProxy metrics;
  {
    ServerConfig config;
    config.workers = 2;
    config.start_paused = true;  // nothing executes; teardown must cancel
    config.metrics = &metrics;
    Server server(config);
    for (int i = 0; i < 10; ++i) (void)server.submit(tiny_exasky());
  }
  // The proxy outlives the server: its counters are the audit trail.
  const MetricSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.values.at("svc_jobs_submitted_total"), 10.0);
  EXPECT_EQ(snap.values.at("svc_jobs_cancelled_total"), 10.0);
  EXPECT_EQ(snap.values.at("svc_jobs_completed_total"), 0.0);
  EXPECT_EQ(snap.values.at("svc_queue_depth"), 0.0);
}

TEST(SvcServer, MetricsMirrorStatsAndProfilesFeedFits) {
  MetricProxy metrics;
  metrics.enable_profiles();
  ServerConfig config;
  config.workers = 2;
  config.metrics = &metrics;
  Server server(config);

  const Scenario shared = tiny_exasky();
  for (int i = 0; i < 4; ++i) (void)server.submit(shared);
  for (const int nodes : {2, 4}) {
    Scenario s = shared;
    s.nodes = nodes;
    (void)server.submit(s);
  }
  server.drain();

  const ServerStats stats = server.stats();
  const MetricSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.values.at("svc_jobs_submitted_total"),
            double(stats.submitted));
  EXPECT_EQ(snap.values.at("svc_jobs_completed_total"),
            double(stats.completed));
  EXPECT_EQ(snap.values.at("svc_dedupe_hits_total"),
            double(stats.dedupe_hits));
  EXPECT_EQ(snap.values.at("svc_jobs_executed_total"), double(stats.executed));

  // One profile sample per distinct execution, at p = nodes: enough for a
  // live scaling fit over the exasky callpath.
  const auto samples = metrics.profile_samples();
  EXPECT_EQ(samples.size(), stats.executed);
  const auto fits = metrics.fit_live();
  ASSERT_EQ(fits.count("svc/exasky"), 1u);
  EXPECT_EQ(fits.at("svc/exasky").points, 3u);  // nodes 1, 2, 4
}

TEST(SvcServer, WaitBlocksUntilTerminal) {
  ServerConfig config;
  config.workers = 2;
  Server server(config);
  const JobId id = server.submit(tiny_exasky());
  const JobStatus status = server.wait(id);
  EXPECT_EQ(status.state, JobState::kCompleted);
  EXPECT_GT(status.report.time_s, 0.0);
  EXPECT_EQ(to_string(status.state), "completed");
}

TEST(SvcServer, FreshServerAfterTeardown) {
  auto server = std::make_unique<Server>(ServerConfig{});
  const JobId id = server->submit(tiny_exasky());
  (void)server->wait(id);
  server.reset();  // full teardown; a fresh server still accepts work
  Server fresh;
  (void)fresh.submit(tiny_exasky());
  fresh.drain();
  EXPECT_EQ(fresh.stats().completed, 1u);
}

}  // namespace
}  // namespace exa::svc
