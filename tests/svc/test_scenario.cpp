/// Unit tests of the service layer's job description (svc::Scenario →
/// svc::run → svc::Report): canonical content keys, submit-time
/// validation, and the purity guarantee the dedupe machinery rests on —
/// equal keys must imply bitwise-equal reports.

#include <string>

#include <gtest/gtest.h>

#include "support/assert.hpp"
#include "svc/scenario.hpp"

namespace exa::svc {
namespace {

/// The cheapest runnable scenario: a one-node ExaSky step at a tiny
/// particle count.
Scenario tiny_exasky() {
  Scenario s;
  s.app = App::kExaSky;
  s.nodes = 1;
  s.params = {{"particles_per_rank", 1.0e5}};
  return s;
}

TEST(SvcScenario, AppNamesRoundTrip) {
  for (const App app : {App::kPele, App::kGests, App::kLammps, App::kComet,
                        App::kExaSky, App::kSparseCg}) {
    EXPECT_EQ(app_from_string(to_string(app)), app);
  }
  EXPECT_THROW((void)app_from_string("nbody"), support::Error);
  EXPECT_THROW((void)app_from_string(""), support::Error);
}

TEST(SvcScenario, KeyCoversEveryReportInfluencingField) {
  const Scenario base = tiny_exasky();
  const std::string key = base.key();
  EXPECT_NE(key.find("app=exasky"), std::string::npos);

  // Every field that can change the report must change the key.
  Scenario s = base;
  s.nodes = 2;
  EXPECT_NE(s.key(), key);
  s = base;
  s.machine = "summit";
  EXPECT_NE(s.key(), key);
  s = base;
  s.io_preset = "lustre";
  EXPECT_NE(s.key(), key);
  s = base;
  s.topology = "dragonfly";
  EXPECT_NE(s.key(), key);
  s = base;
  s.congestion = true;
  EXPECT_NE(s.key(), key);
  s = base;
  s.straggler_fraction = 0.25;
  s.straggler_slowdown = 2.0;
  EXPECT_NE(s.key(), key);
  s = base;
  s.params["hydro"] = 1.0;
  EXPECT_NE(s.key(), key);
  s = base;
  s.params["particles_per_rank"] = 2.0e5;
  EXPECT_NE(s.key(), key);
}

TEST(SvcScenario, KeyIsInsertionOrderFree) {
  Scenario a = tiny_exasky();
  a.params.clear();
  a.params.emplace("particles_per_rank", 1.0e5);
  a.params.emplace("hydro", 1.0);

  Scenario b = tiny_exasky();
  b.params.clear();
  b.params.emplace("hydro", 1.0);
  b.params.emplace("particles_per_rank", 1.0e5);

  EXPECT_EQ(a.key(), b.key());
}

TEST(SvcScenario, ValidateRejectsBadScenarios) {
  Scenario s = tiny_exasky();
  s.nodes = 0;
  EXPECT_THROW(validate(s), support::Error);

  s = tiny_exasky();
  s.machine = "el-capitan-jr";
  EXPECT_THROW(validate(s), support::Error);

  s = tiny_exasky();
  s.io_preset = "ramdisk";
  EXPECT_THROW(validate(s), support::Error);

  s = tiny_exasky();
  s.straggler_fraction = 1.5;
  EXPECT_THROW(validate(s), support::Error);
  s.straggler_fraction = -0.1;
  EXPECT_THROW(validate(s), support::Error);

  s = tiny_exasky();
  s.straggler_slowdown = 0.5;
  EXPECT_THROW(validate(s), support::Error);

  // Only the two wired fabric topologies are accepted.
  s = tiny_exasky();
  s.topology = "torus";
  EXPECT_THROW(validate(s), support::Error);
  s.topology = "dragonfly";
  EXPECT_NO_THROW(validate(s));

  // A typo'd param key must be rejected, not silently run the default.
  s = tiny_exasky();
  s.params["partcles_per_rank"] = 1.0e5;
  EXPECT_THROW(validate(s), support::Error);
}

TEST(SvcScenario, ValidateEnforcesAppLimits) {
  Scenario s;
  s.app = App::kPele;
  s.params = {{"code_state", 7.0}};
  EXPECT_THROW(validate(s), support::Error);
  s.params = {{"code_state", 2.5}};  // must be an integer state
  EXPECT_THROW(validate(s), support::Error);
  s.params = {{"code_state", 3.0}};
  EXPECT_NO_THROW(validate(s));

  // GESTS slabs cap at N ranks: a tiny grid cannot fill many nodes.
  s = Scenario{};
  s.app = App::kGests;
  s.nodes = 4096;
  s.params = {{"n", 64.0}, {"pencils", 0.0}};
  EXPECT_THROW(validate(s), support::Error);

  s = Scenario{};
  s.app = App::kLammps;
  s.params = {{"cells", 0.0}};
  EXPECT_THROW(validate(s), support::Error);

  // sparse_cg needs a GPU machine and a stencil grid in [2, 64].
  s = Scenario{};
  s.app = App::kSparseCg;
  s.machine = "cori";
  EXPECT_THROW(validate(s), support::Error);
  s.machine = "frontier";
  s.params = {{"grid", 1.0}};
  EXPECT_THROW(validate(s), support::Error);
  s.params = {{"grid", 16.0}};
  EXPECT_NO_THROW(validate(s));
}

TEST(SvcScenario, DefaultParamsRunForEveryApp) {
  for (const App app : {App::kPele, App::kGests, App::kLammps, App::kComet,
                        App::kExaSky, App::kSparseCg}) {
    Scenario s;
    s.app = app;
    s.nodes = 1;
    ASSERT_NO_THROW(validate(s)) << to_string(app);
    const Report report = run(s);
    EXPECT_GT(report.time_s, 0.0) << to_string(app);
    EXPECT_GT(report.fom, 0.0) << to_string(app);
    EXPECT_FALSE(report.metrics.empty()) << to_string(app);
  }
}

TEST(SvcScenario, RunIsPure) {
  // Equal scenarios → bitwise-equal reports; this is the contract the
  // server's content-keyed dedupe depends on (server.hpp).
  const Scenario s = tiny_exasky();
  const Report first = run(s);
  const Report second = run(s);
  EXPECT_EQ(first.time_s, second.time_s);
  EXPECT_EQ(first.fom, second.fom);
  EXPECT_EQ(first.metrics, second.metrics);
}

TEST(SvcScenario, MetricLookupFailsLoudly) {
  const Report report = run(tiny_exasky());
  EXPECT_GE(report.metric("comm_s"), 0.0);
  EXPECT_THROW((void)report.metric("comm_seconds"), support::Error);
}

TEST(SvcScenario, QuietIoAddsNothingAndLustreCharges) {
  Scenario quiet = tiny_exasky();
  Scenario defaulted = tiny_exasky();
  quiet.io_preset = "quiet";
  EXPECT_EQ(run(quiet).time_s, run(defaulted).time_s);

  Scenario lustre = tiny_exasky();
  lustre.io_preset = "lustre";
  EXPECT_GT(run(lustre).time_s, run(quiet).time_s);
}

TEST(SvcScenario, RunRejectsWhatValidateRejects) {
  Scenario s = tiny_exasky();
  s.params["no_such_knob"] = 1.0;
  EXPECT_THROW((void)run(s), support::Error);
}

}  // namespace
}  // namespace exa::svc
