#include <cstring>

#include <gtest/gtest.h>

#include "pfw/parallel.hpp"
#include "pfw/view.hpp"
#include "support/assert.hpp"

namespace exa::pfw {
namespace {

class PfwTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  }
};

TEST_F(PfwTest, ViewShapeAndIndexing) {
  View<double> v("temp", 4, 5, 6);
  EXPECT_EQ(v.rank(), 3);
  EXPECT_EQ(v.extent(0), 4u);
  EXPECT_EQ(v.extent(2), 6u);
  EXPECT_EQ(v.size(), 120u);
  v(3, 4, 5) = 42.0;
  EXPECT_DOUBLE_EQ(v(3, 4, 5), 42.0);
  EXPECT_DOUBLE_EQ(v(0, 0, 0), 0.0);  // zero-initialized
}

TEST_F(PfwTest, ViewIsReferenceCounted) {
  View<int> a("a", 10);
  {
    View<int> b = a;  // shallow copy, Kokkos semantics
    b(7) = 99;
    EXPECT_EQ(a.use_count(), 2);
  }
  EXPECT_EQ(a(7), 99);
  EXPECT_EQ(a.use_count(), 1);
}

TEST_F(PfwTest, LayoutRightOrdering) {
  View<int> v("v", 2, 3);
  int counter = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) v(i, j) = counter++;
  }
  // Row-major: data()[i*3 + j].
  EXPECT_EQ(v.data()[0 * 3 + 2], 2);
  EXPECT_EQ(v.data()[1 * 3 + 0], 3);
}

TEST_F(PfwTest, InteropKokkosToYaklSharesStorage) {
  // The §3.5 interop layer: Kokkos view -> IR -> YAKL array, zero copy.
  View<double> kokkos_view("shared", 8, 8);
  Array<double> yakl_array(kokkos_view.to_ir());
  kokkos_view(3, 3) = 7.5;
  EXPECT_DOUBLE_EQ(yakl_array(3, 3), 7.5);
  yakl_array(1, 2) = -1.0;
  EXPECT_DOUBLE_EQ(kokkos_view(1, 2), -1.0);
  EXPECT_EQ(kokkos_view.data(), yakl_array.data());
}

TEST_F(PfwTest, InteropRoundTripPreservesMetadata) {
  Array<float> arr("dycore_state", 4, 16, 2);
  View<float> view(arr.to_ir());
  EXPECT_EQ(view.label(), "dycore_state");
  EXPECT_EQ(view.rank(), 3);
  EXPECT_EQ(view.extent(1), 16u);
}

TEST_F(PfwTest, DeepCopyCopiesElementwise) {
  View<double> src("src", 16);
  View<double> dst("dst", 16);
  for (std::size_t i = 0; i < 16; ++i) src(i) = static_cast<double>(i);
  deep_copy(src, dst);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(dst(i), src(i));
  src(0) = 99.0;  // copies are independent
  EXPECT_DOUBLE_EQ(dst(0), 0.0);
}

TEST_F(PfwTest, DeepCopyShapeMismatchRejected) {
  View<double> src("src", 16);
  View<double> dst("dst", 8);
  EXPECT_THROW(deep_copy(src, dst), support::Error);
}

TEST_F(PfwTest, ParallelForExecutesEveryIndex) {
  View<int> v("hits", 5000);
  parallel_for("mark", 5000, [&](std::size_t i) {
    v(i) = static_cast<int>(i) * 2;
  });
  fence();
  for (std::size_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(v(i), static_cast<int>(i) * 2);
  }
}

TEST_F(PfwTest, ParallelForChargesDeviceTime) {
  const double before = device_busy_seconds();
  parallel_for("work", 1 << 20, [](std::size_t) {},
               WorkCost{100.0, 64.0, 32.0, 64, 0.0});
  fence();
  EXPECT_GT(device_busy_seconds(), before);
}

TEST_F(PfwTest, ParallelReduceSum) {
  const double sum = parallel_reduce(
      "sum", 1000, [](std::size_t i) { return static_cast<double>(i); });
  EXPECT_DOUBLE_EQ(sum, 499500.0);
  EXPECT_DOUBLE_EQ(parallel_reduce("empty", 0, [](std::size_t) { return 1.0; }),
                   0.0);
}

/// True when a and b have identical bit patterns (stricter than ==).
bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// A summand whose partial sums are order-sensitive in floating point, so
/// any change in combination order shows up as a bit difference.
double wiggly(std::size_t i) {
  return 1.0 / (1.0 + static_cast<double>(i) * 0.730563);
}

TEST_F(PfwTest, ReduceDeterministicAcrossPoolSizes) {
  // Chunk boundaries and combination order depend only on n, so the sum is
  // bitwise identical no matter how many workers execute the chunks.
  const auto chunk_sum = [](std::size_t lo, std::size_t hi) {
    double partial = 0.0;
    for (std::size_t i = lo; i < hi; ++i) partial += wiggly(i);
    return partial;
  };
  constexpr std::size_t kN = 100003;  // ragged last chunk
  support::ThreadPool one(1), four(4), sixteen(16);
  const double r1 = detail::deterministic_reduce(one, kN, chunk_sum);
  const double r4 = detail::deterministic_reduce(four, kN, chunk_sum);
  const double r16 = detail::deterministic_reduce(sixteen, kN, chunk_sum);
  EXPECT_TRUE(bitwise_equal(r1, r4));
  EXPECT_TRUE(bitwise_equal(r1, r16));
}

TEST_F(PfwTest, ParallelReduceRepeatsBitwiseIdentical) {
  const auto run = [] { return parallel_reduce("repeat", 54321, wiggly); };
  const double first = run();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bitwise_equal(run(), first)) << i;
}

TEST_F(PfwTest, ReduceChunksMatchesPerIndexBitwise) {
  constexpr std::size_t kN = 77777;
  const double per_index = parallel_reduce("per_index", kN, wiggly);
  const double chunked = parallel_reduce_chunks(
      "chunked", kN, [](std::size_t lo, std::size_t hi) {
        double partial = 0.0;
        for (std::size_t i = lo; i < hi; ++i) partial += wiggly(i);
        return partial;
      });
  EXPECT_TRUE(bitwise_equal(per_index, chunked));
}

TEST_F(PfwTest, ReduceOverView) {
  View<double> v("vals", 256);
  for (std::size_t i = 0; i < 256; ++i) v(i) = 0.5;
  const double sum =
      parallel_reduce("vsum", 256, [&](std::size_t i) { return v(i); });
  EXPECT_DOUBLE_EQ(sum, 128.0);
}

TEST_F(PfwTest, DeviceViewChargesAllocationPath) {
  auto& dev = hip::Runtime::instance().current_device();
  // Direct mode: the blocking hipMalloc-style latency is charged.
  const double t0 = dev.host_now();
  const View<double> direct = create_device_view<double>("d", 1 << 16);
  const double direct_cost = dev.host_now() - t0;
  EXPECT_GT(direct_cost, dev.gpu().alloc_latency_s * 0.9);
  EXPECT_EQ(direct.space(), MemSpace::kDevice);

  // Pooled mode (the YAKL allocator): orders of magnitude cheaper.
  dev.set_alloc_mode(sim::AllocMode::kPooled, 1ull << 30);
  const double t1 = dev.host_now();
  const View<double> pooled = create_device_view<double>("p", 1 << 16);
  const double pooled_cost = dev.host_now() - t1;
  EXPECT_LT(pooled_cost, direct_cost / 10.0);
  EXPECT_EQ(pooled.size(), std::size_t{1} << 16);
}

TEST_F(PfwTest, MixedFrameworkPipeline) {
  // E3SM-MMF shape: the dycore writes a YAKL array; the Kokkos physics
  // reads it through the interop layer; both dispatch through the same
  // device model.
  Array<double> dycore_out("w_wind", 64, 128);
  parallel_for("dycore", dycore_out.size(), [&](std::size_t i) {
    dycore_out.data()[i] = static_cast<double>(i % 7);
  });
  View<double> physics_in(dycore_out.to_ir());
  const double sum = parallel_reduce(
      "physics", physics_in.size(),
      [&](std::size_t i) { return physics_in.data()[i]; });
  fence();
  double expect = 0.0;
  for (std::size_t i = 0; i < dycore_out.size(); ++i) expect += i % 7;
  EXPECT_DOUBLE_EQ(sum, expect);
}

}  // namespace
}  // namespace exa::pfw
