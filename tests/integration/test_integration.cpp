/// Cross-module integration tests: the end-to-end flows the bench binaries
/// exercise, validated at reduced size.

#include <gtest/gtest.h>

#include "apps/coast/apsp.hpp"
#include "apps/gamess/rimp2.hpp"
#include "apps/lsms/kkr.hpp"
#include "apps/shoc/shoc.hpp"
#include "coe/registry.hpp"
#include "hip/hipify.hpp"
#include "mathlib/device_blas.hpp"
#include "support/string_util.hpp"

namespace exa {
namespace {

using support::contains;

// Table 2 end to end: run the per-app device models on both machines,
// record measurements in the COE registry, emit the table.
TEST(Integration, Table2PipelineProducesPaperShapedSpeedups) {
  ml::TuningRegistry::instance().clear();
  coe::Registry registry = coe::Registry::paper_applications();

  // GAMESS: fragment RI-MP2 throughput (fragments/s, per GPU).
  {
    const double v100 =
        apps::gamess::simulate_fragment_time(arch::v100(), 40, 160, 700, true);
    const double mi250x = apps::gamess::simulate_fragment_time(
                              arch::mi250x_gcd(), 40, 160, 700, true) /
                          2.0;  // module = 2 GCDs
    registry.find("GAMESS")->add_measurement({"Summit", 2020, 1.0 / v100, ""});
    registry.find("GAMESS")->add_measurement(
        {"Frontier", 2023, 1.0 / mi250x, ""});
  }
  // LSMS: atom solves per second.
  {
    const auto v100 = apps::lsms::simulate_atom_solve(
        arch::v100(), 113, 32, apps::lsms::SolverPath::kBlockInversion, true);
    const auto mi250x = apps::lsms::simulate_atom_solve(
        arch::mi250x_gcd(), 113, 32, apps::lsms::SolverPath::kLibraryLu, true);
    registry.find("LSMS")->add_measurement(
        {"Summit", 2020, 1.0 / v100.total(), ""});
    registry.find("LSMS")->add_measurement(
        {"Frontier", 2023, 2.0 / mi250x.total(), ""});
  }
  // COAST: autotuned min-plus kernel flops.
  {
    const auto v100 = apps::coast::autotune(arch::v100(), 16384);
    const auto gcd = apps::coast::autotune(arch::mi250x_gcd(), 16384);
    registry.find("COAST")->add_measurement(
        {"Summit", 2020, v100.achieved_flops, ""});
    registry.find("COAST")->add_measurement(
        {"Frontier", 2022, 2.0 * gcd.achieved_flops, ""});
  }

  const auto table = registry.table2_speedups("Summit", "Frontier");
  EXPECT_EQ(table.row_count(), 3u);
  const std::string out = table.render();
  EXPECT_TRUE(contains(out, "GAMESS"));
  EXPECT_TRUE(contains(out, "LSMS"));
  EXPECT_TRUE(contains(out, "COAST"));

  // Paper band: speed-ups between 5x and 7.5x are typical (§6: "between
  // 5x and 7x ... being typical"). Allow a generous modeling band.
  for (const char* app : {"GAMESS", "LSMS", "COAST"}) {
    const auto s = registry.find(app)->speedup("Summit", "Frontier");
    ASSERT_TRUE(s.has_value()) << app;
    EXPECT_GT(*s, 3.0) << app;
    EXPECT_LT(*s, 11.0) << app;
  }
  ml::TuningRegistry::instance().clear();
}

// The §2.1 flow: take CUDA source, hipify it, confirm the port is
// automatic, then run the suite under both flavors and compare (Figure 1).
TEST(Integration, HipifyThenRunParity) {
  const char* cuda_shoc_fragment = R"(
#include <cuda_runtime.h>
void run_triad(float* a, float* b, float* c, int n) {
  float *da, *db, *dc;
  cudaMalloc((void**)&da, n * 4);
  cudaMalloc((void**)&db, n * 4);
  cudaMalloc((void**)&dc, n * 4);
  cudaMemcpy(da, a, n * 4, cudaMemcpyHostToDevice);
  triad<<<n / 256, 256>>>(da, db, dc, n);
  cudaDeviceSynchronize();
  cudaMemcpy(c, dc, n * 4, cudaMemcpyDeviceToHost);
  cudaFree(da); cudaFree(db); cudaFree(dc);
}
)";
  const auto report = hip::hipify::translate(cuda_shoc_fragment);
  EXPECT_TRUE(report.fully_automatic());
  EXPECT_EQ(report.launches_converted, 1);
  EXPECT_FALSE(contains(report.output, "cuda"));

  hip::Runtime::instance().configure(arch::v100(), 1);
  const auto points =
      apps::shoc::compare_hip_vs_cuda(apps::shoc::SizeClass::kSmall, 777);
  for (const auto& p : points) {
    EXPECT_GT(p.ratio_with_transfer, 0.9);
    EXPECT_LT(p.ratio_with_transfer, 1.05);
  }
}

// Library-tuning collaboration (§4): an application registers its target
// problem size early; the tuned library then beats the untuned one on the
// exact shape, and the untuned shape next door is unchanged.
TEST(Integration, EarlyProblemSizeRegistrationPaysOff) {
  ml::TuningRegistry::instance().clear();
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const double before =
      ml::gemm_profile(gpu, arch::DType::kF64, true, 160, 160, 700)
          .compute_efficiency;
  ml::TuningRegistry::instance().register_gemm("GAMESS", 160, 160, 700,
                                               arch::DType::kF64);
  const double after =
      ml::gemm_profile(gpu, arch::DType::kF64, true, 160, 160, 700)
          .compute_efficiency;
  EXPECT_GT(after, before);
  ml::TuningRegistry::instance().clear();
}

// The §4 early-access premise, as a property: tuning choices made on the
// closer-generation platform transfer to Frontier. COAST's autotuner picks
// the same winning tile configuration on MI100 (Spock) as on the MI250X
// GCD, because the architectures share wavefront width and balance; the
// time each configuration costs still differs.
TEST(Integration, TuningOnEarlyAccessTransfersToFrontier) {
  const auto spock_best = apps::coast::autotune(arch::mi100(), 16384).best;
  const auto frontier_best =
      apps::coast::autotune(arch::mi250x_gcd(), 16384).best;
  EXPECT_EQ(spock_best.name(), frontier_best.name());
}

// The cross-app consistency check on the timing substrate: every paper
// application's Frontier-vs-Summit per-device ratio exceeds 1 (§6: all
// the ported applications got faster).
TEST(Integration, EveryModeledKernelFasterOnFrontier) {
  ml::TuningRegistry::instance().clear();
  struct Probe {
    const char* name;
    double v100_s;
    double gcd_s;
  };
  std::vector<Probe> probes;

  probes.push_back({"gemm_f64", 0.0, 0.0});
  {
    sim::LaunchConfig launch{1u << 14, 256};
    const auto pv = ml::gemm_profile(arch::v100(), arch::DType::kF64, true,
                                     2048, 2048, 2048);
    const auto pm = ml::gemm_profile(arch::mi250x_gcd(), arch::DType::kF64,
                                     true, 2048, 2048, 2048);
    probes.back().v100_s = sim::kernel_timing(arch::v100(), pv, launch).total_s;
    probes.back().gcd_s =
        sim::kernel_timing(arch::mi250x_gcd(), pm, launch).total_s;
  }
  probes.push_back({"fft", 0.0, 0.0});
  {
    sim::LaunchConfig launch{1u << 14, 256};
    const auto pv = ml::fft_profile(arch::v100(), 1 << 20, 16);
    const auto pm = ml::fft_profile(arch::mi250x_gcd(), 1 << 20, 16);
    probes.back().v100_s = sim::kernel_timing(arch::v100(), pv, launch).total_s;
    probes.back().gcd_s =
        sim::kernel_timing(arch::mi250x_gcd(), pm, launch).total_s;
  }
  for (const auto& p : probes) {
    EXPECT_GT(p.v100_s / p.gcd_s, 1.0) << p.name;
  }
}

}  // namespace
}  // namespace exa
