/// Property tests of exa::io::FileSystem using the qa core. Three
/// load-bearing guarantees: (1) the byte-conservation ledger closes at
/// every point of any schedule (written == landed + resident); (2) the
/// quiet path adds exactly zero virtual time in any issue order — the
/// foundation the app drivers' golden-stable defaults rest on; (3) the
/// model is bit-deterministic: replaying a schedule on a fresh filesystem
/// reproduces every completion time exactly (the io_threads ctest
/// variants re-run this under EXA_THREADS=1/4/16).

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/checkpoint.hpp"
#include "io/file_system.hpp"
#include "io/io_model.hpp"
#include "qa/property.hpp"

namespace exa::qa {
namespace {

/// A plausible-but-random loud filesystem: small OST pools so contention
/// actually happens, bandwidths from disk-class to NVMe-class, all three
/// burst-buffer policies.
io::IoConfig gen_io_config(Gen& g) {
  io::IoConfig config;
  config.pfs.ost_count = static_cast<int>(g.size(1, 16));
  config.pfs.stripe_count = static_cast<int>(
      g.size(1, static_cast<std::size_t>(config.pfs.ost_count)));
  config.pfs.stripe_size_bytes = std::pow(2.0, g.uniform(12.0, 22.0));
  config.pfs.ost_bandwidth_bytes_per_s = g.uniform(1.0e8, 2.0e10);
  config.pfs.metadata_op_s = g.chance(0.3) ? 0.0 : g.uniform(0.0, 1.0e-3);
  config.ranks_per_node = static_cast<int>(g.size(1, 8));
  if (g.chance(0.6)) {
    config.burst_buffer.policy = g.chance(0.5)
                                     ? io::BurstBufferPolicy::kWriteThrough
                                     : io::BurstBufferPolicy::kWriteBack;
    // Small capacities force the overflow-spill path regularly.
    config.burst_buffer.capacity_bytes = std::pow(2.0, g.uniform(16.0, 26.0));
    config.burst_buffer.absorb_bandwidth_bytes_per_s =
        g.uniform(1.0e8, 2.0e10);
    config.burst_buffer.drain_bandwidth_bytes_per_s =
        g.uniform(1.0e8, 2.0e10);
  }
  return config;
}

double gen_write_bytes(Gen& g) {
  if (g.chance(0.05)) return 0.0;  // the zero-byte edge
  return std::pow(2.0, g.uniform(0.0, 26.0));
}

/// One random schedule: opens, interleaved writes at drifting virtual
/// times, occasional flushes, closes. Returns every completion time the
/// filesystem handed back, in issue order.
std::vector<double> run_schedule(io::FileSystem& fs, Gen& g,
                                 const std::vector<double>& bytes,
                                 const std::vector<double>& starts) {
  std::vector<double> out;
  const int ranks = static_cast<int>(bytes.size());
  std::vector<io::OpenResult> open(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    open[static_cast<std::size_t>(r)] =
        fs.open(r, "p/r" + std::to_string(r), starts[static_cast<std::size_t>(r)]);
    out.push_back(open[static_cast<std::size_t>(r)].ready_s);
  }
  std::vector<double> written(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    const auto& o = open[static_cast<std::size_t>(r)];
    written[static_cast<std::size_t>(r)] = fs.write(
        o.handle, 0.0, bytes[static_cast<std::size_t>(r)], o.ready_s);
    out.push_back(written[static_cast<std::size_t>(r)]);
  }
  for (int r = 0; r < ranks; ++r) {
    out.push_back(fs.close(open[static_cast<std::size_t>(r)].handle,
                           written[static_cast<std::size_t>(r)]));
  }
  (void)g;
  return out;
}

EXA_PROPERTY(IoProps, ConservationLedgerAlwaysCloses) {
  const io::IoConfig config = gen_io_config(g);
  io::FileSystem fs(config);
  const int ranks = static_cast<int>(g.size(1, 24));
  double issued = 0.0;
  double horizon = 0.0;
  std::vector<io::OpenResult> open(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    open[static_cast<std::size_t>(r)] =
        fs.open(r, "r" + std::to_string(r), g.uniform(0.0, 1.0));
  }
  const auto check_ledger = [&](const char* when) {
    const double lhs = fs.bytes_written();
    const double rhs = fs.bytes_landed() + fs.bytes_resident();
    const double scale = std::max(std::abs(lhs), 1.0);
    require(std::abs(lhs - rhs) / scale <= 1e-9,
            std::string(when) + ": ledger open: written=" +
                std::to_string(lhs) + " landed+resident=" +
                std::to_string(rhs));
  };
  for (int r = 0; r < ranks; ++r) {
    const auto& o = open[static_cast<std::size_t>(r)];
    const double bytes = gen_write_bytes(g);
    issued += bytes;
    horizon = std::max(horizon, fs.write(o.handle, 0.0, bytes, o.ready_s));
    check_ledger("after write");
    if (g.chance(0.2)) {
      horizon = std::max(
          horizon, fs.flush(static_cast<int>(g.size(0, 4)), horizon));
      check_ledger("after flush");
    }
  }
  require(std::abs(fs.bytes_written() - issued) <=
              1e-9 * std::max(issued, 1.0),
          "bytes_written drifted from the issued total");
  const double done = fs.drain_all(horizon);
  check_ledger("after drain_all");
  require(fs.bytes_resident() == 0.0,
          "resident bytes after drain_all: " +
              std::to_string(fs.bytes_resident()));
  require(done >= horizon, "drain_all completed before it started");
}

EXA_PROPERTY(IoProps, QuietPathAddsNoTimeInAnyOrder) {
  io::IoConfig config;  // quiet: infinite bandwidths, zero metadata
  if (g.chance(0.5)) {
    // Quietness must survive an enabled-but-free burst buffer too.
    config.burst_buffer.policy = g.chance(0.5)
                                     ? io::BurstBufferPolicy::kWriteThrough
                                     : io::BurstBufferPolicy::kWriteBack;
  }
  config.ranks_per_node = static_cast<int>(g.size(1, 8));
  require(config.quiet(), "generated config is not quiet");
  io::FileSystem fs(config);
  const int ops = static_cast<int>(g.size(1, 40));
  std::vector<io::OpenResult> handles;
  double latest = 0.0;
  for (int i = 0; i < ops; ++i) {
    // Deliberately non-monotone start times: a free filesystem must not
    // let a late-issued early-time op queue behind anything.
    const double start = g.uniform(0.0, 100.0);
    latest = std::max(latest, start);
    if (handles.empty() || g.chance(0.4)) {
      const io::OpenResult o =
          fs.open(static_cast<int>(g.size(0, 31)), "f" + std::to_string(i),
                  start);
      require(o.ready_s == start, "open added time on a quiet filesystem");
      handles.push_back(o);
    } else {
      const io::OpenResult& o =
          handles[g.size(0, handles.size() - 1)];
      const double end =
          fs.write(o.handle, 0.0, gen_write_bytes(g), start);
      require(end == start, "write added time on a quiet filesystem: " +
                                std::to_string(end - start) + "s");
    }
  }
  // Pending zero-duration drains end at their (virtual) write times, so
  // draining at the schedule horizon must add exactly nothing beyond it.
  require(fs.drain_all(latest) == latest,
          "drain_all added time on a quiet filesystem");
}

EXA_PROPERTY(IoProps, ReplayIsBitDeterministic) {
  const io::IoConfig config = gen_io_config(g);
  const int ranks = static_cast<int>(g.size(1, 16));
  std::vector<double> bytes;
  std::vector<double> starts;
  for (int r = 0; r < ranks; ++r) {
    bytes.push_back(gen_write_bytes(g));
    starts.push_back(g.uniform(0.0, 1.0e-2));
  }
  io::FileSystem first(config);
  io::FileSystem second(config);
  const std::vector<double> a = run_schedule(first, g, bytes, starts);
  const std::vector<double> b = run_schedule(second, g, bytes, starts);
  require(a.size() == b.size(), "replay produced a different op count");
  for (std::size_t i = 0; i < a.size(); ++i) {
    require(a[i] == b[i],
            "completion " + std::to_string(i) + " not bit-equal: " +
                std::to_string(a[i]) + " vs " + std::to_string(b[i]));
  }
  require(first.bytes_landed() == second.bytes_landed() &&
              first.bytes_resident() == second.bytes_resident(),
          "replay ledgers diverged");
}

}  // namespace
}  // namespace exa::qa
