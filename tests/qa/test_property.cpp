/// Unit coverage of the qa property core: tape record/replay, iteration
/// seed derivation, shrinking behavior, environment overrides, and the
/// EXA_PROPERTY gtest bridge.

#include "qa/property.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace exa::qa {
namespace {

PropertyOptions no_env() {
  PropertyOptions opts;
  opts.read_env = false;
  return opts;
}

TEST(PropertyGen, RecordThenReplayYieldsSameDraws) {
  Gen rec(42);
  std::vector<std::uint64_t> drawn;
  for (int i = 0; i < 16; ++i) drawn.push_back(rec.u64());
  EXPECT_EQ(rec.tape().size(), 16u);
  Gen rep(rec.tape());
  for (const std::uint64_t v : drawn) EXPECT_EQ(rep.u64(), v);
}

TEST(PropertyGen, ReplayPastTapeEndReturnsZero) {
  Gen rep(std::vector<std::uint64_t>{7});
  EXPECT_EQ(rep.u64(), 7u);
  EXPECT_EQ(rep.u64(), 0u);
  EXPECT_EQ(rep.range(100), 0u);
  EXPECT_DOUBLE_EQ(rep.uniform(), 0.0);
  EXPECT_FALSE(rep.chance(0.5));
  EXPECT_EQ(rep.size(3, 9), 3u);  // shrunk draws land on the lower bound
}

TEST(PropertyGen, DrawsStayInBounds) {
  Gen g(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(g.range(10), 10u);
    const std::size_t s = g.size(3, 9);
    EXPECT_GE(s, 3u);
    EXPECT_LE(s, 9u);
    const double u = g.uniform(-1.0, 1.0);
    EXPECT_GE(u, -1.0);
    EXPECT_LT(u, 1.0);
    EXPECT_GE(g.range_int(-5, 5), -5);
    EXPECT_LE(g.range_int(-5, 5), 5);
  }
}

TEST(PropertyGen, PickReturnsAnElement) {
  Gen g(9);
  const std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 20; ++i) {
    const int v = g.pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(PropertyRunner, IterationZeroSeedIsBaseSeed) {
  EXPECT_EQ(iteration_seed(0xabcdef, 0), 0xabcdefull);
  EXPECT_NE(iteration_seed(0xabcdef, 1), 0xabcdefull);
  EXPECT_NE(iteration_seed(0xabcdef, 1), iteration_seed(0xabcdef, 2));
}

TEST(PropertyRunner, PassingPropertyRunsAllIterations) {
  PropertyOptions opts = no_env();
  opts.iterations = 25;
  const PropertyResult r =
      run_property("always-holds", [](Gen& g) { (void)g.u64(); }, opts);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.iterations_run, 25);
}

TEST(PropertyRunner, AlwaysFailingPropertyShrinksToEmptyTape) {
  const PropertyResult r = run_property(
      "always-fails",
      [](Gen& g) {
        (void)g.u64();
        (void)g.u64();
        (void)g.u64();
        require(false, "unconditional");
      },
      no_env());
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.minimal_tape_size, 0u);
  EXPECT_EQ(r.message, "unconditional");
  EXPECT_NE(r.report.find("EXA_QA_SEED"), std::string::npos);
}

TEST(PropertyRunner, ShrinkerCannotDropTheLoadBearingDraw) {
  // Fails iff the (single) drawn value is large; truncating to an empty
  // tape makes it pass, so the minimal counterexample keeps exactly one
  // draw.
  const PropertyResult r = run_property(
      "threshold",
      [](Gen& g) { require(g.range(1u << 20) < 1000, "big draw"); },
      no_env());
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.minimal_tape_size, 1u);
  EXPECT_GT(r.shrink_attempts, 0);
}

TEST(PropertyRunner, PrintedSeedReplaysAtIterationZero) {
  PropertyOptions opts = no_env();
  opts.seed = 123;
  opts.iterations = 400;
  const auto body = [](Gen& g) { require(g.range(8) != 3, "hit 3"); };
  const PropertyResult first = run_property("replay-src", body, opts);
  ASSERT_FALSE(first.ok);

  PropertyOptions replay = no_env();
  replay.seed = first.failing_seed;
  replay.iterations = 1;
  const PropertyResult second = run_property("replay-dst", body, replay);
  ASSERT_FALSE(second.ok);
  EXPECT_EQ(second.failing_seed, first.failing_seed);
  EXPECT_EQ(second.iterations_run, 1);
}

TEST(PropertyRunner, UnhandledExceptionCountsAsFailure) {
  const PropertyResult r = run_property(
      "throws",
      [](Gen& g) {
        (void)g.u64();
        throw std::runtime_error("boom");
      },
      no_env());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("boom"), std::string::npos);
}

TEST(PropertyRunner, EnvSeedAndItersOverrideOptions) {
  ::setenv("EXA_QA_SEED", "0x77", 1);
  ::setenv("EXA_QA_ITERS", "3", 1);
  std::vector<std::uint64_t> firsts;
  const PropertyResult r = run_property(
      "env-override", [&](Gen& g) { firsts.push_back(g.u64()); },
      PropertyOptions{});
  ::unsetenv("EXA_QA_SEED");
  ::unsetenv("EXA_QA_ITERS");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.iterations_run, 3);
  Gen expected(0x77);
  ASSERT_FALSE(firsts.empty());
  EXPECT_EQ(firsts.front(), expected.u64());
}

// The macro bridge: a trivially-true property wired through gtest.
EXA_PROPERTY(PropertyMacro, RangeIsBounded) {
  const std::uint64_t n = 1 + g.range(1000);
  require(g.range(n) < n, "range out of bounds");
}

}  // namespace
}  // namespace exa::qa
