/// Property tests of the mathlib numerics using the qa generators: the LU
/// factorization invariant P·A = L·U, FFT round trips, permutation-matrix
/// algebra, and the symmetric eigensolver's defining identities. Each
/// failure shrinks to a minimal matrix and prints a replayable seed.

#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "mathlib/dense.hpp"
#include "mathlib/eigen.hpp"
#include "mathlib/fft.hpp"
#include "mathlib/lu.hpp"
#include "qa/generators.hpp"
#include "qa/property.hpp"

namespace exa::qa {
namespace {

EXA_PROPERTY(MathlibProps, DgetrfSatisfiesPaEqualsLu) {
  const std::size_t n = g.size(1, 12);
  const std::vector<double> a = gen_diag_dominant(g, n);
  std::vector<double> lu = a;
  std::vector<int> piv(n);
  require(ml::dgetrf(lu, n, piv) == 0,
          "diagonally dominant matrix reported singular");

  // P*A: apply the recorded row swaps to A in factorization order.
  std::vector<double> pa = a;
  for (std::size_t col = 0; col < n; ++col) {
    const auto p = static_cast<std::size_t>(piv[col]);
    if (p != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(pa[col * n + j], pa[p * n + j]);
      }
    }
  }
  // L (unit lower) times U, both packed in `lu`.
  std::vector<double> prod(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k <= std::min(i, j); ++k) {
        s += (k == i ? 1.0 : lu[i * n + k]) * lu[k * n + j];
      }
      prod[i * n + j] = s;
    }
  }
  const double err = ml::rel_error<double>(prod, pa);
  require(err < 1e-10, "||L*U - P*A|| / ||P*A|| = " + std::to_string(err));
}

EXA_PROPERTY(MathlibProps, ZgetrfSolvesGeneratedSystems) {
  const std::size_t n = g.size(1, 10);
  const std::vector<ml::zcomplex> a = gen_zmatrix_dominant(g, n);
  std::vector<ml::zcomplex> x_true(n);
  for (auto& v : x_true) v = {g.uniform(-1.0, 1.0), g.uniform(-1.0, 1.0)};
  std::vector<ml::zcomplex> b(n, ml::zcomplex{});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
  }
  std::vector<ml::zcomplex> lu = a;
  std::vector<int> piv(n);
  require(ml::zgetrf(lu, n, piv) == 0, "dominant complex matrix singular");
  ml::zgetrs(lu, n, piv, b, 1);
  const double err = ml::rel_error<ml::zcomplex>(b, x_true);
  require(err < 1e-9, "zgetrs solution error " + std::to_string(err));
}

EXA_PROPERTY(MathlibProps, GeneratedPermutationIsOrthogonal) {
  const std::size_t n = g.size(1, 16);
  const std::vector<std::size_t> perm = gen_permutation(g, n);

  // Validity: each index appears exactly once.
  std::vector<bool> seen(n, false);
  for (const std::size_t i : perm) {
    require(i < n, "permutation entry out of range");
    require(!seen[i], "duplicate permutation entry");
    seen[i] = true;
  }

  // P * P^T = I.
  const std::vector<double> p = permutation_matrix(perm);
  std::vector<double> pt(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) pt[j * n + i] = p[i * n + j];
  }
  std::vector<double> prod(n * n, 0.0);
  ml::dgemm(p, pt, prod, n, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double want = i == j ? 1.0 : 0.0;
      require(prod[i * n + j] == want, "P*P^T is not the identity");
    }
  }
}

EXA_PROPERTY(MathlibProps, FftRoundTripIsIdentity) {
  const std::size_t n = gen_pow2(g, 0, 10);
  std::vector<ml::zcomplex> data(n);
  for (auto& v : data) v = {g.uniform(-1.0, 1.0), g.uniform(-1.0, 1.0)};
  const std::vector<ml::zcomplex> original = data;
  ml::fft(data);
  ml::fft(data, /*inverse=*/true);
  const double err = ml::rel_error<ml::zcomplex>(data, original);
  require(err < 1e-9,
          "ifft(fft(x)) error " + std::to_string(err) + " at n=" +
              std::to_string(n));
}

EXA_PROPERTY(MathlibProps, SyevDecomposesSpdMatrices) {
  const std::size_t n = g.size(1, 8);
  const std::vector<double> a = gen_spd(g, n);
  std::vector<double> w(n);
  std::vector<double> v(n * n);
  ml::syev(a, n, w, v);

  // gen_spd builds B^T B / n + I, so every eigenvalue is >= 1; syev
  // reports them ascending.
  for (std::size_t i = 0; i < n; ++i) {
    require(w[i] > 0.9, "SPD eigenvalue not positive");
    if (i > 0) require(w[i] >= w[i - 1], "eigenvalues not ascending");
  }

  // A*V = V*diag(w) (vectors are stored as columns of v).
  std::vector<double> av(n * n, 0.0);
  ml::dgemm(a, v, av, n, n, n);
  std::vector<double> vl(n * n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t j = 0; j < n; ++j) vl[r * n + j] = v[r * n + j] * w[j];
  }
  const double resid = ml::rel_error<double>(av, vl);
  require(resid < 1e-8, "||A*V - V*L|| residual " + std::to_string(resid));

  // V^T V = I.
  std::vector<double> vt(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) vt[j * n + i] = v[i * n + j];
  }
  std::vector<double> vtv(n * n, 0.0);
  ml::dgemm(vt, v, vtv, n, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double want = i == j ? 1.0 : 0.0;
      require(std::abs(vtv[i * n + j] - want) < 1e-8,
              "eigenvector basis not orthonormal");
    }
  }
}

}  // namespace
}  // namespace exa::qa
