/// qa::golden unit coverage: baseline write/load round-trips, the strict
/// both-directions compare, per-metric tolerance edges, and load-time
/// schema validation.

#include "qa/golden.hpp"

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/assert.hpp"

namespace exa::qa {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

GoldenFile sample_baseline() {
  GoldenFile f;
  f.metrics.push_back({"speedup", 5.0, 0.02});
  f.metrics.push_back({"fom", 1.25e15, 0.05});
  f.metrics.push_back({"mismatches", 0.0, 0.0});
  return f;
}

TEST(Golden, WriteLoadRoundTrip) {
  const std::string path = tmp_path("golden_roundtrip.json");
  golden_write(path, sample_baseline());
  const GoldenFile loaded = golden_load(path);
  ASSERT_EQ(loaded.metrics.size(), 3u);
  // golden_write sorts by name for stable diffs.
  EXPECT_EQ(loaded.metrics[0].name, "fom");
  EXPECT_EQ(loaded.metrics[1].name, "mismatches");
  EXPECT_EQ(loaded.metrics[2].name, "speedup");
  EXPECT_DOUBLE_EQ(loaded.metrics[0].value, 1.25e15);
  EXPECT_DOUBLE_EQ(loaded.metrics[0].rel_tol, 0.05);
  EXPECT_DOUBLE_EQ(loaded.metrics[2].value, 5.0);
}

TEST(Golden, IdenticalMetricsCompareOk) {
  const GoldenFile base = sample_baseline();
  const GoldenCompareResult cmp = golden_compare(base, base.metrics);
  EXPECT_TRUE(cmp.ok);
  EXPECT_EQ(cmp.compared, 3u);
  EXPECT_TRUE(cmp.failures.empty());
}

TEST(Golden, DriftWithinToleranceOk) {
  const GoldenFile base = sample_baseline();
  std::vector<GoldenMetric> measured = base.metrics;
  for (GoldenMetric& m : measured) {
    if (m.name == "speedup") m.value = 5.0 * 1.019;  // inside the 2% band
  }
  EXPECT_TRUE(golden_compare(base, measured).ok);
}

TEST(Golden, DriftBeyondToleranceFails) {
  const GoldenFile base = sample_baseline();
  std::vector<GoldenMetric> measured = base.metrics;
  for (GoldenMetric& m : measured) {
    if (m.name == "speedup") m.value = 5.0 * 1.03;  // outside the 2% band
  }
  const GoldenCompareResult cmp = golden_compare(base, measured);
  EXPECT_FALSE(cmp.ok);
  ASSERT_EQ(cmp.failures.size(), 1u);
  EXPECT_NE(cmp.failures[0].find("speedup"), std::string::npos);
  EXPECT_NE(cmp.report().find("FAIL"), std::string::npos);
}

TEST(Golden, BaselineToleranceGovernsNotMeasured) {
  // A run cannot widen its own gate: the measured rel_tol is ignored.
  GoldenFile base;
  base.metrics.push_back({"m", 100.0, 0.01});
  std::vector<GoldenMetric> measured = {{"m", 105.0, 0.50}};
  EXPECT_FALSE(golden_compare(base, measured).ok);
}

TEST(Golden, MissingMeasuredMetricFails) {
  const GoldenFile base = sample_baseline();
  std::vector<GoldenMetric> measured = base.metrics;
  measured.pop_back();
  const GoldenCompareResult cmp = golden_compare(base, measured);
  EXPECT_FALSE(cmp.ok);
  EXPECT_NE(cmp.failures.at(0).find("not measured"), std::string::npos);
}

TEST(Golden, ExtraMeasuredMetricFails) {
  const GoldenFile base = sample_baseline();
  std::vector<GoldenMetric> measured = base.metrics;
  measured.push_back({"new_metric", 1.0, 0.1});
  const GoldenCompareResult cmp = golden_compare(base, measured);
  EXPECT_FALSE(cmp.ok);
  EXPECT_NE(cmp.failures.at(0).find("not in baseline"), std::string::npos);
}

TEST(Golden, ZeroBaselineRequiresExactMatch) {
  GoldenFile base;
  base.metrics.push_back({"mismatches", 0.0, 0.5});
  EXPECT_TRUE(golden_compare(base, {{"mismatches", 0.0, 0.5}}).ok);
  EXPECT_FALSE(golden_compare(base, {{"mismatches", 1e-9, 0.5}}).ok);
}

TEST(Golden, LoadRejectsMissingSchemaMarker) {
  const std::string path = tmp_path("golden_noschema.json");
  std::ofstream(path) << "{\"metrics\":{}}\n";
  EXPECT_THROW((void)golden_load(path), support::Error);
}

TEST(Golden, LoadRejectsMalformedMetricEntry) {
  const std::string path = tmp_path("golden_malformed.json");
  std::ofstream(path) << "{\"schema\":\"exa-golden-v1\","
                         "\"metrics\":{\"m\":{\"value\":1.0}}}\n";
  EXPECT_THROW((void)golden_load(path), support::Error);
}

TEST(Golden, LoadRejectsUnreadablePath) {
  EXPECT_THROW((void)golden_load(tmp_path("does_not_exist_golden.json")),
               support::Error);
}

}  // namespace
}  // namespace exa::qa
