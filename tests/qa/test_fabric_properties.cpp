/// Property tests of exa::net::Fabric using the qa core. The load-bearing
/// guarantee is the golden gate's foundation: with congestion and faults
/// off, every Fabric collective must match the calibrated CommModel closed
/// form to 1e-9 relative over *random* machine configurations and message
/// sizes, not just the catalog machines the unit tests pin. A second
/// property drives the live fault layer and asserts retried messages never
/// overtake earlier ones on the same (src, dst) channel.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/machine.hpp"
#include "net/engine.hpp"
#include "net/fabric.hpp"
#include "qa/property.hpp"

namespace exa::qa {
namespace {

/// A plausible-but-random machine: node counts spanning one switch to
/// beyond-Frontier scale, injection bandwidths from Ethernet-class to
/// Slingshot-class, and the full sane range of LogGP inputs.
arch::Machine gen_machine(Gen& g) {
  arch::Machine m = arch::machines::frontier();
  m.node_count = static_cast<int>(g.size(1, 16384));
  m.network.nic_bandwidth_bytes_per_s = g.uniform(1.0e9, 60.0e9);
  m.network.nics_per_node = static_cast<int>(g.size(1, 4));
  m.network.latency_s = g.uniform(1.0e-7, 5.0e-6);
  m.network.per_message_overhead_s = g.uniform(1.0e-7, 2.0e-6);
  m.network.bisection_factor = g.uniform(0.25, 1.0);
  return m;
}

double gen_bytes(Gen& g) {
  // Log-uniform over 1 B .. 1 GiB, plus the zero-byte edge.
  if (g.chance(0.05)) return 0.0;
  return std::pow(2.0, g.uniform(0.0, 30.0));
}

EXA_PROPERTY(FabricProps, QuietFabricMatchesCommModel) {
  const arch::Machine machine = gen_machine(g);
  const int rpn = static_cast<int>(g.size(1, 8));
  const bool gpu_aware = g.chance(0.5);
  net::FabricConfig config;
  config.topology =
      g.chance(0.5) ? net::Topology::kFatTree : net::Topology::kDragonfly;
  const net::Fabric fabric(machine, rpn, config, gpu_aware);
  const net::CommModel model(machine, rpn, gpu_aware);

  const double bytes = gen_bytes(g);
  const int max_ranks = std::min(fabric.total_ranks(), 65536);
  const int ranks = static_cast<int>(
      g.size(1, static_cast<std::size_t>(max_ranks)));

  const auto check = [&](const char* op, double want, double got) {
    const double scale = std::max(std::abs(want), 1e-300);
    require(std::abs(got - want) / scale <= 1e-9,
            std::string(op) + " drifted: model=" + std::to_string(want) +
                " fabric=" + std::to_string(got) + " at ranks=" +
                std::to_string(ranks) + " bytes=" + std::to_string(bytes));
  };
  check("p2p", model.p2p(bytes), fabric.p2p(bytes));
  check("allreduce", model.allreduce(bytes, ranks),
        fabric.allreduce(bytes, ranks));
  check("alltoall", model.alltoall(bytes, ranks),
        fabric.alltoall(bytes, ranks));
  check("bcast", model.bcast(bytes, ranks), fabric.bcast(bytes, ranks));
  check("barrier", model.barrier(ranks), fabric.barrier(ranks));
  const int faces = static_cast<int>(g.size(1, 6));
  check("halo", model.halo_exchange(bytes, faces),
        fabric.halo_exchange(bytes, faces));
}

/// The 1e-9 analytic-equivalence gate extended to the event engine: with
/// congestion and faults off, every message the engine records must cost
/// exactly the p2p closed form (delivered - posted == fabric.p2p(bytes),
/// itself pinned to the CommModel by the property above), and the
/// conservative-lookahead parallel engine must be bitwise identical to
/// the serial event loop on the same random machine and program.
EXA_PROPERTY(FabricProps, QuietEngineMatchesClosedFormAndSerial) {
  const arch::Machine machine = gen_machine(g);
  const int rpn = static_cast<int>(g.size(1, 4));
  net::FabricConfig config;  // quiet: no congestion, no faults
  net::Fabric fabric(machine, rpn, config);

  const int max_ranks = std::min(fabric.total_ranks(), 32);
  if (max_ranks < 2) return;
  const int ranks =
      static_cast<int>(g.size(2, static_cast<std::size_t>(max_ranks)));
  std::vector<std::vector<net::RankOp>> programs(
      static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    auto& prog = programs[static_cast<std::size_t>(r)];
    prog.push_back(net::RankOp::compute(g.uniform(0.0, 1.0e-5)));
    prog.push_back(net::RankOp::send((r + 1) % ranks, gen_bytes(g)));
    prog.push_back(net::RankOp::recv((r - 1 + ranks) % ranks));
  }
  net::EventEngine engine(fabric, std::move(programs));
  const net::EngineResult serial = engine.run_serial();
  const net::EngineResult parallel = engine.run_parallel();
  require(serial.same_outcome(parallel),
          "parallel engine diverged from serial on a random quiet machine");

  for (const net::MessageRecord& msg : serial.messages) {
    const double want = fabric.p2p(msg.bytes);
    const double got = msg.delivered_s - msg.posted_s;
    const double scale = std::max(std::abs(want), 1e-300);
    require(std::abs(got - want) / scale <= 1e-9,
            "engine message cost drifted from the p2p closed form: want=" +
                std::to_string(want) + " got=" + std::to_string(got) +
                " bytes=" + std::to_string(msg.bytes));
    require(msg.retries == 0, "quiet fabric charged a retry");
  }
}

EXA_PROPERTY(FabricProps, RetriedMessagesPreserveChannelOrder) {
  arch::Machine machine = gen_machine(g);
  machine.node_count = std::max(machine.node_count, 4);
  net::FabricConfig config;
  config.congestion = g.chance(0.5);
  config.faults.drop_probability = g.uniform(0.05, 0.6);
  config.faults.seed = g.u64() | 1;
  if (g.chance(0.3)) {
    config.faults.degraded_link_fraction = g.uniform(0.0, 0.5);
    config.faults.degrade_factor = g.uniform(0.1, 1.0);
  }
  net::Fabric fabric(machine, 2, config);

  const int src = static_cast<int>(g.size(0, 3));
  int dst = static_cast<int>(g.size(0, 3));
  if (dst == src) dst = (dst + 1) % 4;

  double last_delivered = -1.0;
  double post = 0.0;
  for (int i = 0; i < 64; ++i) {
    const double bytes = gen_bytes(g);
    const auto t = fabric.transfer(src, dst, bytes, post);
    require(t.delivered_s >= post,
            "delivery before posting at message " + std::to_string(i));
    require(t.delivered_s >= last_delivered,
            "message " + std::to_string(i) + " overtook its channel: " +
                std::to_string(t.delivered_s) + " < " +
                std::to_string(last_delivered));
    last_delivered = t.delivered_s;
    // Occasionally advance the posting clock, occasionally post back-to-back.
    if (g.chance(0.5)) post += g.uniform(0.0, 1.0e-4);
  }
}

}  // namespace
}  // namespace exa::qa
