/// The model-based HIP-shim fuzzer as a test, plus the directed
/// regressions its corpus grew from: cross-device hipStreamWaitEvent
/// edges and hipFree from a foreign device. EXA_FUZZ_SEQUENCES scales the
/// fuzz case count (the `fuzz`-labeled ctest runs 10k; the default keeps
/// plain `ctest` fast).

#include "qa/hip_fuzz.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

#include "arch/gpu_arch.hpp"
#include "check/checker.hpp"
#include "hip/hip_runtime.hpp"
#include "qa/hip_model.hpp"

namespace exa::qa {
namespace {

int fuzz_sequences() {
  const char* v = std::getenv("EXA_FUZZ_SEQUENCES");
  if (v == nullptr || *v == '\0') return 300;
  const long n = std::strtol(v, nullptr, 0);
  return n > 0 ? static_cast<int>(n) : 300;
}

TEST(HipFuzz, ShimMatchesModel) {
  FuzzStats stats;
  const PropertyResult r = run_fuzz(0xf022'5eed, fuzz_sequences(), {}, &stats);
  EXPECT_TRUE(r.ok) << r.report;
  EXPECT_EQ(stats.sequences, static_cast<std::uint64_t>(r.iterations_run));
  EXPECT_GT(stats.ops, 0u);
  // The corpus must actually reach the misuse paths, not just clean runs.
  EXPECT_GT(stats.diagnostics, 0u);
}

TEST(HipFuzz, SameSeedGeneratesTheSameOpStream) {
  FuzzStats a;
  FuzzStats b;
  const PropertyResult ra = run_fuzz(0xd373'c7, 50, {}, &a);
  const PropertyResult rb = run_fuzz(0xd373'c7, 50, {}, &b);
  EXPECT_TRUE(ra.ok) << ra.report;
  EXPECT_TRUE(rb.ok) << rb.report;
  EXPECT_EQ(a.sequences, b.sequences);
  // The drawn op stream is a pure function of the seed. Which ops the
  // host-safety gate then skips depends on real heap addresses (a stale
  // pointer may or may not land inside a reused live range), so only the
  // generated total is run-to-run invariant.
  EXPECT_EQ(a.ops + a.skipped, b.ops + b.skipped);
}

TEST(HipFuzz, SingleDeviceCorpusAlsoHolds) {
  FuzzConfig cfg;
  cfg.devices = 1;
  const PropertyResult r = run_fuzz(0x0de'11ce, 100, cfg, nullptr);
  EXPECT_TRUE(r.ok) << r.report;
}

// --- model unit checks ----------------------------------------------------

TEST(HipModel, PredictsDoubleFreeAndTeardownLeaks) {
  HipModel model(1);
  alignas(8) char storage[256];
  EXPECT_EQ(model.malloc(storage, sizeof(storage)), ModelError::kSuccess);
  EXPECT_EQ(model.free(storage), ModelError::kSuccess);
  // Double-free: the owner entry is already erased, so the shim reports
  // an unknown device pointer while the checker flags the double-free.
  EXPECT_EQ(model.free(storage), ModelError::kInvalidDevicePointer);
  EXPECT_EQ(model.rules()[check::Rule::kDoubleFree], 1u);

  alignas(8) char leaked[64];
  EXPECT_EQ(model.malloc(leaked, sizeof(leaked)), ModelError::kSuccess);
  int stream = -1;
  EXPECT_EQ(model.stream_create(&stream), ModelError::kSuccess);
  model.teardown_leak_scan();
  EXPECT_EQ(model.rules()[check::Rule::kLeak], 2u);  // one alloc, one stream
}

TEST(HipModel, RangeInLiveAllocTracksTombstones) {
  HipModel model(1);
  alignas(8) char storage[128];
  EXPECT_EQ(model.malloc(storage, sizeof(storage)), ModelError::kSuccess);
  EXPECT_TRUE(model.range_in_live_alloc(storage, 128));
  EXPECT_TRUE(model.range_in_live_alloc(storage + 64, 64));
  EXPECT_FALSE(model.range_in_live_alloc(storage + 64, 128));
  EXPECT_EQ(model.free(storage), ModelError::kSuccess);
  EXPECT_FALSE(model.range_in_live_alloc(storage, 1));
}

// --- directed regressions -------------------------------------------------

class HipFuzzDirectedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hip::Runtime::instance().configure(arch::mi250x_gcd(), 2);
    check::Checker::instance().set_mode(check::Mode::kOn);
    check::Checker::instance().clear();
  }
  void TearDown() override {
    check::Checker::instance().set_mode(check::Mode::kOff);
    check::Checker::instance().clear();
    hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  }
  static std::uint64_t count(check::Rule rule) {
    return check::Checker::instance().count(rule);
  }
};

TEST_F(HipFuzzDirectedTest, CrossDeviceStreamWaitEventIsCleanOrdering) {
  // Producer on device 0 records an event; a device-1 stream waits on it.
  // The cross-device edge is legal HIP and must stay diagnostic-free.
  ASSERT_EQ(hip::hipSetDevice(0), hip::hipSuccess);
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 512), hip::hipSuccess);
  hip::hipStream_t s0 = nullptr;
  ASSERT_EQ(hip::hipStreamCreate(&s0), hip::hipSuccess);
  char src[512] = {};
  ASSERT_EQ(hip::hipMemcpyAsync(d, src, sizeof(src),
                                hip::hipMemcpyHostToDevice, s0),
            hip::hipSuccess);
  hip::hipEvent_t e = nullptr;
  ASSERT_EQ(hip::hipEventCreate(&e), hip::hipSuccess);
  ASSERT_EQ(hip::hipEventRecord(e, s0), hip::hipSuccess);

  ASSERT_EQ(hip::hipSetDevice(1), hip::hipSuccess);
  hip::hipStream_t s1 = nullptr;
  ASSERT_EQ(hip::hipStreamCreate(&s1), hip::hipSuccess);
  EXPECT_EQ(hip::hipStreamWaitEvent(s1, e, 0), hip::hipSuccess);
  EXPECT_EQ(check::Checker::instance().total(), 0u);

  // Clean teardown so the fixture's reconfigure scans no leaks.
  ASSERT_EQ(hip::hipStreamDestroy(s1), hip::hipSuccess);
  ASSERT_EQ(hip::hipSetDevice(0), hip::hipSuccess);
  ASSERT_EQ(hip::hipStreamSynchronize(s0), hip::hipSuccess);
  ASSERT_EQ(hip::hipStreamDestroy(s0), hip::hipSuccess);
  ASSERT_EQ(hip::hipEventDestroy(e), hip::hipSuccess);
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
  EXPECT_EQ(check::Checker::instance().total(), 0u);
}

TEST_F(HipFuzzDirectedTest, WaitOnUnrecordedEventIsFlaggedNoOp) {
  hip::hipEvent_t e = nullptr;
  ASSERT_EQ(hip::hipEventCreate(&e), hip::hipSuccess);
  hip::hipStream_t s = nullptr;
  ASSERT_EQ(hip::hipStreamCreate(&s), hip::hipSuccess);
  // HIP treats this as a no-op success; the checker calls out the
  // ordering bug (the wait establishes no edge).
  EXPECT_EQ(hip::hipStreamWaitEvent(s, e, 0), hip::hipSuccess);
  EXPECT_EQ(count(check::Rule::kEventMisuse), 1u);
  ASSERT_EQ(hip::hipStreamDestroy(s), hip::hipSuccess);
  ASSERT_EQ(hip::hipEventDestroy(e), hip::hipSuccess);
}

TEST_F(HipFuzzDirectedTest, FreeOnForeignDeviceRejectedAndAllocationLives) {
  ASSERT_EQ(hip::hipSetDevice(0), hip::hipSuccess);
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 256), hip::hipSuccess);

  ASSERT_EQ(hip::hipSetDevice(1), hip::hipSuccess);
  EXPECT_EQ(hip::hipFree(d), hip::hipErrorInvalidValue);
  EXPECT_EQ(count(check::Rule::kStreamMisuse), 1u);
  EXPECT_EQ(count(check::Rule::kDoubleFree), 0u);

  // The misdirected free must not tombstone the allocation: the owner
  // still frees it cleanly, with no double-free or use-after-free.
  ASSERT_EQ(hip::hipSetDevice(0), hip::hipSuccess);
  EXPECT_EQ(hip::hipFree(d), hip::hipSuccess);
  EXPECT_EQ(count(check::Rule::kDoubleFree), 0u);
  EXPECT_EQ(count(check::Rule::kUseAfterFree), 0u);
}

}  // namespace
}  // namespace exa::qa
