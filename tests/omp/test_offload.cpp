#include "omp/offload.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "support/assert.hpp"

namespace exa::omp {
namespace {

class OffloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
    DeviceDataEnvironment::instance().reset();
  }
};

TEST_F(OffloadTest, StructuredRegionMapsAndReleases) {
  std::vector<double> a(100, 1.0);
  auto& env = DeviceDataEnvironment::instance();
  EXPECT_FALSE(env.is_present(a.data()));
  {
    TargetData region({map_tofrom(std::span<double>(a))});
    EXPECT_TRUE(env.is_present(a.data()));
    EXPECT_EQ(env.mapped_count(), 1u);
  }
  EXPECT_FALSE(env.is_present(a.data()));
  EXPECT_EQ(env.mapped_count(), 0u);
}

TEST_F(OffloadTest, DeviceCopyIsDistinctUntilUpdateFrom) {
  // The classic offload bug the trainings covered: host writes do not
  // reach the device (and vice versa) without a TARGET UPDATE.
  std::vector<double> a(16, 2.0);
  TargetData region({map_to(std::span<double>(a))});

  target_teams_distribute("double_it", a.size(), [&](std::size_t i) {
    DeviceView<double> dev{std::span<double>(a)};
    dev[i] *= 2.0;
  });
  (void)hip::hipDeviceSynchronize();

  // Host copy is stale...
  EXPECT_DOUBLE_EQ(a[0], 2.0);
  // ...until updated from the device.
  DeviceDataEnvironment::instance().update_from(a.data());
  EXPECT_DOUBLE_EQ(a[0], 4.0);
}

TEST_F(OffloadTest, UpdateToPushesHostWrites) {
  std::vector<double> a(8, 1.0);
  TargetData region({map_to(std::span<double>(a))});
  a[3] = 99.0;  // host-side change after mapping
  DeviceDataEnvironment::instance().update_to(a.data());
  double captured = 0.0;
  target_teams_distribute("read", 1, [&](std::size_t) {
    DeviceView<double> dev{std::span<double>(a)};
    captured = dev[3];
  });
  (void)hip::hipDeviceSynchronize();
  EXPECT_DOUBLE_EQ(captured, 99.0);
}

TEST_F(OffloadTest, MapFromCopiesBackOnExit) {
  std::vector<double> a(4, 0.0);
  {
    TargetData region({map_from(std::span<double>(a))});
    target_teams_distribute("fill", a.size(), [&](std::size_t i) {
      DeviceView<double> dev{std::span<double>(a)};
      dev[i] = static_cast<double>(i) + 1.0;
    });
    (void)hip::hipDeviceSynchronize();
    EXPECT_DOUBLE_EQ(a[0], 0.0);  // not yet
  }
  EXPECT_DOUBLE_EQ(a[0], 1.0);  // region exit copied back
  EXPECT_DOUBLE_EQ(a[3], 4.0);
}

TEST_F(OffloadTest, AllocMapMovesNothing) {
  std::vector<double> scratch(32, -5.0);
  {
    TargetData region({map_alloc(std::span<double>(scratch))});
    EXPECT_TRUE(DeviceDataEnvironment::instance().is_present(scratch.data()));
  }
  for (const double v : scratch) EXPECT_DOUBLE_EQ(v, -5.0);
}

TEST_F(OffloadTest, NestedRegionsRefcount) {
  std::vector<double> a(8, 3.0);
  auto& env = DeviceDataEnvironment::instance();
  {
    TargetData outer({map_tofrom(std::span<double>(a))});
    {
      TargetData inner({map_tofrom(std::span<double>(a))});
      EXPECT_EQ(env.mapped_count(), 1u);  // present table: one entry
    }
    EXPECT_TRUE(env.is_present(a.data()));  // outer still holds it
  }
  EXPECT_FALSE(env.is_present(a.data()));
}

TEST_F(OffloadTest, UseDevicePtrForGpuAwareMpi) {
  std::vector<double> halo(64, 1.0);
  TargetData region({map_to(std::span<double>(halo))});
  void* dptr = DeviceDataEnvironment::instance().use_device_ptr(halo.data());
  ASSERT_NE(dptr, nullptr);
  EXPECT_NE(dptr, static_cast<void*>(halo.data()));
  // The device pointer is a registered device allocation — exactly what
  // GPU-aware MPI needs.
  EXPECT_GE(hip::Runtime::instance().owner_of(dptr), 0);
}

TEST_F(OffloadTest, PersistentRegionAvoidsRepeatedTransfers) {
  // The §2.2 recommendation measured: one region around many kernels
  // moves data once; mapping per kernel moves it every time.
  std::vector<double> field(1 << 16, 1.0);
  const std::span<double> span(field);
  auto& dev = hip::Runtime::instance().current_device();

  const double t0 = dev.host_now();
  {
    TargetData region({map_tofrom(span)});
    for (int step = 0; step < 10; ++step) {
      target_teams_distribute("stepA", field.size(), [](std::size_t) {});
    }
  }
  (void)hip::hipDeviceSynchronize();
  const double persistent = dev.host_now() - t0;

  const double t1 = dev.host_now();
  for (int step = 0; step < 10; ++step) {
    TargetData region({map_tofrom(span)});
    target_teams_distribute("stepB", field.size(), [](std::size_t) {});
  }
  (void)hip::hipDeviceSynchronize();
  const double per_kernel = dev.host_now() - t1;

  EXPECT_LT(persistent, per_kernel / 2.0);
}

TEST_F(OffloadTest, ErrorsOnUnmappedAccess) {
  std::vector<double> a(4, 0.0);
  auto& env = DeviceDataEnvironment::instance();
  EXPECT_THROW(env.update_to(a.data()), support::Error);
  EXPECT_THROW((void)env.use_device_ptr(a.data()), support::Error);
  EXPECT_THROW(env.exit(a.data(), MapType::kFrom), support::Error);
}

TEST_F(OffloadTest, RemapDifferentSizeRejected) {
  std::vector<double> a(8, 0.0);
  TargetData region({map_to(std::span<double>(a))});
  EXPECT_THROW(DeviceDataEnvironment::instance().enter(a.data(), 4,
                                                       MapType::kTo),
               support::Error);
}

}  // namespace
}  // namespace exa::omp
