#include "apps/comet/ccc.hpp"

#include <gtest/gtest.h>

namespace exa::apps::comet {
namespace {

TEST(CometBits, SetGetRoundTrip) {
  BitVectorSet set(4, 100);
  set.set(2, 77, true);
  EXPECT_TRUE(set.get(2, 77));
  EXPECT_FALSE(set.get(2, 76));
  set.set(2, 77, false);
  EXPECT_FALSE(set.get(2, 77));
}

TEST(CometBits, TableCountsSumToSamples) {
  support::Rng rng(5);
  BitVectorSet set(8, 777);  // odd sample count exercises tail masking
  set.randomize(rng);
  for (std::size_t i = 0; i < set.vectors(); ++i) {
    for (std::size_t j = i; j < set.vectors(); ++j) {
      const Table2x2 t = contingency_popcount(set, i, j);
      EXPECT_EQ(t.n00 + t.n01 + t.n10 + t.n11, set.samples());
    }
  }
}

TEST(CometBits, SelfTableDiagonal) {
  support::Rng rng(6);
  BitVectorSet set(3, 200);
  set.randomize(rng, 0.3);
  const Table2x2 t = contingency_popcount(set, 1, 1);
  EXPECT_EQ(t.n01, 0u);  // a vector never disagrees with itself
  EXPECT_EQ(t.n10, 0u);
}

TEST(CometBits, KnownTinyCase) {
  BitVectorSet set(2, 4);
  // v0 = 1100, v1 = 1010.
  set.set(0, 0, true);
  set.set(0, 1, true);
  set.set(1, 0, true);
  set.set(1, 2, true);
  const Table2x2 t = contingency_popcount(set, 0, 1);
  EXPECT_EQ(t.n11, 1u);  // sample 0
  EXPECT_EQ(t.n10, 1u);  // sample 1
  EXPECT_EQ(t.n01, 1u);  // sample 2
  EXPECT_EQ(t.n00, 1u);  // sample 3
}

// The central CoMet property: the tensor-core GEMM formulation reproduces the
// popcount tables exactly.
class GemmEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GemmEquivalence, GemmMatchesPopcount) {
  const std::size_t samples = GetParam();
  support::Rng rng(9000 + samples);
  BitVectorSet set(10, samples);
  set.randomize(rng, 0.4);
  const auto tables = contingency_gemm(set);
  for (std::size_t i = 0; i < set.vectors(); ++i) {
    for (std::size_t j = i; j < set.vectors(); ++j) {
      const Table2x2 expect = contingency_popcount(set, i, j);
      const Table2x2 got = tables[i * set.vectors() + j];
      ASSERT_EQ(got, expect) << "pair (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SampleCounts, GemmEquivalence,
                         ::testing::Values(16, 63, 64, 65, 500, 2048));

TEST(CometMetric, IndependentVectorsScoreNearZero) {
  support::Rng rng(31);
  BitVectorSet set(2, 2000);
  set.randomize(rng, 0.5);
  const Table2x2 t = contingency_popcount(set, 0, 1);
  EXPECT_NEAR(ccc_metric(t, set.samples()), 0.0, 0.05);
}

TEST(CometMetric, IdenticalVectorsScoreHigh) {
  BitVectorSet set(2, 100);
  for (std::size_t s = 0; s < 50; ++s) {
    set.set(0, s, true);
    set.set(1, s, true);
  }
  const Table2x2 t = contingency_popcount(set, 0, 1);
  // f11 = 0.5, fi = fj = 0.5: excess over independence = 0.25.
  EXPECT_NEAR(ccc_metric(t, 100), 0.25, 1e-9);
}

TEST(Comet3Way, TableSumsToSamples) {
  support::Rng rng(41);
  BitVectorSet set(6, 515);
  set.randomize(rng, 0.45);
  const Table2x2x2 t = contingency3_popcount(set, 0, 2, 4);
  std::uint32_t total = 0;
  for (const auto v : t.n) total += v;
  EXPECT_EQ(total, set.samples());
}

TEST(Comet3Way, MarginalsMatch2Way) {
  // Summing the 3-way table over the third vector's bit recovers the
  // 2-way table of the first two.
  support::Rng rng(43);
  BitVectorSet set(5, 300);
  set.randomize(rng, 0.5);
  const Table2x2x2 t3 = contingency3_popcount(set, 1, 3, 4);
  const Table2x2 t2 = contingency_popcount(set, 1, 3);
  EXPECT_EQ(t3.n[0] + t3.n[1], t2.n00);
  EXPECT_EQ(t3.n[2] + t3.n[3], t2.n01);
  EXPECT_EQ(t3.n[4] + t3.n[5], t2.n10);
  EXPECT_EQ(t3.n[6] + t3.n[7], t2.n11);
}

TEST(Comet3Way, GemmPairMatchesPopcount) {
  support::Rng rng(47);
  BitVectorSet set(12, 700);
  set.randomize(rng, 0.4);
  const auto tables = contingency3_gemm_pair(set, 2, 7);
  for (std::size_t k = 0; k < set.vectors(); ++k) {
    ASSERT_EQ(tables[k], contingency3_popcount(set, 2, 7, k)) << "k=" << k;
  }
}

TEST(Comet3Way, IndependentTriplesScoreNearZero) {
  support::Rng rng(53);
  BitVectorSet set(3, 4000);
  set.randomize(rng, 0.5);
  const Table2x2x2 t = contingency3_popcount(set, 0, 1, 2);
  EXPECT_NEAR(ccc3_metric(t, set.samples()), 0.0, 0.05);
}

TEST(Comet3Way, PerfectlyCorrelatedTripleScoresHigh) {
  BitVectorSet set(3, 100);
  for (std::size_t s = 0; s < 50; ++s) {
    set.set(0, s, true);
    set.set(1, s, true);
    set.set(2, s, true);
  }
  const Table2x2x2 t = contingency3_popcount(set, 0, 1, 2);
  // f111 = 0.5, marginals 0.5 each: 0.5 - 0.125 = 0.375.
  EXPECT_NEAR(ccc3_metric(t, 100), 0.375, 1e-9);
}

TEST(CometScale, NearPerfectWeakScaling) {
  // §3.6: "CoMet exhibits near-perfect weak scaling behavior up to full
  // system scale."
  const arch::Machine frontier = arch::machines::frontier();
  const CometScaleResult r1 = scale_run(frontier, 1, 8192, 100000);
  const CometScaleResult r9074 = scale_run(frontier, 9074, 8192, 100000);
  EXPECT_GT(r9074.weak_scaling_efficiency, 0.95);
  EXPECT_NEAR(r9074.seconds_per_step, r1.seconds_per_step,
              0.05 * r1.seconds_per_step);
}

TEST(CometScale, ExaflopsAtFullScale) {
  // "over 6.71 exaflops ... on 9,074 compute nodes" — our model should
  // land in the same exaflops regime.
  const CometScaleResult r =
      scale_run(arch::machines::frontier(), 9074, 8192, 100000);
  EXPECT_GT(r.sustained_flops, 3e18);
  EXPECT_LT(r.sustained_flops, 14e18);
}

TEST(CometScale, MixedPrecisionBeatsFp64ByALot) {
  const arch::Machine frontier = arch::machines::frontier();
  const CometScaleResult fp16 = scale_run(frontier, 64, 8192, 100000);
  // FP64 comparison: peak ratio alone is ~8x.
  EXPECT_GT(fp16.sustained_flops / (64.0 * 8.0 * 23.9e12), 1.0);
}

}  // namespace
}  // namespace exa::apps::comet
