#include <cmath>
#include <cstdlib>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "apps/sparse/cg.hpp"
#include "arch/machine.hpp"
#include "support/assert.hpp"

namespace exa::apps::sparse {
namespace {

// --- stencil matrix --------------------------------------------------------

TEST(SparseCg, StencilMatrixShape) {
  const StencilMatrix a = build_stencil_matrix(4, 4, 4);
  ASSERT_EQ(a.n, 64u);
  ASSERT_EQ(a.row_ptr.size(), a.n + 1);
  EXPECT_EQ(a.row_ptr.front(), 0u);
  EXPECT_EQ(a.row_ptr.back(), a.nnz());
  // An interior point of a 4^3 grid has the full 27-point neighborhood;
  // the corner keeps only its 2x2x2 octant.
  const std::size_t interior = (1 * 4 + 1) * 4 + 1;
  EXPECT_EQ(a.row_ptr[interior + 1] - a.row_ptr[interior], 27u);
  EXPECT_EQ(a.row_ptr[1] - a.row_ptr[0], 8u);
}

TEST(SparseCg, StencilMatrixIsSymmetric) {
  const StencilMatrix a = build_stencil_matrix(3, 4, 5);
  std::map<std::pair<std::size_t, std::size_t>, double> entries;
  for (std::size_t i = 0; i < a.n; ++i) {
    for (std::size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      entries[{i, a.col[k]}] = a.val[k];
    }
  }
  for (const auto& [ij, v] : entries) {
    const auto it = entries.find({ij.second, ij.first});
    ASSERT_NE(it, entries.end());
    EXPECT_DOUBLE_EQ(it->second, v);
  }
}

TEST(SparseCg, StencilMatrixIsStrictlyDiagonallyDominant) {
  const StencilMatrix a = build_stencil_matrix(4, 4, 4);
  for (std::size_t i = 0; i < a.n; ++i) {
    double diag = 0.0, off = 0.0;
    for (std::size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col[k] == i) {
        diag = a.val[k];
      } else {
        off += std::fabs(a.val[k]);
      }
    }
    // Unit dominance margin by construction => SPD.
    EXPECT_NEAR(diag, off + 1.0, 1e-12) << "row " << i;
  }
}

// --- SpMV ------------------------------------------------------------------

TEST(SparseCg, SpmvMatchesSerialReference) {
  const StencilMatrix a = build_stencil_matrix(5, 5, 5);
  std::vector<double> x(a.n), y(a.n), ref(a.n);
  for (std::size_t i = 0; i < a.n; ++i) {
    x[i] = std::sin(0.1 * static_cast<double>(i)) + 0.5;
  }
  spmv(a, x, y);
  for (std::size_t i = 0; i < a.n; ++i) {
    double acc = 0.0;
    for (std::size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      acc += a.val[k] * x[a.col[k]];
    }
    ref[i] = acc;
  }
  // Row-local accumulation in fixed CSR order: bitwise, not approximate.
  for (std::size_t i = 0; i < a.n; ++i) {
    EXPECT_EQ(y[i], ref[i]) << "row " << i;
  }
}

TEST(SparseCg, SpmvRepeatsBitwise) {
  const StencilMatrix a = build_stencil_matrix(6, 6, 6);
  std::vector<double> x(a.n), y1(a.n), y2(a.n);
  for (std::size_t i = 0; i < a.n; ++i) {
    x[i] = 1.0 / (1.0 + static_cast<double>(i));
  }
  spmv(a, x, y1);
  spmv(a, x, y2);
  EXPECT_EQ(y1, y2);
}

// --- CG --------------------------------------------------------------------

/// Varying dyadic-valued RHS: the all-ones vector is an exact eigenvector
/// of the stencil (rows sum to 1), so a constant b would converge in one
/// trivial iteration.
std::vector<double> varying_rhs(std::size_t n) {
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = 1.0 + 0.125 * static_cast<double>(i % 7);
  }
  return b;
}

TEST(SparseCg, StencilRowsSumToOne) {
  // Every row sums to exactly 1 (diag = |offdiag| sum + unit margin), so
  // A·1 = 1: the ones vector is an exact eigenvalue-1 eigenvector.
  const StencilMatrix a = build_stencil_matrix(4, 4, 4);
  const std::vector<double> ones(a.n, 1.0);
  std::vector<double> y(a.n);
  spmv(a, ones, y);
  for (std::size_t i = 0; i < a.n; ++i) {
    EXPECT_NEAR(y[i], 1.0, 1e-12) << "row " << i;
  }
}

TEST(SparseCg, CgConvergesAndSolves) {
  const StencilMatrix a = build_stencil_matrix(6, 6, 6);
  const std::vector<double> b = varying_rhs(a.n);
  const CgResult result = cg_solve(a, b, 1e-10, 500);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_GT(result.stats.iterations, 1);  // non-trivial Krylov loop
  EXPECT_LT(result.stats.iterations, 500);
  // Residual check: ||b - A x|| <= tol-ish * ||b||.
  std::vector<double> ax(a.n);
  spmv(a, result.x, ax);
  double rr = 0.0, bb = 0.0;
  for (std::size_t i = 0; i < a.n; ++i) {
    rr += (b[i] - ax[i]) * (b[i] - ax[i]);
    bb += b[i] * b[i];
  }
  EXPECT_LE(std::sqrt(rr), 1e-9 * std::sqrt(bb));
}

TEST(SparseCg, CgLedgerCountsMatchIterations) {
  const StencilMatrix a = build_stencil_matrix(5, 5, 5);
  const std::vector<double> b = varying_rhs(a.n);
  const CgResult result = cg_solve(a, b, 1e-8, 500);
  ASSERT_TRUE(result.stats.converged);
  // One SpMV per iteration; one init reduction plus two per iteration.
  EXPECT_EQ(result.stats.matrix_reads,
            static_cast<std::uint64_t>(result.stats.iterations));
  EXPECT_EQ(result.stats.allreduces, 1 + 2 * result.stats.iterations);
}

TEST(SparseCg, CgIsDeterministic) {
  const StencilMatrix a = build_stencil_matrix(6, 6, 6);
  const std::vector<double> b = varying_rhs(a.n);
  const CgResult r1 = cg_solve(a, b, 1e-10, 500);
  const CgResult r2 = cg_solve(a, b, 1e-10, 500);
  EXPECT_EQ(r1.stats.iterations, r2.stats.iterations);
  EXPECT_EQ(r1.x, r2.x);  // bitwise
}

TEST(SparseCg, CgReportsNonConvergence) {
  const StencilMatrix a = build_stencil_matrix(6, 6, 6);
  const std::vector<double> b = varying_rhs(a.n);
  const CgResult result = cg_solve(a, b, 1e-14, 2);
  EXPECT_FALSE(result.stats.converged);
  EXPECT_EQ(result.stats.iterations, 2);
}

// --- the perf model --------------------------------------------------------

TEST(SparseCg, SolveModelPricesAllTerms) {
  CgStats stats;
  stats.iterations = 40;
  stats.matrix_reads = 40;
  stats.allreduces = 81;
  stats.converged = true;
  const SolveModel m =
      solve_model(arch::machines::frontier(), 4, 1u << 20, stats);
  EXPECT_GT(m.spmv_s, 0.0);
  EXPECT_GT(m.reduce_s, 0.0);
  EXPECT_GT(m.halo_s, 0.0);
  EXPECT_NEAR(m.total_s,
              40.0 * m.spmv_s + 81.0 * m.reduce_s + 40.0 * m.halo_s, 1e-15);
  EXPECT_GT(m.fom, 0.0);
}

TEST(SparseCg, SolveModelRejectsCpuOnlyMachines) {
  CgStats stats;
  stats.iterations = 10;
  stats.matrix_reads = 10;
  stats.allreduces = 21;
  EXPECT_THROW((void)solve_model(arch::machines::cori(), 4, 1u << 20, stats),
               support::Error);
}

TEST(SparseCg, FrontierNodeBeatsWombatNodeByBandwidthRatio) {
  // SpMV is bandwidth-bound, so the per-node FoM ratio tracks the node
  // HBM-bandwidth ratio: 8 GCDs x 1.6 TB/s vs 2 A100s x 1.555 TB/s = 4.12.
  CgStats stats;
  stats.iterations = 40;
  stats.matrix_reads = 40;
  stats.allreduces = 81;
  const SolveModel frontier =
      solve_model(arch::machines::frontier(), 8, 1u << 20, stats);
  const SolveModel wombat =
      solve_model(arch::machines::wombat(), 8, 1u << 20, stats);
  const double ratio = frontier.fom / wombat.fom;
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.5);
}

TEST(SparseCg, StragglerFaultSlowsTheSolve) {
  CgStats stats;
  stats.iterations = 40;
  stats.matrix_reads = 40;
  stats.allreduces = 81;
  const arch::Machine frontier = arch::machines::frontier();
  const SolveModel clean = solve_model(frontier, 8, 1u << 20, stats);
  net::FabricConfig faulty;
  faulty.faults.straggler_fraction = 0.0625;
  faulty.faults.straggler_slowdown = 4.0;
  const SolveModel hurt = solve_model(frontier, 8, 1u << 20, stats, faulty);
  EXPECT_GT(hurt.total_s, clean.total_s);
  EXPECT_LT(hurt.fom, clean.fom);
  // Compute cost is untouched; only the fabric terms degrade.
  EXPECT_EQ(hurt.spmv_s, clean.spmv_s);
}

}  // namespace
}  // namespace exa::apps::sparse
