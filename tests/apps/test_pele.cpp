#include <cmath>

#include <gtest/gtest.h>

#include "apps/pele/amr.hpp"
#include "apps/pele/chemistry.hpp"
#include "apps/pele/driver.hpp"
#include "mathlib/dense.hpp"
#include "support/assert.hpp"

namespace exa::apps::pele {
namespace {

// --- chemistry ------------------------------------------------------------

TEST(PeleChem, MechanismConservesElements) {
  // Every reaction must conserve H and O atom counts.
  for (const Reaction& r : mechanism()) {
    int h_in = 0, h_out = 0, o_in = 0, o_out = 0;
    const int h_per[kNumSpecies] = {2, 0, 2, 1, 0, 1};
    const int o_per[kNumSpecies] = {0, 2, 1, 0, 1, 1};
    for (std::size_t s = 0; s < kNumSpecies; ++s) {
      h_in += r.reactants[s] * h_per[s];
      h_out += r.products[s] * h_per[s];
      o_in += r.reactants[s] * o_per[s];
      o_out += r.products[s] * o_per[s];
    }
    EXPECT_EQ(h_in, h_out);
    EXPECT_EQ(o_in, o_out);
  }
}

TEST(PeleChem, ProductionRatesConserveElements) {
  const Conc c = ignition_mixture();
  Conc wdot;
  production_rates(c, wdot);
  // d(elements)/dt = 0.
  const double dh = 2.0 * wdot[kH2] + 2.0 * wdot[kH2O] + wdot[kH] + wdot[kOH];
  const double doo = 2.0 * wdot[kO2] + wdot[kH2O] + wdot[kO] + wdot[kOH];
  EXPECT_NEAR(dh, 0.0, 1e-12);
  EXPECT_NEAR(doo, 0.0, 1e-12);
}

TEST(PeleChem, FuelDepletesWaterForms) {
  std::vector<Conc> cells = {ignition_mixture()};
  integrate_rk4_pointwise(cells, 1e-3, 200);
  EXPECT_LT(cells[0][kH2], ignition_mixture()[kH2]);
  EXPECT_GT(cells[0][kH2O], 0.0);
  for (std::size_t s = 0; s < kNumSpecies; ++s) {
    EXPECT_GE(cells[0][s], -1e-9) << species_name(s);
  }
}

TEST(PeleChem, JacobianMatchesDirectionalDerivative) {
  const Conc c = ignition_mixture();
  std::vector<double> jac(kNumSpecies * kNumSpecies);
  jacobian_fd(c, jac);
  // J * e_H2 should equal d(wdot)/d[H2] by definition; compare against an
  // independent finite difference with a different step.
  const double h = 1e-6;
  Conc plus = c;
  plus[kH2] += h;
  Conc minus = c;
  minus[kH2] -= h;
  Conc wp, wm;
  production_rates(plus, wp);
  production_rates(minus, wm);
  for (std::size_t i = 0; i < kNumSpecies; ++i) {
    const double fd = (wp[i] - wm[i]) / (2.0 * h);
    EXPECT_NEAR(jac[i * kNumSpecies + kH2], fd,
                1e-4 * std::max(1.0, std::fabs(fd)));
  }
}

TEST(PeleChem, ImplicitMatchesExplicitAtSmallDt) {
  std::vector<Conc> explicit_cells = {ignition_mixture()};
  std::vector<Conc> implicit_cells = {ignition_mixture()};
  const double dt = 1e-5;
  integrate_rk4_pointwise(explicit_cells, dt, 50);
  integrate_be_batched(implicit_cells, dt);
  for (std::size_t s = 0; s < kNumSpecies; ++s) {
    EXPECT_NEAR(implicit_cells[0][s], explicit_cells[0][s], 2e-4)
        << species_name(s);
  }
}

TEST(PeleChem, ImplicitStableAtStiffDt) {
  // A dt far beyond the explicit stability limit of the recombination
  // reaction: backward Euler stays bounded and conserves elements.
  std::vector<Conc> cells = {ignition_mixture()};
  const Elements before = element_totals(cells[0]);
  const IntegrateStats stats = integrate_be_batched(cells, 0.05);
  const Elements after = element_totals(cells[0]);
  EXPECT_NEAR(after.h, before.h, 1e-8 * before.h);
  EXPECT_NEAR(after.o, before.o, 1e-8 * before.o);
  EXPECT_GT(stats.linear_solves, 0u);
  for (std::size_t s = 0; s < kNumSpecies; ++s) {
    EXPECT_TRUE(std::isfinite(cells[0][s]));
    EXPECT_LT(std::fabs(cells[0][s]), 10.0);
  }
}

TEST(PeleChem, BatchedIntegratorHandlesManyCells) {
  std::vector<Conc> cells(64, ignition_mixture());
  // Perturb each cell so they are distinct.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i][kH] *= 1.0 + 0.01 * static_cast<double>(i);
  }
  const IntegrateStats stats = integrate_be_batched(cells, 1e-3);
  EXPECT_GT(stats.newton_iters, 0u);
  // All cells advanced: H2 consumed in every one.
  for (const Conc& c : cells) EXPECT_LT(c[kH2], 2.0);
}

// --- AMR -----------------------------------------------------------------

TEST(PeleAmr, GhostExchangeMatchesMonolithicStencil) {
  BoxGrid grid(3, 4, 1);
  grid.fill([](std::size_t x, std::size_t y, std::size_t z) {
    return std::sin(0.3 * static_cast<double>(x)) +
           0.2 * static_cast<double>(y) - 0.1 * static_cast<double>(z * z);
  });
  std::vector<double> ref = grid.flatten();

  grid.exchange_ghosts();
  grid.stencil_step(0.05);
  reference_stencil_step(ref, grid.domain_cells(), 0.05);

  const std::vector<double> got = grid.flatten();
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], 1e-12) << "cell " << i;
  }
}

TEST(PeleAmr, MultiStepDiffusionStaysConsistent) {
  BoxGrid grid(2, 6, 1);
  grid.fill([](std::size_t x, std::size_t, std::size_t) {
    return x < 6 ? 1.0 : 0.0;
  });
  std::vector<double> ref = grid.flatten();
  for (int step = 0; step < 5; ++step) {
    grid.exchange_ghosts();
    grid.stencil_step(0.1);
    reference_stencil_step(ref, grid.domain_cells(), 0.1);
  }
  EXPECT_LT(ml::rel_error<double>(grid.flatten(), ref), 1e-12);
}

TEST(PeleAmr, DiffusionConservesTotal) {
  BoxGrid grid(2, 4, 1);
  grid.fill([](std::size_t x, std::size_t y, std::size_t z) {
    return static_cast<double>(x + 2 * y + 3 * z);
  });
  auto total = [](const std::vector<double>& f) {
    double s = 0.0;
    for (const double v : f) s += v;
    return s;
  };
  const double before = total(grid.flatten());
  grid.exchange_ghosts();
  grid.stencil_step(0.1);
  // Replicated boundaries make the laplacian flux zero at the domain edge,
  // but interior diffusion conserves within a small boundary effect — use
  // a uniform field for exact conservation instead.
  BoxGrid uniform(2, 4, 1);
  uniform.fill([](std::size_t, std::size_t, std::size_t) { return 5.0; });
  uniform.exchange_ghosts();
  uniform.stencil_step(0.1);
  EXPECT_NEAR(total(uniform.flatten()), 5.0 * 512.0, 1e-9);
  (void)before;
}

TEST(PeleAmr, GhostBytesAccounting) {
  BoxGrid grid(2, 8, 1);
  EXPECT_DOUBLE_EQ(grid.ghost_bytes_per_exchange(),
                   6.0 * 64.0 * 8.0 * 8.0);  // 6 faces x n^2 x g x 8B x boxes
}

TEST(PeleAmr, SphereEbFlags) {
  const EbFlags eb = make_sphere_eb(16, 0.5);
  // Center is covered, corner is not.
  EXPECT_EQ(eb.covered[(8 * 16 + 8) * 16 + 8], 1);
  EXPECT_EQ(eb.covered[0], 0);
  EXPECT_GT(eb.cut_cells, 0u);
  // Cut cells approximate the sphere surface: area ~ 4 pi r^2.
  const double r = 0.25 * 16;
  EXPECT_NEAR(static_cast<double>(eb.cut_cells), 4.0 * 3.14159 * r * r,
              0.6 * 4.0 * 3.14159 * r * r);
}

// --- the Figure 2 driver ----------------------------------------------------

TEST(PeleDriver, CpuStatesRunOnCpuMachines) {
  const CellTime t =
      time_per_cell_step(arch::machines::cori(), CodeState::kHybridCpu2018);
  EXPECT_GT(t.total(), 0.0);
  EXPECT_THROW((void)time_per_cell_step(arch::machines::cori(),
                                        CodeState::kGpuTuned2023),
               support::Error);
}

TEST(PeleDriver, SingleLanguageRewriteIs2x) {
  const arch::Machine eagle = arch::machines::eagle();
  const double hybrid =
      time_per_cell_step(eagle, CodeState::kHybridCpu2018).total();
  const double cpp = time_per_cell_step(eagle, CodeState::kCppCpu2019).total();
  EXPECT_NEAR(hybrid / cpp, 2.0, 1e-9);
}

TEST(PeleDriver, GpuPortIsTheBiggestSingleJump) {
  // "The initial porting to GPU was the most lucrative increase" (§3.8).
  const double eagle_cpp =
      time_per_cell_step(arch::machines::eagle(), CodeState::kCppCpu2019)
          .total();
  const double summit_gpu = time_per_cell_step(arch::machines::summit(),
                                               CodeState::kGpuUvmPointwise2020)
                                .total();
  const double summit_batched = time_per_cell_step(
      arch::machines::summit(), CodeState::kGpuBatchedAsync2021).total();
  const double jump_gpu = eagle_cpp / summit_gpu;
  const double jump_batched = summit_gpu / summit_batched;
  EXPECT_GT(jump_gpu, 1.0);
  EXPECT_GT(jump_batched, 1.0);
  EXPECT_GT(jump_gpu, jump_batched);
}

TEST(PeleDriver, EveryOptimizationStateImproves) {
  const arch::Machine summit = arch::machines::summit();
  const double uvm =
      time_per_cell_step(summit, CodeState::kGpuUvmPointwise2020).total();
  const double batched =
      time_per_cell_step(summit, CodeState::kGpuBatchedAsync2021).total();
  const double tuned =
      time_per_cell_step(summit, CodeState::kGpuTuned2023).total();
  EXPECT_LT(batched, uvm);
  EXPECT_LT(tuned, batched);
}

TEST(PeleDriver, Figure2SeriesShape) {
  const auto series = figure2_series();
  ASSERT_EQ(series.size(), 9u);
  // Single-node history decreases monotonically once the code starts
  // improving (the Cori -> Theta hop is a same-code, weaker-node move and
  // may tick up, as in the paper's figure).
  for (std::size_t i = 2; i < 6; ++i) {
    EXPECT_LT(series[i].time_per_cell_s, series[i - 1].time_per_cell_s)
        << series[i].machine << " " << series[i].date;
  }
  // Total project gain ~75x (shape: between 30x and 200x).
  const double total = series[0].time_per_cell_s / series[5].time_per_cell_s;
  EXPECT_GT(total, 30.0);
  EXPECT_LT(total, 200.0);
  // 4096-node points exist for Summit and Frontier.
  EXPECT_EQ(series[6].nodes, 4096);
  EXPECT_EQ(series[8].machine, "Frontier");
}

TEST(PeleDriver, WeakScalingOver80Percent) {
  // §3.8: "weak scaling efficiency of PeleC and PeleLMeX from one to 4096
  // Frontier nodes is over 80%".
  const double eff =
      weak_scaling_efficiency(arch::machines::frontier(), 4096);
  EXPECT_GT(eff, 0.8);
  EXPECT_LE(eff, 1.0);
}

TEST(PeleDriver, UvmRemovalMatters) {
  const arch::Machine frontier = arch::machines::frontier();
  const CellTime uvm =
      time_per_cell_step(frontier, CodeState::kGpuUvmPointwise2020);
  const CellTime tuned = time_per_cell_step(frontier, CodeState::kGpuTuned2023);
  EXPECT_GT(uvm.uvm_s, 0.0);
  EXPECT_DOUBLE_EQ(tuned.uvm_s, 0.0);
}

}  // namespace
}  // namespace exa::apps::pele
