#include "apps/shoc/shoc.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "apps/shoc/kernels.hpp"
#include "support/stats.hpp"

namespace exa::apps::shoc {
namespace {

TEST(ShocKernels, ReductionMatchesSerialSum) {
  std::vector<float> data(1000);
  double expected = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i % 17) * 0.25f;
    expected += data[i];
  }
  EXPECT_NEAR(kernels::reduction(data), expected, 1e-6);
  EXPECT_DOUBLE_EQ(kernels::reduction({}), 0.0);
}

TEST(ShocKernels, ReductionOddLength) {
  const std::vector<float> data = {1.0f, 2.0f, 3.0f};
  EXPECT_DOUBLE_EQ(kernels::reduction(data), 6.0);
}

TEST(ShocKernels, ExclusiveScan) {
  const std::vector<float> in = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> out(4);
  kernels::exclusive_scan(in, out);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 1.0f);
  EXPECT_FLOAT_EQ(out[2], 3.0f);
  EXPECT_FLOAT_EQ(out[3], 6.0f);
}

TEST(ShocKernels, Triad) {
  const std::vector<float> a = {1.0f, 2.0f};
  const std::vector<float> b = {10.0f, 20.0f};
  std::vector<float> c(2);
  kernels::triad(a, b, 0.5f, c);
  EXPECT_FLOAT_EQ(c[0], 6.0f);
  EXPECT_FLOAT_EQ(c[1], 12.0f);
}

TEST(ShocKernels, StencilPreservesConstantField) {
  // Weights summing to 1 leave a constant field unchanged.
  const std::size_t h = 8, w = 8;
  std::vector<float> in(h * w, 3.0f);
  std::vector<float> out(h * w, 0.0f);
  kernels::stencil2d(in, out, h, w, 0.5f, 0.1f, 0.025f);
  for (const float v : out) EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST(ShocKernels, StencilBoundaryCopied) {
  const std::size_t h = 4, w = 4;
  std::vector<float> in(h * w);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<float>(i);
  std::vector<float> out(h * w);
  kernels::stencil2d(in, out, h, w, 1.0f, 0.0f, 0.0f);
  EXPECT_FLOAT_EQ(out[0], in[0]);
  EXPECT_FLOAT_EQ(out[h * w - 1], in[h * w - 1]);
}

TEST(ShocKernels, LjForcesNewtonThirdLaw) {
  std::vector<kernels::Vec3> pos = {
      {0.0, 0.0, 0.0}, {1.2, 0.0, 0.0}, {0.0, 1.1, 0.3}, {2.0, 2.0, 2.0}};
  std::vector<kernels::Vec3> force(pos.size());
  kernels::lj_forces(pos, force, 2.5, 1.0, 1.0);
  double fx = 0.0, fy = 0.0, fz = 0.0;
  for (const auto& f : force) {
    fx += f.x;
    fy += f.y;
    fz += f.z;
  }
  EXPECT_NEAR(fx, 0.0, 1e-12);
  EXPECT_NEAR(fy, 0.0, 1e-12);
  EXPECT_NEAR(fz, 0.0, 1e-12);
}

TEST(ShocKernels, LjEquilibriumDistanceForceSign) {
  // At r < 2^(1/6) sigma the force is repulsive (pushes apart).
  std::vector<kernels::Vec3> close = {{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
  std::vector<kernels::Vec3> f(2);
  kernels::lj_forces(close, f, 3.0, 1.0, 1.0);
  EXPECT_GT(f[1].x, 0.0);
  // At r > 2^(1/6) it attracts.
  std::vector<kernels::Vec3> far = {{0.0, 0.0, 0.0}, {1.5, 0.0, 0.0}};
  kernels::lj_forces(far, f, 3.0, 1.0, 1.0);
  EXPECT_LT(f[1].x, 0.0);
}

TEST(ShocKernels, SpmvBanded) {
  const auto m = kernels::make_banded(10, 2);
  std::vector<double> x(10, 1.0);
  std::vector<double> y(10);
  kernels::spmv(m, x, y);
  // Row sums: diagonal dominance makes them positive.
  for (const double v : y) EXPECT_GT(v, 0.0);
}

TEST(ShocKernels, BfsLevelsOnKnownGraph) {
  // Ring of 8 with stride-2 chords: distances from 0 are easy to check.
  const kernels::Graph g = kernels::make_ring_with_chords(8, 2);
  const auto level = kernels::bfs(g, 0);
  EXPECT_EQ(level[0], 0u);
  EXPECT_EQ(level[1], 1u);
  EXPECT_EQ(level[2], 1u);  // chord 0->2
  EXPECT_EQ(level[7], 1u);  // ring back-edge
  EXPECT_EQ(level[4], 2u);  // via 2
  // Everything reachable.
  for (const auto l : level) EXPECT_NE(l, static_cast<std::size_t>(-1));
}

TEST(ShocKernels, BfsMatchesTriangleInequality) {
  const kernels::Graph g = kernels::make_ring_with_chords(64, 9);
  const auto level = kernels::bfs(g, 5);
  // Adjacent vertices differ by at most one level.
  for (std::size_t v = 0; v < g.vertices; ++v) {
    for (std::size_t p = g.row_ptr[v]; p < g.row_ptr[v + 1]; ++p) {
      const std::size_t u = g.adj[p];
      EXPECT_LE(level[v], level[u] + 1);
      EXPECT_LE(level[u], level[v] + 1);
    }
  }
}

TEST(ShocSuite, AllBenchmarksRun) {
  hip::Runtime::instance().configure(arch::v100(), 1);
  support::Rng noise(99);
  for (const BenchmarkId id : all_benchmarks()) {
    const RunResult r = run_benchmark(id, SizeClass::kSmall, noise);
    EXPECT_GT(r.kernel_s, 0.0) << to_string(id);
    EXPECT_GE(r.total_s, r.kernel_s * 0.99) << to_string(id);
    EXPECT_GT(r.rate, 0.0) << to_string(id);
  }
}

TEST(ShocSuite, BusSpeedMatchesLinkBandwidth) {
  hip::Runtime::instance().configure(arch::v100(), 1);
  support::Rng noise(1);
  const RunResult r =
      run_benchmark(BenchmarkId::kBusSpeedDownload, SizeClass::kLarge, noise);
  // NVLink 50 GB/s model: measured rate within 10%.
  EXPECT_NEAR(r.rate, 50e9, 5e9);
}

TEST(ShocSuite, DeviceMemoryNearHbmBandwidth) {
  hip::Runtime::instance().configure(arch::v100(), 1);
  support::Rng noise(2);
  const RunResult r =
      run_benchmark(BenchmarkId::kDeviceMemory, SizeClass::kLarge, noise);
  EXPECT_GT(r.rate, 0.5 * 900e9);
  EXPECT_LT(r.rate, 900e9);
}

TEST(ShocSuite, MaxFlopsBelowPeak) {
  hip::Runtime::instance().configure(arch::v100(), 1);
  support::Rng noise(3);
  const RunResult r =
      run_benchmark(BenchmarkId::kMaxFlops, SizeClass::kLarge, noise);
  EXPECT_GT(r.rate, 0.6 * 15.7e12);
  EXPECT_LE(r.rate, 15.7e12 * 1.02);
}

TEST(ShocSuite, HipVsCudaParity) {
  // The Figure 1 claim: normalized HIP performance within [0.9, 1.05],
  // averaging ~99.8%.
  hip::Runtime::instance().configure(arch::v100(), 1);
  const auto points = compare_hip_vs_cuda(SizeClass::kSmall, 12345);
  ASSERT_EQ(points.size(), all_benchmarks().size());
  std::vector<double> with_transfer;
  std::vector<double> kernel_only;
  for (const auto& p : points) {
    EXPECT_GT(p.ratio_with_transfer, 0.9) << to_string(p.id);
    EXPECT_LT(p.ratio_with_transfer, 1.05) << to_string(p.id);
    with_transfer.push_back(p.ratio_with_transfer);
    kernel_only.push_back(p.ratio_kernel_only);
  }
  EXPECT_NEAR(support::geomean(with_transfer), 0.998, 0.01);
  EXPECT_NEAR(support::geomean(kernel_only), 0.999, 0.01);
}

TEST(ShocSuite, SizeClassesScaleWork) {
  hip::Runtime::instance().configure(arch::v100(), 1);
  support::Rng noise(4);
  const RunResult small =
      run_benchmark(BenchmarkId::kTriad, SizeClass::kSmall, noise);
  const RunResult large =
      run_benchmark(BenchmarkId::kTriad, SizeClass::kLarge, noise);
  EXPECT_GT(large.kernel_s, 4.0 * small.kernel_s);
}

}  // namespace
}  // namespace exa::apps::shoc
