#include "apps/lsms/kkr.hpp"

#include <gtest/gtest.h>

#include "mathlib/dense.hpp"

namespace exa::apps::lsms {
namespace {

TEST(LsmsCluster, CentralAtomFirstAndOrdered) {
  const LizCluster liz = make_liz_cluster(20, 16);
  ASSERT_EQ(liz.sites.size(), 20u);
  EXPECT_DOUBLE_EQ(liz.sites[0].x, 0.0);
  EXPECT_DOUBLE_EQ(liz.sites[0].y, 0.0);
  EXPECT_DOUBLE_EQ(liz.sites[0].z, 0.0);
  // Distance-ordered shells.
  auto r2 = [](const Site& s) { return s.x * s.x + s.y * s.y + s.z * s.z; };
  for (std::size_t i = 1; i < liz.sites.size(); ++i) {
    EXPECT_GE(r2(liz.sites[i]), r2(liz.sites[i - 1]) - 1e-12);
  }
  EXPECT_EQ(liz.matrix_size(), 20u * 16u);
}

TEST(LsmsMatrix, DiagonalDominantAndFinite) {
  const LizCluster liz = make_liz_cluster(8, 4);
  const auto m = build_kkr_matrix(liz, 0.5, 0.05);
  const std::size_t n = liz.matrix_size();
  ASSERT_EQ(m.size(), n * n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_TRUE(std::isfinite(m[i * n + j].real()));
      if (i != j) off += std::abs(m[i * n + j]);
    }
    EXPECT_GT(std::abs(m[i * n + i]), off) << "row " << i;
  }
}

// The central LSMS equivalence: both solver paths produce the same tau00.
class SolverEquivalence
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SolverEquivalence, BlockLuMatchesLibraryLu) {
  const auto [atoms, block] = GetParam();
  const LizCluster liz = make_liz_cluster(atoms, block);
  const auto m = build_kkr_matrix(liz, 0.4, 0.02);
  const auto tau_block = tau00_block_lu(m, liz);
  const auto tau_lu = tau00_lu(m, liz);
  EXPECT_LT(ml::rel_error<ml::zcomplex>(tau_block, tau_lu), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SolverEquivalence,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(4, 4),
                      std::make_pair<std::size_t, std::size_t>(6, 8),
                      std::make_pair<std::size_t, std::size_t>(10, 4),
                      std::make_pair<std::size_t, std::size_t>(3, 16)));

TEST(LsmsScf, LoopConverges) {
  const LizCluster liz = make_liz_cluster(6, 4);
  const ScfResult r = self_consistency_loop(liz, /*q_target=*/0.0);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.residual, 1e-10);
  EXPECT_GT(r.iterations, 1);
}

TEST(LsmsScf, FixedPointIsSelfConsistent) {
  const LizCluster liz = make_liz_cluster(6, 4);
  const double q_target = 0.1;
  const double coupling = 0.4;
  const ScfResult r = self_consistency_loop(liz, q_target, coupling);
  ASSERT_TRUE(r.converged);
  // v* = coupling * (q(v*) - q_target): the defining equation holds.
  const double q = charge_for_potential(liz, r.potential);
  EXPECT_NEAR(r.potential, coupling * (q - q_target), 1e-8);
}

TEST(LsmsScf, ChargeRespondsToPotential) {
  const LizCluster liz = make_liz_cluster(6, 4);
  const double q0 = charge_for_potential(liz, 0.0);
  const double q1 = charge_for_potential(liz, 1.0);
  EXPECT_NE(q0, q1);  // the observable really depends on the potential
  EXPECT_TRUE(std::isfinite(q0));
  EXPECT_TRUE(std::isfinite(q1));
}

TEST(LsmsTiming, LuPathBeatsBlockInversionOnMi250x) {
  // §3.2: "we observe better performance for the direct solution of the
  // LIZ tau matrices using the rocSOLVER routines."
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const LsmsTimings block =
      simulate_atom_solve(gpu, 113, 32, SolverPath::kBlockInversion, true);
  const LsmsTimings lu =
      simulate_atom_solve(gpu, 113, 32, SolverPath::kLibraryLu, true);
  EXPECT_LT(lu.solve_s, block.solve_s);
}

TEST(LsmsTiming, IndexRearrangementHelps) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const LsmsTimings before =
      simulate_atom_solve(gpu, 113, 32, SolverPath::kLibraryLu, false);
  const LsmsTimings after =
      simulate_atom_solve(gpu, 113, 32, SolverPath::kLibraryLu, true);
  EXPECT_LT(after.assembly_s, before.assembly_s);
  EXPECT_DOUBLE_EQ(after.solve_s, before.solve_s);  // fix touches assembly only
}

TEST(LsmsTiming, PerGpuSpeedupNear7p5) {
  // Table 2: LSMS 7.5x per GPU (MI250X module = 2 GCDs vs one V100),
  // best-practice configuration on both ends.
  const LsmsTimings v100 = simulate_atom_solve(
      arch::v100(), 113, 32, SolverPath::kBlockInversion, true);
  const LsmsTimings gcd = simulate_atom_solve(
      arch::mi250x_gcd(), 113, 32, SolverPath::kLibraryLu, true);
  const double speedup = v100.total() / gcd.total() * 2.0;  // module = 2 GCDs
  EXPECT_GT(speedup, 5.0);
  EXPECT_LT(speedup, 11.0);
}

}  // namespace
}  // namespace exa::apps::lsms
