#include <gtest/gtest.h>

#include "apps/nuccor/backend.hpp"
#include "apps/nuccor/ccd.hpp"

namespace exa::apps::nuccor {
namespace {

TEST(NuccorFactory, BuiltinPluginsAvailable) {
  const auto names = BackendFactory::instance().available();
  EXPECT_GE(names.size(), 3u);
  for (const char* name : {kCpuBackend, kCudaBackend, kHipBackend}) {
    auto backend = BackendFactory::instance().create(name);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), name);
  }
}

TEST(NuccorFactory, UnknownPluginRejected) {
  EXPECT_THROW((void)BackendFactory::instance().create("sycl"),
               support::Error);
}

TEST(NuccorFactory, NewPluginIsJustARegistration) {
  // The §3.7 claim: adding support for new hardware is "just a matter of
  // creating the appropriate plugin and adding it to the factory".
  struct NullBackend final : TensorBackend {
    [[nodiscard]] std::string name() const override { return "null"; }
    void contract(std::span<const double>, std::span<const double>,
                  std::span<double> c, std::size_t, std::size_t, std::size_t,
                  double, double) override {
      for (auto& v : c) v = 0.0;
    }
    void scale_by_denominator(std::span<double>,
                              std::span<const double>) override {}
    [[nodiscard]] double dot(std::span<const double>,
                             std::span<const double>) override {
      return 0.0;
    }
  };
  const bool registered = BackendFactory::instance().register_plugin(
      "null-test", [] { return std::make_unique<NullBackend>(); });
  EXPECT_TRUE(registered);
  EXPECT_FALSE(BackendFactory::instance().register_plugin(
      "null-test", [] { return std::make_unique<NullBackend>(); }));
  auto b = BackendFactory::instance().create("null-test");
  EXPECT_EQ(b->name(), "null");
}

TEST(NuccorCcd, ConvergesOnCpu) {
  support::Rng rng(11);
  const PairingModel model = make_pairing_model(12, 8, 0.2, rng);
  const CcdResult r = solve_ccd(model, kCpuBackend);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.energy, 0.0);  // attractive pairing: correlation lowers E
  EXPECT_GT(r.iterations, 1);
}

TEST(NuccorCcd, AllBackendsAgreeBitwiseMath) {
  // The science code is backend-independent: identical numerics from every
  // plugin (the simulated devices run the same host math).
  support::Rng rng(13);
  const PairingModel model = make_pairing_model(10, 6, 0.15, rng);
  const CcdResult cpu = solve_ccd(model, kCpuBackend);
  const CcdResult cuda = solve_ccd(model, kCudaBackend);
  const CcdResult hip = solve_ccd(model, kHipBackend);
  EXPECT_DOUBLE_EQ(cpu.energy, cuda.energy);
  EXPECT_DOUBLE_EQ(cpu.energy, hip.energy);
  EXPECT_EQ(cpu.iterations, hip.iterations);
}

TEST(NuccorCcd, DeviceTimeChargedOnlyByDevicePlugins) {
  support::Rng rng(17);
  const PairingModel model = make_pairing_model(10, 6, 0.15, rng);
  EXPECT_DOUBLE_EQ(solve_ccd(model, kCpuBackend).device_seconds, 0.0);
  EXPECT_GT(solve_ccd(model, kHipBackend).device_seconds, 0.0);
}

TEST(NuccorCcd, HipPluginFasterThanCudaPlugin) {
  // Table 2: NuCCOR 6.1x (per MI250X module vs per V100). Per GCD the
  // GEMM-dominated iteration should be ~2-4x.
  support::Rng rng(19);
  const PairingModel model = make_pairing_model(64, 48, 0.1, rng);
  const CcdResult cuda = solve_ccd(model, kCudaBackend);
  const CcdResult hip = solve_ccd(model, kHipBackend);
  const double speedup = 2.0 * cuda.device_seconds / hip.device_seconds;
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 14.0);
}

TEST(NuccorCcd, StrongerCouplingMoreCorrelation) {
  support::Rng rng(23);
  const PairingModel weak = make_pairing_model(10, 8, 0.05, rng);
  rng.reseed(23);
  const PairingModel strong = make_pairing_model(10, 8, 0.3, rng);
  const double e_weak = solve_ccd(weak, kCpuBackend).energy;
  const double e_strong = solve_ccd(strong, kCpuBackend).energy;
  EXPECT_LT(e_strong, e_weak);  // more attraction, lower energy
}

}  // namespace
}  // namespace exa::apps::nuccor
