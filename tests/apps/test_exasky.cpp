#include "apps/exasky/hacc.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace exa::apps::exasky {
namespace {

TEST(ExaskyParticles, UniformBoxInBounds) {
  support::Rng rng(1);
  const auto parts = make_uniform_box(500, rng);
  ASSERT_EQ(parts.size(), 500u);
  for (const auto& p : parts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, 1.0);
  }
}

TEST(ExaskyShortRange, MomentumConserved) {
  support::Rng rng(2);
  const auto parts = make_uniform_box(200, rng);
  std::vector<std::array<double, 3>> force;
  short_range_direct(parts, 0.2, force);
  double fx = 0.0, fy = 0.0, fz = 0.0;
  for (const auto& f : force) {
    fx += f[0];
    fy += f[1];
    fz += f[2];
  }
  EXPECT_NEAR(fx, 0.0, 1e-10);
  EXPECT_NEAR(fy, 0.0, 1e-10);
  EXPECT_NEAR(fz, 0.0, 1e-10);
}

TEST(ExaskyShortRange, TwoBodyAttraction) {
  std::vector<Particle> pair(2);
  pair[0] = {0.4, 0.5, 0.5};
  pair[1] = {0.6, 0.5, 0.5};
  std::vector<std::array<double, 3>> force;
  short_range_direct(pair, 0.3, force);
  EXPECT_GT(force[0][0], 0.0);  // pulled toward +x
  EXPECT_LT(force[1][0], 0.0);
  EXPECT_NEAR(force[0][1], 0.0, 1e-14);
}

TEST(ExaskyShortRange, PeriodicMinimumImage) {
  // Particles near opposite faces are actually close through the boundary.
  std::vector<Particle> pair(2);
  pair[0] = {0.02, 0.5, 0.5};
  pair[1] = {0.98, 0.5, 0.5};
  std::vector<std::array<double, 3>> force;
  short_range_direct(pair, 0.2, force);
  // Separation through the boundary is 0.04: strong attraction, with
  // particle 0 pulled toward -x (across the face).
  EXPECT_LT(force[0][0], 0.0);
  EXPECT_GT(force[1][0], 0.0);
  EXPECT_GT(std::fabs(force[0][0]), 1.0);
}

TEST(ExaskyShortRange, CellListMatchesDirect) {
  support::Rng rng(3);
  const auto parts = make_uniform_box(300, rng);
  std::vector<std::array<double, 3>> direct, cells;
  short_range_direct(parts, 0.15, direct);
  short_range_cells(parts, 0.15, cells);
  ASSERT_EQ(direct.size(), cells.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      ASSERT_NEAR(direct[i][d], cells[i][d], 1e-9)
          << "particle " << i << " component " << d;
    }
  }
}

TEST(ExaskyPm, DepositConservesMass) {
  support::Rng rng(4);
  const auto parts = make_uniform_box(400, rng);
  const auto rho = cic_deposit(parts, 16);
  double total = 0.0;
  for (const double v : rho) total += v;
  EXPECT_NEAR(total, 400.0, 1e-9);
}

TEST(ExaskyPm, LongRangeMomentumConserved) {
  support::Rng rng(5);
  const auto parts = make_uniform_box(200, rng);
  std::vector<std::array<double, 3>> force;
  pm_long_range(parts, 16, force);
  double fx = 0.0, fy = 0.0, fz = 0.0;
  for (const auto& f : force) {
    fx += f[0];
    fy += f[1];
    fz += f[2];
  }
  // CIC deposit/interp symmetry: total momentum change ~ 0.
  EXPECT_NEAR(fx, 0.0, 1e-8);
  EXPECT_NEAR(fy, 0.0, 1e-8);
  EXPECT_NEAR(fz, 0.0, 1e-8);
}

TEST(ExaskyPm, UniformFieldExertsNoForce) {
  // A perfectly uniform lattice of particles: k=0 mode only, zero force.
  std::vector<Particle> parts;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      for (int k = 0; k < 8; ++k) {
        parts.push_back(Particle{(i + 0.5) / 8.0, (j + 0.5) / 8.0,
                                 (k + 0.5) / 8.0});
      }
    }
  }
  std::vector<std::array<double, 3>> force;
  pm_long_range(parts, 8, force);
  for (const auto& f : force) {
    EXPECT_NEAR(f[0], 0.0, 1e-8);
    EXPECT_NEAR(f[1], 0.0, 1e-8);
    EXPECT_NEAR(f[2], 0.0, 1e-8);
  }
}

TEST(ExaskyLeapfrog, TimeReversible) {
  // KDK leapfrog is symplectic and exactly time-reversible: run forward,
  // flip velocities, run back — the system returns to its start.
  support::Rng rng(6);
  auto parts = make_uniform_box(64, rng);
  for (auto& p : parts) {
    p.vx = rng.normal(0.0, 0.01);
    p.vy = rng.normal(0.0, 0.01);
    p.vz = rng.normal(0.0, 0.01);
  }
  const auto initial = parts;
  constexpr double kDt = 1e-4;
  constexpr int kSteps = 20;
  for (int s = 0; s < kSteps; ++s) leapfrog_step(parts, 0.2, kDt);
  for (auto& p : parts) {
    p.vx = -p.vx;
    p.vy = -p.vy;
    p.vz = -p.vz;
  }
  for (int s = 0; s < kSteps; ++s) leapfrog_step(parts, 0.2, kDt);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_NEAR(parts[i].x, initial[i].x, 1e-9) << i;
    EXPECT_NEAR(parts[i].y, initial[i].y, 1e-9) << i;
    EXPECT_NEAR(parts[i].z, initial[i].z, 1e-9) << i;
  }
}

TEST(ExaskyLeapfrog, EnergyDriftBounded) {
  support::Rng rng(8);
  auto parts = make_uniform_box(48, rng);
  const double e0 = total_energy(parts, 0.2);
  for (int s = 0; s < 50; ++s) leapfrog_step(parts, 0.2, 5e-5);
  const double e1 = total_energy(parts, 0.2);
  EXPECT_NEAR(e1, e0, 0.05 * std::max(1.0, std::fabs(e0)));
}

TEST(ExaskyLeapfrog, ParticlesStayInBox) {
  support::Rng rng(10);
  auto parts = make_uniform_box(32, rng);
  for (auto& p : parts) p.vx = 5.0;  // fast: forces wrapping
  for (int s = 0; s < 10; ++s) leapfrog_step(parts, 0.15, 0.01);
  for (const auto& p : parts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
  }
}

TEST(ExaskyModel, SixGravityKernels) {
  const StepModel m =
      step_model(arch::machines::frontier(), 128, 5.0e7);
  EXPECT_EQ(m.kernels.size(), 6u);
  EXPECT_GT(m.total_s, 0.0);
  EXPECT_GT(m.fom, 0.0);
}

TEST(ExaskyModel, HydroAddsKernelsAndCost) {
  const StepModel gravity = step_model(arch::machines::frontier(), 128, 5.0e7,
                                       SimKind::kGravityOnly);
  const StepModel hydro =
      step_model(arch::machines::frontier(), 128, 5.0e7, SimKind::kHydro);
  EXPECT_EQ(hydro.kernels.size(), gravity.kernels.size() + 3);
  EXPECT_GT(hydro.total_s, gravity.total_s);
  EXPECT_LT(hydro.fom, gravity.fom);
  // Hydro costs more but not catastrophically (same order of magnitude).
  EXPECT_LT(hydro.total_s, 4.0 * gravity.total_s);
}

TEST(ExaskyModel, ChunkedKernelIsWavefrontSensitive) {
  // §3.4: only one of the six gravity kernels regressed on AMD, due to
  // wavefront 64 vs 32.
  const auto speedups = per_kernel_speedups();
  ASSERT_EQ(speedups.size(), 6u);
  double chunked = 0.0;
  double min_other = 1e9;
  for (const auto& [name, s] : speedups) {
    if (name == "short_range_chunked") chunked = s;
    else min_other = std::min(min_other, s);
  }
  EXPECT_LT(chunked, min_other);  // the odd one out
  EXPECT_GT(min_other, 1.0);      // everything else speeds up
}

TEST(ExaskyModel, FomTargetWeakScaled) {
  // The 8,192-node Frontier run beat the Summit FOM by 4.2x; check the
  // per-device-speedup x scale-out shape lands in a sane band.
  const StepModel summit = step_model(arch::machines::summit(), 4096, 4.0e7);
  const StepModel frontier =
      step_model(arch::machines::frontier(), 8192, 4.0e7);
  const double fom_ratio = frontier.fom / summit.fom;
  EXPECT_GT(fom_ratio, 2.0);
  EXPECT_LT(fom_ratio, 12.0);
}

}  // namespace
}  // namespace exa::apps::exasky
