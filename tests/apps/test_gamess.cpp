#include <gtest/gtest.h>

#include "apps/gamess/fmo.hpp"
#include "apps/gamess/rimp2.hpp"
#include "mathlib/device_blas.hpp"
#include "support/stats.hpp"

namespace exa::apps::gamess {
namespace {

TEST(GamessRimp2, GemmPathMatchesDirect) {
  support::Rng rng(2);
  const Fragment f = make_fragment(4, 8, 24, rng);
  const double via_gemm = rimp2_energy(f);
  const double direct = mp2_energy_direct(f);
  EXPECT_NEAR(via_gemm, direct, 1e-10 * std::abs(direct));
}

TEST(GamessRimp2, CorrelationEnergyIsNegative) {
  support::Rng rng(3);
  const Fragment f = make_fragment(6, 12, 32, rng);
  EXPECT_LT(rimp2_energy(f), 0.0);
}

TEST(GamessRimp2, EnergyScalesWithSystem) {
  support::Rng rng(4);
  const Fragment small = make_fragment(2, 6, 16, rng);
  const Fragment large = make_fragment(8, 6, 16, rng);
  EXPECT_LT(rimp2_energy(large), rimp2_energy(small));  // more pairs
}

TEST(GamessRimp2, TunedLibraryFaster) {
  ml::TuningRegistry::instance().clear();
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const double untuned = simulate_fragment_time(gpu, 40, 160, 700, false);
  const double tuned = simulate_fragment_time(gpu, 40, 160, 700, true);
  EXPECT_LT(tuned, untuned);
  ml::TuningRegistry::instance().clear();
}

TEST(GamessRimp2, Table2Speedup) {
  // Table 2: GAMESS 5x (fragment RI-MP2, MI250X module vs V100).
  ml::TuningRegistry::instance().clear();
  const double v100 = simulate_fragment_time(arch::v100(), 40, 160, 700, true);
  const double gcd =
      simulate_fragment_time(arch::mi250x_gcd(), 40, 160, 700, true);
  const double speedup = v100 / gcd * 2.0;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 8.0);
  ml::TuningRegistry::instance().clear();
}

TEST(GamessFmo, DimerCountLinearInFragments) {
  // Fixed cutoff at constant density -> dimers grow linearly with the
  // fragment count: the linear-scaling premise of FMO.
  support::Rng rng(5);
  std::vector<double> counts;
  std::vector<double> dimers;
  for (const std::size_t n : {200, 400, 800}) {
    const auto sites = make_cluster(n, rng);
    const FmoWorkload w = make_workload(sites, 5.0);
    counts.push_back(static_cast<double>(n));
    dimers.push_back(static_cast<double>(w.dimers));
  }
  const support::LinearFit fit = support::loglog_fit(counts, dimers);
  EXPECT_NEAR(fit.slope, 1.0, 0.25);  // ~linear, NOT quadratic
}

TEST(GamessFmo, CutoffControlsDimers) {
  support::Rng rng(6);
  const auto sites = make_cluster(300, rng);
  const auto few = dimer_list(sites, 3.0);
  const auto many = dimer_list(sites, 6.0);
  EXPECT_LT(few.size(), many.size());
  for (const auto& [i, j] : few) EXPECT_LT(i, j);
}

TEST(GamessFmo, NearIdealStrongScalingTo2kNodes) {
  // §3.1: "nearly ideal linear scaling up to 2K nodes."
  support::Rng rng(7);
  const auto sites = make_cluster(935 * 8, rng);  // big MBE workload
  const FmoWorkload w = make_workload(sites, 5.0);
  const arch::Machine frontier = arch::machines::frontier();
  const double t128 = fmo_iteration_time(frontier, 128, w, 0.5);
  const double t2048 = fmo_iteration_time(frontier, 2048, w, 0.5);
  const double speedup = t128 / t2048;
  const double ideal = 2048.0 / 128.0;
  EXPECT_GT(speedup, 0.75 * ideal);
  EXPECT_LE(speedup, ideal * 1.01);
}

TEST(GamessFmo, WorkloadUnits) {
  FmoWorkload w;
  w.monomers = 10;
  w.dimers = 4;
  EXPECT_DOUBLE_EQ(w.total_units(2.5), 20.0);
}

}  // namespace
}  // namespace exa::apps::gamess
