#include <cmath>

#include <gtest/gtest.h>

#include "apps/lammps/qeq.hpp"
#include "apps/lammps/reaxff.hpp"
#include "apps/lammps/system.hpp"

namespace exa::apps::lammps {
namespace {

struct Fixture {
  System sys;
  NeighborList neigh;
  BondList bonds;
  TorsionParams params;

  explicit Fixture(int cells = 3) {
    support::Rng rng(42);
    sys = make_molecular_crystal(cells, 6, rng);
    neigh = build_neighbor_list(sys, 3.0);
    bonds = build_bond_list(sys, 1.7);
    params.k = 1.0;
    params.pair_cutoff = 3.0;
  }
};

TEST(LammpsSystem, CrystalShape) {
  support::Rng rng(1);
  const System sys = make_molecular_crystal(2, 5, rng);
  EXPECT_EQ(sys.size(), 2u * 2 * 2 * 5);
  EXPECT_EQ(sys.electronegativity.size(), sys.size());
  EXPECT_GT(sys.box, 0.0);
}

TEST(LammpsSystem, NeighborListMatchesBruteForce) {
  support::Rng rng(2);
  const System sys = make_molecular_crystal(2, 6, rng);
  const double cutoff = 2.5;
  const NeighborList list = build_neighbor_list(sys, cutoff);
  // Brute-force count of i<j pairs within cutoff.
  std::size_t expected = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    for (std::size_t j = i + 1; j < sys.size(); ++j) {
      if ((sys.pos[i] - sys.pos[j]).norm2() < cutoff * cutoff) ++expected;
    }
  }
  EXPECT_EQ(list.pairs(), expected);
  // Every listed pair really is within cutoff and i < j.
  for (std::size_t i = 0; i < sys.size(); ++i) {
    for (std::size_t p = list.offsets[i]; p < list.offsets[i + 1]; ++p) {
      const std::size_t j = list.partners[p];
      EXPECT_GT(j, i);
      EXPECT_LT((sys.pos[i] - sys.pos[j]).norm2(), cutoff * cutoff);
    }
  }
}

TEST(LammpsSystem, BondListSymmetric) {
  support::Rng rng(3);
  const System sys = make_molecular_crystal(2, 6, rng);
  const BondList bonds = build_bond_list(sys, 1.7);
  // If j is bonded to i, i is bonded to j.
  for (std::size_t i = 0; i < sys.size(); ++i) {
    for (std::size_t p = bonds.offsets[i]; p < bonds.offsets[i + 1]; ++p) {
      const std::size_t j = bonds.partners[p];
      bool found = false;
      for (std::size_t q = bonds.offsets[j]; q < bonds.offsets[j + 1]; ++q) {
        if (bonds.partners[q] == i) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
  // Chain molecules: interior atoms have 2 bonds.
  EXPECT_GT(bonds.offsets.back(), sys.size());
}

TEST(LammpsTorsion, SingleDihedralForcesSumToZero) {
  const Vec3 r1{0, 0, 0}, r2{1.5, 0, 0}, r3{2.0, 1.4, 0}, r4{3.1, 1.6, 1.0};
  Vec3 f1, f2, f3, f4;
  const double e = torsion_term(r1, r2, r3, r4, 1.3, f1, f2, f3, f4);
  EXPECT_GE(e, 0.0);
  EXPECT_LE(e, 2.6);  // k(1+cos) in [0, 2k]
  const Vec3 total = f1 + f2 + f3 + f4;
  EXPECT_NEAR(total.x, 0.0, 1e-12);
  EXPECT_NEAR(total.y, 0.0, 1e-12);
  EXPECT_NEAR(total.z, 0.0, 1e-12);
}

TEST(LammpsTorsion, GradientMatchesFiniteDifference) {
  const Vec3 r1{0, 0, 0}, r2{1.5, 0, 0}, r3{2.0, 1.4, 0}, r4{3.1, 1.6, 1.0};
  Vec3 f1, f2, f3, f4;
  torsion_term(r1, r2, r3, r4, 1.0, f1, f2, f3, f4);
  // dE/dx of atom 4, finite difference.
  const double h = 1e-6;
  Vec3 d1, d2, d3, d4;
  const double ep =
      torsion_term(r1, r2, r3, Vec3{r4.x + h, r4.y, r4.z}, 1.0, d1, d2, d3, d4);
  const double em =
      torsion_term(r1, r2, r3, Vec3{r4.x - h, r4.y, r4.z}, 1.0, d1, d2, d3, d4);
  const double dEdx = (ep - em) / (2.0 * h);
  EXPECT_NEAR(f4.x, -dEdx, 1e-5);  // force = -gradient
}

TEST(LammpsTorsion, DegenerateGeometryIsSafe) {
  // Collinear atoms: zero cross products — must not NaN.
  const Vec3 r1{0, 0, 0}, r2{1, 0, 0}, r3{2, 0, 0}, r4{3, 0, 0};
  Vec3 f1, f2, f3, f4;
  const double e = torsion_term(r1, r2, r3, r4, 1.0, f1, f2, f3, f4);
  EXPECT_DOUBLE_EQ(e, 0.0);
  EXPECT_DOUBLE_EQ(f1.x, 0.0);
}

TEST(LammpsTorsion, PreprocessedMatchesDivergent) {
  const Fixture f;
  const ForceResult divergent =
      torsion_divergent(f.sys, f.neigh, f.bonds, f.params);
  const auto tuples = torsion_preprocess(f.sys, f.neigh, f.bonds, f.params);
  const ForceResult dense = torsion_dense(f.sys, tuples, f.params);

  EXPECT_EQ(divergent.tuples_evaluated, dense.tuples_evaluated);
  EXPECT_EQ(dense.tuples_evaluated, tuples.size());
  EXPECT_NEAR(divergent.energy, dense.energy, 1e-10 * std::abs(dense.energy));
  ASSERT_EQ(divergent.force.size(), dense.force.size());
  for (std::size_t i = 0; i < dense.force.size(); ++i) {
    EXPECT_NEAR(divergent.force[i].x, dense.force[i].x, 1e-10);
    EXPECT_NEAR(divergent.force[i].y, dense.force[i].y, 1e-10);
    EXPECT_NEAR(divergent.force[i].z, dense.force[i].z, 1e-10);
  }
}

TEST(LammpsTorsion, MostTuplesPruned) {
  // The divergence premise: surviving tuples are a small fraction of the
  // cutoff checks performed.
  const Fixture f;
  const ForceResult r = torsion_divergent(f.sys, f.neigh, f.bonds, f.params);
  EXPECT_GT(r.tuples_considered, 5 * r.tuples_evaluated);
  EXPECT_GT(r.tuples_evaluated, 0u);
}

TEST(LammpsTorsion, TotalForceConserved) {
  const Fixture f;
  const ForceResult r = torsion_divergent(f.sys, f.neigh, f.bonds, f.params);
  Vec3 total{};
  for (const auto& fo : r.force) total += fo;
  EXPECT_NEAR(total.x, 0.0, 1e-9);
  EXPECT_NEAR(total.y, 0.0, 1e-9);
  EXPECT_NEAR(total.z, 0.0, 1e-9);
}

/// Scales functional-run statistics up to a production HNS-crystal size
/// (same per-atom ratios, device-filling atom count).
TorsionStats production_scale(TorsionStats stats) {
  constexpr std::size_t kAtoms = 2'000'000;
  const double scale =
      static_cast<double>(kAtoms) / static_cast<double>(stats.atoms);
  stats.surviving_tuples =
      static_cast<std::uint64_t>(stats.surviving_tuples * scale);
  stats.atoms = kAtoms;
  return stats;
}

TEST(LammpsTorsion, PreprocessingSpeedsUpSimulatedTime) {
  const Fixture f;
  const TorsionStats stats = production_scale(
      measure_stats(f.sys, f.neigh, f.bonds, f.params));
  const TorsionTimings t =
      simulate_torsion(arch::mi250x_gcd(), stats, /*compiler_spill_fix=*/true);
  EXPECT_GT(t.speedup(), 1.5);  // part of the §3.10 ">50% speedup"
}

TEST(LammpsTorsion, PreprocessingNotWorthItForTinySystems) {
  // At launch-latency-dominated sizes the extra kernel costs more than the
  // divergence it removes — the optimization is a large-scale one.
  const Fixture f;
  const TorsionStats stats = measure_stats(f.sys, f.neigh, f.bonds, f.params);
  const TorsionTimings t =
      simulate_torsion(arch::mi250x_gcd(), stats, true);
  EXPECT_LT(t.speedup(), 1.5);
}

TEST(LammpsTorsion, CompilerSpillFixHelps) {
  const Fixture f;
  const TorsionStats stats = production_scale(
      measure_stats(f.sys, f.neigh, f.bonds, f.params));
  const arch::GpuArch v100 = arch::v100();  // 255-reg limit: spills at 280
  const TorsionTimings buggy = simulate_torsion(v100, stats, false);
  const TorsionTimings fixed = simulate_torsion(v100, stats, true);
  EXPECT_LT(fixed.divergent_s, buggy.divergent_s);
}

// --- angular term -----------------------------------------------------------

TEST(LammpsAngle, ForcesSumToZero) {
  const Vec3 ri{1.2, 0.1, 0.0}, rj{0.0, 0.0, 0.0}, rk{-0.3, 1.1, 0.4};
  Vec3 fi, fj, fk;
  const double e = angle_term(ri, rj, rk, 1.5, -0.5, fi, fj, fk);
  EXPECT_GE(e, 0.0);
  const Vec3 total = fi + fj + fk;
  EXPECT_NEAR(total.x, 0.0, 1e-12);
  EXPECT_NEAR(total.y, 0.0, 1e-12);
  EXPECT_NEAR(total.z, 0.0, 1e-12);
}

TEST(LammpsAngle, GradientMatchesFiniteDifference) {
  const Vec3 ri{1.2, 0.1, 0.0}, rj{0.0, 0.0, 0.0}, rk{-0.3, 1.1, 0.4};
  Vec3 fi, fj, fk;
  angle_term(ri, rj, rk, 1.0, -0.5, fi, fj, fk);
  const double h = 1e-6;
  Vec3 d1, d2, d3;
  const double ep = angle_term(Vec3{ri.x + h, ri.y, ri.z}, rj, rk, 1.0, -0.5,
                               d1, d2, d3);
  const double em = angle_term(Vec3{ri.x - h, ri.y, ri.z}, rj, rk, 1.0, -0.5,
                               d1, d2, d3);
  EXPECT_NEAR(fi.x, -(ep - em) / (2.0 * h), 1e-5);
}

TEST(LammpsAngle, EquilibriumAngleHasZeroEnergy) {
  // 120-degree geometry with cos_theta0 = -0.5 exactly.
  const Vec3 rj{0.0, 0.0, 0.0};
  const Vec3 ri{1.0, 0.0, 0.0};
  const Vec3 rk{-0.5, std::sqrt(3.0) / 2.0, 0.0};
  Vec3 fi, fj, fk;
  const double e = angle_term(ri, rj, rk, 2.0, -0.5, fi, fj, fk);
  EXPECT_NEAR(e, 0.0, 1e-12);
  EXPECT_NEAR(fi.x, 0.0, 1e-9);
}

TEST(LammpsAngle, PreprocessedMatchesDivergent) {
  const Fixture f;
  const AngleParams params{1.0, -0.5, 3.0};
  const ForceResult divergent = angle_divergent(f.sys, f.bonds, params);
  const auto tuples = angle_preprocess(f.sys, f.bonds, params);
  const ForceResult dense = angle_dense(f.sys, tuples, params);
  EXPECT_EQ(divergent.tuples_evaluated, dense.tuples_evaluated);
  EXPECT_GT(dense.tuples_evaluated, 0u);
  EXPECT_NEAR(divergent.energy, dense.energy, 1e-10);
  for (std::size_t i = 0; i < dense.force.size(); ++i) {
    ASSERT_NEAR(divergent.force[i].x, dense.force[i].x, 1e-10);
    ASSERT_NEAR(divergent.force[i].y, dense.force[i].y, 1e-10);
    ASSERT_NEAR(divergent.force[i].z, dense.force[i].z, 1e-10);
  }
}

// --- QEq ------------------------------------------------------------------

struct QeqFixture {
  System sys;
  QeqMatrix h;

  QeqFixture() {
    support::Rng rng(7);
    sys = make_molecular_crystal(3, 5, rng);
    const NeighborList neigh = build_neighbor_list(sys, 3.0);
    h = build_qeq_matrix(sys, neigh, 3.0);
  }
};

TEST(LammpsQeq, MatrixIsSymmetricAndDominant) {
  const QeqFixture f;
  EXPECT_EQ(f.h.n, f.sys.size());
  // Diagonal dominance per row.
  for (std::size_t r = 0; r < f.h.n; ++r) {
    double diag = 0.0;
    double off = 0.0;
    for (std::size_t p = f.h.row_ptr[r]; p < f.h.row_ptr[r + 1]; ++p) {
      if (f.h.col[p] == r) diag = f.h.val[p];
      else off += std::fabs(f.h.val[p]);
    }
    EXPECT_GT(diag, off);
  }
}

TEST(LammpsQeq, CgSolvesSystem) {
  const QeqFixture f;
  std::vector<double> b(f.h.n, 1.0);
  std::vector<double> x(f.h.n, 0.0);
  const CgStats stats = cg_solve(f.h, b, x, 1e-12, 1000);
  EXPECT_TRUE(stats.converged);
  // Residual check.
  std::vector<double> ax(f.h.n);
  spmv(f.h, x, ax);
  double rmax = 0.0;
  for (std::size_t i = 0; i < f.h.n; ++i) {
    rmax = std::max(rmax, std::fabs(ax[i] - b[i]));
  }
  EXPECT_LT(rmax, 1e-8);
}

TEST(LammpsQeq, FusedMatchesSplitCharges) {
  const QeqFixture f;
  const QeqResult split = equilibrate(f.sys, f.h, /*fused=*/false);
  const QeqResult fused = equilibrate(f.sys, f.h, /*fused=*/true);
  ASSERT_TRUE(split.stats.converged);
  ASSERT_TRUE(fused.stats.converged);
  ASSERT_EQ(split.charges.size(), fused.charges.size());
  for (std::size_t i = 0; i < split.charges.size(); ++i) {
    EXPECT_NEAR(split.charges[i], fused.charges[i], 1e-7);
  }
}

TEST(LammpsQeq, ChargesSumToZero) {
  const QeqFixture f;
  const QeqResult r = equilibrate(f.sys, f.h, true);
  double total = 0.0;
  for (const double q : r.charges) total += q;
  EXPECT_NEAR(total, 0.0, 1e-9);
}

TEST(LammpsQeq, FusedHalvesMatrixReadsAndAllreduces) {
  // The Aktulga optimization the Kokkos backend was missing (§3.10.2).
  const QeqFixture f;
  const QeqResult split = equilibrate(f.sys, f.h, false);
  const QeqResult fused = equilibrate(f.sys, f.h, true);
  EXPECT_LT(fused.stats.matrix_reads, 0.62 * split.stats.matrix_reads);
  EXPECT_LT(fused.stats.allreduces, 0.62 * split.stats.allreduces);
  EXPECT_LE(fused.stats.iterations, split.stats.iterations);
}

TEST(LammpsQeq, SimulatedTimeFavorsFused) {
  const QeqFixture f;
  const QeqResult split = equilibrate(f.sys, f.h, false);
  const QeqResult fused = equilibrate(f.sys, f.h, true);
  const arch::Machine frontier = arch::machines::frontier();
  const double t_split =
      simulate_qeq_time(frontier, 200000, 5200000, split.stats, 1, 4096);
  const double t_fused =
      simulate_qeq_time(frontier, 200000, 5200000, fused.stats, 2, 4096);
  EXPECT_LT(t_fused, 0.75 * t_split);
}

}  // namespace
}  // namespace exa::apps::lammps
