#include "apps/coast/apsp.hpp"

#include <gtest/gtest.h>

namespace exa::apps::coast {
namespace {

TEST(CoastGraph, KnowledgeGraphShape) {
  support::Rng rng(11);
  const DistMatrix m = make_knowledge_graph(64, 6.0, rng);
  EXPECT_EQ(m.n, 64u);
  for (std::size_t i = 0; i < m.n; ++i) {
    EXPECT_EQ(m.at(i, i), 0.0f);
    for (std::size_t j = 0; j < m.n; ++j) {
      // Symmetric generator.
      EXPECT_EQ(m.at(i, j), m.at(j, i));
      if (i != j && m.at(i, j) != kInf) EXPECT_GT(m.at(i, j), 0.0f);
    }
  }
}

TEST(CoastApsp, NaiveHandlesTinyKnownGraph) {
  DistMatrix m;
  m.n = 3;
  m.d = {0.0f, 1.0f, 10.0f,
         1.0f, 0.0f, 2.0f,
         10.0f, 2.0f, 0.0f};
  floyd_warshall_naive(m);
  EXPECT_FLOAT_EQ(m.at(0, 2), 3.0f);  // via vertex 1
  EXPECT_FLOAT_EQ(m.at(2, 0), 3.0f);
}

TEST(CoastApsp, TriangleInequalityHoldsAfterSolve) {
  support::Rng rng(5);
  DistMatrix m = make_knowledge_graph(48, 4.0, rng);
  floyd_warshall_naive(m);
  for (std::size_t i = 0; i < m.n; ++i) {
    for (std::size_t j = 0; j < m.n; ++j) {
      for (std::size_t k = 0; k < m.n; ++k) {
        EXPECT_LE(m.at(i, j), m.at(i, k) + m.at(k, j) + 1e-4f);
      }
    }
  }
}

// The core correctness property: blocked == naive for various tiles.
class BlockedFw : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockedFw, MatchesNaive) {
  const std::size_t tile = GetParam();
  support::Rng rng(77);
  DistMatrix blocked = make_knowledge_graph(64, 5.0, rng);
  DistMatrix naive = blocked;
  floyd_warshall_blocked(blocked, tile);
  floyd_warshall_naive(naive);
  for (std::size_t i = 0; i < naive.n * naive.n; ++i) {
    ASSERT_FLOAT_EQ(blocked.d[i], naive.d[i]) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Tiles, BlockedFw, ::testing::Values(4, 8, 16, 32, 64));

TEST(CoastApsp, BlockedRejectsBadTile) {
  support::Rng rng(1);
  DistMatrix m = make_knowledge_graph(64, 4.0, rng);
  EXPECT_THROW(floyd_warshall_blocked(m, 7), support::Error);
}

TEST(CoastApsp, DisconnectedStaysInfinite) {
  DistMatrix m;
  m.n = 4;
  m.d.assign(16, kInf);
  for (std::size_t i = 0; i < 4; ++i) m.at(i, i) = 0.0f;
  m.at(0, 1) = m.at(1, 0) = 1.0f;  // component {0,1}; {2,3} isolated
  m.at(2, 3) = m.at(3, 2) = 1.0f;
  floyd_warshall_naive(m);
  EXPECT_EQ(m.at(0, 2), kInf);
  EXPECT_FLOAT_EQ(m.at(0, 1), 1.0f);
}

TEST(CoastPaths, DistancesMatchPlainSolve) {
  support::Rng rng(21);
  DistMatrix with_paths = make_knowledge_graph(48, 4.0, rng);
  DistMatrix plain = with_paths;
  std::vector<std::size_t> next;
  floyd_warshall_with_paths(with_paths, next);
  floyd_warshall_naive(plain);
  for (std::size_t i = 0; i < plain.n * plain.n; ++i) {
    ASSERT_FLOAT_EQ(with_paths.d[i], plain.d[i]);
  }
}

TEST(CoastPaths, ExtractedPathsAreValidAndOptimal) {
  support::Rng rng(23);
  const DistMatrix original = make_knowledge_graph(40, 4.0, rng);
  DistMatrix solved = original;
  std::vector<std::size_t> next;
  floyd_warshall_with_paths(solved, next);

  for (std::size_t i = 0; i < solved.n; i += 7) {
    for (std::size_t j = 0; j < solved.n; j += 5) {
      const auto path = extract_path(next, solved.n, i, j);
      if (solved.at(i, j) == kInf) {
        EXPECT_TRUE(path.empty());
        continue;
      }
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), i);
      EXPECT_EQ(path.back(), j);
      // Sum of edge weights along the path equals the shortest distance.
      float length = 0.0f;
      for (std::size_t s = 1; s < path.size(); ++s) {
        const float edge = original.at(path[s - 1], path[s]);
        ASSERT_NE(edge, kInf) << "path uses a non-edge";
        length += edge;
      }
      EXPECT_NEAR(length, solved.at(i, j), 1e-3f);
    }
  }
}

TEST(CoastPaths, TrivialAndUnreachableCases) {
  DistMatrix m;
  m.n = 3;
  m.d = {0.0f, 1.0f, kInf, 1.0f, 0.0f, kInf, kInf, kInf, 0.0f};
  std::vector<std::size_t> next;
  floyd_warshall_with_paths(m, next);
  EXPECT_EQ(extract_path(next, 3, 1, 1), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(extract_path(next, 3, 0, 2).empty());
  EXPECT_EQ(extract_path(next, 3, 0, 1), (std::vector<std::size_t>{0, 1}));
}

// Distributed solve correctness across rank-grid shapes.
class DistributedApspTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DistributedApspTest, MatchesNaive) {
  const std::size_t grid = GetParam();
  support::Rng rng(91);
  DistMatrix m = make_knowledge_graph(64, 5.0, rng);
  DistMatrix naive = m;
  floyd_warshall_naive(naive);

  DistributedApsp dist(m, grid);
  dist.solve();
  const DistMatrix got = dist.gather();
  for (std::size_t i = 0; i < m.n * m.n; ++i) {
    ASSERT_FLOAT_EQ(got.d[i], naive.d[i]) << "grid " << grid;
  }
  EXPECT_EQ(dist.panels_processed(), static_cast<int>(grid));
}

INSTANTIATE_TEST_SUITE_P(Grids, DistributedApspTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(CoastDistributed, BroadcastVolumeMatchesFormula) {
  support::Rng rng(93);
  const DistMatrix m = make_knowledge_graph(64, 4.0, rng);
  const std::size_t grid = 4;
  DistributedApsp dist(m, grid);
  dist.solve();
  // Per panel: pivot tile to 2(g-1) ranks plus 2(g-1)^2 row/column tiles.
  const double tile_bytes = 16.0 * 16.0 * 4.0;
  const double expected =
      static_cast<double>(grid) *
      (2.0 * (grid - 1) + 2.0 * (grid - 1) * (grid - 1)) * tile_bytes;
  EXPECT_DOUBLE_EQ(dist.bytes_broadcast(), expected);
}

TEST(CoastDistributed, SingleRankNeedsNoPivotNeighbors) {
  support::Rng rng(95);
  const DistMatrix m = make_knowledge_graph(16, 4.0, rng);
  DistributedApsp dist(m, 1);
  dist.solve();
  EXPECT_DOUBLE_EQ(dist.bytes_broadcast(), 0.0);
}

TEST(CoastAutotune, SpaceIsNontrivial) {
  EXPECT_GT(tuning_space().size(), 8u);
}

TEST(CoastAutotune, PicksRegisterBlockedConfig) {
  const TuneResult r = autotune(arch::mi250x_gcd(), 16384);
  EXPECT_GE(r.best.unroll, 2);  // register blocking always wins
  EXPECT_GT(r.achieved_flops, 0.0);
  EXPECT_EQ(r.trials.size(), tuning_space().size());
  // Best really is the minimum of the trials.
  for (const auto& [cfg, t] : r.trials) EXPECT_GE(t, r.best_seconds);
}

TEST(CoastAutotune, V100ToMi250xKernelSpeedup) {
  // §3.9: 5.6 TF on one V100 -> 30.6 TF on one MI250X (two GCDs).
  const TuneResult v100 = autotune(arch::v100(), 16384);
  const TuneResult gcd = autotune(arch::mi250x_gcd(), 16384);
  const double v100_tf = v100.achieved_flops / 1e12;
  const double module_tf = 2.0 * gcd.achieved_flops / 1e12;
  EXPECT_NEAR(v100_tf, 5.6, 2.0);
  EXPECT_NEAR(module_tf, 30.6, 9.0);
  const double speedup = module_tf / v100_tf;
  EXPECT_GT(speedup, 3.5);
  EXPECT_LT(speedup, 8.0);
}

TEST(CoastScale, GordonBellShape) {
  // Summit 2020: ~136 PF; Frontier 2022: ~1 EF -> >7x.
  const ScaleResult summit =
      gordon_bell_run(arch::machines::summit(), 4 << 20);
  const ScaleResult frontier =
      gordon_bell_run(arch::machines::frontier(), 8 << 20);
  EXPECT_GT(summit.sustained_flops, 3e16);
  EXPECT_GT(frontier.sustained_flops, 3e17);
  EXPECT_GT(frontier.sustained_flops / summit.sustained_flops, 4.0);
}

TEST(CoastScale, TooSmallProblemRejected) {
  EXPECT_THROW((void)gordon_bell_run(arch::machines::frontier(), 1 << 12),
               support::Error);
}

TEST(CoastProfile, MinPlusIsNonFma) {
  const sim::KernelProfile p =
      minplus_profile(arch::mi250x_gcd(), TileConfig{64, 4}, 4096);
  ASSERT_EQ(p.work.size(), 1u);
  EXPECT_FALSE(p.work[0].fma);
}

}  // namespace
}  // namespace exa::apps::coast
