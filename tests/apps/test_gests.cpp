#include "apps/gests/psdns.hpp"

#include <gtest/gtest.h>

#include "mathlib/dense.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace exa::apps::gests {
namespace {

std::vector<zcomplex> random_field(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<zcomplex> f(n * n * n);
  for (auto& v : f) v = {rng.normal(), rng.normal()};
  return f;
}

// Slab-decomposed distributed FFT == single-brick FFT, over rank counts.
class SlabFft : public ::testing::TestWithParam<int> {};

TEST_P(SlabFft, MatchesMonolithic) {
  const std::size_t n = 16;
  const int ranks = GetParam();
  const auto field = random_field(n, 100 + static_cast<std::uint64_t>(ranks));

  SlabField dist(field, n, ranks);
  dist.fft3d(false);
  const auto got = dist.gather();

  auto ref = field;
  ml::fft3d(ref, n, n, n, false);
  EXPECT_LT(ml::rel_error<zcomplex>(got, ref), 1e-12);
  EXPECT_EQ(dist.transposes(), 1);  // one communication cycle (§3.3)
}

INSTANTIATE_TEST_SUITE_P(Ranks, SlabFft, ::testing::Values(1, 2, 4, 8, 16));

TEST(SlabFftRoundTrip, ForwardInverseIdentity) {
  const std::size_t n = 16;
  const auto field = random_field(n, 7);
  SlabField dist(field, n, 4);
  dist.fft3d(false);
  dist.fft3d(true);
  EXPECT_LT(ml::rel_error<zcomplex>(dist.gather(), field), 1e-12);
  EXPECT_EQ(dist.transposes(), 2);
}

TEST(SlabFft, RankLimitEnforced) {
  const std::size_t n = 8;
  // 16 ranks cannot split 8 planes.
  EXPECT_THROW(SlabField(random_field(n, 1), n, 16), support::Error);
}

class PencilFft : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PencilFft, MatchesMonolithic) {
  const std::size_t n = 16;
  const auto [rows, cols] = GetParam();
  const auto field = random_field(n, 200 + static_cast<std::uint64_t>(rows * 100 + cols));

  PencilField dist(field, n, rows, cols);
  dist.fft3d(false);
  const auto got = dist.gather();

  auto ref = field;
  ml::fft3d(ref, n, n, n, false);
  EXPECT_LT(ml::rel_error<zcomplex>(got, ref), 1e-12);
  EXPECT_EQ(dist.transposes(), 2);  // one more cycle than slabs (§3.3)
}

INSTANTIATE_TEST_SUITE_P(Grids, PencilFft,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(2, 2),
                                           std::make_pair(4, 2),
                                           std::make_pair(2, 8),
                                           std::make_pair(4, 4)));

TEST(PencilFftRoundTrip, ForwardInverseIdentity) {
  const std::size_t n = 16;
  const auto field = random_field(n, 17);
  PencilField dist(field, n, 2, 4);
  dist.fft3d(false);
  dist.fft3d(true);
  EXPECT_LT(ml::rel_error<zcomplex>(dist.gather(), field), 1e-12);
}

TEST(PencilFft, SupportsMoreRanksThanSlabs) {
  // N=16: slabs cap at 16 ranks; pencils admit 16x16.
  const std::size_t n = 16;
  const auto field = random_field(n, 3);
  PencilField dist(field, n, 16, 16);  // 256 ranks
  dist.fft3d(false);
  auto ref = field;
  ml::fft3d(ref, n, n, n, false);
  EXPECT_LT(ml::rel_error<zcomplex>(dist.gather(), ref), 1e-12);
}

TEST(SlabFft, TransposeVolumeMatchesAnalyticFormula) {
  // The functional implementation moves exactly what the comm model
  // charges: N^3 * 16 B * (P-1)/P per transpose.
  const std::size_t n = 16;
  for (const int ranks : {2, 4, 8}) {
    SlabField dist(random_field(n, 31), n, ranks);
    dist.fft3d(false);
    const double expected = static_cast<double>(n * n * n) * 16.0 *
                            (ranks - 1) / static_cast<double>(ranks);
    EXPECT_DOUBLE_EQ(dist.bytes_transposed(), expected) << ranks;
  }
}

TEST(SlabFft, SingleRankMovesNothing) {
  const std::size_t n = 8;
  SlabField dist(random_field(n, 32), n, 1);
  dist.fft3d(false);
  EXPECT_DOUBLE_EQ(dist.bytes_transposed(), 0.0);
}

// --- timing model ----------------------------------------------------------

TEST(GestsModel, RankLimits) {
  const arch::Machine frontier = arch::machines::frontier();
  // Slabs: N ranks max -> N/8 nodes on Frontier.
  EXPECT_EQ(max_nodes(frontier, 32768, Decomposition::kSlabs), 4096);
  EXPECT_EQ(max_nodes(frontier, 1024, Decomposition::kSlabs), 128);
  // Pencils cap at the machine size for realistic N.
  EXPECT_EQ(max_nodes(frontier, 32768, Decomposition::kPencils),
            frontier.node_count);
}

TEST(GestsModel, SlabsBeatPencilsWhereBothFit) {
  // "The Slabs version is more efficient because it requires one fewer
  // MPI communication cycle" (§3.3).
  const arch::Machine frontier = arch::machines::frontier();
  PsdnsConfig slabs;
  slabs.n = 8192;
  slabs.decomp = Decomposition::kSlabs;
  PsdnsConfig pencils = slabs;
  pencils.decomp = Decomposition::kPencils;
  const int nodes = 512;  // 4096 ranks <= N: both run
  const StepTime ts = step_time(frontier, nodes, slabs);
  const StepTime tp = step_time(frontier, nodes, pencils);
  EXPECT_LT(ts.transpose_s, tp.transpose_s);
  EXPECT_LT(ts.total(), tp.total());
}

TEST(GestsModel, SlabRankLimitThrows) {
  const arch::Machine frontier = arch::machines::frontier();
  PsdnsConfig cfg;
  cfg.n = 1024;
  cfg.decomp = Decomposition::kSlabs;
  EXPECT_THROW((void)step_time(frontier, 256, cfg), support::Error);  // 2048 ranks > N
}

TEST(GestsModel, FomImprovesSummitToFrontier) {
  // The CAAR result: >5x FOM going from 18432^3 on Summit to 32768^3 on
  // 4096 Frontier nodes. (Power-of-two grid stands in for 18432.)
  const arch::Machine summit = arch::machines::summit();
  const arch::Machine frontier = arch::machines::frontier();

  PsdnsConfig on_summit;
  on_summit.n = 16384;
  on_summit.decomp = Decomposition::kSlabs;
  const int summit_nodes = std::min(4608, max_nodes(summit, on_summit.n,
                                                    Decomposition::kSlabs));
  const StepTime t_summit = step_time(summit, summit_nodes, on_summit);

  PsdnsConfig on_frontier;
  on_frontier.n = 32768;
  on_frontier.decomp = Decomposition::kSlabs;
  const StepTime t_frontier = step_time(frontier, 4096, on_frontier);

  const double fom_ratio = t_frontier.fom / t_summit.fom;
  EXPECT_GT(fom_ratio, 3.0);
  EXPECT_LT(fom_ratio, 12.0);
}

TEST(GestsModel, TransposeDominatesAtScale) {
  // Pseudo-spectral DNS at scale is transpose(communication)-heavy.
  const arch::Machine frontier = arch::machines::frontier();
  PsdnsConfig cfg;
  cfg.n = 32768;
  cfg.decomp = Decomposition::kSlabs;
  const StepTime t = step_time(frontier, 4096, cfg);
  EXPECT_GT(t.transpose_s, 0.2 * t.total());
}

}  // namespace
}  // namespace exa::apps::gests
