#include "apps/e3sm/crm.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "apps/e3sm/dycore.hpp"
#include "hip/hip_runtime.hpp"

namespace exa::apps::e3sm {
namespace {

TEST(E3smPipeline, HasBigAndSmallKernels) {
  const auto pipeline = physics_pipeline(1 << 16);
  EXPECT_GT(pipeline.size(), 10u);
  int heavy = 0;
  for (const auto& k : pipeline) {
    if (k.registers_per_thread > 255) ++heavy;
  }
  EXPECT_GE(heavy, 2);  // the fission candidates
}

TEST(E3smFuse, AddsWorkAndSavesTraffic) {
  const auto pipeline = physics_pipeline(1 << 16);
  // Fuse two small kernels (indices 2, 3).
  const std::vector<sim::KernelProfile> pair = {pipeline[2], pipeline[3]};
  const sim::KernelProfile fused = fuse(pair);
  EXPECT_DOUBLE_EQ(fused.total_flops(),
                   pipeline[2].total_flops() + pipeline[3].total_flops());
  // Intermediate round-trips removed: fused traffic < sum of parts.
  EXPECT_LT(fused.total_bytes(),
            pipeline[2].total_bytes() + pipeline[3].total_bytes());
  // Register pressure between max and sum.
  EXPECT_GE(fused.registers_per_thread,
            std::max(pipeline[2].registers_per_thread,
                     pipeline[3].registers_per_thread));
  EXPECT_LE(fused.registers_per_thread,
            pipeline[2].registers_per_thread + pipeline[3].registers_per_thread);
}

TEST(E3smFission, DividesWorkReducesRegisters) {
  const auto pipeline = physics_pipeline(1 << 16);
  const sim::KernelProfile& big = pipeline[0];  // dycore, 320 regs
  const auto parts = fission(big, 4);
  ASSERT_EQ(parts.size(), 4u);
  double flops = 0.0;
  for (const auto& p : parts) {
    flops += p.total_flops();
    EXPECT_LT(p.registers_per_thread, big.registers_per_thread);
    // Stage boundaries add traffic.
  }
  EXPECT_NEAR(flops, big.total_flops(), 1e-6);
}

TEST(E3smOptimize, RemovesSpillsOnV100) {
  const arch::GpuArch v100 = arch::v100();
  const auto optimized = optimize_pipeline(v100, physics_pipeline(1 << 16));
  for (const auto& k : optimized) {
    EXPECT_LE(k.registers_per_thread, v100.max_registers_per_thread) << k.name;
  }
  // Fusion happened: fewer kernels than the original minus the fissioned
  // extras would suggest.
  EXPECT_LT(optimized.size(), physics_pipeline(1 << 16).size() + 4);
}

TEST(E3smOptimize, FusesSmallKernels) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const auto original = physics_pipeline(1 << 16);
  const auto optimized = optimize_pipeline(gpu, original);
  // The dozen small kernels collapse into a handful of fused ones.
  EXPECT_LT(optimized.size(), original.size());
}

TEST(E3smRun, AsyncLaunchBeatsSyncForSmallKernels) {
  // §3.5: launching all kernels asynchronously in the same stream overlaps
  // launch overheads with kernel runtimes — decisive when strong scaling
  // shrinks the per-kernel work.
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const std::size_t small_columns = 1 << 10;  // strong-scaled workload
  const auto pipeline = physics_pipeline(small_columns);
  const auto launches = pipeline_launches(small_columns);
  const double sync = run_pipeline(gpu, pipeline, launches,
                                   LaunchMode::kSyncEachKernel,
                                   sim::AllocMode::kDirect);
  const double async = run_pipeline(gpu, pipeline, launches,
                                    LaunchMode::kAsyncSameStream,
                                    sim::AllocMode::kDirect);
  EXPECT_LT(async, sync);
  EXPECT_GT(sync / async, 1.2);
}

TEST(E3smRun, AsyncAdvantageShrinksWithBigWorkload) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const std::size_t big_columns = 1 << 20;
  const auto pipeline = physics_pipeline(big_columns);
  const auto launches = pipeline_launches(big_columns);
  const double sync = run_pipeline(gpu, pipeline, launches,
                                   LaunchMode::kSyncEachKernel,
                                   sim::AllocMode::kDirect);
  const double async = run_pipeline(gpu, pipeline, launches,
                                    LaunchMode::kAsyncSameStream,
                                    sim::AllocMode::kDirect);
  // Still better, but by a smaller factor than the strong-scaled case.
  EXPECT_LT(async, sync);
  EXPECT_LT(sync / async, 1.2);
}

TEST(E3smRun, PoolAllocatorBeatsDirectForTemporaries) {
  // §3.5: the YAKL pool makes "frequent allocation and deallocation
  // patterns ... non-blocking and very cheap".
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const std::size_t columns = 1 << 14;
  const auto pipeline = physics_pipeline(columns);
  const auto launches = pipeline_launches(columns);
  constexpr int kTemps = 24;
  const double direct = run_pipeline(gpu, pipeline, launches,
                                     LaunchMode::kAsyncSameStream,
                                     sim::AllocMode::kDirect, kTemps);
  const double pooled = run_pipeline(gpu, pipeline, launches,
                                     LaunchMode::kAsyncSameStream,
                                     sim::AllocMode::kPooled, kTemps);
  EXPECT_LT(pooled, direct);
  EXPECT_GT(direct - pooled, kTemps * gpu.alloc_latency_s * 0.5);
}

TEST(E3smDycore, MassConservedOverManySteps) {
  hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  Dycore dyn(32, 24, 0.2);
  dyn.init_blob();
  const double m0 = dyn.total_mass();
  ASSERT_GT(m0, 0.0);
  for (int step = 0; step < 50; ++step) dyn.step_split();
  EXPECT_NEAR(dyn.total_mass(), m0, 1e-10 * m0);
}

TEST(E3smDycore, UpwindPreservesPositivity) {
  hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  Dycore dyn(32, 24, 0.2);
  dyn.init_blob();
  for (int step = 0; step < 30; ++step) dyn.step_fused();
  EXPECT_GE(dyn.min_value(), -1e-12);
}

TEST(E3smDycore, FusedMatchesSplitBitwise) {
  // The fusion transform is semantics-preserving: recomputed fluxes use
  // identical expressions, so the states agree exactly.
  hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  Dycore split(24, 16, 0.2);
  Dycore fused(24, 16, 0.2);
  split.init_blob(0.4, 0.6, 0.25);
  fused.init_blob(0.4, 0.6, 0.25);
  for (int step = 0; step < 20; ++step) {
    split.step_split();
    fused.step_fused();
  }
  for (std::size_t i = 0; i < split.nx(); ++i) {
    for (std::size_t k = 0; k < split.nz(); ++k) {
      ASSERT_EQ(split.tracer()(i, k), fused.tracer()(i, k))
          << "(" << i << "," << k << ")";
    }
  }
  EXPECT_EQ(split.kernels_launched_last_step(), 3);
  EXPECT_EQ(fused.kernels_launched_last_step(), 1);
}

TEST(E3smDycore, BlobActuallyMoves) {
  hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  Dycore dyn(32, 24, 0.2);
  dyn.init_blob();
  std::vector<double> before(dyn.nx() * dyn.nz());
  for (std::size_t i = 0; i < dyn.nx(); ++i) {
    for (std::size_t k = 0; k < dyn.nz(); ++k) {
      before[i * dyn.nz() + k] = dyn.tracer()(i, k);
    }
  }
  for (int step = 0; step < 20; ++step) dyn.step_split();
  double change = 0.0;
  for (std::size_t i = 0; i < dyn.nx(); ++i) {
    for (std::size_t k = 0; k < dyn.nz(); ++k) {
      change += std::fabs(dyn.tracer()(i, k) - before[i * dyn.nz() + k]);
    }
  }
  EXPECT_GT(change, 0.1);
}

TEST(E3smDycore, CflGuard) {
  EXPECT_THROW(Dycore(16, 16, 0.9), support::Error);
  EXPECT_THROW(Dycore(2, 16, 0.1), support::Error);
}

TEST(E3smPhysics, SaturationAdjustConservesWater) {
  ColumnState state;
  state.temperature = {290.0, 300.0, 280.0};
  state.vapor = {0.05, 0.001, 0.08};
  state.cloud = {0.0, 0.0, 0.01};
  std::vector<double> total_before(3);
  for (std::size_t i = 0; i < 3; ++i) {
    total_before[i] = state.vapor[i] + state.cloud[i];
  }
  saturation_adjust(state);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(state.vapor[i] + state.cloud[i], total_before[i], 1e-15);
    // Vapor never exceeds saturation after adjustment.
    EXPECT_LE(state.vapor[i], saturation_vapor(state.temperature[i]) + 1e-12);
  }
}

TEST(E3smPhysics, CondensationWarms) {
  ColumnState state;
  state.temperature = {285.0};
  state.vapor = {0.2};  // far supersaturated
  state.cloud = {0.0};
  saturation_adjust(state);
  EXPECT_GT(state.temperature[0], 285.0);
  EXPECT_GT(state.cloud[0], 0.0);
}

TEST(E3smPhysics, SubsaturatedUntouched) {
  ColumnState state;
  state.temperature = {300.0};
  state.vapor = {1e-6};
  state.cloud = {0.0};
  saturation_adjust(state);
  EXPECT_DOUBLE_EQ(state.temperature[0], 300.0);
  EXPECT_DOUBLE_EQ(state.vapor[0], 1e-6);
}

TEST(E3smPhysics, SaturationMonotoneInTemperature) {
  double prev = 0.0;
  for (double t = 250.0; t <= 320.0; t += 5.0) {
    const double s = saturation_vapor(t);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

}  // namespace
}  // namespace exa::apps::e3sm
