#include <gtest/gtest.h>

#include "coe/application.hpp"
#include "coe/readiness.hpp"
#include "coe/registry.hpp"
#include "support/assert.hpp"
#include "support/string_util.hpp"

namespace exa::coe {
namespace {

using support::contains;

Application demo_app() {
  return Application("Demo", "testing", Program::kCaar)
      .set_fom({"widgets per second", "w/s"})
      .set_target_speedup(4.0);
}

TEST(Application, SpeedupFromMeasurements) {
  Application app = demo_app();
  app.add_measurement({"Summit", 2020, 100.0, ""});
  app.add_measurement({"Frontier", 2023, 500.0, ""});
  const auto s = app.speedup("Summit", "Frontier");
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(*s, 5.0);
  EXPECT_TRUE(app.met_target("Summit", "Frontier"));
}

TEST(Application, LowerIsBetterFomInvertsRatio) {
  Application app("T", "d", Program::kOther);
  app.set_fom({"seconds per step", "s", /*higher_is_better=*/false});
  app.set_target_speedup(2.0);
  app.add_measurement({"Summit", 2020, 10.0, ""});
  app.add_measurement({"Frontier", 2023, 2.0, ""});
  const auto s = app.speedup("Summit", "Frontier");
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(*s, 5.0);
}

TEST(Application, MissingMeasurementGivesNullopt) {
  Application app = demo_app();
  app.add_measurement({"Summit", 2020, 100.0, ""});
  EXPECT_FALSE(app.speedup("Summit", "Frontier").has_value());
  EXPECT_FALSE(app.met_target("Summit", "Frontier"));
}

TEST(Application, LatestMeasurementWinsByYear) {
  Application app = demo_app();
  app.add_measurement({"Frontier", 2022, 300.0, "early"});
  app.add_measurement({"Frontier", 2023, 500.0, "tuned"});
  const auto m = app.latest_on("Frontier");
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->value, 500.0);
}

TEST(Application, MotifsDeduplicated) {
  Application app = demo_app();
  app.add_motif(Motif::kLibraryTuning).add_motif(Motif::kLibraryTuning);
  EXPECT_EQ(app.motifs().size(), 1u);
  EXPECT_TRUE(app.has_motif(Motif::kLibraryTuning));
  EXPECT_FALSE(app.has_motif(Motif::kCudaHipPorting));
}

TEST(Application, InvalidMeasurementRejected) {
  Application app = demo_app();
  EXPECT_THROW(app.add_measurement({"", 2020, 1.0, ""}), support::Error);
  EXPECT_THROW(app.add_measurement({"Summit", 2020, 0.0, ""}), support::Error);
}

TEST(Registry, PaperApplicationsComplete) {
  const Registry r = Registry::paper_applications();
  EXPECT_EQ(r.size(), 10u);
  for (const char* name : {"GAMESS", "LSMS", "GESTS", "ExaSky", "E3SM",
                           "CoMet", "NuCCOR", "Pele", "COAST", "LAMMPS"}) {
    EXPECT_NE(r.find(name), nullptr) << name;
  }
}

TEST(Registry, Table1MatchesPaperAssignments) {
  const Registry r = Registry::paper_applications();
  // Spot-check Table 1 rows from the paper.
  const Application* gamess = r.find("GAMESS");
  ASSERT_NE(gamess, nullptr);
  EXPECT_TRUE(gamess->has_motif(Motif::kCudaHipPorting));
  EXPECT_TRUE(gamess->has_motif(Motif::kLibraryTuning));
  const Application* e3sm = r.find("E3SM");
  ASSERT_NE(e3sm, nullptr);
  EXPECT_TRUE(e3sm->has_motif(Motif::kKernelFusionFission));
  const Application* pele = r.find("Pele");
  ASSERT_NE(pele, nullptr);
  EXPECT_TRUE(pele->has_motif(Motif::kPerformancePortability));
  EXPECT_TRUE(pele->has_motif(Motif::kAlgorithmicOptimizations));
}

TEST(Registry, Table1Rendering) {
  const Registry r = Registry::paper_applications();
  const std::string table = r.table1_motifs().render();
  EXPECT_TRUE(contains(table, "CUDA/HIP Porting"));
  EXPECT_TRUE(contains(table, "Kernel Fusion/Fission"));
  EXPECT_TRUE(contains(table, "GAMESS"));
  // Kernel fusion/fission row lists E3SM, Pele, LAMMPS.
  for (const auto& line : support::split_lines(table)) {
    if (contains(line, "Kernel Fusion/Fission")) {
      EXPECT_TRUE(contains(line, "E3SM"));
      EXPECT_TRUE(contains(line, "Pele"));
      EXPECT_TRUE(contains(line, "LAMMPS"));
    }
  }
}

TEST(Registry, Table2FromMeasurements) {
  Registry r = Registry::paper_applications();
  r.find("GAMESS")->add_measurement({"Summit", 2020, 1.0, ""});
  r.find("GAMESS")->add_measurement({"Frontier", 2023, 5.0, ""});
  const auto t = r.table2_speedups("Summit", "Frontier");
  EXPECT_EQ(t.row_count(), 1u);  // only apps with both measurements
  EXPECT_TRUE(contains(t.render(), "GAMESS"));
  EXPECT_TRUE(contains(t.render(), "5.0"));
}

TEST(Registry, DuplicateNamesRejected) {
  Registry r;
  r.add(demo_app());
  EXPECT_THROW(r.add(demo_app()), support::Error);
}

TEST(Readiness, CrusherIsHighestFidelity) {
  const arch::Machine frontier = arch::machines::frontier();
  const auto poplar = assess_generation(arch::machines::poplar(), frontier);
  const auto spock = assess_generation(arch::machines::spock(), frontier);
  const auto crusher = assess_generation(arch::machines::crusher(), frontier);
  EXPECT_LT(poplar.arch_fidelity, spock.arch_fidelity);
  EXPECT_LT(spock.arch_fidelity, crusher.arch_fidelity);
  EXPECT_NEAR(crusher.arch_fidelity, 1.0, 1e-9);  // identical node arch
  // Earlier systems give more lead time — the §6 tradeoff.
  EXPECT_GT(poplar.lead_time_years, crusher.lead_time_years);
}

TEST(Readiness, ScaleFractions) {
  const arch::Machine frontier = arch::machines::frontier();
  const auto crusher = assess_generation(arch::machines::crusher(), frontier);
  EXPECT_NEAR(crusher.scale_fraction, 192.0 / 9408.0, 1e-9);
}

TEST(Readiness, EarlyAccessTableRenders) {
  const std::string t = early_access_table().render();
  EXPECT_TRUE(contains(t, "Poplar"));
  EXPECT_TRUE(contains(t, "Spock"));
  EXPECT_TRUE(contains(t, "Crusher"));
}

TEST(Readiness, IssueLogDiscoveryOrder) {
  IssueLog log;
  // §6: functionality first, then missing features, then performance.
  log.add({IssueCategory::kFunctionality, "Poplar", 0, true, "segfault"});
  log.add({IssueCategory::kFunctionality, "Poplar", 1, true, "wrong results"});
  log.add({IssueCategory::kMissingFeature, "Spock", 3, true, "no hipblas op"});
  log.add({IssueCategory::kPerformance, "Crusher", 8, false, "slow spills"});
  EXPECT_TRUE(log.follows_discovery_order());
  EXPECT_EQ(log.count(IssueCategory::kFunctionality), 2u);
  EXPECT_DOUBLE_EQ(log.resolution_rate(), 0.75);
}

TEST(Readiness, IssueLogOutOfOrderDetected) {
  IssueLog log;
  log.add({IssueCategory::kPerformance, "Poplar", 0, false, ""});
  log.add({IssueCategory::kFunctionality, "Crusher", 9, false, ""});
  log.add({IssueCategory::kMissingFeature, "Spock", 5, false, ""});
  EXPECT_FALSE(log.follows_discovery_order());
}

TEST(Readiness, PhaseNames) {
  EXPECT_EQ(to_string(ReadinessPhase::kMissingFeatures), "missing features");
  EXPECT_EQ(to_string(Program::kCaar), "CAAR");
}

}  // namespace
}  // namespace exa::coe
