#include "coe/lessons.hpp"

#include <gtest/gtest.h>

#include "support/assert.hpp"
#include "support/string_util.hpp"

namespace exa::coe {
namespace {

Lesson make_lesson(const char* topic) {
  Lesson l;
  l.topic = topic;
  l.summary = "guidance";
  l.source_app = "Demo";
  return l;
}

TEST(Lessons, RecordAndFind) {
  LessonBook book;
  EXPECT_TRUE(book.record(make_lesson("atomics")));
  ASSERT_NE(book.find("atomics"), nullptr);
  EXPECT_EQ(book.find("atomics")->reach, Dissemination::kSupportTicket);
  EXPECT_EQ(book.find("missing"), nullptr);
}

TEST(Lessons, RediscoveryCountsDuplicateTriage) {
  // The §6 cost: without dissemination, "multiple teams triaging the same
  // issue".
  LessonBook book;
  book.record(make_lesson("atomics"));
  EXPECT_FALSE(book.record(make_lesson("atomics")));
  EXPECT_FALSE(book.record(make_lesson("atomics")));
  EXPECT_EQ(book.find("atomics")->duplicate_triages, 2);
  EXPECT_EQ(book.duplicate_triages(), 2);
  EXPECT_EQ(book.lessons().size(), 1u);
}

TEST(Lessons, PromotionEscalatesToUserGuide) {
  LessonBook book;
  book.record(make_lesson("bindings"));
  EXPECT_EQ(book.promote("bindings"), Dissemination::kHackathon);
  EXPECT_EQ(book.promote("bindings"), Dissemination::kWebinar);
  EXPECT_EQ(book.promote("bindings"), Dissemination::kUserGuide);
  // Saturates at the user guide.
  EXPECT_EQ(book.promote("bindings"), Dissemination::kUserGuide);
}

TEST(Lessons, PromoteUnknownTopicRejected) {
  LessonBook book;
  EXPECT_THROW((void)book.promote("nope"), support::Error);
}

TEST(Lessons, UserGuideListsOnlyFullyDisseminated) {
  LessonBook book;
  book.record(make_lesson("published"));
  book.promote("published");
  book.promote("published");
  book.promote("published");
  book.record(make_lesson("still-internal"));
  const std::string guide = book.user_guide().render();
  EXPECT_TRUE(support::contains(guide, "published"));
  EXPECT_FALSE(support::contains(guide, "still-internal"));
}

TEST(Lessons, PaperLessonsSeeded) {
  const LessonBook book = LessonBook::paper_lessons();
  EXPECT_GE(book.lessons().size(), 8u);
  EXPECT_GE(book.count_at(Dissemination::kUserGuide), 4u);
  ASSERT_NE(book.find("wavefront width 64"), nullptr);
  EXPECT_EQ(book.find("wavefront width 64")->source_app, "ExaSky");
  const std::string guide = book.user_guide().render();
  EXPECT_TRUE(support::contains(guide, "TARGET DATA"));
}

TEST(Lessons, DisseminationNames) {
  EXPECT_EQ(to_string(Dissemination::kWebinar), "webinar");
  EXPECT_EQ(to_string(Dissemination::kUserGuide), "user guide");
}

}  // namespace
}  // namespace exa::coe
