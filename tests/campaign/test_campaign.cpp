#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "support/assert.hpp"
#include "svc/scenario.hpp"

namespace exa::campaign {
namespace {

/// Parses an intentionally bad campaign and returns the error text, so
/// every rejection path can assert on its distinct, actionable message.
std::string parse_error(const std::string& json_text) {
  try {
    (void)parse_campaign(json_text);
  } catch (const support::Error& err) {
    return err.what();
  }
  ADD_FAILURE() << "campaign parsed cleanly: " << json_text;
  return {};
}

// --- parsing ---------------------------------------------------------------

TEST(CampaignSpecParse, FullDocumentRoundTrips) {
  const CampaignSpec spec = parse_campaign(R"({
    "name": "full",
    "description": "every key",
    "machines": ["frontier", "wombat"],
    "apps": ["sparse_cg", "pele"],
    "nodes": [1, 2, 4],
    "io": ["quiet", "lustre"],
    "topology": ["fattree", "dragonfly"],
    "congestion": [false, true],
    "fault": {
      "straggler_fraction": [0.0, 0.125],
      "straggler_slowdown": [1.0, 4.0]
    },
    "params": {"sparse_cg": {"grid": [8, 16]}},
    "priority": 3
  })");
  EXPECT_EQ(spec.name, "full");
  EXPECT_EQ(spec.description, "every key");
  EXPECT_EQ(spec.machines, (std::vector<std::string>{"frontier", "wombat"}));
  ASSERT_EQ(spec.apps.size(), 2u);
  EXPECT_EQ(spec.apps[0], svc::App::kSparseCg);
  EXPECT_EQ(spec.apps[1], svc::App::kPele);
  EXPECT_EQ(spec.nodes, (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(spec.io, (std::vector<std::string>{"quiet", "lustre"}));
  EXPECT_EQ(spec.topology, (std::vector<std::string>{"fattree", "dragonfly"}));
  EXPECT_EQ(spec.congestion, (std::vector<bool>{false, true}));
  EXPECT_EQ(spec.straggler_fraction, (std::vector<double>{0.0, 0.125}));
  EXPECT_EQ(spec.straggler_slowdown, (std::vector<double>{1.0, 4.0}));
  EXPECT_EQ(spec.params.at("sparse_cg").at("grid"),
            (std::vector<double>{8.0, 16.0}));
  EXPECT_EQ(spec.priority, 3);
  // machines(2) x apps(sparse_cg: 2 grid values, pele: 1) x nodes(3) x
  // io(2) x topology(2) x congestion(2) x fraction(2) x slowdown(2).
  EXPECT_EQ(spec.grid_size(), 2u * (2 + 1) * 3 * 2 * 2 * 2 * 2 * 2);
}

TEST(CampaignSpecParse, MinimalDocumentGetsDefaults) {
  const CampaignSpec spec = parse_campaign(R"({
    "name": "minimal",
    "machines": ["frontier"],
    "apps": ["pele"],
    "nodes": [4]
  })");
  EXPECT_TRUE(spec.description.empty());
  EXPECT_EQ(spec.io, std::vector<std::string>{"quiet"});
  EXPECT_EQ(spec.topology, std::vector<std::string>{"fattree"});
  EXPECT_EQ(spec.congestion, std::vector<bool>{false});
  EXPECT_EQ(spec.straggler_fraction, std::vector<double>{0.0});
  EXPECT_EQ(spec.straggler_slowdown, std::vector<double>{1.0});
  EXPECT_TRUE(spec.params.empty());
  EXPECT_EQ(spec.priority, 0);
  EXPECT_EQ(spec.grid_size(), 1u);
}

// --- rejection paths: each failure mode has its own actionable message -----

TEST(CampaignSpecErrors, TopLevelMustBeObject) {
  EXPECT_NE(parse_error(R"([1, 2])").find("top level must be a JSON object"),
            std::string::npos);
}

TEST(CampaignSpecErrors, MissingRequiredKeys) {
  const char* base = R"({
    "name": "x", "machines": ["frontier"], "apps": ["pele"], "nodes": [1]
  })";
  (void)base;
  EXPECT_NE(parse_error(R"({"machines": ["frontier"], "apps": ["pele"],
                            "nodes": [1]})")
                .find("missing required key \"name\""),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "apps": ["pele"], "nodes": [1]})")
                .find("missing required key \"machines\""),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "machines": ["frontier"],
                            "nodes": [1]})")
                .find("missing required key \"apps\""),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "machines": ["frontier"],
                            "apps": ["pele"]})")
                .find("missing required key \"nodes\""),
            std::string::npos);
}

TEST(CampaignSpecErrors, UnknownKeyNamesTheKeyAndTheSchema) {
  const std::string msg = parse_error(R"({
    "name": "x", "machines": ["frontier"], "apps": ["pele"], "nodes": [1],
    "machnies": ["frontier"]
  })");
  EXPECT_NE(msg.find("unknown key \"machnies\""), std::string::npos);
  EXPECT_NE(msg.find("expected name, description, machines"),
            std::string::npos);
}

TEST(CampaignSpecErrors, TypeMismatchNamesTheKeyAndExpectedType) {
  EXPECT_NE(parse_error(R"({"name": "x", "machines": "frontier",
                            "apps": ["pele"], "nodes": [1]})")
                .find("\"machines\" must be an array of strings"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "machines": ["frontier"],
                            "apps": ["pele"], "nodes": [1],
                            "congestion": [0]})")
                .find("\"congestion\" must be an array of booleans"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "machines": ["frontier"],
                            "apps": ["pele"], "nodes": ["four"]})")
                .find("\"nodes\" must be an array of numbers"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": 7, "machines": ["frontier"],
                            "apps": ["pele"], "nodes": [1]})")
                .find("\"name\" must be a non-empty string"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "machines": ["frontier"],
                            "apps": ["pele"], "nodes": [1],
                            "priority": 1.5})")
                .find("\"priority\" must be an integer"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "machines": ["frontier"],
                            "apps": ["pele"], "nodes": [1],
                            "fault": [1]})")
                .find("\"fault\" must be an object"),
            std::string::npos);
}

TEST(CampaignSpecErrors, EmptySweepAxis) {
  const std::string msg = parse_error(R"({
    "name": "x", "machines": ["frontier"], "apps": ["pele"], "nodes": []
  })");
  EXPECT_NE(msg.find("sweep axis \"nodes\" is empty"), std::string::npos);
  EXPECT_NE(msg.find("at least one value per axis"), std::string::npos);
}

TEST(CampaignSpecErrors, DuplicateAxisValue) {
  const std::string strings = parse_error(R"({
    "name": "x", "machines": ["frontier", "frontier"], "apps": ["pele"],
    "nodes": [1]
  })");
  EXPECT_NE(strings.find("sweep axis \"machines\" repeats value \"frontier\""),
            std::string::npos);
  EXPECT_NE(strings.find("list each value once"), std::string::npos);
  const std::string numbers = parse_error(R"({
    "name": "x", "machines": ["frontier"], "apps": ["pele"],
    "nodes": [1, 2, 2]
  })");
  EXPECT_NE(numbers.find("sweep axis \"nodes\" repeats value 2"),
            std::string::npos);
}

TEST(CampaignSpecErrors, NodesMustBePositiveIntegers) {
  EXPECT_NE(parse_error(R"({"name": "x", "machines": ["frontier"],
                            "apps": ["pele"], "nodes": [1, 2.5]})")
                .find("\"nodes\" values must be positive integers, got 2.5"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "machines": ["frontier"],
                            "apps": ["pele"], "nodes": [0]})")
                .find("\"nodes\" values must be positive integers"),
            std::string::npos);
}

TEST(CampaignSpecErrors, UnknownApp) {
  EXPECT_NE(parse_error(R"({"name": "x", "machines": ["frontier"],
                            "apps": ["peel"], "nodes": [1]})")
                .find("unknown app \"peel\" in \"apps\""),
            std::string::npos);
}

TEST(CampaignSpecErrors, FaultObjectRejectsUnknownKeys) {
  const std::string msg = parse_error(R"({
    "name": "x", "machines": ["frontier"], "apps": ["pele"], "nodes": [1],
    "fault": {"straggler_franction": [0.1]}
  })");
  EXPECT_NE(msg.find("unknown key \"fault.straggler_franction\""),
            std::string::npos);
}

TEST(CampaignSpecErrors, ParamsForUnlistedApp) {
  const std::string msg = parse_error(R"({
    "name": "x", "machines": ["frontier"], "apps": ["pele"], "nodes": [1],
    "params": {"gests": {"n": [4096]}}
  })");
  EXPECT_NE(msg.find("params given for app \"gests\""), std::string::npos);
  EXPECT_NE(msg.find("not listed"), std::string::npos);
}

TEST(CampaignSpecErrors, ParamsMustBeNestedObjects) {
  EXPECT_NE(parse_error(R"({"name": "x", "machines": ["frontier"],
                            "apps": ["pele"], "nodes": [1],
                            "params": [1]})")
                .find("\"params\" must be an object"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "machines": ["frontier"],
                            "apps": ["pele"], "nodes": [1],
                            "params": {"pele": [1]}})")
                .find("params.pele must be an object"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "machines": ["frontier"],
                            "apps": ["pele"], "nodes": [1],
                            "params": {"pele": {"cells": ["big"]}}})")
                .find("\"params.pele.cells\" must be an array of numbers"),
            std::string::npos);
}

TEST(CampaignSpecErrors, MalformedJsonFailsLoudly) {
  EXPECT_THROW((void)parse_campaign("{\"name\": "), support::Error);
}

TEST(CampaignSpecErrors, LoadNamesTheFile) {
  try {
    (void)load_campaign("/nonexistent/campaign.json");
    FAIL() << "load_campaign succeeded on a missing file";
  } catch (const support::Error& err) {
    EXPECT_NE(std::string(err.what()).find("cannot read"), std::string::npos);
    EXPECT_NE(std::string(err.what()).find("/nonexistent/campaign.json"),
              std::string::npos);
  }
}

// --- grid expansion --------------------------------------------------------

TEST(CampaignGrid, ExpandMatchesGridSizeAndOrder) {
  const CampaignSpec spec = parse_campaign(R"({
    "name": "order",
    "machines": ["frontier", "wombat"],
    "apps": ["sparse_cg", "pele"],
    "nodes": [1, 2],
    "params": {"sparse_cg": {"grid": [8, 16]}}
  })");
  const std::vector<svc::Scenario> grid = expand_grid(spec);
  ASSERT_EQ(grid.size(), spec.grid_size());
  ASSERT_EQ(grid.size(), 12u);  // 2 machines x (2 + 1 app points) x 2 nodes
  // Machines outermost, then apps, then per-app params, then nodes.
  EXPECT_EQ(grid[0].machine, "frontier");
  EXPECT_EQ(grid[0].app, svc::App::kSparseCg);
  EXPECT_EQ(grid[0].params.at("grid"), 8.0);
  EXPECT_EQ(grid[0].nodes, 1);
  EXPECT_EQ(grid[1].nodes, 2);
  EXPECT_EQ(grid[2].params.at("grid"), 16.0);
  EXPECT_EQ(grid[4].app, svc::App::kPele);
  EXPECT_TRUE(grid[4].params.empty());
  EXPECT_EQ(grid[6].machine, "wombat");
  // Every grid point passes submit-time validation as-is.
  for (const svc::Scenario& s : grid) EXPECT_NO_THROW(svc::validate(s));
}

TEST(CampaignGrid, ZeroStragglerFractionCanonicalizesSlowdown) {
  const CampaignSpec spec = parse_campaign(R"({
    "name": "faults",
    "machines": ["frontier"],
    "apps": ["pele"],
    "nodes": [1],
    "fault": {
      "straggler_fraction": [0.0, 0.0625],
      "straggler_slowdown": [1.0, 4.0]
    }
  })");
  const std::vector<svc::Scenario> grid = expand_grid(spec);
  ASSERT_EQ(grid.size(), 4u);
  std::set<std::string> keys;
  for (const svc::Scenario& s : grid) {
    if (s.straggler_fraction == 0.0) {
      // No straggler => the slowdown knob is inert; pin it so the zero
      // crossing collapses onto one canonical key.
      EXPECT_EQ(s.straggler_slowdown, 1.0);
    }
    keys.insert(s.key());
  }
  EXPECT_EQ(keys.size(), 3u);  // (0, 1), (0.0625, 1), (0.0625, 4)
}

// --- the runner ------------------------------------------------------------

TEST(CampaignRunner, TinyCampaignRunsDedupesAndFits) {
  const CampaignSpec spec = parse_campaign(R"({
    "name": "tiny",
    "machines": ["frontier"],
    "apps": ["pele"],
    "nodes": [1, 2, 4],
    "fault": {
      "straggler_fraction": [0.0],
      "straggler_slowdown": [1.0, 2.0]
    }
  })");
  CampaignRunner runner;
  const CampaignResult result = runner.run(spec);
  EXPECT_EQ(result.grid_size, 6u);
  EXPECT_EQ(result.submitted, 6u);
  EXPECT_EQ(result.completed, 6u);
  // The slowdown axis is inert at fraction 0: each node count collapses
  // onto one canonical key inside the server.
  EXPECT_EQ(result.dedupe_hits, 3u);
  EXPECT_EQ(result.executed, 3u);
  ASSERT_EQ(result.reports.size(), 6u);
  EXPECT_GT(result.total_sim_time_s, 0.0);
  // Deduped grid points carry bitwise-equal reports (svc::run is pure).
  EXPECT_EQ(result.reports[0].time_s, result.reports[1].time_s);
  // Three distinct node counts -> a fitted t(p) model for the pair.
  const auto fit = result.fits.find("campaign/pele/frontier");
  ASSERT_NE(fit, result.fits.end());
  EXPECT_EQ(fit->second.points, 3u);
  EXPECT_TRUE(result.jsonl_path.empty());
}

TEST(CampaignRunner, ResultIsPureAtAnyWorkerCount) {
  const CampaignSpec spec = parse_campaign(R"({
    "name": "pure",
    "machines": ["frontier", "wombat"],
    "apps": ["sparse_cg"],
    "nodes": [1, 4],
    "params": {"sparse_cg": {"grid": [8]}}
  })");
  RunnerConfig serial;
  serial.workers = 1;
  RunnerConfig wide;
  wide.workers = 8;
  const CampaignResult a = CampaignRunner(serial).run(spec);
  const CampaignResult b = CampaignRunner(wide).run(spec);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].scenario.key(), b.reports[i].scenario.key());
    EXPECT_EQ(a.reports[i].time_s, b.reports[i].time_s);  // bitwise
    EXPECT_EQ(a.reports[i].fom, b.reports[i].fom);
  }
  EXPECT_EQ(a.total_sim_time_s, b.total_sim_time_s);
  ASSERT_EQ(a.fits.size(), b.fits.size());
  for (const auto& [callpath, fit] : a.fits) {
    const auto it = b.fits.find(callpath);
    ASSERT_NE(it, b.fits.end());
    EXPECT_EQ(fit.a, it->second.a);
    EXPECT_EQ(fit.b, it->second.b);
    EXPECT_EQ(fit.c, it->second.c);
    EXPECT_EQ(fit.d, it->second.d);
  }
}

TEST(CampaignRunner, ExportsExtrapJsonl) {
  const CampaignSpec spec = parse_campaign(R"({
    "name": "jsonl",
    "machines": ["frontier"],
    "apps": ["pele"],
    "nodes": [1, 2]
  })");
  const std::string path =
      testing::TempDir() + "campaign_test_extrap.jsonl";
  std::remove(path.c_str());
  RunnerConfig config;
  config.jsonl_path = path;
  const CampaignResult result = CampaignRunner(config).run(spec);
  EXPECT_EQ(result.jsonl_path, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::size_t campaign_lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.find("campaign/pele/frontier") != std::string::npos) {
      ++campaign_lines;
    }
  }
  // One Extra-P sample per grid point at callpath campaign/<app>/<machine>.
  EXPECT_EQ(campaign_lines, 2u);
  std::remove(path.c_str());
}

TEST(CampaignRunner, InvalidGridPointFailsLoudly) {
  // sparse_cg needs a GPU machine; cori is CPU-only. The campaign must
  // throw, not silently shrink its grid.
  const CampaignSpec spec = parse_campaign(R"({
    "name": "bad",
    "machines": ["cori"],
    "apps": ["sparse_cg"],
    "nodes": [1]
  })");
  CampaignRunner runner;
  EXPECT_THROW((void)runner.run(spec), support::Error);
}

}  // namespace
}  // namespace exa::campaign
