#include "sim/device_sim.hpp"

#include <gtest/gtest.h>

#include "support/assert.hpp"

namespace exa::sim {
namespace {

KernelProfile ms_kernel(double ms = 1.0) {
  // A compute-bound kernel calibrated to ~`ms` milliseconds on MI250X.
  KernelProfile p;
  p.name = "work";
  const arch::GpuArch gpu = arch::mi250x_gcd();
  p.add_flops(arch::DType::kF64, gpu.peak_flops(arch::DType::kF64) * ms * 1e-3);
  p.compute_efficiency = 1.0;
  return p;
}

LaunchConfig grid() { return LaunchConfig{1u << 16, 256}; }

TEST(DeviceSim, HostClockAdvancesOnSubmit) {
  DeviceSim dev(arch::mi250x_gcd());
  const SimTime t0 = dev.host_now();
  dev.launch(0, ms_kernel(), grid());
  // Async submit: host moved only by the submit overhead, not the kernel.
  EXPECT_LT(dev.host_now() - t0, 1e-5);
  EXPECT_FALSE(dev.stream_query(0));
  dev.synchronize(0);
  EXPECT_GE(dev.host_now() - t0, 0.9e-3);
  EXPECT_TRUE(dev.stream_query(0));
}

TEST(DeviceSim, StreamsRunConcurrently) {
  DeviceSim dev(arch::mi250x_gcd());
  const StreamId s1 = dev.create_stream();
  const StreamId s2 = dev.create_stream();
  dev.launch(s1, ms_kernel(1.0), grid());
  dev.launch(s2, ms_kernel(1.0), grid());
  dev.synchronize_all();
  // Two 1 ms kernels on different streams overlap: well under 2 ms.
  EXPECT_LT(dev.host_now(), 1.5e-3);
}

TEST(DeviceSim, SameStreamSerializes) {
  DeviceSim dev(arch::mi250x_gcd());
  dev.launch(0, ms_kernel(1.0), grid());
  dev.launch(0, ms_kernel(1.0), grid());
  dev.synchronize(0);
  EXPECT_GE(dev.host_now(), 1.9e-3);
}

TEST(DeviceSim, BusyStreamHidesLaunchLatency) {
  // The §3.5 E3SM strategy: N short kernels queued asynchronously on one
  // stream pay ~1 launch latency; synchronizing after each pays N.
  const arch::GpuArch gpu = arch::mi250x_gcd();
  constexpr int kKernels = 64;

  DeviceSim async_dev(gpu);
  for (int i = 0; i < kKernels; ++i) {
    async_dev.launch(0, ms_kernel(0.001), grid());
  }
  async_dev.synchronize_all();

  DeviceSim sync_dev(gpu);
  for (int i = 0; i < kKernels; ++i) {
    sync_dev.launch(0, ms_kernel(0.001), grid());
    sync_dev.synchronize(0);
  }
  // Sync-each pays launch latency per kernel; async amortizes it.
  EXPECT_GT(sync_dev.host_now(),
            async_dev.host_now() + 0.8 * (kKernels - 1) * gpu.kernel_launch_latency_s);
}

TEST(DeviceSim, EventsMeasureElapsed) {
  DeviceSim dev(arch::mi250x_gcd());
  const EventId start = dev.record_event(0);
  dev.launch(0, ms_kernel(2.0), grid());
  const EventId stop = dev.record_event(0);
  EXPECT_NEAR(dev.elapsed(start, stop), 2.0e-3, 0.2e-3);
}

TEST(DeviceSim, StreamWaitEventOrdersAcrossStreams) {
  DeviceSim dev(arch::mi250x_gcd());
  const StreamId s1 = dev.create_stream();
  const StreamId s2 = dev.create_stream();
  dev.launch(s1, ms_kernel(1.0), grid());
  const EventId e = dev.record_event(s1);
  dev.stream_wait_event(s2, e);
  dev.launch(s2, ms_kernel(1.0), grid());
  dev.synchronize(s2);
  EXPECT_GE(dev.host_now(), 1.9e-3);  // serialized through the event
}

TEST(DeviceSim, TransfersChargeLinkTime) {
  DeviceSim dev(arch::v100());
  const SimTime t0 = dev.host_now();
  dev.transfer_sync(TransferKind::kHostToDevice, 50e9 * 0.01);  // 10 ms at 50 GB/s
  EXPECT_NEAR(dev.host_now() - t0, 0.01, 0.001);
  EXPECT_EQ(dev.counters().transfers, 1u);
  EXPECT_GT(dev.counters().bytes_h2d, 0.0);
}

TEST(DeviceSim, UvmSlowerThanExplicitTransfer) {
  DeviceSim dev(arch::mi250x_gcd());
  const double bytes = 256.0 * 1024 * 1024;
  const SimTime t0 = dev.host_now();
  dev.transfer_async(0, TransferKind::kHostToDevice, bytes);
  dev.synchronize(0);
  const double explicit_s = dev.host_now() - t0;
  const SimTime t1 = dev.host_now();
  dev.uvm_migrate(0, TransferKind::kHostToDevice, bytes);
  dev.synchronize(0);
  const double uvm_s = dev.host_now() - t1;
  EXPECT_GT(uvm_s, 1.3 * explicit_s);
}

TEST(DeviceSim, DirectAllocBlocksAndCharges) {
  DeviceSim dev(arch::mi250x_gcd());
  dev.launch(0, ms_kernel(1.0), grid());
  void* p = dev.malloc_device(1 << 20);
  // hipMalloc synchronized the device first.
  EXPECT_TRUE(dev.stream_query(0));
  EXPECT_GE(dev.host_now(), 1.0e-3);
  dev.free_device(p);
}

TEST(DeviceSim, PooledAllocIsCheapAndNonBlocking) {
  DeviceSim dev(arch::mi250x_gcd());
  dev.set_alloc_mode(AllocMode::kPooled, 1ull << 30);
  dev.launch(0, ms_kernel(1.0), grid());
  const SimTime t0 = dev.host_now();
  void* p = dev.malloc_device(1 << 20);
  EXPECT_LT(dev.host_now() - t0, 1e-6);
  EXPECT_FALSE(dev.stream_query(0));  // did NOT synchronize
  dev.free_device(p);
}

TEST(DeviceSim, OutOfMemoryThrows) {
  DeviceSim dev(arch::v100());  // 16 GiB
  EXPECT_THROW((void)dev.malloc_device(20ull << 30), support::Error);
}

TEST(DeviceSim, AllocationAccounting) {
  DeviceSim dev(arch::mi250x_gcd());
  void* a = dev.malloc_device(1000);
  void* b = dev.malloc_device(2000);
  EXPECT_EQ(dev.bytes_allocated(), 3000u);
  dev.free_device(a);
  EXPECT_EQ(dev.bytes_allocated(), 2000u);
  dev.free_device(b);
  EXPECT_EQ(dev.bytes_allocated(), 0u);
  EXPECT_EQ(dev.counters().allocs, 2u);
  EXPECT_EQ(dev.counters().frees, 2u);
}

TEST(DeviceSim, FreeUnknownPointerRejected) {
  DeviceSim dev(arch::mi250x_gcd());
  int dummy = 0;
  EXPECT_THROW(dev.free_device(&dummy), support::Error);
}

TEST(DeviceSim, DestroyStreamDrainsIt) {
  DeviceSim dev(arch::mi250x_gcd());
  const StreamId s = dev.create_stream();
  dev.launch(s, ms_kernel(1.0), grid());
  dev.destroy_stream(s);
  EXPECT_GE(dev.host_now(), 0.9e-3);
  EXPECT_THROW(dev.synchronize(s), support::Error);
  EXPECT_THROW(dev.destroy_stream(0), support::Error);
}

TEST(DeviceSim, CountersTrackKernels) {
  DeviceSim dev(arch::mi250x_gcd());
  dev.launch(0, ms_kernel(1.0), grid());
  dev.launch(0, ms_kernel(1.0), grid());
  EXPECT_EQ(dev.counters().kernels_launched, 2u);
  EXPECT_NEAR(dev.counters().kernel_busy_s, 2e-3, 0.4e-3);
}

TEST(DeviceSim, CostMemoMatchesDirectComputation) {
  DeviceSim dev(arch::mi250x_gcd());
  dev.set_cost_memo(false);
  const KernelTiming direct = dev.launch(0, ms_kernel(), grid());
  dev.set_cost_memo(true);
  const KernelTiming miss = dev.launch(0, ms_kernel(), grid());
  const KernelTiming hit = dev.launch(0, ms_kernel(), grid());
  for (const KernelTiming& t : {miss, hit}) {
    EXPECT_EQ(t.launch_s, direct.launch_s);
    EXPECT_EQ(t.compute_s, direct.compute_s);
    EXPECT_EQ(t.memory_s, direct.memory_s);
    EXPECT_EQ(t.total_s, direct.total_s);
  }
  EXPECT_EQ(dev.cost_memo_misses(), 1u);
  EXPECT_EQ(dev.cost_memo_hits(), 1u);
}

TEST(DeviceSim, MutableTuningBumpsCostEpoch) {
  DeviceSim dev(arch::mi250x_gcd());
  const std::uint64_t before = dev.cost_epoch();
  EXPECT_NE(before, 0u);  // real epochs start at 1; 0 means "never valid"
  dev.mutable_tuning();
  EXPECT_NE(dev.cost_epoch(), before);
  // Epochs are unique per device instance, so a cached timing from one
  // device can never replay on another.
  const DeviceSim other(arch::mi250x_gcd());
  EXPECT_NE(other.cost_epoch(), dev.cost_epoch());
}

TEST(DeviceSim, TransientAllocPooledCannotSpikeUsage) {
  DeviceSim dev(arch::mi250x_gcd());
  dev.set_alloc_mode(AllocMode::kPooled, 1ull << 20);  // 1 MiB pool
  void* live = dev.malloc_device(600u << 10);          // 600 KiB held
  const std::uint64_t high_water = dev.pool()->high_water();
  const std::uint64_t in_use = dev.pool()->bytes_in_use();
  const SimTime t0 = dev.host_now();
  const auto allocs = dev.counters().allocs;
  const auto frees = dev.counters().frees;
  // 300 KiB transient view: materializing the allocation would spike pool
  // usage to 900 KiB; the single accounting call must not.
  dev.charge_transient_alloc(300u << 10);
  EXPECT_EQ(dev.pool()->high_water(), high_water);
  EXPECT_EQ(dev.pool()->bytes_in_use(), in_use);
  EXPECT_GT(dev.host_now(), t0);  // alloc + free latency still charged
  EXPECT_EQ(dev.counters().allocs, allocs + 1);
  EXPECT_EQ(dev.counters().frees, frees + 1);
  // More than the remaining contiguous space is still rejected.
  EXPECT_THROW(dev.charge_transient_alloc(600u << 10), support::Error);
  dev.free_device(live);
}

TEST(DeviceSim, TransientAllocDirectOutOfMemoryThrows) {
  DeviceSim dev(arch::mi250x_gcd());
  EXPECT_THROW(dev.charge_transient_alloc(dev.gpu().hbm_capacity_bytes + 1),
               support::Error);
}

}  // namespace
}  // namespace exa::sim
