#include "sim/occupancy.hpp"

#include <gtest/gtest.h>

#include "support/assert.hpp"

namespace exa::sim {
namespace {

KernelProfile base_profile(int regs = 32, std::uint64_t lds = 0) {
  KernelProfile p;
  p.registers_per_thread = regs;
  p.lds_per_block_bytes = lds;
  p.add_flops(arch::DType::kF64, 1e9);
  return p;
}

LaunchConfig big_grid(std::uint32_t block = 256) {
  return LaunchConfig{1u << 20, block};
}

TEST(Occupancy, FullWithLightKernels) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const Occupancy occ = compute_occupancy(gpu, base_profile(32), big_grid());
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
  EXPECT_EQ(occ.spilled_registers_per_thread, 0);
}

TEST(Occupancy, RegisterLimited) {
  const arch::GpuArch gpu = arch::v100();
  // 250 regs x 256 threads = 64000 regs/block; 65536-reg file -> 1 block.
  const Occupancy occ = compute_occupancy(gpu, base_profile(250), big_grid());
  EXPECT_EQ(occ.limit, OccupancyLimit::kRegisters);
  EXPECT_EQ(occ.resident_blocks_per_cu, 1);
  EXPECT_NEAR(occ.fraction, 256.0 / 2048.0, 1e-12);
}

TEST(Occupancy, SpillsAboveArchLimit) {
  const arch::GpuArch v = arch::v100();         // 255-reg limit
  const arch::GpuArch m = arch::mi250x_gcd();   // 512-reg limit
  const KernelProfile p = base_profile(320);
  EXPECT_EQ(compute_occupancy(v, p, big_grid()).spilled_registers_per_thread,
            65);
  EXPECT_EQ(compute_occupancy(m, p, big_grid()).spilled_registers_per_thread,
            0);  // CDNA2's doubled register file absorbs it
}

TEST(Occupancy, LdsLimited) {
  const arch::GpuArch gpu = arch::mi250x_gcd();  // 64 KiB LDS per CU
  const Occupancy occ =
      compute_occupancy(gpu, base_profile(32, 33 * 1024), big_grid());
  EXPECT_EQ(occ.limit, OccupancyLimit::kLds);
  EXPECT_EQ(occ.resident_blocks_per_cu, 1);
}

TEST(Occupancy, BlockCountLimited) {
  const arch::GpuArch gpu = arch::mi250x_gcd();  // max 32 blocks/CU
  const Occupancy occ = compute_occupancy(gpu, base_profile(16), big_grid(64));
  // 2048/64 = 32 blocks by threads; equal to the block limit.
  EXPECT_EQ(occ.resident_blocks_per_cu, 32);
}

TEST(Occupancy, SmallGridLeavesCusIdle) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  // One block of 256 threads on a 110-CU part: one CU busy, the rest idle;
  // the busy CU holds a single block.
  const Occupancy occ =
      compute_occupancy(gpu, base_profile(32), LaunchConfig{1, 256});
  EXPECT_NEAR(occ.cu_utilization, 1.0 / 110.0, 1e-12);
  EXPECT_NEAR(occ.fraction, 256.0 / 2048.0, 1e-12);
}

TEST(Occupancy, WideGridUsesWholeDevice) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const Occupancy occ = compute_occupancy(gpu, base_profile(32), big_grid());
  EXPECT_DOUBLE_EQ(occ.cu_utilization, 1.0);
}

TEST(Occupancy, EfficiencySaturates) {
  EXPECT_LT(occupancy_efficiency(0.05), 0.3);
  EXPECT_GT(occupancy_efficiency(0.25), 0.7);
  EXPECT_GT(occupancy_efficiency(1.0), 0.99);
  // Monotone.
  double prev = 0.0;
  for (double occ = 0.05; occ <= 1.0; occ += 0.05) {
    const double e = occupancy_efficiency(occ);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(Occupancy, RejectsOversizedBlock) {
  const arch::GpuArch gpu = arch::v100();
  EXPECT_THROW(
      (void)compute_occupancy(gpu, base_profile(), LaunchConfig{1, 4096}),
      support::Error);
}

TEST(Occupancy, LimitNames) {
  EXPECT_EQ(to_string(OccupancyLimit::kRegisters), "registers");
  EXPECT_EQ(to_string(OccupancyLimit::kLds), "lds");
}

}  // namespace
}  // namespace exa::sim
