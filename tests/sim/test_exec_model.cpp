#include "sim/exec_model.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace exa::sim {
namespace {

LaunchConfig saturating_grid() { return LaunchConfig{1u << 16, 256}; }

KernelProfile compute_bound(double flops = 1e12) {
  KernelProfile p;
  p.name = "compute";
  p.add_flops(arch::DType::kF64, flops);
  p.bytes_read = 1e6;
  p.registers_per_thread = 64;
  p.compute_efficiency = 1.0;
  p.memory_efficiency = 1.0;
  return p;
}

KernelProfile memory_bound(double bytes = 1e9) {
  KernelProfile p;
  p.name = "stream";
  p.add_flops(arch::DType::kF64, 1e6);
  p.bytes_read = bytes / 2;
  p.bytes_written = bytes / 2;
  p.registers_per_thread = 32;
  p.compute_efficiency = 1.0;
  p.memory_efficiency = 1.0;
  return p;
}

TEST(ExecModel, ComputeBoundTimeMatchesRoofline) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const KernelTiming t =
      kernel_timing(gpu, compute_bound(1e12), saturating_grid());
  // occupancy ~1 -> efficiency ~0.996; expect within a few percent of
  // flops/peak.
  const double ideal = 1e12 / gpu.peak_flops(arch::DType::kF64);
  EXPECT_NEAR(t.compute_s, ideal, ideal * 0.05);
  EXPECT_GT(t.compute_s, t.memory_s);
  EXPECT_DOUBLE_EQ(t.total_s, t.launch_s + t.compute_s);
}

TEST(ExecModel, MemoryBoundTimeMatchesBandwidth) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const KernelTiming t =
      kernel_timing(gpu, memory_bound(1e9), saturating_grid());
  const double ideal = 1e9 / gpu.hbm_bandwidth_bytes_per_s;
  EXPECT_NEAR(t.memory_s, ideal, ideal * 0.05);
  EXPECT_DOUBLE_EQ(t.total_s, t.launch_s + t.memory_s);
}

TEST(ExecModel, LaunchLatencyFloorsTinyKernels) {
  const arch::GpuArch gpu = arch::v100();
  KernelProfile p = compute_bound(1e3);  // trivially small
  p.bytes_read = 1e3;
  const KernelTiming t = kernel_timing(gpu, p, LaunchConfig{1, 64});
  EXPECT_GT(t.total_s, gpu.kernel_launch_latency_s);
  EXPECT_LT(t.total_s - t.launch_s, gpu.kernel_launch_latency_s);
}

TEST(ExecModel, ActiveLaneFraction) {
  EXPECT_DOUBLE_EQ(active_lane_fraction(0.0, 64), 1.0);   // convergent
  EXPECT_DOUBLE_EQ(active_lane_fraction(32.0, 64), 0.5);  // half wave
  EXPECT_DOUBLE_EQ(active_lane_fraction(32.0, 32), 1.0);  // exactly a warp
  EXPECT_DOUBLE_EQ(active_lane_fraction(2.0, 64), 2.0 / 64.0);
  EXPECT_DOUBLE_EQ(active_lane_fraction(128.0, 64), 1.0);  // capped
}

TEST(ExecModel, WavefrontWidthSensitivity) {
  // A kernel with 32-item convergent runs: free on NVIDIA (wavefront 32),
  // half throughput on AMD (wavefront 64) — the ExaSky §3.4 observation.
  KernelProfile p = compute_bound(1e12);
  p.coherent_run_length = 32.0;
  const KernelTiming on_v100 =
      kernel_timing(arch::v100(), p, saturating_grid());
  const KernelTiming on_mi250 =
      kernel_timing(arch::mi250x_gcd(), p, saturating_grid());
  EXPECT_DOUBLE_EQ(on_v100.active_lane_fraction, 1.0);
  EXPECT_DOUBLE_EQ(on_mi250.active_lane_fraction, 0.5);
}

TEST(ExecModel, DivergenceSlowsCompute) {
  KernelProfile convergent = compute_bound();
  KernelProfile divergent = compute_bound();
  divergent.coherent_run_length = 4.0;
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const double tc = kernel_timing(gpu, convergent, saturating_grid()).compute_s;
  const double td = kernel_timing(gpu, divergent, saturating_grid()).compute_s;
  EXPECT_NEAR(td / tc, 16.0, 0.01);  // 4/64 active lanes
}

TEST(ExecModel, MatrixCoreWorkIgnoresDivergence) {
  KernelProfile p;
  p.add_flops(arch::DType::kF16, 1e12, /*matrix=*/true);
  p.bytes_read = 1e6;
  p.coherent_run_length = 2.0;
  p.compute_efficiency = 1.0;
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const KernelTiming t = kernel_timing(gpu, p, saturating_grid());
  const double ideal = 1e12 / gpu.peak_flops(arch::DType::kF16, true);
  EXPECT_NEAR(t.compute_s, ideal, ideal * 0.05);
}

TEST(ExecModel, NonFmaPenaltyAndPackedRecovery) {
  KernelProfile p;
  p.add_flops_nofma(arch::DType::kF32, 1e12);
  p.bytes_read = 1e6;
  p.compute_efficiency = 1.0;
  KernelProfile fma = p;
  fma.work[0].fma = true;
  const arch::GpuArch v = arch::v100();
  const arch::GpuArch m = arch::mi250x_gcd();
  const double slow_v = kernel_timing(v, p, saturating_grid()).compute_s;
  const double fast_v = kernel_timing(v, fma, saturating_grid()).compute_s;
  EXPECT_NEAR(slow_v / fast_v, 1.0 / v.non_fma_fraction, 0.01);
  // CDNA2's packed ALU ops lose less.
  const double slow_m = kernel_timing(m, p, saturating_grid()).compute_s;
  const double fast_m = kernel_timing(m, fma, saturating_grid()).compute_s;
  EXPECT_LT(slow_m / fast_m, slow_v / fast_v);
}

TEST(ExecModel, SpillsAddMemoryTraffic) {
  const arch::GpuArch gpu = arch::v100();
  KernelProfile p = memory_bound(1e8);
  p.registers_per_thread = 300;  // 45 spilled on Volta
  const KernelTiming spilled = kernel_timing(gpu, p, saturating_grid());
  p.registers_per_thread = 128;
  const KernelTiming clean = kernel_timing(gpu, p, saturating_grid());
  EXPECT_GT(spilled.spill_bytes, 0.0);
  EXPECT_DOUBLE_EQ(clean.spill_bytes, 0.0);
  EXPECT_GT(spilled.memory_s, clean.memory_s);
}

TEST(ExecModel, SpillTrafficMultiplierModelsCompilerFix) {
  const arch::GpuArch gpu = arch::v100();
  KernelProfile p = memory_bound(1e8);
  p.registers_per_thread = 300;
  ExecTuning buggy;
  buggy.spill_traffic_multiplier = 3.0;
  ExecTuning fixed;
  const double t_buggy =
      kernel_timing(gpu, p, saturating_grid(), buggy).total_s;
  const double t_fixed =
      kernel_timing(gpu, p, saturating_grid(), fixed).total_s;
  EXPECT_GT(t_buggy, t_fixed);
}

TEST(ExecModel, MixedIntFloatWorkSerializes) {
  // The LSMS §3.2 observation: integer index arithmetic competes with FP.
  KernelProfile fp_only = compute_bound(1e12);
  KernelProfile mixed = compute_bound(1e12);
  mixed.add_flops(arch::DType::kI32, 2e12);
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const double t_fp = kernel_timing(gpu, fp_only, saturating_grid()).compute_s;
  const double t_mixed = kernel_timing(gpu, mixed, saturating_grid()).compute_s;
  EXPECT_GT(t_mixed, 1.8 * t_fp);
}

TEST(ExecModel, TransferTime) {
  const arch::HostLink link{"test", 50e9, 2e-6};
  EXPECT_DOUBLE_EQ(transfer_time(link, 0.0), 2e-6);
  EXPECT_NEAR(transfer_time(link, 50e9), 1.0 + 2e-6, 1e-9);
}

TEST(ExecModel, AchievedFlops) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const KernelProfile p = compute_bound(1e12);
  const KernelTiming t = kernel_timing(gpu, p, saturating_grid());
  const double achieved = t.achieved_flops(1e12);
  EXPECT_GT(achieved, 0.9 * gpu.peak_flops(arch::DType::kF64));
  EXPECT_LE(achieved, gpu.peak_flops(arch::DType::kF64));
}

TEST(ExecModel, ArithmeticIntensity) {
  KernelProfile p = compute_bound(1e9);
  p.bytes_read = 1e6;
  p.bytes_written = 1e6;
  EXPECT_DOUBLE_EQ(p.arithmetic_intensity(), 500.0);
  KernelProfile nomem;
  nomem.add_flops(arch::DType::kF64, 1.0);
  EXPECT_TRUE(std::isinf(nomem.arithmetic_intensity()));
}

}  // namespace
}  // namespace exa::sim
