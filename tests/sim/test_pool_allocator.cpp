#include "sim/pool_allocator.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace exa::sim {
namespace {

TEST(PoolAllocator, BasicAllocateFree) {
  PoolAllocator pool(1 << 20);
  const auto a = pool.allocate(1000);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a % 256, 0u);  // aligned
  EXPECT_EQ(pool.bytes_in_use(), 1024u);  // rounded to alignment
  pool.deallocate(*a);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  EXPECT_EQ(pool.free_blocks(), 1u);  // coalesced back to one block
}

TEST(PoolAllocator, ExhaustionReturnsNullopt) {
  PoolAllocator pool(4096, 256);
  const auto a = pool.allocate(4096);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(pool.allocate(1).has_value());
  pool.deallocate(*a);
  EXPECT_TRUE(pool.allocate(1).has_value());
}

TEST(PoolAllocator, FirstFitPicksLowestOffset) {
  PoolAllocator pool(1 << 16, 256);
  const auto a = pool.allocate(256);
  const auto b = pool.allocate(256);
  const auto c = pool.allocate(256);
  ASSERT_TRUE(a && b && c);
  pool.deallocate(*a);
  pool.deallocate(*c);
  const auto d = pool.allocate(256);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, *a);  // reused the earliest hole
}

TEST(PoolAllocator, CoalescesBothNeighbors) {
  PoolAllocator pool(1 << 16, 256);
  const auto a = pool.allocate(256);
  const auto b = pool.allocate(256);
  const auto c = pool.allocate(256);
  ASSERT_TRUE(a && b && c);
  pool.deallocate(*a);
  pool.deallocate(*c);  // c coalesces into the tail free block
  EXPECT_EQ(pool.free_blocks(), 2u);  // hole at a, merged c+tail
  pool.deallocate(*b);                // merges with both neighbors
  EXPECT_EQ(pool.free_blocks(), 1u);
  EXPECT_EQ(pool.largest_free_block(), pool.capacity());
}

TEST(PoolAllocator, DoubleFreeRejected) {
  PoolAllocator pool(1 << 16);
  const auto a = pool.allocate(512);
  ASSERT_TRUE(a.has_value());
  pool.deallocate(*a);
  EXPECT_THROW(pool.deallocate(*a), support::Error);
}

TEST(PoolAllocator, UnknownOffsetRejected) {
  PoolAllocator pool(1 << 16);
  EXPECT_THROW(pool.deallocate(12345), support::Error);
}

TEST(PoolAllocator, HighWaterTracksPeak) {
  PoolAllocator pool(1 << 16, 256);
  const auto a = pool.allocate(1024);
  const auto b = pool.allocate(2048);
  pool.deallocate(*a);
  EXPECT_EQ(pool.high_water(), 3072u);
  pool.deallocate(*b);
  EXPECT_EQ(pool.high_water(), 3072u);
}

TEST(PoolAllocator, FragmentationMetric) {
  PoolAllocator pool(1 << 16, 256);
  std::vector<std::uint64_t> offs;
  for (int i = 0; i < 8; ++i) {
    const auto o = pool.allocate(256);
    ASSERT_TRUE(o.has_value());
    offs.push_back(*o);
  }
  // Free every other block: fragmented free space.
  for (std::size_t i = 0; i < offs.size(); i += 2) pool.deallocate(offs[i]);
  EXPECT_GT(pool.fragmentation(), 0.0);
  for (std::size_t i = 1; i < offs.size(); i += 2) pool.deallocate(offs[i]);
  EXPECT_DOUBLE_EQ(pool.fragmentation(), 0.0);
}

TEST(PoolAllocator, AlignmentMustBePowerOfTwo) {
  EXPECT_THROW(PoolAllocator(1024, 100), support::Error);
  EXPECT_THROW(PoolAllocator(0), support::Error);
}

// Property test: random allocate/free sequences never corrupt accounting
// and always coalesce back to a single block when everything is freed.
class PoolAllocatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolAllocatorProperty, RandomChurnStaysConsistent) {
  support::Rng rng(GetParam());
  PoolAllocator pool(1 << 20, 64);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> live;  // offset,size
  std::uint64_t expected_in_use = 0;

  for (int step = 0; step < 2000; ++step) {
    const bool do_alloc = live.empty() || rng.bernoulli(0.55);
    if (do_alloc) {
      const std::uint64_t want = 1 + rng.uniform_u64(8192);
      const auto off = pool.allocate(want);
      if (off.has_value()) {
        const std::uint64_t rounded = (want + 63) & ~63ull;
        // No overlap with any live allocation.
        for (const auto& [o, s] : live) {
          EXPECT_TRUE(*off + rounded <= o || o + s <= *off);
        }
        live.emplace_back(*off, rounded);
        expected_in_use += rounded;
      }
    } else {
      const std::size_t pick = rng.uniform_u64(live.size());
      pool.deallocate(live[pick].first);
      expected_in_use -= live[pick].second;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(pool.bytes_in_use(), expected_in_use);
    ASSERT_EQ(pool.live_allocations(), live.size());
  }
  for (const auto& [o, s] : live) pool.deallocate(o);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  EXPECT_EQ(pool.free_blocks(), 1u);
  EXPECT_EQ(pool.largest_free_block(), pool.capacity());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolAllocatorProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace exa::sim
