#include "sim/node_sim.hpp"

#include <gtest/gtest.h>

#include "support/assert.hpp"

namespace exa::sim {
namespace {

TEST(NodeSim, FrontierNodeHasEightGcds) {
  NodeSim node(arch::machines::frontier());
  EXPECT_EQ(node.device_count(), 8);
}

TEST(NodeSim, SummitNodeHasSixGpus) {
  NodeSim node(arch::machines::summit());
  EXPECT_EQ(node.device_count(), 6);
}

TEST(NodeSim, CpuMachineRejected) {
  EXPECT_THROW(NodeSim(arch::machines::cori()), support::Error);
}

TEST(NodeSim, InModuleLinkFasterThanFabric) {
  // The two GCDs of one MI250X share the in-package Infinity Fabric;
  // GCDs of different modules talk over the node fabric.
  NodeSim node(arch::machines::frontier());
  const PeerLink same_module = node.link(0, 1);
  const PeerLink cross_module = node.link(0, 2);
  EXPECT_GT(same_module.bandwidth_bytes_per_s,
            2.0 * cross_module.bandwidth_bytes_per_s);
}

TEST(NodeSim, SummitLinksUniform) {
  NodeSim node(arch::machines::summit());
  EXPECT_DOUBLE_EQ(node.link(0, 1).bandwidth_bytes_per_s,
                   node.link(0, 5).bandwidth_bytes_per_s);
}

TEST(NodeSim, SelfLinkRejected) {
  NodeSim node(arch::machines::frontier());
  EXPECT_THROW((void)node.link(3, 3), support::Error);
}

TEST(NodeSim, PeerTransferTimesMatchLink) {
  NodeSim node(arch::machines::frontier());
  const double bytes = 2.0e9;
  const SimTime t_same = node.peer_transfer(0, 1, bytes);
  EXPECT_NEAR(t_same, bytes / 200e9, bytes / 200e9 * 0.05);
  NodeSim node2(arch::machines::frontier());
  const SimTime t_cross = node2.peer_transfer(0, 2, bytes);
  EXPECT_NEAR(t_cross, bytes / 50e9, bytes / 50e9 * 0.05);
  EXPECT_GT(t_cross, 3.0 * t_same);
}

TEST(NodeSim, PeerTransferOccupiesBothStreams) {
  NodeSim node(arch::machines::frontier());
  const SimTime done = node.peer_transfer(0, 3, 1.0e9);
  EXPECT_GE(node.device(0).stream_ready(0), done);
  EXPECT_GE(node.device(3).stream_ready(0), done);
  // An uninvolved device is untouched.
  EXPECT_LT(node.device(5).stream_ready(0), done);
}

TEST(NodeSim, TransfersOnSameStreamSerialize) {
  NodeSim node(arch::machines::frontier());
  const SimTime first = node.peer_transfer(0, 1, 1.0e9);
  const SimTime second = node.peer_transfer(0, 1, 1.0e9);
  EXPECT_GE(second, 2.0 * first * 0.95);
}

TEST(NodeSim, SynchronizeAlignsClocks) {
  NodeSim node(arch::machines::frontier());
  node.device(2).host_advance(0.5);
  node.peer_transfer(0, 1, 1.0e9);
  node.synchronize_node();
  for (int i = 0; i < node.device_count(); ++i) {
    EXPECT_DOUBLE_EQ(node.device(i).host_now(), node.node_now());
  }
  EXPECT_GE(node.node_now(), 0.5);
}

TEST(NodeSim, RingExchangeAcrossTheNode) {
  // An 8-GCD ring all-gather: neighbors (2i,2i+1) ride the fast link.
  NodeSim node(arch::machines::frontier());
  const double chunk = 256.0 * 1024 * 1024;
  for (int d = 0; d < node.device_count(); ++d) {
    node.peer_transfer(d, (d + 1) % node.device_count(), chunk);
  }
  node.synchronize_node();
  // Bounded by the slowest (fabric) hop, not the sum of all hops... the
  // per-pair serialization through shared streams still bounds below.
  EXPECT_GT(node.node_now(), chunk / 50e9 * 0.9);
  EXPECT_LT(node.node_now(), 8.0 * chunk / 50e9);
}

}  // namespace
}  // namespace exa::sim
