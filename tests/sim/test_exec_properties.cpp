/// Property sweeps over the execution model: invariants that must hold for
/// every architecture and every profile shape, not just the calibrated
/// points. These guard against regressions when tuning tables change.

#include <gtest/gtest.h>

#include "sim/exec_model.hpp"

namespace exa::sim {
namespace {

std::vector<arch::GpuArch> all_gpus() {
  return {arch::v100(), arch::mi60(), arch::mi100(), arch::mi250x_gcd()};
}

class PerArch : public ::testing::TestWithParam<int> {
 protected:
  arch::GpuArch gpu() const {
    return all_gpus()[static_cast<std::size_t>(GetParam())];
  }
};

KernelProfile base() {
  KernelProfile p;
  p.add_flops(arch::DType::kF64, 1e11);
  p.bytes_read = 1e8;
  p.bytes_written = 1e8;
  p.registers_per_thread = 64;
  return p;
}

LaunchConfig grid() { return LaunchConfig{1u << 15, 256}; }

TEST_P(PerArch, TimeMonotoneInFlops) {
  double prev = 0.0;
  for (double flops = 1e9; flops <= 1e13; flops *= 10.0) {
    KernelProfile p = base();
    p.work[0].flops = flops;
    const double t = kernel_timing(gpu(), p, grid()).total_s;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST_P(PerArch, TimeMonotoneInBytes) {
  double prev = 0.0;
  for (double bytes = 1e6; bytes <= 1e11; bytes *= 10.0) {
    KernelProfile p = base();
    p.bytes_read = bytes;
    const double t = kernel_timing(gpu(), p, grid()).total_s;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST_P(PerArch, TimeNonDecreasingInRegisterPressure) {
  double prev = 0.0;
  for (int regs = 16; regs <= 640; regs *= 2) {
    KernelProfile p = base();
    p.registers_per_thread = regs;
    const double t = kernel_timing(gpu(), p, grid()).total_s;
    EXPECT_GE(t, prev * 0.999) << "regs " << regs;
    prev = t;
  }
}

TEST_P(PerArch, DivergenceNeverSpeedsUp) {
  const KernelProfile convergent = base();
  const double t0 = kernel_timing(gpu(), convergent, grid()).total_s;
  for (double run = 64.0; run >= 1.0; run /= 2.0) {
    KernelProfile p = base();
    p.coherent_run_length = run;
    EXPECT_GE(kernel_timing(gpu(), p, grid()).total_s, t0 * 0.999);
  }
}

TEST_P(PerArch, TimeAtLeastLaunchLatency) {
  KernelProfile tiny;
  tiny.add_flops(arch::DType::kF64, 1.0);
  tiny.bytes_read = 8.0;
  const double t = kernel_timing(gpu(), tiny, LaunchConfig{1, 64}).total_s;
  EXPECT_GE(t, gpu().kernel_launch_latency_s);
}

TEST_P(PerArch, NeverExceedsPeak) {
  // Sustained rate can never beat the architecture peak, whatever the
  // profile claims about its own efficiency.
  KernelProfile p;
  p.add_flops(arch::DType::kF64, 1e12);
  p.compute_efficiency = 1.0;
  p.memory_efficiency = 1.0;
  const KernelTiming t = kernel_timing(gpu(), p, grid());
  EXPECT_LE(t.achieved_flops(1e12),
            gpu().peak_flops(arch::DType::kF64) * 1.0001);
}

TEST_P(PerArch, WiderGridNeverSlower) {
  KernelProfile p = base();
  double prev = 1e300;
  for (std::uint64_t blocks = 1; blocks <= (1u << 16); blocks *= 16) {
    const double t =
        kernel_timing(gpu(), p, LaunchConfig{blocks, 256}).total_s;
    EXPECT_LE(t, prev * 1.001) << "blocks " << blocks;
    prev = t;
  }
}

TEST_P(PerArch, SpillTrafficNonNegativeAndBounded) {
  for (int regs : {32, 255, 256, 400, 512, 700}) {
    KernelProfile p = base();
    p.registers_per_thread = regs;
    const KernelTiming t = kernel_timing(gpu(), p, grid());
    EXPECT_GE(t.spill_bytes, 0.0);
    if (regs <= gpu().max_registers_per_thread) {
      EXPECT_DOUBLE_EQ(t.spill_bytes, 0.0);
    } else {
      EXPECT_GT(t.spill_bytes, 0.0);
    }
  }
}

TEST_P(PerArch, BreakdownIsConsistent) {
  const KernelProfile p = base();
  const KernelTiming t = kernel_timing(gpu(), p, grid());
  EXPECT_DOUBLE_EQ(t.total_s,
                   t.launch_s + std::max(t.compute_s, t.memory_s));
  EXPECT_GT(t.compute_s, 0.0);
  EXPECT_GT(t.memory_s, 0.0);
  EXPECT_GT(t.occupancy.fraction, 0.0);
  EXPECT_LE(t.occupancy.fraction, 1.0);
  EXPECT_GT(t.active_lane_fraction, 0.0);
  EXPECT_LE(t.active_lane_fraction, 1.0);
}

std::string gpu_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "V100";
    case 1: return "MI60";
    case 2: return "MI100";
    default: return "MI250X";
  }
}

INSTANTIATE_TEST_SUITE_P(Gpus, PerArch, ::testing::Values(0, 1, 2, 3),
                         gpu_name);

}  // namespace
}  // namespace exa::sim
