# Runs `<BENCH> --help` and asserts the usage text names every flag
# bench::Session accepts (plus any bench-specific EXTRA_FLAGS). A flag
# added to the parser without a usage line fails here, not in a user's
# shell. Invoked as:
#   cmake -DBENCH=<binary> [-DEXTRA_FLAGS=--foo=;--bar=] -P bench_help_smoke.cmake
if(NOT DEFINED BENCH)
  message(FATAL_ERROR "bench_help_smoke.cmake needs -DBENCH=<binary>")
endif()

execute_process(COMMAND ${BENCH} --help
  OUTPUT_VARIABLE help_text
  ERROR_VARIABLE help_err
  RESULT_VARIABLE help_rc)
if(NOT help_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} --help exited ${help_rc}: ${help_err}")
endif()

set(expected_flags
  --trace= --profile-jsonl= --csv= --seed= --emit-golden= --check-golden=
  --io= --io-trace= --help)
list(APPEND expected_flags ${EXTRA_FLAGS})
foreach(flag ${expected_flags})
  string(FIND "${help_text}" "${flag}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "${BENCH} --help does not document ${flag}; usage was:\n${help_text}")
  endif()
endforeach()
