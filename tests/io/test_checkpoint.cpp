#include "io/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "io/dxt.hpp"
#include "io/file_system.hpp"
#include "io/io_model.hpp"
#include "net/fabric.hpp"
#include "net/rank_sim.hpp"
#include "support/assert.hpp"
#include "trace/chrome_export.hpp"
#include "trace/tracer.hpp"

namespace exa::io {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "exaready_io_" + name;
}

TEST(Checkpoint, QuietConfigCostsExactlyZero) {
  EXPECT_EQ(checkpoint_time(IoConfig::quiet_config(), 512, 1.0e9), 0.0);
  FileSystem fs;
  const CheckpointStats stats = checkpoint(fs, 64, 1.0e9, 2.5);
  EXPECT_EQ(stats.begin_s, 2.5);
  EXPECT_EQ(stats.end_s, 2.5);
  EXPECT_EQ(stats.makespan_s(), 0.0);
}

TEST(Checkpoint, LustreConfigCostsAggregateBandwidthTime) {
  const IoConfig lustre = IoConfig::lustre();
  const int ranks = 128;
  const double bytes = 256.0 * 1024 * 1024;
  const double t = checkpoint_time(lustre, ranks, bytes);
  // The pool serves ranks * bytes at ost_count * ost_bandwidth once every
  // OST is fed; metadata adds a little on top.
  const double backbone = ranks * bytes /
                          (lustre.pfs.ost_count *
                           lustre.pfs.ost_bandwidth_bytes_per_s);
  EXPECT_GT(t, backbone);
  EXPECT_LT(t, backbone * 1.2);
}

TEST(Checkpoint, MoreRanksNeverFinishEarlier) {
  const IoConfig lustre = IoConfig::lustre();
  const double bytes = 64.0 * 1024 * 1024;
  double prev = 0.0;
  for (const int ranks : {32, 64, 128, 256}) {
    const double t = checkpoint_time(lustre, ranks, bytes);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Checkpoint, RankSimCouplingAdvancesRankClocks) {
  const arch::Machine frontier = arch::machines::frontier();
  net::Fabric fabric(frontier, 8, {});
  net::RankSim sim(fabric, 8);
  // Stagger the ranks so checkpoint starts are unequal.
  for (int r = 0; r < sim.ranks(); ++r) sim.compute(r, 0.01 * r);
  FileSystem fs(IoConfig::lustre());
  const CheckpointStats stats = checkpoint(fs, sim, 8.0 * 1024 * 1024);
  EXPECT_EQ(stats.ranks, sim.ranks());
  EXPECT_DOUBLE_EQ(stats.begin_s, 0.0);  // rank 0 never computed
  for (int r = 0; r < sim.ranks(); ++r) {
    EXPECT_GT(sim.now(r), 0.01 * r);  // every clock moved past its start
    EXPECT_LE(sim.now(r), stats.end_s);
  }
  EXPECT_DOUBLE_EQ(sim.makespan(), stats.end_s);
}

TEST(Checkpoint, RankSimCouplingIsFreeOnQuietFilesystem) {
  const arch::Machine frontier = arch::machines::frontier();
  net::Fabric fabric(frontier, 8, {});
  net::RankSim sim(fabric, 4);
  for (int r = 0; r < sim.ranks(); ++r) sim.compute(r, 0.005 * (r + 1));
  const double makespan_before = sim.makespan();
  FileSystem fs;  // quiet
  checkpoint(fs, sim, 1.0e9);
  EXPECT_EQ(sim.makespan(), makespan_before);
}

TEST(Dxt, JsonlRoundTripsAccessRecords) {
  FileSystem fs(IoConfig::lustre());
  const OpenResult o = fs.open(5, "ckpt/r5", 0.0);
  fs.write(o.handle, 0.0, 3.0 * 1024 * 1024, o.ready_s);
  fs.close(o.handle, 1.0);
  const std::string path = temp_path("dxt.jsonl");
  write_dxt_jsonl(path, fs.records());
  const auto loaded = load_dxt_jsonl(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), fs.records().size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const AccessRecord& a = fs.records()[i];
    const AccessRecord& b = loaded[i];
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.file, b.file);
    EXPECT_EQ(a.ost, b.ost);
    EXPECT_DOUBLE_EQ(a.offset, b.offset);
    EXPECT_DOUBLE_EQ(a.bytes, b.bytes);
    EXPECT_DOUBLE_EQ(a.start_s, b.start_s);
    EXPECT_DOUBLE_EQ(a.end_s, b.end_s);
  }
}

TEST(Dxt, GlobalLogCapturesAcrossFilesystems) {
  auto& log = DxtLog::instance();
  log.enable();
  {
    FileSystem a(IoConfig::lustre());
    const OpenResult o = a.open(0, "a", 0.0);
    a.close(o.handle, 0.0);
    FileSystem b(IoConfig::lustre());
    const OpenResult o2 = b.open(1, "b", 0.0);
    b.close(o2.handle, 0.0);
  }
  const auto records = log.snapshot();
  log.disable();
  log.clear();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].file, "a");
  EXPECT_EQ(records[2].file, "b");
}

TEST(Dxt, OpNamesRoundTrip) {
  for (const auto op :
       {AccessRecord::Op::kOpen, AccessRecord::Op::kWrite,
        AccessRecord::Op::kClose, AccessRecord::Op::kAbsorb,
        AccessRecord::Op::kDrain}) {
    EXPECT_EQ(op_from_string(to_string(op)), op);
  }
  EXPECT_THROW((void)op_from_string("read"), support::Error);
}

TEST(ChromeExport, CheckpointEmitsIoLanes) {
  auto& tracer = trace::Tracer::instance();
  tracer.enable();
  {
    // Plain Lustre produces OST write lanes; the burst-buffer config
    // absorbs every byte node-locally, so it produces the bb lanes.
    FileSystem pfs(IoConfig::lustre());
    checkpoint(pfs, 16, 4.0 * 1024 * 1024);
    FileSystem bb(IoConfig::lustre_with_burst_buffer());
    checkpoint(bb, 16, 4.0 * 1024 * 1024);
  }
  const std::string json = trace::chrome_trace_json(tracer.snapshot());
  tracer.disable();
  tracer.clear();
  // The exporter splits track "io/ost0" into process "io" (process_name
  // metadata) and thread "ost0" (thread_name metadata).
  EXPECT_NE(json.find("\"name\":\"io\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ost0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bb0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mds\""), std::string::npos);
}

}  // namespace
}  // namespace exa::io
