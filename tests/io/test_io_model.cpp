#include "io/io_model.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "io/file_system.hpp"
#include "support/assert.hpp"

namespace exa::io {
namespace {

TEST(IoConfig, DefaultIsQuietAndValid) {
  const IoConfig config;
  EXPECT_NO_THROW(config.validate());
  EXPECT_TRUE(config.quiet());
  EXPECT_TRUE(IoConfig::quiet_config().quiet());
}

TEST(IoConfig, CalibratedPresetsAreValidAndLoud) {
  for (const IoConfig& config :
       {IoConfig::lustre(), IoConfig::lustre_with_burst_buffer()}) {
    EXPECT_NO_THROW(config.validate());
    EXPECT_FALSE(config.quiet());
  }
  EXPECT_EQ(IoConfig::lustre_with_burst_buffer().burst_buffer.policy,
            BurstBufferPolicy::kWriteThrough);
}

TEST(IoConfig, PresetNamesRoundTrip) {
  EXPECT_TRUE(IoConfig::preset("quiet").quiet());
  EXPECT_EQ(IoConfig::preset("lustre").pfs.ost_count,
            IoConfig::lustre().pfs.ost_count);
  EXPECT_EQ(IoConfig::preset("bb").burst_buffer.policy,
            BurstBufferPolicy::kWriteThrough);
  EXPECT_THROW((void)IoConfig::preset("gpfs"), support::Error);
  EXPECT_THROW((void)IoConfig::preset(""), support::Error);
}

TEST(IoConfigValidation, RejectsNonPositiveOstCount) {
  IoConfig config;
  config.pfs.ost_count = 0;
  EXPECT_THROW(config.validate(), support::Error);
  config.pfs.ost_count = -4;
  EXPECT_THROW(config.validate(), support::Error);
}

TEST(IoConfigValidation, RejectsStripeCountOutsideOstRange) {
  IoConfig config;
  config.pfs.stripe_count = 0;
  EXPECT_THROW(config.validate(), support::Error);
  config.pfs.stripe_count = config.pfs.ost_count + 1;
  EXPECT_THROW(config.validate(), support::Error);
  config.pfs.stripe_count = config.pfs.ost_count;  // full-width is legal
  EXPECT_NO_THROW(config.validate());
}

TEST(IoConfigValidation, RejectsNonPositiveStripeSizeAndBandwidth) {
  IoConfig config;
  config.pfs.stripe_size_bytes = 0.0;
  EXPECT_THROW(config.validate(), support::Error);
  config = IoConfig{};
  config.pfs.ost_bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW(config.validate(), support::Error);
  config.pfs.ost_bandwidth_bytes_per_s = -1.0;
  EXPECT_THROW(config.validate(), support::Error);
}

TEST(IoConfigValidation, RejectsNegativeMetadataCost) {
  IoConfig config;
  config.pfs.metadata_op_s = -1e-6;
  EXPECT_THROW(config.validate(), support::Error);
}

TEST(IoConfigValidation, RejectsBadBurstBufferFieldsOnlyWhenEnabled) {
  IoConfig config;
  // With the tier disabled its knobs are dormant and unchecked.
  config.burst_buffer.capacity_bytes = -1.0;
  EXPECT_NO_THROW(config.validate());
  config.burst_buffer.policy = BurstBufferPolicy::kWriteThrough;
  EXPECT_THROW(config.validate(), support::Error);
  config.burst_buffer.capacity_bytes = 1e9;
  config.burst_buffer.absorb_bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW(config.validate(), support::Error);
  config.burst_buffer.absorb_bandwidth_bytes_per_s = 1e9;
  config.burst_buffer.drain_bandwidth_bytes_per_s = -2.0;
  EXPECT_THROW(config.validate(), support::Error);
  config.burst_buffer.drain_bandwidth_bytes_per_s = 1e9;
  EXPECT_NO_THROW(config.validate());
}

TEST(IoConfigValidation, RejectsNonPositiveRanksPerNode) {
  IoConfig config;
  config.ranks_per_node = 0;
  EXPECT_THROW(config.validate(), support::Error);
}

TEST(IoConfigValidation, FileSystemConstructorValidates) {
  IoConfig config;
  config.pfs.ost_count = 0;
  EXPECT_THROW(FileSystem fs(config), support::Error);
}

}  // namespace
}  // namespace exa::io
