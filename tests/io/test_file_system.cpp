#include "io/file_system.hpp"

#include <gtest/gtest.h>

#include <string>

#include "io/io_model.hpp"
#include "support/assert.hpp"
#include "trace/tracer.hpp"

namespace exa::io {
namespace {

/// 4 OSTs x 1 GB/s, 2 x 1 MiB stripes, free metadata: small enough to
/// reason about exact chunk placement and cursor times.
IoConfig tiny_pfs() {
  IoConfig config;
  config.pfs.ost_count = 4;
  config.pfs.ost_bandwidth_bytes_per_s = 1.0e9;
  config.pfs.stripe_count = 2;
  config.pfs.stripe_size_bytes = 1.0 * 1024 * 1024;
  config.pfs.metadata_op_s = 0.0;
  return config;
}

constexpr double kMiB = 1024.0 * 1024;

TEST(FileSystem, QuietConfigAddsExactlyZeroTime) {
  FileSystem fs;  // default = quiet
  const OpenResult o = fs.open(0, "f", 1.25);
  EXPECT_EQ(o.ready_s, 1.25);
  EXPECT_EQ(fs.write(o.handle, 0.0, 1e12, o.ready_s), 1.25);
  EXPECT_EQ(fs.close(o.handle, 1.25), 1.25);
  // A later-starting op must not delay an earlier one through the cursors.
  const OpenResult o2 = fs.open(1, "g", 0.5);
  EXPECT_EQ(fs.write(o2.handle, 0.0, 1e12, 0.5), 0.5);
}

TEST(FileSystem, StripesRoundRobinFromFileFirstOst) {
  FileSystem fs(tiny_pfs());
  // File 0 starts at OST 0 and stripes over {0, 1}.
  const OpenResult o = fs.open(0, "f", 0.0);
  fs.write(o.handle, 0.0, 4.0 * kMiB, 0.0);
  EXPECT_EQ(fs.ost_bytes(0), 2.0 * kMiB);
  EXPECT_EQ(fs.ost_bytes(1), 2.0 * kMiB);
  EXPECT_EQ(fs.ost_bytes(2), 0.0);
  // File 1 starts at OST 1 and stripes over {1, 2}.
  const OpenResult o2 = fs.open(1, "g", 0.0);
  fs.write(o2.handle, 0.0, 2.0 * kMiB, 0.0);
  EXPECT_EQ(fs.ost_bytes(1), 3.0 * kMiB);
  EXPECT_EQ(fs.ost_bytes(2), 1.0 * kMiB);
}

TEST(FileSystem, WriteTimePipelinesAcrossStripedOsts) {
  FileSystem fs(tiny_pfs());
  const OpenResult o = fs.open(0, "f", 0.0);
  // 8 MiB over 2 OSTs at 1 GB/s: 4 MiB per OST in parallel.
  const double end = fs.write(o.handle, 0.0, 8.0 * kMiB, 0.0);
  EXPECT_DOUBLE_EQ(end, 4.0 * kMiB / 1.0e9);
  EXPECT_DOUBLE_EQ(fs.ost_busy_until(0), end);
  EXPECT_DOUBLE_EQ(fs.ost_busy_until(1), end);
}

TEST(FileSystem, SharedOstContentionSerializesWriters) {
  FileSystem fs(tiny_pfs());
  const OpenResult a = fs.open(0, "a", 0.0);
  const OpenResult b = fs.open(4, "b", 0.0);  // file id 1: OSTs {1, 2}
  const OpenResult c = fs.open(8, "c", 0.0);  // file id 2: OSTs {2, 3}
  const double t_a = fs.write(a.handle, 0.0, 4.0 * kMiB, 0.0);
  // b shares OST 1 with a: its chunks there queue behind a's.
  const double t_b = fs.write(b.handle, 0.0, 4.0 * kMiB, 0.0);
  EXPECT_GT(t_b, t_a);
  // c's OSTs {2, 3} only carry b's OST-2 chunks; partial overlap.
  const double t_c = fs.write(c.handle, 0.0, 4.0 * kMiB, 0.0);
  EXPECT_GT(t_c, t_a);
}

TEST(FileSystem, MetadataServerSerializesOpens) {
  IoConfig config = tiny_pfs();
  config.pfs.metadata_op_s = 1.0e-3;
  FileSystem fs(config);
  const OpenResult first = fs.open(0, "a", 0.0);
  const OpenResult second = fs.open(1, "b", 0.0);
  EXPECT_DOUBLE_EQ(first.ready_s, 1.0e-3);
  EXPECT_DOUBLE_EQ(second.ready_s, 2.0e-3);  // queued behind the first
  EXPECT_DOUBLE_EQ(fs.close(first.handle, first.ready_s), 3.0e-3);
}

TEST(FileSystem, ZeroByteWritesAreFree) {
  FileSystem fs(tiny_pfs());
  const OpenResult o = fs.open(0, "f", 0.0);
  EXPECT_EQ(fs.write(o.handle, 0.0, 0.0, 0.75), 0.75);
  EXPECT_EQ(fs.bytes_written(), 0.0);
  EXPECT_EQ(fs.bytes_landed(), 0.0);
}

TEST(FileSystem, RejectsBadHandlesAndArguments) {
  FileSystem fs(tiny_pfs());
  EXPECT_THROW(fs.write(FileHandle{}, 0.0, 1.0, 0.0), support::Error);
  EXPECT_THROW(fs.write(FileHandle{7}, 0.0, 1.0, 0.0), support::Error);
  const OpenResult o = fs.open(0, "f", 0.0);
  EXPECT_THROW(fs.write(o.handle, -1.0, 1.0, 0.0), support::Error);
  EXPECT_THROW(fs.write(o.handle, 0.0, -1.0, 0.0), support::Error);
  EXPECT_THROW((void)fs.open(-1, "g", 0.0), support::Error);
  fs.close(o.handle, 0.0);
  EXPECT_THROW(fs.write(o.handle, 0.0, 1.0, 0.0), support::Error);  // closed
}

IoConfig tiny_bb(BurstBufferPolicy policy) {
  IoConfig config = tiny_pfs();
  config.burst_buffer.policy = policy;
  config.burst_buffer.capacity_bytes = 8.0 * kMiB;
  config.burst_buffer.absorb_bandwidth_bytes_per_s = 2.0e9;
  config.burst_buffer.drain_bandwidth_bytes_per_s = 1.0e9;
  config.ranks_per_node = 2;
  return config;
}

TEST(FileSystem, BurstBufferAbsorbsAtNodeBandwidth) {
  FileSystem fs(tiny_bb(BurstBufferPolicy::kWriteThrough));
  const OpenResult o = fs.open(0, "f", 0.0);
  const double end = fs.write(o.handle, 0.0, 4.0 * kMiB, 0.0);
  EXPECT_DOUBLE_EQ(end, 4.0 * kMiB / 2.0e9);  // absorb, not PFS, pace
  EXPECT_EQ(fs.bytes_resident(), 4.0 * kMiB);
  EXPECT_EQ(fs.bytes_landed(), 0.0);  // drain still in flight
  // Ranks 0 and 1 share node 0's absorb pipe: rank 1 queues behind.
  const OpenResult o2 = fs.open(1, "g", 0.0);
  EXPECT_DOUBLE_EQ(fs.write(o2.handle, 0.0, 4.0 * kMiB, 0.0), 2.0 * end);
  // Rank 2 lives on node 1 and absorbs in parallel.
  const OpenResult o3 = fs.open(2, "h", 0.0);
  EXPECT_DOUBLE_EQ(fs.write(o3.handle, 0.0, 4.0 * kMiB, 0.0), end);
}

TEST(FileSystem, WriteThroughDrainsRetireToOsts) {
  FileSystem fs(tiny_bb(BurstBufferPolicy::kWriteThrough));
  const OpenResult o = fs.open(0, "f", 0.0);
  fs.write(o.handle, 0.0, 4.0 * kMiB, 0.0);
  // Drain of 4 MiB at 1 GB/s completes at absorb end + 4.194 ms.
  const double drained = fs.drain_all(1.0);
  EXPECT_LE(drained, 1.0);  // long finished by then
  EXPECT_EQ(fs.bytes_resident(), 0.0);
  EXPECT_EQ(fs.bytes_landed(), 4.0 * kMiB);
  EXPECT_EQ(fs.ost_bytes(0) + fs.ost_bytes(1), 4.0 * kMiB);
}

TEST(FileSystem, WriteBackHoldsBytesUntilFlush) {
  FileSystem fs(tiny_bb(BurstBufferPolicy::kWriteBack));
  const OpenResult o = fs.open(0, "f", 0.0);
  const double end = fs.write(o.handle, 0.0, 4.0 * kMiB, 0.0);
  fs.settle(end + 10.0);  // no drain scheduled: nothing to retire
  EXPECT_EQ(fs.bytes_resident(), 4.0 * kMiB);
  EXPECT_EQ(fs.bytes_landed(), 0.0);
  const double flushed = fs.flush(0, end);
  EXPECT_DOUBLE_EQ(flushed, end + 4.0 * kMiB / 1.0e9);
  EXPECT_EQ(fs.bytes_resident(), 0.0);
  EXPECT_EQ(fs.bytes_landed(), 4.0 * kMiB);
}

TEST(FileSystem, CapacityOverflowSpillsToPfs) {
  FileSystem fs(tiny_bb(BurstBufferPolicy::kWriteThrough));
  const OpenResult o = fs.open(0, "f", 0.0);
  // 12 MiB against an 8 MiB buffer: 4 MiB spills synchronously.
  const double end = fs.write(o.handle, 0.0, 12.0 * kMiB, 0.0);
  EXPECT_EQ(fs.bytes_resident(), 8.0 * kMiB);
  EXPECT_EQ(fs.bytes_landed(), 4.0 * kMiB);  // the spill, already on OSTs
  // Completion covers both the absorb and the spilled PFS write.
  EXPECT_GE(end, 8.0 * kMiB / 2.0e9);
  fs.drain_all(end + 1.0);
  EXPECT_EQ(fs.bytes_landed(), 12.0 * kMiB);
  EXPECT_EQ(fs.bytes_written(), 12.0 * kMiB);
}

TEST(FileSystem, RecordsEveryAccessInIssueOrder) {
  FileSystem fs(tiny_pfs());
  const OpenResult o = fs.open(3, "dir/f", 0.0);
  fs.write(o.handle, 0.0, 2.0 * kMiB, o.ready_s);
  fs.close(o.handle, 1.0);
  const auto& recs = fs.records();
  // open + one aggregated write extent per touched OST (2) + close.
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[0].op, AccessRecord::Op::kOpen);
  EXPECT_EQ(recs[1].op, AccessRecord::Op::kWrite);
  EXPECT_EQ(recs[2].op, AccessRecord::Op::kWrite);
  EXPECT_EQ(recs[3].op, AccessRecord::Op::kClose);
  EXPECT_EQ(recs[1].rank, 3);
  EXPECT_EQ(recs[1].file, "dir/f");
  EXPECT_EQ(recs[1].bytes + recs[2].bytes, 2.0 * kMiB);
  EXPECT_EQ(fs.records_dropped(), 0u);
}

TEST(FileSystem, RecordCapCountsDrops) {
  IoConfig config = tiny_pfs();
  config.max_records = 2;
  FileSystem fs(config);
  const OpenResult o = fs.open(0, "f", 0.0);
  fs.write(o.handle, 0.0, 2.0 * kMiB, 0.0);
  fs.close(o.handle, 1.0);
  EXPECT_EQ(fs.records().size(), 2u);
  EXPECT_EQ(fs.records_dropped(), 2u);
}

TEST(FileSystem, TracerGetsOstAndMdsLanes) {
  auto& tracer = trace::Tracer::instance();
  tracer.enable();
  {
    IoConfig config = tiny_pfs();
    config.pfs.metadata_op_s = 1.0e-6;
    FileSystem fs(config);
    const OpenResult o = fs.open(0, "f", 0.0);
    fs.write(o.handle, 0.0, 2.0 * kMiB, o.ready_s);
    fs.close(o.handle, 1.0);
  }
  const auto events = tracer.snapshot();
  tracer.disable();
  tracer.clear();
  bool saw_ost = false;
  bool saw_mds = false;
  for (const auto& e : events) {
    if (e.track == "io/ost0") saw_ost = true;
    if (e.track == "io/mds") saw_mds = true;
  }
  EXPECT_TRUE(saw_ost);
  EXPECT_TRUE(saw_mds);
}

TEST(FileSystem, ConservationAcrossMixedTiers) {
  FileSystem fs(tiny_bb(BurstBufferPolicy::kWriteThrough));
  double issued = 0.0;
  double clock = 0.0;
  for (int rank = 0; rank < 6; ++rank) {
    const OpenResult o =
        fs.open(rank, "r" + std::to_string(rank), clock);
    const double bytes = (rank + 1) * kMiB;
    clock = fs.write(o.handle, 0.0, bytes, o.ready_s);
    fs.close(o.handle, clock);
    issued += bytes;
  }
  EXPECT_EQ(fs.bytes_written(), issued);
  EXPECT_DOUBLE_EQ(
      fs.bytes_written(),
      fs.bytes_landed() + fs.bytes_resident());
  fs.drain_all(clock);
  EXPECT_EQ(fs.bytes_resident(), 0.0);
  EXPECT_DOUBLE_EQ(fs.bytes_landed(), issued);
}

}  // namespace
}  // namespace exa::io
