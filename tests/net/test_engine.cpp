#include "net/engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "arch/machine.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace exa::net {
namespace {

Fabric engine_fabric(bool congestion, bool faults) {
  FabricConfig config;
  config.congestion = congestion;
  if (faults) {
    config.faults.drop_probability = 0.05;
    config.faults.straggler_fraction = 0.1;
    config.faults.straggler_slowdown = 1.7;
    config.faults.degraded_link_fraction = 0.1;
  }
  return Fabric(arch::machines::frontier(), 8, config);
}

/// A deterministic mixed workload: jittered compute, a shifting ring of
/// sends/recvs (several distances, so channels criss-cross shards), and a
/// few long-range hops to stress FIFO clamping under retries.
std::vector<std::vector<RankOp>> ring_programs(int ranks, int rounds,
                                               std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<std::vector<RankOp>> programs(
      static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    auto& prog = programs[static_cast<std::size_t>(r)];
    for (int round = 0; round < rounds; ++round) {
      const int shift = 1 + (round % 5) * 3;
      const int dst = (r + shift) % ranks;
      const int src = (r - shift % ranks + ranks) % ranks;
      prog.push_back(RankOp::compute(1.0e-6 * (1.0 + 0.2 * rng.uniform())));
      prog.push_back(
          RankOp::send(dst, 1024.0 * (1 + round % 7), /*tag=*/round));
      prog.push_back(RankOp::recv(src, /*tag=*/round));
    }
  }
  return programs;
}

void expect_same(const EngineResult& serial, const EngineResult& parallel) {
  ASSERT_TRUE(serial.same_outcome(parallel))
      << "parallel engine diverged: clock_sum serial=" << serial.clock_sum()
      << " parallel=" << parallel.clock_sum()
      << " events serial=" << serial.events
      << " parallel=" << parallel.events;
}

TEST(EventEngine, ParallelMatchesSerialAnalytic) {
  Fabric fabric = engine_fabric(false, false);
  EventEngine engine(fabric, ring_programs(96, 6, 0xE1));
  const EngineResult serial = engine.run_serial();
  const EngineResult parallel = engine.run_parallel();
  expect_same(serial, parallel);
  EXPECT_EQ(serial.events, 96u * 6u * 3u);
  EXPECT_GT(parallel.windows, 0);
}

TEST(EventEngine, ParallelMatchesSerialCongested) {
  Fabric fabric = engine_fabric(true, false);
  EventEngine engine(fabric, ring_programs(128, 5, 0xE2));
  expect_same(engine.run_serial(), engine.run_parallel());
}

TEST(EventEngine, ParallelMatchesSerialWithFaults) {
  Fabric fabric = engine_fabric(true, true);
  EventEngine engine(fabric, ring_programs(128, 5, 0xE3));
  const EngineResult serial = engine.run_serial();
  const EngineResult parallel = engine.run_parallel();
  expect_same(serial, parallel);
  // The drop layer must actually be firing for this test to mean much.
  EXPECT_GT(serial.total_retries(), 0);
}

TEST(EventEngine, ExplicitPoolSizesAgree) {
  Fabric fabric = engine_fabric(true, true);
  EventEngine engine(fabric, ring_programs(96, 4, 0xE4));
  const EngineResult serial = engine.run_serial();
  for (const std::size_t threads : {1u, 4u, 16u}) {
    support::ThreadPool pool(threads);
    const EngineResult parallel = engine.run_parallel(&pool);
    expect_same(serial, parallel);
  }
}

TEST(EventEngine, RunsAreRepeatable) {
  Fabric fabric = engine_fabric(true, true);
  EventEngine engine(fabric, ring_programs(64, 4, 0xE5));
  const EngineResult first = engine.run_parallel();
  const EngineResult second = engine.run_parallel();
  expect_same(first, second);
}

TEST(EventEngine, FifoChannelOrderPreserved) {
  Fabric fabric = engine_fabric(true, true);
  // One sender hammers one receiver on a single tag: deliveries must be
  // nondecreasing (a retried message delays the channel, it is never
  // overtaken), and the k-th recv must match the k-th send.
  std::vector<std::vector<RankOp>> programs(2);
  for (int i = 0; i < 32; ++i) {
    programs[0].push_back(RankOp::send(1, 4096.0, /*tag=*/7));
  }
  for (int i = 0; i < 32; ++i) {
    programs[1].push_back(RankOp::recv(0, /*tag=*/7));
  }
  EventEngine engine(fabric, std::move(programs));
  const EngineResult result = engine.run_parallel();
  ASSERT_EQ(result.messages.size(), 32u);
  for (std::size_t i = 1; i < result.messages.size(); ++i) {
    EXPECT_GE(result.messages[i].delivered_s,
              result.messages[i - 1].delivered_s);
  }
  EXPECT_EQ(result.clocks[1], result.messages.back().delivered_s);
}

TEST(EventEngine, BlockedChainCrossesShardBoundaries) {
  Fabric fabric = engine_fabric(true, false);
  // A strict dependency chain 0 -> 1 -> ... -> n-1: every rank past 0 must
  // block, and windows must keep waking exactly one rank at a time.
  const int n = 64;
  std::vector<std::vector<RankOp>> programs(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto& prog = programs[static_cast<std::size_t>(r)];
    if (r > 0) prog.push_back(RankOp::recv(r - 1));
    prog.push_back(RankOp::compute(2.0e-6));
    if (r + 1 < n) prog.push_back(RankOp::send(r + 1, 8192.0));
  }
  EventEngine engine(fabric, std::move(programs));
  const EngineResult serial = engine.run_serial();
  const EngineResult parallel = engine.run_parallel();
  expect_same(serial, parallel);
  // Chain order: each rank finishes after its predecessor.
  for (int r = 1; r < n; ++r) {
    EXPECT_GT(parallel.clocks[static_cast<std::size_t>(r)],
              parallel.clocks[static_cast<std::size_t>(r - 1)]);
  }
}

TEST(EventEngine, DeadlockIsDiagnosed) {
  Fabric fabric = engine_fabric(false, false);
  // Rank 1 waits for a message rank 0 never sends.
  std::vector<std::vector<RankOp>> programs(2);
  programs[0].push_back(RankOp::compute(1.0e-6));
  programs[1].push_back(RankOp::recv(0));
  EventEngine engine(fabric, std::move(programs));
  EXPECT_THROW((void)engine.run_parallel(), support::Error);
  EXPECT_THROW((void)engine.run_serial(), support::Error);
}

TEST(EventEngine, SelfChannelWorks) {
  Fabric fabric = engine_fabric(true, false);
  std::vector<std::vector<RankOp>> programs(1);
  programs[0].push_back(RankOp::send(0, 512.0));
  programs[0].push_back(RankOp::recv(0));
  EventEngine engine(fabric, std::move(programs));
  const EngineResult serial = engine.run_serial();
  const EngineResult parallel = engine.run_parallel();
  expect_same(serial, parallel);
  EXPECT_EQ(serial.messages.size(), 1u);
}

TEST(EventEngine, LookaheadIsPositiveOnRealMachines) {
  Fabric fabric = engine_fabric(false, false);
  EventEngine engine(fabric, ring_programs(4, 1, 0xE6));
  EXPECT_GT(engine.lookahead_s(), 0.0);
}

}  // namespace
}  // namespace exa::net
