#include "net/comm_model.hpp"

#include <gtest/gtest.h>

#include "net/scaling.hpp"
#include "support/assert.hpp"

namespace exa::net {
namespace {

CommModel frontier_comm(bool gpu_aware = true) {
  return CommModel(arch::machines::frontier(), 8, gpu_aware);
}

TEST(CommModel, RankBandwidthSharesNode) {
  const CommModel c = frontier_comm();
  EXPECT_DOUBLE_EQ(c.rank_bandwidth(), 100e9 / 8.0);
  EXPECT_LT(c.rank_bandwidth_global(), c.rank_bandwidth());
}

TEST(CommModel, P2pLatencyPlusBandwidth) {
  const CommModel c = frontier_comm();
  const double small = c.p2p(8.0);
  const double large = c.p2p(1e9);
  EXPECT_GT(small, 1e-6);                       // latency floor
  EXPECT_NEAR(large, 1e9 / c.rank_bandwidth(), large * 0.05);
}

TEST(CommModel, NonGpuAwareStagingCosts) {
  const CommModel aware = frontier_comm(true);
  const CommModel staged = frontier_comm(false);
  const double bytes = 64.0 * 1024 * 1024;
  // Staging through the host link on both ends adds real time — the
  // USE_DEVICE_PTR / GPU-aware-MPI motivation of §2.2.
  EXPECT_GT(staged.p2p(bytes), 1.5 * aware.p2p(bytes));
}

TEST(CommModel, CpuMachineHasNoStaging) {
  const CommModel c(arch::machines::eagle(), 1, /*gpu_aware=*/false);
  EXPECT_GT(c.p2p(1e6), 0.0);  // staging term silently zero
}

TEST(CommModel, AllreduceLogScaling) {
  const CommModel c = frontier_comm();
  const double t2 = c.allreduce(8.0, 2);
  const double t1024 = c.allreduce(8.0, 1024);
  // Small-message allreduce grows with log2(P): 10x steps for 2->1024.
  EXPECT_NEAR(t1024 / t2, 10.0, 1.5);
  EXPECT_DOUBLE_EQ(c.allreduce(8.0, 1), 0.0);
}

TEST(CommModel, AllreduceBandwidthTermSaturates) {
  const CommModel c = frontier_comm();
  const double big = 1e9;
  const double t64 = c.allreduce(big, 64);
  const double t4096 = c.allreduce(big, 4096);
  // Volume term approaches 2*bytes/bw regardless of P.
  EXPECT_NEAR(t4096 / t64, 1.0, 0.1);
}

TEST(CommModel, AlltoallGrowsWithGroup) {
  const CommModel c = frontier_comm();
  const double per_pair = 1e6;
  EXPECT_LT(c.alltoall(per_pair, 8), c.alltoall(per_pair, 64));
  EXPECT_DOUBLE_EQ(c.alltoall(per_pair, 1), 0.0);
}

TEST(CommModel, HaloExchangeScalesWithFaces) {
  const CommModel c = frontier_comm();
  EXPECT_DOUBLE_EQ(c.halo_exchange(1e6, 0), 0.0);
  EXPECT_NEAR(c.halo_exchange(1e6, 6) / c.halo_exchange(1e6, 1), 6.0, 1e-9);
}

TEST(CommModel, BcastTreeDepth) {
  const CommModel c = frontier_comm();
  EXPECT_DOUBLE_EQ(c.bcast(1e6, 1), 0.0);
  EXPECT_LT(c.bcast(8.0, 2), c.bcast(8.0, 4096));
}

TEST(CommModel, BarrierLatencyOnly) {
  const CommModel c = frontier_comm();
  EXPECT_DOUBLE_EQ(c.barrier(1), 0.0);
  EXPECT_GT(c.barrier(2), 0.0);
  EXPECT_LT(c.barrier(9408), 100e-6);
}

TEST(CommModel, SummitVsFrontierInjection) {
  const CommModel summit(arch::machines::summit(), 6);
  const CommModel frontier = frontier_comm();
  // Frontier's Slingshot-11 node injection is 4x Summit's dual EDR.
  EXPECT_GT(summit.p2p(1e9), frontier.p2p(1e9));
}

TEST(CommModel, InvalidArgsRejected) {
  const CommModel c = frontier_comm();
  EXPECT_THROW((void)c.p2p(-1.0), support::Error);
  EXPECT_THROW((void)c.allreduce(8.0, 0), support::Error);
  EXPECT_THROW(CommModel(arch::machines::frontier(), 0), support::Error);
}

TEST(CommModel, CollectivesRejectNonPositiveRanks) {
  // Regression: an app driver computing "ranks = nodes - spares" can go to
  // zero or negative on tiny configs; that must throw, not model a free or
  // negative-cost collective.
  const CommModel c = frontier_comm();
  for (const int bad : {0, -1, -4096}) {
    EXPECT_THROW((void)c.alltoall(1e6, bad), support::Error);
    EXPECT_THROW((void)c.bcast(1e6, bad), support::Error);
    EXPECT_THROW((void)c.allreduce(1e6, bad), support::Error);
    EXPECT_THROW((void)c.barrier(bad), support::Error);
  }
}

TEST(CommModel, SingleRankCollectivesAreFree) {
  // ranks == 1 is a degenerate-but-legal communicator: no wire traffic,
  // exactly zero cost (not latency, not staging).
  const CommModel c = frontier_comm(/*gpu_aware=*/false);
  EXPECT_DOUBLE_EQ(c.alltoall(1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(c.bcast(1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(c.allreduce(1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(c.barrier(1), 0.0);
}

TEST(ScalingStudy, WeakEfficiency) {
  ScalingStudy s("demo", ScalingKind::kWeak);
  s.run({1, 2, 4}, [](int nodes) { return 1.0 + 0.05 * nodes; });
  ASSERT_EQ(s.points().size(), 3u);
  EXPECT_DOUBLE_EQ(s.points()[0].efficiency, 1.0);
  EXPECT_LT(s.final_efficiency(), 1.0);
  EXPECT_GT(s.final_efficiency(), 0.8);
}

TEST(ScalingStudy, StrongSpeedup) {
  ScalingStudy s("demo", ScalingKind::kStrong);
  s.run({1, 2, 4}, [](int nodes) { return 1.0 / nodes; });  // ideal
  EXPECT_DOUBLE_EQ(s.points()[2].ratio, 4.0);
  EXPECT_DOUBLE_EQ(s.points()[2].efficiency, 1.0);
}

TEST(ScalingStudy, TableRenderable) {
  ScalingStudy s("demo", ScalingKind::kWeak);
  s.run({1, 8}, [](int) { return 0.5; });
  EXPECT_EQ(s.to_table().row_count(), 2u);
}

TEST(ScalingStudy, RejectsNonPositiveTimes) {
  ScalingStudy s("demo", ScalingKind::kWeak);
  EXPECT_THROW(s.run({1}, [](int) { return 0.0; }), support::Error);
}

}  // namespace
}  // namespace exa::net
