#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/rank_sim.hpp"
#include "support/assert.hpp"

namespace exa::net {
namespace {

constexpr double kRelTol = 1e-9;

void expect_rel_near(double expected, double actual, const char* what) {
  const double scale = std::max(std::abs(expected), 1e-300);
  EXPECT_LE(std::abs(actual - expected) / scale, kRelTol)
      << what << ": expected " << expected << ", got " << actual;
}

Fabric analytic_fabric(Topology topo = Topology::kFatTree) {
  FabricConfig config;
  config.topology = topo;
  return Fabric(arch::machines::frontier(), 8, config);
}

Fabric congested_fabric(Topology topo = Topology::kFatTree) {
  FabricConfig config;
  config.topology = topo;
  config.congestion = true;
  return Fabric(arch::machines::frontier(), 8, config);
}

// --- topology -------------------------------------------------------------

TEST(FabricTopology, FatTreePathLengths) {
  const FabricTopology topo(arch::machines::frontier(), Topology::kFatTree);
  std::vector<int> path;
  topo.route(0, 0, path);
  EXPECT_TRUE(path.empty());  // same node: no links
  topo.route(0, 1, path);
  EXPECT_EQ(path.size(), 2u);  // same leaf: injection + ejection
  path.clear();
  topo.route(0, topo.node_count() - 1, path);
  EXPECT_EQ(path.size(), 4u);  // cross-leaf: + uplink + downlink
}

TEST(FabricTopology, DragonflyPathLengths) {
  const FabricTopology topo(arch::machines::frontier(), Topology::kDragonfly);
  std::vector<int> path;
  topo.route(0, 1, path);
  EXPECT_EQ(path.size(), 3u);  // intra-group: inj + local + ej
  path.clear();
  topo.route(0, topo.node_count() - 1, path);
  EXPECT_EQ(path.size(), 5u);  // inter-group: + local + global + local
}

TEST(FabricTopology, UplinksTaperToBisection) {
  const arch::Machine frontier = arch::machines::frontier();
  const FabricTopology topo(frontier, Topology::kFatTree);
  const double inj = frontier.network.node_injection_bandwidth();
  // Total uplink capacity of one leaf == leaf injection * bisection factor.
  double leaf_up = 0.0;
  std::vector<int> path;
  for (int spine = 0; spine < topo.spine_count(); ++spine) {
    path.clear();
    topo.route(0, topo.node_count() - 1, path);
  }
  for (const auto& link : topo.links()) {
    if (link.kind == FabricLink::Kind::kUplink) {
      leaf_up += link.bandwidth_bytes_per_s;
    }
  }
  leaf_up /= topo.switch_count();  // summed over all leaves above
  EXPECT_NEAR(leaf_up,
              topo.nodes_per_switch() * inj *
                  frontier.network.bisection_factor,
              leaf_up * 1e-12);
}

TEST(FabricTopology, SingleNodeMachineBuilds) {
  arch::Machine one = arch::machines::frontier();
  one.node_count = 1;
  const FabricTopology topo(one, Topology::kFatTree);
  EXPECT_EQ(topo.switch_count(), 1);
  std::vector<int> path;
  topo.route(0, 0, path);
  EXPECT_TRUE(path.empty());
}

// --- CommModel equivalence (the golden-gated guarantee) -------------------

TEST(Fabric, ReducesToCommModelWhenQuiet) {
  const Fabric fabric = analytic_fabric();
  const CommModel& model = fabric.analytic();
  for (const double bytes : {0.0, 8.0, 4096.0, 1.0e6, 1.0e9}) {
    expect_rel_near(model.p2p(bytes), fabric.p2p(bytes), "p2p");
    expect_rel_near(model.halo_exchange(bytes, 6),
                    fabric.halo_exchange(bytes, 6), "halo");
    for (const int ranks : {1, 2, 3, 7, 64, 1000, 4096, 32768}) {
      expect_rel_near(model.allreduce(bytes, ranks),
                      fabric.allreduce(bytes, ranks), "allreduce");
      expect_rel_near(model.alltoall(bytes, ranks),
                      fabric.alltoall(bytes, ranks), "alltoall");
      expect_rel_near(model.bcast(bytes, ranks), fabric.bcast(bytes, ranks),
                      "bcast");
    }
  }
  for (const int ranks : {2, 17, 8192}) {
    expect_rel_near(fabric.analytic().barrier(ranks), fabric.barrier(ranks),
                    "barrier");
  }
}

TEST(Fabric, NonGpuAwareStagingMatchesModel) {
  FabricConfig config;
  const Fabric fabric(arch::machines::frontier(), 8, config,
                      /*gpu_aware=*/false);
  const CommModel& model = fabric.analytic();
  expect_rel_near(model.alltoall(1e6, 256), fabric.alltoall(1e6, 256),
                  "staged alltoall");
  expect_rel_near(model.p2p(64.0 * 1024 * 1024),
                  fabric.p2p(64.0 * 1024 * 1024), "staged p2p");
}

TEST(Fabric, EventDrivenFlagTracksConfig) {
  EXPECT_FALSE(analytic_fabric().event_driven());
  EXPECT_TRUE(congested_fabric().event_driven());
  FabricConfig config;
  config.faults.drop_probability = 0.1;
  EXPECT_TRUE(Fabric(arch::machines::frontier(), 8, config).event_driven());
}

// --- congestion -----------------------------------------------------------

TEST(Fabric, CongestionNeverCheapensACollective) {
  const Fabric off = analytic_fabric();
  const Fabric on = congested_fabric();
  for (const int ranks : {8, 256, 8192}) {
    EXPECT_GE(on.alltoall(1e6, ranks), off.alltoall(1e6, ranks) * (1 - 1e-12));
    EXPECT_GE(on.allreduce(1e6, ranks),
              off.allreduce(1e6, ranks) * (1 - 1e-12));
  }
}

TEST(Fabric, AlignedAlltoallHotspotsAtScale) {
  const Fabric off = analytic_fabric();
  const Fabric on = congested_fabric();
  // Within one leaf switch (32 nodes * 8 ranks) static routing cannot
  // congest: the analytic bisection share is the binding term.
  const int small = 256;
  EXPECT_NEAR(on.alltoall(1e6, small), off.alltoall(1e6, small),
              off.alltoall(1e6, small) * 1e-9);
  // Across >= 1024 nodes the (src+dst)%spines static routes collide and
  // the bottleneck spine link dominates the bisection share.
  const int large = 1024 * 8;
  EXPECT_GT(on.alltoall(1e6, large), 1.5 * off.alltoall(1e6, large));
}

TEST(Fabric, DragonflyCongestsGlobalLinks) {
  const Fabric off = analytic_fabric(Topology::kDragonfly);
  const Fabric on = congested_fabric(Topology::kDragonfly);
  const int large = 2048 * 8;
  EXPECT_GT(on.alltoall(1e5, large), 1.5 * off.alltoall(1e5, large));
}

// --- faults ---------------------------------------------------------------

TEST(Fabric, DegradedLinksSlowCollectives) {
  FabricConfig config;
  config.congestion = true;
  config.faults.degraded_link_fraction = 0.5;
  config.faults.degrade_factor = 0.1;
  const Fabric degraded(arch::machines::frontier(), 8, config);
  const Fabric healthy = congested_fabric();
  EXPECT_GT(degraded.alltoall(1e6, 4096), healthy.alltoall(1e6, 4096));
}

TEST(Fabric, DropProbabilityAddsExpectedRetryCost) {
  FabricConfig config;
  config.faults.drop_probability = 0.05;
  const Fabric flaky(arch::machines::frontier(), 8, config);
  const Fabric clean = analytic_fabric();
  EXPECT_GT(flaky.allreduce(1e6, 1024), clean.allreduce(1e6, 1024));
}

TEST(Fabric, StragglerMembershipIsDeterministic) {
  FabricConfig config;
  config.faults.straggler_fraction = 0.25;
  config.faults.straggler_slowdown = 3.0;
  const Fabric fabric(arch::machines::frontier(), 8, config);
  int stragglers = 0;
  for (int r = 0; r < 1000; ++r) {
    const bool s = fabric.is_straggler(r);
    EXPECT_EQ(s, fabric.is_straggler(r));  // stable
    if (s) ++stragglers;
    EXPECT_DOUBLE_EQ(fabric.straggler_scale(r), s ? 3.0 : 1.0);
  }
  EXPECT_GT(stragglers, 150);
  EXPECT_LT(stragglers, 350);
}

TEST(Fabric, TransferRetriesPreserveChannelOrder) {
  FabricConfig config;
  config.congestion = true;
  config.faults.drop_probability = 0.4;
  config.faults.seed = 0xD20Full;
  Fabric fabric(arch::machines::frontier(), 8, config);
  double last = -1.0;
  int total_retries = 0;
  for (int i = 0; i < 200; ++i) {
    const auto t = fabric.transfer(0, 9, 4096.0, 0.0);
    EXPECT_GE(t.delivered_s, last) << "message " << i << " overtook";
    last = t.delivered_s;
    total_retries += t.retries;
  }
  EXPECT_GT(total_retries, 0) << "drop layer never fired at q=0.4";
}

TEST(Fabric, TransferMatchesP2pWhenQuiet) {
  Fabric fabric = analytic_fabric();
  const double start = 1.5e-3;
  const auto t = fabric.transfer(0, fabric.total_ranks() - 1, 1e6, start);
  expect_rel_near(start + fabric.analytic().p2p(1e6), t.delivered_s,
                  "quiet transfer");
  EXPECT_EQ(t.retries, 0);
}

TEST(Fabric, TransfersSerializeOnSharedLinks) {
  Fabric fabric = congested_fabric();
  const int far = fabric.total_ranks() - 1;
  const auto first = fabric.transfer(0, far, 1e8, 0.0);
  const auto second = fabric.transfer(0, far, 1e8, 0.0);
  // Same path, same start: the second message queues behind the first.
  EXPECT_GT(second.delivered_s, first.delivered_s * 1.5);
}

TEST(Fabric, RejectsInvalidArguments) {
  Fabric fabric = analytic_fabric();
  EXPECT_THROW((void)fabric.alltoall(1.0, 0), support::Error);
  EXPECT_THROW((void)fabric.allreduce(1.0, -3), support::Error);
  EXPECT_THROW((void)fabric.bcast(1.0, 0), support::Error);
  EXPECT_THROW((void)fabric.p2p(-1.0), support::Error);
  EXPECT_THROW((void)fabric.transfer(0, -1, 1.0, 0.0), support::Error);
  FabricConfig bad;
  bad.faults.drop_probability = 0.99;  // > 0.9 cap
  EXPECT_THROW(Fabric(arch::machines::frontier(), 8, bad), support::Error);
}

// --- RankSim --------------------------------------------------------------

TEST(RankSim, ComputeHidesInFlightMessages) {
  Fabric fabric = analytic_fabric();
  RankSim sim(fabric, 16);
  const double msg_cost = fabric.analytic().p2p(1e6);
  const double overhead = fabric.machine().network.per_message_overhead_s;

  const Request send = sim.isend(0, 15, 1e6);
  const Request recv = sim.irecv(15, 0);
  // Receiver computes longer than the transfer: the wait is free.
  sim.compute(15, msg_cost * 3.0);
  const double t15 = sim.wait(15, recv);
  EXPECT_DOUBLE_EQ(t15, msg_cost * 3.0);

  // Sender only paid the software overhead.
  EXPECT_DOUBLE_EQ(sim.now(0), overhead);
  sim.wait(0, send);
  EXPECT_DOUBLE_EQ(sim.now(0), overhead);
}

TEST(RankSim, WaitPaysUnhiddenTransferTime) {
  Fabric fabric = analytic_fabric();
  RankSim sim(fabric, 2);
  const double msg_cost = fabric.analytic().p2p(4e6);
  sim.isend(0, 1, 4e6);
  const Request recv = sim.irecv(1, 0);
  const double t = sim.wait(1, recv);
  EXPECT_NEAR(t, msg_cost, msg_cost * 1e-9);  // nothing hidden
}

TEST(RankSim, CollectivesAlignAllClocks) {
  Fabric fabric = analytic_fabric();
  RankSim sim(fabric, 8);
  sim.compute(3, 1.0e-3);  // one slow rank
  const double cost = sim.allreduce(4096.0);
  EXPECT_GT(cost, 0.0);
  for (int r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(sim.now(r), 1.0e-3 + cost);
  }
  expect_rel_near(fabric.analytic().allreduce(4096.0, 8), cost,
                  "ranksim allreduce");
}

TEST(RankSim, StragglersSlowComputeNotWires) {
  FabricConfig config;
  config.faults.straggler_fraction = 1.0;  // everyone straggles
  config.faults.straggler_slowdown = 2.5;
  Fabric fabric(arch::machines::frontier(), 8, config);
  RankSim sim(fabric, 4);
  sim.compute(0, 1.0);
  EXPECT_DOUBLE_EQ(sim.now(0), 2.5);
}

TEST(RankSim, MessageLogRecordsDeliveries) {
  Fabric fabric = analytic_fabric();
  RankSim sim(fabric, 4);
  sim.isend(0, 1, 128.0, /*tag=*/7);
  sim.isend(2, 3, 256.0);
  ASSERT_EQ(sim.messages().size(), 2u);
  EXPECT_EQ(sim.messages()[0].tag, 7);
  EXPECT_EQ(sim.messages()[1].bytes, 256.0);
  EXPECT_GT(sim.messages()[0].delivered_s, 0.0);
}

TEST(RankSim, RejectsWaitBeforeMatchingSend) {
  Fabric fabric = analytic_fabric();
  RankSim sim(fabric, 2);
  const Request recv = sim.irecv(1, 0);
  EXPECT_THROW((void)sim.wait(1, recv), support::Error);
}

TEST(RankSim, RejectsForeignWait) {
  Fabric fabric = analytic_fabric();
  RankSim sim(fabric, 2);
  const Request send = sim.isend(0, 1, 8.0);
  EXPECT_THROW((void)sim.wait(1, send), support::Error);
}

}  // namespace
}  // namespace exa::net
