#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "arch/gpu_arch.hpp"
#include "sim/device_sim.hpp"
#include "support/assert.hpp"
#include "trace/chrome_export.hpp"
#include "trace/json.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"

namespace exa::trace {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "exaready_" + name;
}

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().disable();
    Profiler::instance().disable();
    Profiler::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Profiler::instance().disable();
    Profiler::instance().clear();
  }
};

TEST_F(ExportTest, JsonParseRoundTrip) {
  const JsonValue value = json_parse(
      R"({"s":"a\"b","n":-1.5e3,"t":true,"x":null,"arr":[1,2,{"k":3}]})");
  ASSERT_TRUE(value.is_object());
  EXPECT_EQ(value.find("s")->as_string(), "a\"b");
  EXPECT_DOUBLE_EQ(value.find("n")->as_number(), -1500.0);
  EXPECT_TRUE(value.find("t")->as_bool());
  EXPECT_TRUE(value.find("x")->is_null());
  ASSERT_EQ(value.find("arr")->as_array().size(), 3u);
  // dump() -> parse() is stable.
  const JsonValue again = json_parse(value.dump());
  EXPECT_EQ(again.dump(), value.dump());
  EXPECT_THROW(json_parse("{\"unterminated\":"), support::Error);
  EXPECT_THROW(json_parse("{} trailing"), support::Error);
}

TEST_F(ExportTest, ChromeTraceValidatesAndCarriesStreamTracks) {
  auto& tracer = Tracer::instance();
  tracer.enable(4096);

  sim::DeviceSim dev(arch::mi250x_gcd());
  sim::KernelProfile profile;
  profile.name = "k0";
  profile.add_flops(arch::DType::kF64,
                    dev.gpu().peak_flops(arch::DType::kF64) * 1e-4);
  profile.compute_efficiency = 1.0;
  const sim::StreamId s1 = dev.create_stream();
  const sim::StreamId s2 = dev.create_stream();
  dev.launch(s1, profile, sim::LaunchConfig{1u << 16, 256});
  dev.launch(s2, profile, sim::LaunchConfig{1u << 16, 256});
  dev.transfer_async(s1, sim::TransferKind::kDeviceToHost, 1 << 20);
  dev.synchronize_all();

  const std::string path = temp_path("trace.json");
  write_chrome_trace(path, tracer.snapshot());

  // The file must parse as JSON and contain X spans on two stream tracks.
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) text.append(buf, n);
  std::fclose(file);

  const JsonValue doc = json_parse(text);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int complete_spans = 0;
  int thread_names = 0;
  bool saw_transfer = false;
  for (const JsonValue& event : events->as_array()) {
    const std::string& phase = event.find("ph")->as_string();
    if (phase == "X") {
      ++complete_spans;
      EXPECT_GT(event.find("dur")->as_number(), 0.0);
      EXPECT_GE(event.find("ts")->as_number(), 0.0);
      if (event.find("cat")->as_string() == "transfer") saw_transfer = true;
    }
    if (phase == "M" && event.find("name")->as_string() == "thread_name") {
      ++thread_names;
    }
  }
  EXPECT_GE(complete_spans, 3);
  EXPECT_GE(thread_names, 2);  // one Chrome track per simulated stream
  EXPECT_TRUE(saw_transfer);
  std::remove(path.c_str());
}

TEST_F(ExportTest, JsonlAppendAndLoadRoundTrip) {
  auto& profiler = Profiler::instance();
  profiler.enable();
  profiler.record("pele/ghost_exchange", 8, 1.25e-3);
  profiler.record("pele/ghost_exchange", 64, 2.5e-3);
  profiler.record("gests/transpose", 64, 0.5, "time");

  const std::string path = temp_path("profiles.jsonl");
  std::remove(path.c_str());
  append_jsonl(path, profiler.samples());
  append_jsonl(path, {ProfileSample{{{"p", 512.0}, {"rep", 2.0}},
                                    "pele/ghost_exchange", "time", 5e-3}});

  const auto loaded = load_jsonl(path);
  ASSERT_EQ(loaded.size(), 4u);
  EXPECT_EQ(loaded[0].callpath, "pele/ghost_exchange");
  EXPECT_DOUBLE_EQ(loaded[0].params.at("p"), 8.0);
  EXPECT_DOUBLE_EQ(loaded[0].value, 1.25e-3);
  EXPECT_EQ(loaded[3].params.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[3].params.at("rep"), 2.0);
  EXPECT_EQ(loaded[3].metric, "time");
  std::remove(path.c_str());
}

TEST_F(ExportTest, ProfilerDisabledRecordsNothing) {
  auto& profiler = Profiler::instance();
  profiler.record("region", 8, 1.0);
  EXPECT_TRUE(profiler.samples().empty());
}

TEST_F(ExportTest, ProfileFromTraceAggregatesSpans) {
  auto& tracer = Tracer::instance();
  tracer.enable(64);
  tracer.complete("kernelA", "gpu0/s0", 0.0, 1.0e-3, "kernel");
  tracer.complete("kernelA", "gpu0/s0", 2.0e-3, 1.0e-3, "kernel");
  tracer.span_begin("regionB", "host", "test", 0.0);
  tracer.span_end("regionB", "host", 4.0e-3);
  const auto samples = profile_from_trace(tracer.snapshot(), 16.0);
  ASSERT_EQ(samples.size(), 2u);
  double a = 0.0, b = 0.0;
  for (const auto& sample : samples) {
    EXPECT_DOUBLE_EQ(sample.params.at("p"), 16.0);
    if (sample.callpath == "kernelA") a = sample.value;
    if (sample.callpath == "regionB") b = sample.value;
  }
  EXPECT_NEAR(a, 2.0e-3, 1e-12);
  EXPECT_NEAR(b, 4.0e-3, 1e-12);
}

}  // namespace
}  // namespace exa::trace
