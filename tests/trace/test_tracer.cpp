#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/gpu_arch.hpp"
#include "sim/device_sim.hpp"

namespace exa::trace {
namespace {

/// The global tracer persists across tests; each test starts fresh.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::instance().disable(); }
  void TearDown() override { Tracer::instance().disable(); }
};

TEST_F(TracerTest, DisabledRecordsNothing) {
  auto& tracer = Tracer::instance();
  tracer.enable(16);
  tracer.disable();
  tracer.clear();
  tracer.span_begin("work", "host");
  tracer.complete("kernel", "dev/s0", 0.0, 1.0e-3);
  tracer.instant("marker", "host");
  tracer.counter("bytes", "host", 42.0);
  tracer.span_end("work", "host");
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST_F(TracerTest, SpanNestingAndVirtualStamps) {
  auto& tracer = Tracer::instance();
  tracer.enable(64);
  {
    ScopedSpan outer("outer", "host", "test", 1.0);
    {
      ScopedSpan inner("inner", "host", "test", 2.0);
      inner.set_sim_end(3.0);
    }
    outer.set_sim_end(5.0);
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, EventKind::kSpanBegin);
  EXPECT_EQ(events[0].label, "outer");
  EXPECT_DOUBLE_EQ(events[0].sim_s, 1.0);
  EXPECT_EQ(events[1].kind, EventKind::kSpanBegin);
  EXPECT_EQ(events[1].label, "inner");
  // Inner closes before outer (LIFO): B B E E.
  EXPECT_EQ(events[2].kind, EventKind::kSpanEnd);
  EXPECT_EQ(events[2].label, "inner");
  EXPECT_DOUBLE_EQ(events[2].sim_s, 3.0);
  EXPECT_EQ(events[3].kind, EventKind::kSpanEnd);
  EXPECT_EQ(events[3].label, "outer");
  EXPECT_DOUBLE_EQ(events[3].sim_s, 5.0);
  // Wall stamps are monotone within the capture.
  EXPECT_LE(events[0].wall_us, events[3].wall_us);
}

TEST_F(TracerTest, RingBufferKeepsNewestAndCountsDrops) {
  auto& tracer = Tracer::instance();
  tracer.enable(4);
  for (int i = 0; i < 6; ++i) {
    tracer.instant("e" + std::to_string(i), "host");
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().label, "e2");  // oldest two dropped
  EXPECT_EQ(events.back().label, "e5");
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
}

TEST_F(TracerTest, CursorTrackBuildsTimeline) {
  auto& tracer = Tracer::instance();
  tracer.enable(16);
  tracer.complete_at_cursor("allreduce", "net", 2.0e-3, "net");
  tracer.complete_at_cursor("bcast", "net", 1.0e-3, "net");
  tracer.complete_at_cursor("other", "net2", 5.0e-3, "net");
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].sim_s, 0.0);
  EXPECT_DOUBLE_EQ(events[1].sim_s, 2.0e-3);  // placed after the first span
  EXPECT_DOUBLE_EQ(events[2].sim_s, 0.0);     // independent track cursor
}

TEST_F(TracerTest, DeviceSimLaunchEmitsKernelSpanInVirtualTime) {
  auto& tracer = Tracer::instance();
  tracer.enable(1024);

  sim::DeviceSim dev(arch::mi250x_gcd());
  sim::KernelProfile profile;
  profile.name = "flops_kernel";
  profile.add_flops(arch::DType::kF64,
                    dev.gpu().peak_flops(arch::DType::kF64) * 1e-3);
  profile.compute_efficiency = 1.0;
  const sim::StreamId stream = dev.create_stream();
  dev.launch(stream, profile, sim::LaunchConfig{1u << 16, 256});
  dev.synchronize(stream);

  const auto events = tracer.snapshot();
  const Event* kernel = nullptr;
  for (const Event& event : events) {
    if (event.category == "kernel" && event.label == "flops_kernel") {
      kernel = &event;
    }
  }
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->kind, EventKind::kComplete);
  // One track per simulated stream, grouped under the device's name.
  EXPECT_EQ(kernel->track, dev.trace_name() + "/s" + std::to_string(stream));
  EXPECT_FALSE(std::isnan(kernel->sim_s));
  // The span ends when the stream becomes ready (virtual time).
  EXPECT_NEAR(kernel->sim_s + kernel->value, dev.stream_ready(stream), 1e-12);
  EXPECT_GT(kernel->value, 0.5e-3);
}

TEST_F(TracerTest, DeviceSimTransferAndAllocTracing) {
  auto& tracer = Tracer::instance();
  tracer.enable(1024);

  sim::DeviceSim dev(arch::mi250x_gcd());
  dev.transfer_async(0, sim::TransferKind::kHostToDevice, 64.0 * 1024 * 1024);
  void* ptr = dev.malloc_device(1024);
  dev.free_device(ptr);

  bool saw_transfer = false, saw_alloc = false, saw_counter = false;
  for (const Event& event : tracer.snapshot()) {
    if (event.category == "transfer" && event.kind == EventKind::kComplete) {
      saw_transfer = true;
      EXPECT_GT(event.value, 0.0);
    }
    if (event.category == "memory") saw_alloc = true;
    if (event.kind == EventKind::kCounter &&
        event.label == "bytes_allocated") {
      saw_counter = true;
    }
  }
  EXPECT_TRUE(saw_transfer);
  EXPECT_TRUE(saw_alloc);
  EXPECT_TRUE(saw_counter);
}

}  // namespace
}  // namespace exa::trace
