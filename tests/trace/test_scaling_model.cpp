#include "trace/scaling_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace exa::trace {
namespace {

std::vector<double> scales() { return {1, 2, 4, 8, 16, 32, 64, 128}; }

std::vector<double> series(const std::vector<double>& ps, double a, double b,
                           double c, int d) {
  std::vector<double> ts;
  ts.reserve(ps.size());
  for (const double p : ps) {
    double x = std::pow(p, c);
    if (d != 0) x *= std::pow(std::log2(p), d);
    ts.push_back(a + b * x);
  }
  return ts;
}

TEST(ScalingModel, RecoversLinearLaw) {
  const auto ps = scales();
  const auto ts = series(ps, 2.0e-3, 5.0e-4, 1.0, 0);
  const ScalingFit fit = fit_scaling(ps, ts);
  EXPECT_DOUBLE_EQ(fit.c, 1.0);
  EXPECT_EQ(fit.d, 0);
  EXPECT_NEAR(fit.a, 2.0e-3, 1e-9);
  EXPECT_NEAR(fit.b, 5.0e-4, 1e-9);
  EXPECT_GE(fit.r2, 0.999);
}

TEST(ScalingModel, RecoversPolyLogLaw) {
  // The Rabenseifner-allreduce shape: t = a + b * p^0 is wrong, the
  // latency term goes as log2(p); make it a + b * p * log2(p).
  const auto ps = scales();
  const auto ts = series(ps, 1.0e-4, 2.0e-6, 1.0, 1);
  const ScalingFit fit = fit_scaling(ps, ts);
  EXPECT_DOUBLE_EQ(fit.c, 1.0);
  EXPECT_EQ(fit.d, 1);
  EXPECT_GE(fit.r2, 0.999);
}

TEST(ScalingModel, RecoversFractionalExponent) {
  const auto ps = scales();
  const auto ts = series(ps, 0.0, 3.0e-5, 1.5, 0);
  const ScalingFit fit = fit_scaling(ps, ts);
  EXPECT_DOUBLE_EQ(fit.c, 1.5);
  EXPECT_EQ(fit.d, 0);
  EXPECT_NEAR(fit.b, 3.0e-5, 1e-10);
  EXPECT_GE(fit.r2, 0.999);
}

TEST(ScalingModel, ConstantSeriesPicksConstantModel) {
  const auto ps = scales();
  const std::vector<double> ts(ps.size(), 7.5e-3);
  const ScalingFit fit = fit_scaling(ps, ts);
  EXPECT_DOUBLE_EQ(fit.c, 0.0);
  EXPECT_EQ(fit.d, 0);
  EXPECT_NEAR(fit.eval(1024.0), 7.5e-3, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);
}

TEST(ScalingModel, ToleratesMeasurementNoise) {
  // +-2% multiplicative noise, deterministic seed: the acceptance bar is
  // R^2 >= 0.95 on synthetic a + b * p^c data.
  const auto ps = scales();
  auto ts = series(ps, 1.0e-3, 2.0e-5, 2.0, 0);
  support::Rng rng(12345);
  for (double& t : ts) t *= 1.0 + 0.04 * (rng.uniform() - 0.5);
  const ScalingFit fit = fit_scaling(ps, ts);
  EXPECT_NEAR(fit.c, 2.0, 0.35);
  EXPECT_GE(fit.r2, 0.95);
}

TEST(ScalingModel, EvalAndToStringDescribeTheModel) {
  const auto ps = scales();
  const auto ts = series(ps, 1.0, 0.5, 1.0, 1);
  const ScalingFit fit = fit_scaling(ps, ts);
  EXPECT_NEAR(fit.eval(256.0), 1.0 + 0.5 * 256.0 * 8.0, 1e-6);
  const std::string text = fit.to_string();
  EXPECT_NE(text.find("p^1"), std::string::npos);
  EXPECT_NE(text.find("log2(p)"), std::string::npos);
}

TEST(ScalingModel, RejectsDegenerateInput) {
  const std::vector<double> one_scale = {8, 8, 8};
  const std::vector<double> ts = {1.0, 1.1, 0.9};
  EXPECT_THROW((void)fit_scaling(one_scale, ts), support::Error);
  const std::vector<double> mismatched = {1, 2};
  EXPECT_THROW((void)fit_scaling(mismatched, ts), support::Error);
}

TEST(ScalingModel, FitProfilesGroupsByRegionAndAveragesReps) {
  std::vector<ProfileSample> samples;
  for (const double p : {1.0, 4.0, 16.0, 64.0}) {
    // Two repetitions straddling the true linear value.
    samples.push_back({{{"p", p}}, "halo", "time", 1e-3 * p * 1.01});
    samples.push_back({{{"p", p}}, "halo", "time", 1e-3 * p * 0.99});
    samples.push_back({{{"p", p}}, "chem", "time", 5e-3});
    // A different metric must not leak into the fit.
    samples.push_back({{{"p", p}}, "halo", "bytes", 1e6 * p});
  }
  // A region with a single scale is skipped, not fitted.
  samples.push_back({{{"p", 8.0}}, "lonely", "time", 1.0});

  const auto fits = fit_profiles(samples);
  ASSERT_EQ(fits.size(), 2u);
  const ScalingFit& halo = fits.at("halo");
  EXPECT_DOUBLE_EQ(halo.c, 1.0);
  EXPECT_EQ(halo.d, 0);
  EXPECT_NEAR(halo.b, 1e-3, 1e-6);
  EXPECT_GE(halo.r2, 0.95);
  const ScalingFit& chem = fits.at("chem");
  EXPECT_NEAR(chem.eval(256.0), 5e-3, 1e-9);
}

}  // namespace
}  // namespace exa::trace
