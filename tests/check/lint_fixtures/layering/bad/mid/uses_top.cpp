// Fixture: an upward include — mid (rank 1) reaching into top (rank 2).
// The lint_fixture_fires_layering ctest proves layer-upward-include trips.
#include "top/api.hpp"
