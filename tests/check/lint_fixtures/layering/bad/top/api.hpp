// Fixture: top-layer header the bad mid layer reaches up into.
#pragma once
