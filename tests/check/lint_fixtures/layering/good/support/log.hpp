// Fixture: bottom layer, includes nothing.
#pragma once
