// Fixture: mid layer reaching strictly downward — conformant.
#pragma once
#include "support/log.hpp"
