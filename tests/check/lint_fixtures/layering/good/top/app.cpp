// Fixture: top layer reaching strictly downward — conformant.
#include "mid/api.hpp"
#include "support/log.hpp"
