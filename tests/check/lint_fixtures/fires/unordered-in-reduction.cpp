// lint fixture (fires): hash-map iteration inside a reduction body — the
// iteration order is unspecified and feeds the accumulated result.
double fixture() {
  return pfw::parallel_reduce("r", 64, 0.0,
                              [&](std::size_t i, double a) {
                                const std::unordered_map<int, double>& w =
                                    weights(i);
                                for (const auto& kv : w) a += kv.second;
                                return a;
                              });
}
