// lint fixture (fires): CUDA-era spellings and a triple-chevron launch —
// hipify remnants the port must not reintroduce.
void fixture(void** p, void* grid, void* block, void* arg) {
  (void)cudaMalloc(p, 64);
  kernel<<<grid, block>>>(arg);
}
