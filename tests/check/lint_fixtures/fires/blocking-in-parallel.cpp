// lint fixture (fires): a blocking device sync and blocking file I/O
// inside a parallel dispatch body.
void fixture(void* d, void* h) {
  pfw::parallel_for("k", 128, [&](std::size_t i) {
    (void)hipMemcpy(d, h, 8, hipMemcpyHostToDevice);
    std::ofstream log("out.txt");
    (void)i;
  });
}
