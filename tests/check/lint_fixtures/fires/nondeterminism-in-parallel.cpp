// lint fixture (fires): wall-clock and libc RNG inside a parallel body —
// results depend on scheduling and breaks bitwise reproducibility.
void fixture(double* out) {
  pfw::parallel_for("k", 128, [&](std::size_t i) {
    out[i] = std::rand() + time(nullptr);
  });
}
