// lint fixture (fires): raw device allocation bypassing the pooled view
// layer — leaks on early return and defeats the allocator reuse.
void fixture(void** p) {
  (void)hipMalloc(p, 1024);
  (void)hipFree(*p);
}
