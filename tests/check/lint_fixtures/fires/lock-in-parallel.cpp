// lint fixture (fires): a mutex acquired inside a parallel body —
// serializes the loop and makes completion order scheduling-dependent.
void fixture(std::mutex& m, double* out) {
  pfw::parallel_for("k", 128, [&](std::size_t i) {
    std::lock_guard<std::mutex> g(m);
    out[i] = value(i);
  });
}
