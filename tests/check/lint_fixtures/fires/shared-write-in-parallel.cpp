// lint fixture (fires): a by-reference captured accumulator written from
// every iteration — a data race, and the sum depends on interleaving.
double fixture() {
  double total = 0.0;
  pfw::parallel_for("k", 128, [&](std::size_t i) { total += value(i); });
  return total;
}
