// lint fixture (fires): explicit FMA and a contraction pragma in a
// mathlib path — both violate the bitwise-reference contract
// (-ffp-contract=off, no fused multiply-add).
#pragma STDC FP_CONTRACT ON
double fixture(double a, double b, double c) {
  return std::fma(a, b, c);
}
