// lint fixture (fires): hip* call at statement position with the
// hipError_t result silently discarded.
void fixture(void* p) {
  hipDeviceSynchronize();
  hipFree(p);
}
