// lint fixture (clean): separate multiply and add — rounds twice, the
// same way on every compiler and target.
double fixture(double a, double b, double c) {
  const double prod = a * b;
  return prod + c;
}
