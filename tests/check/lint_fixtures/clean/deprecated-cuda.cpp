// lint fixture (clean): the hip spellings and the explicit launch API.
void fixture(void** p, void* grid, void* block, void* arg) {
  (void)hipMalloc(p, 64);  // exa-lint: allow(raw-device-alloc)
  (void)hipLaunchKernelGGL(kernel, grid, block, 0, nullptr, arg);
}
