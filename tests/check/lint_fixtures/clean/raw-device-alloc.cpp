// lint fixture (clean): the pooled, leak-safe device view.
void fixture() {
  auto view = pfw::create_device_view<float>(1024);
  use(view);
}
