// lint fixture (clean): blocking work hoisted out of the parallel body;
// the lambda touches only its per-index element.
void fixture(void* d, void* h, double* out) {
  (void)hipMemcpy(d, h, 8, hipMemcpyHostToDevice);
  pfw::parallel_for("k", 128, [&](std::size_t i) { out[i] = value(i); });
  (void)hipDeviceSynchronize();
}
