// lint fixture (clean): accumulation expressed as parallel_reduce (the
// framework owns the deterministic combine); per-index writes subscripted.
double fixture(std::vector<double>& out) {
  pfw::parallel_for("k", 128, [&](std::size_t i) { out[i] = value(i); });
  return pfw::parallel_reduce("sum", 128, 0.0,
                              [&](std::size_t i, double a) {
                                return a + out[i];
                              });
}
