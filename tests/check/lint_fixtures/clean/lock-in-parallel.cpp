// lint fixture (clean): no synchronization needed — each iteration owns
// its output slot; the combine happens after the region.
void fixture(double* out) {
  pfw::parallel_for("k", 128, [&](std::size_t i) { out[i] = value(i); });
  combine(out, 128);
}
