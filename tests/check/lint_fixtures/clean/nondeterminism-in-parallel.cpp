// lint fixture (clean): a counter-based RNG keyed on the loop index —
// deterministic for any schedule. Seeding happens outside the region.
void fixture(double* out) {
  const unsigned seed = 42u;
  pfw::parallel_for("k", 128, [&](std::size_t i) {
    out[i] = counter_rng(seed, i);
  });
}
