// lint fixture (clean): the hash map is flattened into an ordered vector
// before the region; the reduction walks a deterministic sequence.
double fixture(const std::vector<std::pair<int, double>>& weights) {
  return pfw::parallel_reduce("r", 64, 0.0,
                              [&](std::size_t i, double a) {
                                return a + weights[i].second;
                              });
}
