// lint fixture (clean): every hip* result is consumed, checked, or
// explicitly discarded with (void).
void fixture(void* p) {
  const hipError_t err = hipDeviceSynchronize();
  if (err != hipSuccess) return;
  HIP_CHECK(hipDeviceSynchronize());
  (void)hipFree(p);
}
