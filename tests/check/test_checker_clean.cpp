/// The checker's false-positive budget is zero: a full SHOC sweep — the
/// repo's most API-diverse workload (async copies, streams, events, UVM,
/// multi-kernel pipelines) — must produce no diagnostics with EXA_CHECK on.

#include <gtest/gtest.h>

#include "apps/shoc/shoc.hpp"
#include "arch/gpu_arch.hpp"
#include "check/checker.hpp"
#include "hip/hip_runtime.hpp"
#include "support/rng.hpp"

namespace exa {
namespace {

using check::Checker;

class CheckCleanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
    Checker::instance().set_mode(check::Mode::kOn);
    Checker::instance().clear();
  }

  void TearDown() override {
    Checker::instance().set_mode(check::Mode::kOff);
    Checker::instance().clear();
    hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  }
};

TEST_F(CheckCleanTest, ShocSuiteIsDiagnosticClean) {
  support::Rng noise(20260807);
  for (const auto id : apps::shoc::all_benchmarks()) {
    const auto result =
        apps::shoc::run_benchmark(id, apps::shoc::SizeClass::kSmall, noise);
    EXPECT_GT(result.total_s, 0.0);
    EXPECT_EQ(Checker::instance().total(), 0u)
        << "diagnostics after benchmark " << static_cast<int>(id) << ": "
        << (Checker::instance().diagnostics().empty()
                ? ""
                : Checker::instance().diagnostics().front().format());
  }
}

TEST_F(CheckCleanTest, HipVsCudaComparisonIsDiagnosticClean) {
  const auto rows =
      apps::shoc::compare_hip_vs_cuda(apps::shoc::SizeClass::kSmall, 42);
  EXPECT_FALSE(rows.empty());
  EXPECT_EQ(Checker::instance().total(), 0u);
}

TEST_F(CheckCleanTest, TeardownAfterCleanSuiteReportsNoLeaks) {
  support::Rng noise(7);
  (void)apps::shoc::run_benchmark(apps::shoc::BenchmarkId::kTriad,
                                  apps::shoc::SizeClass::kSmall, noise);
  hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  EXPECT_EQ(Checker::instance().total(), 0u);
}

}  // namespace
}  // namespace exa
