/// Per-rule coverage for the exa::check runtime validator: each of the
/// seven rules fires with its exact rule id, each has a happens-before-
/// clean variant that stays silent, and each has a strict-mode death test
/// asserting the non-zero exit + "exa-check[<rule>]" report line.

#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "arch/gpu_arch.hpp"
#include "check/checker.hpp"
#include "hip/hip_runtime.hpp"

namespace exa {
namespace {

using check::Checker;
using check::Rule;

class CheckRulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Configure first (checker off: no leak scan of prior test state),
    // then arm and start from a clean slate.
    hip::Runtime::instance().configure(arch::mi250x_gcd(), 2);
    Checker::instance().set_mode(check::Mode::kOn);
    Checker::instance().clear();
  }

  void TearDown() override {
    Checker::instance().set_mode(check::Mode::kOff);
    Checker::instance().clear();
    hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  }

  static std::uint64_t count(Rule rule) {
    return Checker::instance().count(rule);
  }
  static const char* first_id() {
    const auto diags = Checker::instance().diagnostics();
    return diags.empty() ? "" : check::rule_id(diags.front().rule);
  }
};

TEST_F(CheckRulesTest, RuleIdsAreStable) {
  EXPECT_STREQ(check::rule_id(Rule::kUseAfterFree), "uaf");
  EXPECT_STREQ(check::rule_id(Rule::kDoubleFree), "double-free");
  EXPECT_STREQ(check::rule_id(Rule::kStreamMisuse), "stream-misuse");
  EXPECT_STREQ(check::rule_id(Rule::kAsyncRace), "async-race");
  EXPECT_STREQ(check::rule_id(Rule::kMissingSync), "missing-sync");
  EXPECT_STREQ(check::rule_id(Rule::kEventMisuse), "event-misuse");
  EXPECT_STREQ(check::rule_id(Rule::kLeak), "leak");
}

// --- uaf ----------------------------------------------------------------

TEST_F(CheckRulesTest, UseAfterFreeOnCopyFires) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 256), hip::hipSuccess);
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
  char host[8] = {};
  // The copy is vetoed: the backing storage is genuinely gone.
  EXPECT_EQ(hip::hipMemcpy(host, d, sizeof(host), hip::hipMemcpyDeviceToHost),
            hip::hipErrorInvalidValue);
  EXPECT_EQ(count(Rule::kUseAfterFree), 1u);
  EXPECT_STREQ(first_id(), "uaf");
}

TEST_F(CheckRulesTest, UseAfterFreeOnKernelBufferFires) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 256), hip::hipSuccess);
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
  hip::Kernel k;
  k.profile.name = "touch_freed";
  k.buffers.push_back(check::BufferUse{d, 256, /*write=*/true});
  EXPECT_EQ(hip::hipLaunchKernelEXA(k, sim::LaunchConfig{1, 64}),
            hip::hipErrorInvalidValue);
  EXPECT_EQ(count(Rule::kUseAfterFree), 1u);
}

TEST_F(CheckRulesTest, ReallocatedRangeIsNotUseAfterFree) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 256), hip::hipSuccess);
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
  // The allocator may return the same range; a fresh allocation there must
  // clear the tombstone.
  void* d2 = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d2, 256), hip::hipSuccess);
  char host[8] = {};
  if (d2 == d) {
    EXPECT_EQ(
        hip::hipMemcpy(host, d2, sizeof(host), hip::hipMemcpyDeviceToHost),
        hip::hipSuccess);
  }
  EXPECT_EQ(count(Rule::kUseAfterFree), 0u);
  ASSERT_EQ(hip::hipFree(d2), hip::hipSuccess);
}

// --- double-free --------------------------------------------------------

TEST_F(CheckRulesTest, DoubleFreeFires) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 128), hip::hipSuccess);
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
  EXPECT_EQ(hip::hipFree(d), hip::hipErrorInvalidDevicePointer);
  EXPECT_EQ(count(Rule::kDoubleFree), 1u);
  EXPECT_STREQ(first_id(), "double-free");
}

// --- stream-misuse ------------------------------------------------------

TEST_F(CheckRulesTest, ForeignDeviceFreeFires) {
  ASSERT_EQ(hip::hipSetDevice(0), hip::hipSuccess);
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 128), hip::hipSuccess);
  ASSERT_EQ(hip::hipSetDevice(1), hip::hipSuccess);
  EXPECT_EQ(hip::hipFree(d), hip::hipErrorInvalidValue);
  EXPECT_EQ(count(Rule::kStreamMisuse), 1u);
  EXPECT_STREQ(first_id(), "stream-misuse");
  ASSERT_EQ(hip::hipSetDevice(0), hip::hipSuccess);
  EXPECT_EQ(hip::hipFree(d), hip::hipSuccess);
}

TEST_F(CheckRulesTest, CopyOnDestroyedStreamFires) {
  hip::hipStream_t s = nullptr;
  ASSERT_EQ(hip::hipStreamCreate(&s), hip::hipSuccess);
  ASSERT_EQ(hip::hipStreamDestroy(s), hip::hipSuccess);
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 64), hip::hipSuccess);
  char host[64] = {};
  EXPECT_EQ(hip::hipMemcpyAsync(d, host, 64, hip::hipMemcpyHostToDevice, s),
            hip::hipErrorInvalidResourceHandle);
  EXPECT_EQ(count(Rule::kStreamMisuse), 1u);
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
}

TEST_F(CheckRulesTest, CopyOnForeignDeviceStreamFires) {
  // Memory owned by device 0, stream living on device 1.
  ASSERT_EQ(hip::hipSetDevice(0), hip::hipSuccess);
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 64), hip::hipSuccess);
  ASSERT_EQ(hip::hipSetDevice(1), hip::hipSuccess);
  hip::hipStream_t s = nullptr;
  ASSERT_EQ(hip::hipStreamCreate(&s), hip::hipSuccess);
  char host[64] = {};
  EXPECT_EQ(hip::hipMemcpyAsync(d, host, 64, hip::hipMemcpyHostToDevice, s),
            hip::hipSuccess);
  EXPECT_EQ(count(Rule::kStreamMisuse), 1u);
  ASSERT_EQ(hip::hipStreamSynchronize(s), hip::hipSuccess);
  ASSERT_EQ(hip::hipStreamDestroy(s), hip::hipSuccess);
  ASSERT_EQ(hip::hipSetDevice(0), hip::hipSuccess);
  EXPECT_EQ(hip::hipFree(d), hip::hipSuccess);
}

// --- async-race ---------------------------------------------------------

TEST_F(CheckRulesTest, AsyncHostBufferReuseFires) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 1024), hip::hipSuccess);
  std::vector<char> host(1024, 1);
  ASSERT_EQ(hip::hipMemcpyAsync(d, host.data(), host.size(),
                                hip::hipMemcpyHostToDevice, nullptr),
            hip::hipSuccess);
  // Reusing the source buffer while the copy is in flight is the classic
  // hipMemcpyAsync race.
  check::annotate_host_write(host.data(), host.size(), "test::reuse");
  EXPECT_EQ(count(Rule::kAsyncRace), 1u);
  EXPECT_STREQ(first_id(), "async-race");
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
}

TEST_F(CheckRulesTest, AsyncHostBufferReuseAfterSyncIsClean) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 1024), hip::hipSuccess);
  std::vector<char> host(1024, 1);
  ASSERT_EQ(hip::hipMemcpyAsync(d, host.data(), host.size(),
                                hip::hipMemcpyHostToDevice, nullptr),
            hip::hipSuccess);
  ASSERT_EQ(hip::hipStreamSynchronize(nullptr), hip::hipSuccess);
  check::annotate_host_write(host.data(), host.size(), "test::reuse");
  EXPECT_EQ(Checker::instance().total(), 0u);
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
}

TEST_F(CheckRulesTest, ReadingAsyncDownloadBeforeSyncFires) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 1024), hip::hipSuccess);
  std::vector<char> host(1024, 0);
  ASSERT_EQ(hip::hipMemcpyAsync(host.data(), d, host.size(),
                                hip::hipMemcpyDeviceToHost, nullptr),
            hip::hipSuccess);
  check::annotate_host_read(host.data(), host.size(), "test::consume");
  EXPECT_EQ(count(Rule::kAsyncRace), 1u);
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
}

// --- missing-sync -------------------------------------------------------

TEST_F(CheckRulesTest, LaunchThenHostReadWithoutSyncFires) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 512), hip::hipSuccess);
  hip::Kernel k;
  k.profile.name = "writer";
  k.buffers.push_back(check::BufferUse{d, 512, /*write=*/true});
  ASSERT_EQ(hip::hipLaunchKernelEXA(k, sim::LaunchConfig{1, 64}),
            hip::hipSuccess);
  check::annotate_host_read(d, 512, "test::read_result");
  EXPECT_EQ(count(Rule::kMissingSync), 1u);
  EXPECT_STREQ(first_id(), "missing-sync");
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
}

TEST_F(CheckRulesTest, LaunchThenHostReadAfterSyncIsClean) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 512), hip::hipSuccess);
  hip::Kernel k;
  k.profile.name = "writer";
  k.buffers.push_back(check::BufferUse{d, 512, /*write=*/true});
  ASSERT_EQ(hip::hipLaunchKernelEXA(k, sim::LaunchConfig{1, 64}),
            hip::hipSuccess);
  ASSERT_EQ(hip::hipDeviceSynchronize(), hip::hipSuccess);
  check::annotate_host_read(d, 512, "test::read_result");
  EXPECT_EQ(Checker::instance().total(), 0u);
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
}

TEST_F(CheckRulesTest, CrossStreamReadWithoutEdgeFires) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 256), hip::hipSuccess);
  hip::hipStream_t s = nullptr;
  ASSERT_EQ(hip::hipStreamCreate(&s), hip::hipSuccess);
  std::vector<char> host(256, 7);
  // Write d on stream s, then read it on the default stream with no edge.
  ASSERT_EQ(hip::hipMemcpyAsync(d, host.data(), host.size(),
                                hip::hipMemcpyHostToDevice, s),
            hip::hipSuccess);
  std::vector<char> out(256, 0);
  ASSERT_EQ(hip::hipMemcpyAsync(out.data(), d, out.size(),
                                hip::hipMemcpyDeviceToHost, nullptr),
            hip::hipSuccess);
  EXPECT_EQ(count(Rule::kMissingSync), 1u);
  ASSERT_EQ(hip::hipDeviceSynchronize(), hip::hipSuccess);
  ASSERT_EQ(hip::hipStreamDestroy(s), hip::hipSuccess);
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
}

TEST_F(CheckRulesTest, StreamWaitEventEstablishesCrossStreamEdge) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 256), hip::hipSuccess);
  hip::hipStream_t s = nullptr;
  ASSERT_EQ(hip::hipStreamCreate(&s), hip::hipSuccess);
  hip::hipEvent_t e = nullptr;
  ASSERT_EQ(hip::hipEventCreate(&e), hip::hipSuccess);
  std::vector<char> host(256, 7);
  ASSERT_EQ(hip::hipMemcpyAsync(d, host.data(), host.size(),
                                hip::hipMemcpyHostToDevice, s),
            hip::hipSuccess);
  ASSERT_EQ(hip::hipEventRecord(e, s), hip::hipSuccess);
  // The default stream now waits on the event: the read is ordered.
  ASSERT_EQ(hip::hipStreamWaitEvent(nullptr, e), hip::hipSuccess);
  std::vector<char> out(256, 0);
  ASSERT_EQ(hip::hipMemcpyAsync(out.data(), d, out.size(),
                                hip::hipMemcpyDeviceToHost, nullptr),
            hip::hipSuccess);
  EXPECT_EQ(Checker::instance().total(), 0u);
  ASSERT_EQ(hip::hipDeviceSynchronize(), hip::hipSuccess);
  ASSERT_EQ(hip::hipEventDestroy(e), hip::hipSuccess);
  ASSERT_EQ(hip::hipStreamDestroy(s), hip::hipSuccess);
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
}

// --- event-misuse -------------------------------------------------------

TEST_F(CheckRulesTest, WaitBeforeRecordFires) {
  hip::hipEvent_t e = nullptr;
  ASSERT_EQ(hip::hipEventCreate(&e), hip::hipSuccess);
  EXPECT_EQ(hip::hipEventSynchronize(e), hip::hipErrorInvalidResourceHandle);
  EXPECT_EQ(count(Rule::kEventMisuse), 1u);
  EXPECT_STREQ(first_id(), "event-misuse");
  ASSERT_EQ(hip::hipEventDestroy(e), hip::hipSuccess);
}

TEST_F(CheckRulesTest, StreamWaitOnUnrecordedEventFires) {
  hip::hipEvent_t e = nullptr;
  ASSERT_EQ(hip::hipEventCreate(&e), hip::hipSuccess);
  // HIP treats this as a completed no-op — which is exactly why it is a
  // silent ordering bug worth flagging.
  EXPECT_EQ(hip::hipStreamWaitEvent(nullptr, e), hip::hipSuccess);
  EXPECT_EQ(count(Rule::kEventMisuse), 1u);
  ASSERT_EQ(hip::hipEventDestroy(e), hip::hipSuccess);
}

TEST_F(CheckRulesTest, ElapsedTimeOrderViolationFires) {
  hip::hipEvent_t a = nullptr;
  hip::hipEvent_t b = nullptr;
  ASSERT_EQ(hip::hipEventCreate(&a), hip::hipSuccess);
  ASSERT_EQ(hip::hipEventCreate(&b), hip::hipSuccess);
  // Record "stop" first, then "start": elapsed(start=b, stop=a) is
  // backwards on the same stream.
  ASSERT_EQ(hip::hipEventRecord(a, nullptr), hip::hipSuccess);
  hip::hipHostBusy(1.0e-6);
  ASSERT_EQ(hip::hipEventRecord(b, nullptr), hip::hipSuccess);
  float ms = 0.0f;
  EXPECT_EQ(hip::hipEventElapsedTime(&ms, b, a), hip::hipSuccess);
  EXPECT_EQ(count(Rule::kEventMisuse), 1u);
  ASSERT_EQ(hip::hipEventDestroy(a), hip::hipSuccess);
  ASSERT_EQ(hip::hipEventDestroy(b), hip::hipSuccess);
}

TEST_F(CheckRulesTest, RecordedEventLifecycleIsClean) {
  hip::hipEvent_t a = nullptr;
  hip::hipEvent_t b = nullptr;
  ASSERT_EQ(hip::hipEventCreate(&a), hip::hipSuccess);
  ASSERT_EQ(hip::hipEventCreate(&b), hip::hipSuccess);
  ASSERT_EQ(hip::hipEventRecord(a, nullptr), hip::hipSuccess);
  hip::hipHostBusy(1.0e-6);
  ASSERT_EQ(hip::hipEventRecord(b, nullptr), hip::hipSuccess);
  ASSERT_EQ(hip::hipEventSynchronize(b), hip::hipSuccess);
  float ms = 0.0f;
  EXPECT_EQ(hip::hipEventElapsedTime(&ms, a, b), hip::hipSuccess);
  EXPECT_EQ(Checker::instance().total(), 0u);
  ASSERT_EQ(hip::hipEventDestroy(a), hip::hipSuccess);
  ASSERT_EQ(hip::hipEventDestroy(b), hip::hipSuccess);
}

// --- leak ---------------------------------------------------------------

TEST_F(CheckRulesTest, LeakAtTeardownFires) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 4096), hip::hipSuccess);
  hip::hipStream_t s = nullptr;
  ASSERT_EQ(hip::hipStreamCreate(&s), hip::hipSuccess);
  hip::hipEvent_t e = nullptr;
  ASSERT_EQ(hip::hipEventCreate(&e), hip::hipSuccess);
  // Reconfiguration is device teardown: everything still live leaks.
  hip::Runtime::instance().configure(arch::mi250x_gcd(), 2);
  EXPECT_EQ(count(Rule::kLeak), 3u);
  EXPECT_STREQ(first_id(), "leak");
}

TEST_F(CheckRulesTest, BalancedLifecycleHasNoLeaks) {
  void* d = nullptr;
  ASSERT_EQ(hip::hipMalloc(&d, 4096), hip::hipSuccess);
  hip::hipStream_t s = nullptr;
  ASSERT_EQ(hip::hipStreamCreate(&s), hip::hipSuccess);
  hip::hipEvent_t e = nullptr;
  ASSERT_EQ(hip::hipEventCreate(&e), hip::hipSuccess);
  ASSERT_EQ(hip::hipEventDestroy(e), hip::hipSuccess);
  ASSERT_EQ(hip::hipStreamDestroy(s), hip::hipSuccess);
  ASSERT_EQ(hip::hipFree(d), hip::hipSuccess);
  hip::Runtime::instance().configure(arch::mi250x_gcd(), 2);
  EXPECT_EQ(Checker::instance().total(), 0u);
}

TEST_F(CheckRulesTest, SimCensusCatchesUntrackedAllocations) {
  // Allocate behind the shim's back: the sim census cross-check reports it
  // even though the HIP pointer table never saw it.
  void* raw = hip::Runtime::instance().device(0).malloc_device(2048);
  ASSERT_NE(raw, nullptr);
  hip::Runtime::instance().configure(arch::mi250x_gcd(), 2);
  EXPECT_EQ(count(Rule::kLeak), 1u);
}

// --- strict mode: exact rule id + non-zero exit -------------------------

class CheckStrictDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Forked death-test children re-run the scenario; the parent process
    // keeps its checker off so only the child reports.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(CheckStrictDeathTest, UafExitsNonZero) {
  EXPECT_EXIT(
      {
        hip::hipCheckEnableEXA(/*strict=*/true);
        void* d = nullptr;
        (void)hip::hipMalloc(&d, 64);
        (void)hip::hipFree(d);
        char host[8] = {};
        (void)hip::hipMemcpy(host, d, sizeof(host),
                             hip::hipMemcpyDeviceToHost);
        std::exit(0);
      },
      ::testing::ExitedWithCode(1), "exa-check\\[uaf\\]");
}

TEST_F(CheckStrictDeathTest, DoubleFreeExitsNonZero) {
  EXPECT_EXIT(
      {
        hip::hipCheckEnableEXA(/*strict=*/true);
        void* d = nullptr;
        (void)hip::hipMalloc(&d, 64);
        (void)hip::hipFree(d);
        (void)hip::hipFree(d);
        std::exit(0);
      },
      ::testing::ExitedWithCode(1), "exa-check\\[double-free\\]");
}

TEST_F(CheckStrictDeathTest, StreamMisuseExitsNonZero) {
  EXPECT_EXIT(
      {
        hip::Runtime::instance().configure(arch::mi250x_gcd(), 2);
        hip::hipCheckEnableEXA(/*strict=*/true);
        (void)hip::hipSetDevice(0);
        void* d = nullptr;
        (void)hip::hipMalloc(&d, 64);
        (void)hip::hipSetDevice(1);
        (void)hip::hipFree(d);
        std::exit(0);
      },
      ::testing::ExitedWithCode(1), "exa-check\\[stream-misuse\\]");
}

TEST_F(CheckStrictDeathTest, AsyncRaceExitsNonZero) {
  EXPECT_EXIT(
      {
        hip::hipCheckEnableEXA(/*strict=*/true);
        void* d = nullptr;
        (void)hip::hipMalloc(&d, 256);
        char host[256] = {};
        (void)hip::hipMemcpyAsync(d, host, sizeof(host),
                                  hip::hipMemcpyHostToDevice, nullptr);
        check::annotate_host_write(host, sizeof(host), "death::reuse");
        std::exit(0);
      },
      ::testing::ExitedWithCode(1), "exa-check\\[async-race\\]");
}

TEST_F(CheckStrictDeathTest, MissingSyncExitsNonZero) {
  EXPECT_EXIT(
      {
        hip::hipCheckEnableEXA(/*strict=*/true);
        void* d = nullptr;
        (void)hip::hipMalloc(&d, 256);
        hip::Kernel k;
        k.profile.name = "writer";
        k.buffers.push_back(check::BufferUse{d, 256, /*write=*/true});
        (void)hip::hipLaunchKernelEXA(k, sim::LaunchConfig{1, 64});
        check::annotate_host_read(d, 256, "death::read");
        std::exit(0);
      },
      ::testing::ExitedWithCode(1), "exa-check\\[missing-sync\\]");
}

TEST_F(CheckStrictDeathTest, EventMisuseExitsNonZero) {
  EXPECT_EXIT(
      {
        hip::hipCheckEnableEXA(/*strict=*/true);
        hip::hipEvent_t e = nullptr;
        (void)hip::hipEventCreate(&e);
        (void)hip::hipEventSynchronize(e);
        std::exit(0);
      },
      ::testing::ExitedWithCode(1), "exa-check\\[event-misuse\\]");
}

TEST_F(CheckStrictDeathTest, LeakExitsNonZero) {
  EXPECT_EXIT(
      {
        hip::hipCheckEnableEXA(/*strict=*/true);
        void* d = nullptr;
        (void)hip::hipMalloc(&d, 4096);
        hip::hipCheckFinalizeEXA();  // explicit teardown: scans + exits
        std::exit(0);
      },
      ::testing::ExitedWithCode(1), "exa-check\\[leak\\]");
}

}  // namespace
}  // namespace exa
