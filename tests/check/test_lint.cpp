/// Unit coverage for the exa-lint static pass: each rule fires on a
/// minimal repro, stays quiet on the idiomatic fix, and the masking /
/// suppression machinery handles the constructs that defeat naive greps
/// (comments, strings, raw strings, qualified names, (void) casts).

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "check/lint.hpp"

namespace exa::check::lint {
namespace {

// The deprecated-cuda mapping table is injected (the lint library never
// includes upward into src/hip); register the handful of spellings these
// tests exercise once, before any TEST runs.
const bool g_mappings = [] {
  set_cuda_mappings({{"cudaMalloc", "hipMalloc", false},
                     {"cudaDeviceSynchronize", "hipDeviceSynchronize", false},
                     {"cudaMemcpy", "hipMemcpy", false}});
  return true;
}();

bool has_rule(const Report& report, const std::string& rule) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::size_t rule_count(const Report& report, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(report.findings.begin(), report.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintTest, RuleListIsStable) {
  const auto& rules = rule_ids();
  ASSERT_EQ(rules.size(), 12u);
  for (const char* id :
       {"unchecked-hip-call", "deprecated-cuda", "raw-device-alloc",
        "blocking-in-parallel", "nondeterminism-in-parallel",
        "lock-in-parallel", "shared-write-in-parallel",
        "unordered-in-reduction", "fp-contract-in-mathlib",
        "layer-upward-include", "layer-cycle", "layer-private-include"}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), id), rules.end())
        << "missing rule id " << id;
  }
}

// --- unchecked-hip-call -------------------------------------------------

TEST(LintTest, UncheckedCallFires) {
  const auto r = lint_source("void f() {\n  hipDeviceSynchronize();\n}\n",
                             "t.cpp");
  EXPECT_TRUE(has_rule(r, "unchecked-hip-call"));
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings.front().line, 2);
}

TEST(LintTest, CheckedCallIsClean) {
  const auto r = lint_source(
      "void f() {\n"
      "  hipError_t err = hipDeviceSynchronize();\n"
      "  if (hipDeviceSynchronize() != hipSuccess) return;\n"
      "  HIP_CHECK(hipDeviceSynchronize());\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "unchecked-hip-call"));
}

TEST(LintTest, VoidCastCountsAsChecked) {
  const auto r =
      lint_source("void f() {\n  (void)hipDeviceSynchronize();\n}\n",
                  "t.cpp");
  EXPECT_FALSE(has_rule(r, "unchecked-hip-call"));
}

TEST(LintTest, QualifiedCallStillRecognized) {
  // `exa::hip::hipFoo(...)` at statement position: the `::` qualifier must
  // not read as a statement boundary.
  const auto fires = lint_source(
      "void f() {\n  exa::hip::hipDeviceSynchronize();\n}\n", "t.cpp");
  EXPECT_TRUE(has_rule(fires, "unchecked-hip-call"));
  const auto clean = lint_source(
      "void f() {\n  auto e = exa::hip::hipDeviceSynchronize();\n  (void)e;\n}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(clean, "unchecked-hip-call"));
}

TEST(LintTest, ExemptFunctionsNeedNoCheck) {
  const auto r = lint_source(
      "void f() {\n"
      "  hipGetErrorString(hipSuccess);\n"
      "  hipHostBusy(1.0e-6);\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "unchecked-hip-call"));
}

TEST(LintTest, CallsInCommentsAndStringsIgnored) {
  const auto r = lint_source(
      "// hipDeviceSynchronize();\n"
      "/* hipFree(p); */\n"
      "const char* s = \"hipMalloc(&p, n);\";\n",
      "t.cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintTest, RawStringContentIgnored) {
  // A raw string holding CUDA source (the port_a_cuda_app pattern) must
  // not leak its content into the scanned code.
  const auto r = lint_source(
      "const char* src = R\"cu(\n"
      "  cudaMalloc(&p, n);\n"
      "  kernel<<<grid, block>>>(p);\n"
      ")cu\";\n"
      "void f() {}\n",
      "t.cpp");
  EXPECT_TRUE(r.findings.empty());
}

// --- tokenizer edge cases -----------------------------------------------

TEST(LintTest, BackslashContinuedLineCommentMasksNextLine) {
  // Phase-2 line splicing: a `//` comment ending in a backslash swallows
  // the next physical line too.
  const auto r = lint_source(
      "void f(void** p) {\n"
      "  // dead code: \\\n"
      "  (void)hipMalloc(p, 64);\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintTest, UncontinuedCommentDoesNotSwallowNextLine) {
  const auto r = lint_source(
      "void f(void** p) {\n"
      "  // a plain comment\n"
      "  (void)hipMalloc(p, 64);\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "raw-device-alloc"));
}

TEST(LintTest, RawStringCustomDelimiter) {
  // R"xx(...)xx" — a plain `)"` inside must NOT close the literal.
  const auto r = lint_source(
      "const char* s = R\"xx(contains )\" and cudaMalloc(&p, n);)xx\";\n"
      "void f(void** p) {\n  (void)hipMalloc(p, 64);\n}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "deprecated-cuda"));
  EXPECT_TRUE(has_rule(r, "raw-device-alloc"));  // tokenizer resynced
}

TEST(LintTest, EncodingPrefixedRawStrings) {
  const auto r = lint_source(
      "const char* a = u8R\"(cudaMalloc(&p, n);)\";\n"
      "const wchar_t* b = LR\"(cudaMemcpy(d, s, n);)\";\n",
      "t.cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintTest, IdentifierEndingInRIsNotARawString) {
  // FOOR"..." is macro FOOR followed by an ordinary string, not a raw
  // string — treating it as raw would swallow the rest of the file.
  const auto r = lint_source(
      "const char* s = FOOR\"text\";\n"
      "void f(void** p) {\n  (void)hipMalloc(p, 64);\n}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "raw-device-alloc"));
}

TEST(LintTest, CharLiteralWithQuoteDoesNotOpenString) {
  // '"' must not start a string literal that masks the rest of the line.
  const auto r = lint_source(
      "void f(void** p) {\n"
      "  char q = '\"'; (void)hipMalloc(p, 64);\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "raw-device-alloc"));
}

TEST(LintTest, CharLiteralWithBraceDoesNotConfuseRegionTracking) {
  // '{' in a char literal must not unbalance the parallel-region brace
  // tracker: the hipMemcpy after the region is NOT inside it.
  const auto r = lint_source(
      "void f(void* d, void* h) {\n"
      "  pfw::parallel_for(\"k\", 8, [&](std::size_t i) {\n"
      "    char open = '{';\n"
      "    use(open, i);\n"
      "  });\n"
      "  (void)hipMemcpy(d, h, 8, hipMemcpyHostToDevice);\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "blocking-in-parallel"));
}

TEST(LintTest, DigitSeparatorsDoNotTerminateScanning) {
  // 1'000'000: the ' between digits is a separator, not a char literal.
  const auto r = lint_source(
      "void f(void** p) {\n"
      "  const int n = 1'000'000;\n"
      "  (void)hipMalloc(p, n);\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "raw-device-alloc"));
}

// --- deprecated-cuda ----------------------------------------------------

TEST(LintTest, CudaSpellingFires) {
  const auto r = lint_source(
      "void f() {\n  (void)cudaDeviceSynchronize();\n}\n", "t.cpp");
  EXPECT_TRUE(has_rule(r, "deprecated-cuda"));
}

TEST(LintTest, TripleChevronLaunchFires) {
  const auto r = lint_source(
      "void f() {\n  kernel<<<grid, block>>>(arg);\n}\n", "t.cpp");
  EXPECT_TRUE(has_rule(r, "deprecated-cuda"));
}

TEST(LintTest, HipSpellingIsClean) {
  const auto r = lint_source(
      "void f() {\n  (void)hipDeviceSynchronize();\n}\n", "t.cpp");
  EXPECT_FALSE(has_rule(r, "deprecated-cuda"));
}

TEST(LintTest, WordBoundaryRespected) {
  // `my_cudaMalloc_wrapper` is not a CUDA API call.
  const auto r = lint_source(
      "void f() {\n  (void)my_cudaMalloc_wrapper();\n}\n", "t.cpp");
  EXPECT_FALSE(has_rule(r, "deprecated-cuda"));
}

// --- raw-device-alloc ---------------------------------------------------

TEST(LintTest, RawMallocAndFreeFire) {
  const auto r = lint_source(
      "void f(void** p) {\n"
      "  (void)hipMalloc(p, 64);\n"
      "  (void)hipFree(*p);\n"
      "}\n",
      "t.cpp");
  EXPECT_EQ(rule_count(r, "raw-device-alloc"), 2u);
}

TEST(LintTest, PooledViewsAreClean) {
  const auto r = lint_source(
      "void f() {\n  auto v = pfw::make_view<float>(1024);\n}\n", "t.cpp");
  EXPECT_FALSE(has_rule(r, "raw-device-alloc"));
}

// --- blocking-in-parallel -----------------------------------------------

TEST(LintTest, BlockingCallInParallelBodyFires) {
  const auto r = lint_source(
      "void f(void* d, void* h) {\n"
      "  pfw::parallel_for(\"k\", 128, [&](std::size_t i) {\n"
      "    (void)hipMemcpy(d, h, 8, hipMemcpyHostToDevice);\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "blocking-in-parallel"));
}

TEST(LintTest, BlockingCallOutsideParallelBodyIsClean) {
  const auto r = lint_source(
      "void f(void* d, void* h) {\n"
      "  (void)hipMemcpy(d, h, 8, hipMemcpyHostToDevice);\n"
      "  pfw::parallel_for(\"k\", 128, [&](std::size_t i) { work(i); });\n"
      "  (void)hipDeviceSynchronize();\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "blocking-in-parallel"));
}

TEST(LintTest, ParallelReduceBodyAlsoScanned) {
  const auto r = lint_source(
      "double f() {\n"
      "  return pfw::parallel_reduce(\"r\", 64, 0.0,\n"
      "      [&](std::size_t i, double a) {\n"
      "        (void)hipDeviceSynchronize();\n"
      "        return a;\n"
      "      });\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "blocking-in-parallel"));
}

// --- suppressions -------------------------------------------------------

TEST(LintTest, SameLineSuppressionCountsAsSuppressed) {
  const auto r = lint_source(
      "void f(void** p) {\n"
      "  (void)hipMalloc(p, 64);  // exa-lint: allow(raw-device-alloc)\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "raw-device-alloc"));
  EXPECT_EQ(r.suppressed, 1);
}

TEST(LintTest, PrecedingLineSuppressionApplies) {
  const auto r = lint_source(
      "void f(void** p) {\n"
      "  // exa-lint: allow(raw-device-alloc)\n"
      "  (void)hipMalloc(p, 64);\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "raw-device-alloc"));
  EXPECT_EQ(r.suppressed, 1);
}

TEST(LintTest, SuppressionIsRuleSpecific) {
  // Allowing raw-device-alloc must not hide the unchecked-call finding on
  // the same line.
  const auto r = lint_source(
      "void f(void** p) {\n"
      "  hipMalloc(p, 64);  // exa-lint: allow(raw-device-alloc)\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "unchecked-hip-call"));
  EXPECT_FALSE(has_rule(r, "raw-device-alloc"));
}

TEST(LintTest, MultiRuleSuppression) {
  const auto r = lint_source(
      "void f(void** p) {\n"
      "  hipMalloc(p, 64);  // exa-lint: allow(raw-device-alloc,"
      " unchecked-hip-call)\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 2);
}

TEST(LintTest, DisabledRulesAreSkipped) {
  const auto r = lint_source(
      "void f(void** p) {\n  (void)hipMalloc(p, 64);\n}\n", "t.cpp",
      {"raw-device-alloc"});
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintTest, FindingFormatIsFileLineRuleMessage) {
  const auto r =
      lint_source("void f() {\n  hipDeviceSynchronize();\n}\n", "dir/x.cpp");
  ASSERT_FALSE(r.findings.empty());
  const std::string line = r.findings.front().format();
  EXPECT_NE(line.find("dir/x.cpp:2:"), std::string::npos);
  EXPECT_NE(line.find("exa-lint[unchecked-hip-call]"), std::string::npos);
}

}  // namespace
}  // namespace exa::check::lint
