/// Unit coverage for the exa-lint v2 passes: the determinism rules
/// (nondeterminism / lock / shared-write / unordered-in-reduction /
/// fp-contract), the layering conformance pass against the layer
/// manifest, the baseline-suppression file, and the JSON/SARIF emitters
/// plus the minimal-shape SARIF validator.

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "check/lint.hpp"
#include "check/lint2/layering.hpp"
#include "check/lint2/report.hpp"

namespace exa::check::lint {
namespace {

bool has_rule(const Report& report, const std::string& rule) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --- nondeterminism-in-parallel -----------------------------------------

TEST(Lint2Test, RandInParallelBodyFires) {
  const auto r = lint_source(
      "void f(double* out) {\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    out[i] = std::rand();\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "nondeterminism-in-parallel"));
}

TEST(Lint2Test, WallClockInParallelBodyFires) {
  const auto r = lint_source(
      "void f(double* out) {\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    out[i] = time(nullptr);\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "nondeterminism-in-parallel"));
}

TEST(Lint2Test, RandomDeviceInParallelBodyFires) {
  const auto r = lint_source(
      "void f(double* out) {\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    std::random_device rd;\n"
      "    out[i] = rd();\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "nondeterminism-in-parallel"));
}

TEST(Lint2Test, RandOutsideParallelBodyIsClean) {
  const auto r = lint_source(
      "void f(double* out) {\n"
      "  const int seed = std::rand();\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    out[i] = counter_rng(seed, i);\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "nondeterminism-in-parallel"));
}

TEST(Lint2Test, IdentifierContainingTimeIsClean) {
  // `runtime` / `timestep` must not match the `time` call heuristic.
  const auto r = lint_source(
      "void f(double* out, double timestep) {\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    out[i] = advance(timestep, i);\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "nondeterminism-in-parallel"));
}

// --- lock-in-parallel ---------------------------------------------------

TEST(Lint2Test, LockGuardInParallelBodyFires) {
  const auto r = lint_source(
      "void f(std::mutex& m, double* out) {\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    std::lock_guard<std::mutex> g(m);\n"
      "    out[i] = 1.0;\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "lock-in-parallel"));
}

TEST(Lint2Test, MemberLockCallInParallelBodyFires) {
  const auto r = lint_source(
      "void f(double* out) {\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    gate.lock();\n"
      "    out[i] = 1.0;\n"
      "    gate.unlock();\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "lock-in-parallel"));
}

TEST(Lint2Test, LockOutsideParallelBodyIsClean) {
  const auto r = lint_source(
      "void f(std::mutex& m, double* out) {\n"
      "  std::lock_guard<std::mutex> g(m);\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    out[i] = 1.0;\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "lock-in-parallel"));
}

// --- shared-write-in-parallel -------------------------------------------

TEST(Lint2Test, CapturedScalarWriteFires) {
  const auto r = lint_source(
      "double f() {\n"
      "  double total = 0.0;\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    total += value(i);\n"
      "  });\n"
      "  return total;\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "shared-write-in-parallel"));
}

TEST(Lint2Test, SubscriptedPerIndexWriteIsClean) {
  const auto r = lint_source(
      "void f(std::vector<double>& out) {\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    out[i] = value(i);\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "shared-write-in-parallel"));
}

TEST(Lint2Test, LocalDeclarationWriteIsClean) {
  // A name declared inside the body (including reference bindings to
  // per-index elements) is region-local, not shared state.
  const auto r = lint_source(
      "void f(std::vector<Particle>& parts) {\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    Particle& p = parts[i];\n"
      "    p.x += 1.0;\n"
      "    double acc = 0.0;\n"
      "    acc += p.x;\n"
      "    p.v = acc;\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "shared-write-in-parallel"));
}

TEST(Lint2Test, MemberIncrementOfLocalRefIsClean) {
  const auto r = lint_source(
      "void f(std::vector<State>& states) {\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    State& st = states[i];\n"
      "    ++st.events;\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "shared-write-in-parallel"));
}

TEST(Lint2Test, ByValueCaptureIsClean) {
  // [=] capture: writes touch thread-local copies, not shared state.
  const auto r = lint_source(
      "void f() {\n"
      "  double total = 0.0;\n"
      "  pfw::parallel_for(\"k\", 64, [=](std::size_t i) mutable {\n"
      "    total += value(i);\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "shared-write-in-parallel"));
}

// --- unordered-in-reduction ---------------------------------------------

TEST(Lint2Test, UnorderedMapInReduceBodyFires) {
  const auto r = lint_source(
      "double f() {\n"
      "  return pfw::parallel_reduce(\"r\", 64, 0.0,\n"
      "      [&](std::size_t i, double a) {\n"
      "        const std::unordered_map<int, double>& w = weights(i);\n"
      "        for (const auto& kv : w) a += kv.second;\n"
      "        return a;\n"
      "      });\n"
      "}\n",
      "t.cpp");
  EXPECT_TRUE(has_rule(r, "unordered-in-reduction"));
}

TEST(Lint2Test, UnorderedMapInParallelForIsClean) {
  // Outside a reduction the iteration order doesn't feed an accumulated
  // result; the rule is reduction-specific.
  const auto r = lint_source(
      "void f(std::unordered_map<int, double>& w) {\n"
      "  pfw::parallel_for(\"k\", 64, [&](std::size_t i) {\n"
      "    touch(w, i);\n"
      "  });\n"
      "}\n",
      "t.cpp");
  EXPECT_FALSE(has_rule(r, "unordered-in-reduction"));
}

// --- fp-contract-in-mathlib ---------------------------------------------

TEST(Lint2Test, StdFmaInMathlibFires) {
  const auto r = lint_source(
      "double f(double a, double b, double c) {\n"
      "  return std::fma(a, b, c);\n"
      "}\n",
      "src/mathlib/kernels.cpp");
  EXPECT_TRUE(has_rule(r, "fp-contract-in-mathlib"));
}

TEST(Lint2Test, FpContractPragmaInMathlibFires) {
  const auto r = lint_source(
      "#pragma STDC FP_CONTRACT ON\n"
      "double f(double a, double b, double c) { return a * b + c; }\n",
      "src/mathlib/kernels.cpp");
  EXPECT_TRUE(has_rule(r, "fp-contract-in-mathlib"));
}

TEST(Lint2Test, FmaOutsideMathlibIsClean) {
  const auto r = lint_source(
      "double f(double a, double b, double c) {\n"
      "  return std::fma(a, b, c);\n"
      "}\n",
      "src/io/layout.cpp");
  EXPECT_FALSE(has_rule(r, "fp-contract-in-mathlib"));
}

TEST(Lint2Test, PlainMulAddInMathlibIsClean) {
  const auto r = lint_source(
      "double f(double a, double b, double c) { return a * b + c; }\n",
      "src/mathlib/kernels.cpp");
  EXPECT_TRUE(r.findings.empty());
}

// --- layering: manifest parsing -----------------------------------------

TEST(Lint2Test, ManifestParsesRanksAndPrivates) {
  const auto m = parse_layer_manifest(
      "# comment\n"
      "layer 0 support\n"
      "layer 1 mid\n"
      "layer 2 top\n"
      "private /detail/\n");
  ASSERT_TRUE(m.error.empty()) << m.error;
  EXPECT_EQ(m.rank.at("support"), 0);
  EXPECT_EQ(m.rank.at("top"), 2);
  ASSERT_EQ(m.private_patterns.size(), 1u);
  EXPECT_EQ(m.private_patterns[0], "/detail/");
}

TEST(Lint2Test, ManifestRejectsBadRank) {
  EXPECT_FALSE(parse_layer_manifest("layer x support\n").error.empty());
}

TEST(Lint2Test, ManifestRejectsDuplicateDir) {
  EXPECT_FALSE(
      parse_layer_manifest("layer 0 a\nlayer 1 a\n").error.empty());
}

TEST(Lint2Test, ManifestRejectsUnknownDirective) {
  EXPECT_FALSE(parse_layer_manifest("strata 0 a\n").error.empty());
}

// --- layering: conformance ----------------------------------------------

LayerManifest tiny_manifest() {
  auto m = parse_layer_manifest(
      "layer 0 support\n"
      "layer 1 mid\n"
      "layer 1 peer\n"
      "layer 2 top\n"
      "private /detail/\n");
  EXPECT_TRUE(m.error.empty()) << m.error;
  return m;
}

TEST(Lint2Test, UpwardIncludeFires) {
  const auto r = check_layering(
      tiny_manifest(),
      {{"src/mid/a.cpp", "#include \"top/api.hpp\"\n"}}, "src");
  EXPECT_TRUE(has_rule(r, "layer-upward-include"));
}

TEST(Lint2Test, SameRankCrossDirectoryIncludeFires) {
  // Equal rank is not "strictly lower": sibling layers may not couple.
  const auto r = check_layering(
      tiny_manifest(),
      {{"src/mid/a.cpp", "#include \"peer/api.hpp\"\n"}}, "src");
  EXPECT_TRUE(has_rule(r, "layer-upward-include"));
}

TEST(Lint2Test, DownwardAndOwnDirIncludesAreClean) {
  const auto r = check_layering(
      tiny_manifest(),
      {{"src/top/a.cpp",
        "#include \"mid/api.hpp\"\n#include \"support/log.hpp\"\n"
        "#include \"top/other.hpp\"\n"}},
      "src");
  EXPECT_TRUE(r.findings.empty());
}

TEST(Lint2Test, DirectoryCycleFires) {
  // mid -> peer and peer -> mid: reported once as a layer-cycle (plus the
  // upward findings on the individual includes).
  const auto r = check_layering(
      tiny_manifest(),
      {{"src/mid/a.cpp", "#include \"peer/api.hpp\"\n"},
       {"src/peer/b.cpp", "#include \"mid/api.hpp\"\n"}},
      "src");
  EXPECT_TRUE(has_rule(r, "layer-cycle"));
  EXPECT_EQ(static_cast<int>(std::count_if(
                r.findings.begin(), r.findings.end(),
                [](const Finding& f) { return f.rule == "layer-cycle"; })),
            1);
}

TEST(Lint2Test, PrivateReachInFires) {
  const auto r = check_layering(
      tiny_manifest(),
      {{"src/top/a.cpp", "#include \"mid/detail/impl.hpp\"\n"}}, "src");
  EXPECT_TRUE(has_rule(r, "layer-private-include"));
}

TEST(Lint2Test, PrivateWithinOwnDirIsClean) {
  const auto r = check_layering(
      tiny_manifest(),
      {{"src/mid/a.cpp", "#include \"mid/detail/impl.hpp\"\n"}}, "src");
  EXPECT_FALSE(has_rule(r, "layer-private-include"));
}

TEST(Lint2Test, UnrankedFileMayIncludeAnyLayerButNotPrivates) {
  const auto clean = check_layering(
      tiny_manifest(), {{"bench/b.cpp", "#include \"top/api.hpp\"\n"}},
      "src");
  EXPECT_TRUE(clean.findings.empty());
  const auto fires = check_layering(
      tiny_manifest(),
      {{"bench/b.cpp", "#include \"mid/detail/impl.hpp\"\n"}}, "src");
  EXPECT_TRUE(has_rule(fires, "layer-private-include"));
}

TEST(Lint2Test, LayeringSuppressionApplies) {
  const auto r = check_layering(
      tiny_manifest(),
      {{"src/mid/a.cpp",
        "// exa-lint: allow(layer-upward-include)\n"
        "#include \"top/api.hpp\"\n"}},
      "src");
  EXPECT_FALSE(has_rule(r, "layer-upward-include"));
  EXPECT_EQ(r.suppressed, 1);
}

// --- baseline -----------------------------------------------------------

TEST(Lint2Test, BaselineParsesInlineAndPrecedingJustifications) {
  const auto b = parse_baseline(
      "# this comment justifies the next entry\n"
      "deprecated-cuda src/hip/cuda_compat.hpp\n"
      "raw-device-alloc src/hip/hip_runtime.cpp  # shim defines the API\n");
  ASSERT_TRUE(b.error.empty()) << b.error;
  ASSERT_EQ(b.entries.size(), 2u);
  EXPECT_EQ(b.entries[0].rule, "deprecated-cuda");
  EXPECT_FALSE(b.entries[0].justification.empty());
  EXPECT_EQ(b.entries[1].path_suffix, "src/hip/hip_runtime.cpp");
  EXPECT_NE(b.entries[1].justification.find("shim"), std::string::npos);
}

TEST(Lint2Test, BaselineRejectsUnexplainedEntry) {
  const auto b = parse_baseline("deprecated-cuda src/hip/cuda_compat.hpp\n");
  EXPECT_FALSE(b.error.empty());
}

TEST(Lint2Test, BaselineSuffixMatchSuppressesFindings) {
  Report r;
  r.findings.push_back({"deprecated-cuda", "/abs/src/hip/cuda_compat.hpp",
                        7, "msg"});
  r.findings.push_back({"deprecated-cuda", "src/net/engine.cpp", 9, "msg"});
  const auto b = parse_baseline(
      "deprecated-cuda src/hip/cuda_compat.hpp  # compat table\n");
  ASSERT_TRUE(b.error.empty());
  std::vector<bool> used;
  EXPECT_EQ(apply_baseline(r, b, &used), 1);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].file, "src/net/engine.cpp");
  EXPECT_EQ(r.suppressed, 1);
  ASSERT_EQ(used.size(), 1u);
  EXPECT_TRUE(used[0]);
}

TEST(Lint2Test, BaselineUnusedEntryReported) {
  Report r;
  const auto b =
      parse_baseline("raw-device-alloc src/nowhere.cpp  # stale entry\n");
  ASSERT_TRUE(b.error.empty());
  std::vector<bool> used;
  EXPECT_EQ(apply_baseline(r, b, &used), 0);
  ASSERT_EQ(used.size(), 1u);
  EXPECT_FALSE(used[0]);
}

// --- reporting ----------------------------------------------------------

Report one_finding_report() {
  Report r;
  r.findings.push_back(
      {"raw-device-alloc", "src/x.cpp", 12, "raw hipMalloc"});
  r.suppressed = 3;
  return r;
}

TEST(Lint2Test, JsonCarriesFindingsAndSuppressedCount) {
  const std::string j = to_json(one_finding_report());
  EXPECT_NE(j.find("\"findings\""), std::string::npos);
  EXPECT_NE(j.find("\"raw-device-alloc\""), std::string::npos);
  EXPECT_NE(j.find("\"src/x.cpp\""), std::string::npos);
  EXPECT_NE(j.find("\"suppressed\": 3"), std::string::npos);
}

TEST(Lint2Test, SarifOutputPassesShapeValidator) {
  const std::string s = to_sarif(one_finding_report());
  std::string why;
  EXPECT_TRUE(sarif_has_minimal_shape(s, &why)) << why;
  EXPECT_NE(s.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"exa-lint\""), std::string::npos);
  EXPECT_NE(s.find("\"raw-device-alloc\""), std::string::npos);
}

TEST(Lint2Test, EmptyReportSarifStillWellShaped) {
  std::string why;
  EXPECT_TRUE(sarif_has_minimal_shape(to_sarif(Report{}), &why)) << why;
}

TEST(Lint2Test, ShapeValidatorRejectsNonSarif) {
  std::string why;
  EXPECT_FALSE(sarif_has_minimal_shape("{}", &why));
  EXPECT_FALSE(why.empty());
  EXPECT_FALSE(sarif_has_minimal_shape("not json at all", &why));
  EXPECT_FALSE(sarif_has_minimal_shape(
      "{\"version\": \"2.1.0\", \"runs\": []}", &why));
}

TEST(Lint2Test, ShapeValidatorRejectsResultMissingLocation) {
  // A result with no physicalLocation must fail the minimal shape.
  const std::string s =
      "{\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": "
      "{\"name\": \"exa-lint\", \"rules\": []}}, \"results\": "
      "[{\"ruleId\": \"r\", \"message\": {\"text\": \"m\"}}]}]}";
  std::string why;
  EXPECT_FALSE(sarif_has_minimal_shape(s, &why));
}

}  // namespace
}  // namespace exa::check::lint
