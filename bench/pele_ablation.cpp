/// §3.8 ablations: the individual Pele optimizations — batched CVODE-style
/// chemistry vs pointwise, UVM vs explicit data management, asynchronous
/// vs synchronous ghost exchange, fused small-box launches — plus the
/// weak-scaling result (>80% to 4096 Frontier nodes).
///
/// Code-state model runs go through the service layer (svc::run), the
/// same Scenario path the always-on server executes; the weak-scaling
/// numbers prove the refactor is bit-stable against the prior output.

#include <cstdio>

#include "apps/pele/chemistry.hpp"
#include "apps/pele/driver.hpp"
#include "bench_util.hpp"
#include "net/scaling.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "svc/scenario.hpp"

namespace {

exa::svc::Report pele_run(const std::string& machine,
                          exa::apps::pele::CodeState state, int nodes) {
  exa::svc::Scenario scenario;
  scenario.app = exa::svc::App::kPele;
  scenario.machine = machine;
  scenario.nodes = nodes;
  scenario.params = {{"code_state", double(int(state))}};
  return exa::svc::run(scenario);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;
  using namespace exa::apps::pele;
  bench::Session session(argc, argv);
  bench::banner("Pele optimization ablations (Section 3.8)",
                "chemistry integration, UVM removal, async ghost exchange, "
                "fused launches; weak scaling to 4096 nodes");

  // Functional chemistry comparison on the skeletal mechanism.
  {
    std::vector<Conc> cells_rk(256, ignition_mixture());
    std::vector<Conc> cells_be(256, ignition_mixture());
    const IntegrateStats rk = integrate_rk4_pointwise(cells_rk, 1e-3, 15);
    const IntegrateStats be = integrate_be_batched(cells_be, 1e-3);
    support::Table chem("Chemistry integrator cost (256 cells, functional)");
    chem.set_header({"Integrator", "RHS evals", "Jacobians", "Linear solves"});
    chem.add_row({"pointwise explicit RK4 (15 substeps)",
                  std::to_string(rk.rhs_evals), std::to_string(rk.jacobian_evals),
                  std::to_string(rk.linear_solves)});
    chem.add_row({"batched implicit BE + Newton",
                  std::to_string(be.rhs_evals), std::to_string(be.jacobian_evals),
                  std::to_string(be.linear_solves)});
    chem.add_note("the implicit path amortizes stiffness: far fewer RHS "
                  "evaluations per unit simulated time at stiff dt");
    std::printf("%s\n", chem.render().c_str());
  }

  // Code-state ablation on Frontier: each §3.8 optimization toggled by the
  // project timeline states.
  support::Table states("Per-node time/cell/step by code state");
  states.set_header({"Code state", "Summit", "Frontier"});
  for (const CodeState s :
       {CodeState::kGpuUvmPointwise2020, CodeState::kGpuBatchedAsync2021,
        CodeState::kGpuTuned2023}) {
    states.add_row(
        {to_string(s),
         support::format_time(pele_run("summit", s, 1).time_s, 2),
         support::format_time(pele_run("frontier", s, 1).time_s, 2)});
  }
  std::printf("%s\n", states.render().c_str());

  // Cost-component breakdown before/after on Frontier.
  support::Table parts("Frontier per-cell cost breakdown");
  parts.set_header({"Component", "2020 state", "2023 state"});
  const svc::Report before =
      pele_run("frontier", CodeState::kGpuUvmPointwise2020, 1);
  const svc::Report after = pele_run("frontier", CodeState::kGpuTuned2023, 1);
  auto row = [&parts](const char* name, double b, double a) {
    parts.add_row({name, support::format_time(b, 2), support::format_time(a, 2)});
  };
  row("chemistry", before.metric("chem_s"), after.metric("chem_s"));
  row("hydro", before.metric("hydro_s"), after.metric("hydro_s"));
  row("kernel launches", before.metric("launch_s"), after.metric("launch_s"));
  row("UVM migration", before.metric("uvm_s"), after.metric("uvm_s"));
  std::printf("%s\n", parts.render().c_str());

  // Weak scaling, sync vs async ghost exchange. Each node count also
  // drops per-region JSONL profile samples (--profile-jsonl) for the
  // tools/scaling_fit Extra-P-style workflow.
  auto csv = bench::open_csv(
      session.csv_path(),
      {"nodes", "chem_s", "hydro_s", "launch_s", "uvm_s", "ghost_s",
       "total_s"});
  net::ScalingStudy weak("PeleC on Frontier (tuned code)",
                         net::ScalingKind::kWeak);
  weak.run({1, 8, 64, 512, 4096}, [&](int nodes) {
    const svc::Report ct = pele_run("frontier", CodeState::kGpuTuned2023, nodes);
    auto& profiler = trace::Profiler::instance();
    profiler.record("pele/chemistry", nodes, ct.metric("chem_s"));
    profiler.record("pele/hydro", nodes, ct.metric("hydro_s"));
    profiler.record("pele/ghost_exchange", nodes, ct.metric("ghost_s"));
    profiler.record("pele/step", nodes, ct.time_s);
    bench::csv_row(csv,
                   {std::to_string(nodes), bench::csv_num(ct.metric("chem_s")),
                    bench::csv_num(ct.metric("hydro_s")),
                    bench::csv_num(ct.metric("launch_s")),
                    bench::csv_num(ct.metric("uvm_s")),
                    bench::csv_num(ct.metric("ghost_s")),
                    bench::csv_num(ct.time_s)});
    return ct.time_s;
  });
  std::printf("%s\n", weak.to_table().render().c_str());

  bench::paper_vs_measured("weak scaling efficiency at 4096 nodes", 0.80,
                           weak.final_efficiency());
  bench::paper_vs_measured(
      "2020 -> 2023 Frontier per-node gain", 3.0,
      before.time_s / after.time_s, "x");
  return 0;
}
