/// Campaign sweep regenerator: runs the checked-in Frontier-vs-Wombat
/// campaign (examples/campaigns/frontier_vs_wombat.json) end to end
/// through exa::campaign — grid expansion, svc::Server submission with
/// pop-time dedupe, Extra-P profile collection, and scaling-model fits —
/// and golden-gates the campaign's structural ledger plus one
/// cross-machine claim: the sparse-CG figure-of-merit ratio between a
/// Frontier node (8 MI250X GCDs) and a Wombat node (2 A100s), which the
/// bandwidth-bound SpMV pins near the node HBM-bandwidth ratio of the two
/// systems (the Arm-testbed comparison of arxiv 2209.09731).
///
/// Grid size, dedupe hits, distinct executions, and the recovered model
/// shape (c, d of t(p) = a + b·p^c·(log2 p)^d) are exact at any
/// EXA_THREADS; `campaign.total_sim_time_s` is the EXA_QA_MUTATION
/// tripwire.
///
///     campaign_sweep --campaign=examples/campaigns/frontier_vs_wombat.json
///
/// Without the flag, an embedded copy of the same spec runs.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "svc/scenario.hpp"

namespace {

/// Embedded copy of examples/campaigns/frontier_vs_wombat.json, so the
/// bench runs standalone from any directory.
constexpr const char* kDefaultSpec = R"json({
  "name": "frontier_vs_wombat",
  "machines": ["frontier", "wombat"],
  "apps": ["sparse_cg", "pele"],
  "nodes": [1, 2, 4, 8],
  "io": ["quiet"],
  "fault": {
    "straggler_fraction": [0.0, 0.0625],
    "straggler_slowdown": [1.0, 4.0]
  }
})json";

/// FoM of the fault-free sparse_cg grid point at `nodes` on `machine`.
double sparse_cg_fom(const exa::campaign::CampaignResult& result,
                     const std::string& machine, int nodes) {
  for (const exa::svc::Report& report : result.reports) {
    const exa::svc::Scenario& s = report.scenario;
    if (s.app == exa::svc::App::kSparseCg && s.machine == machine &&
        s.nodes == nodes && s.straggler_fraction == 0.0) {
      return report.fom;
    }
  }
  EXA_REQUIRE_MSG(false, "campaign grid has no fault-free sparse_cg point on " +
                             machine);
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;
  bench::Session session(argc, argv, 0xca3'9a16, {"--campaign="});
  bench::banner("campaign sweep: {Frontier, Wombat} x {sparse_cg, pele}",
                "declarative campaign -> svc::Server dedupe -> Extra-P fits; "
                "cross-machine sparse-CG FoM ratio vs the Arm+A100 testbed");

  const std::string file = session.extra("--campaign=");
  const campaign::CampaignSpec spec =
      file.empty() ? campaign::parse_campaign(kDefaultSpec)
                   : campaign::load_campaign(file);

  campaign::CampaignRunner runner;
  const campaign::CampaignResult result = runner.run(spec);

  std::printf("campaign %s%s:\n", spec.name.c_str(),
              file.empty() ? " (embedded spec)" : "");
  std::printf("  grid points          %zu\n", result.grid_size);
  std::printf("  submitted            %llu\n",
              (unsigned long long)result.submitted);
  std::printf("  dedupe hits          %llu\n",
              (unsigned long long)result.dedupe_hits);
  std::printf("  distinct executions  %llu\n",
              (unsigned long long)result.executed);
  std::printf("  total simulated time %.6g s\n\n", result.total_sim_time_s);

  std::printf("fitted scaling models (t(p), p = nodes):\n");
  for (const auto& [callpath, fit] : result.fits) {
    std::printf("  %-32s %s  (R^2 %.4f)\n", callpath.c_str(),
                fit.to_string().c_str(), fit.r2);
  }
  std::printf("\n");

  // The cross-machine claim: SpMV is bandwidth-bound, so the node-level
  // FoM ratio tracks the node HBM-bandwidth ratio — 8 GCDs x 1.6 TB/s
  // (Frontier) vs 2 A100s x 1.555 TB/s (Wombat) = 4.12.
  const double fom_frontier = sparse_cg_fom(result, "frontier", 8);
  const double fom_wombat = sparse_cg_fom(result, "wombat", 8);
  const double ratio = fom_frontier / fom_wombat;
  bench::paper_vs_measured("sparse_cg node FoM ratio, Frontier / Wombat",
                           4.12, ratio);

  const auto fit = result.fits.find("campaign/sparse_cg/frontier");
  EXA_REQUIRE_MSG(fit != result.fits.end(),
                  "campaign produced no sparse_cg fit for frontier");

  // Structural ledger: exact at any EXA_THREADS and worker count.
  session.metric("campaign.grid_points", double(result.grid_size), 0.0);
  session.metric("campaign.submitted", double(result.submitted), 0.0);
  session.metric("campaign.dedupe_hits", double(result.dedupe_hits), 0.0);
  session.metric("campaign.distinct_executions", double(result.executed), 0.0);
  session.metric("campaign.fitted_models", double(result.fits.size()), 0.0);
  // Recovered model shape for sparse_cg on Frontier: the discrete (c, d)
  // hypothesis the fitter selects is exact.
  session.metric("campaign.sparse_cg_frontier_model_c", fit->second.c, 0.0);
  session.metric("campaign.sparse_cg_frontier_model_d", double(fit->second.d),
                 0.0);
  // The headline cross-machine ratio (2%: app-model FP noise only).
  session.metric("campaign.sparse_cg_fom_ratio", ratio, 0.02);
  // Mutation tripwire: the simulated-time integral drifts with the
  // exec-model cost constant under -DEXA_QA_MUTATION=ON.
  session.metric("campaign.total_sim_time_s", result.total_sim_time_s, 0.02);
  return 0;
}
