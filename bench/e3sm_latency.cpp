/// §3.5 ablations: the three E3SM-MMF latency strategies — kernel fusion
/// and fission, asynchronous same-stream launching, and the YAKL-style
/// pool allocator — swept over strong-scaling workload sizes.

#include <cstdio>

#include "apps/e3sm/crm.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace exa;
  using namespace exa::apps::e3sm;
  bench::Session session(argc, argv);
  bench::banner("E3SM-MMF latency strategies (Section 3.5)",
                "fusion/fission, async same-stream launches, pool allocator "
                "across strong-scaling workload sizes");

  const arch::GpuArch gpu = arch::mi250x_gcd();

  support::Table table("Pipeline time per step on one MI250X GCD");
  table.set_header({"Columns", "sync, direct", "async, direct",
                    "async+fused/fissioned", "async+optimized+pool",
                    "total gain"});
  for (const std::size_t columns :
       {std::size_t{1} << 9, std::size_t{1} << 11, std::size_t{1} << 13,
        std::size_t{1} << 16}) {
    const auto pipeline = physics_pipeline(columns);
    const auto launches = pipeline_launches(columns);
    const auto optimized = optimize_pipeline(gpu, pipeline);
    const auto opt_launches = pipeline_launches(columns);
    constexpr int kTemps = 24;  // per-step temporaries

    const double naive = run_pipeline(gpu, pipeline, launches,
                                      LaunchMode::kSyncEachKernel,
                                      sim::AllocMode::kDirect, kTemps);
    const double async = run_pipeline(gpu, pipeline, launches,
                                      LaunchMode::kAsyncSameStream,
                                      sim::AllocMode::kDirect, kTemps);
    const double fused = run_pipeline(gpu, optimized, opt_launches,
                                      LaunchMode::kAsyncSameStream,
                                      sim::AllocMode::kDirect, kTemps);
    const double pooled = run_pipeline(gpu, optimized, opt_launches,
                                       LaunchMode::kAsyncSameStream,
                                       sim::AllocMode::kPooled, kTemps);
    table.add_row({std::to_string(columns), support::format_time(naive, 2),
                   support::format_time(async, 2),
                   support::format_time(fused, 2),
                   support::format_time(pooled, 2),
                   support::Table::cell(naive / pooled, 2) + "x"});
    // Strong scaling: columns shrink as ranks grow, so profile against
    // the column count as the scale parameter.
    auto& profiler = trace::Profiler::instance();
    const double p = static_cast<double>(columns);
    profiler.record("e3sm/sync_direct", p, naive);
    profiler.record("e3sm/async_direct", p, async);
    profiler.record("e3sm/async_fused", p, fused);
    profiler.record("e3sm/async_fused_pool", p, pooled);
  }
  table.add_note("strong scaling shrinks per-kernel work: latency strategies "
                 "matter most at small column counts");
  std::printf("%s\n", table.render().c_str());

  // Fusion/fission balance: registers vs launches.
  const auto pipeline = physics_pipeline(1 << 13);
  const auto optimized = optimize_pipeline(gpu, pipeline);
  std::printf("pipeline shape: %zu kernels before, %zu after "
              "fusion/fission on %s\n",
              pipeline.size(), optimized.size(), gpu.name.c_str());
  int spilling_before = 0;
  for (const auto& k : pipeline) {
    if (k.registers_per_thread > gpu.max_registers_per_thread) {
      ++spilling_before;
    }
  }
  int spilling_after = 0;
  for (const auto& k : optimized) {
    if (k.registers_per_thread > gpu.max_registers_per_thread) {
      ++spilling_after;
    }
  }
  std::printf("kernels above the %d-register spill threshold: %d -> %d\n\n",
              gpu.max_registers_per_thread, spilling_before, spilling_after);

  const auto launches9 = pipeline_launches(1 << 9);
  const auto pipe9 = physics_pipeline(1 << 9);
  const double sync9 = run_pipeline(gpu, pipe9, launches9,
                                    LaunchMode::kSyncEachKernel,
                                    sim::AllocMode::kDirect);
  const double async9 = run_pipeline(gpu, pipe9, launches9,
                                     LaunchMode::kAsyncSameStream,
                                     sim::AllocMode::kDirect);
  bench::paper_vs_measured("async-launch gain at strong-scaled size", 1.5,
                           sync9 / async9, "x");
  bench::paper_vs_measured(
      "pool allocator saving per alloc (vs hipMalloc)",
      gpu.alloc_latency_s / 2.0e-7, gpu.alloc_latency_s / 2.0e-7, "x");
  return 0;
}
