#pragma once
/// \file legacy_kernels.hpp
/// Verbatim copies of the pre-optimization mathlib kernels, kept so
/// bench/mathlib_kernels can measure the vectorization work against the
/// real before-code compiled at the tree's default flags (the mathlib
/// library itself now opts into -O3/-fopenmp-simd/-ffp-contract=off).
///
/// Differences from the historical sources are mechanical only:
///  * names carry a `legacy_` prefix;
///  * the gemm row-block loop runs serially instead of through
///    ThreadPool::global().for_each — the bench compares single-thread
///    kernel throughput, and each row block's arithmetic is untouched.
///
/// Do not "fix" these: the skip branches and the w *= wlen twiddle
/// recurrence are the point.

#include <algorithm>
#include <cmath>
#include <numbers>
#include <span>

#include "mathlib/dense.hpp"
#include "mathlib/fft.hpp"
#include "support/assert.hpp"

namespace exa::bench {

inline constexpr std::size_t kLegacyBlock = 64;  // cache-blocking tile edge

/// Pre-change gemm: cache-blocked scalar loops with the per-element
/// `av == 0` skip branch in the innermost hot path.
template <typename T>
void legacy_gemm(std::span<const T> a, std::span<const T> b, std::span<T> c,
                 std::size_t m, std::size_t n, std::size_t k, T alpha,
                 T beta) {
  EXA_REQUIRE(a.size() >= m * k);
  EXA_REQUIRE(b.size() >= k * n);
  EXA_REQUIRE(c.size() >= m * n);
  if (beta == T{}) {
    std::fill(c.begin(), c.begin() + static_cast<std::ptrdiff_t>(m * n), T{});
  } else if (!(beta == T{1})) {
    for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (alpha == T{} || m == 0 || n == 0 || k == 0) return;
  const std::size_t row_blocks = (m + kLegacyBlock - 1) / kLegacyBlock;
  for (std::size_t rb = 0; rb < row_blocks; ++rb) {
    const std::size_t i0 = rb * kLegacyBlock;
    const std::size_t i1 = std::min(m, i0 + kLegacyBlock);
    for (std::size_t kk = 0; kk < k; kk += kLegacyBlock) {
      const std::size_t k1 = std::min(k, kk + kLegacyBlock);
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t p = kk; p < k1; ++p) {
          const T av = alpha * a[i * k + p];
          if (av == T{}) continue;
          const T* brow = &b[p * n];
          T* crow = &c[i * n];
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

/// Pre-change radix-2 FFT: twiddles regenerated every call through the
/// w *= wlen recurrence (one complex multiply per butterfly just to step
/// the angle, plus the rounding drift that recurrence accumulates).
inline void legacy_fft(std::span<ml::zcomplex> data, bool inverse = false) {
  using ml::zcomplex;
  const std::size_t n = data.size();
  if (n <= 1) return;
  EXA_REQUIRE_MSG(ml::is_pow2(n), "FFT length must be a power of two");
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const zcomplex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      zcomplex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const zcomplex u = data[i + j];
        const zcomplex v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

/// Pre-change dgetrf: serial row-at-a-time panel update with the fused
/// divide and the per-row `l == 0` skip branch.
inline int legacy_dgetrf(std::span<double> a, std::size_t n,
                         std::span<int> pivots) {
  EXA_REQUIRE(a.size() >= n * n);
  EXA_REQUIRE(pivots.size() >= n);
  int info = 0;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    double best = std::fabs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(a[r * n + col]);
      if (mag > best) {
        best = mag;
        piv = r;
      }
    }
    pivots[col] = static_cast<int>(piv);
    if (piv != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[col * n + j], a[piv * n + j]);
      }
    }
    const double d = a[col * n + col];
    if (d == 0.0) {
      if (info == 0) info = static_cast<int>(col) + 1;
      continue;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double l = a[r * n + col] / d;
      a[r * n + col] = l;
      if (l == 0.0) continue;
      for (std::size_t j = col + 1; j < n; ++j) {
        a[r * n + j] -= l * a[col * n + j];
      }
    }
  }
  return info;
}

}  // namespace exa::bench
