/// Vectorized mathlib microkernel throughput (GFLOP/s) against the
/// verbatim pre-optimization kernels (bench/legacy_kernels.hpp): packed-
/// panel GEMM vs the branchy blocked loops, cached-twiddle simd FFT vs
/// the w *= wlen recurrence, split-panel LU vs the fused row loop.
///
/// Correctness is gated harder than speed: dgemm and dgetrf must match
/// the legacy kernels *bitwise* (the optimization contract is "same
/// floating-point operations, better schedule"), and the FFT — whose
/// cached twiddles are deliberately more accurate than the legacy
/// recurrence — must agree to 1e-12. The golden file gates checksums and
/// those ok-flags only, never wall-clock, so the baseline holds on any
/// host. Speedup floors (a conservative 1.5x vs the paper-table 2x+ seen
/// on dedicated hardware) guard against the flags or kernels silently
/// regressing to scalar.

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "legacy_kernels.hpp"
#include "mathlib/dense.hpp"
#include "mathlib/fft.hpp"
#include "mathlib/lu.hpp"
#include "sim/exec_model.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/units.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using exa::ml::zcomplex;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Interleaved best-of (same idiom as bench/dispatch_overhead): one timed
/// rep of every variant per round so background load hits all variants
/// alike.
template <std::size_t N>
std::array<double, N> best_of_interleaved(
    int reps, const std::array<std::function<void()>, N>& variants) {
  std::array<double, N> best;
  best.fill(1e300);
  for (int r = 0; r < reps; ++r) {
    for (std::size_t v = 0; v < N; ++v) {
      const auto t0 = Clock::now();
      variants[v]();
      const double s = seconds_since(t0);
      if (s < best[v]) best[v] = s;
    }
  }
  return best;
}

template <typename T>
std::vector<T> random_matrix(std::size_t count, std::uint64_t seed) {
  exa::support::Rng rng(seed);
  std::vector<T> out(count);
  for (auto& x : out) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return out;
}

double abs_sum(std::span<const double> x) {
  double s = 0.0;
  for (const double v : x) s += std::fabs(v);
  return s;
}

double abs_sum_z(std::span<const zcomplex> x) {
  double s = 0.0;
  for (const auto& v : x) s += std::fabs(v.real()) + std::fabs(v.imag());
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;
  bench::Session session(argc, argv);
  bench::banner("Mathlib microkernel throughput (CPU reference kernels)",
                "Packed-panel GEMM / cached-twiddle FFT / split-panel LU "
                "vs the pre-optimization kernels");

  std::printf("Thread pool: %zu workers (kernel timings are per-pool-size; "
              "correctness gates are not)\n\n",
              support::ThreadPool::global().size());

  // Mutation smoke: EXA_QA_MUTATION scales the problem data, which drags
  // every checksum below off its golden value.
  const double scale = sim::kQaMutationCostScale;
  auto csv = bench::open_csv(session.csv_path(),
                             {"kernel", "problem", "legacy_s", "new_s",
                              "legacy_gflops", "new_gflops", "speedup"});
  support::Table table("Best-of interleaved reps, seconds are per kernel call");
  table.set_header({"Kernel", "Problem", "Legacy", "New", "Legacy GF/s",
                    "New GF/s", "Speedup"});

  // --- dgemm 512^3: bitwise-equal, >= 1.5x single-thread floor ----------
  const std::size_t gm = 512, gn = 512, gk = 512;
  const double alpha = 1.25 * scale;
  const double beta = 0.0;
  const auto ga = random_matrix<double>(gm * gk, session.seed() ^ 0xA);
  const auto gb = random_matrix<double>(gk * gn, session.seed() ^ 0xB);
  std::vector<double> c_legacy(gm * gn);
  std::vector<double> c_new(gm * gn);
  const auto gemm_best = best_of_interleaved<2>(
      3, {[&] {
            bench::legacy_gemm<double>(ga, gb, c_legacy, gm, gn, gk, alpha,
                                       beta);
          },
          [&] { ml::gemm<double>(ga, gb, c_new, gm, gn, gk, alpha, beta); }});
  const bool gemm_bitident =
      std::memcmp(c_legacy.data(), c_new.data(),
                  c_legacy.size() * sizeof(double)) == 0;
  EXA_REQUIRE_MSG(gemm_bitident, "packed-panel dgemm diverged bitwise from "
                                 "the legacy kernel");
  const double gemm_flops = 2.0 * static_cast<double>(gm) * gn * gk;
  const double gemm_speedup = gemm_best[0] / gemm_best[1];

  // --- FFT 4096 x 256 lines: 1e-12 agreement, >= 1.5x floor -------------
  const std::size_t fn = 4096, flines = 256;
  auto fft_input = random_matrix<double>(2 * fn * flines,
                                         session.seed() ^ 0xF);
  for (auto& v : fft_input) v *= scale;
  std::vector<zcomplex> f_legacy(fn * flines);
  std::vector<zcomplex> f_new(fn * flines);
  auto reload = [&](std::vector<zcomplex>& dst) {
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] = zcomplex(fft_input[2 * i], fft_input[2 * i + 1]);
    }
  };
  const auto fft_best = best_of_interleaved<2>(
      3, {[&] {
            reload(f_legacy);
            for (std::size_t l = 0; l < flines; ++l) {
              bench::legacy_fft(
                  std::span<zcomplex>(f_legacy).subspan(l * fn, fn));
            }
          },
          [&] {
            reload(f_new);
            for (std::size_t l = 0; l < flines; ++l) {
              ml::fft(std::span<zcomplex>(f_new).subspan(l * fn, fn));
            }
          }});
  const double fft_err = ml::rel_error<zcomplex>(f_new, f_legacy);
  EXA_REQUIRE_MSG(fft_err < 1e-12,
                  "cached-twiddle FFT disagrees with legacy beyond 1e-12");
  const double fft_flops = 5.0 * static_cast<double>(fn) *
                           std::log2(static_cast<double>(fn)) * flines;
  const double fft_speedup = fft_best[0] / fft_best[1];

  // --- dgetrf 512: bitwise-equal factors and pivots ---------------------
  const std::size_t ln = 512;
  auto lu_input = random_matrix<double>(ln * ln, session.seed() ^ 0x1);
  for (auto& v : lu_input) v *= scale;
  std::vector<double> lu_legacy(ln * ln);
  std::vector<double> lu_new(ln * ln);
  std::vector<int> piv_legacy(ln);
  std::vector<int> piv_new(ln);
  int info_legacy = 0;
  int info_new = 0;
  const auto lu_best = best_of_interleaved<2>(
      3, {[&] {
            lu_legacy = lu_input;
            info_legacy = bench::legacy_dgetrf(lu_legacy, ln, piv_legacy);
          },
          [&] {
            lu_new = lu_input;
            info_new = ml::dgetrf(lu_new, ln, piv_new);
          }});
  EXA_REQUIRE(info_legacy == 0 && info_new == 0);
  EXA_REQUIRE_MSG(piv_legacy == piv_new, "dgetrf pivot sequence changed");
  const bool lu_bitident = std::memcmp(lu_legacy.data(), lu_new.data(),
                                       lu_legacy.size() * sizeof(double)) == 0;
  EXA_REQUIRE_MSG(lu_bitident,
                  "split-panel dgetrf diverged bitwise from the legacy kernel");
  const double lu_flops = (2.0 / 3.0) * static_cast<double>(ln) * ln * ln;
  const double lu_speedup = lu_best[0] / lu_best[1];

  const struct {
    const char* kernel;
    const char* problem;
    double flops;
    double legacy_s;
    double new_s;
  } rows[] = {{"dgemm", "512 x 512 x 512", gemm_flops, gemm_best[0],
               gemm_best[1]},
              {"fft", "4096 pts x 256 lines", fft_flops, fft_best[0],
               fft_best[1]},
              {"dgetrf", "512 x 512", lu_flops, lu_best[0], lu_best[1]}};
  for (const auto& row : rows) {
    const double gf_legacy = row.flops / row.legacy_s / 1e9;
    const double gf_new = row.flops / row.new_s / 1e9;
    table.add_row({row.kernel, row.problem,
                   support::format_time(row.legacy_s, 3),
                   support::format_time(row.new_s, 3),
                   support::format_si(gf_legacy, 3),
                   support::format_si(gf_new, 3),
                   support::format_si(row.legacy_s / row.new_s, 3) + "x"});
    bench::csv_row(csv, {row.kernel, row.problem,
                         bench::csv_num(row.legacy_s),
                         bench::csv_num(row.new_s), bench::csv_num(gf_legacy),
                         bench::csv_num(gf_new),
                         bench::csv_num(row.legacy_s / row.new_s)});
  }
  char err_text[32];
  std::snprintf(err_text, sizeof(err_text), "%.2e", fft_err);
  table.add_note("dgemm/dgetrf outcomes are bitwise identical to the legacy "
                 "kernels; FFT rel err " + std::string(err_text));
  std::printf("%s\n", table.render().c_str());

  EXA_REQUIRE_MSG(gemm_speedup >= 1.5,
                  "packed-panel dgemm below the 1.5x speedup floor");
  EXA_REQUIRE_MSG(fft_speedup >= 1.5,
                  "cached-twiddle FFT below the 1.5x speedup floor");
  (void)lu_speedup;  // reported, not gated: panel updates are O(n^2)/col

  // Golden gate: checksums + ok-flags only (wall-clock-free).
  session.metric("ml.gemm_checksum", abs_sum(c_new), 1e-9);
  session.metric("ml.gemm_bitident", gemm_bitident ? 1.0 : 0.0, 0.0);
  session.metric("ml.fft_checksum", abs_sum_z(f_new), 1e-9);
  session.metric("ml.fft_agree", fft_err < 1e-12 ? 1.0 : 0.0, 0.0);
  session.metric("ml.lu_checksum", abs_sum(lu_new), 1e-9);
  session.metric("ml.lu_bitident", lu_bitident ? 1.0 : 0.0, 0.0);
  return 0;
}
