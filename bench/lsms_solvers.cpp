/// §3.2 ablation: LSMS tau-matrix solver paths — the historical zblock_lu
/// block inversion vs the rocSOLVER-style zgetrf/zgetrs route the Frontier
/// port adopted — plus the integer-index-arithmetic rearrangement in the
/// assembly kernels.

#include <cstdio>

#include "apps/lsms/kkr.hpp"
#include "bench_util.hpp"
#include "mathlib/dense.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main() {
  using namespace exa;
  using namespace exa::apps::lsms;
  bench::banner("LSMS solver study (Section 3.2)",
                "zblock_lu vs library LU on the LIZ tau matrix; index "
                "rearrangement in assembly");

  // Functional equivalence at small size.
  {
    const LizCluster liz = make_liz_cluster(8, 8);
    const auto m = build_kkr_matrix(liz, 0.4, 0.02);
    const auto tau_a = tau00_block_lu(m, liz);
    const auto tau_b = tau00_lu(m, liz);
    std::printf("functional check: ||tau00(block_lu) - tau00(getrf)|| "
                "relative error = %.2e\n\n",
                ml::rel_error<ml::zcomplex>(tau_a, tau_b));
  }

  support::Table table("Per-atom solve time (113-atom LIZ, 32x32 blocks)");
  table.set_header({"Device", "Solver", "Index fix", "Assembly", "Solve",
                    "Total"});
  for (const auto& [label, gpu] :
       {std::pair<const char*, arch::GpuArch>{"V100", arch::v100()},
        std::pair<const char*, arch::GpuArch>{"MI250X GCD",
                                              arch::mi250x_gcd()}}) {
    for (const SolverPath path :
         {SolverPath::kBlockInversion, SolverPath::kLibraryLu}) {
      for (const bool fix : {false, true}) {
        const LsmsTimings t = simulate_atom_solve(gpu, 113, 32, path, fix);
        table.add_row({label,
                       path == SolverPath::kBlockInversion ? "zblock_lu"
                                                           : "zgetrf/zgetrs",
                       fix ? "yes" : "no",
                       support::format_time(t.assembly_s, 2),
                       support::format_time(t.solve_s, 2),
                       support::format_time(t.total(), 2)});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  const LsmsTimings v100 = simulate_atom_solve(
      arch::v100(), 113, 32, SolverPath::kBlockInversion, true);
  const LsmsTimings gcd_lu = simulate_atom_solve(
      arch::mi250x_gcd(), 113, 32, SolverPath::kLibraryLu, true);
  const LsmsTimings gcd_block = simulate_atom_solve(
      arch::mi250x_gcd(), 113, 32, SolverPath::kBlockInversion, true);
  const LsmsTimings gcd_nofix = simulate_atom_solve(
      arch::mi250x_gcd(), 113, 32, SolverPath::kLibraryLu, false);

  bench::paper_vs_measured("library LU vs block inversion on MI250X", 1.3,
                           gcd_block.solve_s / gcd_lu.solve_s, "x");
  bench::paper_vs_measured("index-rearrangement assembly gain", 2.0,
                           gcd_nofix.assembly_s / gcd_lu.assembly_s, "x");
  bench::paper_vs_measured("per-GPU FePt speed-up (Table 2)", 7.5,
                           2.0 * v100.total() / gcd_lu.total(), "x");
  return 0;
}
