/// Host dispatch and kernel-launch overhead microbenchmark (wall clock,
/// not virtual time): quantifies the allocation-free fast path.
///
/// Part A: ns per work-item for a trivial body dispatched through the
///   legacy std::function ThreadPool API vs the for_each/for_chunks
///   templates (body inlined into the chunk loop).
/// Part B: repeated kernel-launch throughput — rebuilding a hip::Kernel
///   (profile strings + std::function) and computing the exec-model cost
///   every launch vs the cached per-label launch state + memoized cost
///   (pfw::charge_launch).

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "bench_util.hpp"
#include "hip/hip_runtime.hpp"
#include "pfw/parallel.hpp"
#include "support/assert.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Interleaved best-of: one timed rep of every variant per round, so
/// time-varying background load hits all variants alike instead of
/// falling entirely on whichever was measured last.
template <std::size_t N>
std::array<double, N> best_of_interleaved(
    int reps, const std::array<std::function<void()>, N>& variants) {
  std::array<double, N> best;
  best.fill(1e300);
  for (int r = 0; r < reps; ++r) {
    for (std::size_t v = 0; v < N; ++v) {
      const auto t0 = Clock::now();
      variants[v]();
      const double s = seconds_since(t0);
      if (s < best[v]) best[v] = s;
    }
  }
  return best;
}

/// The pre-fast-path launch sequence, replicated verbatim: the label
/// passed as a per-call std::string, a fresh KernelProfile and type-erased
/// Kernel built per launch, and the exec-model cost recomputed from
/// scratch (memoization off).
void legacy_launch(const std::string& label, std::size_t n) {
  exa::sim::KernelProfile profile;
  profile.name = label;
  profile.work.push_back(
      {exa::arch::DType::kF64, 10.0 * static_cast<double>(n)});
  profile.bytes_read = 16.0 * static_cast<double>(n);
  profile.bytes_written = 8.0 * static_cast<double>(n);
  profile.registers_per_thread = 48;
  exa::hip::Kernel kernel;
  kernel.profile = std::move(profile);
  kernel.bulk_body = [] {};  // timing-only, as the old pfw path shaped it
  exa::sim::LaunchConfig cfg;
  cfg.block_threads = 256;
  cfg.blocks = std::max<std::uint64_t>(1, (n + 255) / 256);
  EXA_REQUIRE(exa::hip::hipLaunchKernelEXA(kernel, cfg) ==
              exa::hip::hipSuccess);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;
  bench::Session session(argc, argv);
  bench::banner("Dispatch and launch overhead (host performance)",
                "std::function dispatch vs allocation-free templates; "
                "per-launch profile rebuild vs cached state + memoized cost");
  hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  auto csv = bench::open_csv(session.csv_path(),
                             {"section", "variant", "metric", "value"});
  auto& profiler = trace::Profiler::instance();
  auto& pool = support::ThreadPool::global();

  // --- Part A: per-work-item dispatch cost --------------------------------
  // Cache-resident output (128 KiB) so per-item dispatch overhead is what
  // gets measured, not a shared memory-bandwidth floor.
  constexpr std::size_t kN = std::size_t{1} << 14;
  constexpr int kReps = 63;
  std::vector<double> out(kN, 0.0);
  const auto body = [&out](std::size_t i) {
    out[i] = static_cast<double>(i) * 1.0000001;
  };

  const std::array<double, 3> dispatch_best = best_of_interleaved<3>(
      kReps,
      {[&] { pool.parallel_for(0, kN, body); },  // std::function per index
       [&] { pool.for_each(0, kN, body); },
       [&] {
         pool.for_chunks(0, kN, [&out](std::size_t lo, std::size_t hi) {
           for (std::size_t i = lo; i < hi; ++i) {
             out[i] = static_cast<double>(i) * 1.0000001;
           }
         });
       }});
  const double legacy_s = dispatch_best[0];
  const double for_each_s = dispatch_best[1];
  const double for_chunks_s = dispatch_best[2];

  const double to_ns = 1e9 / static_cast<double>(kN);
  support::Table table_a("Per-item dispatch cost, n = 2^14, best of 63");
  table_a.set_header({"variant", "ns/work-item", "speedup vs legacy"});
  const auto row_a = [&](const char* variant, double s) {
    table_a.add_row({variant, support::Table::cell(s * to_ns, 3),
                     support::Table::cell(legacy_s / s, 2) + "x"});
    profiler.record(std::string("dispatch/") + variant,
                    static_cast<double>(pool.size()), s * to_ns);
    bench::csv_row(csv, {"dispatch", variant, "ns_per_item",
                         bench::csv_num(s * to_ns)});
  };
  row_a("parallel_for (std::function)", legacy_s);
  row_a("for_each (template)", for_each_s);
  row_a("for_chunks (template)", for_chunks_s);
  table_a.add_note("pool size " + std::to_string(pool.size()) +
                   "; body: out[i] = i * 1.0000001");
  std::printf("%s\n", table_a.render().c_str());

  // --- Part B: repeated-launch throughput ---------------------------------
  constexpr int kLaunches = 50000;
  constexpr std::size_t kLaunchN = std::size_t{1} << 16;
  auto& dev = hip::Runtime::instance().current_device();

  pfw::charge_launch("dispatch_overhead_fast", kLaunchN);  // warm the caches
  const std::array<double, 2> launch_best = best_of_interleaved<2>(
      9, {[&] {
            dev.set_cost_memo(false);
            for (int i = 0; i < kLaunches; ++i) {
              legacy_launch("dispatch_overhead_legacy", kLaunchN);
            }
          },
          [&] {
            dev.set_cost_memo(true);
            for (int i = 0; i < kLaunches; ++i) {
              pfw::charge_launch("dispatch_overhead_fast", kLaunchN);
            }
          }});
  const double legacy_launch_s = launch_best[0];
  const double fast_launch_s = launch_best[1];

  const double legacy_rate = kLaunches / legacy_launch_s;
  const double fast_rate = kLaunches / fast_launch_s;
  support::Table table_b("Repeated-launch throughput, 50k launches per rep");
  table_b.set_header({"variant", "launches/sec", "speedup vs legacy"});
  table_b.add_row({"rebuild Kernel + full cost model",
                   support::Table::cell(legacy_rate, 0), "1.00x"});
  table_b.add_row({"cached state + memoized cost",
                   support::Table::cell(fast_rate, 0),
                   support::Table::cell(fast_rate / legacy_rate, 2) + "x"});
  table_b.add_note("steady-state launches replay the cached timing; the "
                   "content memo backs profile or device changes");
  std::printf("%s\n", table_b.render().c_str());
  profiler.record("launch/legacy_per_sec", 1.0, legacy_rate);
  profiler.record("launch/fast_per_sec", 1.0, fast_rate);
  bench::csv_row(csv, {"launch", "legacy", "launches_per_sec",
                       bench::csv_num(legacy_rate)});
  bench::csv_row(csv, {"launch", "fast", "launches_per_sec",
                       bench::csv_num(fast_rate)});

  std::printf("dispatch speedup (legacy / best template): %.2fx\n",
              legacy_s / std::min(for_each_s, for_chunks_s));
  std::printf("launch speedup (fast / legacy):            %.2fx\n",
              fast_rate / legacy_rate);
  return 0;
}
