/// §3.6: CoMet's mixed-precision similarity pipeline — "over 6.71 exaflops
/// of performance using mixed FP16/FP32 arithmetic on 9,074 compute nodes"
/// with "near-perfect weak scaling behavior up to full system scale".
///
/// Scale-model runs go through the service layer (svc::run), the same
/// Scenario path the always-on server executes; the golden gate proves
/// the refactor is bit-stable.

#include <cstdio>

#include "apps/comet/ccc.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "svc/scenario.hpp"

namespace {

exa::svc::Report comet_run(const std::string& machine, int nodes) {
  exa::svc::Scenario scenario;
  scenario.app = exa::svc::App::kComet;
  scenario.machine = machine;
  scenario.nodes = nodes;
  scenario.params = {{"vectors_per_device", 8192.0}, {"samples", 100000.0}};
  return exa::svc::run(scenario);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;
  using namespace exa::apps::comet;
  bench::Session session(argc, argv, 2023);
  bench::banner("CoMet mixed-precision scale run (Section 3.6)",
                "2-way CCC via bit-packed FP16/FP32 GEMM on matrix cores");

  // Functional validation at small size: the GEMM formulation reproduces
  // the popcount contingency tables exactly.
  std::size_t mismatches = 0;
  {
    support::Rng rng(session.seed());
    BitVectorSet set(64, 1024);
    set.randomize(rng, 0.35);
    const auto tables = contingency_gemm(set);
    for (std::size_t i = 0; i < set.vectors(); ++i) {
      for (std::size_t j = i; j < set.vectors(); ++j) {
        if (!(tables[i * set.vectors() + j] ==
              contingency_popcount(set, i, j))) {
          ++mismatches;
        }
      }
    }
    std::printf("functional check: GEMM-vs-popcount table mismatches over "
                "%zu pairs: %zu\n\n",
                set.vectors() * (set.vectors() + 1) / 2, mismatches);
  }

  const arch::Machine frontier = arch::machines::frontier();
  support::Table table("Weak scaling on Frontier (8192 vectors/device)");
  table.set_header({"Nodes", "Devices", "Step time", "Sustained",
                    "Weak-scaling eff."});
  for (const int nodes : {1, 16, 128, 1024, 4096, 9074}) {
    const svc::Report r = comet_run("frontier", nodes);
    table.add_row(
        {std::to_string(nodes),
         std::to_string(nodes * frontier.node.gpus_per_node),
         support::format_time(r.metric("seconds_per_step"), 2),
         support::format_si(r.metric("sustained_flops"), 3) + "flop/s",
         support::Table::cell(r.metric("weak_scaling_efficiency") * 100.0, 1) +
             "%"});
  }
  std::printf("%s\n", table.render().c_str());

  const svc::Report full = comet_run("frontier", 9074);
  bench::paper_vs_measured("sustained mixed-precision rate at 9,074 nodes",
                           6.71e18, full.metric("sustained_flops"), "flop/s");
  bench::paper_vs_measured("weak-scaling efficiency at full system", 0.99,
                           full.metric("weak_scaling_efficiency"));

  const svc::Report summit = comet_run("summit", 4600);
  bench::paper_vs_measured(
      "Table 2 CoMet speed-up (Frontier/Summit)", 5.2,
      full.metric("sustained_flops") / summit.metric("sustained_flops"), "x");

  // Golden gate: the in-text exaflops claim and the functional check.
  session.metric("comet.gemm_vs_popcount_mismatches",
                 static_cast<double>(mismatches), 0.0);
  session.metric("comet.sustained_flops_9074_nodes",
                 full.metric("sustained_flops"), 0.02);
  session.metric("comet.weak_scaling_efficiency",
                 full.metric("weak_scaling_efficiency"), 0.02);
  session.metric("comet.speedup_vs_summit",
                 full.metric("sustained_flops") / summit.metric("sustained_flops"),
                 0.02);
  return 0;
}
