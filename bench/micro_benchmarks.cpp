/// Google-benchmark microbenchmarks of the substrate itself: the real host
/// numerics (GEMM, FFT, LU, CG), the hipify translator, the pool
/// allocator, and the analytic models' evaluation cost. These measure the
/// *simulator's* wall-clock performance, not virtual device time.

#include <benchmark/benchmark.h>

#include <vector>

#include "apps/coast/apsp.hpp"
#include "hip/hipify.hpp"
#include "mathlib/dense.hpp"
#include "mathlib/device_blas.hpp"
#include "mathlib/eigen.hpp"
#include "mathlib/fft.hpp"
#include "mathlib/lu.hpp"
#include "omp/offload.hpp"
#include "pfw/parallel.hpp"
#include "sim/exec_model.hpp"
#include "sim/pool_allocator.hpp"
#include "support/rng.hpp"

namespace {

using namespace exa;

void BM_Dgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(1);
  std::vector<double> a(n * n), b(n * n), c(n * n);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  for (auto _ : state) {
    ml::dgemm(a, b, c, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Dgemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Fft3d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(2);
  std::vector<ml::zcomplex> data(n * n * n);
  for (auto& x : data) x = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    ml::fft3d(data, n, n, n, false);
    ml::fft3d(data, n, n, n, true);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft3d)->Arg(16)->Arg(32);

void BM_Zgetrf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(3);
  std::vector<ml::zcomplex> a(n * n);
  for (auto& x : a) x = {rng.normal(), rng.normal()};
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += 8.0;
  std::vector<int> piv(n);
  for (auto _ : state) {
    std::vector<ml::zcomplex> work = a;
    benchmark::DoNotOptimize(ml::zgetrf(work, n, piv));
  }
}
BENCHMARK(BM_Zgetrf)->Arg(64)->Arg(128);

void BM_Hipify(benchmark::State& state) {
  std::string source;
  for (int i = 0; i < 200; ++i) {
    source += "cudaMalloc((void**)&p" + std::to_string(i) + ", n);\n";
    source += "kernel" + std::to_string(i) + "<<<g, b>>>(p" +
              std::to_string(i) + ");\n";
    source += "cudaMemcpy(h, p" + std::to_string(i) +
              ", n, cudaMemcpyDeviceToHost);\n";
  }
  for (auto _ : state) {
    const auto report = hip::hipify::translate(source);
    benchmark::DoNotOptimize(report.replacements);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_Hipify);

void BM_PoolAllocatorChurn(benchmark::State& state) {
  sim::PoolAllocator pool(1ull << 28, 256);
  support::Rng rng(4);
  std::vector<std::uint64_t> live;
  for (auto _ : state) {
    if (live.size() < 64 || rng.bernoulli(0.5)) {
      const auto off = pool.allocate(1 + rng.uniform_u64(65536));
      if (off.has_value()) live.push_back(*off);
    } else {
      const std::size_t pick = rng.uniform_u64(live.size());
      pool.deallocate(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  for (const auto off : live) pool.deallocate(off);
}
BENCHMARK(BM_PoolAllocatorChurn);

void BM_KernelTimingModel(benchmark::State& state) {
  const arch::GpuArch gpu = arch::mi250x_gcd();
  const sim::KernelProfile p =
      ml::gemm_profile(gpu, arch::DType::kF64, true, 2048, 2048, 2048);
  const sim::LaunchConfig launch{1u << 14, 256};
  for (auto _ : state) {
    const auto t = sim::kernel_timing(gpu, p, launch);
    benchmark::DoNotOptimize(t.total_s);
  }
}
BENCHMARK(BM_KernelTimingModel);

void BM_BlockedFloydWarshall(benchmark::State& state) {
  support::Rng rng(5);
  const auto base = apps::coast::make_knowledge_graph(256, 6.0, rng);
  for (auto _ : state) {
    apps::coast::DistMatrix m = base;
    apps::coast::floyd_warshall_blocked(m, 32);
    benchmark::DoNotOptimize(m.d.data());
  }
}
BENCHMARK(BM_BlockedFloydWarshall);

void BM_JacobiEigensolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(6);
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal();
      a[i * n + j] = v;
      a[j * n + i] = v;
    }
  }
  std::vector<double> evals(n);
  for (auto _ : state) {
    ml::syev_values(a, n, evals);
    benchmark::DoNotOptimize(evals.data());
  }
}
BENCHMARK(BM_JacobiEigensolver)->Arg(32)->Arg(64);

void BM_PfwDispatchOverhead(benchmark::State& state) {
  hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  for (auto _ : state) {
    pfw::parallel_for("noop", 1, [](std::size_t) {});
  }
}
BENCHMARK(BM_PfwDispatchOverhead);

void BM_OmpTargetRegionSetup(benchmark::State& state) {
  hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  omp::DeviceDataEnvironment::instance().reset();
  std::vector<double> a(1 << 16, 1.0);
  for (auto _ : state) {
    omp::TargetData region({omp::map_tofrom(std::span<double>(a))});
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_OmpTargetRegionSetup);

}  // namespace

BENCHMARK_MAIN();
