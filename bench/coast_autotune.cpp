/// §3.9: COAST's automated software tuning — "the best set of tiling
/// factors is discovered in the process of compiling and timing a large
/// number of combinations" — carrying the min-plus kernel from 5.6 TF on a
/// V100 to 30.6 TF on an MI250X, and the Gordon Bell scale results
/// (136 PF on Summit 2020, 1.004 EF on Frontier 2022).

#include <cstdio>

#include "apps/coast/apsp.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main() {
  using namespace exa;
  using namespace exa::apps::coast;
  bench::banner("COAST autotuning & Gordon Bell scale (Section 3.9)",
                "blocked Floyd-Warshall, tiled min-plus kernel");

  for (const auto& [label, gpu] :
       {std::pair<const char*, arch::GpuArch>{"NVIDIA V100 (Summit)",
                                              arch::v100()},
        std::pair<const char*, arch::GpuArch>{"AMD MI250X GCD (Frontier)",
                                              arch::mi250x_gcd()}}) {
    const TuneResult r = autotune(gpu, 16384);
    support::Table table(std::string("Tuning sweep on ") + label +
                         " (N=16384 APSP)");
    table.set_header({"Config", "Time", "Sustained"});
    for (const auto& [cfg, seconds] : r.trials) {
      const double flops = 2.0 * 16384.0 * 16384.0 * 16384.0 / seconds;
      std::string mark = cfg.name() == r.best.name() ? "  <-- best" : "";
      table.add_row({cfg.name() + mark, support::format_time(seconds, 2),
                     support::format_si(flops, 2) + "flop/s"});
    }
    std::printf("%s\n", table.render().c_str());
  }

  const TuneResult v100 = autotune(arch::v100(), 16384);
  const TuneResult gcd = autotune(arch::mi250x_gcd(), 16384);
  bench::paper_vs_measured("single V100 sustained", 5.6e12,
                           v100.achieved_flops, "flop/s");
  bench::paper_vs_measured("single MI250X (2 GCD) sustained", 30.6e12,
                           2.0 * gcd.achieved_flops, "flop/s");
  bench::paper_vs_measured("per-GPU kernel speed-up", 30.6 / 5.6,
                           2.0 * gcd.achieved_flops / v100.achieved_flops,
                           "x");

  std::printf("\nGordon Bell full-machine projections:\n");
  const ScaleResult summit = gordon_bell_run(arch::machines::summit(), 8 << 20);
  const ScaleResult frontier =
      gordon_bell_run(arch::machines::frontier(), 32 << 20);
  std::printf("  Summit   (%5d devices in the 2-D grid): %s sustained\n",
              summit.devices,
              support::format_si(summit.sustained_flops, 3).c_str());
  std::printf("  Frontier (%5d devices in the 2-D grid): %s sustained\n\n",
              frontier.devices,
              support::format_si(frontier.sustained_flops, 3).c_str());
  bench::paper_vs_measured("Summit Gordon Bell submission", 136e15,
                           summit.sustained_flops, "flop/s");
  bench::paper_vs_measured("Frontier Gordon Bell submission", 1.004e18,
                           frontier.sustained_flops, "flop/s");
  bench::paper_vs_measured("scale-out speed-up (paper: >7x)", 7.4,
                           frontier.sustained_flops / summit.sustained_flops,
                           "x");
  return 0;
}
