/// §2.2: OpenMP-offload data-management strategies — a large persistent
/// TARGET DATA region with TARGET UPDATE synchronization vs re-mapping
/// arrays around every kernel, and GPU-aware MPI via USE_DEVICE_PTR vs
/// staging device buffers through the host.

#include <cstdio>

#include "bench_util.hpp"
#include "net/comm_model.hpp"
#include "sim/device_sim.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace exa;
  bench::Session session(argc, argv);
  bench::banner("OpenMP offload data strategies (Section 2.2)",
                "persistent TARGET DATA regions vs per-kernel mapping; "
                "GPU-aware MPI vs host staging");

  const arch::GpuArch gpu = arch::mi250x_gcd();
  constexpr double kArrayBytes = 512.0 * 1024 * 1024;
  constexpr int kStepsPerRegion = 50;
  constexpr int kKernelsPerStep = 6;

  sim::KernelProfile work;
  work.name = "offloaded_loop";
  work.add_flops(arch::DType::kF64, 2.0e9);
  work.bytes_read = kArrayBytes / 4;
  work.bytes_written = kArrayBytes / 8;
  const sim::LaunchConfig launch{1u << 16, 256};

  // Strategy A: map arrays around every kernel (what naive offload does).
  sim::DeviceSim naive(gpu);
  for (int step = 0; step < kStepsPerRegion; ++step) {
    for (int k = 0; k < kKernelsPerStep; ++k) {
      naive.transfer_async(0, sim::TransferKind::kHostToDevice, kArrayBytes);
      naive.launch(0, work, launch);
      naive.transfer_async(0, sim::TransferKind::kDeviceToHost, kArrayBytes);
    }
  }
  naive.synchronize_all();

  // Strategy B: one structured TARGET DATA region with persistent arrays;
  // TARGET UPDATE only moves the small halo each step.
  sim::DeviceSim persistent(gpu);
  persistent.transfer_async(0, sim::TransferKind::kHostToDevice, kArrayBytes);
  for (int step = 0; step < kStepsPerRegion; ++step) {
    // TARGET UPDATE TO/FROM for the boundary slice only.
    persistent.transfer_async(0, sim::TransferKind::kHostToDevice,
                              kArrayBytes / 64);
    for (int k = 0; k < kKernelsPerStep; ++k) {
      persistent.launch(0, work, launch);
    }
    persistent.transfer_async(0, sim::TransferKind::kDeviceToHost,
                              kArrayBytes / 64);
  }
  persistent.transfer_async(0, sim::TransferKind::kDeviceToHost, kArrayBytes);
  persistent.synchronize_all();

  support::Table table("50 timesteps, 6 offloaded kernels each");
  table.set_header({"Strategy", "Total time", "H2D volume", "D2H volume"});
  table.add_row({"map around every kernel",
                 support::format_time(naive.host_now(), 2),
                 support::format_bytes(static_cast<std::uint64_t>(
                     naive.counters().bytes_h2d)),
                 support::format_bytes(static_cast<std::uint64_t>(
                     naive.counters().bytes_d2h))});
  table.add_row({"persistent TARGET DATA + TARGET UPDATE",
                 support::format_time(persistent.host_now(), 2),
                 support::format_bytes(static_cast<std::uint64_t>(
                     persistent.counters().bytes_h2d)),
                 support::format_bytes(static_cast<std::uint64_t>(
                     persistent.counters().bytes_d2h))});
  std::printf("%s\n", table.render().c_str());

  // GPU-aware MPI (USE_DEVICE_PTR) vs staging through the host.
  const arch::Machine frontier = arch::machines::frontier();
  net::CommModel aware(frontier, frontier.node.gpus_per_node, true);
  net::CommModel staged(frontier, frontier.node.gpus_per_node, false);
  support::Table mpi("Halo exchange of 8 MiB faces, 6 neighbors");
  mpi.set_header({"MPI path", "Exchange time"});
  const double face = 8.0 * 1024 * 1024;
  mpi.add_row({"GPU-aware (USE_DEVICE_PTR)",
               support::format_time(aware.halo_exchange(face, 6), 2)});
  mpi.add_row({"host staging (D2H + send + H2D)",
               support::format_time(staged.halo_exchange(face, 6), 2)});
  std::printf("%s\n", mpi.render().c_str());

  std::printf("  persistent-region speed-up (qualitative in the paper): "
              "%.1fx\n",
              naive.host_now() / persistent.host_now());
  bench::paper_vs_measured("GPU-aware MPI halo speed-up", 1.5,
                           staged.halo_exchange(face, 6) /
                               aware.halo_exchange(face, 6),
                           "x");
  return 0;
}
