/// Regenerates Table 2: observed application speed-ups from OLCF-5
/// (Summit) to OLCF-6 (Frontier). Every row is produced by running that
/// application's mini-app model on both machine descriptions — per device
/// (one MI250X module = 2 GCDs vs one V100) or scaled out, matching the
/// basis each application team used.

#include <cstdio>

#include "apps/coast/apsp.hpp"
#include "apps/comet/ccc.hpp"
#include "apps/exasky/hacc.hpp"
#include "apps/gamess/rimp2.hpp"
#include "apps/gests/psdns.hpp"
#include "apps/lsms/kkr.hpp"
#include "apps/nuccor/ccd.hpp"
#include "apps/pele/driver.hpp"
#include "bench_util.hpp"
#include "coe/registry.hpp"
#include "mathlib/device_blas.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

double gamess_speedup() {
  using namespace exa;
  ml::TuningRegistry::instance().clear();
  const double v100 =
      apps::gamess::simulate_fragment_time(arch::v100(), 40, 160, 700, true);
  const double gcd = apps::gamess::simulate_fragment_time(
      arch::mi250x_gcd(), 40, 160, 700, true);
  return 2.0 * v100 / gcd;  // one MI250X module = 2 GCDs
}

double lsms_speedup() {
  using namespace exa;
  const auto v100 = apps::lsms::simulate_atom_solve(
      arch::v100(), 113, 32, apps::lsms::SolverPath::kBlockInversion, true);
  const auto gcd = apps::lsms::simulate_atom_solve(
      arch::mi250x_gcd(), 113, 32, apps::lsms::SolverPath::kLibraryLu, true);
  return 2.0 * v100.total() / gcd.total();
}

double gests_speedup() {
  using namespace exa;
  using apps::gests::Decomposition;
  apps::gests::PsdnsConfig on_summit;
  on_summit.n = 16384;  // power-of-two stand-in for the 18432^3 baseline
  on_summit.decomp = Decomposition::kSlabs;
  const arch::Machine summit = arch::machines::summit();
  const int summit_nodes =
      apps::gests::max_nodes(summit, on_summit.n, Decomposition::kSlabs);
  const auto t_summit =
      apps::gests::step_time(summit, summit_nodes, on_summit);

  apps::gests::PsdnsConfig on_frontier;
  on_frontier.n = 32768;
  on_frontier.decomp = Decomposition::kSlabs;
  const auto t_frontier =
      apps::gests::step_time(arch::machines::frontier(), 4096, on_frontier);
  return t_frontier.fom / t_summit.fom;
}

double exasky_speedup() {
  using namespace exa;
  const auto summit =
      apps::exasky::step_model(arch::machines::summit(), 4096, 4.0e7);
  const auto frontier =
      apps::exasky::step_model(arch::machines::frontier(), 8192, 4.0e7);
  return frontier.fom / summit.fom;
}

double comet_speedup() {
  using namespace exa;
  const auto summit =
      apps::comet::scale_run(arch::machines::summit(), 4600, 8192, 100000);
  const auto frontier =
      apps::comet::scale_run(arch::machines::frontier(), 9074, 8192, 100000);
  return frontier.sustained_flops / summit.sustained_flops;
}

double nuccor_speedup() {
  using namespace exa;
  // Medium-mass nucleus: ~60 particle and 20 hole single-particle states.
  const double v100 =
      apps::nuccor::simulate_ccd_iteration_time(arch::v100(), 60, 20);
  const double gcd =
      apps::nuccor::simulate_ccd_iteration_time(arch::mi250x_gcd(), 60, 20);
  return 2.0 * v100 / gcd;
}

double pele_speedup() {
  using namespace exa;
  using apps::pele::CodeState;
  const double summit =
      apps::pele::time_per_cell_step(arch::machines::summit(),
                                     CodeState::kGpuBatchedAsync2021)
          .total();
  const double frontier = apps::pele::time_per_cell_step(
                              arch::machines::frontier(),
                              CodeState::kGpuTuned2023)
                              .total();
  return summit / frontier;
}

double coast_speedup() {
  using namespace exa;
  // The knowledge graphs grew between submissions (SPOKE: >50M vertices).
  const auto summit =
      apps::coast::gordon_bell_run(arch::machines::summit(), 8 << 20);
  const auto frontier =
      apps::coast::gordon_bell_run(arch::machines::frontier(), 32 << 20);
  return frontier.sustained_flops / summit.sustained_flops;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;
  bench::Session session(argc, argv);
  bench::banner("Table 2",
                "Observed application speed-ups from OLCF-5 (Summit) to "
                "OLCF-6 (Frontier), regenerated from the mini-app models");

  struct Row {
    const char* app;
    double paper;
    double measured;
    const char* basis;
  };
  const Row rows[] = {
      {"GAMESS", 5.0, gamess_speedup(), "fragment RI-MP2, per GPU"},
      {"LSMS", 7.5, lsms_speedup(), "FePt LIZ solve, per GPU"},
      {"GESTS", 5.0, gests_speedup(), "FOM N^3/t_wall, scaled out"},
      {"ExaSky", 4.2, exasky_speedup(), "FOM, 8192-node weak scale"},
      {"CoMet", 5.2, comet_speedup(), "sustained bit-GEMM, full system"},
      {"NuCCOR", 6.1, nuccor_speedup(), "CCD iteration, per GPU"},
      {"Pele", 4.2, pele_speedup(), "time/cell/step, per node"},
      {"COAST", 7.4, coast_speedup(), "APSP sustained flops, full system"},
  };

  support::Table table("Table 2: measured speed-up (Frontier/Summit)");
  table.set_header({"Application", "Paper", "Measured", "Basis"});
  table.set_alignment({support::Align::kLeft, support::Align::kRight,
                       support::Align::kRight, support::Align::kLeft});
  for (const Row& r : rows) {
    table.add_row({r.app, support::Table::cell(r.paper, 1),
                   support::Table::cell(r.measured, 1), r.basis});
  }
  table.add_note("paper (Section 6): speed-ups between 5x and 7x are typical");
  std::printf("%s\n", table.render().c_str());

  for (const Row& r : rows) {
    bench::paper_vs_measured(std::string(r.app) + " speed-up", r.paper,
                             r.measured, "x");
    session.metric(std::string("table2.speedup.") + r.app, r.measured, 0.02);
  }
  return 0;
}
