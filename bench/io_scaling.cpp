/// Storage-model study through exa::io::FileSystem: collective
/// checkpoints priced against a quiet filesystem, a calibrated Lustre-like
/// tier (64 OSTs x 5 GB/s), and a node-local write-through burst buffer.
///
/// Three artifacts:
///  1. Weak scaling of a 256 MiB/rank checkpoint: the PFS wins while the
///     job underfills the OST pool, the burst buffer wins once aggregate
///     demand exceeds the PFS backbone (absorb bandwidth scales with
///     nodes).
///  2. The co-scheduled-job interference story (golden-gated): two jobs
///     whose stripes share the OST pool degrade each other's checkpoint
///     >= 1.5x over an isolated run; absorbing through the write-through
///     burst buffer recovers to within 10% of isolated.
///  3. A RankSim-coupled checkpoint: per-rank compute skew feeds straight
///     into the I/O schedule on the same virtual timelines.
///
/// With --io-trace=<file>, every access leaves a Darshan-DXT-style JSONL
/// record; with --trace=<file>, the same accesses land on Chrome lanes
/// ("io/ost<k>", "io/bb<n>", "io/mds").

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "io/checkpoint.hpp"
#include "io/file_system.hpp"
#include "io/io_model.hpp"
#include "net/fabric.hpp"
#include "net/rank_sim.hpp"
#include "support/assert.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

constexpr int kRanksPerNode = 8;

/// Two co-scheduled checkpoints over one shared filesystem, issue order
/// interleaved rank-by-rank (the fair-share schedule two independent jobs
/// produce). Returns job A's makespan (seconds).
double interleaved_job_a_makespan(exa::io::FileSystem& fs, int ranks_per_job,
                                  double bytes_per_rank) {
  const int total = 2 * ranks_per_job;
  std::vector<exa::io::OpenResult> open(static_cast<std::size_t>(total));
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < ranks_per_job; ++i) {
    order.push_back(i);                  // job A: global ranks [0, P)
    order.push_back(ranks_per_job + i);  // job B: global ranks [P, 2P)
  }
  for (const int r : order) {
    const char* job = r < ranks_per_job ? "jobA" : "jobB";
    open[static_cast<std::size_t>(r)] =
        fs.open(r, std::string(job) + "/r" + std::to_string(r), 0.0);
  }
  std::vector<double> done(static_cast<std::size_t>(total), 0.0);
  for (const int r : order) {
    const auto& o = open[static_cast<std::size_t>(r)];
    const double end = fs.write(o.handle, 0.0, bytes_per_rank, o.ready_s);
    done[static_cast<std::size_t>(r)] = fs.close(o.handle, end);
  }
  return *std::max_element(done.begin(), done.begin() + ranks_per_job);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;
  bench::Session session(argc, argv);
  bench::banner("Checkpoint scaling and OST interference (storage subsystem)",
                "Lustre-like PFS vs node-local burst buffer, DXT-traced");
  std::fprintf(stderr, "session: io preset %s\n", session.io_mode().c_str());

  const io::IoConfig quiet = io::IoConfig::quiet_config();
  const io::IoConfig lustre = io::IoConfig::lustre();
  const io::IoConfig bb = io::IoConfig::lustre_with_burst_buffer();

  // --- 1. weak scaling of a 256 MiB/rank collective checkpoint ------------
  const double table_bytes = 256.0 * 1024 * 1024;
  const std::vector<int> node_counts = {8, 32, 64, 128, 256};
  auto csv = bench::open_csv(session.csv_path(),
                             {"nodes", "ranks", "t_quiet", "t_lustre", "t_bb"});
  support::Table table("Collective checkpoint, 256 MiB per rank, 8 ranks/node");
  table.set_header({"Nodes", "Ranks", "t (quiet)", "t (lustre)",
                    "t (burst buffer)"});
  auto& profiler = trace::Profiler::instance();
  double lustre_64n = 0.0;
  double bb_64n = 0.0;
  for (const int nodes : node_counts) {
    const int ranks = nodes * kRanksPerNode;
    const double t_quiet = io::checkpoint_time(quiet, ranks, table_bytes);
    const double t_lustre = io::checkpoint_time(lustre, ranks, table_bytes);
    const double t_bb = io::checkpoint_time(bb, ranks, table_bytes);
    EXA_REQUIRE_MSG(t_quiet == 0.0,
                    "quiet filesystem must add exactly zero time");
    if (nodes == 64) {
      lustre_64n = t_lustre;
      bb_64n = t_bb;
    }
    profiler.record("io/ckpt_lustre", nodes, t_lustre);
    profiler.record("io/ckpt_bb", nodes, t_bb);
    table.add_row({std::to_string(nodes), std::to_string(ranks),
                   support::format_time(t_quiet, 2),
                   support::format_time(t_lustre, 2),
                   support::format_time(t_bb, 2)});
    bench::csv_row(csv, {std::to_string(nodes), std::to_string(ranks),
                         bench::csv_num(t_quiet), bench::csv_num(t_lustre),
                         bench::csv_num(t_bb)});
  }
  table.add_note("Burst-buffer absorb bandwidth scales with nodes; the PFS"
                 " backbone does not");
  std::printf("%s\n", table.render().c_str());

  // --- 2. co-scheduled-job interference on shared OSTs --------------------
  // Two 64-node jobs (512 ranks each) checkpoint 1 GiB/rank into the same
  // 64-OST pool. Interleaved stripes serialize on the shared OST cursors.
  const int job_ranks = 64 * kRanksPerNode;
  const double job_bytes = 1024.0 * 1024 * 1024;

  io::FileSystem iso_fs(lustre);
  const io::CheckpointStats iso =
      io::checkpoint(iso_fs, job_ranks, job_bytes, 0.0, "jobA/r");
  const double t_iso = iso.end_s;

  io::FileSystem shared_fs(lustre);
  const double t_shared =
      interleaved_job_a_makespan(shared_fs, job_ranks, job_bytes);
  const double degradation = t_shared / t_iso;

  io::FileSystem bb_fs(bb);
  const double t_bb_shared =
      interleaved_job_a_makespan(bb_fs, job_ranks, job_bytes);
  const double recovery = t_bb_shared / t_iso;

  // Background drains still owe the PFS every absorbed byte: drain, then
  // check the conservation ledger closes.
  const double drained_s = bb_fs.drain_all(t_bb_shared);
  const double residual = bb_fs.bytes_written() - bb_fs.bytes_landed() -
                          bb_fs.bytes_resident();

  std::printf("Two co-scheduled 512-rank jobs, 1 GiB/rank, shared OST pool:\n");
  bench::paper_vs_measured("isolated checkpoint (s)", 1.7, t_iso, "s");
  bench::paper_vs_measured("interfered checkpoint (s)", 3.4, t_shared, "s");
  std::printf("  interference degradation: %.2fx (gate: >= 1.5x)\n",
              degradation);
  std::printf("  burst-buffer recovery:    %.3fx of isolated (gate: <= 1.10x)\n",
              recovery);
  std::printf("  drains settle at %.3f s; ledger residual %.1f bytes\n\n",
              drained_s, residual);
  EXA_REQUIRE_MSG(degradation >= 1.5,
                  "shared-OST interference below the 1.5x acceptance bar");
  EXA_REQUIRE_MSG(recovery <= 1.10,
                  "write-through burst buffer does not recover isolation");
  EXA_REQUIRE_MSG(residual == 0.0, "byte-conservation ledger did not close");

  // --- 3. RankSim-coupled checkpoint --------------------------------------
  // Compute skew (stragglers) staggers the per-rank checkpoint starts on
  // the same virtual timelines RankSim's messages live on.
  const arch::Machine frontier = arch::machines::frontier();
  net::FabricConfig lane_cfg;
  lane_cfg.faults.straggler_fraction = 0.25;
  lane_cfg.faults.straggler_slowdown = 1.5;
  net::Fabric lane_fabric(frontier, kRanksPerNode, lane_cfg);
  net::RankSim sim(lane_fabric, 16);
  for (int r = 0; r < sim.ranks(); ++r) sim.compute(r, 0.05);
  io::FileSystem sim_fs(lustre);
  const io::CheckpointStats coupled =
      io::checkpoint(sim_fs, sim, job_bytes, "step0/r");
  std::printf("RankSim-coupled checkpoint (16 ranks, 1 GiB each): "
              "makespan %s, ends at %s\n\n",
              support::format_time(coupled.makespan_s(), 3).c_str(),
              support::format_time(sim.makespan(), 3).c_str());

  // Golden gate: the interference separation is the subsystem's headline
  // artifact; the absolute checkpoint times catch drift in either tier.
  session.metric("io.ckpt_quiet_s", 0.0, 0.0);
  session.metric("io.ckpt_lustre_64n_s", lustre_64n, 0.01);
  session.metric("io.ckpt_bb_64n_s", bb_64n, 0.01);
  session.metric("io.interference_degradation", degradation, 0.02);
  session.metric("io.bb_recovery_ratio", recovery, 0.02);
  session.metric("io.conservation_residual_bytes", residual, 0.0);
  session.metric("io.ranksim_ckpt_makespan_s", coupled.makespan_s(), 0.01);
  return 0;
}
