/// §3.1: GAMESS Many-Body-Expansion runs on Frontier — "128 to 512 nodes
/// for a system comprised of 935 water molecules", "75k atoms of an ionic
/// liquid model system used 1024 and 2048 nodes", with "nearly ideal
/// linear scaling up to 2K nodes".

#include <cstdio>

#include "apps/gamess/fmo.hpp"
#include "apps/gamess/rimp2.hpp"
#include "bench_util.hpp"
#include "mathlib/device_blas.hpp"
#include "net/scaling.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main() {
  using namespace exa;
  using namespace exa::apps::gamess;
  bench::banner("GAMESS fragmentation scaling (Section 3.1)",
                "FMO/MBE fragment work, dynamically balanced across nodes");

  ml::TuningRegistry::instance().clear();
  const arch::Machine frontier = arch::machines::frontier();
  // Per-fragment device time at the tuned library configuration.
  const double fragment_s = simulate_fragment_time(
      *frontier.node.gpu, 40, 160, 700, /*tuned_library=*/true);
  std::printf("fragment RI-MP2 time on one GCD: %s\n\n",
              support::format_time(fragment_s, 2).c_str());

  support::Rng rng(2021);
  struct Case {
    const char* name;
    std::size_t fragments;
    std::vector<int> nodes;
  };
  const Case cases[] = {
      {"935 water molecules", 935, {128, 256, 512}},
      {"75k-atom ionic liquid (25k fragments)", 25000, {512, 1024, 2048}},
  };

  for (const Case& c : cases) {
    const auto sites = make_cluster(c.fragments, rng);
    const FmoWorkload work = make_workload(sites, 5.0);
    std::printf("%s: %zu monomers, %zu dimers\n", c.name, work.monomers,
                work.dimers);
    net::ScalingStudy study(c.name, net::ScalingKind::kStrong);
    study.run(c.nodes, [&](int nodes) {
      return fmo_iteration_time(frontier, nodes, work, fragment_s);
    });
    std::printf("%s\n", study.to_table().render().c_str());
  }

  // The headline claim: parallel efficiency at 2048 nodes for the big case.
  const auto sites = make_cluster(25000, rng);
  const FmoWorkload work = make_workload(sites, 5.0);
  const double t512 = fmo_iteration_time(frontier, 512, work, fragment_s);
  const double t2048 = fmo_iteration_time(frontier, 2048, work, fragment_s);
  bench::paper_vs_measured("parallel efficiency 512 -> 2048 nodes", 0.95,
                           (t512 / t2048) / 4.0);
  ml::TuningRegistry::instance().clear();
  return 0;
}
