#pragma once
/// \file bench_util.hpp
/// Shared output conventions for the table/figure regenerator binaries:
/// every bench prints a banner naming the paper artifact it reproduces,
/// renders ASCII tables, and (optionally) drops a CSV next to stdout.
///
/// Benches also share the observability flags (see README "Observability"):
///
///     --trace=<file>          capture a Chrome trace-event JSON timeline
///     --profile-jsonl=<file>  append Extra-P-style JSONL profile samples
///     --csv=<file>            machine-readable series next to the tables
///     --seed=<u64>            override the bench's RNG seed (hex or dec)
///     --emit-golden=<file>    write this run's metrics as a golden baseline
///     --check-golden=<file>   gate this run against a checked-in baseline
///     --io=<quiet|lustre|bb>  storage-model preset for io-aware benches
///     --io-trace=<file>       dump DXT-style per-access I/O records (JSONL)
///     --help                  print the full flag list (stdout, exit 0)
///
/// Construct a `Session` from argc/argv at the top of main; it enables the
/// trace::Tracer / trace::Profiler for the run, prints the effective seed
/// on entry (stderr), and writes the requested files — or compares against
/// the golden baseline, exiting non-zero on drift — at scope exit. With no
/// flags passed, stdout is byte-identical to an uninstrumented run.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "io/dxt.hpp"
#include "io/io_model.hpp"
#include "qa/golden.hpp"
#include "support/assert.hpp"
#include "support/csv.hpp"
#include "support/log.hpp"
#include "trace/chrome_export.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"

namespace exa::bench {

inline void banner(const std::string& artifact, const std::string& summary) {
  std::printf("================================================================\n");
  std::printf("exaready | %s\n", artifact.c_str());
  std::printf("%s\n", summary.c_str());
  std::printf("================================================================\n\n");
}

inline void paper_vs_measured(const std::string& quantity, double paper,
                              double measured, const std::string& unit = "") {
  std::printf("  %-46s paper: %10.3g %-8s measured: %10.3g %s\n",
              quantity.c_str(), paper, unit.c_str(), measured, unit.c_str());
}

// --- CSV emission ---------------------------------------------------------

/// A CSV file being accumulated; rows render via support::CsvWriter and
/// the file is written when the sink is destroyed.
class CsvSink {
 public:
  CsvSink(std::string path, std::vector<std::string> header)
      : path_(std::move(path)), writer_(std::move(header)) {}

  CsvSink(const CsvSink&) = delete;
  CsvSink& operator=(const CsvSink&) = delete;

  void row(std::vector<std::string> cells) { writer_.add_row(std::move(cells)); }

  ~CsvSink() {
    try {
      writer_.write_file(path_);
      std::fprintf(stderr, "csv: wrote %s (%zu rows)\n", path_.c_str(),
                   writer_.row_count());
    } catch (const std::exception& err) {
      std::fprintf(stderr, "csv: %s\n", err.what());
    }
  }

 private:
  std::string path_;
  support::CsvWriter writer_;
};

/// Opens a CSV sink, or returns null when `path` is empty (no --csv flag)
/// so call sites stay unconditional.
[[nodiscard]] inline std::unique_ptr<CsvSink> open_csv(
    const std::string& path, std::vector<std::string> header) {
  if (path.empty()) return nullptr;
  return std::make_unique<CsvSink>(path, std::move(header));
}

/// Null-safe row append for sinks returned by open_csv.
inline void csv_row(const std::unique_ptr<CsvSink>& sink,
                    std::vector<std::string> cells) {
  if (sink) sink->row(std::move(cells));
}

/// CSV cell for a double: %.12g keeps sub-microsecond times readable
/// where std::to_string's fixed six decimals would round them to zero.
[[nodiscard]] inline std::string csv_num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

// --- observability session ------------------------------------------------

/// Parses the shared bench flags and owns the capture lifecycle: enables
/// the global Tracer/Profiler on construction, exports the Chrome trace
/// and appends the JSONL profile on destruction. Unknown arguments are a
/// hard error (usage on stderr, exit 2): a typo like --check-goldn= must
/// not silently run ungated. Benches with flags of their own declare them
/// via `extra_flags` ("--jobs=", ...) and read the values back with
/// `extra()` / `extra_num()`.
class Session {
 public:
  /// `default_seed` is the bench's own deterministic seed; --seed=
  /// overrides it. The effective seed is printed on entry (to stderr, so
  /// a flagless run's stdout stays byte-identical) — every bench run is
  /// reproducible from its log. `extra_flags` lists this bench's own
  /// "--name=" prefixes; anything not shared or listed rejects the run.
  Session(int argc, char** argv, std::uint64_t default_seed = 0x5eed'0000,
          std::vector<std::string> extra_flags = {})
      : seed_(default_seed), extra_flags_(std::move(extra_flags)) {
    std::string seed_text;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help") {
        // Usage on stdout (it is the requested output), exit 0.
        print_usage(argv[0], stdout);
        std::exit(0);
      }
      bool known = take(arg, "--trace=", trace_path_) ||
                   take(arg, "--profile-jsonl=", profile_path_) ||
                   take(arg, "--csv=", csv_path_) ||
                   take(arg, "--seed=", seed_text) ||
                   take(arg, "--emit-golden=", emit_golden_path_) ||
                   take(arg, "--check-golden=", check_golden_path_) ||
                   take(arg, "--io=", io_mode_) ||
                   take(arg, "--io-trace=", io_trace_path_);
      for (std::size_t f = 0; !known && f < extra_flags_.size(); ++f) {
        known = take(arg, extra_flags_[f], extra_values_[extra_flags_[f]]);
      }
      if (!known) {
        std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
        print_usage(argv[0]);
        std::exit(2);
      }
    }
    if (!seed_text.empty()) {
      seed_ = std::strtoull(seed_text.c_str(), nullptr, 0);  // dec or 0x...
    }
    std::fprintf(stderr, "session: seed 0x%llx (replay with --seed=0x%llx)\n",
                 static_cast<unsigned long long>(seed_),
                 static_cast<unsigned long long>(seed_));
    if (!trace_path_.empty()) {
      trace::Tracer::instance().enable();
      support::log_debug("session: tracing to ", trace_path_);
    }
    if (!profile_path_.empty()) {
      trace::Profiler::instance().enable();
      support::log_debug("session: profiling to ", profile_path_);
    }
    if (!io_trace_path_.empty()) {
      io::DxtLog::instance().enable();
      support::log_debug("session: io tracing to ", io_trace_path_);
    }
    if (!io_mode_.empty()) {
      try {
        io_config_ = io::IoConfig::preset(io_mode_);
      } catch (const support::Error& e) {
        std::fprintf(stderr, "io: %s\n", e.what());
        std::exit(1);  // bad flag value: fail like a bad --check-golden
      }
    }
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  ~Session() {
    if (!trace_path_.empty()) {
      auto& tracer = trace::Tracer::instance();
      try {
        trace::write_chrome_trace(trace_path_, tracer.snapshot());
        std::fprintf(stderr, "trace: wrote %s (%llu events, %llu dropped)\n",
                     trace_path_.c_str(),
                     static_cast<unsigned long long>(tracer.recorded()),
                     static_cast<unsigned long long>(tracer.dropped()));
        if (tracer.dropped() > 0) {
          support::log_warn("tracer ring buffer dropped ", tracer.dropped(),
                            " events; enable() with a larger capacity");
        }
      } catch (const std::exception& err) {
        std::fprintf(stderr, "trace: %s\n", err.what());
      }
      tracer.disable();
    }
    if (!profile_path_.empty()) {
      auto& profiler = trace::Profiler::instance();
      try {
        const auto samples = profiler.samples();
        trace::append_jsonl(profile_path_, samples);
        std::fprintf(stderr, "profile: appended %zu samples to %s\n",
                     samples.size(), profile_path_.c_str());
      } catch (const std::exception& err) {
        std::fprintf(stderr, "profile: %s\n", err.what());
      }
      profiler.disable();
    }
    if (!io_trace_path_.empty()) {
      auto& dxt = io::DxtLog::instance();
      try {
        const auto records = dxt.snapshot();
        io::write_dxt_jsonl(io_trace_path_, records);
        std::fprintf(stderr, "io-trace: wrote %s (%zu records)\n",
                     io_trace_path_.c_str(), records.size());
      } catch (const std::exception& err) {
        std::fprintf(stderr, "io-trace: %s\n", err.what());
      }
      dxt.disable();
    }
    finish_golden();
  }

  // --- golden-baseline gate ----------------------------------------------

  /// Records one headline metric of this run. `rel_tol` is the drift this
  /// metric tolerates when a future run is gated against a baseline
  /// emitted from this one.
  void metric(std::string name, double value, double rel_tol) {
    metrics_.push_back(qa::GoldenMetric{std::move(name), value, rel_tol});
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] bool tracing() const { return !trace_path_.empty(); }
  [[nodiscard]] bool profiling() const { return !profile_path_.empty(); }
  [[nodiscard]] const std::string& trace_path() const { return trace_path_; }
  [[nodiscard]] const std::string& profile_path() const { return profile_path_; }
  [[nodiscard]] const std::string& csv_path() const { return csv_path_; }
  /// Storage-model preset selected with --io= ("quiet" when absent — the
  /// flagless default keeps io-aware benches' stdout byte-identical).
  [[nodiscard]] const io::IoConfig& io_config() const { return io_config_; }
  /// The --io= preset name ("quiet" when the flag was absent).
  [[nodiscard]] std::string io_mode() const {
    return io_mode_.empty() ? "quiet" : io_mode_;
  }

  /// Value of a declared extra flag (by its "--name=" prefix), or "" when
  /// the flag was not passed.
  [[nodiscard]] std::string extra(const std::string& prefix) const {
    const auto it = extra_values_.find(prefix);
    return it == extra_values_.end() ? std::string() : it->second;
  }
  /// Numeric form of extra(); `fallback` when the flag was not passed.
  [[nodiscard]] double extra_num(const std::string& prefix,
                                 double fallback) const {
    const std::string text = extra(prefix);
    return text.empty() ? fallback : std::strtod(text.c_str(), nullptr);
  }

 private:
  static bool take(const std::string& arg, const std::string& prefix,
                   std::string& out) {
    if (arg.rfind(prefix, 0) != 0) return false;
    out = arg.substr(prefix.size());
    return true;
  }

  void print_usage(const char* argv0, std::FILE* out = stderr) const {
    std::fprintf(out,
                 "usage: %s [flags]\n"
                 "  --trace=<file>          Chrome trace-event JSON timeline\n"
                 "  --profile-jsonl=<file>  append Extra-P JSONL profile samples\n"
                 "  --csv=<file>            machine-readable series\n"
                 "  --seed=<u64>            override the RNG seed (hex or dec)\n"
                 "  --emit-golden=<file>    write this run's golden baseline\n"
                 "  --check-golden=<file>   gate against a golden baseline\n"
                 "  --io=<quiet|lustre|bb>  storage-model preset\n"
                 "  --io-trace=<file>       DXT-style per-access I/O records\n"
                 "  --help                  print this usage and exit\n",
                 argv0);
    for (const std::string& flag : extra_flags_) {
      std::fprintf(out, "  %s<value>\n", flag.c_str());
    }
  }

  void finish_golden() {
    if (!emit_golden_path_.empty()) {
      try {
        qa::golden_write(emit_golden_path_, qa::GoldenFile{metrics_});
        std::fprintf(stderr, "golden: wrote %s (%zu metrics)\n",
                     emit_golden_path_.c_str(), metrics_.size());
      } catch (const std::exception& err) {
        std::fprintf(stderr, "golden: %s\n", err.what());
        std::_Exit(1);
      }
    }
    if (check_golden_path_.empty()) return;
    try {
      const qa::GoldenFile baseline = qa::golden_load(check_golden_path_);
      const qa::GoldenCompareResult cmp = qa::golden_compare(baseline, metrics_);
      std::fprintf(stderr, "%s [%s]\n", cmp.report().c_str(),
                   check_golden_path_.c_str());
      if (!cmp.ok) {
        // _Exit keeps the gate's exit code deterministic from a destructor
        // (same idiom as check::Checker::finalize).
        std::fflush(nullptr);
        std::_Exit(1);
      }
    } catch (const std::exception& err) {
      std::fprintf(stderr, "golden: %s\n", err.what());
      std::fflush(nullptr);
      std::_Exit(1);
    }
  }

  std::uint64_t seed_ = 0;
  std::string trace_path_;
  std::string profile_path_;
  std::string csv_path_;
  std::string emit_golden_path_;
  std::string check_golden_path_;
  std::string io_mode_;
  std::string io_trace_path_;
  io::IoConfig io_config_;  ///< quiet unless --io= selects a preset
  std::vector<qa::GoldenMetric> metrics_;
  std::vector<std::string> extra_flags_;  ///< this bench's own prefixes
  std::map<std::string, std::string> extra_values_;
};

}  // namespace exa::bench
