#pragma once
/// \file bench_util.hpp
/// Shared output conventions for the table/figure regenerator binaries:
/// every bench prints a banner naming the paper artifact it reproduces,
/// renders ASCII tables, and (optionally) drops a CSV next to stdout.

#include <cstdio>
#include <string>

namespace exa::bench {

inline void banner(const std::string& artifact, const std::string& summary) {
  std::printf("================================================================\n");
  std::printf("exaready | %s\n", artifact.c_str());
  std::printf("%s\n", summary.c_str());
  std::printf("================================================================\n\n");
}

inline void paper_vs_measured(const std::string& quantity, double paper,
                              double measured, const std::string& unit = "") {
  std::printf("  %-46s paper: %10.3g %-8s measured: %10.3g %s\n",
              quantity.c_str(), paper, unit.c_str(), measured, unit.c_str());
}

}  // namespace exa::bench
