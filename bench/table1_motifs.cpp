/// Regenerates Table 1: Application Porting Motifs — which of the paper's
/// ten applications exercised each porting motif.

#include <cstdio>

#include "bench_util.hpp"
#include "coe/registry.hpp"

int main() {
  using namespace exa;
  bench::banner("Table 1", "Application porting motifs");
  const coe::Registry registry = coe::Registry::paper_applications();
  std::printf("%s\n", registry.table1_motifs().render().c_str());

  std::printf("Porting approaches on record:\n");
  for (const auto& app : registry.applications()) {
    std::printf("  %-8s:", app.name().c_str());
    for (const auto a : app.approaches()) {
      std::printf(" [%s]", coe::to_string(a).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
