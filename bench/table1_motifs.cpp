/// Regenerates Table 1: Application Porting Motifs — which of the paper's
/// ten applications exercised each porting motif.

#include <cstdio>

#include "bench_util.hpp"
#include "coe/registry.hpp"

int main(int argc, char** argv) {
  using namespace exa;
  bench::Session session(argc, argv);
  bench::banner("Table 1", "Application porting motifs");
  const coe::Registry registry = coe::Registry::paper_applications();
  std::printf("%s\n", registry.table1_motifs().render().c_str());

  std::printf("Porting approaches on record:\n");
  for (const auto& app : registry.applications()) {
    std::printf("  %-8s:", app.name().c_str());
    for (const auto a : app.approaches()) {
      std::printf(" [%s]", coe::to_string(a).c_str());
    }
    std::printf("\n");
  }

  // Golden gate: the Table 1 shape is discrete, so any drift is a real
  // registry change — gate the motif census exactly (rel_tol 0).
  session.metric("table1.application_count",
                 static_cast<double>(registry.size()), 0.0);
  std::size_t assignments = 0;
  for (const coe::Motif m : coe::all_motifs()) {
    std::size_t count = 0;
    for (const auto& app : registry.applications()) {
      if (app.has_motif(m)) ++count;
    }
    assignments += count;
    session.metric("table1.motif." + coe::to_string(m),
                   static_cast<double>(count), 0.0);
  }
  session.metric("table1.motif_assignments",
                 static_cast<double>(assignments), 0.0);
  return 0;
}
