/// §4: the three early-access hardware generations — architecture fidelity
/// to Frontier vs lead time — plus the §6 issue-discovery ordering
/// (functionality -> missing features -> performance).

#include <cstdio>

#include "bench_util.hpp"
#include "coe/readiness.hpp"
#include "support/table.hpp"

int main() {
  using namespace exa;
  using namespace exa::coe;
  bench::banner("Early-access platforms (Section 4) & issue pipeline (Section 6)",
                "Poplar/Tulip -> Spock/Birch -> Crusher -> Frontier");

  std::printf("%s\n", early_access_table().render().c_str());

  // A representative issue log distilled from the paper's narrative.
  IssueLog log;
  log.add({IssueCategory::kFunctionality, "Poplar", 0, true,
           "HIP+OpenMP in one compilation unit unsupported (HACC)"});
  log.add({IssueCategory::kFunctionality, "Spock", 2, true,
           "intermittent segfaults in divergent ReaxFF kernels (LAMMPS)"});
  log.add({IssueCategory::kFunctionality, "Poplar", 1, true,
           "outdated CUDA syntax rejected by hipify (SHOC port)"});
  log.add({IssueCategory::kMissingFeature, "Spock", 3, true,
           "missing rocSOLVER ZGETRF coverage (LSMS)"});
  log.add({IssueCategory::kMissingFeature, "Spock", 4, true,
           "no divide-and-conquer eigensolver in MAGMA/ROCm (GAMESS)"});
  log.add({IssueCategory::kMissingFeature, "Birch", 5, true,
           "DETACH clause support for OpenMP offload (GESTS)"});
  log.add({IssueCategory::kPerformance, "Crusher", 7, true,
           "double-precision constant spills between scalar/vector regs"});
  log.add({IssueCategory::kPerformance, "Crusher", 8, true,
           "pow()/exp() device-library throughput (LAMMPS)"});
  log.add({IssueCategory::kPerformance, "Crusher", 9, false,
           "UVM page-migration overheads (Pele)"});

  support::Table issues("Issue log by category");
  issues.set_header({"Category", "Count", "Mean discovery quarter"});
  for (const IssueCategory c :
       {IssueCategory::kFunctionality, IssueCategory::kMissingFeature,
        IssueCategory::kPerformance}) {
    issues.add_row({to_string(c), std::to_string(log.count(c)),
                    support::Table::cell(log.mean_quarter(c), 1)});
  }
  issues.add_note("Section 6: issues surface as functionality, then missing "
                  "features, then performance — 'typically in this order'");
  std::printf("%s\n", issues.render().c_str());
  std::printf("discovery order matches the paper's observation: %s\n",
              log.follows_discovery_order() ? "yes" : "no");
  std::printf("issue resolution rate: %.0f%%\n\n",
              100.0 * log.resolution_rate());

  bench::paper_vs_measured("Crusher arch fidelity (identical node)", 1.0,
                           assess_generation(arch::machines::crusher(),
                                             arch::machines::frontier())
                               .arch_fidelity);
  return 0;
}
