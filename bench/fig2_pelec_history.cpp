/// Regenerates Figure 2: "History of PeleC time per cell per timestep for a
/// single node between September 2018 and March 2023" across Cori, Theta,
/// Eagle, Summit, and Frontier, plus the time reduction at 4096 nodes for
/// the 2020/2021/2023 code states. The paper reports a 75x cumulative
/// speed-up over the project.

#include <cstdio>

#include "apps/pele/driver.hpp"
#include "bench_util.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace exa;
  using apps::pele::figure2_series;
  bench::Session session(argc, argv);
  bench::banner("Figure 2",
                "PeleC time per cell per timestep, Sep 2018 - Mar 2023, "
                "single node and 4096 nodes");

  const auto series = figure2_series();
  support::Table table("Figure 2 series");
  table.set_header({"Date", "Machine", "Nodes", "Code state",
                    "Time/cell/step", "Cumulative speed-up"});
  support::CsvWriter csv({"date", "machine", "nodes", "time_per_cell_s"});
  const double start = series.front().time_per_cell_s;
  for (const auto& p : series) {
    table.add_row({p.date, p.machine, std::to_string(p.nodes),
                   to_string(p.state),
                   support::format_time(p.time_per_cell_s, 2),
                   support::Table::cell(start / p.time_per_cell_s, 1) + "x"});
    csv.add_row({p.date, p.machine, std::to_string(p.nodes),
                 support::Table::cell(p.time_per_cell_s * 1e9, 3)});
  }
  table.add_note("single-node series first, then the 4096-node points");
  std::printf("%s\n", table.render().c_str());

  const double total = start / series[5].time_per_cell_s;
  bench::paper_vs_measured("cumulative single-node speed-up 2018->2023", 75.0,
                           total, "x");
  const double weak_eff =
      apps::pele::weak_scaling_efficiency(arch::machines::frontier(), 4096);
  bench::paper_vs_measured("weak scaling efficiency, 1->4096 Frontier nodes",
                           0.80, weak_eff);

  std::printf("\nCSV:\n%s", csv.render().c_str());

  // Golden gate. The per-point absolute times feed the mutation smoke test:
  // a uniform cost perturbation cancels out of the ratio metrics but not of
  // these, so the WILL_FAIL gates key on them.
  session.metric("fig2.cumulative_speedup", total, 0.02);
  session.metric("fig2.weak_scaling_efficiency_4096", weak_eff, 0.02);
  session.metric("fig2.first_point_time_per_cell_s", start, 0.01);
  session.metric("fig2.last_point_time_per_cell_s", series[5].time_per_cell_s,
                 0.01);
  return 0;
}
