/// §3.4: ExaSky/HACC on Frontier — the weak-scaling FOM target at 8,192
/// nodes (measured 4.2x over Summit; ~230x over the original Theta
/// baseline) and the per-kernel observation that exactly one of the six
/// gravity kernels was wavefront-width sensitive.
///
/// Model runs go through the service layer (svc::run) — the same Scenario
/// path the always-on server executes — so this bench's golden doubles as
/// a bit-stability proof of the bench-to-library refactor.

#include <cstdio>

#include "apps/exasky/hacc.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "svc/scenario.hpp"

namespace {

exa::svc::Report hacc_run(const std::string& machine, int nodes, bool hydro) {
  exa::svc::Scenario scenario;
  scenario.app = exa::svc::App::kExaSky;
  scenario.machine = machine;
  scenario.nodes = nodes;
  scenario.params = {{"particles_per_rank", 4.0e7}, {"hydro", hydro ? 1.0 : 0.0}};
  return exa::svc::run(scenario);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;
  using namespace exa::apps::exasky;
  bench::Session session(argc, argv);
  bench::banner("ExaSky/HACC FOM & kernel study (Section 3.4)",
                "P^3M gravity pipeline; wavefront 64-vs-32 sensitivity");

  // Per-kernel Summit -> Frontier speed-ups (per device).
  support::Table kernels("Per-kernel speed-up, one MI250X GCD vs one V100");
  kernels.set_header({"Gravity kernel", "Speed-up", "Note"});
  const auto speedups = per_kernel_speedups();
  for (const auto& [name, s] : speedups) {
    kernels.add_row({name, support::Table::cell(s, 2) + "x",
                     name == "short_range_chunked"
                         ? "32-lane chunked lists: wavefront-64 penalty"
                         : ""});
  }
  kernels.add_note("the paper: only one gravity kernel of six regressed on "
                   "AMD, traced to the wavefront width");
  std::printf("%s\n", kernels.render().c_str());

  // Step model and FOM across machines, via the service layer.
  const svc::Report summit = hacc_run("summit", 4096, false);
  const svc::Report frontier = hacc_run("frontier", 8192, false);
  const svc::Report hydro = hacc_run("frontier", 8192, true);

  support::Table fom("Weak-scaled step model");
  fom.set_header({"Machine", "Nodes", "Kind", "Step time",
                  "FOM (particle-steps/s)"});
  fom.add_row({"Summit", "4096", "gravity-only",
               support::format_time(summit.time_s, 2),
               support::format_si(summit.fom, 3)});
  fom.add_row({"Frontier", "8192", "gravity-only",
               support::format_time(frontier.time_s, 2),
               support::format_si(frontier.fom, 3)});
  fom.add_row({"Frontier", "8192", "hydro",
               support::format_time(hydro.time_s, 2),
               support::format_si(hydro.fom, 3)});
  fom.add_note("the campaign runs gravity-only and hydrodynamic variants "
               "(Section 3.4); hydro adds the SPH kernel set");
  std::printf("%s\n", fom.render().c_str());

  bench::paper_vs_measured("FOM speed-up vs Summit (Table 2 / Section 3.4)",
                           4.2, frontier.fom / summit.fom, "x");
  // The 230x claim is against the original Theta full-machine baseline:
  // model Theta's CPU-only throughput on the same per-rank workload.
  const arch::Machine theta = arch::machines::theta();
  const double theta_rate = theta.node_count *
                            theta.node.cpu.peak_fp64_flops *
                            theta.node.cpu.sustained_fraction;
  const double theta_fom =
      theta_rate / 4200.0;  // flops per particle-step (short-range kernel)
  bench::paper_vs_measured("FOM vs original Theta baseline", 230.0,
                           frontier.fom / theta_fom, "x");

  // Golden gate: the two in-text FOM claims plus the absolute Frontier FOM
  // (the ratio metrics cancel a uniform exec-model perturbation; the
  // absolute one does not).
  session.metric("exasky.fom_vs_summit", frontier.fom / summit.fom, 0.02);
  session.metric("exasky.fom_vs_theta", frontier.fom / theta_fom, 0.02);
  session.metric("exasky.frontier_fom", frontier.fom, 0.02);
  return 0;
}
