/// §3.10 ablations: (a) divergent vs preprocessed interaction-list torsion
/// evaluation, (b) split vs fused dual-RHS CG charge equilibration, and
/// (c) the compiler register-spill fix — together the ">50% speedup of
/// ReaxFF in LAMMPS since Feb. 2022".

#include <cstdio>

#include "apps/lammps/qeq.hpp"
#include "apps/lammps/reaxff.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main() {
  using namespace exa;
  using namespace exa::apps::lammps;
  bench::banner("LAMMPS ReaxFF optimization study (Section 3.10)",
                "HNS-like molecular crystal; divergence preprocessing, fused "
                "QEq CG, compiler spill fix");

  // Functional system: measure real interaction statistics.
  support::Rng rng(42);
  const System sys = make_molecular_crystal(4, 6, rng);
  const NeighborList neigh = build_neighbor_list(sys, 3.0);
  const BondList bonds = build_bond_list(sys, 1.7);
  const TorsionParams params{1.0, 3.0};
  TorsionStats stats = measure_stats(sys, neigh, bonds, params);
  const ForceResult functional = torsion_divergent(sys, neigh, bonds, params);
  std::printf("functional system: %zu atoms, %llu tuples evaluated of %llu "
              "considered (%.1f%% survive the cutoffs)\n\n",
              sys.size(),
              static_cast<unsigned long long>(functional.tuples_evaluated),
              static_cast<unsigned long long>(functional.tuples_considered),
              100.0 * static_cast<double>(functional.tuples_evaluated) /
                  static_cast<double>(functional.tuples_considered));

  // Scale the measured ratios to a production-size crystal.
  const double scale = 2.0e6 / static_cast<double>(stats.atoms);
  stats.surviving_tuples =
      static_cast<std::uint64_t>(stats.surviving_tuples * scale);
  stats.atoms = 2'000'000;

  support::Table torsion("Torsion evaluation per step (2M atoms)");
  torsion.set_header({"Device", "Compiler fix", "Divergent", "Preprocess+dense",
                      "Speed-up"});
  for (const bool fix : {false, true}) {
    for (const auto* gpu_name : {"V100 (Summit)", "MI250X GCD (Frontier)"}) {
      const arch::GpuArch gpu = std::string(gpu_name).front() == 'V'
                                    ? arch::v100()
                                    : arch::mi250x_gcd();
      const TorsionTimings t = simulate_torsion(gpu, stats, fix);
      torsion.add_row({gpu_name, fix ? "yes" : "no",
                       support::format_time(t.divergent_s, 2),
                       support::format_time(t.preprocessed_s, 2),
                       support::Table::cell(t.speedup(), 2) + "x"});
    }
  }
  std::printf("%s\n", torsion.render().c_str());

  // QEq: split vs fused dual-RHS CG (functional counts, then timing).
  const QeqMatrix h = build_qeq_matrix(sys, neigh, 3.0);
  const QeqResult split = equilibrate(sys, h, /*fused=*/false);
  const QeqResult fused = equilibrate(sys, h, /*fused=*/true);

  support::Table qeq("Charge equilibration solver comparison");
  qeq.set_header({"Strategy", "Loop trips", "Matrix reads", "Allreduces",
                  "Simulated time (4096 nodes)"});
  const arch::Machine frontier = arch::machines::frontier();
  const double t_split =
      simulate_qeq_time(frontier, 200000, 5200000, split.stats, 1, 4096);
  const double t_fused =
      simulate_qeq_time(frontier, 200000, 5200000, fused.stats, 2, 4096);
  qeq.add_row({"two sequential CG solves", std::to_string(split.stats.iterations),
               std::to_string(split.stats.matrix_reads),
               std::to_string(split.stats.allreduces),
               support::format_time(t_split, 2)});
  qeq.add_row({"fused dual-RHS CG", std::to_string(fused.stats.iterations),
               std::to_string(fused.stats.matrix_reads),
               std::to_string(fused.stats.allreduces),
               support::format_time(t_fused, 2)});
  std::printf("%s\n", qeq.render().c_str());

  const TorsionTimings before = simulate_torsion(arch::mi250x_gcd(), stats, false);
  const TorsionTimings after = simulate_torsion(arch::mi250x_gcd(), stats, true);
  bench::paper_vs_measured("torsion preprocessing speed-up (part of >1.5x)",
                           1.5, after.speedup(), "x");
  bench::paper_vs_measured("QEq comm phases saved by fusing", 2.0,
                           static_cast<double>(split.stats.allreduces) /
                               fused.stats.allreduces,
                           "x");
  bench::paper_vs_measured("QEq fused-vs-split time", 1.5, t_split / t_fused,
                           "x");
  bench::paper_vs_measured(
      "spill-fix gain on the divergent kernel", 1.2,
      before.divergent_s / after.divergent_s, "x");
  const double combined =
      (before.divergent_s + t_split) / (after.preprocessed_s + t_fused);
  bench::paper_vs_measured("combined ReaxFF step speed-up (paper: >1.5x)",
                           1.5, combined, "x");
  return 0;
}
