/// Load/soak harness for the always-on simulation service (exa::svc):
/// four producer threads flood a `svc::Server` with tens of thousands of
/// queued scenarios drawn from a small distinct pool (so dedupe carries
/// the load), a slice of logically-deadlined jobs exercises expiry, and
/// the run reports p50/p95/p99 submit-to-terminal latency plus
/// throughput.
///
/// The golden gate is structure-only plus one mutation tripwire: job
/// counts, the dedupe-hit count, and the conservation identity
/// `submitted == completed + cancelled` are exact for ANY worker count
/// (see server.hpp — dedupe is decided at pop time, deadlines are
/// logical), while `svc.total_sim_time_s` (the sum of every completed
/// job's simulated time, in job-id order) pins the underlying app models
/// so the EXA_QA_MUTATION smoke still trips. Wall-clock latencies and
/// throughput are printed but never gated.
///
///     svc_loadtest --jobs=12000 --producers=4 --workers=0
///
/// (workers=0 resolves like the global pool: EXA_THREADS, else hardware.)

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "svc/metrics.hpp"
#include "svc/server.hpp"

namespace {

using exa::svc::App;
using exa::svc::Scenario;

/// The distinct-scenario pool. Small by design: a load test of the
/// scheduler, not of the app models — dedupe collapses the ~12k
/// submissions onto these few distinct executions.
std::vector<Scenario> make_pool() {
  std::vector<Scenario> pool;
  for (const int nodes : {1, 2, 4, 8, 16, 32}) {
    for (const bool hydro : {false, true}) {
      Scenario s;
      s.app = App::kExaSky;
      s.nodes = nodes;
      s.params = {{"particles_per_rank", 1.0e6}, {"hydro", hydro ? 1.0 : 0.0}};
      pool.push_back(s);
    }
  }
  for (const int nodes : {1, 2, 4, 8}) {
    for (const bool pencils : {false, true}) {
      Scenario s;
      s.app = App::kGests;
      s.nodes = nodes;
      s.params = {{"n", 1024.0}, {"pencils", pencils ? 1.0 : 0.0}};
      pool.push_back(s);
    }
  }
  for (const int nodes : {1, 2, 4, 8, 16, 32}) {
    Scenario s;
    s.app = App::kComet;
    s.nodes = nodes;
    s.params = {{"vectors_per_device", 1024.0}, {"samples", 10000.0}};
    pool.push_back(s);
  }
  for (const int state : {2, 3, 4}) {
    for (const int nodes : {1, 4}) {
      Scenario s;
      s.app = App::kPele;
      s.nodes = nodes;
      s.params = {{"code_state", double(state)}};
      pool.push_back(s);
    }
  }
  for (const bool fused : {false, true}) {
    Scenario s;
    s.app = App::kLammps;
    s.nodes = 2;
    s.params = {{"cells", 2.0}, {"fused", fused ? 1.0 : 0.0}};
    pool.push_back(s);
  }
  return pool;
}

/// One planned submission.
struct PlannedJob {
  std::size_t pool_index = 0;  ///< ignored for deadline jobs
  int priority = 0;
  bool deadline = false;  ///< unique-key job with deadline_tick = 0
  double unique_tag = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;
  bench::Session session(argc, argv, 0x5e87'1c3d,
                         {"--jobs=", "--producers=", "--workers="});
  const auto jobs = std::size_t(session.extra_num("--jobs=", 12000));
  const auto producers = std::size_t(session.extra_num("--producers=", 4));
  const auto workers = std::size_t(session.extra_num("--workers=", 0));
  bench::banner("exa::svc load test (service layer)",
                "producer flood -> bounded priority queue -> dedupe at pop "
                "-> worker pool; structure-exact golden");

  const std::vector<Scenario> pool = make_pool();

  // Plan every submission up front (seeded, so counts below are exact and
  // replayable): every 8th job is a unique-key deadline job that expires
  // at pop; the rest draw from the pool with a mixed priority.
  support::Rng rng(session.seed());
  std::vector<PlannedJob> plan(jobs);
  std::size_t planned_deadline = 0;
  std::vector<bool> drawn(pool.size(), false);
  for (std::size_t i = 0; i < jobs; ++i) {
    PlannedJob& job = plan[i];
    if (i % 8 == 7) {
      job.deadline = true;
      job.unique_tag = double(i);
      ++planned_deadline;
    } else {
      job.pool_index = std::size_t(rng.next() % pool.size());
      job.priority = int(rng.next() % 3);
      drawn[job.pool_index] = true;
    }
  }
  std::size_t distinct_drawn = 0;
  for (const bool d : drawn) distinct_drawn += d ? 1u : 0u;

  svc::MetricProxy metrics;
  svc::ServerConfig config;
  config.workers = workers;
  config.queue_capacity = jobs;  // flood without producer backpressure
  config.metrics = &metrics;
  svc::Server server(config);

  std::printf("plan: %zu jobs (%zu deadline, %zu distinct of %zu pool), "
              "%zu producers, %zu workers\n\n",
              jobs, planned_deadline, distinct_drawn, pool.size(), producers,
              server.workers());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> feeders;
  feeders.reserve(producers);
  for (std::size_t t = 0; t < producers; ++t) {
    feeders.emplace_back([&, t] {
      // Producer t submits the strided slice t, t+P, t+2P, ...
      for (std::size_t i = t; i < plan.size(); i += producers) {
        const PlannedJob& job = plan[i];
        svc::SubmitOptions opts;
        if (job.deadline) {
          Scenario s;
          s.app = App::kExaSky;
          s.params = {{"particles_per_rank", 1.0e9 + job.unique_tag}};
          opts.deadline_tick = 0;  // expires at pop, counts as cancelled
          opts.dedupe = false;
          (void)server.submit(s, opts);
        } else {
          opts.priority = job.priority;
          (void)server.submit(pool[job.pool_index], opts);
        }
      }
    });
  }
  for (std::thread& f : feeders) f.join();
  server.drain();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const svc::ServerStats stats = server.stats();
  const std::vector<double> lat = server.latencies();

  // Simulated-time integral over completed jobs in job-id order: the
  // FP-order-deterministic scalar that pins the app models (and drifts
  // under the EXA_QA_MUTATION cost perturbation).
  double total_sim_time_s = 0.0;
  for (std::uint64_t id = 1; id <= jobs; ++id) {
    const svc::JobStatus status = server.status(svc::JobId(id));
    if (status.state == svc::JobState::kCompleted) {
      total_sim_time_s += status.report.time_s;
    }
  }

  std::printf("results:\n");
  std::printf("  submitted            %llu\n",
              (unsigned long long)stats.submitted);
  std::printf("  completed            %llu\n",
              (unsigned long long)stats.completed);
  std::printf("  cancelled (expired)  %llu (%llu)\n",
              (unsigned long long)stats.cancelled,
              (unsigned long long)stats.expired);
  std::printf("  dedupe hits          %llu\n",
              (unsigned long long)stats.dedupe_hits);
  std::printf("  distinct executions  %llu\n",
              (unsigned long long)stats.executed);
  std::printf("  peak queue depth     %llu\n",
              (unsigned long long)stats.peak_queue_depth);
  std::printf("  total simulated time %.6g s\n\n", total_sim_time_s);

  std::printf("latency/throughput (wall clock; informational, not gated):\n");
  std::printf("  p50  %10.3g s\n", support::percentile(lat, 50.0));
  std::printf("  p95  %10.3g s\n", support::percentile(lat, 95.0));
  std::printf("  p99  %10.3g s\n", support::percentile(lat, 99.0));
  std::printf("  throughput %10.3g jobs/s over %.3g s\n\n",
              double(jobs) / wall_s, wall_s);

  std::fputs(metrics.prometheus_text().c_str(), stderr);

  // Structure-exact gates (rel_tol 0): these hold for any EXA_THREADS.
  session.metric("svc.jobs_submitted", double(stats.submitted), 0.0);
  session.metric("svc.jobs_completed", double(stats.completed), 0.0);
  session.metric("svc.jobs_cancelled", double(stats.cancelled), 0.0);
  session.metric("svc.dedupe_hits", double(stats.dedupe_hits), 0.0);
  session.metric("svc.distinct_executions", double(stats.executed), 0.0);
  session.metric(
      "svc.conservation",
      double(stats.submitted) - double(stats.completed) - double(stats.cancelled),
      0.0);
  // Mutation tripwire: simulated time shifts with the exec-model cost
  // constant; 2% tolerance passes FP noise, fails the mutation smoke.
  session.metric("svc.total_sim_time_s", total_sim_time_s, 0.02);
  return 0;
}
