/// Parallel conservative-lookahead engine throughput (events/sec) on a
/// congested, faulty Frontier fat-tree, plus a 131072-rank tractability
/// run. The golden gate covers *virtual-time structure* only — makespan,
/// event/message/retry counts, clock checksum — never wall-clock, so the
/// baseline holds on any host. Bit-identity between the serial reference
/// loop and the parallel engine at pool sizes 1 and 4 is EXA_REQUIREd on
/// every run; the >=2x events/sec speedup bar is asserted only when the
/// host actually has >= 4 hardware threads (CI containers may have one).

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/engine.hpp"
#include "net/fabric.hpp"
#include "sim/exec_model.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/units.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The mixed workload from tests/net/test_engine.cpp at bench scale:
/// jittered compute, a shifting ring of tagged sends/recvs (distances
/// criss-cross shard boundaries), message sizes cycling through 7 classes.
/// Bytes are scaled by kQaMutationCostScale so -DEXA_QA_MUTATION=ON runs
/// drift the congested delivery times and trip the golden gate.
std::vector<std::vector<exa::net::RankOp>> ring_programs(int ranks,
                                                         int rounds,
                                                         std::uint64_t seed) {
  using exa::net::RankOp;
  exa::support::Rng rng(seed);
  std::vector<std::vector<RankOp>> programs(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    auto& prog = programs[static_cast<std::size_t>(r)];
    prog.reserve(static_cast<std::size_t>(rounds) * 3);
    for (int round = 0; round < rounds; ++round) {
      const int shift = 1 + (round % 5) * 3;
      const int dst = (r + shift) % ranks;
      const int src = (r - shift % ranks + ranks) % ranks;
      prog.push_back(RankOp::compute(1.0e-6 * (1.0 + 0.2 * rng.uniform())));
      prog.push_back(RankOp::send(
          dst, 1024.0 * (1 + round % 7) * exa::sim::kQaMutationCostScale,
          /*tag=*/round));
      prog.push_back(RankOp::recv(src, /*tag=*/round));
    }
  }
  return programs;
}

exa::net::FabricConfig stressed_config() {
  exa::net::FabricConfig config;
  config.congestion = true;
  config.faults.drop_probability = 0.05;
  config.faults.straggler_fraction = 0.1;
  config.faults.straggler_slowdown = 1.7;
  config.faults.degraded_link_fraction = 0.1;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;
  bench::Session session(argc, argv);
  bench::banner("Parallel event-engine throughput (fabric subsystem)",
                "Conservative lookahead vs serial event loop, congested "
                "Frontier fat-tree with faults");

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("Host threads: %u (speedup bar enforced at >= 4)\n\n", hw);

  // --- Scenario A: 4096 congested+faulty ranks, bit-identity + speedup ---
  const arch::Machine frontier = arch::machines::frontier();
  net::Fabric fabric(frontier, frontier.node.gpus_per_node,
                     stressed_config());
  const int ranks = 4096;
  const int rounds = 6;
  net::EventEngine engine(fabric, ring_programs(ranks, rounds, session.seed()));

  const auto t_serial0 = Clock::now();
  const net::EngineResult serial = engine.run_serial();
  const double t_serial = seconds_since(t_serial0);

  support::ThreadPool pool1(1);
  const auto t_par1_0 = Clock::now();
  const net::EngineResult par1 = engine.run_parallel(&pool1);
  const double t_par1 = seconds_since(t_par1_0);

  support::ThreadPool pool4(4);
  const auto t_par4_0 = Clock::now();
  const net::EngineResult par4 = engine.run_parallel(&pool4);
  const double t_par4 = seconds_since(t_par4_0);

  EXA_REQUIRE_MSG(serial.same_outcome(par1),
                  "1-thread parallel engine diverged from serial reference");
  EXA_REQUIRE_MSG(serial.same_outcome(par4),
                  "4-thread parallel engine diverged from serial reference");

  const double events = static_cast<double>(serial.events);
  auto csv = bench::open_csv(session.csv_path(),
                             {"engine", "threads", "events", "seconds",
                              "events_per_sec"});
  support::Table table("4096 ranks x 6 rounds, congestion + drops + "
                       "stragglers (all outcomes bitwise identical)");
  table.set_header({"Engine", "Threads", "Events", "Wall time", "Events/s",
                    "vs serial"});
  const struct {
    const char* name;
    int threads;
    double seconds;
  } rows[] = {{"serial heap", 1, t_serial},
              {"lookahead", 1, t_par1},
              {"lookahead", 4, t_par4}};
  for (const auto& row : rows) {
    table.add_row({row.name, std::to_string(row.threads),
                   std::to_string(serial.events),
                   support::format_time(row.seconds, 3),
                   support::format_si(events / row.seconds, 3),
                   support::format_si(t_serial / row.seconds, 3) + "x"});
    bench::csv_row(csv, {row.name, std::to_string(row.threads),
                         std::to_string(serial.events),
                         bench::csv_num(row.seconds),
                         bench::csv_num(events / row.seconds)});
  }
  table.add_note("Lookahead window: " +
                 support::format_time(engine.lookahead_s(), 3) + " of "
                 "virtual time per super-step (" +
                 std::to_string(par4.windows) + " windows)");
  std::printf("%s\n", table.render().c_str());

  std::printf("Makespan %s, %zu messages, %lld retries, clock checksum "
              "%.17g s\n\n",
              support::format_time(serial.makespan_s, 3).c_str(),
              serial.messages.size(),
              static_cast<long long>(serial.total_retries()),
              serial.clock_sum());

  if (hw >= 4) {
    EXA_REQUIRE_MSG(events / t_par4 >= 2.0 * (events / t_serial),
                    "parallel engine below 2x events/sec at 4 threads");
  }

  // --- Scenario B: 131072-rank tractability (2048 nodes x 64 ranks) -----
  arch::Machine wide = frontier;
  wide.node_count = 2048;
  net::Fabric wide_fabric(wide, 64, stressed_config());
  const int wide_ranks = 131072;
  net::EventEngine wide_engine(wide_fabric,
                               ring_programs(wide_ranks, 1, session.seed()));
  const auto t_wide0 = Clock::now();
  const net::EngineResult wide_result = wide_engine.run_parallel();
  const double t_wide = seconds_since(t_wide0);
  const double wide_events = static_cast<double>(wide_result.events);
  std::printf("Tractability: %d ranks, %llu events in %s (%s events/s, "
              "%d windows)\n\n",
              wide_ranks,
              static_cast<unsigned long long>(wide_result.events),
              support::format_time(t_wide, 3).c_str(),
              support::format_si(wide_events / t_wide, 3).c_str(),
              wide_result.windows);

  // Golden gate: virtual-time structure and conservation only. Counts are
  // exact; the float metrics are deterministic, so tolerances are just
  // golden-file round-trip slack.
  session.metric("engine.makespan_s", serial.makespan_s, 1e-9);
  session.metric("engine.clock_sum_s", serial.clock_sum(), 1e-9);
  session.metric("engine.events", events, 0.0);
  session.metric("engine.messages",
                 static_cast<double>(serial.messages.size()), 0.0);
  session.metric("engine.retries",
                 static_cast<double>(serial.total_retries()), 0.0);
  session.metric("engine.wide_makespan_s", wide_result.makespan_s, 1e-9);
  session.metric("engine.wide_events", wide_events, 0.0);
  return 0;
}
