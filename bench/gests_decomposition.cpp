/// §3.3 ablation: Slabs vs Pencils decomposition of the GESTS PSDNS solve —
/// rank limits (N vs N^2), communication cycles (1 vs 2 transposes per
/// transform), and where each wins; plus the CAAR FOM result (>5x at
/// 32768^3 on 4096 Frontier nodes vs the 18432^3 Summit baseline).
///
/// Solve-model runs go through the service layer (svc::run), the same
/// Scenario path the always-on server executes; the golden gate proves
/// the refactor is bit-stable.

#include <cstdio>
#include <vector>

#include "apps/gests/psdns.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "svc/scenario.hpp"

namespace {

exa::svc::Report psdns_run(const std::string& machine, int nodes,
                           std::size_t n, bool pencils) {
  exa::svc::Scenario scenario;
  scenario.app = exa::svc::App::kGests;
  scenario.machine = machine;
  scenario.nodes = nodes;
  scenario.params = {{"n", double(n)}, {"pencils", pencils ? 1.0 : 0.0}};
  return exa::svc::run(scenario);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;
  using apps::gests::Decomposition;
  bench::Session session(argc, argv);
  bench::banner("GESTS decomposition study (Section 3.3)",
                "Slabs (1 transpose, P<=N) vs Pencils (2 transposes, P<=N^2)");

  const arch::Machine frontier = arch::machines::frontier();

  auto csv = bench::open_csv(session.csv_path(),
                             {"nodes", "ranks", "slabs_t_step", "pencils_t_step",
                              "slabs_fom", "pencils_fom"});
  support::Table table("Per-step time by decomposition, N=8192, Frontier");
  table.set_header({"Nodes", "Ranks", "Slabs t/step", "Pencils t/step",
                    "Slabs FOM", "Pencils FOM"});
  for (const int nodes : {64, 128, 256, 512, 1024, 2048, 4096}) {
    const std::size_t n = 8192;
    const int ranks = nodes * frontier.node.gpus_per_node;

    std::string slabs_t = "rank limit";
    std::string slabs_fom = "-";
    std::string slabs_t_raw;  // CSV wants raw numbers, not table strings
    std::string slabs_fom_raw;
    auto& profiler = trace::Profiler::instance();
    if (nodes <=
        apps::gests::max_nodes(frontier, n, Decomposition::kSlabs)) {
      const svc::Report t = psdns_run("frontier", nodes, n, false);
      slabs_t = support::format_time(t.time_s, 2);
      slabs_fom = support::format_si(t.fom, 2);
      slabs_t_raw = bench::csv_num(t.time_s);
      slabs_fom_raw = bench::csv_num(t.fom);
      profiler.record("gests/slabs/transpose", nodes, t.metric("transpose_s"));
      profiler.record("gests/slabs/step", nodes, t.time_s);
    }
    const svc::Report tp = psdns_run("frontier", nodes, n, true);
    profiler.record("gests/pencils/transpose", nodes, tp.metric("transpose_s"));
    profiler.record("gests/pencils/fft", nodes, tp.metric("fft_s"));
    profiler.record("gests/pencils/step", nodes, tp.time_s);
    table.add_row({std::to_string(nodes), std::to_string(ranks), slabs_t,
                   support::format_time(tp.time_s, 2), slabs_fom,
                   support::format_si(tp.fom, 2)});
    bench::csv_row(csv,
                   {std::to_string(nodes), std::to_string(ranks), slabs_t_raw,
                    bench::csv_num(tp.time_s), slabs_fom_raw,
                    bench::csv_num(tp.fom)});
  }
  table.add_note("Slabs cap: N ranks; beyond it only Pencils continues");
  std::printf("%s\n", table.render().c_str());

  // The CAAR FOM check.
  const arch::Machine summit = arch::machines::summit();
  const std::size_t baseline_n = 16384;  // power-of-two stand-in for 18432^3
  const int summit_nodes =
      apps::gests::max_nodes(summit, baseline_n, Decomposition::kSlabs);
  const svc::Report t_summit =
      psdns_run("summit", summit_nodes, baseline_n, false);

  const std::size_t target_n = 32768;
  const svc::Report t_slabs = psdns_run("frontier", 4096, target_n, false);
  const svc::Report t_pencils = psdns_run("frontier", 4096, target_n, true);

  std::printf("CAAR figure of merit (N^3 / t_wall):\n");
  std::printf("  Summit baseline  N=%5zu, %4d nodes: FOM = %s\n",
              baseline_n, summit_nodes,
              support::format_si(t_summit.fom, 3).c_str());
  std::printf("  Frontier Slabs   N=%5zu, 4096 nodes: FOM = %s\n", target_n,
              support::format_si(t_slabs.fom, 3).c_str());
  std::printf("  Frontier Pencils N=%5zu, 4096 nodes: FOM = %s\n\n", target_n,
              support::format_si(t_pencils.fom, 3).c_str());
  bench::paper_vs_measured("FOM improvement target (CAAR)", 4.0,
                           t_slabs.fom / t_summit.fom, "x");
  bench::paper_vs_measured("FOM improvement reported (both versions > 5x)",
                           5.0, t_slabs.fom / t_summit.fom, "x");
  bench::paper_vs_measured("Slabs advantage over Pencils at 4096 nodes", 1.2,
                           t_pencils.time_s / t_slabs.time_s, "x");

  // Golden gate: the CAAR FOM improvement is the in-text claim; the raw
  // Frontier FOM is absolute, so it also catches uniform cost drift.
  session.metric("gests.caar_fom_improvement", t_slabs.fom / t_summit.fom,
                 0.02);
  session.metric("gests.frontier_slabs_fom_32768", t_slabs.fom, 0.02);
  session.metric("gests.slabs_vs_pencils_4096",
                 t_pencils.time_s / t_slabs.time_s, 0.02);
  return 0;
}
