/// §3.3 ablation: Slabs vs Pencils decomposition of the GESTS PSDNS solve —
/// rank limits (N vs N^2), communication cycles (1 vs 2 transposes per
/// transform), and where each wins; plus the CAAR FOM result (>5x at
/// 32768^3 on 4096 Frontier nodes vs the 18432^3 Summit baseline).

#include <cstdio>
#include <vector>

#include "apps/gests/psdns.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace exa;
  using apps::gests::Decomposition;
  using apps::gests::PsdnsConfig;
  using apps::gests::step_time;
  bench::Session session(argc, argv);
  bench::banner("GESTS decomposition study (Section 3.3)",
                "Slabs (1 transpose, P<=N) vs Pencils (2 transposes, P<=N^2)");

  const arch::Machine frontier = arch::machines::frontier();

  auto csv = bench::open_csv(session.csv_path(),
                             {"nodes", "ranks", "slabs_t_step", "pencils_t_step",
                              "slabs_fom", "pencils_fom"});
  support::Table table("Per-step time by decomposition, N=8192, Frontier");
  table.set_header({"Nodes", "Ranks", "Slabs t/step", "Pencils t/step",
                    "Slabs FOM", "Pencils FOM"});
  for (const int nodes : {64, 128, 256, 512, 1024, 2048, 4096}) {
    PsdnsConfig slabs;
    slabs.n = 8192;
    slabs.decomp = Decomposition::kSlabs;
    PsdnsConfig pencils = slabs;
    pencils.decomp = Decomposition::kPencils;
    const int ranks = nodes * frontier.node.gpus_per_node;

    std::string slabs_t = "rank limit";
    std::string slabs_fom = "-";
    std::string slabs_t_raw;  // CSV wants raw numbers, not table strings
    std::string slabs_fom_raw;
    auto& profiler = trace::Profiler::instance();
    if (nodes <= apps::gests::max_nodes(frontier, slabs.n,
                                        Decomposition::kSlabs)) {
      const auto t = step_time(frontier, nodes, slabs);
      slabs_t = support::format_time(t.total(), 2);
      slabs_fom = support::format_si(t.fom, 2);
      slabs_t_raw = bench::csv_num(t.total());
      slabs_fom_raw = bench::csv_num(t.fom);
      profiler.record("gests/slabs/transpose", nodes, t.transpose_s);
      profiler.record("gests/slabs/step", nodes, t.total());
    }
    const auto tp = step_time(frontier, nodes, pencils);
    profiler.record("gests/pencils/transpose", nodes, tp.transpose_s);
    profiler.record("gests/pencils/fft", nodes, tp.fft_s);
    profiler.record("gests/pencils/step", nodes, tp.total());
    table.add_row({std::to_string(nodes), std::to_string(ranks), slabs_t,
                   support::format_time(tp.total(), 2), slabs_fom,
                   support::format_si(tp.fom, 2)});
    bench::csv_row(csv,
                   {std::to_string(nodes), std::to_string(ranks), slabs_t_raw,
                    bench::csv_num(tp.total()), slabs_fom_raw,
                    bench::csv_num(tp.fom)});
  }
  table.add_note("Slabs cap: N ranks; beyond it only Pencils continues");
  std::printf("%s\n", table.render().c_str());

  // The CAAR FOM check.
  const arch::Machine summit = arch::machines::summit();
  PsdnsConfig baseline;
  baseline.n = 16384;  // power-of-two stand-in for 18432^3
  baseline.decomp = Decomposition::kSlabs;
  const int summit_nodes =
      apps::gests::max_nodes(summit, baseline.n, Decomposition::kSlabs);
  const auto t_summit = step_time(summit, summit_nodes, baseline);

  PsdnsConfig target;
  target.n = 32768;
  target.decomp = Decomposition::kSlabs;
  const auto t_slabs = step_time(frontier, 4096, target);
  target.decomp = Decomposition::kPencils;
  const auto t_pencils = step_time(frontier, 4096, target);

  std::printf("CAAR figure of merit (N^3 / t_wall):\n");
  std::printf("  Summit baseline  N=%5zu, %4d nodes: FOM = %s\n",
              baseline.n, summit_nodes,
              support::format_si(t_summit.fom, 3).c_str());
  std::printf("  Frontier Slabs   N=%5zu, 4096 nodes: FOM = %s\n", target.n,
              support::format_si(t_slabs.fom, 3).c_str());
  std::printf("  Frontier Pencils N=%5zu, 4096 nodes: FOM = %s\n\n", target.n,
              support::format_si(t_pencils.fom, 3).c_str());
  bench::paper_vs_measured("FOM improvement target (CAAR)", 4.0,
                           t_slabs.fom / t_summit.fom, "x");
  bench::paper_vs_measured("FOM improvement reported (both versions > 5x)",
                           5.0, t_slabs.fom / t_summit.fom, "x");
  bench::paper_vs_measured("Slabs advantage over Pencils at 4096 nodes", 1.2,
                           t_pencils.total() / t_slabs.total(), "x");

  // Golden gate: the CAAR FOM improvement is the in-text claim; the raw
  // Frontier FOM is absolute, so it also catches uniform cost drift.
  session.metric("gests.caar_fom_improvement", t_slabs.fom / t_summit.fom,
                 0.02);
  session.metric("gests.frontier_slabs_fom_32768", t_slabs.fom, 0.02);
  session.metric("gests.slabs_vs_pencils_4096",
                 t_pencils.total() / t_slabs.total(), 0.02);
  return 0;
}
