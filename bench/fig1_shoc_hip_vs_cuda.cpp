/// Regenerates Figure 1: performance of HIP on the SHOC benchmarks
/// relative to CUDA versions running on OLCF Summit (V100). The paper
/// reports every point within [0.90, 1.05] with averages of 99.8% (with
/// data transfer) and 99.9% (kernel only).

#include <cstdio>
#include <vector>

#include "apps/shoc/shoc.hpp"
#include "bench_util.hpp"
#include "support/csv.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace exa;
  bench::Session session(argc, argv, 0xF16'0001u);
  bench::banner("Figure 1",
                "HIP vs CUDA relative performance, SHOC suite on Summit V100 "
                "(hipify'd build vs native CUDA build)");

  hip::Runtime::instance().configure(arch::v100(), 1);

  // SHOC convention: run several trials, report the median ratio.
  constexpr int kTrials = 5;
  std::vector<std::vector<double>> with_transfer(
      apps::shoc::all_benchmarks().size());
  std::vector<std::vector<double>> kernel_only(
      apps::shoc::all_benchmarks().size());
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto points = apps::shoc::compare_hip_vs_cuda(
        apps::shoc::SizeClass::kMedium,
        static_cast<std::uint32_t>(session.seed()) + trial);
    for (std::size_t i = 0; i < points.size(); ++i) {
      with_transfer[i].push_back(points[i].ratio_with_transfer);
      kernel_only[i].push_back(points[i].ratio_kernel_only);
    }
  }

  support::Table table(
      "Figure 1 series: normalized HIP/CUDA performance (median of 5 trials)");
  table.set_header({"Benchmark", "HIP/CUDA (w/ transfer)", "HIP/CUDA (kernel)"});
  support::CsvWriter csv({"benchmark", "ratio_with_transfer", "ratio_kernel"});
  std::vector<double> all_wt;
  std::vector<double> all_k;
  for (std::size_t i = 0; i < apps::shoc::all_benchmarks().size(); ++i) {
    const double wt = support::median(with_transfer[i]);
    const double k = support::median(kernel_only[i]);
    all_wt.push_back(wt);
    all_k.push_back(k);
    const std::string name =
        apps::shoc::to_string(apps::shoc::all_benchmarks()[i]);
    table.add_row({name, support::Table::cell(wt, 4),
                   support::Table::cell(k, 4)});
    csv.add_row({name, support::Table::cell(wt, 6),
                 support::Table::cell(k, 6)});
  }
  table.add_note("Y-axis range of the paper's figure: 0.90 - 1.05");
  std::printf("%s\n", table.render().c_str());

  bench::paper_vs_measured("average normalized HIP perf (w/ transfer)", 0.998,
                           support::geomean(all_wt));
  bench::paper_vs_measured("average normalized HIP perf (kernel only)", 0.999,
                           support::geomean(all_k));
  bench::paper_vs_measured("min ratio across suite (figure lower bound)", 0.90,
                           support::min_of(all_wt));
  bench::paper_vs_measured("max ratio across suite (figure upper bound)", 1.05,
                           support::max_of(all_wt));
  std::printf("\nCSV:\n%s", csv.render().c_str());

  // Golden gate: the headline Figure 1 ratios. The geomeans carry the
  // tightest paper claims (0.998 / 0.999), so they get the tightest band.
  session.metric("fig1.geomean_ratio_with_transfer", support::geomean(all_wt),
                 0.02);
  session.metric("fig1.geomean_ratio_kernel_only", support::geomean(all_k),
                 0.02);
  session.metric("fig1.min_ratio_with_transfer", support::min_of(all_wt), 0.05);
  session.metric("fig1.max_ratio_with_transfer", support::max_of(all_wt), 0.05);
  return 0;
}
