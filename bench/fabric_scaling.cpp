/// Weak-scaling study of a representative exascale step schedule through
/// exa::net::Fabric: the same per-rank workload (spectral transpose
/// alltoall + CG-style allreduce + 6-face halo + a fixed device kernel)
/// timed with the fabric's congestion engine off (the exact CommModel
/// reduction) and on (per-link contention over the tapered fat-tree).
/// Static (src+dst)%spines routing aligns the transpose traffic onto
/// single spine uplinks once the job spans many leaf switches, so the
/// congestion-on efficiency falls strictly below the analytic curve at
/// >= 1024 nodes — that separation is the golden-gated artifact.
///
/// With --trace=<file>, a small RankSim schedule (nonblocking ring
/// exchange overlapped with compute, then a collective) additionally
/// exports per-rank Chrome trace lanes ("fabric/rank<i>").

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "net/fabric.hpp"
#include "net/rank_sim.hpp"
#include "sim/exec_model.hpp"
#include "support/assert.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

/// One step of the schedule: weak-scaled transpose (fixed volume per
/// rank), small allreduce, fixed halo. All sizes bytes.
double comm_step(const exa::net::Fabric& fabric, int ranks) {
  const double transpose_per_rank = 64.0 * 1024 * 1024;
  return fabric.alltoall(transpose_per_rank / ranks, ranks) +
         fabric.allreduce(8.0 * 1024, ranks) +
         fabric.halo_exchange(2.0 * 1024 * 1024, 6);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;
  bench::Session session(argc, argv);
  bench::banner("Fabric weak scaling (network-simulation subsystem)",
                "Congested vs analytic collective costs, Frontier fat-tree");

  const arch::Machine frontier = arch::machines::frontier();
  const int rpn = frontier.node.gpus_per_node;

  net::FabricConfig quiet_cfg;
  net::FabricConfig congested_cfg;
  congested_cfg.congestion = true;
  const net::Fabric quiet(frontier, rpn, quiet_cfg);
  const net::Fabric congested(frontier, rpn, congested_cfg);

  // Fixed per-rank compute: a bandwidth-bound field sweep on one GCD.
  sim::KernelProfile sweep;
  sweep.name = "field_sweep";
  sweep.add_flops(arch::DType::kF64, 2.0e9);
  sweep.bytes_read = 8.0e9;
  sweep.bytes_written = 4.0e9;
  sweep.memory_efficiency = 0.8;
  sim::LaunchConfig launch;
  launch.block_threads = 256;
  launch.blocks = 4096;
  const double compute_s =
      sim::kernel_timing(*frontier.node.gpu, sweep, launch).total_s;

  const std::vector<int> node_counts = {32, 128, 512, 1024, 2048, 4096};
  auto csv = bench::open_csv(
      session.csv_path(),
      {"nodes", "ranks", "t_off", "t_on", "eff_off", "eff_on"});
  support::Table table("Weak scaling, 64 MiB transpose volume per rank");
  table.set_header({"Nodes", "Ranks", "t/step (analytic)",
                    "t/step (congested)", "Eff (analytic)",
                    "Eff (congested)"});

  double base_off = 0.0;
  double base_on = 0.0;
  std::vector<double> eff_off(node_counts.size());
  std::vector<double> eff_on(node_counts.size());
  auto& profiler = trace::Profiler::instance();
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const int nodes = node_counts[i];
    const int ranks = nodes * rpn;
    const double t_off = compute_s + comm_step(quiet, ranks);
    const double t_on = compute_s + comm_step(congested, ranks);
    if (i == 0) {
      base_off = t_off;
      base_on = t_on;
    }
    eff_off[i] = base_off / t_off;
    eff_on[i] = base_on / t_on;
    profiler.record("fabric/step_analytic", nodes, t_off);
    profiler.record("fabric/step_congested", nodes, t_on);
    table.add_row({std::to_string(nodes), std::to_string(ranks),
                   support::format_time(t_off, 2),
                   support::format_time(t_on, 2),
                   support::format_si(eff_off[i], 3),
                   support::format_si(eff_on[i], 3)});
    bench::csv_row(csv, {std::to_string(nodes), std::to_string(ranks),
                         bench::csv_num(t_off), bench::csv_num(t_on),
                         bench::csv_num(eff_off[i]),
                         bench::csv_num(eff_on[i])});
    // The acceptance bar: beyond 1024 nodes the job spans enough leaf
    // switches that aligned spine routes must bind.
    if (nodes >= 1024) {
      EXA_REQUIRE_MSG(eff_on[i] < eff_off[i],
                      "congested efficiency not strictly below analytic");
    }
  }
  table.add_note("Efficiency normalized to the 32-node run of each curve");
  std::printf("%s\n", table.render().c_str());

  const std::size_t last = node_counts.size() - 1;
  const std::size_t i1024 = 3;  // node_counts[3] == 1024
  std::printf("Congestion slowdown (t_on / t_off):\n");
  std::printf("  1024 nodes: %.2fx    4096 nodes: %.2fx\n\n",
              (compute_s + comm_step(congested, 1024 * rpn)) /
                  (compute_s + comm_step(quiet, 1024 * rpn)),
              (compute_s + comm_step(congested, 4096 * rpn)) /
                  (compute_s + comm_step(quiet, 4096 * rpn)));

  // A small overlapped schedule for the per-rank trace lanes: each rank
  // sends its halo ring-wise, hides the transfer under the sweep kernel,
  // then joins an allreduce. Runs under the congested+flaky fabric so
  // retries and stragglers are visible in the timeline.
  net::FabricConfig lane_cfg = congested_cfg;
  lane_cfg.faults.drop_probability = 0.05;
  lane_cfg.faults.straggler_fraction = 0.2;
  lane_cfg.faults.straggler_slowdown = 1.5;
  net::Fabric lane_fabric(frontier, rpn, lane_cfg);
  net::RankSim sim(lane_fabric, 8);
  for (int step = 0; step < 3; ++step) {
    std::vector<net::Request> recvs;
    recvs.reserve(8);
    for (int r = 0; r < 8; ++r) {
      sim.isend(r, (r + 1) % 8, 2.0 * 1024 * 1024);
      recvs.push_back(sim.irecv((r + 1) % 8, r));
    }
    for (int r = 0; r < 8; ++r) sim.compute(r, compute_s);
    for (int r = 0; r < 8; ++r) sim.wait((r + 1) % 8, recvs[r]);
    sim.allreduce(8.0 * 1024);
  }
  std::printf("RankSim 8-rank overlapped schedule makespan: %s (%zu messages)\n\n",
              support::format_time(sim.makespan(), 3).c_str(),
              sim.messages().size());

  // Golden gate: the congested-vs-analytic separation at scale is the
  // subsystem's headline artifact; the absolute step times catch drift in
  // either cost path.
  session.metric("fabric.weak_eff_off_4096", eff_off[last], 0.01);
  session.metric("fabric.weak_eff_on_4096", eff_on[last], 0.01);
  session.metric("fabric.eff_ratio_on_off_1024", eff_on[i1024] / eff_off[i1024],
                 0.01);
  session.metric("fabric.step_analytic_4096_s",
                 compute_s + comm_step(quiet, 4096 * rpn), 0.01);
  session.metric("fabric.step_congested_4096_s",
                 compute_s + comm_step(congested, 4096 * rpn), 0.01);
  session.metric("fabric.ranksim_makespan_s", sim.makespan(), 0.01);
  return 0;
}
