file(REMOVE_RECURSE
  "../bench/coast_autotune"
  "../bench/coast_autotune.pdb"
  "CMakeFiles/coast_autotune.dir/coast_autotune.cpp.o"
  "CMakeFiles/coast_autotune.dir/coast_autotune.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coast_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
