# Empty dependencies file for coast_autotune.
# This may be replaced when dependencies are built.
