file(REMOVE_RECURSE
  "../bench/offload_data_regions"
  "../bench/offload_data_regions.pdb"
  "CMakeFiles/offload_data_regions.dir/offload_data_regions.cpp.o"
  "CMakeFiles/offload_data_regions.dir/offload_data_regions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_data_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
