# Empty compiler generated dependencies file for offload_data_regions.
# This may be replaced when dependencies are built.
