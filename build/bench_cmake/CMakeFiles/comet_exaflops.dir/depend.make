# Empty dependencies file for comet_exaflops.
# This may be replaced when dependencies are built.
