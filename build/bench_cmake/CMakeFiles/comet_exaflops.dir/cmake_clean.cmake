file(REMOVE_RECURSE
  "../bench/comet_exaflops"
  "../bench/comet_exaflops.pdb"
  "CMakeFiles/comet_exaflops.dir/comet_exaflops.cpp.o"
  "CMakeFiles/comet_exaflops.dir/comet_exaflops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comet_exaflops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
