file(REMOVE_RECURSE
  "../bench/fig1_shoc_hip_vs_cuda"
  "../bench/fig1_shoc_hip_vs_cuda.pdb"
  "CMakeFiles/fig1_shoc_hip_vs_cuda.dir/fig1_shoc_hip_vs_cuda.cpp.o"
  "CMakeFiles/fig1_shoc_hip_vs_cuda.dir/fig1_shoc_hip_vs_cuda.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_shoc_hip_vs_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
