# Empty compiler generated dependencies file for fig1_shoc_hip_vs_cuda.
# This may be replaced when dependencies are built.
