file(REMOVE_RECURSE
  "../bench/gests_decomposition"
  "../bench/gests_decomposition.pdb"
  "CMakeFiles/gests_decomposition.dir/gests_decomposition.cpp.o"
  "CMakeFiles/gests_decomposition.dir/gests_decomposition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gests_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
