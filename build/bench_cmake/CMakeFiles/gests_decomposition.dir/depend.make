# Empty dependencies file for gests_decomposition.
# This may be replaced when dependencies are built.
