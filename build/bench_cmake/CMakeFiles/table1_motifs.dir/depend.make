# Empty dependencies file for table1_motifs.
# This may be replaced when dependencies are built.
