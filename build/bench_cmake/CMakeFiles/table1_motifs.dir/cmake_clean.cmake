file(REMOVE_RECURSE
  "../bench/table1_motifs"
  "../bench/table1_motifs.pdb"
  "CMakeFiles/table1_motifs.dir/table1_motifs.cpp.o"
  "CMakeFiles/table1_motifs.dir/table1_motifs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
