# Empty dependencies file for fig2_pelec_history.
# This may be replaced when dependencies are built.
