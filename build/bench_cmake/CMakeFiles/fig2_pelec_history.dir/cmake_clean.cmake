file(REMOVE_RECURSE
  "../bench/fig2_pelec_history"
  "../bench/fig2_pelec_history.pdb"
  "CMakeFiles/fig2_pelec_history.dir/fig2_pelec_history.cpp.o"
  "CMakeFiles/fig2_pelec_history.dir/fig2_pelec_history.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pelec_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
