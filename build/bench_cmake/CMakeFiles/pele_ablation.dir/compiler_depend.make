# Empty compiler generated dependencies file for pele_ablation.
# This may be replaced when dependencies are built.
