file(REMOVE_RECURSE
  "../bench/pele_ablation"
  "../bench/pele_ablation.pdb"
  "CMakeFiles/pele_ablation.dir/pele_ablation.cpp.o"
  "CMakeFiles/pele_ablation.dir/pele_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pele_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
