
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/gamess_scaling.cpp" "bench_cmake/CMakeFiles/gamess_scaling.dir/gamess_scaling.cpp.o" "gcc" "bench_cmake/CMakeFiles/gamess_scaling.dir/gamess_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/gamess/CMakeFiles/exa_app_gamess.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/exa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/exa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mathlib/CMakeFiles/exa_mathlib.dir/DependInfo.cmake"
  "/root/repo/build/src/hip/CMakeFiles/exa_hip.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/exa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/exa_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
