# Empty compiler generated dependencies file for gamess_scaling.
# This may be replaced when dependencies are built.
