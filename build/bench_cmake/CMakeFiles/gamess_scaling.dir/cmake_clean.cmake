file(REMOVE_RECURSE
  "../bench/gamess_scaling"
  "../bench/gamess_scaling.pdb"
  "CMakeFiles/gamess_scaling.dir/gamess_scaling.cpp.o"
  "CMakeFiles/gamess_scaling.dir/gamess_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamess_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
