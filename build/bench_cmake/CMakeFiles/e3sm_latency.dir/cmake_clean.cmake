file(REMOVE_RECURSE
  "../bench/e3sm_latency"
  "../bench/e3sm_latency.pdb"
  "CMakeFiles/e3sm_latency.dir/e3sm_latency.cpp.o"
  "CMakeFiles/e3sm_latency.dir/e3sm_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3sm_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
