# Empty dependencies file for e3sm_latency.
# This may be replaced when dependencies are built.
