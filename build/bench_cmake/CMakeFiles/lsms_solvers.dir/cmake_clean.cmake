file(REMOVE_RECURSE
  "../bench/lsms_solvers"
  "../bench/lsms_solvers.pdb"
  "CMakeFiles/lsms_solvers.dir/lsms_solvers.cpp.o"
  "CMakeFiles/lsms_solvers.dir/lsms_solvers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsms_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
