# Empty compiler generated dependencies file for lsms_solvers.
# This may be replaced when dependencies are built.
