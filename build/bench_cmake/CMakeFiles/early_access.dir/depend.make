# Empty dependencies file for early_access.
# This may be replaced when dependencies are built.
