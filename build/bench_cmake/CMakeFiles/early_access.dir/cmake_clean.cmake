file(REMOVE_RECURSE
  "../bench/early_access"
  "../bench/early_access.pdb"
  "CMakeFiles/early_access.dir/early_access.cpp.o"
  "CMakeFiles/early_access.dir/early_access.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
