file(REMOVE_RECURSE
  "../bench/exasky_fom"
  "../bench/exasky_fom.pdb"
  "CMakeFiles/exasky_fom.dir/exasky_fom.cpp.o"
  "CMakeFiles/exasky_fom.dir/exasky_fom.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exasky_fom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
