# Empty dependencies file for exasky_fom.
# This may be replaced when dependencies are built.
