file(REMOVE_RECURSE
  "../bench/lammps_reaxff"
  "../bench/lammps_reaxff.pdb"
  "CMakeFiles/lammps_reaxff.dir/lammps_reaxff.cpp.o"
  "CMakeFiles/lammps_reaxff.dir/lammps_reaxff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lammps_reaxff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
