# Empty dependencies file for lammps_reaxff.
# This may be replaced when dependencies are built.
