# Empty dependencies file for exaready-hipify.
# This may be replaced when dependencies are built.
