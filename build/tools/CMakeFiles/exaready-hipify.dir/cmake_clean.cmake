file(REMOVE_RECURSE
  "CMakeFiles/exaready-hipify.dir/hipify_tool.cpp.o"
  "CMakeFiles/exaready-hipify.dir/hipify_tool.cpp.o.d"
  "exaready-hipify"
  "exaready-hipify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaready-hipify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
