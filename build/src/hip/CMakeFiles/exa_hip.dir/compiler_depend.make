# Empty compiler generated dependencies file for exa_hip.
# This may be replaced when dependencies are built.
