file(REMOVE_RECURSE
  "CMakeFiles/exa_hip.dir/hip_runtime.cpp.o"
  "CMakeFiles/exa_hip.dir/hip_runtime.cpp.o.d"
  "CMakeFiles/exa_hip.dir/hipify.cpp.o"
  "CMakeFiles/exa_hip.dir/hipify.cpp.o.d"
  "libexa_hip.a"
  "libexa_hip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
