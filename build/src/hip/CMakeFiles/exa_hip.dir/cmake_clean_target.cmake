file(REMOVE_RECURSE
  "libexa_hip.a"
)
