file(REMOVE_RECURSE
  "libexa_app_pele.a"
)
