file(REMOVE_RECURSE
  "CMakeFiles/exa_app_pele.dir/amr.cpp.o"
  "CMakeFiles/exa_app_pele.dir/amr.cpp.o.d"
  "CMakeFiles/exa_app_pele.dir/chemistry.cpp.o"
  "CMakeFiles/exa_app_pele.dir/chemistry.cpp.o.d"
  "CMakeFiles/exa_app_pele.dir/driver.cpp.o"
  "CMakeFiles/exa_app_pele.dir/driver.cpp.o.d"
  "libexa_app_pele.a"
  "libexa_app_pele.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_app_pele.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
