# Empty dependencies file for exa_app_pele.
# This may be replaced when dependencies are built.
