file(REMOVE_RECURSE
  "CMakeFiles/exa_app_lammps.dir/qeq.cpp.o"
  "CMakeFiles/exa_app_lammps.dir/qeq.cpp.o.d"
  "CMakeFiles/exa_app_lammps.dir/reaxff.cpp.o"
  "CMakeFiles/exa_app_lammps.dir/reaxff.cpp.o.d"
  "CMakeFiles/exa_app_lammps.dir/system.cpp.o"
  "CMakeFiles/exa_app_lammps.dir/system.cpp.o.d"
  "libexa_app_lammps.a"
  "libexa_app_lammps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_app_lammps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
