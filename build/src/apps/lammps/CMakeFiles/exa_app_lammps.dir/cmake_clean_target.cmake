file(REMOVE_RECURSE
  "libexa_app_lammps.a"
)
