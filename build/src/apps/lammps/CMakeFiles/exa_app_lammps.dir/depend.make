# Empty dependencies file for exa_app_lammps.
# This may be replaced when dependencies are built.
