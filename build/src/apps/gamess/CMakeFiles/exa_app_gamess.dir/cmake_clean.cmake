file(REMOVE_RECURSE
  "CMakeFiles/exa_app_gamess.dir/fmo.cpp.o"
  "CMakeFiles/exa_app_gamess.dir/fmo.cpp.o.d"
  "CMakeFiles/exa_app_gamess.dir/rimp2.cpp.o"
  "CMakeFiles/exa_app_gamess.dir/rimp2.cpp.o.d"
  "libexa_app_gamess.a"
  "libexa_app_gamess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_app_gamess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
