file(REMOVE_RECURSE
  "libexa_app_gamess.a"
)
