# Empty compiler generated dependencies file for exa_app_gamess.
# This may be replaced when dependencies are built.
