# Empty compiler generated dependencies file for exa_app_shoc.
# This may be replaced when dependencies are built.
