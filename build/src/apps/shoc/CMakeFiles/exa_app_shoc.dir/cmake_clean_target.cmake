file(REMOVE_RECURSE
  "libexa_app_shoc.a"
)
