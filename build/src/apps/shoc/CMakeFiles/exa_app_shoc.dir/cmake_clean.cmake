file(REMOVE_RECURSE
  "CMakeFiles/exa_app_shoc.dir/kernels.cpp.o"
  "CMakeFiles/exa_app_shoc.dir/kernels.cpp.o.d"
  "CMakeFiles/exa_app_shoc.dir/shoc.cpp.o"
  "CMakeFiles/exa_app_shoc.dir/shoc.cpp.o.d"
  "libexa_app_shoc.a"
  "libexa_app_shoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_app_shoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
