file(REMOVE_RECURSE
  "libexa_app_e3sm.a"
)
