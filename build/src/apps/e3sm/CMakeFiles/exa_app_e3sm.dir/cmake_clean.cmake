file(REMOVE_RECURSE
  "CMakeFiles/exa_app_e3sm.dir/crm.cpp.o"
  "CMakeFiles/exa_app_e3sm.dir/crm.cpp.o.d"
  "CMakeFiles/exa_app_e3sm.dir/dycore.cpp.o"
  "CMakeFiles/exa_app_e3sm.dir/dycore.cpp.o.d"
  "libexa_app_e3sm.a"
  "libexa_app_e3sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_app_e3sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
