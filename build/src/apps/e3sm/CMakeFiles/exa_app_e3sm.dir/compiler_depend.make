# Empty compiler generated dependencies file for exa_app_e3sm.
# This may be replaced when dependencies are built.
