file(REMOVE_RECURSE
  "CMakeFiles/exa_app_gests.dir/psdns.cpp.o"
  "CMakeFiles/exa_app_gests.dir/psdns.cpp.o.d"
  "libexa_app_gests.a"
  "libexa_app_gests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_app_gests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
