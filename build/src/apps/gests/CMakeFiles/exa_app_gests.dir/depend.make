# Empty dependencies file for exa_app_gests.
# This may be replaced when dependencies are built.
