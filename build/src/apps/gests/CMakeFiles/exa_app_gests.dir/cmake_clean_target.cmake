file(REMOVE_RECURSE
  "libexa_app_gests.a"
)
