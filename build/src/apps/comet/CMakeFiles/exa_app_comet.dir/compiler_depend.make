# Empty compiler generated dependencies file for exa_app_comet.
# This may be replaced when dependencies are built.
