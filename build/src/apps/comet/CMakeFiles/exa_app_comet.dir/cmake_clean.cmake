file(REMOVE_RECURSE
  "CMakeFiles/exa_app_comet.dir/ccc.cpp.o"
  "CMakeFiles/exa_app_comet.dir/ccc.cpp.o.d"
  "libexa_app_comet.a"
  "libexa_app_comet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_app_comet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
