file(REMOVE_RECURSE
  "libexa_app_comet.a"
)
