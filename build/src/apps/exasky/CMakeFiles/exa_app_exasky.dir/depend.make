# Empty dependencies file for exa_app_exasky.
# This may be replaced when dependencies are built.
