file(REMOVE_RECURSE
  "CMakeFiles/exa_app_exasky.dir/hacc.cpp.o"
  "CMakeFiles/exa_app_exasky.dir/hacc.cpp.o.d"
  "libexa_app_exasky.a"
  "libexa_app_exasky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_app_exasky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
