file(REMOVE_RECURSE
  "libexa_app_exasky.a"
)
