file(REMOVE_RECURSE
  "libexa_app_lsms.a"
)
