file(REMOVE_RECURSE
  "CMakeFiles/exa_app_lsms.dir/kkr.cpp.o"
  "CMakeFiles/exa_app_lsms.dir/kkr.cpp.o.d"
  "libexa_app_lsms.a"
  "libexa_app_lsms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_app_lsms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
