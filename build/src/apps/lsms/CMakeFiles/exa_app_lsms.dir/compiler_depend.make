# Empty compiler generated dependencies file for exa_app_lsms.
# This may be replaced when dependencies are built.
