file(REMOVE_RECURSE
  "libexa_app_coast.a"
)
