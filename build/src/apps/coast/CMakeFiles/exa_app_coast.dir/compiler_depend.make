# Empty compiler generated dependencies file for exa_app_coast.
# This may be replaced when dependencies are built.
