file(REMOVE_RECURSE
  "CMakeFiles/exa_app_coast.dir/apsp.cpp.o"
  "CMakeFiles/exa_app_coast.dir/apsp.cpp.o.d"
  "libexa_app_coast.a"
  "libexa_app_coast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_app_coast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
