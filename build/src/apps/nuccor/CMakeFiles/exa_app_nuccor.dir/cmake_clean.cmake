file(REMOVE_RECURSE
  "CMakeFiles/exa_app_nuccor.dir/backend.cpp.o"
  "CMakeFiles/exa_app_nuccor.dir/backend.cpp.o.d"
  "CMakeFiles/exa_app_nuccor.dir/ccd.cpp.o"
  "CMakeFiles/exa_app_nuccor.dir/ccd.cpp.o.d"
  "libexa_app_nuccor.a"
  "libexa_app_nuccor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_app_nuccor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
