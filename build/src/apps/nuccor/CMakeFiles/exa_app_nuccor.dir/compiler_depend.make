# Empty compiler generated dependencies file for exa_app_nuccor.
# This may be replaced when dependencies are built.
