file(REMOVE_RECURSE
  "libexa_app_nuccor.a"
)
