# Empty compiler generated dependencies file for exa_sim.
# This may be replaced when dependencies are built.
