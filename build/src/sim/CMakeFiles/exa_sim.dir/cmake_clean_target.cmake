file(REMOVE_RECURSE
  "libexa_sim.a"
)
