file(REMOVE_RECURSE
  "CMakeFiles/exa_sim.dir/device_sim.cpp.o"
  "CMakeFiles/exa_sim.dir/device_sim.cpp.o.d"
  "CMakeFiles/exa_sim.dir/exec_model.cpp.o"
  "CMakeFiles/exa_sim.dir/exec_model.cpp.o.d"
  "CMakeFiles/exa_sim.dir/kernel_profile.cpp.o"
  "CMakeFiles/exa_sim.dir/kernel_profile.cpp.o.d"
  "CMakeFiles/exa_sim.dir/node_sim.cpp.o"
  "CMakeFiles/exa_sim.dir/node_sim.cpp.o.d"
  "CMakeFiles/exa_sim.dir/occupancy.cpp.o"
  "CMakeFiles/exa_sim.dir/occupancy.cpp.o.d"
  "CMakeFiles/exa_sim.dir/pool_allocator.cpp.o"
  "CMakeFiles/exa_sim.dir/pool_allocator.cpp.o.d"
  "libexa_sim.a"
  "libexa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
