
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device_sim.cpp" "src/sim/CMakeFiles/exa_sim.dir/device_sim.cpp.o" "gcc" "src/sim/CMakeFiles/exa_sim.dir/device_sim.cpp.o.d"
  "/root/repo/src/sim/exec_model.cpp" "src/sim/CMakeFiles/exa_sim.dir/exec_model.cpp.o" "gcc" "src/sim/CMakeFiles/exa_sim.dir/exec_model.cpp.o.d"
  "/root/repo/src/sim/kernel_profile.cpp" "src/sim/CMakeFiles/exa_sim.dir/kernel_profile.cpp.o" "gcc" "src/sim/CMakeFiles/exa_sim.dir/kernel_profile.cpp.o.d"
  "/root/repo/src/sim/node_sim.cpp" "src/sim/CMakeFiles/exa_sim.dir/node_sim.cpp.o" "gcc" "src/sim/CMakeFiles/exa_sim.dir/node_sim.cpp.o.d"
  "/root/repo/src/sim/occupancy.cpp" "src/sim/CMakeFiles/exa_sim.dir/occupancy.cpp.o" "gcc" "src/sim/CMakeFiles/exa_sim.dir/occupancy.cpp.o.d"
  "/root/repo/src/sim/pool_allocator.cpp" "src/sim/CMakeFiles/exa_sim.dir/pool_allocator.cpp.o" "gcc" "src/sim/CMakeFiles/exa_sim.dir/pool_allocator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/exa_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/exa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
