file(REMOVE_RECURSE
  "libexa_coe.a"
)
