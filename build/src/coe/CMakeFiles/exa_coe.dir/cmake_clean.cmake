file(REMOVE_RECURSE
  "CMakeFiles/exa_coe.dir/application.cpp.o"
  "CMakeFiles/exa_coe.dir/application.cpp.o.d"
  "CMakeFiles/exa_coe.dir/lessons.cpp.o"
  "CMakeFiles/exa_coe.dir/lessons.cpp.o.d"
  "CMakeFiles/exa_coe.dir/motif.cpp.o"
  "CMakeFiles/exa_coe.dir/motif.cpp.o.d"
  "CMakeFiles/exa_coe.dir/readiness.cpp.o"
  "CMakeFiles/exa_coe.dir/readiness.cpp.o.d"
  "CMakeFiles/exa_coe.dir/registry.cpp.o"
  "CMakeFiles/exa_coe.dir/registry.cpp.o.d"
  "libexa_coe.a"
  "libexa_coe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_coe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
