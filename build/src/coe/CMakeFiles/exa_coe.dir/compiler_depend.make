# Empty compiler generated dependencies file for exa_coe.
# This may be replaced when dependencies are built.
