
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coe/application.cpp" "src/coe/CMakeFiles/exa_coe.dir/application.cpp.o" "gcc" "src/coe/CMakeFiles/exa_coe.dir/application.cpp.o.d"
  "/root/repo/src/coe/lessons.cpp" "src/coe/CMakeFiles/exa_coe.dir/lessons.cpp.o" "gcc" "src/coe/CMakeFiles/exa_coe.dir/lessons.cpp.o.d"
  "/root/repo/src/coe/motif.cpp" "src/coe/CMakeFiles/exa_coe.dir/motif.cpp.o" "gcc" "src/coe/CMakeFiles/exa_coe.dir/motif.cpp.o.d"
  "/root/repo/src/coe/readiness.cpp" "src/coe/CMakeFiles/exa_coe.dir/readiness.cpp.o" "gcc" "src/coe/CMakeFiles/exa_coe.dir/readiness.cpp.o.d"
  "/root/repo/src/coe/registry.cpp" "src/coe/CMakeFiles/exa_coe.dir/registry.cpp.o" "gcc" "src/coe/CMakeFiles/exa_coe.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/exa_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/exa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
