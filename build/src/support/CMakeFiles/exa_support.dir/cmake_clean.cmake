file(REMOVE_RECURSE
  "CMakeFiles/exa_support.dir/csv.cpp.o"
  "CMakeFiles/exa_support.dir/csv.cpp.o.d"
  "CMakeFiles/exa_support.dir/log.cpp.o"
  "CMakeFiles/exa_support.dir/log.cpp.o.d"
  "CMakeFiles/exa_support.dir/stats.cpp.o"
  "CMakeFiles/exa_support.dir/stats.cpp.o.d"
  "CMakeFiles/exa_support.dir/string_util.cpp.o"
  "CMakeFiles/exa_support.dir/string_util.cpp.o.d"
  "CMakeFiles/exa_support.dir/table.cpp.o"
  "CMakeFiles/exa_support.dir/table.cpp.o.d"
  "CMakeFiles/exa_support.dir/thread_pool.cpp.o"
  "CMakeFiles/exa_support.dir/thread_pool.cpp.o.d"
  "CMakeFiles/exa_support.dir/units.cpp.o"
  "CMakeFiles/exa_support.dir/units.cpp.o.d"
  "libexa_support.a"
  "libexa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
