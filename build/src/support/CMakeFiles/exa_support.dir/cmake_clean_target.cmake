file(REMOVE_RECURSE
  "libexa_support.a"
)
