file(REMOVE_RECURSE
  "libexa_net.a"
)
