file(REMOVE_RECURSE
  "CMakeFiles/exa_net.dir/comm_model.cpp.o"
  "CMakeFiles/exa_net.dir/comm_model.cpp.o.d"
  "CMakeFiles/exa_net.dir/scaling.cpp.o"
  "CMakeFiles/exa_net.dir/scaling.cpp.o.d"
  "libexa_net.a"
  "libexa_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
