# Empty dependencies file for exa_net.
# This may be replaced when dependencies are built.
