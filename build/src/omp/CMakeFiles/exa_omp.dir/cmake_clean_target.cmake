file(REMOVE_RECURSE
  "libexa_omp.a"
)
