file(REMOVE_RECURSE
  "CMakeFiles/exa_omp.dir/offload.cpp.o"
  "CMakeFiles/exa_omp.dir/offload.cpp.o.d"
  "libexa_omp.a"
  "libexa_omp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_omp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
