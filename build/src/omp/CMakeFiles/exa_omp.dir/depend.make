# Empty dependencies file for exa_omp.
# This may be replaced when dependencies are built.
