file(REMOVE_RECURSE
  "CMakeFiles/exa_pfw.dir/parallel.cpp.o"
  "CMakeFiles/exa_pfw.dir/parallel.cpp.o.d"
  "libexa_pfw.a"
  "libexa_pfw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_pfw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
