# Empty compiler generated dependencies file for exa_pfw.
# This may be replaced when dependencies are built.
