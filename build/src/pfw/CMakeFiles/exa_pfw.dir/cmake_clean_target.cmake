file(REMOVE_RECURSE
  "libexa_pfw.a"
)
