# Empty dependencies file for exa_mathlib.
# This may be replaced when dependencies are built.
