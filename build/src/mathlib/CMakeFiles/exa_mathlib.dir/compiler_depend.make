# Empty compiler generated dependencies file for exa_mathlib.
# This may be replaced when dependencies are built.
