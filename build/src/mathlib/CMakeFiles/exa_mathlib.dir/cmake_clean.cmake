file(REMOVE_RECURSE
  "CMakeFiles/exa_mathlib.dir/dense.cpp.o"
  "CMakeFiles/exa_mathlib.dir/dense.cpp.o.d"
  "CMakeFiles/exa_mathlib.dir/device_blas.cpp.o"
  "CMakeFiles/exa_mathlib.dir/device_blas.cpp.o.d"
  "CMakeFiles/exa_mathlib.dir/eigen.cpp.o"
  "CMakeFiles/exa_mathlib.dir/eigen.cpp.o.d"
  "CMakeFiles/exa_mathlib.dir/fft.cpp.o"
  "CMakeFiles/exa_mathlib.dir/fft.cpp.o.d"
  "CMakeFiles/exa_mathlib.dir/lu.cpp.o"
  "CMakeFiles/exa_mathlib.dir/lu.cpp.o.d"
  "libexa_mathlib.a"
  "libexa_mathlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_mathlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
