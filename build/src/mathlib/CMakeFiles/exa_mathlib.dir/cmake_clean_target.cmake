file(REMOVE_RECURSE
  "libexa_mathlib.a"
)
