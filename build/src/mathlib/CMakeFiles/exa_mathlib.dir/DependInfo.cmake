
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mathlib/dense.cpp" "src/mathlib/CMakeFiles/exa_mathlib.dir/dense.cpp.o" "gcc" "src/mathlib/CMakeFiles/exa_mathlib.dir/dense.cpp.o.d"
  "/root/repo/src/mathlib/device_blas.cpp" "src/mathlib/CMakeFiles/exa_mathlib.dir/device_blas.cpp.o" "gcc" "src/mathlib/CMakeFiles/exa_mathlib.dir/device_blas.cpp.o.d"
  "/root/repo/src/mathlib/eigen.cpp" "src/mathlib/CMakeFiles/exa_mathlib.dir/eigen.cpp.o" "gcc" "src/mathlib/CMakeFiles/exa_mathlib.dir/eigen.cpp.o.d"
  "/root/repo/src/mathlib/fft.cpp" "src/mathlib/CMakeFiles/exa_mathlib.dir/fft.cpp.o" "gcc" "src/mathlib/CMakeFiles/exa_mathlib.dir/fft.cpp.o.d"
  "/root/repo/src/mathlib/lu.cpp" "src/mathlib/CMakeFiles/exa_mathlib.dir/lu.cpp.o" "gcc" "src/mathlib/CMakeFiles/exa_mathlib.dir/lu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hip/CMakeFiles/exa_hip.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/exa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/exa_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/exa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
