# Empty dependencies file for exa_arch.
# This may be replaced when dependencies are built.
