file(REMOVE_RECURSE
  "CMakeFiles/exa_arch.dir/cpu_arch.cpp.o"
  "CMakeFiles/exa_arch.dir/cpu_arch.cpp.o.d"
  "CMakeFiles/exa_arch.dir/dtype.cpp.o"
  "CMakeFiles/exa_arch.dir/dtype.cpp.o.d"
  "CMakeFiles/exa_arch.dir/gpu_arch.cpp.o"
  "CMakeFiles/exa_arch.dir/gpu_arch.cpp.o.d"
  "CMakeFiles/exa_arch.dir/machine.cpp.o"
  "CMakeFiles/exa_arch.dir/machine.cpp.o.d"
  "libexa_arch.a"
  "libexa_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exa_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
