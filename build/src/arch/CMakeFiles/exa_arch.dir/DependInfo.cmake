
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cpu_arch.cpp" "src/arch/CMakeFiles/exa_arch.dir/cpu_arch.cpp.o" "gcc" "src/arch/CMakeFiles/exa_arch.dir/cpu_arch.cpp.o.d"
  "/root/repo/src/arch/dtype.cpp" "src/arch/CMakeFiles/exa_arch.dir/dtype.cpp.o" "gcc" "src/arch/CMakeFiles/exa_arch.dir/dtype.cpp.o.d"
  "/root/repo/src/arch/gpu_arch.cpp" "src/arch/CMakeFiles/exa_arch.dir/gpu_arch.cpp.o" "gcc" "src/arch/CMakeFiles/exa_arch.dir/gpu_arch.cpp.o.d"
  "/root/repo/src/arch/machine.cpp" "src/arch/CMakeFiles/exa_arch.dir/machine.cpp.o" "gcc" "src/arch/CMakeFiles/exa_arch.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/exa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
