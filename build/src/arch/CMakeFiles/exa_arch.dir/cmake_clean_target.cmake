file(REMOVE_RECURSE
  "libexa_arch.a"
)
