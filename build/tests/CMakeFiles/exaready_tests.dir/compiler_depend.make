# Empty compiler generated dependencies file for exaready_tests.
# This may be replaced when dependencies are built.
