
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/test_coast.cpp" "tests/CMakeFiles/exaready_tests.dir/apps/test_coast.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/apps/test_coast.cpp.o.d"
  "/root/repo/tests/apps/test_comet.cpp" "tests/CMakeFiles/exaready_tests.dir/apps/test_comet.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/apps/test_comet.cpp.o.d"
  "/root/repo/tests/apps/test_e3sm.cpp" "tests/CMakeFiles/exaready_tests.dir/apps/test_e3sm.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/apps/test_e3sm.cpp.o.d"
  "/root/repo/tests/apps/test_exasky.cpp" "tests/CMakeFiles/exaready_tests.dir/apps/test_exasky.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/apps/test_exasky.cpp.o.d"
  "/root/repo/tests/apps/test_gamess.cpp" "tests/CMakeFiles/exaready_tests.dir/apps/test_gamess.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/apps/test_gamess.cpp.o.d"
  "/root/repo/tests/apps/test_gests.cpp" "tests/CMakeFiles/exaready_tests.dir/apps/test_gests.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/apps/test_gests.cpp.o.d"
  "/root/repo/tests/apps/test_lammps.cpp" "tests/CMakeFiles/exaready_tests.dir/apps/test_lammps.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/apps/test_lammps.cpp.o.d"
  "/root/repo/tests/apps/test_lsms.cpp" "tests/CMakeFiles/exaready_tests.dir/apps/test_lsms.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/apps/test_lsms.cpp.o.d"
  "/root/repo/tests/apps/test_nuccor.cpp" "tests/CMakeFiles/exaready_tests.dir/apps/test_nuccor.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/apps/test_nuccor.cpp.o.d"
  "/root/repo/tests/apps/test_pele.cpp" "tests/CMakeFiles/exaready_tests.dir/apps/test_pele.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/apps/test_pele.cpp.o.d"
  "/root/repo/tests/apps/test_shoc.cpp" "tests/CMakeFiles/exaready_tests.dir/apps/test_shoc.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/apps/test_shoc.cpp.o.d"
  "/root/repo/tests/arch/test_arch.cpp" "tests/CMakeFiles/exaready_tests.dir/arch/test_arch.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/arch/test_arch.cpp.o.d"
  "/root/repo/tests/coe/test_coe.cpp" "tests/CMakeFiles/exaready_tests.dir/coe/test_coe.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/coe/test_coe.cpp.o.d"
  "/root/repo/tests/coe/test_lessons.cpp" "tests/CMakeFiles/exaready_tests.dir/coe/test_lessons.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/coe/test_lessons.cpp.o.d"
  "/root/repo/tests/hip/test_hip_failure_modes.cpp" "tests/CMakeFiles/exaready_tests.dir/hip/test_hip_failure_modes.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/hip/test_hip_failure_modes.cpp.o.d"
  "/root/repo/tests/hip/test_hip_runtime.cpp" "tests/CMakeFiles/exaready_tests.dir/hip/test_hip_runtime.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/hip/test_hip_runtime.cpp.o.d"
  "/root/repo/tests/hip/test_hipify.cpp" "tests/CMakeFiles/exaready_tests.dir/hip/test_hipify.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/hip/test_hipify.cpp.o.d"
  "/root/repo/tests/integration/test_integration.cpp" "tests/CMakeFiles/exaready_tests.dir/integration/test_integration.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/integration/test_integration.cpp.o.d"
  "/root/repo/tests/mathlib/test_dense.cpp" "tests/CMakeFiles/exaready_tests.dir/mathlib/test_dense.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/mathlib/test_dense.cpp.o.d"
  "/root/repo/tests/mathlib/test_device_blas.cpp" "tests/CMakeFiles/exaready_tests.dir/mathlib/test_device_blas.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/mathlib/test_device_blas.cpp.o.d"
  "/root/repo/tests/mathlib/test_eigen.cpp" "tests/CMakeFiles/exaready_tests.dir/mathlib/test_eigen.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/mathlib/test_eigen.cpp.o.d"
  "/root/repo/tests/mathlib/test_fft.cpp" "tests/CMakeFiles/exaready_tests.dir/mathlib/test_fft.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/mathlib/test_fft.cpp.o.d"
  "/root/repo/tests/mathlib/test_lu.cpp" "tests/CMakeFiles/exaready_tests.dir/mathlib/test_lu.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/mathlib/test_lu.cpp.o.d"
  "/root/repo/tests/net/test_comm_model.cpp" "tests/CMakeFiles/exaready_tests.dir/net/test_comm_model.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/net/test_comm_model.cpp.o.d"
  "/root/repo/tests/omp/test_offload.cpp" "tests/CMakeFiles/exaready_tests.dir/omp/test_offload.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/omp/test_offload.cpp.o.d"
  "/root/repo/tests/pfw/test_pfw.cpp" "tests/CMakeFiles/exaready_tests.dir/pfw/test_pfw.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/pfw/test_pfw.cpp.o.d"
  "/root/repo/tests/sim/test_device_sim.cpp" "tests/CMakeFiles/exaready_tests.dir/sim/test_device_sim.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/sim/test_device_sim.cpp.o.d"
  "/root/repo/tests/sim/test_exec_model.cpp" "tests/CMakeFiles/exaready_tests.dir/sim/test_exec_model.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/sim/test_exec_model.cpp.o.d"
  "/root/repo/tests/sim/test_exec_properties.cpp" "tests/CMakeFiles/exaready_tests.dir/sim/test_exec_properties.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/sim/test_exec_properties.cpp.o.d"
  "/root/repo/tests/sim/test_node_sim.cpp" "tests/CMakeFiles/exaready_tests.dir/sim/test_node_sim.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/sim/test_node_sim.cpp.o.d"
  "/root/repo/tests/sim/test_occupancy.cpp" "tests/CMakeFiles/exaready_tests.dir/sim/test_occupancy.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/sim/test_occupancy.cpp.o.d"
  "/root/repo/tests/sim/test_pool_allocator.cpp" "tests/CMakeFiles/exaready_tests.dir/sim/test_pool_allocator.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/sim/test_pool_allocator.cpp.o.d"
  "/root/repo/tests/support/test_csv.cpp" "tests/CMakeFiles/exaready_tests.dir/support/test_csv.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/support/test_csv.cpp.o.d"
  "/root/repo/tests/support/test_rng.cpp" "tests/CMakeFiles/exaready_tests.dir/support/test_rng.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/support/test_rng.cpp.o.d"
  "/root/repo/tests/support/test_stats.cpp" "tests/CMakeFiles/exaready_tests.dir/support/test_stats.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/support/test_stats.cpp.o.d"
  "/root/repo/tests/support/test_string_util.cpp" "tests/CMakeFiles/exaready_tests.dir/support/test_string_util.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/support/test_string_util.cpp.o.d"
  "/root/repo/tests/support/test_table.cpp" "tests/CMakeFiles/exaready_tests.dir/support/test_table.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/support/test_table.cpp.o.d"
  "/root/repo/tests/support/test_thread_pool.cpp" "tests/CMakeFiles/exaready_tests.dir/support/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/support/test_thread_pool.cpp.o.d"
  "/root/repo/tests/support/test_units.cpp" "tests/CMakeFiles/exaready_tests.dir/support/test_units.cpp.o" "gcc" "tests/CMakeFiles/exaready_tests.dir/support/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/exa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/exa_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/exa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hip/CMakeFiles/exa_hip.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/exa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mathlib/CMakeFiles/exa_mathlib.dir/DependInfo.cmake"
  "/root/repo/build/src/coe/CMakeFiles/exa_coe.dir/DependInfo.cmake"
  "/root/repo/build/src/pfw/CMakeFiles/exa_pfw.dir/DependInfo.cmake"
  "/root/repo/build/src/omp/CMakeFiles/exa_omp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/shoc/CMakeFiles/exa_app_shoc.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/coast/CMakeFiles/exa_app_coast.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/lammps/CMakeFiles/exa_app_lammps.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/gests/CMakeFiles/exa_app_gests.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/pele/CMakeFiles/exa_app_pele.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/lsms/CMakeFiles/exa_app_lsms.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/comet/CMakeFiles/exa_app_comet.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/exasky/CMakeFiles/exa_app_exasky.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/e3sm/CMakeFiles/exa_app_e3sm.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/gamess/CMakeFiles/exa_app_gamess.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/nuccor/CMakeFiles/exa_app_nuccor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
