file(REMOVE_RECURSE
  "CMakeFiles/turbulence_dns.dir/turbulence_dns.cpp.o"
  "CMakeFiles/turbulence_dns.dir/turbulence_dns.cpp.o.d"
  "turbulence_dns"
  "turbulence_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbulence_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
