# Empty dependencies file for turbulence_dns.
# This may be replaced when dependencies are built.
