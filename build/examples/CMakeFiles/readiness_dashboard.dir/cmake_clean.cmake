file(REMOVE_RECURSE
  "CMakeFiles/readiness_dashboard.dir/readiness_dashboard.cpp.o"
  "CMakeFiles/readiness_dashboard.dir/readiness_dashboard.cpp.o.d"
  "readiness_dashboard"
  "readiness_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readiness_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
