# Empty dependencies file for readiness_dashboard.
# This may be replaced when dependencies are built.
