file(REMOVE_RECURSE
  "CMakeFiles/port_a_cuda_app.dir/port_a_cuda_app.cpp.o"
  "CMakeFiles/port_a_cuda_app.dir/port_a_cuda_app.cpp.o.d"
  "port_a_cuda_app"
  "port_a_cuda_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_a_cuda_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
