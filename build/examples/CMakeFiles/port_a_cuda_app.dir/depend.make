# Empty dependencies file for port_a_cuda_app.
# This may be replaced when dependencies are built.
