# Empty compiler generated dependencies file for combustion_chemistry.
# This may be replaced when dependencies are built.
