file(REMOVE_RECURSE
  "CMakeFiles/combustion_chemistry.dir/combustion_chemistry.cpp.o"
  "CMakeFiles/combustion_chemistry.dir/combustion_chemistry.cpp.o.d"
  "combustion_chemistry"
  "combustion_chemistry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combustion_chemistry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
