/// exaready-campaign — run declarative scenario campaigns end to end.
///
///     exaready-campaign [--validate] [--workers=N] [--jsonl=<path>]
///                       <campaign.json> [more.json ...]
///
/// For each campaign file: parse + schema-validate the JSON, expand the
/// sweep grid, and (unless --validate stops after expansion) submit every
/// grid point through svc::Server, print the dedupe/conservation ledger,
/// write the campaign's Extra-P JSONL (default <name>.extrap.jsonl), and
/// print the fitted scaling model per (app, machine). Exit 0 on success,
/// 1 on any parse/validation/run failure, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "support/assert.hpp"
#include "svc/scenario.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--validate] [--workers=N] [--jsonl=<path>] "
               "<campaign.json>...\n"
               "  --validate     parse, expand, and validate only (no runs)\n"
               "  --workers=N    server worker threads (default: EXA_THREADS)\n"
               "  --jsonl=<path> Extra-P JSONL output (default: "
               "<name>.extrap.jsonl)\n",
               argv0);
}

int validate_campaign(const exa::campaign::CampaignSpec& spec) {
  const auto grid = exa::campaign::expand_grid(spec);
  for (const exa::svc::Scenario& scenario : grid) {
    exa::svc::validate(scenario);
  }
  std::printf("campaign %s: OK (%zu grid points, %zu machines x %zu apps)\n",
              spec.name.c_str(), grid.size(), spec.machines.size(),
              spec.apps.size());
  return 0;
}

int run_campaign(const exa::campaign::CampaignSpec& spec,
                 exa::campaign::RunnerConfig config) {
  if (config.jsonl_path.empty()) {
    config.jsonl_path = spec.name + ".extrap.jsonl";
  }
  exa::campaign::CampaignRunner runner(config);
  const exa::campaign::CampaignResult result = runner.run(spec);

  std::printf("campaign %s\n", spec.name.c_str());
  if (!spec.description.empty()) {
    std::printf("  %s\n", spec.description.c_str());
  }
  std::printf("  grid points   %zu\n", result.grid_size);
  std::printf("  submitted     %llu\n",
              static_cast<unsigned long long>(result.submitted));
  std::printf("  completed     %llu\n",
              static_cast<unsigned long long>(result.completed));
  std::printf("  dedupe hits   %llu\n",
              static_cast<unsigned long long>(result.dedupe_hits));
  std::printf("  executed      %llu distinct scenarios\n",
              static_cast<unsigned long long>(result.executed));
  std::printf("  sim time      %.6g s summed over the grid\n",
              result.total_sim_time_s);
  std::printf("  extrap jsonl  %s\n", result.jsonl_path.c_str());
  std::printf("  fitted models (t(p), p = nodes):\n");
  if (result.fits.empty()) {
    std::printf("    (none — a fit needs >= 2 distinct node counts)\n");
  }
  for (const auto& [callpath, fit] : result.fits) {
    std::printf("    %-32s %s  (R^2 %.4f, %zu points)\n", callpath.c_str(),
                fit.to_string().c_str(), fit.r2, fit.points);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool validate_only = false;
  exa::campaign::RunnerConfig config;
  std::string jsonl_flag;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate_only = true;
    } else if (arg.rfind("--workers=", 0) == 0) {
      config.workers = std::strtoul(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--jsonl=", 0) == 0) {
      jsonl_flag = arg.substr(8);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    usage(argv[0]);
    return 2;
  }

  int status = 0;
  for (const std::string& file : files) {
    try {
      const exa::campaign::CampaignSpec spec =
          exa::campaign::load_campaign(file);
      config.jsonl_path = jsonl_flag;
      status |= validate_only ? validate_campaign(spec)
                              : run_campaign(spec, config);
    } catch (const std::exception& err) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(), err.what());
      status = 1;
    }
  }
  return status;
}
