// doc-links: markdown reference checker for the repo's documentation.
//
// Usage: doc-links <repo-root> <markdown-file>...
//
// Verifies that documentation does not reference files that no longer
// exist, in two passes per document:
//
//  1. Markdown links `[text](target)` — relative targets must resolve to
//     an existing file or directory (anchors and external URLs are
//     skipped).
//  2. Repo-relative path tokens in prose and code spans — any token under
//     src/ tests/ bench/ docs/ tools/ examples/ must exist, and a
//     `build/bench/<name>` invocation must have a matching
//     bench/<name>.cpp source (that is how a renamed or deleted bench
//     binary goes stale in docs).
//
// Exit status: 0 when every reference resolves, 1 otherwise; each dead
// reference prints one `doc-links: <file>:<line>: ...` diagnostic.
// Wired into CTest as the `docs_links` test.

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool is_path_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '/' ||
         c == '.' || c == '_' || c == '-' || c == '{' || c == '}' || c == ',';
}

/// Expands one `{a,b,...}` group; returns the token unchanged when no
/// well-formed group is present (nested groups are not needed by the docs).
std::vector<std::string> expand_braces(const std::string& token) {
  const auto open = token.find('{');
  const auto close = token.find('}', open == std::string::npos ? 0 : open);
  if (open == std::string::npos || close == std::string::npos) {
    return {token};
  }
  std::vector<std::string> out;
  const std::string head = token.substr(0, open);
  const std::string tail = token.substr(close + 1);
  std::stringstream alts(token.substr(open + 1, close - open - 1));
  std::string alt;
  while (std::getline(alts, alt, ',')) out.push_back(head + alt + tail);
  return out;
}

bool has_prefix(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

struct Checker {
  fs::path repo_root;
  int errors = 0;

  void fail(const fs::path& doc, int line, const std::string& what) {
    std::cerr << "doc-links: " << doc.string() << ":" << line << ": " << what
              << "\n";
    ++errors;
  }

  /// Pass 1: `[text](target)` markdown links, resolved against the
  /// document's directory.
  void check_markdown_links(const fs::path& doc, const std::string& text,
                            int line) {
    for (std::size_t pos = text.find("](");
         pos != std::string::npos; pos = text.find("](", pos + 2)) {
      const auto end = text.find(')', pos + 2);
      if (end == std::string::npos) break;
      std::string target = text.substr(pos + 2, end - pos - 2);
      if (target.empty() || target[0] == '#' || has_prefix(target, "http://") ||
          has_prefix(target, "https://") || has_prefix(target, "mailto:")) {
        continue;
      }
      if (const auto anchor = target.find('#'); anchor != std::string::npos) {
        target.resize(anchor);
      }
      const fs::path resolved = doc.parent_path() / target;
      if (!fs::exists(resolved)) {
        fail(doc, line, "broken link target '" + target + "'");
      }
    }
  }

  /// Pass 2: repo-relative path tokens. Only tokens under the known
  /// top-level directories are checked, which keeps prose like
  /// "fabric/rank0" or "ui.perfetto.dev" out of scope.
  void check_path_token(const fs::path& doc, std::string token, int line) {
    while (!token.empty() &&
           (token.back() == '.' || token.back() == ',' || token.back() == '/')) {
      token.pop_back();
    }
    if (has_prefix(token, "./")) token.erase(0, 2);
    if (token.find('/') == std::string::npos) return;

    if (has_prefix(token, "build/")) {
      // Only bench binaries map 1:1 onto sources; other build outputs
      // (tools, examples) have configured names.
      if (!has_prefix(token, "build/bench/")) return;
      const std::string name = token.substr(std::string("build/bench/").size());
      if (name.empty() || name.find('/') != std::string::npos) return;
      if (!fs::exists(repo_root / "bench" / (name + ".cpp"))) {
        fail(doc, line,
             "bench binary '" + token + "' has no source bench/" + name +
                 ".cpp");
      }
      return;
    }

    static const std::string_view kRoots[] = {"src/",  "tests/",    "bench/",
                                              "docs/", "examples/", "tools/"};
    bool rooted = false;
    for (const auto root : kRoots) rooted = rooted || has_prefix(token, root);
    if (!rooted) return;

    for (const auto& candidate : expand_braces(token)) {
      const fs::path p = repo_root / candidate;
      // Extensionless tokens may name a source by stem ("bench/foo" for
      // bench/foo.cpp, "src/net/fabric" for the .hpp/.cpp pair).
      if (!fs::exists(p) && !fs::exists(p.string() + ".cpp") &&
          !fs::exists(p.string() + ".hpp")) {
        fail(doc, line, "stale file reference '" + candidate + "'");
      }
    }
  }

  void check_path_tokens(const fs::path& doc, const std::string& text,
                         int line) {
    std::size_t i = 0;
    while (i < text.size()) {
      if (!is_path_char(text[i])) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < text.size() && is_path_char(text[j])) ++j;
      check_path_token(doc, text.substr(i, j - i), line);
      i = j;
    }
  }

  void check_document(const fs::path& doc) {
    std::ifstream in(doc);
    if (!in) {
      fail(doc, 0, "cannot open document");
      return;
    }
    std::string text;
    int line = 0;
    bool fenced = false;
    while (std::getline(in, text)) {
      ++line;
      if (has_prefix(text, "```")) {
        fenced = !fenced;
        continue;
      }
      // Code blocks hold shell/C++ where `[...](...)` is not a link, but
      // path tokens (golden paths, bench invocations) are still real.
      if (!fenced) check_markdown_links(doc, text, line);
      check_path_tokens(doc, text, line);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: doc-links <repo-root> <markdown-file>...\n";
    return 2;
  }
  Checker checker{fs::path(argv[1])};
  for (int i = 2; i < argc; ++i) {
    checker.check_document(fs::path(argv[i]));
  }
  if (checker.errors > 0) {
    std::cerr << "doc-links: " << checker.errors << " dead reference(s)\n";
    return 1;
  }
  return 0;
}
