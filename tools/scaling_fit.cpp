/// \file scaling_fit.cpp
/// The model-generation half of the Extra-P two-step (SNIPPETS.md): load
/// one or more JSONL profile files (appended across runs/node counts by
/// `--profile-jsonl=`), fit t(p) = a + b * p^c * (log2 p)^d per region,
/// and print the best model with its R².
///
///   scaling_fit [--param p] [--metric time] [--min-r2 X] [--predict P]
///               profiles.jsonl [more.jsonl ...]
///
/// Exit status is nonzero when no region can be fitted or when --min-r2
/// is given and some region's best model falls below it (the CI smoke
/// gate for the capture -> fit pipeline).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/table.hpp"
#include "support/units.hpp"
#include "trace/profile.hpp"
#include "trace/scaling_model.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--param <name>] [--metric <name>] [--min-r2 <x>] "
               "[--predict <p>] <profiles.jsonl> [more.jsonl ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exa;

  std::string param = "p";
  std::string metric = "time";
  double min_r2 = -1.0;
  double predict_p = 0.0;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--param") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      param = v;
    } else if (arg == "--metric") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      metric = v;
    } else if (arg == "--min-r2") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      min_r2 = std::atof(v);
    } else if (arg == "--predict") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      predict_p = std::atof(v);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0]);

  std::vector<trace::ProfileSample> samples;
  for (const std::string& file : files) {
    try {
      auto loaded = trace::load_jsonl(file);
      std::printf("loaded %zu samples from %s\n", loaded.size(), file.c_str());
      samples.insert(samples.end(), loaded.begin(), loaded.end());
    } catch (const std::exception& err) {
      std::fprintf(stderr, "error: %s\n", err.what());
      return 1;
    }
  }

  std::map<std::string, trace::ScalingFit> fits;
  try {
    fits = trace::fit_profiles(samples, param, metric);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
  if (fits.empty()) {
    std::fprintf(stderr,
                 "error: no region has >= 2 distinct '%s' scales for metric "
                 "'%s' (%zu samples loaded)\n",
                 param.c_str(), metric.c_str(), samples.size());
    return 1;
  }

  double p_max = 0.0;
  for (const auto& sample : samples) {
    const auto it = sample.params.find(param);
    if (it != sample.params.end() && it->second > p_max) p_max = it->second;
  }
  const double p_pred = predict_p > 0.0 ? predict_p : 2.0 * p_max;

  support::Table table("Fitted scaling models, t(" + param + ") = a + b * " +
                       param + "^c * log2(" + param + ")^d");
  table.set_header({"Region", "Scales", "Model", "R^2",
                    "t(" + param + "=" + support::format_si(p_pred, 3) + ")"});
  bool below_threshold = false;
  for (const auto& [region, fit] : fits) {
    if (min_r2 >= 0.0 && fit.r2 < min_r2) below_threshold = true;
    char r2_buf[32];
    std::snprintf(r2_buf, sizeof(r2_buf), "%.4f", fit.r2);
    table.add_row({region, std::to_string(fit.points), fit.to_string(), r2_buf,
                   support::format_time(fit.eval(p_pred), 3)});
  }
  table.add_note("models selected over the Extra-P-style exponent grid; "
                 "repetitions at equal scale are averaged");
  std::printf("%s\n", table.render().c_str());

  if (below_threshold) {
    std::fprintf(stderr, "error: a region's best model has R^2 < %g\n",
                 min_r2);
    return 1;
  }
  return 0;
}
