/// \file exa_lint.cpp
/// exa-lint — multi-pass static analysis over the repo's C++ sources.
///
/// Usage:
///   exa-lint [--allow <rule>]... [--only <rule>] [--list-rules] [--quiet]
///            [--format=text|json|sarif] [--output <file>] [--exit-zero]
///            [--baseline <file>] <file-or-directory>...
///   exa-lint --layers <manifest> [common flags] <layer-root>
///   exa-lint --check-sarif <file>
///
/// Directories are walked recursively for C/C++/CUDA sources. Exit code is
/// 1 when any unsuppressed finding remains, 0 otherwise (2 on usage or
/// parse errors) — so CI runs one lint_<dir> test per source directory.
/// With --layers the pass analyzes the #include graph of the (single)
/// root against the layer manifest instead of running the content rules.
/// --check-sarif validates a previously emitted SARIF file against the
/// minimal required shape and is what the lint_sarif_shape ctest runs.
///
/// The deprecated-cuda mapping table is injected here from
/// hip::hipify::api_table() — the lint library itself never includes
/// upward into src/hip (the layering pass enforces exactly that rule).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/lint.hpp"
#include "check/lint2/layering.hpp"
#include "check/lint2/report.hpp"
#include "hip/hipify.hpp"

namespace {

namespace fs = std::filesystem;
namespace lint = exa::check::lint;
using lint::Report;

bool is_source_file(const fs::path& p) {
  static const std::vector<std::string> exts = {".cpp", ".cc",  ".cxx", ".c",
                                                ".hpp", ".hh",  ".hxx", ".h",
                                                ".cu",  ".cuh", ".hip"};
  const std::string ext = p.extension().string();
  return std::find(exts.begin(), exts.end(), ext) != exts.end();
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (!ec && it->is_regular_file(ec) && is_source_file(it->path())) {
        out.push_back(it->path());
      }
    }
  } else if (fs::is_regular_file(root, ec)) {
    out.push_back(root);
  } else {
    std::cerr << "exa-lint: cannot read " << root << "\n";
  }
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int usage() {
  std::cerr
      << "usage: exa-lint [--allow <rule>]... [--only <rule>] [--list-rules]"
         "\n                [--quiet] [--format=text|json|sarif]"
         " [--output <file>]\n                [--exit-zero]"
         " [--baseline <file>] <file-or-directory>...\n"
         "       exa-lint --layers <manifest> [flags] <layer-root>\n"
         "       exa-lint --check-sarif <file>\n"
         "Suppress a single finding in source with: "
         "// exa-lint: allow(<rule>)\n"
         "Machine-wide suppressions (justification required) live in the "
         "--baseline file.\n";
  return 2;
}

void register_cuda_mappings() {
  std::vector<lint::CudaMapping> mappings;
  for (const auto& m : exa::hip::hipify::api_table()) {
    mappings.push_back(lint::CudaMapping{m.cuda, m.hip, m.deprecated});
  }
  lint::set_cuda_mappings(std::move(mappings));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> disabled;
  std::string only_rule;
  std::vector<fs::path> roots;
  std::string format = "text";
  std::string output_path;
  std::string baseline_path;
  std::string layers_path;
  std::string check_sarif_path;
  bool quiet = false;
  bool exit_zero = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::string& into) {
      if (++i >= argc) return false;
      into = argv[i];
      return true;
    };
    if (arg == "--allow") {
      std::string rule;
      if (!value(rule)) return usage();
      disabled.push_back(rule);
    } else if (arg == "--only") {
      if (!value(only_rule)) return usage();
    } else if (arg == "--list-rules") {
      for (const auto& id : lint::rule_ids()) std::cout << id << "\n";
      return 0;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        return usage();
      }
    } else if (arg == "--output") {
      if (!value(output_path)) return usage();
    } else if (arg == "--baseline") {
      if (!value(baseline_path)) return usage();
    } else if (arg == "--layers") {
      if (!value(layers_path)) return usage();
    } else if (arg == "--check-sarif") {
      if (!value(check_sarif_path)) return usage();
    } else if (arg == "--exit-zero") {
      exit_zero = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.emplace_back(arg);
    }
  }

  if (!check_sarif_path.empty()) {
    std::string text;
    if (!read_file(check_sarif_path, text)) {
      std::cerr << "exa-lint: cannot open " << check_sarif_path << "\n";
      return 2;
    }
    std::string why;
    if (!lint::sarif_has_minimal_shape(text, &why)) {
      std::cerr << "exa-lint: " << check_sarif_path
                << ": SARIF shape check failed: " << why << "\n";
      return 1;
    }
    if (!quiet) std::cerr << "exa-lint: SARIF shape OK\n";
    return 0;
  }

  if (roots.empty()) return usage();
  register_cuda_mappings();

  if (!only_rule.empty()) {
    const auto& ids = lint::rule_ids();
    if (std::find(ids.begin(), ids.end(), only_rule) == ids.end()) {
      std::cerr << "exa-lint: unknown rule '" << only_rule << "'\n";
      return 2;
    }
    for (const auto& id : ids) {
      if (id != only_rule) disabled.push_back(id);
    }
  }

  lint::Baseline baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::cerr << "exa-lint: cannot open baseline " << baseline_path << "\n";
      return 2;
    }
    baseline = lint::parse_baseline(text);
    if (!baseline.error.empty()) {
      std::cerr << "exa-lint: " << baseline_path << ": " << baseline.error
                << "\n";
      return 2;
    }
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) collect(root, files);
  std::sort(files.begin(), files.end());

  Report report;
  std::size_t file_count = files.size();
  if (!layers_path.empty()) {
    if (roots.size() != 1) {
      std::cerr << "exa-lint: --layers takes exactly one layer root\n";
      return 2;
    }
    std::string manifest_text;
    if (!read_file(layers_path, manifest_text)) {
      std::cerr << "exa-lint: cannot open manifest " << layers_path << "\n";
      return 2;
    }
    const lint::LayerManifest manifest =
        lint::parse_layer_manifest(manifest_text);
    if (!manifest.error.empty()) {
      std::cerr << "exa-lint: " << layers_path << ": " << manifest.error
                << "\n";
      return 2;
    }
    std::vector<lint::SourceFile> sources;
    sources.reserve(files.size());
    for (const fs::path& file : files) {
      std::string content;
      if (!read_file(file, content)) {
        std::cerr << "exa-lint: cannot open " << file << "\n";
        continue;
      }
      sources.push_back(
          lint::SourceFile{file.generic_string(), std::move(content)});
    }
    report = lint::check_layering(manifest, sources,
                                  roots.front().generic_string());
    // --allow / --only apply uniformly to the layering rules too.
    if (!disabled.empty()) {
      report.findings.erase(
          std::remove_if(report.findings.begin(), report.findings.end(),
                         [&](const lint::Finding& f) {
                           return std::find(disabled.begin(), disabled.end(),
                                            f.rule) != disabled.end();
                         }),
          report.findings.end());
    }
  } else {
    for (const fs::path& file : files) {
      std::string content;
      if (!read_file(file, content)) {
        std::cerr << "exa-lint: cannot open " << file << "\n";
        continue;
      }
      Report one =
          lint::lint_source(content, file.generic_string(), disabled);
      report.suppressed += one.suppressed;
      std::move(one.findings.begin(), one.findings.end(),
                std::back_inserter(report.findings));
    }
  }

  std::vector<bool> baseline_used;
  lint::apply_baseline(report, baseline, &baseline_used);
  if (!quiet) {
    for (std::size_t i = 0; i < baseline_used.size(); ++i) {
      if (!baseline_used[i]) {
        std::cerr << "exa-lint: note: baseline entry '"
                  << baseline.entries[i].rule << " "
                  << baseline.entries[i].path_suffix
                  << "' matched nothing in this run\n";
      }
    }
  }

  std::string rendered;
  if (format == "json") {
    rendered = lint::to_json(report);
  } else if (format == "sarif") {
    rendered = lint::to_sarif(report);
  } else {
    rendered = lint::to_text(report);
  }
  if (!output_path.empty()) {
    std::ofstream out(output_path);
    if (!out) {
      std::cerr << "exa-lint: cannot write " << output_path << "\n";
      return 2;
    }
    out << rendered;
  } else {
    std::cout << rendered;
  }

  if (!quiet) {
    std::cerr << "exa-lint: " << file_count << " file(s), "
              << report.findings.size() << " finding(s), "
              << report.suppressed << " suppressed\n";
  }
  if (exit_zero) return 0;
  return report.findings.empty() ? 0 : 1;
}
