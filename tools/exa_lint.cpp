/// \file exa_lint.cpp
/// exa-lint — static HIP API-misuse pass over C++ sources.
///
/// Usage: exa-lint [--allow <rule>]... [--list-rules] [--quiet]
///                 <file-or-directory>...
///
/// Directories are walked recursively for C/C++/CUDA sources. Exit code is
/// 1 when any unsuppressed finding remains, 0 otherwise — so CI runs it as
/// a test over src/apps/ and examples/.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/lint.hpp"

namespace {

namespace fs = std::filesystem;
using exa::check::lint::Report;

bool is_source_file(const fs::path& p) {
  static const std::vector<std::string> exts = {".cpp", ".cc",  ".cxx", ".c",
                                                ".hpp", ".hh",  ".hxx", ".h",
                                                ".cu",  ".cuh", ".hip"};
  const std::string ext = p.extension().string();
  return std::find(exts.begin(), exts.end(), ext) != exts.end();
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (!ec && it->is_regular_file(ec) && is_source_file(it->path())) {
        out.push_back(it->path());
      }
    }
  } else if (fs::is_regular_file(root, ec)) {
    out.push_back(root);
  } else {
    std::cerr << "exa-lint: cannot read " << root << "\n";
  }
}

int usage() {
  std::cerr
      << "usage: exa-lint [--allow <rule>]... [--list-rules] [--quiet]\n"
         "                <file-or-directory>...\n"
         "Suppress a single finding in source with: "
         "// exa-lint: allow(<rule>)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> disabled;
  std::vector<fs::path> roots;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow") {
      if (++i >= argc) return usage();
      disabled.emplace_back(argv[i]);
    } else if (arg == "--list-rules") {
      for (const auto& id : exa::check::lint::rule_ids()) {
        std::cout << id << "\n";
      }
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<fs::path> files;
  for (const fs::path& root : roots) collect(root, files);
  std::sort(files.begin(), files.end());

  std::size_t findings = 0;
  int suppressed = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "exa-lint: cannot open " << file << "\n";
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const Report report = exa::check::lint::lint_source(
        buf.str(), file.generic_string(), disabled);
    suppressed += report.suppressed;
    findings += report.findings.size();
    for (const auto& f : report.findings) std::cout << f.format() << "\n";
  }
  if (!quiet) {
    std::cerr << "exa-lint: " << files.size() << " file(s), " << findings
              << " finding(s), " << suppressed << " suppressed\n";
  }
  return findings == 0 ? 0 : 1;
}
