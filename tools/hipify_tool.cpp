/// exaready-hipify: command-line CUDA -> HIP source translator (the §2.1
/// porting tool as a standalone utility).
///
/// Usage:
///   exaready-hipify FILE...        translate each file to FILE.hip
///   exaready-hipify -             translate stdin to stdout
///   exaready-hipify --check FILE  report only (no output files); exit 1
///                                 when manual review is required
///
/// The report lists every rewritten identifier, converted launch, flagged
/// outdated-CUDA construct, and unrecognized cuda* symbol.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "hip/hipify.hpp"

namespace {

void print_report(const std::string& name,
                  const exa::hip::hipify::TranslationReport& report) {
  std::fprintf(stderr, "%s: %d replacements, %d launches converted\n",
               name.c_str(), report.replacements, report.launches_converted);
  for (const auto& [id, count] : report.by_identifier) {
    std::fprintf(stderr, "  %-36s x%d\n", id.c_str(), count);
  }
  for (const auto& w : report.warnings) {
    std::fprintf(stderr, "  warning: %s\n", w.c_str());
  }
  for (const auto& u : report.unrecognized) {
    std::fprintf(stderr, "  unrecognized CUDA identifier: %s\n", u.c_str());
  }
}

int translate_stream(std::istream& in, std::ostream& out) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto report = exa::hip::hipify::translate(buffer.str());
  out << report.output;
  print_report("<stdin>", report);
  return report.fully_automatic() ? 0 : 1;
}

int translate_file(const std::string& path, bool check_only) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto report = exa::hip::hipify::translate(buffer.str());
  print_report(path, report);
  if (!check_only) {
    const std::string out_path = path + ".hip";
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << report.output;
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return report.fully_automatic() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check_only = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: exaready-hipify [--check] FILE... | -\n");
      return 0;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: exaready-hipify [--check] FILE... | -\n");
    return 2;
  }
  int status = 0;
  for (const auto& f : files) {
    const int rc = f == "-" ? translate_stream(std::cin, std::cout)
                            : translate_file(f, check_only);
    status = std::max(status, rc);
  }
  return status;
}
