#include "arch/machine.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/string_util.hpp"
#include "support/units.hpp"

namespace exa::arch {

using support::GIGA;
using support::USEC;

double NodeArch::peak_fp64_flops() const {
  if (has_gpu()) {
    return gpu->peak_flops(DType::kF64) * gpus_per_node;
  }
  return cpu.peak_fp64_flops;
}

double NodeArch::memory_bandwidth() const {
  if (has_gpu()) {
    return gpu->hbm_bandwidth_bytes_per_s * gpus_per_node;
  }
  return cpu.mem_bandwidth_bytes_per_s;
}

namespace machines {

namespace {

Interconnect ib_edr_dual() {
  // Summit: dual-rail EDR InfiniBand, 2x 12.5 GB/s.
  Interconnect net;
  net.name = "InfiniBand EDR (dual rail)";
  net.nic_bandwidth_bytes_per_s = 12.5 * GIGA;
  net.nics_per_node = 2;
  net.latency_s = 1.3 * USEC;
  net.per_message_overhead_s = 0.8 * USEC;
  net.bisection_factor = 0.5;  // fat tree, tapered
  return net;
}

Interconnect slingshot10() {
  // Spock/Birch: Slingshot with 100 GbE interface.
  Interconnect net;
  net.name = "HPE Slingshot (100 GbE NIC)";
  net.nic_bandwidth_bytes_per_s = 12.5 * GIGA;
  net.nics_per_node = 1;
  net.latency_s = 1.8 * USEC;
  net.per_message_overhead_s = 0.6 * USEC;
  net.bisection_factor = 0.8;  // dragonfly
  return net;
}

Interconnect slingshot11() {
  // Frontier/Crusher: 4x 200 GbE Slingshot-11 NICs per node.
  Interconnect net;
  net.name = "HPE Slingshot-11 (4x 200 GbE)";
  net.nic_bandwidth_bytes_per_s = 25.0 * GIGA;
  net.nics_per_node = 4;
  net.latency_s = 1.7 * USEC;
  net.per_message_overhead_s = 0.5 * USEC;
  net.bisection_factor = 0.8;
  return net;
}

Interconnect ib_hdr100() {
  // Wombat: single-rail HDR-100 InfiniBand (ConnectX-6 at 100 Gb/s).
  Interconnect net;
  net.name = "InfiniBand HDR-100";
  net.nic_bandwidth_bytes_per_s = 12.5 * GIGA;
  net.nics_per_node = 1;
  net.latency_s = 1.3 * USEC;
  net.per_message_overhead_s = 0.7 * USEC;
  net.bisection_factor = 0.9;  // small cluster, near-full bisection
  return net;
}

Interconnect aries_like(const char* name) {
  Interconnect net;
  net.name = name;
  net.nic_bandwidth_bytes_per_s = 10.0 * GIGA;
  net.nics_per_node = 1;
  net.latency_s = 1.5 * USEC;
  net.per_message_overhead_s = 0.8 * USEC;
  net.bisection_factor = 0.6;
  return net;
}

}  // namespace

Machine summit() {
  Machine m;
  m.name = "Summit";
  m.year = 2018;
  m.node_count = 4608;
  m.node.cpu = power9_summit();
  m.node.gpu = v100();
  m.node.gpus_per_node = 6;
  m.network = ib_edr_dual();
  return m;
}

Machine frontier() {
  Machine m;
  m.name = "Frontier";
  m.year = 2022;
  m.node_count = 9408;
  m.node.cpu = epyc_trento();
  m.node.gpu = mi250x_gcd();
  m.node.gpus_per_node = 8;  // 4 MI250X modules = 8 GCDs = 8 devices
  m.network = slingshot11();
  return m;
}

Machine crusher() {
  Machine m = frontier();
  m.name = "Crusher";
  m.year = 2022;
  m.node_count = 192;
  m.nda_restricted = true;
  return m;
}

Machine spock() {
  Machine m;
  m.name = "Spock";
  m.year = 2020;
  m.node_count = 6;  // as described in the paper (Section 4)
  m.node.cpu = epyc_rome();
  m.node.gpu = mi100();
  m.node.gpus_per_node = 4;
  m.network = slingshot10();
  m.nda_restricted = true;
  return m;
}

Machine birch() {
  Machine m = spock();
  m.name = "Birch";
  m.node_count = 12;
  return m;
}

Machine poplar() {
  Machine m;
  m.name = "Poplar";
  m.year = 2019;
  m.node_count = 8;
  m.node.cpu = epyc_naples();
  m.node.gpu = mi60();
  m.node.gpus_per_node = 4;
  m.network = aries_like("Cray Aries (EAS gen 1)");
  m.nda_restricted = true;
  return m;
}

Machine tulip() {
  Machine m = poplar();
  m.name = "Tulip";
  return m;
}

Machine cori() {
  Machine m;
  m.name = "Cori";
  m.year = 2016;
  m.node_count = 9688;
  m.node.cpu = knl_cori();
  m.node.gpus_per_node = 0;
  m.network = aries_like("Cray Aries");
  return m;
}

Machine theta() {
  Machine m;
  m.name = "Theta";
  m.year = 2017;
  m.node_count = 4392;
  m.node.cpu = knl_theta();
  m.node.gpus_per_node = 0;
  m.network = aries_like("Cray Aries");
  return m;
}

Machine eagle() {
  Machine m;
  m.name = "Eagle";
  m.year = 2018;
  m.node_count = 2114;
  m.node.cpu = skylake_eagle();
  m.node.gpus_per_node = 0;
  m.network = ib_edr_dual();
  m.network.name = "InfiniBand EDR";
  m.network.nics_per_node = 1;
  return m;
}

Machine wombat() {
  // The GPU-accelerated Arm testbed of arxiv 2209.09731: Ampere Altra
  // hosts with two PCIe A100s per node — the cross-ISA comparison point
  // campaigns sweep against Frontier.
  Machine m;
  m.name = "Wombat";
  m.year = 2021;
  m.node_count = 16;
  m.node.cpu = ampere_altra();
  m.node.gpu = a100();
  m.node.gpus_per_node = 2;
  m.network = ib_hdr100();
  return m;
}

std::vector<Machine> all() {
  std::vector<Machine> ms = {cori(),  theta(),  eagle(),   summit(),
                             poplar(), tulip(), spock(),   birch(),
                             wombat(), crusher(), frontier()};
  std::stable_sort(ms.begin(), ms.end(), [](const Machine& a, const Machine& b) {
    return a.year < b.year;
  });
  return ms;
}

std::vector<Machine> early_access_generations() {
  return {poplar(), spock(), crusher()};
}

Machine by_name(const std::string& name) {
  const std::string needle = support::to_lower(name);
  for (const Machine& m : all()) {
    if (support::to_lower(m.name) == needle) return m;
  }
  throw support::Error("unknown machine: " + name);
}

}  // namespace machines
}  // namespace exa::arch
