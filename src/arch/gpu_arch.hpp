#pragma once
/// \file gpu_arch.hpp
/// Analytic GPU architecture descriptions. These are the calibrated inputs
/// to the device performance model (sim/); values come from public vendor
/// spec sheets for the parts the paper names: NVIDIA V100 (Summit), AMD
/// MI60 (Poplar/Tulip), MI100 (Spock/Birch), and MI250X (Crusher/Frontier),
/// plus the NVIDIA A100 of the GPU-accelerated Arm testbed (Wombat,
/// arxiv 2209.09731) that campaigns compare Frontier against.
///
/// A note on the MI250X: it is a two-die module. Software (and the paper)
/// treats each Graphics Compute Die (GCD) as one GPU, so `mi250x_gcd()` is
/// the per-device model and a Frontier node carries eight of them.

#include <cstdint>
#include <map>
#include <string>

#include "arch/dtype.hpp"

namespace exa::arch {

enum class GpuVendor { kNvidia, kAmd };

[[nodiscard]] std::string to_string(GpuVendor v);

/// Bandwidth/latency of the host<->device link (PCIe, NVLink, or xGMI).
struct HostLink {
  std::string name;
  double bandwidth_bytes_per_s = 0.0;  ///< one direction, achievable
  double latency_s = 0.0;              ///< per-transfer fixed cost
};

/// One GPU device as the programming model sees it.
struct GpuArch {
  std::string name;
  GpuVendor vendor = GpuVendor::kAmd;

  // Execution resources.
  int compute_units = 0;        ///< SMs (NVIDIA) or CUs (AMD)
  int wavefront_size = 64;      ///< 32 on NVIDIA, 64 on AMD
  int max_threads_per_cu = 2048;
  int max_blocks_per_cu = 32;
  int registers_per_cu = 65536;       ///< 32-bit architected registers
  int max_registers_per_thread = 255; ///< above this the compiler must spill
  std::uint64_t lds_per_cu_bytes = 64 * 1024;  ///< shared memory / LDS

  // Peak arithmetic throughput in flop/s (or op/s for integer types).
  // `vector` is the SIMT pipeline; `matrix` is tensor/matrix cores.
  std::map<DType, double> peak_vector_flops;
  std::map<DType, double> peak_matrix_flops;

  /// Throughput fraction for non-FMA arithmetic (e.g. the add+min chains of
  /// min-plus/tropical kernels): peak tables assume FMA; kernels that cannot
  /// fuse run at this fraction. CDNA2's packed (dual-issue) ALU ops recover
  /// part of the loss — the COAST §3.9 tuning story.
  double non_fma_fraction = 0.5;

  // Memory system.
  double hbm_bandwidth_bytes_per_s = 0.0;
  std::uint64_t hbm_capacity_bytes = 0;
  std::uint64_t l2_bytes = 0;

  // Runtime latencies (per-API-call fixed costs, seconds).
  double kernel_launch_latency_s = 0.0;
  double alloc_latency_s = 0.0;  ///< hipMalloc/cudaMalloc
  double free_latency_s = 0.0;
  double uvm_page_fault_latency_s = 0.0;  ///< per migrated page group

  HostLink host_link;

  /// Peak flops for `t`, preferring matrix units when `use_matrix_cores`
  /// and the architecture has them for that type; falls back to vector.
  [[nodiscard]] double peak_flops(DType t, bool use_matrix_cores = false) const;

  /// Machine balance in flop/byte at FP64 vector peak; kernels below this
  /// arithmetic intensity are memory-bound on this part.
  [[nodiscard]] double balance_fp64() const;
};

/// Factory functions for the parts used across the paper's systems.
[[nodiscard]] GpuArch v100();        ///< Summit (NVIDIA Volta, 2017)
[[nodiscard]] GpuArch a100();        ///< Wombat Arm testbed (NVIDIA Ampere, PCIe 40GB)
[[nodiscard]] GpuArch mi60();        ///< Poplar/Tulip EAS gen 1 (Vega 20)
[[nodiscard]] GpuArch mi100();       ///< Spock/Birch EAS gen 2 (CDNA 1)
[[nodiscard]] GpuArch mi250x_gcd();  ///< Crusher/Frontier (CDNA 2, per GCD)

}  // namespace exa::arch
