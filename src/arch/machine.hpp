#pragma once
/// \file machine.hpp
/// Whole-system descriptions: node composition, interconnect, scale, and
/// deployment year. `MachineCatalog` provides every system the paper
/// names, including the three early-access generations (§4).

#include <optional>
#include <string>
#include <vector>

#include "arch/cpu_arch.hpp"
#include "arch/gpu_arch.hpp"

namespace exa::arch {

/// Inter-node network model parameters (LogGP-style inputs for exa::net).
struct Interconnect {
  std::string name;
  double nic_bandwidth_bytes_per_s = 0.0;  ///< injection bw per NIC
  int nics_per_node = 1;
  double latency_s = 0.0;           ///< small-message one-way latency
  double per_message_overhead_s = 0.0;  ///< software o (LogGP)
  /// Effective bisection factor: achievable fraction of injection bandwidth
  /// for global traffic patterns (all-to-all); 1.0 = full bisection.
  double bisection_factor = 0.7;

  [[nodiscard]] double node_injection_bandwidth() const {
    return nic_bandwidth_bytes_per_s * nics_per_node;
  }
};

/// One compute node: a host CPU plus zero or more GPU devices.
struct NodeArch {
  CpuArch cpu;
  std::optional<GpuArch> gpu;  ///< device model (empty for CPU-only nodes)
  int gpus_per_node = 0;       ///< programming-model devices (GCDs count as 1 each)

  [[nodiscard]] bool has_gpu() const { return gpu.has_value() && gpus_per_node > 0; }

  /// Node peak FP64 flop/s (GPU devices if present, else CPU).
  [[nodiscard]] double peak_fp64_flops() const;
  /// Node aggregate HBM (or main-memory) bandwidth.
  [[nodiscard]] double memory_bandwidth() const;
};

/// A named system at a point in time.
struct Machine {
  std::string name;
  int year = 0;            ///< deployment / first-access year
  int node_count = 0;
  NodeArch node;
  Interconnect network;
  bool nda_restricted = false;  ///< early-access systems were under NDA (§4)

  [[nodiscard]] double system_peak_fp64_flops() const {
    return node.peak_fp64_flops() * node_count;
  }
  [[nodiscard]] int total_devices() const {
    return node.gpus_per_node * node_count;
  }
};

/// Factory for every machine the paper references.
namespace machines {
[[nodiscard]] Machine summit();    ///< OLCF-5: 4608 nodes, 2xP9 + 6xV100
[[nodiscard]] Machine frontier();  ///< OLCF-6: 9408 nodes, Trento + 4xMI250X (8 GCDs)
[[nodiscard]] Machine crusher();   ///< EAS gen 3: 192 Frontier-identical nodes
[[nodiscard]] Machine spock();     ///< EAS gen 2: 6 nodes, 4x MI100
[[nodiscard]] Machine birch();     ///< EAS gen 2: 12 nodes, 4x MI100
[[nodiscard]] Machine poplar();    ///< EAS gen 1: MI60 + Naples
[[nodiscard]] Machine tulip();     ///< EAS gen 1: MI60 + Naples
[[nodiscard]] Machine cori();      ///< NERSC Cori KNL partition
[[nodiscard]] Machine theta();     ///< ANL Theta KNL
[[nodiscard]] Machine eagle();     ///< NREL Eagle Skylake
[[nodiscard]] Machine wombat();    ///< Arm testbed: Altra + 2x A100 (arxiv 2209.09731)

/// All machines, ordered by year (the early-access progression).
[[nodiscard]] std::vector<Machine> all();
/// The three early-access generations in order (Poplar, Spock, Crusher).
[[nodiscard]] std::vector<Machine> early_access_generations();
/// Looks a machine up by (case-insensitive) name; throws if unknown.
[[nodiscard]] Machine by_name(const std::string& name);
}  // namespace machines

}  // namespace exa::arch
