#include "arch/dtype.hpp"

namespace exa::arch {

std::string to_string(DType t) {
  switch (t) {
    case DType::kF64: return "FP64";
    case DType::kF32: return "FP32";
    case DType::kF16: return "FP16";
    case DType::kBF16: return "BF16";
    case DType::kI32: return "INT32";
    case DType::kI8: return "INT8";
    case DType::kC64: return "C64";
    case DType::kC32: return "C32";
  }
  return "?";
}

}  // namespace exa::arch
