#pragma once
/// \file dtype.hpp
/// Arithmetic data types the performance model distinguishes. CoMet's
/// mixed-precision story (§3.6) and the tensor/matrix-core peak tables
/// hinge on these.

#include <cstddef>
#include <string>

namespace exa::arch {

enum class DType {
  kF64,
  kF32,
  kF16,
  kBF16,
  kI32,
  kI8,
  kC64,   // complex<double> — LSMS ZGEMM/ZGETRF
  kC32,   // complex<float>
};

/// Bytes per element.
[[nodiscard]] constexpr std::size_t size_of(DType t) {
  switch (t) {
    case DType::kF64: return 8;
    case DType::kF32: return 4;
    case DType::kF16: return 2;
    case DType::kBF16: return 2;
    case DType::kI32: return 4;
    case DType::kI8: return 1;
    case DType::kC64: return 16;
    case DType::kC32: return 8;
  }
  return 0;
}

[[nodiscard]] std::string to_string(DType t);

/// The real-arithmetic type that backs a complex type (used when charging
/// flops: one complex MAC = 4 real multiplies + 4 real adds).
[[nodiscard]] constexpr DType real_of(DType t) {
  switch (t) {
    case DType::kC64: return DType::kF64;
    case DType::kC32: return DType::kF32;
    default: return t;
  }
}

[[nodiscard]] constexpr bool is_complex(DType t) {
  return t == DType::kC64 || t == DType::kC32;
}

}  // namespace exa::arch
