#include "arch/gpu_arch.hpp"

#include "support/assert.hpp"
#include "support/units.hpp"

namespace exa::arch {

using support::GiB;
using support::GIGA;
using support::KiB;
using support::MiB;
using support::TERA;
using support::USEC;

std::string to_string(GpuVendor v) {
  switch (v) {
    case GpuVendor::kNvidia: return "NVIDIA";
    case GpuVendor::kAmd: return "AMD";
  }
  return "?";
}

double GpuArch::peak_flops(DType t, bool use_matrix_cores) const {
  const DType key = real_of(t);
  if (use_matrix_cores) {
    if (const auto it = peak_matrix_flops.find(key);
        it != peak_matrix_flops.end()) {
      return it->second;
    }
  }
  const auto it = peak_vector_flops.find(key);
  EXA_REQUIRE_MSG(it != peak_vector_flops.end(),
                  "architecture has no peak entry for dtype " + to_string(key));
  return it->second;
}

double GpuArch::balance_fp64() const {
  EXA_REQUIRE(hbm_bandwidth_bytes_per_s > 0.0);
  return peak_flops(DType::kF64) / hbm_bandwidth_bytes_per_s;
}

GpuArch v100() {
  GpuArch g;
  g.name = "NVIDIA V100 (SXM2 16GB)";
  g.vendor = GpuVendor::kNvidia;
  g.compute_units = 80;
  g.wavefront_size = 32;
  g.max_threads_per_cu = 2048;
  g.max_blocks_per_cu = 32;
  g.registers_per_cu = 65536;
  g.max_registers_per_thread = 255;
  g.lds_per_cu_bytes = 96 * KiB;
  g.peak_vector_flops = {{DType::kF64, 7.8 * TERA},
                         {DType::kF32, 15.7 * TERA},
                         {DType::kF16, 31.4 * TERA},
                         {DType::kBF16, 15.7 * TERA},  // no native BF16 on Volta
                         {DType::kI32, 15.7 * TERA},
                         {DType::kI8, 62.8 * TERA}};
  g.peak_matrix_flops = {{DType::kF16, 125.0 * TERA}};
  g.hbm_bandwidth_bytes_per_s = 900.0 * GIGA;
  g.hbm_capacity_bytes = 16 * GiB;
  g.l2_bytes = 6 * MiB;
  g.kernel_launch_latency_s = 4.0 * USEC;
  g.alloc_latency_s = 80.0 * USEC;
  g.free_latency_s = 40.0 * USEC;
  g.uvm_page_fault_latency_s = 30.0 * USEC;
  g.host_link = {"NVLink 2.0 (3 bricks)", 50.0 * GIGA, 2.0 * USEC};
  return g;
}

GpuArch a100() {
  GpuArch g;
  g.name = "NVIDIA A100 (PCIe 40GB)";
  g.vendor = GpuVendor::kNvidia;
  g.compute_units = 108;
  g.wavefront_size = 32;
  g.max_threads_per_cu = 2048;
  g.max_blocks_per_cu = 32;
  g.registers_per_cu = 65536;
  g.max_registers_per_thread = 255;
  g.lds_per_cu_bytes = 164 * KiB;  // Ampere: up to 164 KB carved from L1
  g.peak_vector_flops = {{DType::kF64, 9.7 * TERA},
                         {DType::kF32, 19.5 * TERA},
                         {DType::kF16, 78.0 * TERA},
                         {DType::kBF16, 39.0 * TERA},
                         {DType::kI32, 19.5 * TERA},
                         {DType::kI8, 78.0 * TERA}};
  // Ampere's FP64 tensor cores double the vector rate — the first part
  // where double precision runs through matrix units.
  g.peak_matrix_flops = {{DType::kF64, 19.5 * TERA},
                         {DType::kF32, 156.0 * TERA},  // TF32 path
                         {DType::kF16, 312.0 * TERA},
                         {DType::kBF16, 312.0 * TERA},
                         {DType::kI8, 624.0 * TERA}};
  g.hbm_bandwidth_bytes_per_s = 1555.0 * GIGA;
  g.hbm_capacity_bytes = 40 * GiB;
  g.l2_bytes = 40 * MiB;
  g.kernel_launch_latency_s = 4.0 * USEC;
  g.alloc_latency_s = 80.0 * USEC;
  g.free_latency_s = 40.0 * USEC;
  g.uvm_page_fault_latency_s = 30.0 * USEC;
  g.host_link = {"PCIe 4.0 x16", 26.0 * GIGA, 3.0 * USEC};
  return g;
}

GpuArch mi60() {
  GpuArch g;
  g.name = "AMD MI60 (Vega 20)";
  g.vendor = GpuVendor::kAmd;
  g.compute_units = 64;
  g.wavefront_size = 64;
  g.max_threads_per_cu = 2560;
  g.max_blocks_per_cu = 40;
  g.registers_per_cu = 4 * 256 * 64;  // 4 SIMDs x 256 VGPRs x 64 lanes
  g.max_registers_per_thread = 256;
  g.lds_per_cu_bytes = 64 * KiB;
  g.peak_vector_flops = {{DType::kF64, 7.4 * TERA},
                         {DType::kF32, 14.7 * TERA},
                         {DType::kF16, 29.5 * TERA},
                         {DType::kBF16, 14.7 * TERA},
                         {DType::kI32, 14.7 * TERA},
                         {DType::kI8, 58.9 * TERA}};
  g.peak_matrix_flops = {};  // Vega 20 has no matrix cores
  g.hbm_bandwidth_bytes_per_s = 1000.0 * GIGA;
  g.hbm_capacity_bytes = 32 * GiB;
  g.l2_bytes = 4 * MiB;
  g.kernel_launch_latency_s = 9.0 * USEC;  // early ROCm
  g.alloc_latency_s = 150.0 * USEC;
  g.free_latency_s = 60.0 * USEC;
  g.uvm_page_fault_latency_s = 45.0 * USEC;
  g.host_link = {"PCIe 4.0 x16", 26.0 * GIGA, 3.0 * USEC};
  return g;
}

GpuArch mi100() {
  GpuArch g;
  g.name = "AMD MI100 (CDNA 1)";
  g.vendor = GpuVendor::kAmd;
  g.compute_units = 120;
  g.wavefront_size = 64;
  g.max_threads_per_cu = 2560;
  g.max_blocks_per_cu = 40;
  g.registers_per_cu = 4 * 256 * 64;
  g.max_registers_per_thread = 256;
  g.lds_per_cu_bytes = 64 * KiB;
  g.peak_vector_flops = {{DType::kF64, 11.5 * TERA},
                         {DType::kF32, 23.1 * TERA},
                         {DType::kF16, 46.1 * TERA},
                         {DType::kBF16, 46.1 * TERA},
                         {DType::kI32, 23.1 * TERA},
                         {DType::kI8, 92.3 * TERA}};
  g.peak_matrix_flops = {{DType::kF32, 46.1 * TERA},
                         {DType::kF16, 184.6 * TERA},
                         {DType::kBF16, 92.3 * TERA},
                         {DType::kI8, 184.6 * TERA}};
  g.hbm_bandwidth_bytes_per_s = 1230.0 * GIGA;
  g.hbm_capacity_bytes = 32 * GiB;
  g.l2_bytes = 8 * MiB;
  g.kernel_launch_latency_s = 7.0 * USEC;
  g.alloc_latency_s = 120.0 * USEC;
  g.free_latency_s = 50.0 * USEC;
  g.uvm_page_fault_latency_s = 40.0 * USEC;
  g.host_link = {"PCIe 4.0 x16", 26.0 * GIGA, 3.0 * USEC};
  return g;
}

GpuArch mi250x_gcd() {
  GpuArch g;
  g.name = "AMD MI250X (one GCD)";
  g.vendor = GpuVendor::kAmd;
  g.compute_units = 110;
  g.wavefront_size = 64;
  g.max_threads_per_cu = 2048;
  g.max_blocks_per_cu = 32;
  g.registers_per_cu = 4 * 512 * 64;  // CDNA2 doubles the VGPR file
  g.max_registers_per_thread = 512;
  g.lds_per_cu_bytes = 64 * KiB;
  // FP64/FP32 vector peak includes packed (dual-issue) FP32/FP64 ops.
  g.peak_vector_flops = {{DType::kF64, 23.9 * TERA},
                         {DType::kF32, 23.9 * TERA},
                         {DType::kF16, 95.7 * TERA},
                         {DType::kBF16, 95.7 * TERA},
                         {DType::kI32, 23.9 * TERA},
                         {DType::kI8, 191.4 * TERA}};
  // CDNA2's packed (v_pk_*) ALU ops issue two adds/mins per cycle per
  // lane, sustaining the full counted op rate for non-FMA mixes — the
  // COAST §3.9 advantage over Volta, where non-FMA ops halve throughput.
  g.non_fma_fraction = 1.0;
  g.peak_matrix_flops = {{DType::kF64, 47.9 * TERA},
                         {DType::kF32, 47.9 * TERA},
                         {DType::kF16, 191.5 * TERA},
                         {DType::kBF16, 191.5 * TERA},
                         {DType::kI8, 191.5 * TERA}};
  g.hbm_bandwidth_bytes_per_s = 1600.0 * GIGA;
  g.hbm_capacity_bytes = 64 * GiB;
  g.l2_bytes = 8 * MiB;
  g.kernel_launch_latency_s = 6.0 * USEC;
  g.alloc_latency_s = 100.0 * USEC;
  g.free_latency_s = 40.0 * USEC;
  g.uvm_page_fault_latency_s = 35.0 * USEC;
  g.host_link = {"Infinity Fabric (xGMI)", 36.0 * GIGA, 2.0 * USEC};
  return g;
}

}  // namespace exa::arch
