#pragma once
/// \file cpu_arch.hpp
/// CPU socket/node descriptions for the CPU-only machines in PeleC's
/// Figure 2 history (Cori, Theta, Eagle) and the host sides of the GPU
/// machines.

#include <string>

namespace exa::arch {

/// One CPU *node* (all sockets aggregated): the granularity Figure 2 uses.
struct CpuArch {
  std::string name;
  int cores = 0;
  double clock_ghz = 0.0;
  /// Peak FP64 flop/s for the whole node (cores x clock x SIMD width x FMA).
  double peak_fp64_flops = 0.0;
  /// Achievable main-memory bandwidth for the node (stream triad-ish).
  double mem_bandwidth_bytes_per_s = 0.0;
  /// Single-language/code-quality factor: the paper observed C++-only PeleC
  /// was 2x faster on CPUs than the hybrid C++/Fortran build. Modeled as a
  /// multiplier the app chooses; the arch just records baseline efficiency.
  double sustained_fraction = 0.08;  ///< typical AMR/combustion sustained/peak
};

[[nodiscard]] CpuArch knl_cori();      ///< Xeon Phi 7250, 68 cores (NERSC Cori)
[[nodiscard]] CpuArch knl_theta();     ///< Xeon Phi 7230, 64 cores (ANL Theta)
[[nodiscard]] CpuArch skylake_eagle(); ///< 2x Xeon Gold 6154 (NREL Eagle)
[[nodiscard]] CpuArch power9_summit(); ///< 2x POWER9 (OLCF Summit host)
[[nodiscard]] CpuArch epyc_naples();   ///< EPYC 7601 (Poplar/Tulip host)
[[nodiscard]] CpuArch epyc_rome();     ///< EPYC 7662 (Spock/Birch host)
[[nodiscard]] CpuArch epyc_trento();   ///< optimized 3rd-gen EPYC (Frontier host)
[[nodiscard]] CpuArch ampere_altra();  ///< Altra Q80-30, 80 Arm cores (Wombat host)

}  // namespace exa::arch
