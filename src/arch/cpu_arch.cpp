#include "arch/cpu_arch.hpp"

#include "support/units.hpp"

namespace exa::arch {

using support::GIGA;
using support::TERA;

CpuArch knl_cori() {
  // Intel Xeon Phi 7250: 68 cores @ 1.4 GHz, 2x AVX-512 FMA units.
  CpuArch c;
  c.name = "Intel Xeon Phi 7250 (KNL, Cori)";
  c.cores = 68;
  c.clock_ghz = 1.4;
  c.peak_fp64_flops = 3.05 * TERA;
  c.mem_bandwidth_bytes_per_s = 460.0 * GIGA;  // MCDRAM flat mode
  c.sustained_fraction = 0.08;  // KNL was hard to feed outside MCDRAM
  return c;
}

CpuArch knl_theta() {
  CpuArch c;
  c.name = "Intel Xeon Phi 7230 (KNL, Theta)";
  c.cores = 64;
  c.clock_ghz = 1.3;
  c.peak_fp64_flops = 2.66 * TERA;
  c.mem_bandwidth_bytes_per_s = 450.0 * GIGA;
  c.sustained_fraction = 0.08;
  return c;
}

CpuArch skylake_eagle() {
  // 2x Xeon Gold 6154: 18 cores @ 3.0 GHz, AVX-512 (single FMA sustained).
  CpuArch c;
  c.name = "2x Intel Xeon Gold 6154 (Skylake, Eagle)";
  c.cores = 36;
  c.clock_ghz = 3.0;
  c.peak_fp64_flops = 3.46 * TERA;
  c.mem_bandwidth_bytes_per_s = 220.0 * GIGA;
  c.sustained_fraction = 0.09;  // big cores are easier to feed than KNL
  return c;
}

CpuArch power9_summit() {
  CpuArch c;
  c.name = "2x IBM POWER9 (Summit host)";
  c.cores = 42;  // 2x21 usable cores
  c.clock_ghz = 3.07;
  c.peak_fp64_flops = 1.03 * TERA;
  c.mem_bandwidth_bytes_per_s = 270.0 * GIGA;
  c.sustained_fraction = 0.10;
  return c;
}

CpuArch epyc_naples() {
  CpuArch c;
  c.name = "AMD EPYC 7601 (Naples)";
  c.cores = 32;
  c.clock_ghz = 2.2;
  c.peak_fp64_flops = 1.13 * TERA;
  c.mem_bandwidth_bytes_per_s = 170.0 * GIGA;
  c.sustained_fraction = 0.10;
  return c;
}

CpuArch epyc_rome() {
  CpuArch c;
  c.name = "AMD EPYC 7662 (Rome)";
  c.cores = 64;
  c.clock_ghz = 2.0;
  c.peak_fp64_flops = 2.05 * TERA;
  c.mem_bandwidth_bytes_per_s = 190.0 * GIGA;
  c.sustained_fraction = 0.10;
  return c;
}

CpuArch epyc_trento() {
  CpuArch c;
  c.name = "AMD EPYC 7A53 (optimized 3rd-gen, Frontier host)";
  c.cores = 64;
  c.clock_ghz = 2.0;
  c.peak_fp64_flops = 2.05 * TERA;
  c.mem_bandwidth_bytes_per_s = 205.0 * GIGA;
  c.sustained_fraction = 0.10;
  return c;
}

CpuArch ampere_altra() {
  // Ampere Altra Q80-30 (Neoverse N1): 80 cores @ 3.0 GHz, two 128-bit
  // NEON FMA pipes per core -> 8 FP64 flops/cycle/core. The Arm host of
  // the GPU-accelerated Wombat testbed (arxiv 2209.09731).
  CpuArch c;
  c.name = "Ampere Altra Q80-30 (Neoverse N1, Wombat host)";
  c.cores = 80;
  c.clock_ghz = 3.0;
  c.peak_fp64_flops = 1.92 * TERA;
  c.mem_bandwidth_bytes_per_s = 200.0 * GIGA;  // 8-channel DDR4-3200
  c.sustained_fraction = 0.10;
  return c;
}

}  // namespace exa::arch
