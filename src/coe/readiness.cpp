#include "coe/readiness.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace exa::coe {

namespace {

double ratio_score(double a, double b) {
  EXA_REQUIRE(a > 0.0 && b > 0.0);
  return std::min(a, b) / std::max(a, b);
}

}  // namespace

GenerationAssessment assess_generation(const arch::Machine& early,
                                       const arch::Machine& target) {
  EXA_REQUIRE_MSG(early.node.has_gpu() && target.node.has_gpu(),
                  "generation assessment requires GPU systems");
  const arch::GpuArch& e = *early.node.gpu;
  const arch::GpuArch& t = *target.node.gpu;

  GenerationAssessment a;
  a.machine = early.name;
  a.year = early.year;
  a.lead_time_years = std::max(0, target.year - early.year);

  double score = 0.0;
  score += (e.vendor == t.vendor) ? 0.30 : 0.0;
  score += (e.wavefront_size == t.wavefront_size) ? 0.15 : 0.0;
  score += 0.20 * ratio_score(e.peak_flops(arch::DType::kF64),
                              t.peak_flops(arch::DType::kF64));
  score += 0.15 * ratio_score(e.hbm_bandwidth_bytes_per_s,
                              t.hbm_bandwidth_bytes_per_s);
  score += 0.10 * ratio_score(static_cast<double>(e.compute_units),
                              static_cast<double>(t.compute_units));
  score += 0.10 * ratio_score(e.kernel_launch_latency_s,
                              t.kernel_launch_latency_s);
  a.arch_fidelity = score;

  a.scale_fraction = static_cast<double>(early.node_count) /
                     static_cast<double>(target.node_count);
  return a;
}

support::Table early_access_table() {
  const arch::Machine target = arch::machines::frontier();
  support::Table t("Early-access platform generations vs. Frontier (Section 4)");
  t.set_header({"System", "Year", "GPU", "Arch fidelity", "Scale fraction",
                "Lead time"});
  for (const auto& m : arch::machines::early_access_generations()) {
    const GenerationAssessment a = assess_generation(m, target);
    t.add_row({m.name, std::to_string(m.year), m.node.gpu->name,
               support::Table::cell(a.arch_fidelity, 2),
               support::Table::cell(a.scale_fraction * 100.0, 2) + "%",
               std::to_string(a.lead_time_years) + " yr"});
  }
  t.add_note("fidelity: vendor, wavefront width, peak/bandwidth/latency ratios");
  return t;
}

std::string to_string(IssueCategory c) {
  switch (c) {
    case IssueCategory::kFunctionality: return "functionality";
    case IssueCategory::kMissingFeature: return "missing feature";
    case IssueCategory::kPerformance: return "performance";
  }
  return "?";
}

void IssueLog::add(Issue issue) {
  EXA_REQUIRE(issue.quarter_found >= 0);
  issues_.push_back(std::move(issue));
}

std::size_t IssueLog::count(IssueCategory c) const {
  return static_cast<std::size_t>(
      std::count_if(issues_.begin(), issues_.end(),
                    [c](const Issue& i) { return i.category == c; }));
}

double IssueLog::mean_quarter(IssueCategory c) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& i : issues_) {
    if (i.category != c) continue;
    sum += i.quarter_found;
    ++n;
  }
  EXA_REQUIRE_MSG(n > 0, "no issues in category");
  return sum / static_cast<double>(n);
}

bool IssueLog::follows_discovery_order() const {
  const double f = mean_quarter(IssueCategory::kFunctionality);
  const double m = mean_quarter(IssueCategory::kMissingFeature);
  const double p = mean_quarter(IssueCategory::kPerformance);
  return f <= m && m <= p;
}

double IssueLog::resolution_rate() const {
  if (issues_.empty()) return 1.0;
  const auto resolved = std::count_if(issues_.begin(), issues_.end(),
                                      [](const Issue& i) { return i.resolved; });
  return static_cast<double>(resolved) / static_cast<double>(issues_.size());
}

}  // namespace exa::coe
