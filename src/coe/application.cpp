#include "coe/application.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace exa::coe {

std::string to_string(Program p) {
  switch (p) {
    case Program::kCaar: return "CAAR";
    case Program::kEcpAd: return "ECP-AD";
    case Program::kEcpSt: return "ECP-ST";
    case Program::kOther: return "Other";
  }
  return "?";
}

std::string to_string(ReadinessPhase p) {
  switch (p) {
    case ReadinessPhase::kNotStarted: return "not started";
    case ReadinessPhase::kFunctionality: return "functionality";
    case ReadinessPhase::kMissingFeatures: return "missing features";
    case ReadinessPhase::kPerformance: return "performance";
    case ReadinessPhase::kReady: return "ready";
  }
  return "?";
}

Application::Application(std::string name, std::string domain, Program program)
    : name_(std::move(name)), domain_(std::move(domain)), program_(program) {
  EXA_REQUIRE(!name_.empty());
}

Application& Application::set_fom(FigureOfMerit fom) {
  fom_ = std::move(fom);
  return *this;
}

Application& Application::set_target_speedup(double target) {
  EXA_REQUIRE(target > 0.0);
  target_speedup_ = target;
  return *this;
}

Application& Application::add_motif(Motif m) {
  if (!has_motif(m)) motifs_.push_back(m);
  return *this;
}

Application& Application::add_approach(PortingApproach a) {
  if (std::find(approaches_.begin(), approaches_.end(), a) ==
      approaches_.end()) {
    approaches_.push_back(a);
  }
  return *this;
}

Application& Application::set_phase(ReadinessPhase phase) {
  phase_ = phase;
  return *this;
}

Application& Application::add_measurement(Measurement m) {
  EXA_REQUIRE(!m.machine.empty());
  EXA_REQUIRE(m.value > 0.0);
  measurements_.push_back(std::move(m));
  return *this;
}

bool Application::has_motif(Motif m) const {
  return std::find(motifs_.begin(), motifs_.end(), m) != motifs_.end();
}

std::optional<Measurement> Application::latest_on(
    const std::string& machine) const {
  std::optional<Measurement> latest;
  for (const auto& m : measurements_) {
    if (m.machine != machine) continue;
    if (!latest.has_value() || m.year >= latest->year) latest = m;
  }
  return latest;
}

std::optional<double> Application::speedup(
    const std::string& baseline_machine,
    const std::string& target_machine) const {
  const auto base = latest_on(baseline_machine);
  const auto target = latest_on(target_machine);
  if (!base.has_value() || !target.has_value()) return std::nullopt;
  const bool higher = !fom_.has_value() || fom_->higher_is_better;
  return higher ? target->value / base->value : base->value / target->value;
}

bool Application::met_target(const std::string& baseline_machine,
                             const std::string& target_machine) const {
  const auto s = speedup(baseline_machine, target_machine);
  return s.has_value() && target_speedup_ > 0.0 && *s >= target_speedup_;
}

}  // namespace exa::coe
