#include "coe/motif.hpp"

namespace exa::coe {

std::string to_string(Motif m) {
  switch (m) {
    case Motif::kCudaHipPorting: return "CUDA/HIP Porting";
    case Motif::kLibraryTuning: return "Library Tuning";
    case Motif::kPerformancePortability: return "Performance Portability";
    case Motif::kKernelFusionFission: return "Kernel Fusion/Fission";
    case Motif::kAlgorithmicOptimizations: return "Algorithmic Optimizations";
  }
  return "?";
}

const std::vector<Motif>& all_motifs() {
  static const std::vector<Motif> motifs = {
      Motif::kCudaHipPorting, Motif::kLibraryTuning,
      Motif::kPerformancePortability, Motif::kKernelFusionFission,
      Motif::kAlgorithmicOptimizations};
  return motifs;
}

std::string to_string(PortingApproach a) {
  switch (a) {
    case PortingApproach::kHip: return "HIP";
    case PortingApproach::kCudaMacroCompat: return "CUDA + macro compat header";
    case PortingApproach::kOpenMpOffload: return "OpenMP target offload";
    case PortingApproach::kKokkos: return "Kokkos";
    case PortingApproach::kYakl: return "YAKL";
    case PortingApproach::kAmrexAbstraction: return "AMReX abstraction";
    case PortingApproach::kPluginAbstraction: return "plugin/factory abstraction";
  }
  return "?";
}

}  // namespace exa::coe
