#pragma once
/// \file application.hpp
/// Application readiness records: the quantitative tracking approach §6
/// credits — "a well-posed challenge problem and figure of merit (FOM) on
/// Summit and an acceleration plan for Frontier", mid-project reports, and
/// continuous assessment against stated speed-up targets.

#include <optional>
#include <string>
#include <vector>

#include "coe/motif.hpp"

namespace exa::coe {

/// A project-specific figure of merit (e.g. GESTS' N^3 / t_wall).
struct FigureOfMerit {
  std::string definition;  ///< human-readable formula
  std::string unit;
  bool higher_is_better = true;
};

/// One FOM measurement on a named machine at a point in the project.
struct Measurement {
  std::string machine;
  int year = 0;
  double value = 0.0;
  std::string note;
};

/// Funding/readiness program an application belongs to (§3).
enum class Program { kCaar, kEcpAd, kEcpSt, kOther };

[[nodiscard]] std::string to_string(Program p);

/// Readiness phase: §6's observed order — functionality problems first,
/// then missing features, then performance problems.
enum class ReadinessPhase {
  kNotStarted,
  kFunctionality,   ///< getting correct answers at all
  kMissingFeatures, ///< APIs/library coverage gaps
  kPerformance,     ///< tuning toward the FOM target
  kReady,           ///< challenge problem met at scale
};

[[nodiscard]] std::string to_string(ReadinessPhase p);

/// One application's readiness record.
class Application {
 public:
  Application(std::string name, std::string domain, Program program);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& domain() const { return domain_; }
  [[nodiscard]] Program program() const { return program_; }

  Application& set_fom(FigureOfMerit fom);
  Application& set_target_speedup(double target);
  Application& add_motif(Motif m);
  Application& add_approach(PortingApproach a);
  Application& set_phase(ReadinessPhase phase);
  Application& add_measurement(Measurement m);

  [[nodiscard]] const std::optional<FigureOfMerit>& fom() const { return fom_; }
  [[nodiscard]] double target_speedup() const { return target_speedup_; }
  [[nodiscard]] const std::vector<Motif>& motifs() const { return motifs_; }
  [[nodiscard]] bool has_motif(Motif m) const;
  [[nodiscard]] const std::vector<PortingApproach>& approaches() const {
    return approaches_;
  }
  [[nodiscard]] ReadinessPhase phase() const { return phase_; }
  [[nodiscard]] const std::vector<Measurement>& measurements() const {
    return measurements_;
  }

  /// Latest measurement on `machine`, if any.
  [[nodiscard]] std::optional<Measurement> latest_on(
      const std::string& machine) const;
  /// Measured speed-up between two machines (latest entries); nullopt when
  /// either is missing. Respects higher/lower-is-better.
  [[nodiscard]] std::optional<double> speedup(
      const std::string& baseline_machine,
      const std::string& target_machine) const;
  /// True when the measured speed-up meets the stated target.
  [[nodiscard]] bool met_target(const std::string& baseline_machine,
                                const std::string& target_machine) const;

 private:
  std::string name_;
  std::string domain_;
  Program program_;
  std::optional<FigureOfMerit> fom_;
  double target_speedup_ = 0.0;
  std::vector<Motif> motifs_;
  std::vector<PortingApproach> approaches_;
  ReadinessPhase phase_ = ReadinessPhase::kNotStarted;
  std::vector<Measurement> measurements_;
};

}  // namespace exa::coe
