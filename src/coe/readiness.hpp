#pragma once
/// \file readiness.hpp
/// Early-access platform assessment (§4) and the issue-discovery pipeline
/// (§6: early access surfaced "A) functionality problems, B) missing
/// features, and C) performance problems, typically in this order").

#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "support/table.hpp"

namespace exa::coe {

/// How faithfully tuning on an early-access system transfers to the target.
struct GenerationAssessment {
  std::string machine;
  int year = 0;
  /// GPU architecture similarity to the target device, in [0, 1]:
  /// vendor/ISA family, wavefront width, peak & bandwidth ratios, launch
  /// latency. 1.0 = identical part (Crusher vs Frontier).
  double arch_fidelity = 0.0;
  /// Fraction of target scale available for scaling studies.
  double scale_fraction = 0.0;
  /// Years of lead time before the target system's deployment.
  int lead_time_years = 0;
};

[[nodiscard]] GenerationAssessment assess_generation(
    const arch::Machine& early, const arch::Machine& target);

/// Table over the three EAS generations against Frontier.
[[nodiscard]] support::Table early_access_table();

/// Issue categories in the order early access surfaces them (§6).
enum class IssueCategory { kFunctionality = 0, kMissingFeature = 1, kPerformance = 2 };

[[nodiscard]] std::string to_string(IssueCategory c);

struct Issue {
  IssueCategory category = IssueCategory::kFunctionality;
  std::string machine;
  int quarter_found = 0;  ///< project quarter (0-based)
  bool resolved = false;
  std::string summary;
};

/// A log of issues found across the readiness project, with the §6
/// ordering statistic.
class IssueLog {
 public:
  void add(Issue issue);
  [[nodiscard]] const std::vector<Issue>& issues() const { return issues_; }
  [[nodiscard]] std::size_t count(IssueCategory c) const;
  /// Mean discovery quarter per category; §6 predicts
  /// functionality <= missing-feature <= performance.
  [[nodiscard]] double mean_quarter(IssueCategory c) const;
  /// True when the category means respect the §6 ordering.
  [[nodiscard]] bool follows_discovery_order() const;
  [[nodiscard]] double resolution_rate() const;

 private:
  std::vector<Issue> issues_;
};

}  // namespace exa::coe
