#pragma once
/// \file registry.hpp
/// Registry of applications under readiness tracking, pre-populated with
/// the paper's ten applications and their Table 1 motif assignments, plus
/// the report emitters that regenerate Table 1 and Table 2.

#include <string>
#include <vector>

#include "coe/application.hpp"
#include "support/table.hpp"

namespace exa::coe {

class Registry {
 public:
  Application& add(Application app);
  [[nodiscard]] const std::vector<Application>& applications() const {
    return apps_;
  }
  [[nodiscard]] Application* find(const std::string& name);
  [[nodiscard]] const Application* find(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return apps_.size(); }

  /// The paper's ten applications with domains, programs, porting
  /// approaches, and Table 1 motif assignments.
  [[nodiscard]] static Registry paper_applications();

  /// Table 1: Application Porting Motifs (motif -> application list).
  [[nodiscard]] support::Table table1_motifs() const;
  /// Table 2: speed-ups between two machines from recorded measurements.
  [[nodiscard]] support::Table table2_speedups(
      const std::string& baseline_machine,
      const std::string& target_machine) const;

 private:
  std::vector<Application> apps_;
};

}  // namespace exa::coe
