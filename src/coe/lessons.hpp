#pragma once
/// \file lessons.hpp
/// The §5 dissemination pipeline as code: hackathons surface lessons,
/// lessons flow to webinars, and distilled lessons land in the user guide
/// ("the lessons learned from the hackathons were then disseminated ...
/// through special webinar sessions. Then the information was further
/// distilled into new sections in the user guide").

#include <string>
#include <vector>

#include "support/table.hpp"

namespace exa::coe {

/// Where a lesson has been shared so far, in escalation order.
enum class Dissemination {
  kSupportTicket = 0,  ///< one team knows
  kHackathon = 1,      ///< the teams in the room know
  kWebinar = 2,        ///< all early users know
  kUserGuide = 3,      ///< every current and future user knows
};

[[nodiscard]] std::string to_string(Dissemination d);

struct Lesson {
  std::string topic;        ///< e.g. "GPU bindings", "atomics", "HIP API coverage"
  std::string summary;
  std::string source_app;   ///< application that hit it first
  Dissemination reach = Dissemination::kSupportTicket;
  /// Teams that independently re-discovered the issue before it reached
  /// them — the §6 cost the Confluence pages existed to avoid.
  int duplicate_triages = 0;
};

/// The knowledge base the COE maintained (ticket system + Confluence +
/// user guide, collapsed into one store).
class LessonBook {
 public:
  /// Records a new lesson (or a re-discovery of an existing topic: bumps
  /// duplicate_triages when the topic is already known and returns false).
  bool record(Lesson lesson);
  /// Promotes a topic one dissemination level (hackathon -> webinar ->
  /// user guide); returns the new level.
  Dissemination promote(const std::string& topic);

  [[nodiscard]] const std::vector<Lesson>& lessons() const { return lessons_; }
  [[nodiscard]] const Lesson* find(const std::string& topic) const;
  [[nodiscard]] std::size_t count_at(Dissemination d) const;
  /// Total duplicated triage effort across topics.
  [[nodiscard]] int duplicate_triages() const;

  /// Renders the user-guide section: every lesson promoted all the way.
  [[nodiscard]] support::Table user_guide() const;
  /// The paper's §5 seeded knowledge base (quick-start-guide era lessons).
  [[nodiscard]] static LessonBook paper_lessons();

 private:
  std::vector<Lesson> lessons_;
};

}  // namespace exa::coe
