#include "coe/registry.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace exa::coe {

Application& Registry::add(Application app) {
  EXA_REQUIRE_MSG(find(app.name()) == nullptr,
                  "duplicate application: " + app.name());
  apps_.push_back(std::move(app));
  return apps_.back();
}

Application* Registry::find(const std::string& name) {
  for (auto& a : apps_) {
    if (a.name() == name) return &a;
  }
  return nullptr;
}

const Application* Registry::find(const std::string& name) const {
  for (const auto& a : apps_) {
    if (a.name() == name) return &a;
  }
  return nullptr;
}

Registry Registry::paper_applications() {
  Registry r;
  using M = Motif;
  using A = PortingApproach;

  r.add(Application("GAMESS", "quantum chemistry", Program::kEcpAd)
            .set_fom({"fragment RI-MP2 throughput", "fragments/s"})
            .set_target_speedup(4.0)
            .add_motif(M::kCudaHipPorting)
            .add_motif(M::kLibraryTuning)
            .add_approach(A::kHip));
  r.add(Application("LSMS", "first-principles materials", Program::kCaar)
            .set_fom({"atom-scattering solves per second", "solves/s"})
            .set_target_speedup(4.0)
            .add_motif(M::kLibraryTuning)
            .add_motif(M::kAlgorithmicOptimizations)
            .add_approach(A::kHip));
  r.add(Application("GESTS", "turbulence DNS", Program::kCaar)
            .set_fom({"N^3 / t_wall", "grid-points/s"})
            .set_target_speedup(4.0)
            .add_motif(M::kLibraryTuning)
            .add_motif(M::kPerformancePortability)
            .add_approach(A::kOpenMpOffload));
  r.add(Application("ExaSky", "cosmology", Program::kEcpAd)
            .set_fom({"particle-steps per second", "particles/s"})
            .set_target_speedup(4.0)
            .add_motif(M::kPerformancePortability)
            .add_motif(M::kAlgorithmicOptimizations)
            .add_approach(A::kHip)
            .add_approach(A::kOpenMpOffload));
  r.add(Application("E3SM", "earth system model", Program::kEcpAd)
            .set_fom({"simulated years per day", "SYPD"})
            .set_target_speedup(4.0)
            .add_motif(M::kPerformancePortability)
            .add_motif(M::kKernelFusionFission)
            .add_motif(M::kAlgorithmicOptimizations)
            .add_approach(A::kKokkos)
            .add_approach(A::kYakl));
  r.add(Application("CoMet", "comparative genomics", Program::kCaar)
            .set_fom({"comparisons per second", "ops/s"})
            .set_target_speedup(4.0)
            .add_motif(M::kCudaHipPorting)
            .add_motif(M::kLibraryTuning)
            .add_motif(M::kAlgorithmicOptimizations)
            .add_approach(A::kCudaMacroCompat));
  r.add(Application("NuCCOR", "nuclear structure", Program::kCaar)
            .set_fom({"coupled-cluster iterations per hour", "iters/h"})
            .set_target_speedup(4.0)
            .add_motif(M::kCudaHipPorting)
            .add_motif(M::kPerformancePortability)
            .add_approach(A::kPluginAbstraction));
  r.add(Application("Pele", "reactive-flow combustion", Program::kEcpAd)
            .set_fom({"cell-updates per second", "cells/s"})
            .set_target_speedup(4.0)
            .add_motif(M::kPerformancePortability)
            .add_motif(M::kKernelFusionFission)
            .add_motif(M::kAlgorithmicOptimizations)
            .add_approach(A::kAmrexAbstraction));
  r.add(Application("COAST", "graph analytics / literature mining",
                    Program::kOther)
            .set_fom({"path relaxations per second", "flop/s"})
            .set_target_speedup(4.0)
            .add_motif(M::kCudaHipPorting)
            .add_approach(A::kHip));
  r.add(Application("LAMMPS", "molecular dynamics", Program::kEcpAd)
            .set_fom({"atom-steps per second", "atom-steps/s"})
            .set_target_speedup(4.0)
            .add_motif(M::kLibraryTuning)
            .add_motif(M::kKernelFusionFission)
            .add_motif(M::kAlgorithmicOptimizations)
            .add_approach(A::kKokkos));
  return r;
}

support::Table Registry::table1_motifs() const {
  support::Table t("Table 1: Application Porting Motifs");
  t.set_header({"Porting Motif", "Applications"});
  t.set_alignment({support::Align::kLeft, support::Align::kLeft});
  for (const Motif m : all_motifs()) {
    std::ostringstream apps;
    bool first = true;
    for (const auto& a : apps_) {
      if (!a.has_motif(m)) continue;
      if (!first) apps << ", ";
      apps << a.name();
      first = false;
    }
    t.add_row({to_string(m), apps.str()});
  }
  return t;
}

support::Table Registry::table2_speedups(
    const std::string& baseline_machine,
    const std::string& target_machine) const {
  support::Table t("Table 2: Observed application speed-ups from " +
                   baseline_machine + " to " + target_machine);
  t.set_header({"Application", "Measured Speed-up (" + target_machine + "/" +
                                   baseline_machine + ")",
                "Target", "Met?"});
  for (const auto& a : apps_) {
    const auto s = a.speedup(baseline_machine, target_machine);
    if (!s.has_value()) continue;
    t.add_row({a.name(), support::Table::cell(*s, 1),
               support::Table::cell(a.target_speedup(), 1),
               a.met_target(baseline_machine, target_machine) ? "yes" : "no"});
  }
  return t;
}

}  // namespace exa::coe
