#include "coe/lessons.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace exa::coe {

std::string to_string(Dissemination d) {
  switch (d) {
    case Dissemination::kSupportTicket: return "support ticket";
    case Dissemination::kHackathon: return "hackathon";
    case Dissemination::kWebinar: return "webinar";
    case Dissemination::kUserGuide: return "user guide";
  }
  return "?";
}

bool LessonBook::record(Lesson lesson) {
  EXA_REQUIRE(!lesson.topic.empty());
  for (auto& existing : lessons_) {
    if (existing.topic == lesson.topic) {
      ++existing.duplicate_triages;
      return false;
    }
  }
  lessons_.push_back(std::move(lesson));
  return true;
}

Dissemination LessonBook::promote(const std::string& topic) {
  for (auto& lesson : lessons_) {
    if (lesson.topic != topic) continue;
    if (lesson.reach != Dissemination::kUserGuide) {
      lesson.reach =
          static_cast<Dissemination>(static_cast<int>(lesson.reach) + 1);
    }
    return lesson.reach;
  }
  throw support::Error("unknown lesson topic: " + topic);
}

const Lesson* LessonBook::find(const std::string& topic) const {
  for (const auto& lesson : lessons_) {
    if (lesson.topic == topic) return &lesson;
  }
  return nullptr;
}

std::size_t LessonBook::count_at(Dissemination d) const {
  return static_cast<std::size_t>(
      std::count_if(lessons_.begin(), lessons_.end(),
                    [d](const Lesson& l) { return l.reach == d; }));
}

int LessonBook::duplicate_triages() const {
  int total = 0;
  for (const auto& l : lessons_) total += l.duplicate_triages;
  return total;
}

support::Table LessonBook::user_guide() const {
  support::Table t("User guide: lessons learned (fully disseminated)");
  t.set_header({"Topic", "Guidance", "First hit by"});
  t.set_alignment({support::Align::kLeft, support::Align::kLeft,
                   support::Align::kLeft});
  for (const auto& l : lessons_) {
    if (l.reach != Dissemination::kUserGuide) continue;
    t.add_row({l.topic, l.summary, l.source_app});
  }
  return t;
}

LessonBook LessonBook::paper_lessons() {
  LessonBook book;
  auto add = [&book](const char* topic, const char* summary, const char* app,
                     Dissemination reach) {
    Lesson l;
    l.topic = topic;
    l.summary = summary;
    l.source_app = app;
    l.reach = reach;
    book.record(std::move(l));
  };
  add("persistent TARGET DATA regions",
      "map key arrays once; synchronize with TARGET UPDATE", "GESTS",
      Dissemination::kUserGuide);
  add("GPU-aware MPI via USE_DEVICE_PTR",
      "pass device pointers straight to MPI inside data regions", "GESTS",
      Dissemination::kUserGuide);
  add("HIP API coverage expectations",
      "not every latest-CUDA feature exists in HIP; check before porting",
      "SHOC", Dissemination::kUserGuide);
  add("wavefront width 64",
      "32-lane-tuned interaction lists underfill AMD wavefronts", "ExaSky",
      Dissemination::kWebinar);
  add("kernel launch latency",
      "queue kernels asynchronously on one stream; fuse small kernels",
      "E3SM", Dissemination::kUserGuide);
  add("register spills",
      "watch vgpr_spill_count in assembly dumps; fission huge kernels",
      "LAMMPS", Dissemination::kWebinar);
  add("CPU/GPU binding and NUMA affinity",
      "bind ranks to the GCD nearest their NUMA domain", "Pele",
      Dissemination::kUserGuide);
  add("HIP + OpenMP in one compilation unit",
      "split HIP and OpenMP offload code into separate TUs on early "
      "compilers",
      "ExaSky", Dissemination::kHackathon);
  return book;
}

}  // namespace exa::coe
