#pragma once
/// \file motif.hpp
/// The porting motifs of Table 1 and the porting-strategy taxonomy of §2/§3.

#include <string>
#include <vector>

namespace exa::coe {

/// Row labels of Table 1.
enum class Motif {
  kCudaHipPorting,
  kLibraryTuning,
  kPerformancePortability,
  kKernelFusionFission,
  kAlgorithmicOptimizations,
};

[[nodiscard]] std::string to_string(Motif m);
[[nodiscard]] const std::vector<Motif>& all_motifs();

/// How a code targets the GPU (§2, §3).
enum class PortingApproach {
  kHip,            ///< direct HIP (possibly hipify'd from CUDA)
  kCudaMacroCompat,///< CUDA source + macro header (Cholla strategy)
  kOpenMpOffload,  ///< OpenMP target offload
  kKokkos,         ///< C++ abstraction framework
  kYakl,
  kAmrexAbstraction,
  kPluginAbstraction,  ///< NuCCOR-style factory/plugin layer
};

[[nodiscard]] std::string to_string(PortingApproach a);

}  // namespace exa::coe
