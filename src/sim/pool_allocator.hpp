#pragma once
/// \file pool_allocator.hpp
/// A real first-fit free-list sub-allocator over a fixed arena — the
/// YAKL-style transparent device memory pool the E3SM section (§3.5)
/// credits with making frequent allocation/deallocation "non-blocking and
/// very cheap". The runtime uses it for device allocations when pooling is
/// enabled; the E3SM latency bench compares pool vs. direct allocation.

#include <cstdint>
#include <map>
#include <optional>

namespace exa::sim {

/// First-fit free-list sub-allocator over a fixed arena (offsets, not
/// pointers — the caller owns the backing storage).
class PoolAllocator {
 public:
  /// Creates a pool managing `capacity_bytes`, serving allocations aligned
  /// to `alignment` (power of two).
  explicit PoolAllocator(std::uint64_t capacity_bytes,
                         std::uint64_t alignment = 256);

  /// Allocates `bytes` (rounded up to alignment); returns the arena offset
  /// or nullopt when no sufficient contiguous block exists.
  [[nodiscard]] std::optional<std::uint64_t> allocate(std::uint64_t bytes);

  /// Returns a block; offset must be a live allocation. Coalesces with
  /// free neighbors.
  void deallocate(std::uint64_t offset);

  /// True when an allocate(bytes) call would succeed right now (a
  /// sufficiently large contiguous free block exists). Lets callers charge
  /// a transient allocate+free without mutating the free list.
  [[nodiscard]] bool can_allocate(std::uint64_t bytes) const {
    return bytes > 0 && align_up(bytes) <= largest_free_block();
  }

  /// Total arena size, in bytes.
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  /// Bytes currently allocated (after alignment rounding).
  [[nodiscard]] std::uint64_t bytes_in_use() const { return in_use_; }
  /// Peak of bytes_in_use() over the pool's lifetime, in bytes.
  [[nodiscard]] std::uint64_t high_water() const { return high_water_; }
  /// Number of live allocations.
  [[nodiscard]] std::size_t live_allocations() const { return live_.size(); }
  /// Number of blocks on the free list (fragmentation indicator).
  [[nodiscard]] std::size_t free_blocks() const { return free_.size(); }
  /// Largest single allocation currently satisfiable.
  [[nodiscard]] std::uint64_t largest_free_block() const;
  /// 1 - largest_free/total_free; 0 when free space is one block.
  [[nodiscard]] double fragmentation() const;

 private:
  std::uint64_t align_up(std::uint64_t n) const {
    return (n + alignment_ - 1) & ~(alignment_ - 1);
  }

  std::uint64_t capacity_;
  std::uint64_t alignment_;
  std::uint64_t in_use_ = 0;
  std::uint64_t high_water_ = 0;
  std::map<std::uint64_t, std::uint64_t> free_;  ///< offset -> size
  std::map<std::uint64_t, std::uint64_t> live_;  ///< offset -> size
};

}  // namespace exa::sim
