#pragma once
/// \file occupancy.hpp
/// GPU occupancy calculator: the same resource calculus vendor occupancy
/// tools implement. Occupancy limits latency hiding; the exec model maps
/// it to a throughput efficiency. The paper's register-pressure stories
/// (E3SM kernel fission §3.5, ReaxFF low occupancy §3.10.2, Pele 18k-register
/// chemistry kernels §3.8) are all driven by this calculation.

#include <string>

#include "arch/gpu_arch.hpp"
#include "sim/kernel_profile.hpp"

namespace exa::sim {

/// What bounded the achieved occupancy.
enum class OccupancyLimit {
  kThreads,    ///< per-CU resident-thread ceiling
  kBlocks,     ///< per-CU resident-block ceiling
  kRegisters,  ///< register file exhausted
  kLds,        ///< LDS / shared memory exhausted
};

/// Human-readable name of an occupancy limiter (for reports).
[[nodiscard]] std::string to_string(OccupancyLimit limit);

/// Result of the occupancy calculation for one kernel/launch pair.
struct Occupancy {
  /// Resident threads per CU divided by the architecture maximum, in (0, 1].
  double fraction = 1.0;
  /// Blocks simultaneously resident on one CU.
  int resident_blocks_per_cu = 0;
  /// The resource that bounded `fraction`.
  OccupancyLimit limit = OccupancyLimit::kThreads;
  /// Registers the compiler must spill per thread (requested minus the
  /// architectural per-thread maximum); 0 when everything fits.
  int spilled_registers_per_thread = 0;
  /// Fraction of the device's CUs the grid can cover (launch-width / tail
  /// effect): min(1, blocks / CUs). A small grid leaves CUs idle without
  /// slowing the CUs it does use.
  double cu_utilization = 1.0;
};

/// Computes occupancy for a kernel/launch pair on `gpu`.
/// Preconditions: block_threads > 0 and <= architecture max.
[[nodiscard]] Occupancy compute_occupancy(const arch::GpuArch& gpu,
                                          const KernelProfile& profile,
                                          const LaunchConfig& launch);

/// Maps an occupancy fraction to a latency-hiding throughput efficiency in
/// (0, 1]. Saturating exponential: low occupancy starves the pipelines,
/// ~40% occupancy is usually enough to hide latency.
[[nodiscard]] double occupancy_efficiency(double occupancy_fraction);

}  // namespace exa::sim
