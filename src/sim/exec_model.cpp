#include "sim/exec_model.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace exa::sim {

double active_lane_fraction(double coherent_run_length, int wavefront_size) {
  EXA_REQUIRE(wavefront_size > 0);
  if (coherent_run_length <= 0.0) return 1.0;  // fully convergent
  return std::min(1.0, coherent_run_length / static_cast<double>(wavefront_size));
}

KernelTiming kernel_timing(const arch::GpuArch& gpu,
                           const KernelProfile& profile,
                           const LaunchConfig& launch,
                           const ExecTuning& tuning) {
  EXA_REQUIRE(profile.compute_efficiency > 0.0 &&
              profile.compute_efficiency <= 1.0);
  EXA_REQUIRE(profile.memory_efficiency > 0.0 &&
              profile.memory_efficiency <= 1.0);

  KernelTiming t;
  t.launch_s = gpu.kernel_launch_latency_s;
  t.occupancy = compute_occupancy(gpu, profile, launch);
  t.active_lane_fraction =
      active_lane_fraction(profile.coherent_run_length, gpu.wavefront_size);

  const double occ_eff = occupancy_efficiency(t.occupancy.fraction);
  // Compute throughput scales with the CUs the grid covers; a handful of
  // CUs can still draw a disproportionate share of HBM bandwidth.
  const double cu_frac = t.occupancy.cu_utilization;
  const double bw_frac = std::min(1.0, 4.0 * cu_frac);

  // Arithmetic: components serialize on the issue pipes. Divergence only
  // throttles the SIMT vector pipes; matrix-core ops are issued per
  // wavefront and modeled as unaffected by intra-wavefront divergence.
  for (const auto& w : profile.work) {
    if (w.flops <= 0.0) continue;
    const double peak = gpu.peak_flops(w.dtype, w.matrix_cores);
    const double divergence = w.matrix_cores ? 1.0 : t.active_lane_fraction;
    const double fma_factor =
        (w.fma || w.matrix_cores) ? 1.0 : gpu.non_fma_fraction;
    const double rate = peak * profile.compute_efficiency * occ_eff *
                        divergence * fma_factor * cu_frac;
    EXA_ASSERT(rate > 0.0);
    t.compute_s += w.flops / rate;
  }

  // Memory: profile traffic plus register-spill scratch traffic. Spills
  // move 4-byte registers; each spilled register is written once and
  // reloaded (spill_accesses - 1) times on average.
  const double threads = static_cast<double>(launch.total_threads());
  t.spill_bytes = static_cast<double>(t.occupancy.spilled_registers_per_thread) *
                  4.0 * threads * tuning.spill_accesses *
                  tuning.spill_traffic_multiplier;
  const double bw = gpu.hbm_bandwidth_bytes_per_s *
                    profile.memory_efficiency * occ_eff * bw_frac;
  EXA_ASSERT(bw > 0.0);
  t.memory_s = (profile.total_bytes() + t.spill_bytes) / bw;

  t.total_s = t.launch_s + kQaMutationCostScale * std::max(t.compute_s, t.memory_s);
  return t;
}

double transfer_time(const arch::HostLink& link, double bytes) {
  EXA_REQUIRE(bytes >= 0.0);
  EXA_REQUIRE(link.bandwidth_bytes_per_s > 0.0);
  return link.latency_s + bytes / link.bandwidth_bytes_per_s;
}

}  // namespace exa::sim
