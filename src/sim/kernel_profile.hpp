#pragma once
/// \file kernel_profile.hpp
/// Cost descriptors for simulated GPU kernels.
///
/// Every kernel the runtime launches carries a KernelProfile describing the
/// work one launch performs: flops by data type, bytes moved through HBM,
/// register/LDS pressure, and branch-divergence structure. The execution
/// model (exec_model.hpp) turns a profile plus a launch configuration plus
/// a GpuArch into virtual execution time.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "arch/dtype.hpp"

namespace exa::sim {

/// One arithmetic component of a kernel (kernels may mix types, e.g. the
/// LSMS assembly kernels mix FP64 math with heavy INT32 index arithmetic,
/// and CoMet mixes FP16 matrix products with FP32 accumulation).
struct FlopWork {
  arch::DType dtype = arch::DType::kF64;  ///< data type of this component
  double flops = 0.0;          ///< total operations for the launch (flop)
  bool matrix_cores = false;   ///< eligible for tensor/matrix units
  /// False for op mixes that cannot use fused multiply-add (min-plus
  /// relaxations, compares); throughput drops to arch.non_fma_fraction.
  bool fma = true;

  friend bool operator==(const FlopWork&, const FlopWork&) = default;
};

/// Grid/block shape of a launch (flattened to 1-D; the model only needs
/// totals and the block size).
struct LaunchConfig {
  std::uint64_t blocks = 1;           ///< grid size in blocks
  std::uint32_t block_threads = 256;  ///< threads per block

  /// Total work-items in the launch (blocks × block_threads).
  [[nodiscard]] std::uint64_t total_threads() const {
    return blocks * block_threads;
  }

  friend bool operator==(const LaunchConfig&, const LaunchConfig&) = default;
};

/// Process-wide kernel-label interning: returns a stable std::string equal
/// to `label`; repeated calls with the same text return the same object, so
/// hot launch paths can keep a long-lived reference (or key caches by
/// address) instead of copying the name into every KernelProfile.
/// Thread-safe; interned labels live until process exit.
[[nodiscard]] const std::string& interned_label(std::string_view label);

/// Cost descriptor for one kernel launch.
struct KernelProfile {
  std::string name = "kernel";  ///< label for traces, caches, and reports

  std::vector<FlopWork> work;   ///< arithmetic components (may mix types)

  /// HBM read traffic for the launch, in bytes actually reaching DRAM
  /// (after cache filtering — profiles encode the *effective* traffic).
  double bytes_read = 0.0;
  /// HBM write traffic for the launch, in bytes (same convention).
  double bytes_written = 0.0;

  /// Architectural registers requested per thread (drives occupancy/spills).
  int registers_per_thread = 32;
  /// LDS / shared-memory footprint per block, in bytes.
  std::uint64_t lds_per_block_bytes = 0;

  /// Branch-divergence structure: average run length (in work-items) of
  /// convergent work along the thread index. Active-lane fraction on an
  /// architecture with wavefront width W is min(1, run/W). 0 disables the
  /// model (fully convergent). This is what makes the ReaxFF torsion kernel
  /// slow (§3.10.2) and what the wavefront-64-vs-32 ExaSky gravity-kernel
  /// observation (§3.4) falls out of.
  double coherent_run_length = 0.0;

  /// Fraction of peak the kernel's instruction mix can reach when compute
  /// bound (library tuning quality; vendor-tuned GEMMs hit ~0.9, naive
  /// kernels ~0.6).
  double compute_efficiency = 0.8;
  /// Fraction of peak HBM bandwidth reachable when memory bound.
  double memory_efficiency = 0.8;

  /// Convenience: total flops over all components.
  [[nodiscard]] double total_flops() const {
    double s = 0.0;
    for (const auto& w : work) s += w.flops;
    return s;
  }
  /// Total HBM traffic (read + written), in bytes.
  [[nodiscard]] double total_bytes() const { return bytes_read + bytes_written; }
  /// Arithmetic intensity in flop/byte (infinity if no memory traffic).
  [[nodiscard]] double arithmetic_intensity() const;

  // -- fluent builders ------------------------------------------------------
  /// Sets the kernel label.
  KernelProfile& with_name(std::string n) {
    name = std::move(n);
    return *this;
  }
  /// Appends an FMA-capable arithmetic component of `f` flops of type `t`.
  KernelProfile& add_flops(arch::DType t, double f, bool matrix = false) {
    work.push_back({t, f, matrix, true});
    return *this;
  }
  /// Appends a non-FMA component (compares, min-plus) of `f` flops.
  KernelProfile& add_flops_nofma(arch::DType t, double f) {
    work.push_back({t, f, false, false});
    return *this;
  }
  /// Sets effective HBM traffic, in bytes read / bytes written.
  KernelProfile& with_bytes(double read, double written) {
    bytes_read = read;
    bytes_written = written;
    return *this;
  }
  /// Sets registers requested per thread.
  KernelProfile& with_registers(int regs) {
    registers_per_thread = regs;
    return *this;
  }
  /// Sets the per-block LDS footprint, in bytes.
  KernelProfile& with_lds(std::uint64_t bytes) {
    lds_per_block_bytes = bytes;
    return *this;
  }
  /// Sets the convergent-run length (work-items; 0 = fully convergent).
  KernelProfile& with_divergence(double run_length) {
    coherent_run_length = run_length;
    return *this;
  }
  /// Sets the compute- and memory-bound fractions of peak, in (0, 1].
  KernelProfile& with_efficiency(double compute, double memory) {
    compute_efficiency = compute;
    memory_efficiency = memory;
    return *this;
  }
};

}  // namespace exa::sim
