#include "sim/occupancy.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace exa::sim {

std::string to_string(OccupancyLimit limit) {
  switch (limit) {
    case OccupancyLimit::kThreads: return "threads";
    case OccupancyLimit::kBlocks: return "blocks";
    case OccupancyLimit::kRegisters: return "registers";
    case OccupancyLimit::kLds: return "lds";
  }
  return "?";
}

Occupancy compute_occupancy(const arch::GpuArch& gpu,
                            const KernelProfile& profile,
                            const LaunchConfig& launch) {
  EXA_REQUIRE(launch.block_threads > 0);
  EXA_REQUIRE_MSG(static_cast<int>(launch.block_threads) <=
                      gpu.max_threads_per_cu,
                  "block larger than a compute unit");
  EXA_REQUIRE(profile.registers_per_thread > 0);

  Occupancy occ;
  // Registers the hardware actually allocates per thread: the compiler
  // spills anything above the architectural maximum to scratch.
  const int allocated_regs =
      std::min(profile.registers_per_thread, gpu.max_registers_per_thread);
  occ.spilled_registers_per_thread =
      std::max(0, profile.registers_per_thread - gpu.max_registers_per_thread);

  // Blocks resident per CU under each resource constraint.
  const int by_threads =
      gpu.max_threads_per_cu / static_cast<int>(launch.block_threads);
  const int by_blocks = gpu.max_blocks_per_cu;
  const long regs_per_block =
      static_cast<long>(allocated_regs) * launch.block_threads;
  const int by_regs =
      regs_per_block > 0
          ? static_cast<int>(gpu.registers_per_cu / regs_per_block)
          : by_threads;
  const int by_lds =
      profile.lds_per_block_bytes > 0
          ? static_cast<int>(gpu.lds_per_cu_bytes / profile.lds_per_block_bytes)
          : by_blocks;

  int resident = by_threads;
  occ.limit = OccupancyLimit::kThreads;
  if (by_blocks < resident) {
    resident = by_blocks;
    occ.limit = OccupancyLimit::kBlocks;
  }
  if (by_regs < resident) {
    resident = by_regs;
    occ.limit = OccupancyLimit::kRegisters;
  }
  if (by_lds < resident) {
    resident = by_lds;
    occ.limit = OccupancyLimit::kLds;
  }
  resident = std::max(resident, 1);  // one block always runs (serialized)

  occ.resident_blocks_per_cu = resident;
  const double resident_threads =
      static_cast<double>(resident) * launch.block_threads;
  occ.fraction =
      std::min(1.0, resident_threads / static_cast<double>(gpu.max_threads_per_cu));

  // Launch-width ("tail") effect: a grid with fewer blocks than CUs leaves
  // compute units idle — why small boxes want fused launches (§3.8). The
  // per-CU residency also drops when a CU gets only one wave of blocks.
  occ.cu_utilization =
      std::min(1.0, static_cast<double>(launch.blocks) / gpu.compute_units);
  const double blocks_per_cu_available =
      static_cast<double>(launch.blocks) /
      std::max(1.0, std::min<double>(static_cast<double>(launch.blocks),
                                     gpu.compute_units));
  if (blocks_per_cu_available < resident) {
    occ.fraction = std::min(
        occ.fraction, blocks_per_cu_available * launch.block_threads /
                          static_cast<double>(gpu.max_threads_per_cu));
    occ.fraction = std::max(occ.fraction,
                            1.0 / static_cast<double>(gpu.max_threads_per_cu));
  }
  return occ;
}

double occupancy_efficiency(double occupancy_fraction) {
  EXA_REQUIRE(occupancy_fraction > 0.0 && occupancy_fraction <= 1.0);
  // 1 - exp(-occ/k): with k = 0.18, 25% occupancy gives ~75% efficiency,
  // 50% gives ~94%, full occupancy ~99.6%.
  constexpr double k = 0.18;
  return 1.0 - std::exp(-occupancy_fraction / k);
}

}  // namespace exa::sim
