#include "sim/node_sim.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/string_util.hpp"
#include "support/units.hpp"

namespace exa::sim {

NodeSim::NodeSim(const arch::Machine& machine) {
  EXA_REQUIRE_MSG(machine.node.has_gpu(), "NodeSim requires a GPU node");
  const int count = machine.node.gpus_per_node;
  devices_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    devices_.push_back(std::make_unique<DeviceSim>(*machine.node.gpu));
  }

  const bool amd = machine.node.gpu->vendor == arch::GpuVendor::kAmd;
  paired_gcds_ =
      amd && support::contains(machine.node.gpu->name, "MI250X") &&
      count % 2 == 0;
  if (paired_gcds_) {
    // In-package Infinity Fabric between the two GCDs of one MI250X: 4
    // links, ~200 GB/s each direction aggregated.
    in_module_ = {200.0 * support::GIGA, 1.0e-6};
    // Inter-module xGMI on the Frontier node: 50 GB/s per link.
    fabric_ = {50.0 * support::GIGA, 1.5e-6};
  } else if (amd) {
    fabric_ = {46.0 * support::GIGA, 1.5e-6};
    in_module_ = fabric_;
  } else {
    // Summit: NVLink 2.0 between GPUs of one socket group, 50 GB/s.
    fabric_ = {50.0 * support::GIGA, 1.3e-6};
    in_module_ = fabric_;
  }
}

DeviceSim& NodeSim::device(int index) {
  EXA_REQUIRE(index >= 0 && index < device_count());
  return *devices_[static_cast<std::size_t>(index)];
}

PeerLink NodeSim::link(int src, int dst) const {
  EXA_REQUIRE(src >= 0 && src < device_count());
  EXA_REQUIRE(dst >= 0 && dst < device_count());
  EXA_REQUIRE_MSG(src != dst, "peer link requires two distinct devices");
  if (paired_gcds_ && src / 2 == dst / 2) return in_module_;
  return fabric_;
}

SimTime NodeSim::peer_transfer(int src, int dst, double bytes,
                               StreamId src_stream, StreamId dst_stream) {
  EXA_REQUIRE(bytes >= 0.0);
  const PeerLink l = link(src, dst);
  const double duration = l.latency_s + bytes / l.bandwidth_bytes_per_s;

  DeviceSim& s = device(src);
  DeviceSim& d = device(dst);
  // The copy occupies both ends: it starts once both streams are free and
  // completes `duration` later on each.
  const SimTime start = std::max({s.stream_ready(src_stream),
                                  d.stream_ready(dst_stream), s.host_now(),
                                  d.host_now()});
  const SimTime done = start + duration;
  s.stream_wait_until(src_stream, done);
  d.stream_wait_until(dst_stream, done);
  return done;
}

void NodeSim::synchronize_node() {
  SimTime latest = 0.0;
  for (auto& dev : devices_) {
    dev->synchronize_all();
    latest = std::max(latest, dev->host_now());
  }
  for (auto& dev : devices_) {
    dev->host_advance(std::max(0.0, latest - dev->host_now()));
  }
}

SimTime NodeSim::node_now() const {
  SimTime latest = 0.0;
  for (const auto& dev : devices_) {
    latest = std::max(latest, dev->host_now());
  }
  return latest;
}

}  // namespace exa::sim
