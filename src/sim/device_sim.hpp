#pragma once
/// \file device_sim.hpp
/// Virtual-time device engine: streams, events, memory, and the host clock.
///
/// One DeviceSim models one GPU (one HIP/CUDA device). Kernels and
/// transfers are *scheduled* onto per-stream virtual timelines; the host
/// has its own clock. Asynchronous submissions cost the host only a small
/// submit overhead; synchronization joins the clocks. This is exactly the
/// machinery needed to reproduce the latency strategies of §3.5 (async
/// same-stream launches overlap launch overheads) and §3.8 (UVM removal,
/// fused launches).
///
/// Device allocations are *functionally* backed by host memory (kernels
/// execute for real on the host), while capacity and latency are accounted
/// against the modeled architecture.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "sim/exec_model.hpp"
#include "sim/kernel_profile.hpp"
#include "sim/pool_allocator.hpp"
#include "support/assert.hpp"

namespace exa::sim {

using SimTime = double;   ///< virtual seconds
using StreamId = int;     ///< 0 is the default stream
using EventId = int;      ///< handle returned by record_event()

/// Direction of a modeled memory copy.
enum class TransferKind {
  kHostToDevice,    ///< over the host link, host → HBM
  kDeviceToHost,    ///< over the host link, HBM → host
  kDeviceToDevice,  ///< within one device's HBM
};

/// Memory management behavior for device allocations.
enum class AllocMode {
  kDirect,  ///< hipMalloc-style: blocking, full alloc latency
  kPooled,  ///< YAKL-style pool: cheap, non-blocking
};

/// Aggregate counters for reports and tests.
struct DeviceCounters {
  std::uint64_t kernels_launched = 0;  ///< launches since construction
  std::uint64_t transfers = 0;         ///< explicit copies (all kinds)
  std::uint64_t allocs = 0;            ///< malloc_device calls
  std::uint64_t frees = 0;             ///< free_device calls
  double bytes_h2d = 0.0;              ///< host→device traffic, in bytes
  double bytes_d2h = 0.0;              ///< device→host traffic, in bytes
  double kernel_busy_s = 0.0;  ///< summed kernel execution time, in seconds
};

class ExecCostCache;

/// One simulated GPU: per-stream virtual timelines, events, host-backed
/// device memory, and a host clock. See the file comment for the model.
class DeviceSim {
 public:
  /// Builds a device of architecture `gpu` with empty timelines at t = 0.
  explicit DeviceSim(arch::GpuArch gpu);
  ~DeviceSim();

  DeviceSim(const DeviceSim&) = delete;
  DeviceSim& operator=(const DeviceSim&) = delete;

  /// The architecture this device charges time against.
  [[nodiscard]] const arch::GpuArch& gpu() const { return gpu_; }
  /// Current toolchain-quality knobs (read-only).
  [[nodiscard]] const ExecTuning& tuning() const { return tuning_; }
  /// Mutable tuning access bumps the cost epoch so externally cached
  /// timings (pfw launch states) revalidate.
  [[nodiscard]] ExecTuning& mutable_tuning();
  /// Lifetime aggregate counters (launches, transfers, bytes).
  [[nodiscard]] const DeviceCounters& counters() const { return counters_; }

  /// Identifies (device instance, tuning version): drawn from a global
  /// monotonic counter at construction and on every mutable_tuning() call,
  /// so an equal epoch guarantees the same GpuArch and ExecTuning. A
  /// caller that caches a KernelTiming for an unchanged profile may replay
  /// it through launch_prepared() while its saved epoch matches.
  [[nodiscard]] std::uint64_t cost_epoch() const { return cost_epoch_; }

  /// Name this device's trace tracks are grouped under (defaults to a
  /// unique "dev<N>"; hip::Runtime renames its devices "gpu<i>").
  void set_trace_name(std::string name) { trace_name_ = std::move(name); }
  /// The current trace-track group name.
  [[nodiscard]] const std::string& trace_name() const { return trace_name_; }

  // --- virtual clocks --------------------------------------------------
  /// The host's virtual clock, in seconds since construction.
  [[nodiscard]] SimTime host_now() const { return host_clock_; }
  /// Charges host-side work (CPU compute between API calls). Inline: this
  /// is on the per-API-call fast path.
  void host_advance(double seconds) {
    EXA_REQUIRE(seconds >= 0.0);
    host_clock_ += seconds;
  }
  /// Host-side cost of submitting any async operation (default 1 us).
  void set_submit_overhead(double seconds) { submit_overhead_s_ = seconds; }

  // --- streams & events -------------------------------------------------
  /// Creates a new stream whose timeline starts at the current host time.
  [[nodiscard]] StreamId create_stream();
  /// Destroys `stream` (must not be the default stream 0).
  void destroy_stream(StreamId stream);
  /// Time at which all work queued on `stream` completes.
  [[nodiscard]] SimTime stream_ready(StreamId stream) const;
  /// True when the stream has no pending work at the current host time.
  [[nodiscard]] bool stream_query(StreamId stream) const;
  /// Blocks the host until `stream` drains (host clock joins the stream's).
  void synchronize(StreamId stream);
  /// Blocks the host until every stream drains.
  void synchronize_all();

  /// Holds `stream` busy until virtual time `t` (used by cross-device
  /// couplings like NodeSim peer transfers).
  void stream_wait_until(StreamId stream, SimTime t);

  /// Records an event at `stream`'s current completion time.
  [[nodiscard]] EventId record_event(StreamId stream);
  /// Makes `stream` wait until `event`'s recorded time (cross-stream dep).
  void stream_wait_event(StreamId stream, EventId event);
  /// Blocks the host until `event`'s recorded time.
  void host_wait_event(EventId event);
  /// The virtual time (seconds) at which `event` was recorded.
  [[nodiscard]] SimTime event_time(EventId event) const;
  /// Virtual elapsed seconds between two recorded events.
  [[nodiscard]] double elapsed(EventId start, EventId stop) const;

  // --- kernels -----------------------------------------------------------
  /// Schedules a kernel on `stream`, returns its timing breakdown. The
  /// kernel starts at max(host_now + launch latency, stream ready); a busy
  /// stream therefore hides the launch latency of subsequent kernels.
  KernelTiming launch(StreamId stream, const KernelProfile& profile,
                      const LaunchConfig& launch_cfg);

  /// Schedules a launch whose timing was already computed (by a prior
  /// launch() under the same cost_epoch() and an unchanged profile):
  /// clock/stream/counter/trace bookkeeping only, no exec-model work. This
  /// is the steady-state half of the launch fast path.
  const KernelTiming& launch_prepared(StreamId stream,
                                      const KernelTiming& timing,
                                      const std::string& name);

  /// The exec-model cost of a launch is memoized on the cost-relevant
  /// content of (profile, launch config, tuning) — the GpuArch is fixed per
  /// DeviceSim — so the thousands of identical repeated launches in the
  /// latency benches skip the analytic model entirely. Memoized timings are
  /// bitwise identical to recomputed ones; the toggle exists for tests and
  /// for the dispatch_overhead bench's pre-memoization baseline.
  void set_cost_memo(bool enabled) { cost_memo_enabled_ = enabled; }
  /// Whether the content-keyed exec-model memo is active.
  [[nodiscard]] bool cost_memo_enabled() const { return cost_memo_enabled_; }
  /// Launches served from the memo.
  [[nodiscard]] std::uint64_t cost_memo_hits() const;
  /// Launches that ran the full exec model.
  [[nodiscard]] std::uint64_t cost_memo_misses() const;

  // --- transfers -----------------------------------------------------------
  /// Asynchronous copy on `stream`; returns completion time.
  SimTime transfer_async(StreamId stream, TransferKind kind, double bytes);
  /// Synchronous copy: blocks the host until complete.
  void transfer_sync(TransferKind kind, double bytes);
  /// Models a UVM page-fault migration of `bytes` (first touch): per-page-
  /// group fault latency plus reduced-bandwidth transfer, blocking the
  /// consuming stream.
  SimTime uvm_migrate(StreamId stream, TransferKind kind, double bytes);

  // --- memory ----------------------------------------------------------
  /// Selects the allocation mode; kPooled builds a pool of
  /// `pool_capacity_bytes` (bytes; 0 = the architecture's full HBM).
  void set_alloc_mode(AllocMode mode, std::uint64_t pool_capacity_bytes = 0);
  /// The active allocation mode.
  [[nodiscard]] AllocMode alloc_mode() const { return alloc_mode_; }
  /// Allocates device memory (host-backed); charges the mode's latency.
  /// Direct mode synchronizes the device first, as cudaMalloc/hipMalloc do.
  [[nodiscard]] void* malloc_device(std::uint64_t bytes);
  /// Frees a pointer returned by malloc_device; charges the mode's latency.
  void free_device(void* ptr);
  /// Charges the latency and capacity checks of an allocate-then-free pair
  /// in one call, without materializing the allocation: the virtual-time
  /// cost is identical to malloc_device + free_device, but pooled-mode
  /// capacity tracking (bytes_in_use / high_water) cannot transiently
  /// spike. Used by views whose buffers are host-backed and only the
  /// device-side *accounting* matters (pfw::create_device_view).
  void charge_transient_alloc(std::uint64_t bytes);
  /// Device bytes currently allocated (live allocations only).
  [[nodiscard]] std::uint64_t bytes_allocated() const { return bytes_allocated_; }
  /// Number of device allocations currently live — the simulator's own
  /// leak census, cross-checked by exa::check at teardown against the HIP
  /// pointer table (catches allocations made behind the shim's back).
  [[nodiscard]] std::size_t live_allocation_count() const {
    return allocations_.size();
  }
  /// The active pool (nullptr unless alloc_mode() is kPooled).
  [[nodiscard]] const PoolAllocator* pool() const { return pool_.get(); }

 private:
  struct Allocation {
    std::uint64_t bytes = 0;
    bool pooled = false;
    std::uint64_t pool_offset = 0;
  };

  SimTime& stream_ref(StreamId stream);
  [[nodiscard]] const SimTime& stream_ref(StreamId stream) const;
  /// Tracer track for work scheduled on `stream` ("<name>/s<id>").
  [[nodiscard]] std::string stream_track(StreamId stream) const;
  /// Emits a transfer span when tracing is enabled.
  void trace_transfer(const char* what, StreamId stream, SimTime start,
                      double duration, double bytes);
  /// Emits an allocation instant + bytes_allocated counter when tracing.
  void trace_alloc(const char* what, std::uint64_t bytes);

  std::string trace_name_;
  arch::GpuArch gpu_;
  ExecTuning tuning_;
  DeviceCounters counters_;

  bool cost_memo_enabled_ = true;
  std::unique_ptr<ExecCostCache> cost_cache_;
  std::uint64_t cost_epoch_ = 0;

  SimTime host_clock_ = 0.0;
  double submit_overhead_s_ = 1.0e-6;

  std::unordered_map<StreamId, SimTime> streams_;
  /// Node pointer for stream 0 (stable across rehash): the launch hot path
  /// skips the hash lookup for default-stream work.
  SimTime* default_stream_ = nullptr;
  StreamId next_stream_ = 1;
  std::vector<SimTime> events_;

  AllocMode alloc_mode_ = AllocMode::kDirect;
  std::unique_ptr<PoolAllocator> pool_;
  double pool_alloc_latency_s_ = 2.0e-7;  ///< pointer bump + free-list walk
  std::unordered_map<void*, Allocation> allocations_;
  std::uint64_t bytes_allocated_ = 0;
};

}  // namespace exa::sim
