#include "sim/device_sim.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "support/assert.hpp"
#include "support/units.hpp"
#include "trace/tracer.hpp"

namespace exa::sim {

namespace {
/// Distinct default trace names so concurrent DeviceSim instances (each
/// starting its virtual clocks at 0) land on separate timeline groups.
std::atomic<int> g_device_instances{0};
}  // namespace

DeviceSim::DeviceSim(arch::GpuArch gpu)
    : trace_name_("dev" + std::to_string(g_device_instances++)),
      gpu_(std::move(gpu)) {
  streams_.emplace(0, 0.0);  // default stream
}

DeviceSim::~DeviceSim() {
  for (auto& [ptr, alloc] : allocations_) std::free(ptr);
}

void DeviceSim::host_advance(double seconds) {
  EXA_REQUIRE(seconds >= 0.0);
  host_clock_ += seconds;
}

SimTime& DeviceSim::stream_ref(StreamId stream) {
  const auto it = streams_.find(stream);
  EXA_REQUIRE_MSG(it != streams_.end(), "unknown stream id");
  return it->second;
}

const SimTime& DeviceSim::stream_ref(StreamId stream) const {
  const auto it = streams_.find(stream);
  EXA_REQUIRE_MSG(it != streams_.end(), "unknown stream id");
  return it->second;
}

StreamId DeviceSim::create_stream() {
  const StreamId id = next_stream_++;
  // Stream creation is an API call with observable latency on real
  // runtimes; charge the submit overhead.
  host_clock_ += submit_overhead_s_;
  streams_.emplace(id, host_clock_);
  return id;
}

void DeviceSim::destroy_stream(StreamId stream) {
  EXA_REQUIRE_MSG(stream != 0, "the default stream cannot be destroyed");
  synchronize(stream);
  const auto erased = streams_.erase(stream);
  EXA_REQUIRE_MSG(erased == 1, "destroy of unknown stream");
}

SimTime DeviceSim::stream_ready(StreamId stream) const {
  return stream_ref(stream);
}

bool DeviceSim::stream_query(StreamId stream) const {
  return stream_ref(stream) <= host_clock_;
}

void DeviceSim::synchronize(StreamId stream) {
  host_clock_ = std::max(host_clock_, stream_ref(stream));
}

void DeviceSim::synchronize_all() {
  for (const auto& [id, ready] : streams_) {
    host_clock_ = std::max(host_clock_, ready);
  }
}

void DeviceSim::stream_wait_until(StreamId stream, SimTime t) {
  SimTime& ready = stream_ref(stream);
  ready = std::max(ready, t);
}

EventId DeviceSim::record_event(StreamId stream) {
  host_clock_ += submit_overhead_s_;
  events_.push_back(stream_ref(stream));
  return static_cast<EventId>(events_.size() - 1);
}

void DeviceSim::stream_wait_event(StreamId stream, EventId event) {
  host_clock_ += submit_overhead_s_;
  SimTime& ready = stream_ref(stream);
  ready = std::max(ready, event_time(event));
}

void DeviceSim::host_wait_event(EventId event) {
  host_clock_ = std::max(host_clock_, event_time(event));
}

SimTime DeviceSim::event_time(EventId event) const {
  EXA_REQUIRE(event >= 0 &&
              static_cast<std::size_t>(event) < events_.size());
  return events_[static_cast<std::size_t>(event)];
}

double DeviceSim::elapsed(EventId start, EventId stop) const {
  return event_time(stop) - event_time(start);
}

KernelTiming DeviceSim::launch(StreamId stream, const KernelProfile& profile,
                               const LaunchConfig& launch_cfg) {
  const KernelTiming timing = kernel_timing(gpu_, profile, launch_cfg, tuning_);
  host_clock_ += submit_overhead_s_;
  SimTime& ready = stream_ref(stream);
  // The kernel cannot start before the launch command reaches the device;
  // if the stream is already busy past that point the latency is hidden.
  const SimTime start = std::max(host_clock_ + timing.launch_s, ready);
  const double exec = timing.total_s - timing.launch_s;
  ready = start + exec;
  ++counters_.kernels_launched;
  counters_.kernel_busy_s += exec;
  if (auto& tracer = trace::Tracer::instance(); tracer.enabled()) {
    tracer.complete(profile.name.empty() ? "<kernel>" : profile.name,
                    stream_track(stream), start, exec, "kernel");
  }
  return timing;
}

std::string DeviceSim::stream_track(StreamId stream) const {
  return trace_name_ + "/s" + std::to_string(stream);
}

void DeviceSim::trace_transfer(const char* what, StreamId stream,
                               SimTime start, double duration, double bytes) {
  auto& tracer = trace::Tracer::instance();
  if (!tracer.enabled()) return;
  tracer.complete(std::string(what) + " " +
                      support::format_bytes(
                          static_cast<std::uint64_t>(std::max(0.0, bytes))),
                  stream_track(stream), start, duration, "transfer");
}

SimTime DeviceSim::transfer_async(StreamId stream, TransferKind kind,
                                  double bytes) {
  host_clock_ += submit_overhead_s_;
  SimTime& ready = stream_ref(stream);
  double duration = 0.0;
  switch (kind) {
    case TransferKind::kHostToDevice:
    case TransferKind::kDeviceToHost:
      duration = transfer_time(gpu_.host_link, bytes);
      break;
    case TransferKind::kDeviceToDevice:
      // On-device copies run at HBM read+write bandwidth.
      duration = gpu_.kernel_launch_latency_s +
                 2.0 * bytes / gpu_.hbm_bandwidth_bytes_per_s;
      break;
  }
  const SimTime start = std::max(host_clock_, ready);
  ready = start + duration;
  ++counters_.transfers;
  if (kind == TransferKind::kHostToDevice) counters_.bytes_h2d += bytes;
  if (kind == TransferKind::kDeviceToHost) counters_.bytes_d2h += bytes;
  trace_transfer(kind == TransferKind::kHostToDevice   ? "H2D"
                 : kind == TransferKind::kDeviceToHost ? "D2H"
                                                       : "D2D",
                 stream, start, duration, bytes);
  return ready;
}

void DeviceSim::transfer_sync(TransferKind kind, double bytes) {
  const SimTime done = transfer_async(0, kind, bytes);
  host_clock_ = std::max(host_clock_, done);
}

SimTime DeviceSim::uvm_migrate(StreamId stream, TransferKind kind,
                               double bytes) {
  // Faults are raised in page groups (driver batches ~2 MiB at a time) and
  // each batch pays the fault-handling latency; migrated data moves at a
  // reduced fraction of the link bandwidth.
  constexpr double kPageGroup = 2.0 * 1024 * 1024;
  constexpr double kUvmBandwidthFraction = 0.6;
  const double groups = std::max(1.0, std::ceil(bytes / kPageGroup));
  const double fault_cost = groups * gpu_.uvm_page_fault_latency_s;
  const double move_cost =
      bytes / (gpu_.host_link.bandwidth_bytes_per_s * kUvmBandwidthFraction);

  host_clock_ += submit_overhead_s_;
  SimTime& ready = stream_ref(stream);
  const SimTime start = std::max(host_clock_, ready);
  ready = start + fault_cost + move_cost;
  ++counters_.transfers;
  if (kind == TransferKind::kHostToDevice) counters_.bytes_h2d += bytes;
  if (kind == TransferKind::kDeviceToHost) counters_.bytes_d2h += bytes;
  trace_transfer("UVM", stream, start, fault_cost + move_cost, bytes);
  return ready;
}

void DeviceSim::set_alloc_mode(AllocMode mode,
                               std::uint64_t pool_capacity_bytes) {
  alloc_mode_ = mode;
  if (mode == AllocMode::kPooled) {
    if (pool_capacity_bytes == 0) pool_capacity_bytes = gpu_.hbm_capacity_bytes;
    EXA_REQUIRE_MSG(pool_capacity_bytes <= gpu_.hbm_capacity_bytes,
                    "pool larger than device memory");
    pool_ = std::make_unique<PoolAllocator>(pool_capacity_bytes);
  } else {
    EXA_REQUIRE_MSG(pool_ == nullptr || pool_->live_allocations() == 0,
                    "cannot disable pool with live pooled allocations");
    pool_.reset();
  }
}

void* DeviceSim::malloc_device(std::uint64_t bytes) {
  EXA_REQUIRE(bytes > 0);
  ++counters_.allocs;
  if (alloc_mode_ == AllocMode::kPooled) {
    EXA_ASSERT(pool_ != nullptr);
    const auto offset = pool_->allocate(bytes);
    if (!offset.has_value()) {
      throw support::Error("device pool out of memory: requested " +
                           support::format_bytes(bytes));
    }
    host_clock_ += pool_alloc_latency_s_;
    void* ptr = std::malloc(bytes);
    EXA_REQUIRE(ptr != nullptr);
    allocations_[ptr] = Allocation{bytes, true, *offset};
    // The arena itself was charged against device memory when created;
    // track logical usage for reporting.
    bytes_allocated_ += bytes;
    trace_alloc("pool alloc", bytes);
    return ptr;
  }

  if (bytes_allocated_ + bytes > gpu_.hbm_capacity_bytes) {
    throw support::Error("device out of memory: " +
                         support::format_bytes(bytes_allocated_ + bytes) +
                         " exceeds " +
                         support::format_bytes(gpu_.hbm_capacity_bytes) +
                         " on " + gpu_.name);
  }
  // hipMalloc/cudaMalloc are device-synchronizing, blocking calls — the
  // very latency the E3SM pool allocator exists to avoid.
  synchronize_all();
  host_clock_ += gpu_.alloc_latency_s;
  void* ptr = std::malloc(bytes);
  EXA_REQUIRE(ptr != nullptr);
  allocations_[ptr] = Allocation{bytes, false, 0};
  bytes_allocated_ += bytes;
  trace_alloc("hipMalloc", bytes);
  return ptr;
}

void DeviceSim::trace_alloc(const char* what, std::uint64_t bytes) {
  auto& tracer = trace::Tracer::instance();
  if (!tracer.enabled()) return;
  const std::string track = trace_name_ + "/mem";
  tracer.instant(std::string(what) + " " + support::format_bytes(bytes), track,
                 host_clock_, "memory");
  tracer.counter("bytes_allocated", track,
                 static_cast<double>(bytes_allocated_), host_clock_);
}

void DeviceSim::free_device(void* ptr) {
  const auto it = allocations_.find(ptr);
  EXA_REQUIRE_MSG(it != allocations_.end(), "free of unknown device pointer");
  ++counters_.frees;
  const Allocation alloc = it->second;
  allocations_.erase(it);
  bytes_allocated_ -= alloc.bytes;
  if (alloc.pooled) {
    EXA_ASSERT(pool_ != nullptr);
    pool_->deallocate(alloc.pool_offset);
    host_clock_ += pool_alloc_latency_s_;
  } else {
    synchronize_all();
    host_clock_ += gpu_.free_latency_s;
  }
  std::free(ptr);
  trace_alloc(alloc.pooled ? "pool free" : "hipFree", alloc.bytes);
}

}  // namespace exa::sim
