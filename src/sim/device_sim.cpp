#include "sim/device_sim.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "support/assert.hpp"
#include "support/units.hpp"
#include "trace/tracer.hpp"

namespace exa::sim {

namespace {
/// Distinct default trace names so concurrent DeviceSim instances (each
/// starting its virtual clocks at 0) land on separate timeline groups.
std::atomic<int> g_device_instances{0};
/// Global cost-epoch counter: every draw is unique, so an epoch value
/// pins both the device instance and its tuning version (no ABA when a
/// device is destroyed and another is constructed at the same address).
std::atomic<std::uint64_t> g_cost_epoch{0};
}  // namespace

/// Memoizes kernel_timing() on the cost-relevant *content* of a launch.
/// The key copies every profile field the exec model reads (identity or
/// version keys would be unsafe: callers mutate public KernelProfile fields
/// between launches), so a hit is guaranteed to return the exact
/// KernelTiming a fresh computation would produce.
class ExecCostCache {
 public:
  [[nodiscard]] KernelTiming timing(const arch::GpuArch& gpu,
                                    const KernelProfile& profile,
                                    const LaunchConfig& cfg,
                                    const ExecTuning& tuning) {
    Key key;
    if (!make_key(profile, cfg, tuning, &key)) {
      // More flop components than the fixed-size key holds: compute
      // directly (rare; app profiles mix at most a few dtypes).
      return kernel_timing(gpu, profile, cfg, tuning);
    }
    // One-entry front cache: steady-state relaunches of the same kernel
    // hit here with a flat field comparison, skipping the hash + find.
    if (has_last_ && key == last_key_) {
      ++hits_;
      return last_timing_;
    }
    if (const auto it = map_.find(key); it != map_.end()) {
      ++hits_;
      last_key_ = key;
      last_timing_ = it->second;
      has_last_ = true;
      return it->second;
    }
    ++misses_;
    const KernelTiming computed = kernel_timing(gpu, profile, cfg, tuning);
    if (map_.size() >= kMaxEntries) map_.clear();
    map_.emplace(key, computed);
    last_key_ = key;
    last_timing_ = computed;
    has_last_ = true;
    return computed;
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  static constexpr std::size_t kMaxWork = 4;
  static constexpr std::size_t kMaxEntries = 4096;

  struct Key {
    std::uint64_t blocks = 0;
    std::uint32_t block_threads = 0;
    std::uint32_t work_count = 0;
    FlopWork work[kMaxWork];
    double bytes_read = 0.0;
    double bytes_written = 0.0;
    int registers_per_thread = 0;
    std::uint64_t lds_per_block_bytes = 0;
    double coherent_run_length = 0.0;
    double compute_efficiency = 0.0;
    double memory_efficiency = 0.0;
    double spill_traffic_multiplier = 0.0;
    double spill_accesses = 0.0;

    bool operator==(const Key&) const = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // FNV-1a over the key fields (doubles by bit pattern).
      std::uint64_t h = 14695981039346656037ull;
      const auto mix = [&h](std::uint64_t v) {
        h = (h ^ v) * 1099511628211ull;
      };
      const auto mixd = [&mix](double d) {
        mix(std::bit_cast<std::uint64_t>(d));
      };
      mix(k.blocks);
      mix(k.block_threads);
      mix(k.work_count);
      for (std::uint32_t i = 0; i < k.work_count; ++i) {
        mix(static_cast<std::uint64_t>(k.work[i].dtype));
        mixd(k.work[i].flops);
        mix((k.work[i].matrix_cores ? 2u : 0u) | (k.work[i].fma ? 1u : 0u));
      }
      mixd(k.bytes_read);
      mixd(k.bytes_written);
      mix(static_cast<std::uint64_t>(k.registers_per_thread));
      mix(k.lds_per_block_bytes);
      mixd(k.coherent_run_length);
      mixd(k.compute_efficiency);
      mixd(k.memory_efficiency);
      mixd(k.spill_traffic_multiplier);
      mixd(k.spill_accesses);
      return static_cast<std::size_t>(h);
    }
  };

  static bool make_key(const KernelProfile& profile, const LaunchConfig& cfg,
                       const ExecTuning& tuning, Key* out) {
    if (profile.work.size() > kMaxWork) return false;
    out->blocks = cfg.blocks;
    out->block_threads = cfg.block_threads;
    out->work_count = static_cast<std::uint32_t>(profile.work.size());
    for (std::size_t i = 0; i < profile.work.size(); ++i) {
      out->work[i] = profile.work[i];
    }
    out->bytes_read = profile.bytes_read;
    out->bytes_written = profile.bytes_written;
    out->registers_per_thread = profile.registers_per_thread;
    out->lds_per_block_bytes = profile.lds_per_block_bytes;
    out->coherent_run_length = profile.coherent_run_length;
    out->compute_efficiency = profile.compute_efficiency;
    out->memory_efficiency = profile.memory_efficiency;
    out->spill_traffic_multiplier = tuning.spill_traffic_multiplier;
    out->spill_accesses = tuning.spill_accesses;
    return true;
  }

  std::unordered_map<Key, KernelTiming, KeyHash> map_;
  Key last_key_;
  KernelTiming last_timing_;
  bool has_last_ = false;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

DeviceSim::DeviceSim(arch::GpuArch gpu)
    : trace_name_("dev" + std::to_string(g_device_instances++)),
      gpu_(std::move(gpu)),
      cost_cache_(std::make_unique<ExecCostCache>()) {
  streams_.emplace(0, 0.0);  // default stream
  default_stream_ = &streams_.at(0);
  cost_epoch_ = ++g_cost_epoch;
}

ExecTuning& DeviceSim::mutable_tuning() {
  cost_epoch_ = ++g_cost_epoch;
  return tuning_;
}

std::uint64_t DeviceSim::cost_memo_hits() const { return cost_cache_->hits(); }

std::uint64_t DeviceSim::cost_memo_misses() const {
  return cost_cache_->misses();
}

DeviceSim::~DeviceSim() {
  for (auto& [ptr, alloc] : allocations_) std::free(ptr);
}

SimTime& DeviceSim::stream_ref(StreamId stream) {
  // Default-stream launches (the overwhelmingly common case) skip the
  // hash lookup; the node pointer is stable across rehash and stream 0 is
  // never erased.
  if (stream == 0) return *default_stream_;
  const auto it = streams_.find(stream);
  EXA_REQUIRE_MSG(it != streams_.end(), "unknown stream id");
  return it->second;
}

const SimTime& DeviceSim::stream_ref(StreamId stream) const {
  if (stream == 0) return *default_stream_;
  const auto it = streams_.find(stream);
  EXA_REQUIRE_MSG(it != streams_.end(), "unknown stream id");
  return it->second;
}

StreamId DeviceSim::create_stream() {
  const StreamId id = next_stream_++;
  // Stream creation is an API call with observable latency on real
  // runtimes; charge the submit overhead.
  host_clock_ += submit_overhead_s_;
  streams_.emplace(id, host_clock_);
  return id;
}

void DeviceSim::destroy_stream(StreamId stream) {
  EXA_REQUIRE_MSG(stream != 0, "the default stream cannot be destroyed");
  synchronize(stream);
  const auto erased = streams_.erase(stream);
  EXA_REQUIRE_MSG(erased == 1, "destroy of unknown stream");
}

SimTime DeviceSim::stream_ready(StreamId stream) const {
  return stream_ref(stream);
}

bool DeviceSim::stream_query(StreamId stream) const {
  return stream_ref(stream) <= host_clock_;
}

void DeviceSim::synchronize(StreamId stream) {
  host_clock_ = std::max(host_clock_, stream_ref(stream));
}

void DeviceSim::synchronize_all() {
  for (const auto& [id, ready] : streams_) {
    host_clock_ = std::max(host_clock_, ready);
  }
}

void DeviceSim::stream_wait_until(StreamId stream, SimTime t) {
  SimTime& ready = stream_ref(stream);
  ready = std::max(ready, t);
}

EventId DeviceSim::record_event(StreamId stream) {
  host_clock_ += submit_overhead_s_;
  events_.push_back(stream_ref(stream));
  return static_cast<EventId>(events_.size() - 1);
}

void DeviceSim::stream_wait_event(StreamId stream, EventId event) {
  host_clock_ += submit_overhead_s_;
  SimTime& ready = stream_ref(stream);
  ready = std::max(ready, event_time(event));
}

void DeviceSim::host_wait_event(EventId event) {
  host_clock_ = std::max(host_clock_, event_time(event));
}

SimTime DeviceSim::event_time(EventId event) const {
  EXA_REQUIRE(event >= 0 &&
              static_cast<std::size_t>(event) < events_.size());
  return events_[static_cast<std::size_t>(event)];
}

double DeviceSim::elapsed(EventId start, EventId stop) const {
  return event_time(stop) - event_time(start);
}

KernelTiming DeviceSim::launch(StreamId stream, const KernelProfile& profile,
                               const LaunchConfig& launch_cfg) {
  const KernelTiming timing =
      cost_memo_enabled_
          ? cost_cache_->timing(gpu_, profile, launch_cfg, tuning_)
          : kernel_timing(gpu_, profile, launch_cfg, tuning_);
  return launch_prepared(stream, timing, profile.name);
}

const KernelTiming& DeviceSim::launch_prepared(StreamId stream,
                                               const KernelTiming& timing,
                                               const std::string& name) {
  host_clock_ += submit_overhead_s_;
  SimTime& ready = stream_ref(stream);
  // The kernel cannot start before the launch command reaches the device;
  // if the stream is already busy past that point the latency is hidden.
  const SimTime start = std::max(host_clock_ + timing.launch_s, ready);
  const double exec = timing.total_s - timing.launch_s;
  ready = start + exec;
  ++counters_.kernels_launched;
  counters_.kernel_busy_s += exec;
  if (auto& tracer = trace::Tracer::instance(); tracer.enabled()) {
    tracer.complete(name.empty() ? "<kernel>" : name, stream_track(stream),
                    start, exec, "kernel");
  }
  return timing;
}

std::string DeviceSim::stream_track(StreamId stream) const {
  return trace_name_ + "/s" + std::to_string(stream);
}

void DeviceSim::trace_transfer(const char* what, StreamId stream,
                               SimTime start, double duration, double bytes) {
  auto& tracer = trace::Tracer::instance();
  if (!tracer.enabled()) return;
  tracer.complete(std::string(what) + " " +
                      support::format_bytes(
                          static_cast<std::uint64_t>(std::max(0.0, bytes))),
                  stream_track(stream), start, duration, "transfer");
}

SimTime DeviceSim::transfer_async(StreamId stream, TransferKind kind,
                                  double bytes) {
  host_clock_ += submit_overhead_s_;
  SimTime& ready = stream_ref(stream);
  double duration = 0.0;
  switch (kind) {
    case TransferKind::kHostToDevice:
    case TransferKind::kDeviceToHost:
      duration = transfer_time(gpu_.host_link, bytes);
      break;
    case TransferKind::kDeviceToDevice:
      // On-device copies run at HBM read+write bandwidth.
      duration = gpu_.kernel_launch_latency_s +
                 2.0 * bytes / gpu_.hbm_bandwidth_bytes_per_s;
      break;
  }
  const SimTime start = std::max(host_clock_, ready);
  ready = start + duration;
  ++counters_.transfers;
  if (kind == TransferKind::kHostToDevice) counters_.bytes_h2d += bytes;
  if (kind == TransferKind::kDeviceToHost) counters_.bytes_d2h += bytes;
  trace_transfer(kind == TransferKind::kHostToDevice   ? "H2D"
                 : kind == TransferKind::kDeviceToHost ? "D2H"
                                                       : "D2D",
                 stream, start, duration, bytes);
  return ready;
}

void DeviceSim::transfer_sync(TransferKind kind, double bytes) {
  const SimTime done = transfer_async(0, kind, bytes);
  host_clock_ = std::max(host_clock_, done);
}

SimTime DeviceSim::uvm_migrate(StreamId stream, TransferKind kind,
                               double bytes) {
  // Faults are raised in page groups (driver batches ~2 MiB at a time) and
  // each batch pays the fault-handling latency; migrated data moves at a
  // reduced fraction of the link bandwidth.
  constexpr double kPageGroup = 2.0 * 1024 * 1024;
  constexpr double kUvmBandwidthFraction = 0.6;
  const double groups = std::max(1.0, std::ceil(bytes / kPageGroup));
  const double fault_cost = groups * gpu_.uvm_page_fault_latency_s;
  const double move_cost =
      bytes / (gpu_.host_link.bandwidth_bytes_per_s * kUvmBandwidthFraction);

  host_clock_ += submit_overhead_s_;
  SimTime& ready = stream_ref(stream);
  const SimTime start = std::max(host_clock_, ready);
  ready = start + fault_cost + move_cost;
  ++counters_.transfers;
  if (kind == TransferKind::kHostToDevice) counters_.bytes_h2d += bytes;
  if (kind == TransferKind::kDeviceToHost) counters_.bytes_d2h += bytes;
  trace_transfer("UVM", stream, start, fault_cost + move_cost, bytes);
  return ready;
}

void DeviceSim::set_alloc_mode(AllocMode mode,
                               std::uint64_t pool_capacity_bytes) {
  alloc_mode_ = mode;
  if (mode == AllocMode::kPooled) {
    if (pool_capacity_bytes == 0) pool_capacity_bytes = gpu_.hbm_capacity_bytes;
    EXA_REQUIRE_MSG(pool_capacity_bytes <= gpu_.hbm_capacity_bytes,
                    "pool larger than device memory");
    pool_ = std::make_unique<PoolAllocator>(pool_capacity_bytes);
  } else {
    EXA_REQUIRE_MSG(pool_ == nullptr || pool_->live_allocations() == 0,
                    "cannot disable pool with live pooled allocations");
    pool_.reset();
  }
}

void* DeviceSim::malloc_device(std::uint64_t bytes) {
  EXA_REQUIRE(bytes > 0);
  ++counters_.allocs;
  if (alloc_mode_ == AllocMode::kPooled) {
    EXA_ASSERT(pool_ != nullptr);
    const auto offset = pool_->allocate(bytes);
    if (!offset.has_value()) {
      throw support::Error("device pool out of memory: requested " +
                           support::format_bytes(bytes));
    }
    host_clock_ += pool_alloc_latency_s_;
    void* ptr = std::malloc(bytes);
    EXA_REQUIRE(ptr != nullptr);
    allocations_[ptr] = Allocation{bytes, true, *offset};
    // The arena itself was charged against device memory when created;
    // track logical usage for reporting.
    bytes_allocated_ += bytes;
    trace_alloc("pool alloc", bytes);
    return ptr;
  }

  if (bytes_allocated_ + bytes > gpu_.hbm_capacity_bytes) {
    throw support::Error("device out of memory: " +
                         support::format_bytes(bytes_allocated_ + bytes) +
                         " exceeds " +
                         support::format_bytes(gpu_.hbm_capacity_bytes) +
                         " on " + gpu_.name);
  }
  // hipMalloc/cudaMalloc are device-synchronizing, blocking calls — the
  // very latency the E3SM pool allocator exists to avoid.
  synchronize_all();
  host_clock_ += gpu_.alloc_latency_s;
  void* ptr = std::malloc(bytes);
  EXA_REQUIRE(ptr != nullptr);
  allocations_[ptr] = Allocation{bytes, false, 0};
  bytes_allocated_ += bytes;
  trace_alloc("hipMalloc", bytes);
  return ptr;
}

void DeviceSim::trace_alloc(const char* what, std::uint64_t bytes) {
  auto& tracer = trace::Tracer::instance();
  if (!tracer.enabled()) return;
  const std::string track = trace_name_ + "/mem";
  tracer.instant(std::string(what) + " " + support::format_bytes(bytes), track,
                 host_clock_, "memory");
  tracer.counter("bytes_allocated", track,
                 static_cast<double>(bytes_allocated_), host_clock_);
}

void DeviceSim::charge_transient_alloc(std::uint64_t bytes) {
  EXA_REQUIRE(bytes > 0);
  ++counters_.allocs;
  ++counters_.frees;
  if (alloc_mode_ == AllocMode::kPooled) {
    EXA_ASSERT(pool_ != nullptr);
    if (!pool_->can_allocate(bytes)) {
      throw support::Error("device pool out of memory: requested " +
                           support::format_bytes(bytes));
    }
    host_clock_ += 2.0 * pool_alloc_latency_s_;
    trace_alloc("pool alloc", bytes);
    trace_alloc("pool free", bytes);
    return;
  }

  if (bytes_allocated_ + bytes > gpu_.hbm_capacity_bytes) {
    throw support::Error("device out of memory: " +
                         support::format_bytes(bytes_allocated_ + bytes) +
                         " exceeds " +
                         support::format_bytes(gpu_.hbm_capacity_bytes) +
                         " on " + gpu_.name);
  }
  // Same virtual time as malloc_device + free_device in direct mode: one
  // device synchronization (the second would be a no-op) plus both
  // latencies.
  synchronize_all();
  host_clock_ += gpu_.alloc_latency_s + gpu_.free_latency_s;
  trace_alloc("hipMalloc", bytes);
  trace_alloc("hipFree", bytes);
}

void DeviceSim::free_device(void* ptr) {
  const auto it = allocations_.find(ptr);
  EXA_REQUIRE_MSG(it != allocations_.end(), "free of unknown device pointer");
  ++counters_.frees;
  const Allocation alloc = it->second;
  allocations_.erase(it);
  bytes_allocated_ -= alloc.bytes;
  if (alloc.pooled) {
    EXA_ASSERT(pool_ != nullptr);
    pool_->deallocate(alloc.pool_offset);
    host_clock_ += pool_alloc_latency_s_;
  } else {
    synchronize_all();
    host_clock_ += gpu_.free_latency_s;
  }
  std::free(ptr);
  trace_alloc(alloc.pooled ? "pool free" : "hipFree", alloc.bytes);
}

}  // namespace exa::sim
