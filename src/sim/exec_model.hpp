#pragma once
/// \file exec_model.hpp
/// The analytic execution-time model: KernelProfile x LaunchConfig x
/// GpuArch -> virtual seconds. Roofline at its core (max of compute time
/// and memory time), extended with occupancy-driven latency-hiding
/// efficiency, wavefront-divergence activity, and register-spill scratch
/// traffic. See DESIGN.md §4.

#include "arch/gpu_arch.hpp"
#include "sim/kernel_profile.hpp"
#include "sim/occupancy.hpp"

namespace exa::sim {

/// Knobs that model toolchain quality rather than hardware. The LAMMPS
/// §3.10.3 compiler fix (inefficient spilling of double-precision constants
/// between scalar and vector registers) is a spill_traffic_multiplier of ~3
/// before the fix and 1 after.
struct ExecTuning {
  double spill_traffic_multiplier = 1.0;
  /// Average memory accesses each spilled register generates per thread.
  double spill_accesses = 3.0;
};

/// Full breakdown of one simulated kernel execution.
struct KernelTiming {
  double launch_s = 0.0;   ///< fixed launch latency
  double compute_s = 0.0;  ///< arithmetic pipe time (all components)
  double memory_s = 0.0;   ///< HBM time incl. spill scratch traffic
  double spill_bytes = 0.0;
  double total_s = 0.0;    ///< launch + max(compute, memory)
  Occupancy occupancy;
  double active_lane_fraction = 1.0;
  /// Sustained flop rate over the execution (excludes launch latency).
  [[nodiscard]] double achieved_flops(double total_flops) const {
    const double exec = total_s - launch_s;
    return exec > 0.0 ? total_flops / exec : 0.0;
  }
};

/// Mutation-testing hook: the EXA_QA_MUTATION build option injects a
/// deliberate 1.5x error into the roofline execution term so the
/// golden-baseline gates can prove they fail on a perturbed cost model
/// (tests/CMakeLists.txt registers those gates with WILL_FAIL).
#ifdef EXA_QA_MUTATION
inline constexpr double kQaMutationCostScale = 1.5;
#else
inline constexpr double kQaMutationCostScale = 1.0;
#endif

/// Computes the timing breakdown for one launch.
[[nodiscard]] KernelTiming kernel_timing(const arch::GpuArch& gpu,
                                         const KernelProfile& profile,
                                         const LaunchConfig& launch,
                                         const ExecTuning& tuning = {});

/// Active-lane fraction for a convergent-run length on wavefront width W.
[[nodiscard]] double active_lane_fraction(double coherent_run_length,
                                          int wavefront_size);

/// Host<->device transfer time for `bytes` over `link`.
[[nodiscard]] double transfer_time(const arch::HostLink& link, double bytes);

}  // namespace exa::sim
