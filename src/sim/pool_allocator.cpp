#include "sim/pool_allocator.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace exa::sim {

PoolAllocator::PoolAllocator(std::uint64_t capacity_bytes,
                             std::uint64_t alignment)
    : capacity_(capacity_bytes), alignment_(alignment) {
  EXA_REQUIRE(capacity_bytes > 0);
  EXA_REQUIRE_MSG(alignment > 0 && (alignment & (alignment - 1)) == 0,
                  "alignment must be a power of two");
  capacity_ = capacity_bytes & ~(alignment_ - 1);
  EXA_REQUIRE(capacity_ > 0);
  free_.emplace(0, capacity_);
}

std::optional<std::uint64_t> PoolAllocator::allocate(std::uint64_t bytes) {
  EXA_REQUIRE(bytes > 0);
  const std::uint64_t need = align_up(bytes);
  // First fit: lowest-offset block large enough.
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < need) continue;
    const std::uint64_t offset = it->first;
    const std::uint64_t remaining = it->second - need;
    free_.erase(it);
    if (remaining > 0) free_.emplace(offset + need, remaining);
    live_.emplace(offset, need);
    in_use_ += need;
    high_water_ = std::max(high_water_, in_use_);
    return offset;
  }
  return std::nullopt;
}

void PoolAllocator::deallocate(std::uint64_t offset) {
  const auto it = live_.find(offset);
  EXA_REQUIRE_MSG(it != live_.end(), "deallocate of unknown pool offset");
  std::uint64_t begin = it->first;
  std::uint64_t size = it->second;
  in_use_ -= size;
  live_.erase(it);

  // Coalesce with the following free block.
  if (const auto next = free_.find(begin + size); next != free_.end()) {
    size += next->second;
    free_.erase(next);
  }
  // Coalesce with the preceding free block.
  if (!free_.empty()) {
    auto prev = free_.lower_bound(begin);
    if (prev != free_.begin()) {
      --prev;
      if (prev->first + prev->second == begin) {
        begin = prev->first;
        size += prev->second;
        free_.erase(prev);
      }
    }
  }
  free_.emplace(begin, size);
}

std::uint64_t PoolAllocator::largest_free_block() const {
  std::uint64_t largest = 0;
  for (const auto& [off, size] : free_) largest = std::max(largest, size);
  return largest;
}

double PoolAllocator::fragmentation() const {
  const std::uint64_t total_free = capacity_ - in_use_;
  if (total_free == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_block()) /
                   static_cast<double>(total_free);
}

}  // namespace exa::sim
