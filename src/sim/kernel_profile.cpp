#include "sim/kernel_profile.hpp"

#include <limits>

namespace exa::sim {

double KernelProfile::arithmetic_intensity() const {
  const double bytes = total_bytes();
  if (bytes <= 0.0) return std::numeric_limits<double>::infinity();
  return total_flops() / bytes;
}

}  // namespace exa::sim
