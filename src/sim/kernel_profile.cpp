#include "sim/kernel_profile.hpp"

#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace exa::sim {

const std::string& interned_label(std::string_view label) {
  // Keyed by string_view into the interned string itself (unique_ptr keeps
  // the address stable across rehashes).
  static std::mutex mutex;
  static std::unordered_map<std::string_view, std::unique_ptr<std::string>>
      table;
  const std::lock_guard<std::mutex> lock(mutex);
  if (const auto it = table.find(label); it != table.end()) return *it->second;
  auto owned = std::make_unique<std::string>(label);
  const std::string* stable = owned.get();
  table.emplace(std::string_view(*stable), std::move(owned));
  return *stable;
}

double KernelProfile::arithmetic_intensity() const {
  const double bytes = total_bytes();
  if (bytes <= 0.0) return std::numeric_limits<double>::infinity();
  return total_flops() / bytes;
}

}  // namespace exa::sim
