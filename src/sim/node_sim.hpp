#pragma once
/// \file node_sim.hpp
/// A multi-device node: several DeviceSims joined by peer (xGMI /
/// NVLink) links — the Frontier node's 8 GCDs on the Infinity Fabric,
/// Summit's 6 V100s on NVLink. The §5 trainings covered exactly this
/// topology ("the AMD Infinity Fabric Interconnect", "CPU and GPU
/// bindings, and NUMA and affinity considerations").

#include <memory>
#include <vector>

#include "arch/machine.hpp"
#include "sim/device_sim.hpp"

namespace exa::sim {

/// Peer-link bandwidth classes within a node.
struct PeerLink {
  double bandwidth_bytes_per_s = 0.0;  ///< link bandwidth, in bytes/second
  double latency_s = 0.0;              ///< per-transfer latency, in seconds
};

/// A multi-device node: one DeviceSim per programming-model device joined
/// by the peer topology of the machine (see the file comment).
class NodeSim {
 public:
  /// Builds the node of `machine`: one DeviceSim per programming-model
  /// device, with the peer topology the hardware implies (same-module
  /// GCD pairs get the fast in-package link; everything else the fabric).
  explicit NodeSim(const arch::Machine& machine);

  /// Number of programming-model devices on the node.
  [[nodiscard]] int device_count() const {
    return static_cast<int>(devices_.size());
  }
  /// The device at `index` in [0, device_count()).
  [[nodiscard]] DeviceSim& device(int index);

  /// Peer link between two devices (direction-symmetric).
  [[nodiscard]] PeerLink link(int src, int dst) const;

  /// Peer-to-peer copy: charged on both devices' streams; returns the
  /// completion time (max of the two stream clocks afterwards).
  SimTime peer_transfer(int src, int dst, double bytes,
                        StreamId src_stream = 0, StreamId dst_stream = 0);

  /// All-devices barrier: host waits for every stream of every device,
  /// then aligns all host clocks to the max.
  void synchronize_node();

  /// The slowest host clock across devices (node-level "now").
  [[nodiscard]] SimTime node_now() const;

 private:
  std::vector<std::unique_ptr<DeviceSim>> devices_;
  bool paired_gcds_ = false;  ///< MI250X: devices 2i and 2i+1 share a module
  PeerLink in_module_;
  PeerLink fabric_;
};

}  // namespace exa::sim
