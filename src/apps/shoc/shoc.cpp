#include "apps/shoc/shoc.hpp"

#include <algorithm>
#include <cmath>

#include "apps/shoc/kernels.hpp"
#include "mathlib/device_blas.hpp"
#include "mathlib/fft.hpp"
#include "support/assert.hpp"
#include "support/units.hpp"

namespace exa::apps::shoc {

using arch::DType;
using sim::KernelProfile;
using sim::LaunchConfig;
using support::GIGA;
using support::MiB;

std::string to_string(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kBusSpeedDownload: return "BusSpeedDownload";
    case BenchmarkId::kBusSpeedReadback: return "BusSpeedReadback";
    case BenchmarkId::kMaxFlops: return "MaxFlops";
    case BenchmarkId::kDeviceMemory: return "DeviceMemory";
    case BenchmarkId::kFFT: return "FFT";
    case BenchmarkId::kGEMM: return "GEMM";
    case BenchmarkId::kMD: return "MD";
    case BenchmarkId::kReduction: return "Reduction";
    case BenchmarkId::kScan: return "Scan";
    case BenchmarkId::kSort: return "Sort";
    case BenchmarkId::kSpmv: return "Spmv";
    case BenchmarkId::kStencil2D: return "Stencil2D";
    case BenchmarkId::kTriad: return "Triad";
    case BenchmarkId::kBFS: return "BFS";
    case BenchmarkId::kS3D: return "S3D";
  }
  return "?";
}

const std::vector<BenchmarkId>& all_benchmarks() {
  static const std::vector<BenchmarkId> ids = {
      BenchmarkId::kBusSpeedDownload, BenchmarkId::kBusSpeedReadback,
      BenchmarkId::kMaxFlops,         BenchmarkId::kDeviceMemory,
      BenchmarkId::kFFT,              BenchmarkId::kGEMM,
      BenchmarkId::kMD,               BenchmarkId::kReduction,
      BenchmarkId::kScan,             BenchmarkId::kSort,
      BenchmarkId::kSpmv,             BenchmarkId::kStencil2D,
      BenchmarkId::kTriad,            BenchmarkId::kBFS,
      BenchmarkId::kS3D};
  return ids;
}

namespace {

/// Describes a benchmark at its nominal (timed) size: transfer volumes,
/// the kernel profile sequence, and the headline-rate numerator.
struct BenchSpec {
  double h2d_bytes = 0.0;
  double d2h_bytes = 0.0;
  std::vector<KernelProfile> profiles;
  std::vector<LaunchConfig> launches;
  double rate_numerator = 0.0;  ///< flops or bytes for the headline rate
};

double size_mult(SizeClass s) {
  switch (s) {
    case SizeClass::kSmall: return 1.0;
    case SizeClass::kMedium: return 4.0;
    case SizeClass::kLarge: return 16.0;
  }
  return 1.0;
}

LaunchConfig grid_for(double elems) {
  LaunchConfig cfg;
  cfg.block_threads = 256;
  cfg.blocks = static_cast<std::uint64_t>(std::max(1.0, elems / 256.0));
  return cfg;
}

BenchSpec make_spec(BenchmarkId id, SizeClass size, const arch::GpuArch& gpu) {
  const double mult = size_mult(size);
  BenchSpec spec;
  switch (id) {
    case BenchmarkId::kBusSpeedDownload: {
      spec.h2d_bytes = 64.0 * MiB * mult;
      spec.rate_numerator = spec.h2d_bytes;
      break;
    }
    case BenchmarkId::kBusSpeedReadback: {
      spec.d2h_bytes = 64.0 * MiB * mult;
      spec.rate_numerator = spec.d2h_bytes;
      break;
    }
    case BenchmarkId::kMaxFlops: {
      const double flops = 2.0e11 * mult;
      KernelProfile p;
      p.name = "maxflops_fp32";
      p.add_flops(DType::kF32, flops);
      p.bytes_read = 8.0 * MiB;
      p.registers_per_thread = 64;
      p.compute_efficiency = 0.95;  // pure FMA chains
      spec.profiles.push_back(p);
      spec.launches.push_back(grid_for(1.0e6));
      spec.rate_numerator = flops;
      break;
    }
    case BenchmarkId::kDeviceMemory: {
      const double bytes = 256.0 * MiB * mult;
      KernelProfile p;
      p.name = "global_read_write";
      p.bytes_read = bytes / 2;
      p.bytes_written = bytes / 2;
      p.add_flops(DType::kF32, bytes / 8);
      p.memory_efficiency = 0.88;  // coalesced streaming
      spec.profiles.push_back(p);
      spec.launches.push_back(grid_for(bytes / 16));
      spec.rate_numerator = bytes;
      break;
    }
    case BenchmarkId::kFFT: {
      const auto n = static_cast<std::size_t>(1) << 20;
      const auto batch = static_cast<std::size_t>(8 * mult);
      spec.profiles.push_back(ml::fft_profile(gpu, n, batch));
      spec.launches.push_back(grid_for(static_cast<double>(n * batch) / 8));
      spec.rate_numerator =
          ml::fft_flops(n) * static_cast<double>(batch);
      const double bytes = static_cast<double>(n * batch) * 16.0;
      spec.h2d_bytes = bytes;
      spec.d2h_bytes = bytes;
      break;
    }
    case BenchmarkId::kGEMM: {
      const auto n = static_cast<std::size_t>(2048.0 * std::sqrt(mult));
      spec.profiles.push_back(
          ml::gemm_profile(gpu, DType::kF32, false, n, n, n));
      spec.launches.push_back(grid_for(static_cast<double>(n * n) / 4));
      spec.rate_numerator = ml::gemm_flops_real(n, n, n);
      spec.h2d_bytes = 2.0 * static_cast<double>(n * n) * 4.0;
      spec.d2h_bytes = static_cast<double>(n * n) * 4.0;
      break;
    }
    case BenchmarkId::kMD: {
      const double atoms = 1.0e6 * mult;
      const double neighbors = 128.0;
      KernelProfile p;
      p.name = "lj_force";
      p.add_flops(DType::kF32, atoms * neighbors * 50.0);
      p.bytes_read = atoms * neighbors * 16.0;  // gathered positions
      p.bytes_written = atoms * 16.0;
      p.registers_per_thread = 96;
      p.coherent_run_length = 96.0;  // padded neighbor-list divergence
      p.memory_efficiency = 0.55;    // gather-heavy
      spec.profiles.push_back(p);
      spec.launches.push_back(grid_for(atoms));
      spec.rate_numerator = atoms * neighbors * 50.0;
      spec.h2d_bytes = atoms * 16.0;
      spec.d2h_bytes = atoms * 16.0;
      break;
    }
    case BenchmarkId::kReduction: {
      const double n = 16.0e6 * mult;
      KernelProfile p;
      p.name = "reduction";
      p.add_flops(DType::kF64, n);
      p.bytes_read = n * 8.0;
      p.bytes_written = 4096.0;
      p.memory_efficiency = 0.85;
      spec.profiles.push_back(p);
      spec.launches.push_back(grid_for(n / 4));
      spec.rate_numerator = n * 8.0;
      spec.h2d_bytes = n * 8.0;
      spec.d2h_bytes = 4096.0;
      break;
    }
    case BenchmarkId::kScan: {
      const double n = 16.0e6 * mult;
      KernelProfile p;
      p.name = "scan";
      p.add_flops(DType::kF32, 2.0 * n);
      p.bytes_read = 2.0 * n * 4.0;  // two passes
      p.bytes_written = 2.0 * n * 4.0;
      p.memory_efficiency = 0.8;
      spec.profiles.push_back(p);
      spec.launches.push_back(grid_for(n / 4));
      spec.rate_numerator = n * 4.0;
      spec.h2d_bytes = n * 4.0;
      spec.d2h_bytes = n * 4.0;
      break;
    }
    case BenchmarkId::kSort: {
      const auto n = static_cast<std::size_t>(16.0e6 * mult);
      spec.profiles.push_back(ml::sort_profile(gpu, n, 8));
      spec.launches.push_back(grid_for(static_cast<double>(n) / 4));
      spec.rate_numerator = static_cast<double>(n);
      spec.h2d_bytes = static_cast<double>(n) * 8.0;
      spec.d2h_bytes = static_cast<double>(n) * 8.0;
      break;
    }
    case BenchmarkId::kSpmv: {
      const auto rows = static_cast<std::size_t>(4.0e6 * mult);
      const std::size_t nnz = rows * 26;
      spec.profiles.push_back(ml::spmv_profile(gpu, rows, nnz, 1));
      spec.launches.push_back(grid_for(static_cast<double>(rows)));
      spec.rate_numerator = 2.0 * static_cast<double>(nnz);
      spec.h2d_bytes = static_cast<double>(nnz) * 12.0;
      spec.d2h_bytes = static_cast<double>(rows) * 8.0;
      break;
    }
    case BenchmarkId::kStencil2D: {
      const double edge = 4096.0 * std::sqrt(mult);
      const double cells = edge * edge;
      KernelProfile p;
      p.name = "stencil9";
      p.add_flops(DType::kF32, cells * 17.0);
      p.bytes_read = cells * 4.0 * 1.6;  // halo re-reads past the cache
      p.bytes_written = cells * 4.0;
      p.lds_per_block_bytes = 20 * 1024;
      p.memory_efficiency = 0.8;
      spec.profiles.push_back(p);
      spec.launches.push_back(grid_for(cells / 4));
      spec.rate_numerator = cells * 17.0;
      spec.h2d_bytes = cells * 4.0;
      spec.d2h_bytes = cells * 4.0;
      break;
    }
    case BenchmarkId::kTriad: {
      const double n = 16.0e6 * mult;
      KernelProfile p;
      p.name = "triad";
      p.add_flops(DType::kF32, 2.0 * n);
      p.bytes_read = 2.0 * n * 4.0;
      p.bytes_written = n * 4.0;
      p.memory_efficiency = 0.88;
      spec.profiles.push_back(p);
      spec.launches.push_back(grid_for(n / 4));
      spec.rate_numerator = 3.0 * n * 4.0;
      spec.h2d_bytes = 2.0 * n * 4.0;
      spec.d2h_bytes = n * 4.0;
      break;
    }
    case BenchmarkId::kBFS: {
      const double vertices = 1.0e6 * mult;
      const double edges = vertices * 16.0;
      KernelProfile p;
      p.name = "bfs_frontier";
      p.add_flops(DType::kI32, 4.0 * edges);
      p.bytes_read = edges * 8.0;     // gathered adjacency + level checks
      p.bytes_written = vertices * 4.0;
      p.registers_per_thread = 32;
      p.coherent_run_length = 4.0;    // irregular frontiers diverge hard
      p.memory_efficiency = 0.35;     // scattered gathers
      spec.profiles.push_back(p);
      spec.launches.push_back(grid_for(vertices));
      spec.rate_numerator = edges;    // traversed edges per second
      spec.h2d_bytes = edges * 8.0;
      spec.d2h_bytes = vertices * 4.0;
      break;
    }
    case BenchmarkId::kS3D: {
      const double cells = 2.0e5 * mult;
      KernelProfile p;
      p.name = "s3d_getrates";
      p.add_flops(DType::kF64, cells * 1.0e4);  // big rate expressions
      p.bytes_read = cells * 600.0;
      p.bytes_written = cells * 400.0;
      p.registers_per_thread = 180;
      p.compute_efficiency = 0.5;
      spec.profiles.push_back(p);
      spec.launches.push_back(grid_for(cells));
      spec.rate_numerator = cells * 1.0e4;
      spec.h2d_bytes = cells * 600.0;
      spec.d2h_bytes = cells * 400.0;
      break;
    }
  }
  return spec;
}

/// Small functional workload run alongside the timed profiles so the
/// runtime path is exercised with real math.
void run_functional(BenchmarkId id) {
  constexpr std::size_t kN = 1 << 12;
  static thread_local std::vector<float> a(kN, 1.0f);
  static thread_local std::vector<float> b(kN, 2.0f);
  static thread_local std::vector<float> c(kN, 0.0f);
  switch (id) {
    case BenchmarkId::kReduction: {
      (void)kernels::reduction(a);
      break;
    }
    case BenchmarkId::kScan: {
      kernels::exclusive_scan(a, c);
      break;
    }
    case BenchmarkId::kTriad: {
      kernels::triad(a, b, 1.5f, c);
      break;
    }
    case BenchmarkId::kStencil2D: {
      kernels::stencil2d(a, c, 64, 64, 0.5f, 0.1f, 0.025f);
      break;
    }
    case BenchmarkId::kBFS: {
      const kernels::Graph g = kernels::make_ring_with_chords(256, 7);
      (void)kernels::bfs(g, 0);
      break;
    }
    default:
      break;  // FFT/GEMM/etc. are covered by mathlib's own tests
  }
}

}  // namespace

RunResult run_benchmark(BenchmarkId id, SizeClass size, support::Rng& noise) {
  auto& rt = hip::Runtime::instance();
  auto& dev = rt.current_device();
  const BenchSpec spec = make_spec(id, size, dev.gpu());

  const double t0 = dev.host_now();
  if (spec.h2d_bytes > 0.0) {
    dev.transfer_sync(sim::TransferKind::kHostToDevice, spec.h2d_bytes);
  }
  double kernel_s = 0.0;
  for (std::size_t i = 0; i < spec.profiles.size(); ++i) {
    hip::Kernel k;
    k.profile = spec.profiles[i];
    k.bulk_body = [id] { run_functional(id); };
    const hip::hipError_t err = hip::hipLaunchKernelEXA(k, spec.launches[i]);
    EXA_REQUIRE(err == hip::hipSuccess);
    kernel_s += hip::hipLastLaunchTiming().total_s;
  }
  (void)hip::hipDeviceSynchronize();
  if (spec.d2h_bytes > 0.0) {
    dev.transfer_sync(sim::TransferKind::kDeviceToHost, spec.d2h_bytes);
  }
  const double t1 = dev.host_now();

  // Measurement noise: SHOC reports a few trials; run-to-run variation on
  // a real system is ~0.5%. Lognormal keeps times positive.
  const double jitter = std::exp(noise.normal(0.0, 0.005));

  RunResult r;
  r.id = id;
  r.total_s = (t1 - t0) * jitter;
  r.kernel_s = (spec.profiles.empty() ? r.total_s : kernel_s) * jitter;
  r.rate = spec.rate_numerator / r.kernel_s;
  return r;
}

std::vector<HipVsCudaPoint> compare_hip_vs_cuda(SizeClass size,
                                                std::uint64_t seed) {
  auto& rt = hip::Runtime::instance();
  support::Rng noise(seed);
  std::vector<HipVsCudaPoint> points;
  points.reserve(all_benchmarks().size());
  for (const BenchmarkId id : all_benchmarks()) {
    rt.set_flavor(hip::ApiFlavor::kCuda);
    const RunResult cuda = run_benchmark(id, size, noise);
    rt.set_flavor(hip::ApiFlavor::kHip);
    const RunResult hipr = run_benchmark(id, size, noise);
    HipVsCudaPoint p;
    p.id = id;
    p.ratio_with_transfer = cuda.total_s / hipr.total_s;
    p.ratio_kernel_only = cuda.kernel_s / hipr.kernel_s;
    points.push_back(p);
  }
  return points;
}

}  // namespace exa::apps::shoc
