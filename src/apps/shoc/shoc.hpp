#pragma once
/// \file shoc.hpp
/// A SHOC-like GPU benchmark suite (Scalable HeterOgeneous Computing),
/// the workload of the paper's Figure 1: OLCF ran hipify over the CUDA
/// SHOC programs and compared HIP vs. CUDA performance on Summit V100s.
///
/// Each benchmark is "a particular computation or data access pattern ...
/// involving a small number of GPU kernels" (§2.1). Benchmarks run through
/// either API flavor (the CUDA build or the hipified build); several have
/// functional host realizations so correctness is testable.

#include <string>
#include <vector>

#include "hip/hip_runtime.hpp"
#include "support/rng.hpp"

namespace exa::apps::shoc {

enum class BenchmarkId {
  kBusSpeedDownload,  // H2D bandwidth
  kBusSpeedReadback,  // D2H bandwidth
  kMaxFlops,
  kDeviceMemory,
  kFFT,
  kGEMM,
  kMD,        // Lennard-Jones force kernel
  kReduction,
  kScan,
  kSort,
  kSpmv,
  kStencil2D,
  kTriad,
  kBFS,   // level-synchronous graph traversal (irregular, divergent)
  kS3D,   // chemical-kinetics rate kernel (compute-dense, register-heavy)
};

[[nodiscard]] std::string to_string(BenchmarkId id);
[[nodiscard]] const std::vector<BenchmarkId>& all_benchmarks();

/// Problem-size class (SHOC's -s flag); sizes scale the working set.
enum class SizeClass { kSmall = 1, kMedium = 2, kLarge = 3 };

struct RunResult {
  BenchmarkId id;
  /// Virtual seconds for the kernel portion only.
  double kernel_s = 0.0;
  /// Virtual seconds including PCIe/NVLink transfers.
  double total_s = 0.0;
  /// Headline rate in the benchmark's natural unit (flop/s or B/s).
  double rate = 0.0;
};

/// Runs one benchmark on the current HIP runtime configuration. The
/// caller selects the API flavor via Runtime::set_flavor beforehand.
/// `noise` models run-to-run measurement variation (SHOC reports medians
/// of several trials; Figure 1's scatter is this noise): each timing is
/// perturbed by a ~0.5% sigma lognormal factor.
[[nodiscard]] RunResult run_benchmark(BenchmarkId id, SizeClass size,
                                      support::Rng& noise);

/// One Figure-1 data point: normalized HIP/CUDA performance for a
/// benchmark (ratio > 1 means HIP faster).
struct HipVsCudaPoint {
  BenchmarkId id;
  double ratio_with_transfer = 0.0;
  double ratio_kernel_only = 0.0;
};

/// Runs the full suite under both flavors on the configured device and
/// returns the normalized comparison (the Figure 1 series).
[[nodiscard]] std::vector<HipVsCudaPoint> compare_hip_vs_cuda(
    SizeClass size, std::uint64_t seed);

}  // namespace exa::apps::shoc
