#pragma once
/// \file kernels.hpp
/// Functional host realizations of the SHOC computational patterns. These
/// are the "real math" halves of the suite — unit-tested directly, and
/// executed through the simulated runtime by shoc.cpp.

#include <cstddef>
#include <span>
#include <vector>

namespace exa::apps::shoc::kernels {

/// Sum reduction.
[[nodiscard]] double reduction(std::span<const float> data);

/// Exclusive prefix sum: out[i] = sum(in[0..i)).
void exclusive_scan(std::span<const float> in, std::span<float> out);

/// STREAM triad: c = a + s * b.
void triad(std::span<const float> a, std::span<const float> b, float s,
           std::span<float> c);

/// 9-point weighted stencil over an h x w grid (interior points only;
/// boundary copied through).
void stencil2d(std::span<const float> in, std::span<float> out,
               std::size_t h, std::size_t w, float center, float cardinal,
               float diagonal);

/// Lennard-Jones forces with a cutoff over all pairs (O(n^2), small n).
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;
};
void lj_forces(std::span<const Vec3> pos, std::span<Vec3> force,
               double cutoff, double epsilon, double sigma);

/// CSR sparse matrix-vector product y = A x.
struct Csr {
  std::size_t rows = 0;
  std::vector<std::size_t> row_ptr;  // rows + 1
  std::vector<std::size_t> col;
  std::vector<double> val;
};
void spmv(const Csr& a, std::span<const double> x, std::span<double> y);

/// Builds a banded test matrix with `band` off-diagonals per side.
[[nodiscard]] Csr make_banded(std::size_t rows, std::size_t band);

/// Unweighted adjacency for BFS (CSR of neighbor indices).
struct Graph {
  std::size_t vertices = 0;
  std::vector<std::size_t> row_ptr;
  std::vector<std::size_t> adj;
};

/// Level-synchronous breadth-first search from `source`; unreachable
/// vertices get level SIZE_MAX. Returns the level array.
[[nodiscard]] std::vector<std::size_t> bfs(const Graph& g, std::size_t source);

/// A two-level tree plus a ring: known BFS structure for tests.
[[nodiscard]] Graph make_ring_with_chords(std::size_t vertices,
                                          std::size_t chord_stride);

}  // namespace exa::apps::shoc::kernels
