#include "apps/shoc/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::apps::shoc::kernels {

double reduction(std::span<const float> data) {
  // Pairwise (tree) summation, matching the deterministic order a GPU
  // block-tree reduction produces more closely than serial accumulation.
  if (data.empty()) return 0.0;
  std::vector<double> level(data.begin(), data.end());
  while (level.size() > 1) {
    const std::size_t half = (level.size() + 1) / 2;
    for (std::size_t i = 0; i < level.size() / 2; ++i) {
      level[i] = level[2 * i] + level[2 * i + 1];
    }
    if (level.size() % 2 == 1) level[half - 1] = level.back();
    level.resize(half);
  }
  return level[0];
}

void exclusive_scan(std::span<const float> in, std::span<float> out) {
  EXA_REQUIRE(out.size() >= in.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = static_cast<float>(acc);
    acc += static_cast<double>(in[i]);
  }
}

void triad(std::span<const float> a, std::span<const float> b, float s,
           std::span<float> c) {
  EXA_REQUIRE(a.size() == b.size() && c.size() >= a.size());
  // Disjoint writes; chunked so the inner loop vectorizes.
  support::ThreadPool::global().for_chunks(
      0, a.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) c[i] = a[i] + s * b[i];
      },
      /*grain=*/4096);
}

void stencil2d(std::span<const float> in, std::span<float> out, std::size_t h,
               std::size_t w, float center, float cardinal, float diagonal) {
  EXA_REQUIRE(in.size() >= h * w && out.size() >= h * w);
  EXA_REQUIRE(h >= 1 && w >= 1);
  // Rows are independent (out row i reads in rows i-1..i+1 only).
  support::ThreadPool::global().for_each(0, h, [&](std::size_t i) {
    for (std::size_t j = 0; j < w; ++j) {
      if (i == 0 || j == 0 || i == h - 1 || j == w - 1) {
        out[i * w + j] = in[i * w + j];
        continue;
      }
      const auto at = [&](std::size_t r, std::size_t cc) {
        return in[r * w + cc];
      };
      out[i * w + j] =
          center * at(i, j) +
          cardinal * (at(i - 1, j) + at(i + 1, j) + at(i, j - 1) + at(i, j + 1)) +
          diagonal * (at(i - 1, j - 1) + at(i - 1, j + 1) + at(i + 1, j - 1) +
                      at(i + 1, j + 1));
    }
  });
}

void lj_forces(std::span<const Vec3> pos, std::span<Vec3> force, double cutoff,
               double epsilon, double sigma) {
  EXA_REQUIRE(force.size() >= pos.size());
  const double rc2 = cutoff * cutoff;
  for (auto& f : force) f = Vec3{};
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      const double dx = pos[i].x - pos[j].x;
      const double dy = pos[i].y - pos[j].y;
      const double dz = pos[i].z - pos[j].z;
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= rc2 || r2 == 0.0) continue;
      const double sr2 = sigma * sigma / r2;
      const double sr6 = sr2 * sr2 * sr2;
      // F = 24 eps (2 sr12 - sr6) / r^2 * dr
      const double mag = 24.0 * epsilon * (2.0 * sr6 * sr6 - sr6) / r2;
      force[i].x += mag * dx;
      force[i].y += mag * dy;
      force[i].z += mag * dz;
      force[j].x -= mag * dx;
      force[j].y -= mag * dy;
      force[j].z -= mag * dz;
    }
  }
}

void spmv(const Csr& a, std::span<const double> x, std::span<double> y) {
  EXA_REQUIRE(a.row_ptr.size() == a.rows + 1);
  EXA_REQUIRE(y.size() >= a.rows);
  for (std::size_t r = 0; r < a.rows; ++r) {
    double acc = 0.0;
    for (std::size_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
      EXA_ASSERT(a.col[p] < x.size());
      acc += a.val[p] * x[a.col[p]];
    }
    y[r] = acc;
  }
}

std::vector<std::size_t> bfs(const Graph& g, std::size_t source) {
  EXA_REQUIRE(source < g.vertices);
  EXA_REQUIRE(g.row_ptr.size() == g.vertices + 1);
  constexpr std::size_t kUnreached = static_cast<std::size_t>(-1);
  std::vector<std::size_t> level(g.vertices, kUnreached);
  std::vector<std::size_t> frontier = {source};
  level[source] = 0;
  std::size_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    std::vector<std::size_t> next;
    for (const std::size_t v : frontier) {
      for (std::size_t p = g.row_ptr[v]; p < g.row_ptr[v + 1]; ++p) {
        const std::size_t u = g.adj[p];
        if (level[u] == kUnreached) {
          level[u] = depth;
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
  }
  return level;
}

Graph make_ring_with_chords(std::size_t vertices, std::size_t chord_stride) {
  EXA_REQUIRE(vertices >= 3);
  EXA_REQUIRE(chord_stride >= 2);
  std::vector<std::vector<std::size_t>> adj(vertices);
  for (std::size_t v = 0; v < vertices; ++v) {
    adj[v].push_back((v + 1) % vertices);
    adj[(v + 1) % vertices].push_back(v);
    const std::size_t chord = (v + chord_stride) % vertices;
    adj[v].push_back(chord);
    adj[chord].push_back(v);
  }
  Graph g;
  g.vertices = vertices;
  g.row_ptr.assign(vertices + 1, 0);
  for (std::size_t v = 0; v < vertices; ++v) {
    std::sort(adj[v].begin(), adj[v].end());
    adj[v].erase(std::unique(adj[v].begin(), adj[v].end()), adj[v].end());
    g.row_ptr[v + 1] = g.row_ptr[v] + adj[v].size();
  }
  for (std::size_t v = 0; v < vertices; ++v) {
    g.adj.insert(g.adj.end(), adj[v].begin(), adj[v].end());
  }
  return g;
}

Csr make_banded(std::size_t rows, std::size_t band) {
  Csr m;
  m.rows = rows;
  m.row_ptr.reserve(rows + 1);
  m.row_ptr.push_back(0);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t lo = r >= band ? r - band : 0;
    const std::size_t hi = std::min(rows - 1, r + band);
    for (std::size_t c = lo; c <= hi; ++c) {
      m.col.push_back(c);
      m.val.push_back(c == r ? 2.0 * static_cast<double>(band)
                             : -1.0 / (1.0 + std::abs(static_cast<double>(c) -
                                                      static_cast<double>(r))));
    }
    m.row_ptr.push_back(m.col.size());
  }
  return m;
}

}  // namespace exa::apps::shoc::kernels
