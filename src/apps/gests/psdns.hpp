#pragma once
/// \file psdns.hpp
/// GESTS (§3.3): Pseudo-Spectral Direct Numerical Simulation of turbulence
/// built around a custom distributed 3-D FFT.
///
/// Two domain decompositions are implemented, as in the paper:
///  * **Slabs** (1-D): rank limit P <= N, one distributed transpose per
///    3-D transform — more efficient;
///  * **Pencils** (2-D): rank limit P <= N^2, two transposes per transform
///    — scales further when memory-per-node binds.
///
/// The decompositions are *functionally real*: per-rank bricks, explicit
/// alltoall pack/unpack transposes, local FFTs — verified against the
/// direct single-brick fft3d. The exascale-sized runs use the same comm
/// volumes/compute counts through the analytic machine models.

#include <complex>
#include <cstddef>
#include <vector>

#include "arch/machine.hpp"
#include "io/io_model.hpp"
#include "mathlib/fft.hpp"
#include "net/fabric.hpp"

namespace exa::apps::gests {

using ml::zcomplex;

/// Per-rank brick of a distributed (nx, ny, nz) row-major field.
struct Brick {
  std::size_t nx = 0, ny = 0, nz = 0;  ///< local extents
  std::size_t x0 = 0, y0 = 0;          ///< global offsets (z never split)
  std::vector<zcomplex> data;

  [[nodiscard]] zcomplex& at(std::size_t x, std::size_t y, std::size_t z) {
    return data[(x * ny + y) * nz + z];
  }
  [[nodiscard]] const zcomplex& at(std::size_t x, std::size_t y,
                                   std::size_t z) const {
    return data[(x * ny + y) * nz + z];
  }
};

/// A functional distributed field under slab (1-D, split in x) layout.
class SlabField {
 public:
  /// Scatters a global brick across `ranks` slabs; ranks must divide n.
  SlabField(std::vector<zcomplex> global, std::size_t n, int ranks);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] int ranks() const { return static_cast<int>(bricks_.size()); }

  /// Distributed forward/inverse 3-D FFT: local 2-D transforms, one
  /// alltoall transpose, local 1-D transforms. Counts transposes.
  void fft3d(bool inverse);
  [[nodiscard]] int transposes() const { return transposes_; }
  /// Bytes that crossed rank boundaries in transposes so far (validates
  /// the analytic alltoall volume: N^3 * 16 * (P-1)/P per transpose).
  [[nodiscard]] double bytes_transposed() const { return bytes_transposed_; }

  /// Gathers the field back into one global brick (x-major layout).
  [[nodiscard]] std::vector<zcomplex> gather() const;

 private:
  void transpose_x_to_y();  ///< (lnx, N, N) -> (N, lny, N)
  void transpose_y_to_x();

  std::size_t n_;
  bool x_split_ = true;  ///< current layout: split along x or along y
  std::vector<Brick> bricks_;
  int transposes_ = 0;
  double bytes_transposed_ = 0.0;
};

/// A functional distributed field under pencil (2-D, split in x and y)
/// layout. `rows x cols` rank grid; rows and cols must divide n.
class PencilField {
 public:
  PencilField(std::vector<zcomplex> global, std::size_t n, int rows, int cols);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] int ranks() const { return rows_ * cols_; }

  /// Distributed forward/inverse 3-D FFT with two transposes.
  void fft3d(bool inverse);
  [[nodiscard]] int transposes() const { return transposes_; }

  [[nodiscard]] std::vector<zcomplex> gather() const;

 private:
  std::size_t n_;
  int rows_, cols_;
  /// State 0: (x,y) split, z full. State 1: (x,z) split, y full.
  /// State 2: (y,z) split, x full.
  int state_ = 0;
  std::vector<Brick> bricks_;
  int transposes_ = 0;
};

// --- exascale timing model ----------------------------------------------------

enum class Decomposition { kSlabs, kPencils };

struct PsdnsConfig {
  std::size_t n = 1024;        ///< N^3 grid
  int ranks_per_node = 0;      ///< 0: one per device
  Decomposition decomp = Decomposition::kSlabs;
  int transforms_per_step = 9; ///< 3-D FFTs per RK substep sweep
  /// Network model knobs. The default (congestion and faults off) reduces
  /// the fabric to the calibrated CommModel exactly, so baseline FOMs are
  /// golden-stable; flip `congestion` on to study transpose hotspots.
  net::FabricConfig fabric;
  /// Storage model for the velocity-field dumps the DNS campaigns write
  /// for spectra/statistics post-processing. The default quiet filesystem
  /// adds exactly zero time, keeping baseline FOMs golden-stable.
  io::IoConfig io;
  /// Steps between field dumps (count; 0 disables dumps).
  int field_dump_interval = 10;
};

struct StepTime {
  double fft_s = 0.0;
  double transpose_s = 0.0;
  double pointwise_s = 0.0;  ///< nonlinear term / dealiasing array ops
  double io_s = 0.0;         ///< amortized field-dump share
  [[nodiscard]] double total() const {
    return fft_s + transpose_s + pointwise_s + io_s;
  }
  /// The CAAR figure of merit: N^3 / t_wall.
  double fom = 0.0;
};

/// Per-timestep cost of the PSDNS solve on `machine` with `nodes` nodes.
/// Respects the decomposition rank limits (throws on violation).
[[nodiscard]] StepTime step_time(const arch::Machine& machine, int nodes,
                                 const PsdnsConfig& config);

/// Largest node count a decomposition admits for grid size n.
[[nodiscard]] int max_nodes(const arch::Machine& machine, std::size_t n,
                            Decomposition d, int ranks_per_node = 0);

}  // namespace exa::apps::gests
