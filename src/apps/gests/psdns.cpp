#include "apps/gests/psdns.hpp"

#include <algorithm>
#include <cmath>

#include "io/checkpoint.hpp"
#include "mathlib/device_blas.hpp"
#include "net/fabric.hpp"
#include "sim/exec_model.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::apps::gests {

namespace {

/// Local FFTs along each axis of a brick (z contiguous, y stride nz,
/// x stride ny*nz).
void fft_axis_z(Brick& b, bool inverse) {
  ml::fft_batch(b.data, b.nz, b.nx * b.ny, inverse);
}

void fft_axis_y(Brick& b, bool inverse) {
  // Each (x, z) pencil is independent; chunks carry their own line buffer.
  support::ThreadPool::global().for_chunks(
      0, b.nx * b.nz, [&](std::size_t lo, std::size_t hi) {
        std::vector<zcomplex> line(b.ny);
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::size_t x = idx / b.nz;
          const std::size_t z = idx % b.nz;
          for (std::size_t y = 0; y < b.ny; ++y) line[y] = b.at(x, y, z);
          ml::fft(line, inverse);
          for (std::size_t y = 0; y < b.ny; ++y) b.at(x, y, z) = line[y];
        }
      });
}

void fft_axis_x(Brick& b, bool inverse) {
  support::ThreadPool::global().for_chunks(
      0, b.ny * b.nz, [&](std::size_t lo, std::size_t hi) {
        std::vector<zcomplex> line(b.nx);
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::size_t y = idx / b.nz;
          const std::size_t z = idx % b.nz;
          for (std::size_t x = 0; x < b.nx; ++x) line[x] = b.at(x, y, z);
          ml::fft(line, inverse);
          for (std::size_t x = 0; x < b.nx; ++x) b.at(x, y, z) = line[x];
        }
      });
}

}  // namespace

// --- SlabField -----------------------------------------------------------------

SlabField::SlabField(std::vector<zcomplex> global, std::size_t n, int ranks)
    : n_(n) {
  EXA_REQUIRE(ml::is_pow2(n));
  EXA_REQUIRE(ranks >= 1 && n % static_cast<std::size_t>(ranks) == 0);
  EXA_REQUIRE(global.size() == n * n * n);
  const std::size_t ln = n / static_cast<std::size_t>(ranks);
  bricks_.resize(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    Brick& b = bricks_[static_cast<std::size_t>(r)];
    b.nx = ln;
    b.ny = n;
    b.nz = n;
    b.x0 = static_cast<std::size_t>(r) * ln;
    b.data.assign(global.begin() + static_cast<std::ptrdiff_t>(b.x0 * n * n),
                  global.begin() +
                      static_cast<std::ptrdiff_t>((b.x0 + ln) * n * n));
  }
}

void SlabField::transpose_x_to_y() {
  EXA_REQUIRE(x_split_);
  const std::size_t P = bricks_.size();
  const std::size_t ln = n_ / P;
  std::vector<Brick> out(P);
  for (std::size_t s = 0; s < P; ++s) {
    Brick& d = out[s];
    d.nx = n_;
    d.ny = ln;
    d.nz = n_;
    d.y0 = s * ln;
    d.data.assign(n_ * ln * n_, zcomplex{});
  }
  // The alltoall: rank r's local x-slab contributes its y in [s*ln, ...)
  // to rank s.
  for (std::size_t r = 0; r < P; ++r) {
    const Brick& src = bricks_[r];
    for (std::size_t s = 0; s < P; ++s) {
      Brick& dst = out[s];
      if (s != r) {
        bytes_transposed_ +=
            static_cast<double>(src.nx * ln * n_) * sizeof(zcomplex);
      }
      for (std::size_t x = 0; x < src.nx; ++x) {
        for (std::size_t y = 0; y < ln; ++y) {
          for (std::size_t z = 0; z < n_; ++z) {
            dst.at(src.x0 + x, y, z) = src.at(x, dst.y0 + y, z);
          }
        }
      }
    }
  }
  bricks_ = std::move(out);
  x_split_ = false;
  ++transposes_;
}

void SlabField::transpose_y_to_x() {
  EXA_REQUIRE(!x_split_);
  const std::size_t P = bricks_.size();
  const std::size_t ln = n_ / P;
  std::vector<Brick> out(P);
  for (std::size_t s = 0; s < P; ++s) {
    Brick& d = out[s];
    d.nx = ln;
    d.ny = n_;
    d.nz = n_;
    d.x0 = s * ln;
    d.data.assign(ln * n_ * n_, zcomplex{});
  }
  for (std::size_t r = 0; r < P; ++r) {
    const Brick& src = bricks_[r];
    for (std::size_t s = 0; s < P; ++s) {
      Brick& dst = out[s];
      if (s != r) {
        bytes_transposed_ +=
            static_cast<double>(ln * src.ny * n_) * sizeof(zcomplex);
      }
      for (std::size_t x = 0; x < ln; ++x) {
        for (std::size_t y = 0; y < src.ny; ++y) {
          for (std::size_t z = 0; z < n_; ++z) {
            dst.at(x, src.y0 + y, z) = src.at(dst.x0 + x, y, z);
          }
        }
      }
    }
  }
  bricks_ = std::move(out);
  x_split_ = true;
  ++transposes_;
}

void SlabField::fft3d(bool inverse) {
  if (!inverse) {
    EXA_REQUIRE_MSG(x_split_, "forward transform expects x-split layout");
    for (Brick& b : bricks_) {
      fft_axis_z(b, false);
      fft_axis_y(b, false);
    }
    transpose_x_to_y();
    for (Brick& b : bricks_) fft_axis_x(b, false);
  } else {
    EXA_REQUIRE_MSG(!x_split_, "inverse transform expects y-split layout");
    for (Brick& b : bricks_) fft_axis_x(b, true);
    transpose_y_to_x();
    for (Brick& b : bricks_) {
      fft_axis_y(b, true);
      fft_axis_z(b, true);
    }
  }
}

std::vector<zcomplex> SlabField::gather() const {
  std::vector<zcomplex> g(n_ * n_ * n_);
  for (const Brick& b : bricks_) {
    for (std::size_t x = 0; x < b.nx; ++x) {
      for (std::size_t y = 0; y < b.ny; ++y) {
        for (std::size_t z = 0; z < b.nz; ++z) {
          g[((b.x0 + x) * n_ + (b.y0 + y)) * n_ + z] = b.at(x, y, z);
        }
      }
    }
  }
  return g;
}

// --- PencilField ------------------------------------------------------------

PencilField::PencilField(std::vector<zcomplex> global, std::size_t n, int rows,
                         int cols)
    : n_(n), rows_(rows), cols_(cols) {
  EXA_REQUIRE(ml::is_pow2(n));
  EXA_REQUIRE(rows >= 1 && cols >= 1);
  EXA_REQUIRE(n % static_cast<std::size_t>(rows) == 0 &&
              n % static_cast<std::size_t>(cols) == 0);
  EXA_REQUIRE(global.size() == n * n * n);
  const std::size_t lnx = n / static_cast<std::size_t>(rows);
  const std::size_t lny = n / static_cast<std::size_t>(cols);
  bricks_.resize(static_cast<std::size_t>(rows * cols));
  for (int a = 0; a < rows; ++a) {
    for (int b = 0; b < cols; ++b) {
      Brick& brick = bricks_[static_cast<std::size_t>(a * cols + b)];
      brick.nx = lnx;
      brick.ny = lny;
      brick.nz = n;
      brick.x0 = static_cast<std::size_t>(a) * lnx;
      brick.y0 = static_cast<std::size_t>(b) * lny;
      brick.data.resize(lnx * lny * n);
      for (std::size_t x = 0; x < lnx; ++x) {
        for (std::size_t y = 0; y < lny; ++y) {
          for (std::size_t z = 0; z < n; ++z) {
            brick.at(x, y, z) =
                global[((brick.x0 + x) * n + (brick.y0 + y)) * n + z];
          }
        }
      }
    }
  }
}

void PencilField::fft3d(bool inverse) {
  const std::size_t lnx = n_ / static_cast<std::size_t>(rows_);
  const std::size_t lny = n_ / static_cast<std::size_t>(cols_);
  const std::size_t lnz = n_ / static_cast<std::size_t>(cols_);
  const std::size_t lny2 = n_ / static_cast<std::size_t>(rows_);

  // Transpose 1 (within a row group, y <-> z): (lnx, lny, N) <-> (lnx, N, lnz).
  const auto transpose_yz = [&](bool forward) {
    std::vector<Brick> out(bricks_.size());
    for (int a = 0; a < rows_; ++a) {
      for (int b = 0; b < cols_; ++b) {
        Brick& d = out[static_cast<std::size_t>(a * cols_ + b)];
        if (forward) {
          d.nx = lnx;
          d.ny = n_;
          d.nz = lnz;
          d.x0 = static_cast<std::size_t>(a) * lnx;
          d.y0 = static_cast<std::size_t>(b) * lnz;  // reused as z offset
        } else {
          d.nx = lnx;
          d.ny = lny;
          d.nz = n_;
          d.x0 = static_cast<std::size_t>(a) * lnx;
          d.y0 = static_cast<std::size_t>(b) * lny;
        }
        d.data.assign(d.nx * d.ny * d.nz, zcomplex{});
      }
    }
    for (int a = 0; a < rows_; ++a) {
      for (int b = 0; b < cols_; ++b) {
        const Brick& src = bricks_[static_cast<std::size_t>(a * cols_ + b)];
        for (int s = 0; s < cols_; ++s) {
          Brick& dst = out[static_cast<std::size_t>(a * cols_ + s)];
          if (forward) {
            // src has y local [b*lny), z full; dst wants z in [s*lnz).
            for (std::size_t x = 0; x < lnx; ++x) {
              for (std::size_t y = 0; y < lny; ++y) {
                for (std::size_t z = 0; z < lnz; ++z) {
                  dst.at(x, src.y0 + y, z) =
                      src.at(x, y, static_cast<std::size_t>(s) * lnz + z);
                }
              }
            }
          } else {
            // src has y full, z local [b*lnz); dst wants y in [s*lny).
            for (std::size_t x = 0; x < lnx; ++x) {
              for (std::size_t y = 0; y < lny; ++y) {
                for (std::size_t z = 0; z < lnz; ++z) {
                  dst.at(x, y, src.y0 + z) =
                      src.at(x, static_cast<std::size_t>(s) * lny + y, z);
                }
              }
            }
          }
        }
      }
    }
    bricks_ = std::move(out);
    ++transposes_;
  };

  // Transpose 2 (within a column group, x <-> y): (lnx, N, lnz) <-> (N, lny2, lnz).
  const auto transpose_xy = [&](bool forward) {
    std::vector<Brick> out(bricks_.size());
    for (int a = 0; a < rows_; ++a) {
      for (int b = 0; b < cols_; ++b) {
        Brick& d = out[static_cast<std::size_t>(a * cols_ + b)];
        if (forward) {
          d.nx = n_;
          d.ny = lny2;
          d.nz = lnz;
          d.x0 = static_cast<std::size_t>(a) * lny2;  // reused as y offset
          d.y0 = static_cast<std::size_t>(b) * lnz;   // z offset
        } else {
          d.nx = lnx;
          d.ny = n_;
          d.nz = lnz;
          d.x0 = static_cast<std::size_t>(a) * lnx;
          d.y0 = static_cast<std::size_t>(b) * lnz;
        }
        d.data.assign(d.nx * d.ny * d.nz, zcomplex{});
      }
    }
    for (int a = 0; a < rows_; ++a) {
      for (int b = 0; b < cols_; ++b) {
        const Brick& src = bricks_[static_cast<std::size_t>(a * cols_ + b)];
        for (int s = 0; s < rows_; ++s) {
          Brick& dst = out[static_cast<std::size_t>(s * cols_ + b)];
          if (forward) {
            // src: x local [a*lnx), y full; dst wants y in [s*lny2), x full.
            for (std::size_t x = 0; x < lnx; ++x) {
              for (std::size_t y = 0; y < lny2; ++y) {
                for (std::size_t z = 0; z < lnz; ++z) {
                  dst.at(src.x0 + x, y, z) =
                      src.at(x, static_cast<std::size_t>(s) * lny2 + y, z);
                }
              }
            }
          } else {
            // src: y local [a*lny2), x full; dst wants x in [s*lnx), y full.
            for (std::size_t x = 0; x < lnx; ++x) {
              for (std::size_t y = 0; y < lny2; ++y) {
                for (std::size_t z = 0; z < lnz; ++z) {
                  dst.at(x, src.x0 + y, z) =
                      src.at(static_cast<std::size_t>(s) * lnx + x, y, z);
                }
              }
            }
          }
        }
      }
    }
    bricks_ = std::move(out);
    ++transposes_;
  };

  if (!inverse) {
    EXA_REQUIRE_MSG(state_ == 0, "forward transform expects (x,y)-split");
    for (Brick& b : bricks_) fft_axis_z(b, false);
    transpose_yz(true);
    state_ = 1;
    for (Brick& b : bricks_) fft_axis_y(b, false);
    transpose_xy(true);
    state_ = 2;
    for (Brick& b : bricks_) fft_axis_x(b, false);
  } else {
    EXA_REQUIRE_MSG(state_ == 2, "inverse transform expects (y,z)-split");
    for (Brick& b : bricks_) fft_axis_x(b, true);
    transpose_xy(false);
    state_ = 1;
    for (Brick& b : bricks_) fft_axis_y(b, true);
    transpose_yz(false);
    state_ = 0;
    for (Brick& b : bricks_) fft_axis_z(b, true);
  }
}

std::vector<zcomplex> PencilField::gather() const {
  std::vector<zcomplex> g(n_ * n_ * n_);
  for (const Brick& b : bricks_) {
    for (std::size_t x = 0; x < b.nx; ++x) {
      for (std::size_t y = 0; y < b.ny; ++y) {
        for (std::size_t z = 0; z < b.nz; ++z) {
          std::size_t gx = x, gy = y, gz = z;
          if (state_ == 0) {
            gx += b.x0;
            gy += b.y0;
          } else if (state_ == 1) {
            gx += b.x0;
            gz += b.y0;  // y0 reused as z offset
          } else {
            gy += b.x0;  // x0 reused as y offset
            gz += b.y0;
          }
          g[(gx * n_ + gy) * n_ + gz] = b.at(x, y, z);
        }
      }
    }
  }
  return g;
}

// --- timing model ---------------------------------------------------------

int max_nodes(const arch::Machine& machine, std::size_t n, Decomposition d,
              int ranks_per_node) {
  if (ranks_per_node == 0) ranks_per_node = machine.node.gpus_per_node;
  EXA_REQUIRE(ranks_per_node > 0);
  const double limit =
      d == Decomposition::kSlabs
          ? static_cast<double>(n)
          : static_cast<double>(n) * static_cast<double>(n);
  const int by_limit = static_cast<int>(limit / ranks_per_node);
  return std::min(machine.node_count, std::max(1, by_limit));
}

StepTime step_time(const arch::Machine& machine, int nodes,
                   const PsdnsConfig& config) {
  EXA_REQUIRE(machine.node.has_gpu());
  EXA_REQUIRE(nodes >= 1 && nodes <= machine.node_count);
  const arch::GpuArch& gpu = *machine.node.gpu;
  const int rpn = config.ranks_per_node > 0 ? config.ranks_per_node
                                            : machine.node.gpus_per_node;
  const double P = static_cast<double>(nodes) * rpn;
  const double N = static_cast<double>(config.n);

  // Decomposition rank limits (§3.3).
  if (config.decomp == Decomposition::kSlabs) {
    EXA_REQUIRE_MSG(P <= N, "Slabs version is limited to N MPI ranks");
  } else {
    EXA_REQUIRE_MSG(P <= N * N, "Pencils version is limited to N^2 ranks");
  }

  // The alltoall transposes go through the topology-aware fabric; with the
  // default config it reduces to the calibrated CommModel bit-for-bit.
  const net::Fabric comm(machine, rpn, config.fabric);

  // Local FFT work per rank per 3-D transform: three axis sweeps of
  // N^2/P lines each.
  const auto lines_per_rank = static_cast<std::size_t>(
      std::max(1.0, N * N / P));
  sim::LaunchConfig launch;
  launch.block_threads = 256;
  launch.blocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(N * N * N / P / 1024.0));
  const sim::KernelProfile fftp = ml::fft_profile(gpu, config.n, lines_per_rank);
  const double fft_axis_s = sim::kernel_timing(gpu, fftp, launch).total_s;
  const double fft_per_transform = 3.0 * fft_axis_s;

  // Transposes per transform: the Slabs version needs one fewer
  // communication cycle than Pencils.
  double transpose_per_transform = 0.0;
  const double field_bytes = N * N * N * 16.0;
  if (config.decomp == Decomposition::kSlabs) {
    const int group = static_cast<int>(P);
    const double per_pair = field_bytes / (P * P);
    transpose_per_transform = comm.alltoall(per_pair, group);
  } else {
    const int rows = static_cast<int>(std::round(std::sqrt(P)));
    const int cols = static_cast<int>(P) / std::max(1, rows);
    const double bytes_per_rank = field_bytes / P;
    transpose_per_transform =
        comm.alltoall(bytes_per_rank / std::max(1, cols), cols) +
        comm.alltoall(bytes_per_rank / std::max(1, rows), rows);
  }

  // Pointwise work (nonlinear term, dealiasing): ~6 full-field sweeps per
  // step, managed by OpenMP offload in the real code. One sweep reads and
  // writes the local field once.
  sim::KernelProfile pw;
  pw.name = "nonlinear_pointwise";
  pw.add_flops(arch::DType::kF64, 8.0 * N * N * N / P);
  pw.bytes_read = 16.0 * N * N * N / P;
  pw.bytes_written = 16.0 * N * N * N / P;
  pw.memory_efficiency = 0.8;
  const double pointwise_s = 6.0 * sim::kernel_timing(gpu, pw, launch).total_s;

  StepTime t;
  t.fft_s = config.transforms_per_step * fft_per_transform;
  t.transpose_s = config.transforms_per_step * transpose_per_transform;
  t.pointwise_s = pointwise_s;
  // Velocity-field dump every `field_dump_interval` steps: each rank
  // writes its N^3/P share of the complex field through the storage
  // model, amortized per step. Exactly 0.0 with the quiet default.
  if (config.field_dump_interval > 0) {
    const double dump_s = io::checkpoint_time(
        config.io, static_cast<int>(P), field_bytes / P);
    t.io_s = dump_s / config.field_dump_interval;
  }
  t.fom = N * N * N / t.total();
  return t;
}

}  // namespace exa::apps::gests
