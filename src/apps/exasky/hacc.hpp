#pragma once
/// \file hacc.hpp
/// ExaSky/HACC (§3.4): particle-mesh cosmology with a short-range force
/// correction (P^3M-lite).
///
/// The functional pieces are real: cloud-in-cell deposit, FFT Poisson
/// solve, force interpolation, and the short-range pairwise kernel —
/// validated by momentum conservation and against direct summation. The
/// performance model carries the paper's observation that one of the six
/// gravity kernels was sensitive to the wavefront width (64 on AMD vs 32
/// on NVIDIA) because its interaction lists are built in 32-lane-friendly
/// chunks.

#include <array>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "arch/machine.hpp"
#include "net/fabric.hpp"
#include "support/rng.hpp"

namespace exa::apps::exasky {

struct Particle {
  double x = 0.0, y = 0.0, z = 0.0;
  double vx = 0.0, vy = 0.0, vz = 0.0;
  double mass = 1.0;
};

/// Periodic unit-box particle set.
[[nodiscard]] std::vector<Particle> make_uniform_box(std::size_t count,
                                                     support::Rng& rng);

/// Direct O(n^2) periodic short-range forces with cutoff (reference).
void short_range_direct(const std::vector<Particle>& parts, double cutoff,
                        std::vector<std::array<double, 3>>& force);

/// Cell-list short-range forces (the production path); identical results.
void short_range_cells(const std::vector<Particle>& parts, double cutoff,
                       std::vector<std::array<double, 3>>& force);

/// Particle-mesh long-range step: CIC deposit onto an n^3 grid, k-space
/// Poisson solve (FFT), gradient, CIC force interpolation. Returns the
/// long-range force per particle.
void pm_long_range(const std::vector<Particle>& parts, std::size_t grid_n,
                   std::vector<std::array<double, 3>>& force);

/// CIC mass deposit only (exposed for conservation tests).
[[nodiscard]] std::vector<double> cic_deposit(
    const std::vector<Particle>& parts, std::size_t grid_n);

/// Kick-drift-kick leapfrog step under the short-range force (cell-list
/// path). Symplectic and exactly time-reversible (the test property).
void leapfrog_step(std::vector<Particle>& parts, double cutoff, double dt);

/// Kinetic + short-range potential energy (softened, within cutoff).
[[nodiscard]] double total_energy(const std::vector<Particle>& parts,
                                  double cutoff);

// --- performance model ----------------------------------------------------

/// The six gravity kernels of the HACC short/long-range pipeline.
struct GravityKernelTime {
  std::string name;
  double seconds = 0.0;
};

struct StepModel {
  std::vector<GravityKernelTime> kernels;
  double comm_s = 0.0;
  double total_s = 0.0;
  double fom = 0.0;  ///< particle-steps per second across the whole run
};

/// Simulation flavors the ExaSky campaign runs (§3.4): gravity-only
/// large-volume runs and hydrodynamic runs with extra SPH-style kernels.
enum class SimKind { kGravityOnly, kHydro };

/// One full timestep on `nodes` nodes of `machine` with `particles_per_rank`
/// particles per device rank. The PM-transpose alltoall and the particle
/// overload halo go through the topology-aware fabric; the default
/// `fabric` config reduces to the calibrated CommModel exactly.
[[nodiscard]] StepModel step_model(const arch::Machine& machine, int nodes,
                                   double particles_per_rank,
                                   SimKind kind = SimKind::kGravityOnly,
                                   const net::FabricConfig& fabric = {});

/// Per-kernel V100-vs-MI250X comparison: returns the speed-up of each of
/// the six kernels moving Summit -> Frontier (per device). The chunked
/// tree-walk kernel is the one the wavefront width hurts.
[[nodiscard]] std::vector<std::pair<std::string, double>>
per_kernel_speedups();

}  // namespace exa::apps::exasky
