#include "apps/exasky/hacc.hpp"

#include <algorithm>
#include <cmath>

#include "mathlib/device_blas.hpp"
#include "mathlib/fft.hpp"
#include "net/fabric.hpp"
#include "sim/exec_model.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::apps::exasky {

namespace {

constexpr double kSoftening = 1e-3;

/// Minimum-image displacement in the periodic unit box.
double min_image(double d) {
  if (d > 0.5) return d - 1.0;
  if (d < -0.5) return d + 1.0;
  return d;
}

void accumulate_pair(const Particle& a, const Particle& b, double cutoff,
                     std::array<double, 3>& fa, std::array<double, 3>& fb) {
  const double dx = min_image(a.x - b.x);
  const double dy = min_image(a.y - b.y);
  const double dz = min_image(a.z - b.z);
  const double r2 = dx * dx + dy * dy + dz * dz;
  if (r2 >= cutoff * cutoff || r2 == 0.0) return;
  const double inv =
      a.mass * b.mass / std::pow(r2 + kSoftening * kSoftening, 1.5);
  // Attractive gravity: force on a points toward b.
  fa[0] -= inv * dx;
  fa[1] -= inv * dy;
  fa[2] -= inv * dz;
  fb[0] += inv * dx;
  fb[1] += inv * dy;
  fb[2] += inv * dz;
}

}  // namespace

std::vector<Particle> make_uniform_box(std::size_t count, support::Rng& rng) {
  std::vector<Particle> parts(count);
  for (Particle& p : parts) {
    p.x = rng.uniform();
    p.y = rng.uniform();
    p.z = rng.uniform();
    p.mass = 1.0;
  }
  return parts;
}

void short_range_direct(const std::vector<Particle>& parts, double cutoff,
                        std::vector<std::array<double, 3>>& force) {
  force.assign(parts.size(), {0.0, 0.0, 0.0});
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      accumulate_pair(parts[i], parts[j], cutoff, force[i], force[j]);
    }
  }
}

void short_range_cells(const std::vector<Particle>& parts, double cutoff,
                       std::vector<std::array<double, 3>>& force) {
  EXA_REQUIRE(cutoff > 0.0 && cutoff < 0.34);
  force.assign(parts.size(), {0.0, 0.0, 0.0});
  const int nc = std::max(3, static_cast<int>(1.0 / cutoff));
  auto cell_of = [&](double v) {
    int c = static_cast<int>(v * nc);
    return std::clamp(c, 0, nc - 1);
  };
  std::vector<std::vector<std::size_t>> cells(
      static_cast<std::size_t>(nc) * nc * nc);
  auto idx = [&](int x, int y, int z) {
    auto wrap = [&](int v) { return ((v % nc) + nc) % nc; };
    return (static_cast<std::size_t>(wrap(x)) * nc + wrap(y)) * nc + wrap(z);
  };
  for (std::size_t i = 0; i < parts.size(); ++i) {
    cells[idx(cell_of(parts[i].x), cell_of(parts[i].y), cell_of(parts[i].z))]
        .push_back(i);
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const int cx = cell_of(parts[i].x);
    const int cy = cell_of(parts[i].y);
    const int cz = cell_of(parts[i].z);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          for (const std::size_t j : cells[idx(cx + dx, cy + dy, cz + dz)]) {
            if (j <= i) continue;
            accumulate_pair(parts[i], parts[j], cutoff, force[i], force[j]);
          }
        }
      }
    }
  }
}

namespace {

/// Position advance with periodic wrap. Per-particle writes are disjoint,
/// so the parallel update is bitwise identical to the serial loop.
void drift(std::vector<Particle>& parts, double dt) {
  support::ThreadPool::global().for_each(
      0, parts.size(),
      [&](std::size_t i) {
        Particle& p = parts[i];
        auto wrap = [](double v) {
          v -= std::floor(v);
          return v;
        };
        p.x = wrap(p.x + dt * p.vx);
        p.y = wrap(p.y + dt * p.vy);
        p.z = wrap(p.z + dt * p.vz);
      },
      /*grain=*/1024);
}

void kick(std::vector<Particle>& parts,
          const std::vector<std::array<double, 3>>& force, double dt) {
  support::ThreadPool::global().for_each(
      0, parts.size(),
      [&](std::size_t i) {
        parts[i].vx += dt * force[i][0] / parts[i].mass;
        parts[i].vy += dt * force[i][1] / parts[i].mass;
        parts[i].vz += dt * force[i][2] / parts[i].mass;
      },
      /*grain=*/1024);
}

}  // namespace

void leapfrog_step(std::vector<Particle>& parts, double cutoff, double dt) {
  std::vector<std::array<double, 3>> force;
  short_range_cells(parts, cutoff, force);
  kick(parts, force, 0.5 * dt);
  drift(parts, dt);
  short_range_cells(parts, cutoff, force);
  kick(parts, force, 0.5 * dt);
}

double total_energy(const std::vector<Particle>& parts, double cutoff) {
  double kinetic = 0.0;
  for (const Particle& p : parts) {
    kinetic += 0.5 * p.mass * (p.vx * p.vx + p.vy * p.vy + p.vz * p.vz);
  }
  double potential = 0.0;
  const double rc2 = cutoff * cutoff;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      const double dx = min_image(parts[i].x - parts[j].x);
      const double dy = min_image(parts[i].y - parts[j].y);
      const double dz = min_image(parts[i].z - parts[j].z);
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= rc2 || r2 == 0.0) continue;
      potential -= parts[i].mass * parts[j].mass /
                   std::sqrt(r2 + kSoftening * kSoftening);
    }
  }
  return kinetic + potential;
}

std::vector<double> cic_deposit(const std::vector<Particle>& parts,
                                std::size_t grid_n) {
  EXA_REQUIRE(grid_n >= 2);
  std::vector<double> rho(grid_n * grid_n * grid_n, 0.0);
  const double g = static_cast<double>(grid_n);
  auto at = [&](std::size_t x, std::size_t y, std::size_t z) -> double& {
    return rho[(x % grid_n * grid_n + y % grid_n) * grid_n + z % grid_n];
  };
  for (const Particle& p : parts) {
    const double gx = p.x * g;
    const double gy = p.y * g;
    const double gz = p.z * g;
    const auto x0 = static_cast<std::size_t>(gx) % grid_n;
    const auto y0 = static_cast<std::size_t>(gy) % grid_n;
    const auto z0 = static_cast<std::size_t>(gz) % grid_n;
    const double fx = gx - std::floor(gx);
    const double fy = gy - std::floor(gy);
    const double fz = gz - std::floor(gz);
    for (int ix = 0; ix <= 1; ++ix) {
      for (int iy = 0; iy <= 1; ++iy) {
        for (int iz = 0; iz <= 1; ++iz) {
          const double w = (ix ? fx : 1.0 - fx) * (iy ? fy : 1.0 - fy) *
                           (iz ? fz : 1.0 - fz);
          at(x0 + static_cast<std::size_t>(ix), y0 + static_cast<std::size_t>(iy),
             z0 + static_cast<std::size_t>(iz)) += w * p.mass;
        }
      }
    }
  }
  return rho;
}

void pm_long_range(const std::vector<Particle>& parts, std::size_t grid_n,
                   std::vector<std::array<double, 3>>& force) {
  EXA_REQUIRE(ml::is_pow2(grid_n));
  const std::size_t N = grid_n;
  const std::vector<double> rho = cic_deposit(parts, N);

  // Poisson solve in k-space: phi_k = -rho_k / k^2 (G = 1 units).
  std::vector<ml::zcomplex> field(N * N * N);
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = ml::zcomplex{rho[i], 0.0};
  }
  ml::fft3d(field, N, N, N, false);
  const double two_pi = 2.0 * 3.14159265358979323846;
  auto kof = [&](std::size_t i) {
    const auto half = static_cast<long>(N / 2);
    long k = static_cast<long>(i);
    if (k >= half) k -= static_cast<long>(N);
    return two_pi * static_cast<double>(k);
  };
  // Each x-plane scales independently (disjoint writes).
  support::ThreadPool::global().for_each(0, N, [&](std::size_t x) {
    for (std::size_t y = 0; y < N; ++y) {
      for (std::size_t z = 0; z < N; ++z) {
        const double k2 = kof(x) * kof(x) + kof(y) * kof(y) + kof(z) * kof(z);
        auto& v = field[(x * N + y) * N + z];
        v = k2 > 0.0 ? v * (-1.0 / k2) : ml::zcomplex{};
      }
    }
  });
  ml::fft3d(field, N, N, N, true);

  // Central-difference gradient of phi -> acceleration grid.
  std::vector<std::array<double, 3>> grad(N * N * N);
  const double h = 1.0 / static_cast<double>(N);
  auto phi = [&](std::size_t x, std::size_t y, std::size_t z) {
    return field[((x % N) * N + (y % N)) * N + (z % N)].real();
  };
  support::ThreadPool::global().for_each(0, N, [&](std::size_t x) {
    for (std::size_t y = 0; y < N; ++y) {
      for (std::size_t z = 0; z < N; ++z) {
        grad[(x * N + y) * N + z] = {
            -(phi(x + 1, y, z) - phi(x + N - 1, y, z)) / (2.0 * h),
            -(phi(x, y + 1, z) - phi(x, y + N - 1, z)) / (2.0 * h),
            -(phi(x, y, z + 1) - phi(x, y, z + N - 1)) / (2.0 * h)};
      }
    }
  });

  // CIC interpolation back to the particles (same kernel as deposit, so
  // the self-force cancels and momentum is conserved).
  force.assign(parts.size(), {0.0, 0.0, 0.0});
  const double g = static_cast<double>(N);
  // Gather: each particle reads the shared gradient grid and writes only
  // force[pi] (unlike the deposit scatter, which stays serial).
  support::ThreadPool::global().for_each(
      0, parts.size(),
      [&](std::size_t pi) {
    const Particle& p = parts[pi];
    const double gx = p.x * g;
    const double gy = p.y * g;
    const double gz = p.z * g;
    const auto x0 = static_cast<std::size_t>(gx) % N;
    const auto y0 = static_cast<std::size_t>(gy) % N;
    const auto z0 = static_cast<std::size_t>(gz) % N;
    const double fx = gx - std::floor(gx);
    const double fy = gy - std::floor(gy);
    const double fz = gz - std::floor(gz);
    for (int ix = 0; ix <= 1; ++ix) {
      for (int iy = 0; iy <= 1; ++iy) {
        for (int iz = 0; iz <= 1; ++iz) {
          const double w = (ix ? fx : 1.0 - fx) * (iy ? fy : 1.0 - fy) *
                           (iz ? fz : 1.0 - fz);
          const auto& a = grad[(((x0 + ix) % N) * N + ((y0 + iy) % N)) * N +
                               ((z0 + iz) % N)];
          force[pi][0] += w * p.mass * a[0];
          force[pi][1] += w * p.mass * a[1];
          force[pi][2] += w * p.mass * a[2];
        }
      }
    }
      },
      /*grain=*/512);
}

// --- performance model ------------------------------------------------------

namespace {

struct KernelSpec {
  const char* name;
  double flops_per_particle;
  double bytes_per_particle;
  double run_length;  ///< 0 = convergent; 32 = warp-chunked tree walk
  int registers;
};

const KernelSpec kGravityKernels[6] = {
    // The chunked short-range tree-walk kernel: interaction lists padded
    // to 32-lane chunks — the wavefront-64 sensitivity of §3.4.
    {"short_range_chunked", 4200.0, 96.0, 32.0, 128},
    {"short_range_p2p", 2600.0, 64.0, 0.0, 96},
    {"pm_deposit", 220.0, 120.0, 0.0, 48},
    {"pm_fft", 350.0, 96.0, 0.0, 64},
    {"pm_gradient", 90.0, 72.0, 0.0, 40},
    {"pm_interpolate", 180.0, 120.0, 0.0, 48},
};

double kernel_seconds(const arch::GpuArch& gpu, const KernelSpec& spec,
                      double particles) {
  sim::KernelProfile p;
  p.name = spec.name;
  p.add_flops(arch::DType::kF32, spec.flops_per_particle * particles);
  p.bytes_read = spec.bytes_per_particle * particles * 0.75;
  p.bytes_written = spec.bytes_per_particle * particles * 0.25;
  p.registers_per_thread = spec.registers;
  p.coherent_run_length = spec.run_length;
  p.compute_efficiency = 0.55;
  p.memory_efficiency = 0.7;
  sim::LaunchConfig launch;
  launch.block_threads = 256;
  launch.blocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(particles / 256.0));
  return sim::kernel_timing(gpu, p, launch).total_s;
}

}  // namespace

namespace {

const KernelSpec kHydroKernels[3] = {
    {"sph_density", 1800.0, 128.0, 0.0, 96},
    {"sph_force", 2600.0, 144.0, 0.0, 120},
    {"eos_update", 160.0, 64.0, 0.0, 40},
};

}  // namespace

StepModel step_model(const arch::Machine& machine, int nodes,
                     double particles_per_rank, SimKind kind,
                     const net::FabricConfig& fabric_config) {
  EXA_REQUIRE(machine.node.has_gpu());
  EXA_REQUIRE(nodes >= 1 && nodes <= machine.node_count);
  const arch::GpuArch& gpu = *machine.node.gpu;
  StepModel m;
  for (const KernelSpec& spec : kGravityKernels) {
    m.kernels.push_back(
        {spec.name, kernel_seconds(gpu, spec, particles_per_rank)});
    m.total_s += m.kernels.back().seconds;
  }
  if (kind == SimKind::kHydro) {
    for (const KernelSpec& spec : kHydroKernels) {
      m.kernels.push_back(
          {spec.name, kernel_seconds(gpu, spec, particles_per_rank)});
      m.total_s += m.kernels.back().seconds;
    }
  }
  // Communication: the PM FFT transpose plus particle overload exchange,
  // issued through the topology-aware fabric (analytic by default).
  const int ranks = nodes * machine.node.gpus_per_node;
  const net::Fabric comm(machine, machine.node.gpus_per_node, fabric_config);
  const double grid_bytes = particles_per_rank * 16.0;  // ~1 cell/particle
  m.comm_s = comm.alltoall(grid_bytes / std::max(1, ranks),
                           std::min(ranks, 1024)) +
             comm.halo_exchange(particles_per_rank * 0.05 * 48.0, 6);
  m.total_s += m.comm_s;
  m.fom = particles_per_rank * static_cast<double>(ranks) / m.total_s;
  return m;
}

std::vector<std::pair<std::string, double>> per_kernel_speedups() {
  const arch::GpuArch v100 = arch::v100();
  const arch::GpuArch mi250x = arch::mi250x_gcd();
  constexpr double kParticles = 1.0e7;
  std::vector<std::pair<std::string, double>> out;
  for (const KernelSpec& spec : kGravityKernels) {
    const double tv = kernel_seconds(v100, spec, kParticles);
    const double tm = kernel_seconds(mi250x, spec, kParticles);
    out.emplace_back(spec.name, tv / tm);
  }
  return out;
}

}  // namespace exa::apps::exasky
