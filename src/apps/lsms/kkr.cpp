#include "apps/lsms/kkr.hpp"

#include <algorithm>
#include <cmath>

#include "mathlib/device_blas.hpp"
#include "support/assert.hpp"

namespace exa::apps::lsms {

LizCluster make_liz_cluster(std::size_t target_atoms, std::size_t block) {
  EXA_REQUIRE(target_atoms >= 1);
  EXA_REQUIRE(block >= 1);
  LizCluster liz;
  liz.block = block;
  // fcc lattice shells around the origin, kept in distance order, cut at
  // the target count.
  std::vector<Site> candidates;
  const int R = 6;
  for (int i = -R; i <= R; ++i) {
    for (int j = -R; j <= R; ++j) {
      for (int k = -R; k <= R; ++k) {
        // fcc: all-even or two-odd-one... use the standard parity rule
        // (i+j+k even keeps the fcc sublattice).
        if ((i + j + k) % 2 != 0) continue;
        candidates.push_back(Site{static_cast<double>(i),
                                  static_cast<double>(j),
                                  static_cast<double>(k)});
      }
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Site& a, const Site& b) {
                     const double ra = a.x * a.x + a.y * a.y + a.z * a.z;
                     const double rb = b.x * b.x + b.y * b.y + b.z * b.z;
                     return ra < rb;
                   });
  EXA_REQUIRE(candidates.size() >= target_atoms);
  liz.sites.assign(candidates.begin(),
                   candidates.begin() + static_cast<std::ptrdiff_t>(target_atoms));
  return liz;
}

std::vector<zcomplex> build_kkr_matrix(const LizCluster& liz, double energy_re,
                                       double energy_im) {
  const std::size_t na = liz.sites.size();
  const std::size_t b = liz.block;
  const std::size_t n = na * b;
  std::vector<zcomplex> m(n * n, zcomplex{});
  const zcomplex k = std::sqrt(zcomplex{energy_re, energy_im});

  for (std::size_t ai = 0; ai < na; ++ai) {
    for (std::size_t aj = 0; aj < na; ++aj) {
      if (ai == aj) {
        // Diagonal blocks: identity plus a small site term; the dominance
        // margin keeps the matrix comfortably nonsingular.
        for (std::size_t l = 0; l < b; ++l) {
          m[(ai * b + l) * n + (aj * b + l)] =
              zcomplex{2.0 + 0.05 * static_cast<double>(l), 0.3};
        }
        continue;
      }
      const double dx = liz.sites[ai].x - liz.sites[aj].x;
      const double dy = liz.sites[ai].y - liz.sites[aj].y;
      const double dz = liz.sites[ai].z - liz.sites[aj].z;
      const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
      // Free-space propagator flavor: exp(i k r) / r, damped so that the
      // row sums stay below the diagonal.
      const zcomplex g = 0.08 * std::exp(zcomplex{0.0, 1.0} * k * r) / r;
      for (std::size_t li = 0; li < b; ++li) {
        for (std::size_t lj = 0; lj < b; ++lj) {
          // Angular structure: cheap deterministic phase per (li, lj).
          const double phase =
              0.35 * static_cast<double>((li * 7 + lj * 3) % 11) *
              (dx + 0.5 * dy - 0.25 * dz) / std::max(r, 1e-9);
          m[(ai * b + li) * n + (aj * b + lj)] =
              g * std::exp(zcomplex{0.0, phase}) /
              (1.0 + 0.15 * static_cast<double>(li + lj));
        }
      }
    }
  }
  return m;
}

std::vector<zcomplex> tau00_block_lu(std::vector<zcomplex> m,
                                     const LizCluster& liz) {
  const std::size_t n = liz.matrix_size();
  std::vector<zcomplex> tau(liz.block * liz.block);
  ml::zblock_lu_inverse_topleft(m, n, liz.block, tau);
  return tau;
}

std::vector<zcomplex> tau00_lu(std::vector<zcomplex> m,
                               const LizCluster& liz) {
  const std::size_t n = liz.matrix_size();
  const std::size_t b = liz.block;
  std::vector<int> piv(n);
  const int info = ml::zgetrf(m, n, piv);
  EXA_REQUIRE_MSG(info == 0, "singular KKR matrix");
  // Solve for the first `b` columns of the identity.
  std::vector<zcomplex> rhs(n * b, zcomplex{});
  for (std::size_t i = 0; i < b; ++i) rhs[i * b + i] = zcomplex{1.0, 0.0};
  ml::zgetrs(m, n, piv, rhs, b);
  // tau00 = top-left block of the inverse.
  std::vector<zcomplex> tau(b * b);
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < b; ++j) tau[i * b + j] = rhs[i * b + j];
  }
  return tau;
}

double charge_for_potential(const LizCluster& liz, double v) {
  // The potential shift enters the diagonal scattering blocks; KKR energy
  // parameters stay fixed.
  std::vector<zcomplex> m = build_kkr_matrix(liz, 0.4, 0.05);
  const std::size_t n = liz.matrix_size();
  for (std::size_t i = 0; i < n; ++i) m[i * n + i] += zcomplex{v, 0.0};
  const std::vector<zcomplex> tau = tau00_lu(m, liz);
  double q = 0.0;
  for (std::size_t l = 0; l < liz.block; ++l) {
    q += tau[l * liz.block + l].imag();
  }
  return -q;  // charge convention: positive for the damped diagonal
}

ScfResult self_consistency_loop(const LizCluster& liz, double q_target,
                                double coupling, double mixing, double tol,
                                int max_iter) {
  EXA_REQUIRE(mixing > 0.0 && mixing <= 1.0);
  ScfResult r;
  double v = 0.0;
  for (int it = 1; it <= max_iter; ++it) {
    r.iterations = it;
    r.charge = charge_for_potential(liz, v);
    const double v_new = coupling * (r.charge - q_target);
    r.residual = std::abs(v_new - v);
    v = (1.0 - mixing) * v + mixing * v_new;
    if (r.residual < tol) {
      r.converged = true;
      break;
    }
  }
  r.potential = v;
  return r;
}

LsmsTimings simulate_atom_solve(const arch::GpuArch& gpu,
                                std::size_t liz_atoms, std::size_t block,
                                SolverPath path, bool index_rearranged) {
  const std::size_t n = liz_atoms * block;
  const double dn = static_cast<double>(n);
  LsmsTimings t;

  sim::LaunchConfig launch;
  launch.block_threads = 256;
  launch.blocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(dn * dn / 1024.0));

  // --- assembly: structure constants + KKR matrix fill -----------------------
  sim::KernelProfile assembly;
  assembly.name = "kkr_assembly";
  // Hankel/Bessel evaluations, phase factors, and Gaunt-coefficient sums
  // per matrix entry keep this kernel compute bound.
  const double fp_work = 200.0 * dn * dn;
  assembly.add_flops(arch::DType::kF64, fp_work);
  // Integer index and address arithmetic competing with the FP pipes: the
  // first implementation recomputed block offsets in the inner loops;
  // rearranging hoisted most of it.
  const double int_work = (index_rearranged ? 0.4 : 2.6) * fp_work;
  assembly.add_flops(arch::DType::kI32, int_work);
  assembly.bytes_read = dn * dn * 4.0;
  assembly.bytes_written = dn * dn * 16.0;
  assembly.registers_per_thread = 120;
  assembly.compute_efficiency = 0.55;
  assembly.memory_efficiency = 0.75;
  t.assembly_s = sim::kernel_timing(gpu, assembly, launch).total_s;

  // --- solve ------------------------------------------------------------------
  if (path == SolverPath::kLibraryLu) {
    const sim::KernelProfile f = ml::getrf_profile(gpu, arch::DType::kC64, n);
    const sim::KernelProfile s =
        ml::getrs_profile(gpu, arch::DType::kC64, n, block);
    t.solve_s = sim::kernel_timing(gpu, f, launch).total_s +
                sim::kernel_timing(gpu, s, launch).total_s;
  } else {
    // Block inversion: ~n/block panel steps, each dominated by a
    // (k x block) x (block x k) ZGEMM with shrinking k — small-k shapes
    // that the GEMM tuning tables punish, plus per-step small-block
    // inversions and kernel launches.
    const std::size_t nb = liz_atoms;
    double solve = 0.0;
    for (std::size_t kb = nb; kb-- > 1;) {
      const std::size_t k = kb * block;
      const sim::KernelProfile upd =
          ml::gemm_profile(gpu, arch::DType::kC64, false, k, k, block);
      sim::LaunchConfig small = launch;
      small.blocks = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(k) * k / 1024);
      solve += sim::kernel_timing(gpu, upd, small).total_s;
      // Diagonal-block inversion of size `block`.
      const sim::KernelProfile inv =
          ml::getrf_profile(gpu, arch::DType::kC64, block);
      sim::LaunchConfig tiny;
      tiny.block_threads = 256;
      tiny.blocks = 4;
      solve += sim::kernel_timing(gpu, inv, tiny).total_s;
    }
    t.solve_s = solve;
  }
  return t;
}

}  // namespace exa::apps::lsms
