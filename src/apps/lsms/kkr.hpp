#pragma once
/// \file kkr.hpp
/// LSMS (§3.2): locally self-consistent multiple scattering. The per-atom
/// work is the solve of a non-Hermitian complex dense "LIZ" (local
/// interaction zone) tau-matrix system. Two solution strategies are
/// implemented, as in the paper:
///  * the historical `zblock_lu` block-inversion algorithm (slightly fewer
///    flops, many small GEMM-shaped panels), and
///  * direct LU via the rocSOLVER-style zgetrf/zgetrs library path the
///    Frontier port adopted.
/// Plus the structure-constants/KKR-assembly kernels whose integer index
/// arithmetic interfered with FP throughput on MI250X until rearranged.

#include <complex>
#include <cstddef>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "mathlib/lu.hpp"
#include "sim/exec_model.hpp"

namespace exa::apps::lsms {

using ml::zcomplex;

struct Site {
  double x = 0.0, y = 0.0, z = 0.0;
};

/// A local interaction zone: the central atom plus neighbors within the
/// LIZ radius, fcc-like lattice.
struct LizCluster {
  std::vector<Site> sites;      ///< sites[0] is the central atom
  std::size_t block = 16;       ///< angular-momentum block size (lmax+1)^2

  [[nodiscard]] std::size_t matrix_size() const {
    return sites.size() * block;
  }
};

/// Builds a LIZ with approximately `target_atoms` sites.
[[nodiscard]] LizCluster make_liz_cluster(std::size_t target_atoms,
                                          std::size_t block);

/// Assembles the KKR matrix M = 1 - t G(E): diagonally dominant,
/// off-diagonal blocks decay as exp(i k r)/r — well conditioned, solvable
/// by both strategies.
[[nodiscard]] std::vector<zcomplex> build_kkr_matrix(const LizCluster& liz,
                                                     double energy_re,
                                                     double energy_im);

/// tau00 via the historical block-inversion path.
[[nodiscard]] std::vector<zcomplex> tau00_block_lu(std::vector<zcomplex> m,
                                                   const LizCluster& liz);
/// tau00 via the library LU path (zgetrf + zgetrs on the leading columns).
[[nodiscard]] std::vector<zcomplex> tau00_lu(std::vector<zcomplex> m,
                                             const LizCluster& liz);

// --- self-consistency ------------------------------------------------------
// The "locally self-consistent" in LSMS: the scattering potential depends
// on the charge, which depends on tau00, which depends on the potential.
// A damped fixed-point loop with a real tau00 solve per iteration.

struct ScfResult {
  int iterations = 0;
  bool converged = false;
  double potential = 0.0;  ///< the self-consistent diagonal shift
  double charge = 0.0;     ///< Im tr(tau00) at convergence
  double residual = 0.0;
};

/// Runs the charge self-consistency loop on a LIZ: potential shift v
/// enters the diagonal blocks, charge q(v) = Im tr(tau00(v)), and the new
/// potential is v0 + coupling * (q - q_target), mixed with `mixing`.
[[nodiscard]] ScfResult self_consistency_loop(const LizCluster& liz,
                                              double q_target,
                                              double coupling = 0.4,
                                              double mixing = 0.5,
                                              double tol = 1e-10,
                                              int max_iter = 200);

/// Charge observable for a given potential shift (exposed for tests).
[[nodiscard]] double charge_for_potential(const LizCluster& liz, double v);

// --- device timing model -------------------------------------------------

enum class SolverPath { kBlockInversion, kLibraryLu };

struct LsmsTimings {
  double assembly_s = 0.0;  ///< structure constants + KKR matrix kernels
  double solve_s = 0.0;     ///< tau-matrix solve
  [[nodiscard]] double total() const { return assembly_s + solve_s; }
};

/// Per-atom simulated solve time on `gpu`.
/// `index_rearranged` models the §3.2 fix that moved integer index/address
/// calculations out of the floating-point inner loops.
[[nodiscard]] LsmsTimings simulate_atom_solve(const arch::GpuArch& gpu,
                                              std::size_t liz_atoms,
                                              std::size_t block,
                                              SolverPath path,
                                              bool index_rearranged);

}  // namespace exa::apps::lsms
