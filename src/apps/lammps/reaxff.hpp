#pragma once
/// \file reaxff.hpp
/// ReaxFF-style torsional force evaluation, in the two forms §3.10.2
/// contrasts:
///
///  * the *divergent* original pattern (Algorithm 1 in the paper): every
///    thread walks nested neighbor/bond loops, cutoff checks prune most
///    tuples, "on average only a handful of threads in the entire
///    wavefront were active";
///  * the *preprocessed* optimization: a cheap preprocessor kernel emits
///    the list of surviving (i, j, k, l) tuples, and a dense kernel then
///    evaluates exactly those — "almost all of the control flow ... can be
///    eliminated".
///
/// Both paths produce identical forces (asserted by tests). The torsional
/// potential is E = k (1 + cos phi) with the standard analytic gradient,
/// so total force and momentum conservation are physically testable.

#include <cstdint>
#include <vector>

#include "apps/lammps/system.hpp"
#include "arch/gpu_arch.hpp"
#include "sim/exec_model.hpp"

namespace exa::apps::lammps {

struct TorsionParams {
  double k = 1.0;           ///< barrier height
  double pair_cutoff = 3.0; ///< distance cutoff on (j,k) and outer atoms
};

/// One surviving interaction tuple.
struct TorsionTuple {
  std::uint32_t i, j, k, l;
};

struct ForceResult {
  std::vector<Vec3> force;
  double energy = 0.0;
  std::uint64_t tuples_evaluated = 0;
  std::uint64_t tuples_considered = 0;  ///< cutoff checks performed
};

/// Divergent evaluation: nested loops with cutoff checks per Algorithm 1.
[[nodiscard]] ForceResult torsion_divergent(const System& sys,
                                            const NeighborList& neigh,
                                            const BondList& bonds,
                                            const TorsionParams& params);

/// Preprocessor kernel: computes the surviving tuple list only.
[[nodiscard]] std::vector<TorsionTuple> torsion_preprocess(
    const System& sys, const NeighborList& neigh, const BondList& bonds,
    const TorsionParams& params);

/// Dense evaluation over a precomputed tuple list.
[[nodiscard]] ForceResult torsion_dense(const System& sys,
                                        const std::vector<TorsionTuple>& tuples,
                                        const TorsionParams& params);

/// Energy and forces of a single dihedral (exposed for gradient tests).
double torsion_term(const Vec3& r1, const Vec3& r2, const Vec3& r3,
                    const Vec3& r4, double k, Vec3& f1, Vec3& f2, Vec3& f3,
                    Vec3& f4);

// --- angular (3-body) term --------------------------------------------------
// The same §3.10.2 pattern "appeared in the evaluation of Angular and
// Torsional force-field terms": the angular kernels get the identical
// divergent/dense treatment.

struct AngleParams {
  double k = 1.0;           ///< harmonic strength in cos(theta)
  double cos_theta0 = -0.5; ///< equilibrium: ~120 degrees
  double pair_cutoff = 3.0;
};

struct AngleTuple {
  std::uint32_t i, j, k;  ///< j is the central atom
};

/// Energy/forces of one i-j-k angle: E = k (cos theta - cos theta0)^2,
/// analytic gradient. Returns the energy; accumulates into f1..f3.
double angle_term(const Vec3& ri, const Vec3& rj, const Vec3& rk, double k,
                  double cos_theta0, Vec3& fi, Vec3& fj, Vec3& fk);

/// Divergent evaluation (nested bond-list loops with cutoff pruning).
[[nodiscard]] ForceResult angle_divergent(const System& sys,
                                          const BondList& bonds,
                                          const AngleParams& params);
/// Preprocessor + dense evaluation.
[[nodiscard]] std::vector<AngleTuple> angle_preprocess(
    const System& sys, const BondList& bonds, const AngleParams& params);
[[nodiscard]] ForceResult angle_dense(const System& sys,
                                      const std::vector<AngleTuple>& tuples,
                                      const AngleParams& params);

// --- device cost profiles ---------------------------------------------------

/// Statistics the profiles need: measured from a functional run.
struct TorsionStats {
  std::size_t atoms = 0;
  double avg_neighbors = 0.0;
  double avg_bonds = 0.0;
  std::uint64_t surviving_tuples = 0;
};

[[nodiscard]] TorsionStats measure_stats(const System& sys,
                                         const NeighborList& neigh,
                                         const BondList& bonds,
                                         const TorsionParams& params);

/// Profile of the divergent kernel: huge considered-tuple count with a
/// tiny coherent run length and heavy register pressure (the paper's
/// spilling kernels, ~280 VGPRs before the compiler fix).
[[nodiscard]] sim::KernelProfile divergent_profile(const arch::GpuArch& gpu,
                                                   const TorsionStats& stats);
/// Profile of the cheap preprocessor kernel (cutoff checks only).
[[nodiscard]] sim::KernelProfile preprocess_profile(const arch::GpuArch& gpu,
                                                    const TorsionStats& stats);
/// Profile of the dense evaluation over the surviving tuples.
[[nodiscard]] sim::KernelProfile dense_profile(const arch::GpuArch& gpu,
                                               const TorsionStats& stats);

/// End-to-end simulated time of one torsion evaluation on `gpu` with and
/// without the preprocessing optimization, including the §3.10.3 compiler
/// spill fix as a toggle.
struct TorsionTimings {
  double divergent_s = 0.0;
  double preprocessed_s = 0.0;  ///< preprocess + dense
  [[nodiscard]] double speedup() const { return divergent_s / preprocessed_s; }
};
[[nodiscard]] TorsionTimings simulate_torsion(const arch::GpuArch& gpu,
                                              const TorsionStats& stats,
                                              bool compiler_spill_fix);

}  // namespace exa::apps::lammps
