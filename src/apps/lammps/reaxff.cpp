#include "apps/lammps/reaxff.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::apps::lammps {

namespace {

bool within(const System& sys, std::size_t a, std::size_t b, double cutoff) {
  return (sys.pos[a] - sys.pos[b]).norm2() < cutoff * cutoff;
}

}  // namespace

double torsion_term(const Vec3& r1, const Vec3& r2, const Vec3& r3,
                    const Vec3& r4, double k, Vec3& f1, Vec3& f2, Vec3& f3,
                    Vec3& f4) {
  const Vec3 b1 = r2 - r1;
  const Vec3 b2 = r3 - r2;
  const Vec3 b3 = r4 - r3;
  const Vec3 n1 = b1.cross(b2);
  const Vec3 n2 = b2.cross(b3);
  const double n1sq = n1.norm2();
  const double n2sq = n2.norm2();
  const double b2len = b2.norm();
  if (n1sq < 1e-12 || n2sq < 1e-12 || b2len < 1e-12) {
    f1 = f2 = f3 = f4 = Vec3{};
    return 0.0;
  }
  const double cosphi =
      std::clamp(n1.dot(n2) / std::sqrt(n1sq * n2sq), -1.0, 1.0);
  const double sinphi = n1.cross(n2).dot(b2) / (b2len * std::sqrt(n1sq * n2sq));
  const double phi = std::atan2(sinphi, cosphi);

  const double energy = k * (1.0 + std::cos(phi));
  const double dEdphi = -k * std::sin(phi);

  // Standard analytic dihedral gradient (Blondel & Karplus form):
  // dphi/dr1 = -|b2|/|n1|^2 n1, dphi/dr4 = |b2|/|n2|^2 n2; F = -dE/dphi
  // times those.
  f1 = n1 * (dEdphi * b2len / n1sq);
  f4 = n2 * (-dEdphi * b2len / n2sq);
  const double tq1 = b1.dot(b2) / (b2len * b2len);
  const double tq2 = b3.dot(b2) / (b2len * b2len);
  f2 = (f1 * -1.0) + (f1 * tq1) - (f4 * tq2);
  f3 = (f4 * -1.0) - (f1 * tq1) + (f4 * tq2);
  return energy;
}

ForceResult torsion_divergent(const System& sys, const NeighborList& neigh,
                              const BondList& bonds,
                              const TorsionParams& params) {
  ForceResult r;
  r.force.assign(sys.size(), Vec3{});
  // The Algorithm-1 pattern: i marches across atoms; j from the distance
  // neighbor list of i; k from the bond list of j; l from the bond list of
  // k; cutoff checks prune at every level.
  for (std::size_t i = 0; i < sys.size(); ++i) {
    for (std::size_t pj = neigh.offsets[i]; pj < neigh.offsets[i + 1]; ++pj) {
      const std::size_t j = neigh.partners[pj];
      ++r.tuples_considered;
      if (!within(sys, i, j, params.pair_cutoff)) continue;
      for (std::size_t pk = bonds.offsets[j]; pk < bonds.offsets[j + 1]; ++pk) {
        const std::size_t k = bonds.partners[pk];
        ++r.tuples_considered;
        if (k == i) continue;
        if (!within(sys, j, k, params.pair_cutoff)) continue;
        for (std::size_t pl = bonds.offsets[k]; pl < bonds.offsets[k + 1];
             ++pl) {
          const std::size_t l = bonds.partners[pl];
          ++r.tuples_considered;
          if (l == j || l == i) continue;
          if (!within(sys, k, l, params.pair_cutoff)) continue;
          Vec3 f1, f2, f3, f4;
          r.energy += torsion_term(sys.pos[i], sys.pos[j], sys.pos[k],
                                   sys.pos[l], params.k, f1, f2, f3, f4);
          r.force[i] += f1;
          r.force[j] += f2;
          r.force[k] += f3;
          r.force[l] += f4;
          ++r.tuples_evaluated;
        }
      }
    }
  }
  return r;
}

std::vector<TorsionTuple> torsion_preprocess(const System& sys,
                                             const NeighborList& neigh,
                                             const BondList& bonds,
                                             const TorsionParams& params) {
  std::vector<TorsionTuple> tuples;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    for (std::size_t pj = neigh.offsets[i]; pj < neigh.offsets[i + 1]; ++pj) {
      const std::size_t j = neigh.partners[pj];
      if (!within(sys, i, j, params.pair_cutoff)) continue;
      for (std::size_t pk = bonds.offsets[j]; pk < bonds.offsets[j + 1]; ++pk) {
        const std::size_t k = bonds.partners[pk];
        if (k == i || !within(sys, j, k, params.pair_cutoff)) continue;
        for (std::size_t pl = bonds.offsets[k]; pl < bonds.offsets[k + 1];
             ++pl) {
          const std::size_t l = bonds.partners[pl];
          if (l == j || l == i || !within(sys, k, l, params.pair_cutoff)) {
            continue;
          }
          tuples.push_back(TorsionTuple{
              static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j),
              static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(l)});
        }
      }
    }
  }
  return tuples;
}

ForceResult torsion_dense(const System& sys,
                          const std::vector<TorsionTuple>& tuples,
                          const TorsionParams& params) {
  ForceResult r;
  r.force.assign(sys.size(), Vec3{});
  r.tuples_considered = tuples.size();
  // Two phases keep the result bitwise identical to the serial loop while
  // the expensive trig runs in parallel: per-tuple terms land in a dense
  // scratch array (disjoint writes), then a serial scatter accumulates
  // forces and energy in tuple order.
  struct TupleForce {
    Vec3 f1, f2, f3, f4;
    double energy = 0.0;
  };
  std::vector<TupleForce> terms(tuples.size());
  support::ThreadPool::global().for_each(
      0, tuples.size(),
      [&](std::size_t ti) {
        const TorsionTuple& t = tuples[ti];
        TupleForce& out = terms[ti];
        out.energy =
            torsion_term(sys.pos[t.i], sys.pos[t.j], sys.pos[t.k],
                         sys.pos[t.l], params.k, out.f1, out.f2, out.f3,
                         out.f4);
      },
      /*grain=*/64);
  for (std::size_t ti = 0; ti < tuples.size(); ++ti) {
    const TorsionTuple& t = tuples[ti];
    const TupleForce& f = terms[ti];
    r.energy += f.energy;
    r.force[t.i] += f.f1;
    r.force[t.j] += f.f2;
    r.force[t.k] += f.f3;
    r.force[t.l] += f.f4;
    ++r.tuples_evaluated;
  }
  return r;
}

double angle_term(const Vec3& ri, const Vec3& rj, const Vec3& rk, double k,
                  double cos_theta0, Vec3& fi, Vec3& fj, Vec3& fk) {
  const Vec3 rij = ri - rj;
  const Vec3 rkj = rk - rj;
  const double lij = rij.norm();
  const double lkj = rkj.norm();
  if (lij < 1e-12 || lkj < 1e-12) {
    fi = fj = fk = Vec3{};
    return 0.0;
  }
  const double c = rij.dot(rkj) / (lij * lkj);
  const double d = c - cos_theta0;
  const double energy = k * d * d;
  const double dEdc = 2.0 * k * d;

  // d cos(theta) / d ri = rkj/(|rij||rkj|) - c * rij/|rij|^2 (and i<->k).
  const Vec3 dc_dri = rkj * (1.0 / (lij * lkj)) - rij * (c / (lij * lij));
  const Vec3 dc_drk = rij * (1.0 / (lij * lkj)) - rkj * (c / (lkj * lkj));
  fi = dc_dri * (-dEdc);
  fk = dc_drk * (-dEdc);
  fj = (fi + fk) * -1.0;
  return energy;
}

ForceResult angle_divergent(const System& sys, const BondList& bonds,
                            const AngleParams& params) {
  ForceResult r;
  r.force.assign(sys.size(), Vec3{});
  // Central atom j; pairs of its bond partners (i < k to avoid doubles).
  for (std::size_t j = 0; j < sys.size(); ++j) {
    for (std::size_t pi = bonds.offsets[j]; pi < bonds.offsets[j + 1]; ++pi) {
      const std::size_t i = bonds.partners[pi];
      for (std::size_t pk = pi + 1; pk < bonds.offsets[j + 1]; ++pk) {
        const std::size_t k = bonds.partners[pk];
        ++r.tuples_considered;
        if (!within(sys, i, j, params.pair_cutoff) ||
            !within(sys, j, k, params.pair_cutoff)) {
          continue;
        }
        Vec3 fi, fj, fk;
        r.energy += angle_term(sys.pos[i], sys.pos[j], sys.pos[k], params.k,
                               params.cos_theta0, fi, fj, fk);
        r.force[i] += fi;
        r.force[j] += fj;
        r.force[k] += fk;
        ++r.tuples_evaluated;
      }
    }
  }
  return r;
}

std::vector<AngleTuple> angle_preprocess(const System& sys,
                                         const BondList& bonds,
                                         const AngleParams& params) {
  std::vector<AngleTuple> tuples;
  for (std::size_t j = 0; j < sys.size(); ++j) {
    for (std::size_t pi = bonds.offsets[j]; pi < bonds.offsets[j + 1]; ++pi) {
      const std::size_t i = bonds.partners[pi];
      for (std::size_t pk = pi + 1; pk < bonds.offsets[j + 1]; ++pk) {
        const std::size_t k = bonds.partners[pk];
        if (!within(sys, i, j, params.pair_cutoff) ||
            !within(sys, j, k, params.pair_cutoff)) {
          continue;
        }
        tuples.push_back(AngleTuple{static_cast<std::uint32_t>(i),
                                    static_cast<std::uint32_t>(j),
                                    static_cast<std::uint32_t>(k)});
      }
    }
  }
  return tuples;
}

ForceResult angle_dense(const System& sys,
                        const std::vector<AngleTuple>& tuples,
                        const AngleParams& params) {
  ForceResult r;
  r.force.assign(sys.size(), Vec3{});
  r.tuples_considered = tuples.size();
  // Same two-phase shape as torsion_dense: parallel per-tuple terms,
  // serial in-order scatter for bitwise-stable accumulation.
  struct TupleForce {
    Vec3 fi, fj, fk;
    double energy = 0.0;
  };
  std::vector<TupleForce> terms(tuples.size());
  support::ThreadPool::global().for_each(
      0, tuples.size(),
      [&](std::size_t ti) {
        const AngleTuple& t = tuples[ti];
        TupleForce& out = terms[ti];
        out.energy = angle_term(sys.pos[t.i], sys.pos[t.j], sys.pos[t.k],
                                params.k, params.cos_theta0, out.fi, out.fj,
                                out.fk);
      },
      /*grain=*/64);
  for (std::size_t ti = 0; ti < tuples.size(); ++ti) {
    const AngleTuple& t = tuples[ti];
    const TupleForce& f = terms[ti];
    r.energy += f.energy;
    r.force[t.i] += f.fi;
    r.force[t.j] += f.fj;
    r.force[t.k] += f.fk;
    ++r.tuples_evaluated;
  }
  return r;
}

TorsionStats measure_stats(const System& sys, const NeighborList& neigh,
                           const BondList& bonds,
                           const TorsionParams& params) {
  TorsionStats s;
  s.atoms = sys.size();
  s.avg_neighbors =
      static_cast<double>(neigh.pairs()) / static_cast<double>(sys.size());
  s.avg_bonds = static_cast<double>(bonds.offsets.back()) /
                static_cast<double>(sys.size());
  s.surviving_tuples = torsion_preprocess(sys, neigh, bonds, params).size();
  return s;
}

namespace {
/// Real flops of one full torsion term (trig + three cross products).
constexpr double kTorsionFlops = 150.0;
/// Flops of one cutoff check (distance + compare).
constexpr double kCutoffFlops = 10.0;
}  // namespace

sim::KernelProfile divergent_profile(const arch::GpuArch& gpu,
                                     const TorsionStats& stats) {
  (void)gpu;
  const double atoms = static_cast<double>(stats.atoms);
  const double considered =
      atoms * stats.avg_neighbors * stats.avg_bonds * stats.avg_bonds;
  const double survived = static_cast<double>(stats.surviving_tuples);

  sim::KernelProfile p;
  p.name = "torsion_divergent";
  p.add_flops(arch::DType::kF64,
              considered * kCutoffFlops + survived * kTorsionFlops);
  p.bytes_read = considered * 24.0 + survived * 96.0;  // gathered positions
  p.bytes_written = survived * 4.0 * 24.0;             // scattered forces
  // "only a handful of threads in the entire wavefront were active": the
  // survivors are scattered through the loop nest, so convergent runs are
  // ~the survival fraction times the wavefront.
  const double survival = std::max(1e-3, survived / std::max(1.0, considered));
  p.coherent_run_length = std::max(1.5, survival * 64.0);
  // The full force expression lives inside the loop nest: the paper's
  // spilling kernels (register demand beyond even CDNA2's 512-VGPR file).
  p.registers_per_thread = 540;
  p.compute_efficiency = 0.6;
  // Sparse active lanes waste most of every cache line they touch.
  p.memory_efficiency = 0.3;
  return p;
}

sim::KernelProfile preprocess_profile(const arch::GpuArch& gpu,
                                      const TorsionStats& stats) {
  (void)gpu;
  const double atoms = static_cast<double>(stats.atoms);
  const double considered =
      atoms * stats.avg_neighbors * stats.avg_bonds * stats.avg_bonds;
  sim::KernelProfile p;
  p.name = "torsion_preprocess";
  p.add_flops(arch::DType::kF64, considered * kCutoffFlops);
  p.bytes_read = considered * 24.0;
  p.bytes_written = static_cast<double>(stats.surviving_tuples) * 16.0;
  // Cutoff checks are short, so divergence hurts far less; and the kernel
  // is small: no spills.
  p.coherent_run_length = 16.0;
  p.registers_per_thread = 40;
  p.compute_efficiency = 0.7;
  p.memory_efficiency = 0.6;
  return p;
}

sim::KernelProfile dense_profile(const arch::GpuArch& gpu,
                                 const TorsionStats& stats) {
  (void)gpu;
  const double survived = static_cast<double>(stats.surviving_tuples);
  sim::KernelProfile p;
  p.name = "torsion_dense";
  p.add_flops(arch::DType::kF64, survived * kTorsionFlops);
  p.bytes_read = survived * (16.0 + 96.0);  // tuple + positions
  p.bytes_written = survived * 4.0 * 24.0;
  p.coherent_run_length = 0.0;  // every lane computes a real tuple
  p.registers_per_thread = 540; // same force expression
  p.compute_efficiency = 0.75;
  p.memory_efficiency = 0.65;  // dense, mostly coalesced tuple stream
  return p;
}

TorsionTimings simulate_torsion(const arch::GpuArch& gpu,
                                const TorsionStats& stats,
                                bool compiler_spill_fix) {
  sim::ExecTuning tuning;
  // §3.10.3: inefficient spilling of double-precision constants between
  // scalar and vector registers tripled effective spill traffic until the
  // compiler fix landed.
  tuning.spill_traffic_multiplier = compiler_spill_fix ? 1.0 : 3.0;

  const auto launch_for = [](double items) {
    sim::LaunchConfig cfg;
    cfg.block_threads = 256;
    cfg.blocks =
        static_cast<std::uint64_t>(std::max(1.0, std::ceil(items / 256.0)));
    return cfg;
  };

  TorsionTimings t;
  const double atoms = static_cast<double>(stats.atoms);
  t.divergent_s =
      sim::kernel_timing(gpu, divergent_profile(gpu, stats), launch_for(atoms),
                         tuning)
          .total_s;
  const double pre =
      sim::kernel_timing(gpu, preprocess_profile(gpu, stats),
                         launch_for(atoms), tuning)
          .total_s;
  const double dense =
      sim::kernel_timing(gpu, dense_profile(gpu, stats),
                         launch_for(static_cast<double>(stats.surviving_tuples)),
                         tuning)
          .total_s;
  t.preprocessed_s = pre + dense;
  return t;
}

}  // namespace exa::apps::lammps
