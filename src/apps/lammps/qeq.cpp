#include "apps/lammps/qeq.hpp"

#include <cmath>

#include "mathlib/device_blas.hpp"
#include "net/fabric.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::apps::lammps {

QeqMatrix build_qeq_matrix(const System& sys, const NeighborList& neigh,
                           double cutoff) {
  const std::size_t n = sys.size();
  QeqMatrix h;
  h.n = n;

  // Gather symmetric adjacency with shielded-Coulomb couplings.
  std::vector<std::vector<std::pair<std::size_t, double>>> rows(n);
  const double rc2 = cutoff * cutoff;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = neigh.offsets[i]; p < neigh.offsets[i + 1]; ++p) {
      const std::size_t j = neigh.partners[p];
      const double r2 = (sys.pos[i] - sys.pos[j]).norm2();
      if (r2 >= rc2) continue;
      // Shielded 1/r: gamma softens the short-range singularity.
      constexpr double kGamma = 0.8;
      const double r = std::sqrt(r2);
      const double v = 1.0 / std::cbrt(r * r * r + kGamma);
      rows[i].emplace_back(j, v);
      rows[j].emplace_back(i, v);
    }
  }

  h.row_ptr.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    h.row_ptr[i + 1] = h.row_ptr[i] + rows[i].size() + 1;  // +1 diagonal
  }
  h.col.reserve(h.row_ptr[n]);
  h.val.reserve(h.row_ptr[n]);
  for (std::size_t i = 0; i < n; ++i) {
    double offdiag_sum = 0.0;
    for (const auto& [j, v] : rows[i]) offdiag_sum += std::fabs(v);
    // Diagonal = hardness + off-diagonal dominance margin: strictly
    // diagonally dominant symmetric => SPD.
    bool placed_diag = false;
    const double diag = sys.hardness[i] + offdiag_sum;
    for (const auto& [j, v] : rows[i]) {
      if (!placed_diag && j > i) {
        h.col.push_back(i);
        h.val.push_back(diag);
        placed_diag = true;
      }
      h.col.push_back(j);
      h.val.push_back(v);
    }
    if (!placed_diag) {
      h.col.push_back(i);
      h.val.push_back(diag);
    }
  }
  return h;
}

void spmv(const QeqMatrix& a, std::span<const double> x, std::span<double> y) {
  EXA_REQUIRE(x.size() >= a.n && y.size() >= a.n);
  // Rows write disjoint y[r] with a row-local accumulator, so the parallel
  // result is bitwise identical to the serial loop. The grain keeps the
  // small CG systems of the unit tests on the inline path.
  support::ThreadPool::global().for_chunks(
      0, a.n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          double acc = 0.0;
          for (std::size_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
            acc += a.val[p] * x[a.col[p]];
          }
          y[r] = acc;
        }
      },
      /*grain=*/256);
}

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return dot(a, a); }

}  // namespace

CgStats cg_solve(const QeqMatrix& a, std::span<const double> b,
                 std::span<double> x, double tol, int max_iter) {
  const std::size_t n = a.n;
  EXA_REQUIRE(b.size() >= n && x.size() >= n);
  CgStats stats;

  std::vector<double> r(n);
  std::vector<double> p(n);
  std::vector<double> ap(n);
  spmv(a, x, r);
  ++stats.matrix_reads;
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  std::copy(r.begin(), r.end(), p.begin());
  double rr = norm2(r);
  const double threshold = tol * tol * std::max(norm2(b), 1e-300);
  ++stats.allreduces;  // ||b||, ||r0||

  while (stats.iterations < max_iter) {
    if (rr <= threshold) {
      stats.converged = true;
      break;
    }
    spmv(a, p, ap);
    ++stats.matrix_reads;
    const double pap = dot(p, ap);
    ++stats.allreduces;  // p.Ap
    EXA_REQUIRE_MSG(pap > 0.0, "QEq matrix is not positive definite");
    const double alpha = rr / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = norm2(r);
    ++stats.allreduces;  // r.r
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
    ++stats.iterations;
  }
  stats.converged = stats.converged || rr <= threshold;
  return stats;
}

CgStats cg_solve_dual(const QeqMatrix& a, std::span<const double> b1,
                      std::span<const double> b2, std::span<double> x1,
                      std::span<double> x2, double tol, int max_iter) {
  const std::size_t n = a.n;
  CgStats stats;

  struct State {
    std::vector<double> r, p, ap;
    double rr = 0.0;
    double threshold = 0.0;
    bool done = false;
  };
  State s1{std::vector<double>(n), std::vector<double>(n),
           std::vector<double>(n)};
  State s2{std::vector<double>(n), std::vector<double>(n),
           std::vector<double>(n)};

  auto init = [&](State& s, std::span<const double> b, std::span<double> x) {
    spmv(a, x, s.r);
    for (std::size_t i = 0; i < n; ++i) s.r[i] = b[i] - s.r[i];
    std::copy(s.r.begin(), s.r.end(), s.p.begin());
    s.rr = norm2(s.r);
    s.threshold = tol * tol * std::max(norm2(b), 1e-300);
  };
  init(s1, b1, x1);
  init(s2, b2, x2);
  stats.matrix_reads += 1;  // the two initial SpMVs fuse like iterations do
  stats.allreduces += 1;

  while (stats.iterations < max_iter) {
    s1.done = s1.done || s1.rr <= s1.threshold;
    s2.done = s2.done || s2.rr <= s2.threshold;
    if (s1.done && s2.done) {
      stats.converged = true;
      break;
    }
    // One fused two-vector SpMV: the matrix is streamed once for both
    // right-hand sides (the bandwidth saving the paper describes).
    if (!s1.done) spmv(a, s1.p, s1.ap);
    if (!s2.done) spmv(a, s2.p, s2.ap);
    ++stats.matrix_reads;

    auto advance = [&](State& s, std::span<double> x) {
      if (s.done) return;
      const double pap = dot(s.p, s.ap);
      EXA_REQUIRE_MSG(pap > 0.0, "QEq matrix is not positive definite");
      const double alpha = s.rr / pap;
      for (std::size_t i = 0; i < n; ++i) {
        x[i] += alpha * s.p[i];
        s.r[i] -= alpha * s.ap[i];
      }
      const double rr_new = norm2(s.r);
      const double beta = rr_new / s.rr;
      for (std::size_t i = 0; i < n; ++i) s.p[i] = s.r[i] + beta * s.p[i];
      s.rr = rr_new;
    };
    advance(s1, x1);
    advance(s2, x2);
    ++stats.allreduces;  // all dot products fused into one reduction
    ++stats.iterations;
  }
  stats.converged = (s1.rr <= s1.threshold) && (s2.rr <= s2.threshold);
  return stats;
}

QeqResult equilibrate(const System& sys, const QeqMatrix& h, bool fused,
                      double tol, int max_iter) {
  const std::size_t n = sys.size();
  std::vector<double> neg_chi(n);
  std::vector<double> neg_one(n, -1.0);
  for (std::size_t i = 0; i < n; ++i) neg_chi[i] = -sys.electronegativity[i];

  std::vector<double> s(n, 0.0);
  std::vector<double> t(n, 0.0);
  QeqResult result;
  if (fused) {
    result.stats = cg_solve_dual(h, neg_chi, neg_one, s, t, tol, max_iter);
  } else {
    const CgStats a = cg_solve(h, neg_chi, s, tol, max_iter);
    const CgStats b = cg_solve(h, neg_one, t, tol, max_iter);
    result.stats.iterations = a.iterations + b.iterations;
    result.stats.matrix_reads = a.matrix_reads + b.matrix_reads;
    result.stats.allreduces = a.allreduces + b.allreduces;
    result.stats.converged = a.converged && b.converged;
  }

  double sum_s = 0.0;
  double sum_t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_s += s[i];
    sum_t += t[i];
  }
  EXA_REQUIRE(sum_t != 0.0);
  const double lambda = sum_s / sum_t;
  result.charges.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.charges[i] = s[i] - lambda * t[i];
  }
  return result;
}

double simulate_qeq_time(const arch::Machine& machine,
                         std::size_t atoms_per_rank, std::size_t nnz_per_rank,
                         const CgStats& stats, int vectors, int ranks,
                         const net::FabricConfig& fabric_config) {
  EXA_REQUIRE(machine.node.has_gpu());
  const arch::GpuArch& gpu = *machine.node.gpu;
  const net::Fabric comm(machine, machine.node.gpus_per_node, fabric_config);

  sim::LaunchConfig launch;
  launch.block_threads = 256;
  launch.blocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(atoms_per_rank) / 256);

  const sim::KernelProfile p =
      ml::spmv_profile(gpu, atoms_per_rank, nnz_per_rank, vectors);
  const double spmv_s = sim::kernel_timing(gpu, p, launch).total_s;
  // Each allreduce moves the fused dot products (3 doubles per vector).
  const double reduce_s =
      comm.allreduce(static_cast<double>(vectors) * 24.0, ranks);
  // Halo exchange of the direction vector(s) before each SpMV.
  const double halo_s = comm.halo_exchange(
      static_cast<double>(atoms_per_rank) * 0.1 * 8.0 * vectors, 6);

  return static_cast<double>(stats.matrix_reads) * spmv_s +
         static_cast<double>(stats.allreduces) * reduce_s +
         static_cast<double>(stats.matrix_reads) * halo_s;
}

}  // namespace exa::apps::lammps
