#pragma once
/// \file qeq.hpp
/// Partial charge equilibration (QEq) for ReaxFF — §3.10.2's second
/// optimization. QEq solves two sparse SPD systems with the *same* matrix,
///     H s = -chi      and      H t = -1,
/// then forms charges q = s - (sum s / sum t) t. The historical code ran
/// two sequential CG solves; Aktulga et al.'s optimization iterates both
/// recurrences jointly so each loop trip reads the matrix once (halving
/// SpMV bandwidth) and each iteration's dot products share one allreduce
/// (halving the poorly-scaling communication).

#include <cstdint>
#include <span>
#include <vector>

#include "apps/lammps/system.hpp"
#include "arch/machine.hpp"
#include "net/fabric.hpp"

namespace exa::apps::lammps {

/// CSR symmetric positive-definite QEq matrix.
struct QeqMatrix {
  std::size_t n = 0;
  std::vector<std::size_t> row_ptr;
  std::vector<std::size_t> col;
  std::vector<double> val;

  [[nodiscard]] std::size_t nnz() const { return col.size(); }
};

/// Shielded-Coulomb interaction matrix over the neighbor list, made
/// strictly diagonally dominant (hence SPD) by the hardness diagonal.
[[nodiscard]] QeqMatrix build_qeq_matrix(const System& sys,
                                         const NeighborList& neigh,
                                         double cutoff);

void spmv(const QeqMatrix& a, std::span<const double> x, std::span<double> y);

/// Cost accounting for the solver comparison.
struct CgStats {
  int iterations = 0;           ///< loop trips
  std::uint64_t matrix_reads = 0;  ///< times the CSR arrays were streamed
  int allreduces = 0;           ///< communication phases
  bool converged = false;
};

/// Plain conjugate gradient on A x = b; x is the initial guess in, the
/// solution out. Converges when ||r|| <= tol * ||b||.
[[nodiscard]] CgStats cg_solve(const QeqMatrix& a, std::span<const double> b,
                               std::span<double> x, double tol, int max_iter);

/// Joint dual-RHS CG: both recurrences advance in one loop; each trip
/// streams the matrix once (a two-vector SpMV) and fuses the dot-product
/// reductions into a single allreduce.
[[nodiscard]] CgStats cg_solve_dual(const QeqMatrix& a,
                                    std::span<const double> b1,
                                    std::span<const double> b2,
                                    std::span<double> x1, std::span<double> x2,
                                    double tol, int max_iter);

struct QeqResult {
  std::vector<double> charges;  ///< sums to ~0
  CgStats stats;                ///< combined solver cost
};

/// Full charge equilibration via split (two sequential CGs) or fused
/// (joint dual CG) solver strategy. Both produce the same charges.
[[nodiscard]] QeqResult equilibrate(const System& sys, const QeqMatrix& h,
                                    bool fused, double tol = 1e-10,
                                    int max_iter = 2000);

/// Simulated per-equilibration wall time on `machine`: per loop trip, a
/// device SpMV (single- or dual-vector) plus the CG dot-product allreduce
/// across ranks. Collectives are issued through the topology-aware fabric;
/// the default `fabric` config reduces to the calibrated CommModel.
[[nodiscard]] double simulate_qeq_time(const arch::Machine& machine,
                                       std::size_t atoms_per_rank,
                                       std::size_t nnz_per_rank,
                                       const CgStats& stats, int vectors,
                                       int ranks,
                                       const net::FabricConfig& fabric = {});

}  // namespace exa::apps::lammps
