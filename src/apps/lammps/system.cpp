#include "apps/lammps/system.hpp"

#include <algorithm>
#include <cmath>

#include "io/checkpoint.hpp"
#include "support/assert.hpp"

namespace exa::apps::lammps {

double Vec3::norm() const { return std::sqrt(norm2()); }

System make_molecular_crystal(int cells, int atoms_per_molecule,
                              support::Rng& rng) {
  EXA_REQUIRE(cells >= 1);
  EXA_REQUIRE(atoms_per_molecule >= 4);  // need dihedrals
  System sys;
  const double cell_edge = 6.0;  // Angstrom-ish
  sys.box = cell_edge * cells;
  const double bond_len = 1.45;

  for (int cx = 0; cx < cells; ++cx) {
    for (int cy = 0; cy < cells; ++cy) {
      for (int cz = 0; cz < cells; ++cz) {
        // A bent chain molecule anchored at the cell origin.
        const Vec3 origin{cell_edge * (cx + 0.25), cell_edge * (cy + 0.25),
                          cell_edge * (cz + 0.25)};
        Vec3 prev = origin;
        for (int a = 0; a < atoms_per_molecule; ++a) {
          Vec3 p = prev;
          if (a > 0) {
            // Advance along a zig-zag direction with thermal jitter.
            const double phase = 0.7 * a;
            Vec3 dir{std::cos(phase), std::sin(phase), (a % 2 ? 0.4 : -0.4)};
            const double inv = 1.0 / dir.norm();
            p = prev + dir * (bond_len * inv);
          }
          p.x += rng.normal(0.0, 0.02);
          p.y += rng.normal(0.0, 0.02);
          p.z += rng.normal(0.0, 0.02);
          sys.pos.push_back(p);
          sys.electronegativity.push_back(rng.uniform(3.0, 8.0));
          sys.hardness.push_back(rng.uniform(6.0, 10.0));
          prev = p;
        }
      }
    }
  }
  return sys;
}

NeighborList build_neighbor_list(const System& sys, double cutoff) {
  EXA_REQUIRE(cutoff > 0.0);
  const std::size_t n = sys.size();
  NeighborList list;
  list.offsets.assign(n + 1, 0);

  // Cell list.
  const int ncell = std::max(1, static_cast<int>(sys.box / cutoff));
  const double inv_cell = ncell / std::max(sys.box, 1e-12);
  auto cell_of = [&](const Vec3& p) {
    auto clampc = [&](double v) {
      return std::clamp(static_cast<int>(v * inv_cell), 0, ncell - 1);
    };
    return std::array<int, 3>{clampc(p.x), clampc(p.y), clampc(p.z)};
  };
  std::vector<std::vector<std::size_t>> cells(
      static_cast<std::size_t>(ncell) * ncell * ncell);
  auto cell_index = [&](int x, int y, int z) {
    return (static_cast<std::size_t>(x) * ncell + y) * ncell + z;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = cell_of(sys.pos[i]);
    cells[cell_index(c[0], c[1], c[2])].push_back(i);
  }

  const double rc2 = cutoff * cutoff;
  std::vector<std::vector<std::size_t>> per_atom(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = cell_of(sys.pos[i]);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          const int x = c[0] + dx;
          const int y = c[1] + dy;
          const int z = c[2] + dz;
          if (x < 0 || y < 0 || z < 0 || x >= ncell || y >= ncell ||
              z >= ncell) {
            continue;
          }
          for (const std::size_t j : cells[cell_index(x, y, z)]) {
            if (j <= i) continue;
            if ((sys.pos[i] - sys.pos[j]).norm2() < rc2) {
              per_atom[i].push_back(j);
            }
          }
        }
      }
    }
    std::sort(per_atom[i].begin(), per_atom[i].end());
  }

  for (std::size_t i = 0; i < n; ++i) {
    list.offsets[i + 1] = list.offsets[i] + per_atom[i].size();
  }
  list.partners.reserve(list.offsets[n]);
  for (std::size_t i = 0; i < n; ++i) {
    list.partners.insert(list.partners.end(), per_atom[i].begin(),
                         per_atom[i].end());
  }
  return list;
}

BondList build_bond_list(const System& sys, double bond_cutoff) {
  const NeighborList half = build_neighbor_list(sys, bond_cutoff);
  const std::size_t n = sys.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = half.offsets[i]; p < half.offsets[i + 1]; ++p) {
      const std::size_t j = half.partners[p];
      adj[i].push_back(j);
      adj[j].push_back(i);
    }
  }
  BondList bonds;
  bonds.offsets.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::sort(adj[i].begin(), adj[i].end());
    bonds.offsets[i + 1] = bonds.offsets[i] + adj[i].size();
  }
  bonds.partners.reserve(bonds.offsets[n]);
  for (std::size_t i = 0; i < n; ++i) {
    bonds.partners.insert(bonds.partners.end(), adj[i].begin(), adj[i].end());
  }
  return bonds;
}

double simulate_restart_time(std::size_t atoms_per_rank, int ranks,
                             const io::IoConfig& io, double bytes_per_atom) {
  EXA_REQUIRE(ranks >= 1);
  EXA_REQUIRE(bytes_per_atom > 0.0);
  const double bytes_per_rank =
      static_cast<double>(atoms_per_rank) * bytes_per_atom;
  return io::checkpoint_time(io, ranks, bytes_per_rank);
}

}  // namespace exa::apps::lammps
