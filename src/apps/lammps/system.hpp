#pragma once
/// \file system.hpp
/// Molecular system for the ReaxFF mini-app (§3.10): an HNS-like molecular
/// crystal generator, a cell-list neighbor finder, and the distance-based
/// bond list the force kernels consume.

#include <array>
#include <cstddef>
#include <vector>

#include "io/io_model.hpp"
#include "support/rng.hpp"

namespace exa::apps::lammps {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  [[nodiscard]] double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm2() const { return dot(*this); }
  [[nodiscard]] double norm() const;
};

/// An atomistic system (non-periodic box).
struct System {
  std::vector<Vec3> pos;
  std::vector<double> electronegativity;  ///< chi, for QEq
  std::vector<double> hardness;           ///< eta, for QEq
  double box = 0.0;                       ///< cubic box edge

  [[nodiscard]] std::size_t size() const { return pos.size(); }
};

/// Builds an HNS-like molecular crystal: `cells`^3 unit cells, each with a
/// small rigid molecule of `atoms_per_molecule` atoms, thermal jitter
/// applied. Intra-molecular distances are short (bonded); inter-molecular
/// distances are larger.
[[nodiscard]] System make_molecular_crystal(int cells, int atoms_per_molecule,
                                            support::Rng& rng);

/// Half neighbor list (i < j) built with a cell list in O(n).
struct NeighborList {
  std::vector<std::size_t> offsets;  ///< size n+1
  std::vector<std::size_t> partners; ///< concatenated neighbor indices

  [[nodiscard]] std::size_t degree(std::size_t i) const {
    return offsets[i + 1] - offsets[i];
  }
  [[nodiscard]] std::size_t pairs() const { return partners.size(); }
};

[[nodiscard]] NeighborList build_neighbor_list(const System& sys,
                                               double cutoff);

/// Distance-threshold bond list (full adjacency: both directions stored).
struct BondList {
  std::vector<std::size_t> offsets;
  std::vector<std::size_t> partners;

  [[nodiscard]] std::size_t degree(std::size_t i) const {
    return offsets[i + 1] - offsets[i];
  }
};

[[nodiscard]] BondList build_bond_list(const System& sys, double bond_cutoff);

/// Simulated wall time of one restart dump: every rank writes its
/// `atoms_per_rank * bytes_per_atom` slice (positions, velocities, charges,
/// bond topology) through the storage model as a collective checkpoint.
/// The default quiet `io` config returns exactly 0.0; a Lustre-like config
/// prices the §3.10-era campaigns' restart cadence.
[[nodiscard]] double simulate_restart_time(std::size_t atoms_per_rank,
                                           int ranks,
                                           const io::IoConfig& io = {},
                                           double bytes_per_atom = 96.0);

}  // namespace exa::apps::lammps
