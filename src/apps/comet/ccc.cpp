#include "apps/comet/ccc.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "mathlib/dense.hpp"
#include "mathlib/device_blas.hpp"
#include "net/rank_sim.hpp"
#include "sim/exec_model.hpp"
#include "support/assert.hpp"

namespace exa::apps::comet {

BitVectorSet::BitVectorSet(std::size_t vectors, std::size_t samples)
    : vectors_(vectors),
      samples_(samples),
      words_per_vector_((samples + 63) / 64),
      words_(vectors * words_per_vector_, 0) {
  EXA_REQUIRE(vectors >= 1 && samples >= 1);
}

bool BitVectorSet::get(std::size_t v, std::size_t s) const {
  EXA_REQUIRE(v < vectors_ && s < samples_);
  return (words_[v * words_per_vector_ + s / 64] >> (s % 64)) & 1ull;
}

void BitVectorSet::set(std::size_t v, std::size_t s, bool value) {
  EXA_REQUIRE(v < vectors_ && s < samples_);
  std::uint64_t& w = words_[v * words_per_vector_ + s / 64];
  const std::uint64_t mask = 1ull << (s % 64);
  if (value) w |= mask;
  else w &= ~mask;
}

void BitVectorSet::randomize(support::Rng& rng, double p_one) {
  for (std::size_t v = 0; v < vectors_; ++v) {
    for (std::size_t s = 0; s < samples_; ++s) {
      set(v, s, rng.bernoulli(p_one));
    }
  }
}

Table2x2 contingency_popcount(const BitVectorSet& set, std::size_t vi,
                              std::size_t vj) {
  const std::size_t wpv = (set.samples() + 63) / 64;
  const std::uint64_t* a = set.words().data() + vi * wpv;
  const std::uint64_t* b = set.words().data() + vj * wpv;
  Table2x2 t;
  for (std::size_t w = 0; w < wpv; ++w) {
    // Mask off the tail beyond `samples` in the last word.
    std::uint64_t valid = ~0ull;
    if (w == wpv - 1 && set.samples() % 64 != 0) {
      valid = (1ull << (set.samples() % 64)) - 1;
    }
    const std::uint64_t x = a[w];
    const std::uint64_t y = b[w];
    t.n11 += static_cast<std::uint32_t>(std::popcount(x & y & valid));
    t.n10 += static_cast<std::uint32_t>(std::popcount(x & ~y & valid));
    t.n01 += static_cast<std::uint32_t>(std::popcount(~x & y & valid));
    t.n00 += static_cast<std::uint32_t>(std::popcount(~x & ~y & valid));
  }
  return t;
}

std::vector<Table2x2> contingency_gemm(const BitVectorSet& set) {
  const std::size_t V = set.vectors();
  const std::size_t S = set.samples();
  // Indicator matrix: for each vector, two rows — allele-0 indicator and
  // allele-1 indicator. A (2V x S) matrix; C = A * A^T gives every count.
  std::vector<float> a(2 * V * S, 0.0f);
  for (std::size_t v = 0; v < V; ++v) {
    for (std::size_t s = 0; s < S; ++s) {
      const bool one = set.get(v, s);
      a[(2 * v + (one ? 1 : 0)) * S + s] = 1.0f;
    }
  }
  // B = A^T, so C[i][j] = sum_s A[i][s] A[j][s].
  std::vector<float> at(S * 2 * V);
  for (std::size_t r = 0; r < 2 * V; ++r) {
    for (std::size_t s = 0; s < S; ++s) at[s * 2 * V + r] = a[r * S + s];
  }
  std::vector<float> c(4 * V * V, 0.0f);
  // Mixed-precision tensor-core path: FP16 inputs (0/1 are exact), FP32
  // accumulate (counts exact up to 2^24).
  ml::hgemm_f32acc(a, at, c, 2 * V, 2 * V, S);

  std::vector<Table2x2> tables(V * V);
  for (std::size_t i = 0; i < V; ++i) {
    for (std::size_t j = i; j < V; ++j) {
      Table2x2 t;
      t.n00 = static_cast<std::uint32_t>(std::lround(c[(2 * i) * 2 * V + 2 * j]));
      t.n01 = static_cast<std::uint32_t>(std::lround(c[(2 * i) * 2 * V + 2 * j + 1]));
      t.n10 = static_cast<std::uint32_t>(std::lround(c[(2 * i + 1) * 2 * V + 2 * j]));
      t.n11 = static_cast<std::uint32_t>(std::lround(c[(2 * i + 1) * 2 * V + 2 * j + 1]));
      tables[i * V + j] = t;
    }
  }
  return tables;
}

double ccc_metric(const Table2x2& t, std::size_t samples) {
  EXA_REQUIRE(samples > 0);
  const double n = static_cast<double>(samples);
  const double f11 = t.n11 / n;
  const double fi = (t.n10 + t.n11) / n;  // marginal of vector i
  const double fj = (t.n01 + t.n11) / n;  // marginal of vector j
  // CCC-flavored centered co-occurrence: excess over independence, scaled.
  return (f11 - fi * fj) * (1.0 - std::fabs(fi - fj));
}

Table2x2x2 contingency3_popcount(const BitVectorSet& set, std::size_t vi,
                                 std::size_t vj, std::size_t vk) {
  const std::size_t wpv = (set.samples() + 63) / 64;
  const std::uint64_t* x = set.words().data() + vi * wpv;
  const std::uint64_t* y = set.words().data() + vj * wpv;
  const std::uint64_t* z = set.words().data() + vk * wpv;
  Table2x2x2 t;
  for (std::size_t w = 0; w < wpv; ++w) {
    std::uint64_t valid = ~0ull;
    if (w == wpv - 1 && set.samples() % 64 != 0) {
      valid = (1ull << (set.samples() % 64)) - 1;
    }
    for (int a = 0; a <= 1; ++a) {
      const std::uint64_t xa = a ? x[w] : ~x[w];
      for (int b = 0; b <= 1; ++b) {
        const std::uint64_t yb = b ? y[w] : ~y[w];
        for (int c = 0; c <= 1; ++c) {
          const std::uint64_t zc = c ? z[w] : ~z[w];
          t.n[static_cast<std::size_t>((a << 2) | (b << 1) | c)] +=
              static_cast<std::uint32_t>(std::popcount(xa & yb & zc & valid));
        }
      }
    }
  }
  return t;
}

std::vector<Table2x2x2> contingency3_gemm_pair(const BitVectorSet& set,
                                               std::size_t vi,
                                               std::size_t vj) {
  const std::size_t V = set.vectors();
  const std::size_t S = set.samples();
  // Pair-indicator matrix: 4 rows, one per (a, b) combination of (vi, vj).
  std::vector<float> pair(4 * S, 0.0f);
  for (std::size_t s = 0; s < S; ++s) {
    const int a = set.get(vi, s) ? 1 : 0;
    const int b = set.get(vj, s) ? 1 : 0;
    pair[static_cast<std::size_t>((a << 1) | b) * S + s] = 1.0f;
  }
  // Indicator matrix of every k: (S x 2V).
  std::vector<float> ind(S * 2 * V, 0.0f);
  for (std::size_t v = 0; v < V; ++v) {
    for (std::size_t s = 0; s < S; ++s) {
      ind[s * 2 * V + 2 * v + (set.get(v, s) ? 1 : 0)] = 1.0f;
    }
  }
  std::vector<float> c(4 * 2 * V, 0.0f);
  ml::hgemm_f32acc(pair, ind, c, 4, 2 * V, S);

  std::vector<Table2x2x2> tables(V);
  for (std::size_t v = 0; v < V; ++v) {
    Table2x2x2 t;
    for (int a = 0; a <= 1; ++a) {
      for (int b = 0; b <= 1; ++b) {
        for (int cc = 0; cc <= 1; ++cc) {
          const auto row = static_cast<std::size_t>((a << 1) | b);
          t.n[static_cast<std::size_t>((a << 2) | (b << 1) | cc)] =
              static_cast<std::uint32_t>(std::lround(
                  c[row * 2 * V + 2 * v + static_cast<std::size_t>(cc)]));
        }
      }
    }
    tables[v] = t;
  }
  return tables;
}

double ccc3_metric(const Table2x2x2& t, std::size_t samples) {
  EXA_REQUIRE(samples > 0);
  const double n = static_cast<double>(samples);
  const double f111 = t.n[7] / n;
  // Marginals of the three vectors.
  const double fi = (t.n[4] + t.n[5] + t.n[6] + t.n[7]) / n;
  const double fj = (t.n[2] + t.n[3] + t.n[6] + t.n[7]) / n;
  const double fk = (t.n[1] + t.n[3] + t.n[5] + t.n[7]) / n;
  return f111 - fi * fj * fk;
}

CometScaleResult scale_run(const arch::Machine& machine, int nodes,
                           std::size_t vectors_per_device,
                           std::size_t samples,
                           const net::FabricConfig& fabric_config) {
  EXA_REQUIRE(machine.node.has_gpu());
  EXA_REQUIRE(nodes >= 1 && nodes <= machine.node_count);
  const arch::GpuArch& gpu = *machine.node.gpu;
  const int devices = nodes * machine.node.gpus_per_node;

  // One step: a block-pair bit-GEMM of (2V x S) x (S x 2V) on the matrix
  // cores in FP16 with FP32 accumulation.
  const std::size_t m = 2 * vectors_per_device;
  const sim::KernelProfile p =
      ml::gemm_profile(gpu, arch::DType::kF16, /*matrix_cores=*/true, m, m,
                       samples);
  sim::LaunchConfig launch;
  launch.block_threads = 256;
  launch.blocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(m) * m / 1024);
  const double gemm_s = sim::kernel_timing(gpu, p, launch).total_s;

  // Ring exchange of the next vector block overlaps the GEMM ("near-
  // perfect weak scaling": compute dominates). Posted as a real
  // nonblocking schedule: the neighbor's block is in flight on the fabric
  // while the GEMM runs, and wait() pays only what the GEMM did not hide.
  double step_s = gemm_s;
  if (nodes > 1) {
    net::Fabric fabric(machine, machine.node.gpus_per_node, fabric_config);
    net::RankSim sim(fabric, 2);
    const double block_bytes =
        static_cast<double>(vectors_per_device) * samples / 8.0;
    sim.isend(0, 1, block_bytes);
    const net::Request recv = sim.irecv(1, 0);
    sim.compute(1, gemm_s);
    step_s = sim.wait(1, recv);
  }

  CometScaleResult r;
  r.seconds_per_step = step_s;
  const double ops = ml::gemm_flops_real(m, m, samples);
  r.sustained_flops =
      ops / r.seconds_per_step * static_cast<double>(devices);
  r.weak_scaling_efficiency = gemm_s / r.seconds_per_step;
  return r;
}

}  // namespace exa::apps::comet
