#pragma once
/// \file ccc.hpp
/// CoMet (§3.6): comparative-genomics similarity metrics via mixed-
/// precision GEMM.
///
/// Data are allele vectors (one 1-bit value per sample here — the CCC
/// single-bit case). For every vector pair the metric needs the 2x2
/// contingency table (n00, n01, n10, n11). Two equivalent computations:
///  * direct bit-twiddling with popcounts over packed words;
///  * the GEMM formulation CoMet runs on tensor cores: expand each vector
///    into two indicator columns (allele 0 / allele 1), then one
///    mixed-FP16/FP32 GEMM produces every pairwise count at once.
/// The equivalence is exact (counts are small integers) and is asserted by
/// property tests; the exaflops projection reuses the GEMM cost model.

#include <array>
#include <cstdint>
#include <vector>

#include "arch/machine.hpp"
#include "net/fabric.hpp"
#include "support/rng.hpp"

namespace exa::apps::comet {

/// A set of binary allele vectors: `vectors` x `samples` bits, packed.
class BitVectorSet {
 public:
  BitVectorSet(std::size_t vectors, std::size_t samples);

  [[nodiscard]] std::size_t vectors() const { return vectors_; }
  [[nodiscard]] std::size_t samples() const { return samples_; }
  [[nodiscard]] bool get(std::size_t v, std::size_t s) const;
  void set(std::size_t v, std::size_t s, bool value);
  void randomize(support::Rng& rng, double p_one = 0.5);

  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

 private:
  std::size_t vectors_, samples_, words_per_vector_;
  std::vector<std::uint64_t> words_;
};

/// 2x2 contingency table for a vector pair.
struct Table2x2 {
  std::uint32_t n00 = 0, n01 = 0, n10 = 0, n11 = 0;

  bool operator==(const Table2x2&) const = default;
};

/// Direct popcount path.
[[nodiscard]] Table2x2 contingency_popcount(const BitVectorSet& set,
                                            std::size_t vi, std::size_t vj);

/// GEMM path: one mixed-precision GEMM over the expanded indicator matrix
/// yields all pairwise tables. Returns the full upper triangle (vi <= vj),
/// indexed [vi * vectors + vj].
[[nodiscard]] std::vector<Table2x2> contingency_gemm(const BitVectorSet& set);

/// The CCC metric value from a table (2-way, single-bit variant).
[[nodiscard]] double ccc_metric(const Table2x2& t, std::size_t samples);

// --- 3-way metrics -----------------------------------------------------------
// CoMet's distinguishing capability is 2-way AND 3-way methods: for a
// vector triple the metric needs the 2x2x2 contingency tensor. The GEMM
// formulation builds *pair* indicator vectors for (i, j) and runs the same
// mixed-precision product against every k.

/// 2x2x2 table: n[(a<<2) | (b<<1) | c] counts samples with alleles (a,b,c).
struct Table2x2x2 {
  std::array<std::uint32_t, 8> n{};

  bool operator==(const Table2x2x2&) const = default;
};

[[nodiscard]] Table2x2x2 contingency3_popcount(const BitVectorSet& set,
                                               std::size_t vi, std::size_t vj,
                                               std::size_t vk);

/// GEMM path: for one (vi, vj) pair, the tables against every k, via the
/// pair-indicator x indicator mixed-precision product. Exact.
[[nodiscard]] std::vector<Table2x2x2> contingency3_gemm_pair(
    const BitVectorSet& set, std::size_t vi, std::size_t vj);

/// 3-way CCC-flavored metric: excess of the all-ones co-occurrence over
/// independence.
[[nodiscard]] double ccc3_metric(const Table2x2x2& t, std::size_t samples);

// --- scale model -----------------------------------------------------------

struct CometScaleResult {
  double seconds_per_step = 0.0;
  double sustained_flops = 0.0;   ///< mixed-precision op rate
  double weak_scaling_efficiency = 1.0;
};

/// All-pairs CCC across `nodes` nodes, each device holding
/// `vectors_per_device` vectors of `samples` samples: a round-robin block
/// schedule where each step pairs two vector blocks with one bit-GEMM on
/// the matrix cores, overlapped with the ring exchange of the next block.
/// The exchange is posted as a nonblocking schedule on the fabric (isend
/// of the next block, GEMM, wait), so `fabric` knobs (congestion, faults)
/// directly erode the "near-perfect" overlap; the default analytic fabric
/// reproduces the calibrated CommModel costs exactly.
[[nodiscard]] CometScaleResult scale_run(const arch::Machine& machine,
                                         int nodes,
                                         std::size_t vectors_per_device,
                                         std::size_t samples,
                                         const net::FabricConfig& fabric = {});

}  // namespace exa::apps::comet
