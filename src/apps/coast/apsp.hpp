#pragma once
/// \file apsp.hpp
/// COAST (§3.9): Communication-Optimized All-Pairs Shortest Path.
///
/// Real blocked Floyd-Warshall over a dense distance matrix (the min-plus
/// semiring analogue of blocked GEMM), a knowledge-graph-style workload
/// generator, and the automated tiling-factor tuner that carried the code
/// from 5.6 TF on a V100 to 30.6 TF on an MI250X. The Gordon Bell scale
/// projection runs the tuned kernel model across a whole machine.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "arch/machine.hpp"
#include "sim/exec_model.hpp"
#include "support/rng.hpp"

namespace exa::apps::coast {

inline constexpr float kInf = std::numeric_limits<float>::infinity();

/// Dense distance matrix, row-major n x n; kInf means "no edge yet".
struct DistMatrix {
  std::size_t n = 0;
  std::vector<float> d;

  [[nodiscard]] float& at(std::size_t i, std::size_t j) { return d[i * n + j]; }
  [[nodiscard]] float at(std::size_t i, std::size_t j) const {
    return d[i * n + j];
  }
};

/// Generates a SPOKE-like sparse knowledge graph (power-law-ish degrees,
/// positive edge weights) as a dense distance matrix with zero diagonal.
[[nodiscard]] DistMatrix make_knowledge_graph(std::size_t n,
                                              double avg_degree,
                                              support::Rng& rng);

/// Reference O(n^3) Floyd-Warshall.
void floyd_warshall_naive(DistMatrix& m);

/// Floyd-Warshall with path reconstruction: fills `next[i*n+j]` with the
/// vertex following i on a shortest i->j path (SIZE_MAX when unreachable
/// or i == j). This is what the literature-mining application actually
/// consumes: the chain of concepts linking two entities.
void floyd_warshall_with_paths(DistMatrix& m, std::vector<std::size_t>& next);

/// Extracts the vertex sequence of a shortest i->j path from the `next`
/// table (empty when unreachable; {i} when i == j).
[[nodiscard]] std::vector<std::size_t> extract_path(
    const std::vector<std::size_t>& next, std::size_t n, std::size_t from,
    std::size_t to);

/// Blocked 3-phase Floyd-Warshall (diagonal tile, pivot row/column tiles,
/// remainder min-plus "GEMM" updates); `tile` must divide n.
void floyd_warshall_blocked(DistMatrix& m, std::size_t tile);

/// Min-plus tile update C = min(C, A (+) B) — the kernel that "heavily
/// resembles matrix multiplication". Exposed for tests.
void minplus_tile(const float* a, const float* b, float* c, std::size_t n,
                  std::size_t lda, std::size_t ldb, std::size_t ldc,
                  std::size_t tm, std::size_t tn, std::size_t tk);

// --- distributed solve (the "communication-optimized" part) ----------------

/// Functional 2-D-decomposed blocked Floyd-Warshall: a grid x grid rank
/// mesh, each rank owning one tile of the distance matrix. Per k-panel,
/// the pivot-column tiles broadcast along their rank rows and the
/// pivot-row tiles along their rank columns, then every rank updates its
/// tile locally — the communication pattern the Gordon Bell runs used.
/// Byte counters validate the analytic comm model.
class DistributedApsp {
 public:
  /// `grid` must divide m.n; creates grid^2 ranks each owning an
  /// (n/grid)^2 tile.
  DistributedApsp(const DistMatrix& m, std::size_t grid);

  /// Runs the full APSP solve.
  void solve();
  /// Gathers the solved matrix.
  [[nodiscard]] DistMatrix gather() const;

  [[nodiscard]] std::size_t ranks() const { return grid_ * grid_; }
  /// Bytes moved between ranks by the pivot broadcasts.
  [[nodiscard]] double bytes_broadcast() const { return bytes_broadcast_; }
  [[nodiscard]] int panels_processed() const { return panels_; }

 private:
  [[nodiscard]] std::vector<float>& tile(std::size_t bi, std::size_t bj);
  [[nodiscard]] const std::vector<float>& tile(std::size_t bi,
                                               std::size_t bj) const;

  std::size_t n_;
  std::size_t grid_;
  std::size_t tile_n_;
  /// tiles_[bi * grid + bj]: the tile owned by rank (bi, bj), row-major.
  std::vector<std::vector<float>> tiles_;
  double bytes_broadcast_ = 0.0;
  int panels_ = 0;
};

// --- automated software tuning (the §3.9 strategy) -------------------------

/// One candidate in the tiling search space.
struct TileConfig {
  int tile = 32;    ///< LDS tile edge
  int unroll = 2;   ///< per-thread register sub-tile edge
  [[nodiscard]] std::string name() const;
};

/// All configurations the tuner compiles and times.
[[nodiscard]] std::vector<TileConfig> tuning_space();

/// Cost profile of the min-plus kernel for one configuration on an n^3
/// relaxation sweep (one k-panel pass over the full matrix).
[[nodiscard]] sim::KernelProfile minplus_profile(const arch::GpuArch& gpu,
                                                 const TileConfig& cfg,
                                                 std::size_t n);

struct TuneResult {
  TileConfig best;
  double best_seconds = 0.0;
  double achieved_flops = 0.0;  ///< 2 ops per relaxation over n^3
  std::vector<std::pair<TileConfig, double>> trials;
};

/// Times every configuration on `gpu` for an n x n APSP sweep and returns
/// the winner — the "compiling and timing a large number of combinations"
/// process.
[[nodiscard]] TuneResult autotune(const arch::GpuArch& gpu, std::size_t n);

/// Full-machine Gordon-Bell projection: distributed blocked FW with the
/// tuned kernel; returns sustained flop/s over the whole run.
struct ScaleResult {
  double seconds = 0.0;
  double sustained_flops = 0.0;
  int devices = 0;
};
[[nodiscard]] ScaleResult gordon_bell_run(const arch::Machine& machine,
                                          std::size_t n_vertices);

}  // namespace exa::apps::coast
