#include "apps/coast/apsp.hpp"

#include <algorithm>
#include <cmath>

#include "net/comm_model.hpp"
#include "sim/occupancy.hpp"
#include "support/assert.hpp"

namespace exa::apps::coast {

DistMatrix make_knowledge_graph(std::size_t n, double avg_degree,
                                support::Rng& rng) {
  EXA_REQUIRE(n >= 2);
  EXA_REQUIRE(avg_degree > 0.0);
  DistMatrix m;
  m.n = n;
  m.d.assign(n * n, kInf);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 0.0f;

  // Ring backbone keeps the graph connected (literature graphs are).
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    const auto w = static_cast<float>(rng.uniform(0.5, 2.0));
    m.at(i, j) = std::min(m.at(i, j), w);
    m.at(j, i) = std::min(m.at(j, i), w);
  }
  // Preferential-flavored extra edges: hubs get more links, like SPOKE's
  // high-degree concept nodes.
  const auto extra = static_cast<std::size_t>(avg_degree * static_cast<double>(n) / 2.0);
  for (std::size_t e = 0; e < extra; ++e) {
    // Square the uniform to bias toward low indices (the "hubs").
    const double u = rng.uniform();
    const auto i = static_cast<std::size_t>(u * u * static_cast<double>(n));
    const auto j = rng.uniform_u64(n);
    if (i == j || i >= n) continue;
    const auto w = static_cast<float>(rng.uniform(0.2, 5.0));
    m.at(i, j) = std::min(m.at(i, j), w);
    m.at(j, i) = std::min(m.at(j, i), w);
  }
  return m;
}

void floyd_warshall_naive(DistMatrix& m) {
  const std::size_t n = m.n;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const float dik = m.at(i, k);
      if (dik == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const float cand = dik + m.at(k, j);
        if (cand < m.at(i, j)) m.at(i, j) = cand;
      }
    }
  }
}

void floyd_warshall_with_paths(DistMatrix& m, std::vector<std::size_t>& next) {
  const std::size_t n = m.n;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  next.assign(n * n, kNone);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && m.at(i, j) != kInf) next[i * n + j] = j;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const float dik = m.at(i, k);
      if (dik == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const float cand = dik + m.at(k, j);
        if (cand < m.at(i, j)) {
          m.at(i, j) = cand;
          next[i * n + j] = next[i * n + k];
        }
      }
    }
  }
}

std::vector<std::size_t> extract_path(const std::vector<std::size_t>& next,
                                      std::size_t n, std::size_t from,
                                      std::size_t to) {
  EXA_REQUIRE(from < n && to < n);
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> path = {from};
  if (from == to) return path;
  if (next[from * n + to] == kNone) return {};
  std::size_t cur = from;
  while (cur != to) {
    cur = next[cur * n + to];
    EXA_ASSERT(cur != kNone);
    path.push_back(cur);
    EXA_REQUIRE_MSG(path.size() <= n, "cycle in shortest-path table");
  }
  return path;
}

void minplus_tile(const float* a, const float* b, float* c, std::size_t n,
                  std::size_t lda, std::size_t ldb, std::size_t ldc,
                  std::size_t tm, std::size_t tn, std::size_t tk) {
  (void)n;
  for (std::size_t i = 0; i < tm; ++i) {
    for (std::size_t k = 0; k < tk; ++k) {
      const float aik = a[i * lda + k];
      if (aik == kInf) continue;
      const float* brow = b + k * ldb;
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < tn; ++j) {
        const float cand = aik + brow[j];
        if (cand < crow[j]) crow[j] = cand;
      }
    }
  }
}

void floyd_warshall_blocked(DistMatrix& m, std::size_t tile) {
  const std::size_t n = m.n;
  EXA_REQUIRE_MSG(tile > 0 && n % tile == 0, "tile must divide n");
  const std::size_t nb = n / tile;
  float* d = m.d.data();
  const auto blk = [&](std::size_t bi, std::size_t bj) {
    return d + (bi * tile) * n + (bj * tile);
  };

  for (std::size_t kb = 0; kb < nb; ++kb) {
    // Phase 1: the pivot (diagonal) tile, dependent in k — iterate k inside.
    float* pivot = blk(kb, kb);
    for (std::size_t k = 0; k < tile; ++k) {
      for (std::size_t i = 0; i < tile; ++i) {
        const float dik = pivot[i * n + k];
        if (dik == kInf) continue;
        for (std::size_t j = 0; j < tile; ++j) {
          const float cand = dik + pivot[k * n + j];
          if (cand < pivot[i * n + j]) pivot[i * n + j] = cand;
        }
      }
    }
    // Phase 2: pivot row and pivot column tiles.
    for (std::size_t b = 0; b < nb; ++b) {
      if (b == kb) continue;
      // Row tile (kb, b): depends on pivot and itself, k inside.
      float* row = blk(kb, b);
      for (std::size_t k = 0; k < tile; ++k) {
        for (std::size_t i = 0; i < tile; ++i) {
          const float dik = pivot[i * n + k];
          if (dik == kInf) continue;
          for (std::size_t j = 0; j < tile; ++j) {
            const float cand = dik + row[k * n + j];
            if (cand < row[i * n + j]) row[i * n + j] = cand;
          }
        }
      }
      // Column tile (b, kb).
      float* colt = blk(b, kb);
      for (std::size_t k = 0; k < tile; ++k) {
        for (std::size_t i = 0; i < tile; ++i) {
          const float dik = colt[i * n + k];
          if (dik == kInf) continue;
          for (std::size_t j = 0; j < tile; ++j) {
            const float cand = dik + pivot[k * n + j];
            if (cand < colt[i * n + j]) colt[i * n + j] = cand;
          }
        }
      }
    }
    // Phase 3: remainder tiles — pure min-plus GEMM, fully parallel.
    for (std::size_t bi = 0; bi < nb; ++bi) {
      if (bi == kb) continue;
      for (std::size_t bj = 0; bj < nb; ++bj) {
        if (bj == kb) continue;
        minplus_tile(blk(bi, kb), blk(kb, bj), blk(bi, bj), n, n, n, n, tile,
                     tile, tile);
      }
    }
  }
}

DistributedApsp::DistributedApsp(const DistMatrix& m, std::size_t grid)
    : n_(m.n), grid_(grid) {
  EXA_REQUIRE(grid >= 1 && n_ % grid == 0);
  tile_n_ = n_ / grid;
  tiles_.resize(grid * grid);
  for (std::size_t bi = 0; bi < grid; ++bi) {
    for (std::size_t bj = 0; bj < grid; ++bj) {
      auto& t = tiles_[bi * grid + bj];
      t.resize(tile_n_ * tile_n_);
      for (std::size_t i = 0; i < tile_n_; ++i) {
        for (std::size_t j = 0; j < tile_n_; ++j) {
          t[i * tile_n_ + j] = m.at(bi * tile_n_ + i, bj * tile_n_ + j);
        }
      }
    }
  }
}

std::vector<float>& DistributedApsp::tile(std::size_t bi, std::size_t bj) {
  return tiles_[bi * grid_ + bj];
}

const std::vector<float>& DistributedApsp::tile(std::size_t bi,
                                                std::size_t bj) const {
  return tiles_[bi * grid_ + bj];
}

void DistributedApsp::solve() {
  const std::size_t tn = tile_n_;
  const double tile_bytes = static_cast<double>(tn * tn) * sizeof(float);

  // k-dependent update of tile `dst` using pivot-column tile `a` and
  // pivot-row tile `b` when any of them alias dst (phases 1 and 2 need k
  // innermost to respect the in-panel dependency).
  const auto dependent_update = [tn](const std::vector<float>& a,
                                     const std::vector<float>& b,
                                     std::vector<float>& dst) {
    for (std::size_t k = 0; k < tn; ++k) {
      for (std::size_t i = 0; i < tn; ++i) {
        const float dik = a[i * tn + k];
        if (dik == kInf) continue;
        for (std::size_t j = 0; j < tn; ++j) {
          const float cand = dik + b[k * tn + j];
          if (cand < dst[i * tn + j]) dst[i * tn + j] = cand;
        }
      }
    }
  };

  for (std::size_t kb = 0; kb < grid_; ++kb) {
    // Phase 1: the pivot rank updates its own tile.
    {
      std::vector<float>& pivot = tile(kb, kb);
      dependent_update(pivot, pivot, pivot);
    }
    // Broadcast the pivot tile along rank row kb and rank column kb.
    bytes_broadcast_ += 2.0 * (grid_ - 1) * tile_bytes;
    const std::vector<float> pivot = tile(kb, kb);  // the received copy

    // Phase 2: pivot-row and pivot-column ranks.
    for (std::size_t b = 0; b < grid_; ++b) {
      if (b == kb) continue;
      dependent_update(pivot, tile(kb, b), tile(kb, b));
      dependent_update(tile(b, kb), pivot, tile(b, kb));
    }
    // Broadcast: each pivot-column tile (i, kb) along rank row i; each
    // pivot-row tile (kb, j) along rank column j.
    bytes_broadcast_ += 2.0 * (grid_ - 1) * (grid_ - 1) * tile_bytes;

    // Phase 3: everyone else updates locally from the received tiles.
    for (std::size_t bi = 0; bi < grid_; ++bi) {
      if (bi == kb) continue;
      for (std::size_t bj = 0; bj < grid_; ++bj) {
        if (bj == kb) continue;
        minplus_tile(tile(bi, kb).data(), tile(kb, bj).data(),
                     tile(bi, bj).data(), n_, tn, tn, tn, tn, tn, tn);
      }
    }
    ++panels_;
  }
}

DistMatrix DistributedApsp::gather() const {
  DistMatrix m;
  m.n = n_;
  m.d.resize(n_ * n_);
  for (std::size_t bi = 0; bi < grid_; ++bi) {
    for (std::size_t bj = 0; bj < grid_; ++bj) {
      const auto& t = tile(bi, bj);
      for (std::size_t i = 0; i < tile_n_; ++i) {
        for (std::size_t j = 0; j < tile_n_; ++j) {
          m.at(bi * tile_n_ + i, bj * tile_n_ + j) = t[i * tile_n_ + j];
        }
      }
    }
  }
  return m;
}

std::string TileConfig::name() const {
  return "tile" + std::to_string(tile) + "_u" + std::to_string(unroll);
}

std::vector<TileConfig> tuning_space() {
  std::vector<TileConfig> space;
  for (const int tile : {16, 32, 64, 128}) {
    for (const int unroll : {1, 2, 4, 8}) {
      if (unroll > tile / 4) continue;  // need enough threads per tile
      space.push_back(TileConfig{tile, unroll});
    }
  }
  return space;
}

sim::KernelProfile minplus_profile(const arch::GpuArch& gpu,
                                   const TileConfig& cfg, std::size_t n) {
  (void)gpu;
  const double dn = static_cast<double>(n);
  sim::KernelProfile p;
  p.name = "minplus_" + cfg.name();
  // One k-panel pass: n^2 * tile relaxations, 2 ops each (add + min) —
  // the Gordon Bell flop convention. No FMA fusion possible.
  p.add_flops_nofma(arch::DType::kF32,
                    2.0 * dn * dn * static_cast<double>(cfg.tile));
  // Each tile of C reads a tile-column of A and tile-row of B through LDS.
  const double tiles = (dn / cfg.tile) * (dn / cfg.tile);
  p.bytes_read = tiles * 2.0 * static_cast<double>(cfg.tile) * cfg.tile * 4.0 +
                 dn * dn * 4.0;
  p.bytes_written = dn * dn * 4.0;
  // Register sub-tiling: unroll^2 accumulators plus operand staging.
  p.registers_per_thread = 24 + 3 * cfg.unroll * cfg.unroll;
  p.lds_per_block_bytes =
      2ull * static_cast<std::uint64_t>(cfg.tile) * cfg.tile * 4ull;
  // Instruction-mix quality grows with register blocking (fewer LDS reads
  // per relaxation) and with tile size (fewer redundant loads).
  double eff = 0.45;
  if (cfg.tile >= 32) eff += 0.12;
  if (cfg.tile >= 64) eff += 0.08;
  if (cfg.unroll >= 2) eff += 0.15;
  if (cfg.unroll >= 4) eff += 0.10;
  if (cfg.unroll >= 8) eff -= 0.05;  // operand staging starts to thrash
  p.compute_efficiency = std::min(eff, 0.92);
  p.memory_efficiency = 0.8;
  return p;
}

TuneResult autotune(const arch::GpuArch& gpu, std::size_t n) {
  TuneResult result;
  double best = std::numeric_limits<double>::infinity();
  for (const TileConfig& cfg : tuning_space()) {
    const sim::KernelProfile p = minplus_profile(gpu, cfg, n);
    sim::LaunchConfig launch;
    const int threads_per_tile = (cfg.tile / cfg.unroll) * (cfg.tile / cfg.unroll);
    launch.block_threads = static_cast<std::uint32_t>(
        std::clamp(threads_per_tile, 64, 1024));
    const double tiles =
        (static_cast<double>(n) / cfg.tile) * (static_cast<double>(n) / cfg.tile);
    launch.blocks = static_cast<std::uint64_t>(std::max(1.0, tiles));
    const sim::KernelTiming t = sim::kernel_timing(gpu, p, launch);
    // Full APSP: n / tile panel passes.
    const double total =
        t.total_s * (static_cast<double>(n) / static_cast<double>(cfg.tile));
    result.trials.emplace_back(cfg, total);
    if (total < best) {
      best = total;
      result.best = cfg;
      result.best_seconds = total;
    }
  }
  const double dn = static_cast<double>(n);
  result.achieved_flops = 2.0 * dn * dn * dn / result.best_seconds;
  return result;
}

ScaleResult gordon_bell_run(const arch::Machine& machine,
                            std::size_t n_vertices) {
  EXA_REQUIRE(machine.node.has_gpu());
  const arch::GpuArch& gpu = *machine.node.gpu;
  const int devices = machine.total_devices();
  EXA_REQUIRE(devices > 0);

  // 2-D device grid; each device owns an (n/p) x (n/p) block of the
  // distance matrix.
  const auto p =
      static_cast<std::size_t>(std::floor(std::sqrt(static_cast<double>(devices))));
  const std::size_t local_n = n_vertices / p;
  EXA_REQUIRE_MSG(local_n >= 1024, "problem too small for the machine");

  const TuneResult tuned = autotune(gpu, local_n);

  // Per k-panel: broadcast pivot row/column blocks along device rows and
  // columns, then the local min-plus update. Communication and compute of
  // successive panels pipeline, so the step cost is max(comm, compute).
  net::CommModel comm(machine, machine.node.gpus_per_node);
  const double panel_bytes =
      static_cast<double>(local_n) * tuned.best.tile * 4.0;
  const double comm_s =
      2.0 * comm.bcast(panel_bytes, static_cast<int>(p));
  const double compute_s =
      tuned.best_seconds / (static_cast<double>(local_n) / tuned.best.tile);
  const double panels =
      static_cast<double>(n_vertices) / static_cast<double>(tuned.best.tile);

  ScaleResult r;
  r.devices = static_cast<int>(p * p);
  r.seconds = panels * std::max(comm_s, compute_s);
  const double dn = static_cast<double>(n_vertices);
  r.sustained_flops = 2.0 * dn * dn * dn / r.seconds;
  return r;
}

}  // namespace exa::apps::coast
