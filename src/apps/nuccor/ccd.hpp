#pragma once
/// \file ccd.hpp
/// A pairing-model coupled-cluster-doubles (CCD) solver written entirely
/// against the TensorBackend interface — the NuCCOR "science code depends
/// only on abstractions" pattern. The amplitude equations are the standard
/// matrix form of the pairing CCD problem: linear ladder terms plus the
/// quadratic term, solved by damped fixed-point iteration over the energy
/// denominators.

#include <cstddef>
#include <string>
#include <vector>

#include "apps/nuccor/backend.hpp"
#include "arch/gpu_arch.hpp"
#include "support/rng.hpp"

namespace exa::apps::nuccor {

/// The pairing-model interaction blocks.
struct PairingModel {
  std::size_t particles = 0;  ///< particle-pair states
  std::size_t holes = 0;      ///< hole-pair states
  std::vector<double> v_pp;   ///< (P x P)
  std::vector<double> v_hh;   ///< (H x H)
  std::vector<double> v_ph;   ///< (P x H)
  std::vector<double> denom;  ///< (P x H) energy denominators (negative)
};

/// Builds a well-conditioned pairing model (denominators bounded away
/// from zero, interaction strength g small enough to converge).
[[nodiscard]] PairingModel make_pairing_model(std::size_t particles,
                                              std::size_t holes, double g,
                                              support::Rng& rng);

struct CcdResult {
  double energy = 0.0;
  int iterations = 0;
  bool converged = false;
  double device_seconds = 0.0;  ///< virtual time charged by the plugin
};

/// Solves the CCD amplitude equations with the named backend plugin.
[[nodiscard]] CcdResult solve_ccd(const PairingModel& model,
                                  const std::string& backend_name,
                                  double tol = 1e-10, int max_iter = 500);

/// Analytic device time of one production-scale CCD iteration: the T2
/// amplitude tensor is (np^2 x nh^2) and the ladder/quadratic terms are
/// GEMMs over it (np_sp/nh_sp are single-particle basis sizes, e.g. 60
/// particle and 20 hole states for a medium-mass nucleus).
[[nodiscard]] double simulate_ccd_iteration_time(const arch::GpuArch& gpu,
                                                 std::size_t np_sp,
                                                 std::size_t nh_sp);

}  // namespace exa::apps::nuccor
