#include "apps/nuccor/ccd.hpp"

#include <cmath>

#include "mathlib/device_blas.hpp"
#include "sim/exec_model.hpp"
#include "support/assert.hpp"

namespace exa::apps::nuccor {

PairingModel make_pairing_model(std::size_t particles, std::size_t holes,
                                double g, support::Rng& rng) {
  EXA_REQUIRE(particles >= 1 && holes >= 1);
  PairingModel m;
  m.particles = particles;
  m.holes = holes;
  m.v_pp.resize(particles * particles);
  m.v_hh.resize(holes * holes);
  m.v_ph.resize(particles * holes);
  m.denom.resize(particles * holes);

  // Scale the pairing interaction with the basis size so the ladder
  // iteration matrix stays contractive (row sums below the denominator
  // magnitude) and the fixed-point solve converges for any model size.
  const double strength =
      g / static_cast<double>(particles + holes);
  auto fill_sym = [&rng, strength](std::vector<double>& v, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        const double x = -strength * (1.0 + 0.1 * rng.normal());
        v[i * n + j] = x;
        v[j * n + i] = x;
      }
    }
  };
  fill_sym(m.v_pp, particles);
  fill_sym(m.v_hh, holes);
  for (double& x : m.v_ph) x = -strength * (1.0 + 0.1 * rng.normal());

  // Pairing-model denominators: e_h - e_p, strictly negative and bounded
  // away from zero.
  for (std::size_t p = 0; p < particles; ++p) {
    for (std::size_t h = 0; h < holes; ++h) {
      m.denom[p * holes + h] =
          -(2.0 + 0.5 * static_cast<double>(p) + 0.5 * static_cast<double>(h));
    }
  }
  return m;
}

CcdResult solve_ccd(const PairingModel& model, const std::string& backend_name,
                    double tol, int max_iter) {
  const std::size_t P = model.particles;
  const std::size_t H = model.holes;
  std::unique_ptr<TensorBackend> backend =
      BackendFactory::instance().create(backend_name);

  std::vector<double> t(P * H, 0.0);
  std::vector<double> rhs(P * H);
  std::vector<double> tmp(P * H);
  std::vector<double> quad_hh(H * H);

  CcdResult result;
  double prev_energy = 0.0;
  for (int it = 1; it <= max_iter; ++it) {
    // rhs = V_ph
    rhs.assign(model.v_ph.begin(), model.v_ph.end());
    // + V_pp * T   (particle ladder)
    backend->contract(model.v_pp, t, rhs, P, H, P, 1.0, 1.0);
    // + T * V_hh   (hole ladder)
    backend->contract(t, model.v_hh, rhs, P, H, H, 1.0, 1.0);
    // + T * (V_ph^T * T)   (the quadratic term)
    // First quad_hh = V_ph^T * T  -> (H x H) via transpose trick.
    std::vector<double> v_ph_t(H * P);
    for (std::size_t p = 0; p < P; ++p) {
      for (std::size_t h = 0; h < H; ++h) {
        v_ph_t[h * P + p] = model.v_ph[p * H + h];
      }
    }
    backend->contract(v_ph_t, t, quad_hh, H, H, P, 1.0, 0.0);
    backend->contract(t, quad_hh, rhs, P, H, H, 1.0, 1.0);

    // T_new = rhs / denom, with damping for robustness.
    tmp = rhs;
    backend->scale_by_denominator(tmp, model.denom);
    constexpr double kDamping = 0.6;
    double delta2 = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const double next = (1.0 - kDamping) * t[i] + kDamping * tmp[i];
      delta2 += (next - t[i]) * (next - t[i]);
      t[i] = next;
    }

    result.energy = backend->dot(model.v_ph, t);
    result.iterations = it;
    if (std::sqrt(delta2) < tol &&
        std::fabs(result.energy - prev_energy) < tol) {
      result.converged = true;
      break;
    }
    prev_energy = result.energy;
  }
  result.device_seconds = backend->device_seconds();
  return result;
}

double simulate_ccd_iteration_time(const arch::GpuArch& gpu,
                                   std::size_t np_sp, std::size_t nh_sp) {
  EXA_REQUIRE(np_sp >= 2 && nh_sp >= 2);
  const std::size_t P = np_sp * np_sp;  // particle-pair dimension
  const std::size_t H = nh_sp * nh_sp;  // hole-pair dimension

  const auto gemm_time = [&gpu](std::size_t m, std::size_t n, std::size_t k) {
    const sim::KernelProfile p =
        ml::gemm_profile(gpu, arch::DType::kF64, /*matrix_cores=*/true, m, n,
                         k);
    sim::LaunchConfig launch;
    launch.block_threads = 256;
    launch.blocks = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(m) * n / 1024);
    return sim::kernel_timing(gpu, p, launch).total_s;
  };

  // Particle ladder V_pp T, hole ladder T V_hh, quadratic T (V^T T).
  double t = gemm_time(P, H, P);
  t += gemm_time(P, H, H);
  t += gemm_time(H, H, P) + gemm_time(P, H, H);
  // Denominator update: memory bound over the T2 tensor.
  sim::KernelProfile denom;
  denom.name = "t2_denominator";
  denom.add_flops(arch::DType::kF64, static_cast<double>(P * H));
  denom.bytes_read = 16.0 * static_cast<double>(P * H);
  denom.bytes_written = 8.0 * static_cast<double>(P * H);
  denom.memory_efficiency = 0.8;
  sim::LaunchConfig launch;
  launch.block_threads = 256;
  launch.blocks =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(P * H) / 1024);
  t += sim::kernel_timing(gpu, denom, launch).total_s;
  return t;
}

}  // namespace exa::apps::nuccor
