#pragma once
/// \file backend.hpp
/// NuCCOR's portability pattern (§3.7): "Portability is always handled
/// first by abstraction. We added support for new hardware, libraries,
/// and tools in plugins that implement a preexisting interface without
/// affecting the domain science code."
///
/// The domain code (ccd.hpp) is written against TensorBackend; concrete
/// plugins (host CPU, simulated CUDA device, simulated HIP device) are
/// registered with a factory by name. Adding an architecture is exactly
/// "creating the appropriate plugin and adding it to the factory".

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace exa::apps::nuccor {

/// The abstract interface the science code depends on.
class TensorBackend {
 public:
  virtual ~TensorBackend() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// C = alpha * A(m x k) * B(k x n) + beta * C, row-major.
  virtual void contract(std::span<const double> a, std::span<const double> b,
                        std::span<double> c, std::size_t m, std::size_t n,
                        std::size_t k, double alpha, double beta) = 0;

  /// Element-wise divide by an energy denominator (amplitude update).
  virtual void scale_by_denominator(std::span<double> t,
                                    std::span<const double> denom) = 0;

  /// Frobenius inner product <a, b> (for energies and convergence).
  [[nodiscard]] virtual double dot(std::span<const double> a,
                                   std::span<const double> b) = 0;

  /// Virtual device seconds this backend has charged (0 for host).
  [[nodiscard]] virtual double device_seconds() const { return 0.0; }
};

/// Factory registry keyed by plugin name.
class BackendFactory {
 public:
  using Creator = std::function<std::unique_ptr<TensorBackend>()>;

  static BackendFactory& instance();

  /// Registers a plugin; returns false if the name is taken.
  bool register_plugin(const std::string& name, Creator creator);
  [[nodiscard]] std::unique_ptr<TensorBackend> create(
      const std::string& name) const;
  [[nodiscard]] std::vector<std::string> available() const;

 private:
  BackendFactory();
  std::map<std::string, Creator> creators_;
};

/// Built-in plugin names.
inline constexpr const char* kCpuBackend = "cpu";
inline constexpr const char* kCudaBackend = "cuda";  ///< Summit plugin
inline constexpr const char* kHipBackend = "hip";    ///< Frontier plugin

}  // namespace exa::apps::nuccor
