#include "apps/nuccor/backend.hpp"

#include "arch/gpu_arch.hpp"
#include "mathlib/dense.hpp"
#include "mathlib/device_blas.hpp"
#include "sim/exec_model.hpp"
#include "support/assert.hpp"

namespace exa::apps::nuccor {

namespace {

/// Host plugin: the "minimal build where all GPU calls were made with
/// wrappers" — always available, used for validation.
class CpuBackend final : public TensorBackend {
 public:
  [[nodiscard]] std::string name() const override { return kCpuBackend; }

  void contract(std::span<const double> a, std::span<const double> b,
                std::span<double> c, std::size_t m, std::size_t n,
                std::size_t k, double alpha, double beta) override {
    ml::gemm<double>(a, b, c, m, n, k, alpha, beta);
  }

  void scale_by_denominator(std::span<double> t,
                            std::span<const double> denom) override {
    EXA_REQUIRE(t.size() == denom.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXA_REQUIRE(denom[i] != 0.0);
      t[i] /= denom[i];
    }
  }

  [[nodiscard]] double dot(std::span<const double> a,
                           std::span<const double> b) override {
    EXA_REQUIRE(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
  }
};

/// Simulated device plugin: same math as the CPU plugin (so results are
/// bit-comparable) plus virtual device time charged per operation through
/// the architecture model. The CUDA and HIP plugins differ only in the
/// device they model — which is the point of the pattern.
class DeviceBackend final : public TensorBackend {
 public:
  DeviceBackend(std::string plugin_name, arch::GpuArch gpu)
      : name_(std::move(plugin_name)), gpu_(std::move(gpu)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  void contract(std::span<const double> a, std::span<const double> b,
                std::span<double> c, std::size_t m, std::size_t n,
                std::size_t k, double alpha, double beta) override {
    ml::gemm<double>(a, b, c, m, n, k, alpha, beta);
    const sim::KernelProfile p =
        ml::gemm_profile(gpu_, arch::DType::kF64, /*matrix_cores=*/true, m, n, k);
    sim::LaunchConfig launch;
    launch.block_threads = 256;
    launch.blocks = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(m) * n / 1024);
    device_seconds_ += sim::kernel_timing(gpu_, p, launch).total_s;
  }

  void scale_by_denominator(std::span<double> t,
                            std::span<const double> denom) override {
    EXA_REQUIRE(t.size() == denom.size());
    for (std::size_t i = 0; i < t.size(); ++i) t[i] /= denom[i];
    sim::KernelProfile p;
    p.name = "denominator";
    p.add_flops(arch::DType::kF64, static_cast<double>(t.size()));
    p.bytes_read = 16.0 * static_cast<double>(t.size());
    p.bytes_written = 8.0 * static_cast<double>(t.size());
    sim::LaunchConfig launch;
    launch.block_threads = 256;
    launch.blocks =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(t.size()) / 1024);
    device_seconds_ += sim::kernel_timing(gpu_, p, launch).total_s;
  }

  [[nodiscard]] double dot(std::span<const double> a,
                           std::span<const double> b) override {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    const sim::KernelProfile p = ml::reduce_profile(gpu_, a.size(), 8);
    sim::LaunchConfig launch;
    launch.block_threads = 256;
    launch.blocks =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(a.size()) / 1024);
    device_seconds_ += sim::kernel_timing(gpu_, p, launch).total_s;
    return s;
  }

  [[nodiscard]] double device_seconds() const override {
    return device_seconds_;
  }

 private:
  std::string name_;
  arch::GpuArch gpu_;
  double device_seconds_ = 0.0;
};

}  // namespace

BackendFactory::BackendFactory() {
  register_plugin(kCpuBackend, [] { return std::make_unique<CpuBackend>(); });
  register_plugin(kCudaBackend, [] {
    return std::make_unique<DeviceBackend>(kCudaBackend, arch::v100());
  });
  register_plugin(kHipBackend, [] {
    return std::make_unique<DeviceBackend>(kHipBackend, arch::mi250x_gcd());
  });
}

BackendFactory& BackendFactory::instance() {
  static BackendFactory factory;
  return factory;
}

bool BackendFactory::register_plugin(const std::string& name,
                                     Creator creator) {
  return creators_.emplace(name, std::move(creator)).second;
}

std::unique_ptr<TensorBackend> BackendFactory::create(
    const std::string& name) const {
  const auto it = creators_.find(name);
  EXA_REQUIRE_MSG(it != creators_.end(), "unknown backend plugin: " + name);
  return it->second();
}

std::vector<std::string> BackendFactory::available() const {
  std::vector<std::string> names;
  names.reserve(creators_.size());
  for (const auto& [name, creator] : creators_) names.push_back(name);
  return names;
}

}  // namespace exa::apps::nuccor
