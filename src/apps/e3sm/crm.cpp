#include "apps/e3sm/crm.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace exa::apps::e3sm {

std::vector<sim::KernelProfile> physics_pipeline(std::size_t columns) {
  EXA_REQUIRE(columns >= 1);
  const double c = static_cast<double>(columns);
  std::vector<sim::KernelProfile> p;

  auto add = [&](const char* name, double flops_per_col, double bytes_per_col,
                 int regs) {
    sim::KernelProfile k;
    k.name = name;
    k.add_flops(arch::DType::kF64, flops_per_col * c);
    k.bytes_read = bytes_per_col * c * 0.7;
    k.bytes_written = bytes_per_col * c * 0.3;
    k.registers_per_thread = regs;
    k.compute_efficiency = 0.5;
    k.memory_efficiency = 0.75;
    p.push_back(k);
  };

  // Two big dynamics kernels (WENO-flavored: high arithmetic intensity,
  // heavy registers — the fission candidates).
  add("crm_dycore_x", 9.0e4, 800.0, 320);
  add("crm_dycore_z", 9.0e4, 800.0, 320);
  // A dozen small physics fixups (the fusion candidates).
  add("sgs_diffuse", 1.5e3, 160.0, 48);
  add("micro_autoconv", 1.2e3, 120.0, 56);
  add("micro_accrete", 1.0e3, 120.0, 52);
  add("micro_evap", 9.0e2, 110.0, 44);
  add("sat_adjust", 8.0e2, 96.0, 40);
  add("rad_flux_up", 1.4e3, 140.0, 60);
  add("rad_flux_dn", 1.4e3, 140.0, 60);
  add("sfc_fluxes", 6.0e2, 80.0, 36);
  add("apply_tend_t", 3.0e2, 64.0, 24);
  add("apply_tend_q", 3.0e2, 64.0, 24);
  add("clip_negative", 2.0e2, 48.0, 20);
  add("diagnostics", 5.0e2, 96.0, 32);
  return p;
}

std::vector<sim::LaunchConfig> pipeline_launches(std::size_t columns) {
  // Work items are (column, level) pairs: the CRM's vertical dimension is
  // parallel too, so even strong-scaled column counts launch wide grids.
  constexpr std::size_t kLevels = 64;
  const std::size_t n = physics_pipeline(columns).size();
  sim::LaunchConfig cfg;
  cfg.block_threads = 128;
  cfg.blocks = std::max<std::uint64_t>(1, columns * kLevels / 128);
  return std::vector<sim::LaunchConfig>(n, cfg);
}

sim::KernelProfile fuse(std::span<const sim::KernelProfile> kernels) {
  EXA_REQUIRE(!kernels.empty());
  sim::KernelProfile out = kernels.front();
  out.name = "fused";
  int max_regs = 0;
  int sum_regs = 0;
  out.work.clear();
  out.bytes_read = 0.0;
  out.bytes_written = 0.0;
  out.lds_per_block_bytes = 0;
  for (const auto& k : kernels) {
    for (const auto& w : k.work) out.work.push_back(w);
    out.bytes_read += k.bytes_read;
    out.bytes_written += k.bytes_written;
    out.lds_per_block_bytes += k.lds_per_block_bytes;
    max_regs = std::max(max_regs, k.registers_per_thread);
    sum_regs += k.registers_per_thread;
    out.name += "+" + k.name;
  }
  // Live ranges of the fused stages partially overlap: the hottest stage
  // dominates, the rest contribute a fraction of their pressure.
  out.registers_per_thread =
      max_regs + static_cast<int>(0.25 * (sum_regs - max_regs));
  // Fusion also removes intermediate global-memory round-trips between
  // stages: values stay in registers.
  out.bytes_read *= 0.7;
  out.bytes_written *= 0.7;
  return out;
}

std::vector<sim::KernelProfile> fission(const sim::KernelProfile& kernel,
                                        int parts) {
  EXA_REQUIRE(parts >= 1);
  std::vector<sim::KernelProfile> out;
  out.reserve(static_cast<std::size_t>(parts));
  for (int i = 0; i < parts; ++i) {
    sim::KernelProfile piece = kernel;
    piece.name = kernel.name + "_part" + std::to_string(i);
    for (auto& w : piece.work) w.flops /= parts;
    piece.bytes_read /= parts;
    piece.bytes_written /= parts;
    // Shorter live ranges need fewer registers, but stage boundaries must
    // re-load state, so pressure does not divide linearly.
    piece.registers_per_thread = std::max(
        48, static_cast<int>(kernel.registers_per_thread / std::sqrt(2.0 * parts) +
                             16));
    // The split stages spill intermediates to global memory.
    piece.bytes_read *= 1.15;
    piece.bytes_written *= 1.15;
    out.push_back(std::move(piece));
  }
  return out;
}

std::vector<sim::KernelProfile> optimize_pipeline(
    const arch::GpuArch& gpu, std::vector<sim::KernelProfile> pipeline) {
  std::vector<sim::KernelProfile> out;
  std::vector<sim::KernelProfile> run;

  auto flush_run = [&] {
    if (run.empty()) return;
    if (run.size() == 1) out.push_back(run.front());
    else out.push_back(fuse(run));
    run.clear();
  };

  for (auto& k : pipeline) {
    // Spilling kernel: fission until it fits.
    if (k.registers_per_thread > gpu.max_registers_per_thread) {
      flush_run();
      int parts = 2;
      std::vector<sim::KernelProfile> pieces = fission(k, parts);
      while (pieces.front().registers_per_thread >
                 gpu.max_registers_per_thread &&
             parts < 16) {
        parts *= 2;
        pieces = fission(k, parts);
      }
      for (auto& piece : pieces) out.push_back(std::move(piece));
      continue;
    }
    // Small kernel: try appending to the current fusion run.
    std::vector<sim::KernelProfile> candidate = run;
    candidate.push_back(k);
    const int fused_regs =
        candidate.size() == 1 ? k.registers_per_thread
                              : fuse(candidate).registers_per_thread;
    if (fused_regs <= gpu.max_registers_per_thread) {
      run.push_back(k);
    } else {
      flush_run();
      run.push_back(k);
    }
  }
  flush_run();
  return out;
}

double run_pipeline(const arch::GpuArch& gpu,
                    std::span<const sim::KernelProfile> kernels,
                    std::span<const sim::LaunchConfig> launches,
                    LaunchMode mode, sim::AllocMode alloc_mode,
                    int temp_allocs_per_step) {
  EXA_REQUIRE(!kernels.empty());
  sim::DeviceSim dev(gpu);
  if (alloc_mode == sim::AllocMode::kPooled) {
    dev.set_alloc_mode(sim::AllocMode::kPooled, 1ull << 30);
  }
  const double t0 = dev.host_now();

  // Per-step temporaries (the pool-allocator story).
  std::vector<void*> temps;
  temps.reserve(static_cast<std::size_t>(temp_allocs_per_step));
  for (int i = 0; i < temp_allocs_per_step; ++i) {
    temps.push_back(dev.malloc_device(1 << 20));
  }

  const sim::LaunchConfig fallback =
      launches.empty() ? sim::LaunchConfig{} : launches.front();
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const sim::LaunchConfig cfg = i < launches.size() ? launches[i] : fallback;
    dev.launch(0, kernels[i], cfg);
    if (mode == LaunchMode::kSyncEachKernel) dev.synchronize(0);
  }
  dev.synchronize_all();

  for (void* t : temps) dev.free_device(t);
  return dev.host_now() - t0;
}

double saturation_vapor(double temperature_k) {
  // Tetens-style saturation mixing ratio (arbitrary pressure scaling,
  // monotone in T — all the tests need).
  const double t_c = temperature_k - 273.15;
  return 0.622 * 0.611 * std::exp(17.27 * t_c / (t_c + 237.3)) / 100.0;
}

void saturation_adjust(ColumnState& state, double latent_factor) {
  const std::size_t n = state.temperature.size();
  EXA_REQUIRE(state.vapor.size() == n && state.cloud.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    const double qsat = saturation_vapor(state.temperature[i]);
    if (state.vapor[i] > qsat) {
      const double condensed = state.vapor[i] - qsat;
      state.vapor[i] = qsat;
      state.cloud[i] += condensed;
      state.temperature[i] += latent_factor * condensed * 100.0;
    }
  }
}

}  // namespace exa::apps::e3sm
