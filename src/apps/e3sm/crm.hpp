#pragma once
/// \file crm.hpp
/// E3SM-MMF (§3.5): the cloud-resolving-model latency playbook.
///
/// The MMF's strong-scaled physics pipeline launches many tiny kernels, so
/// it is "highly sensitive to latency, and particularly allocations,
/// deallocations, and kernel launches". This module implements the three
/// optimization strategies as explicit transforms over kernel profiles:
///  * **fusion** of small kernels (fewer launch overheads, summed register
///    pressure),
///  * **fission** of register-heavy kernels until spills disappear (more
///    launches, cheaper kernels),
///  * **asynchronous same-stream launching** so kernel execution overlaps
///    later launch overheads,
/// plus the YAKL-style pool allocator comparison for per-step temporaries.
/// A small real column-physics kernel (saturation adjustment) keeps the
/// pipeline functionally testable.

#include <span>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "sim/device_sim.hpp"
#include "sim/kernel_profile.hpp"

namespace exa::apps::e3sm {

/// The MMF physics pipeline: a sequence of kernels with realistic
/// heterogeneity (a few big dynamics kernels, many small fixups).
/// `columns` scales the launch widths (strong scaling shrinks it).
[[nodiscard]] std::vector<sim::KernelProfile> physics_pipeline(
    std::size_t columns);
[[nodiscard]] std::vector<sim::LaunchConfig> pipeline_launches(
    std::size_t columns);

/// Fuses a run of kernels into one: flops/bytes add, register pressure is
/// the maximum plus a live-range overlap tax, LDS adds, launch count drops
/// to one. Fusing past the register file provokes spills — the tension
/// §3.5 describes.
[[nodiscard]] sim::KernelProfile fuse(
    std::span<const sim::KernelProfile> kernels);

/// Splits a kernel into `parts` pieces: work divides, register pressure
/// falls (shorter live ranges) but never below a floor, launches multiply.
[[nodiscard]] std::vector<sim::KernelProfile> fission(
    const sim::KernelProfile& kernel, int parts);

/// Greedy fusion plan: fuse adjacent kernels while the fused register
/// count stays spill-free on `gpu`; fission any kernel that spills.
[[nodiscard]] std::vector<sim::KernelProfile> optimize_pipeline(
    const arch::GpuArch& gpu, std::vector<sim::KernelProfile> pipeline);

/// How the host drives the pipeline.
enum class LaunchMode {
  kSyncEachKernel,  ///< hipDeviceSynchronize after every launch
  kAsyncSameStream, ///< queue everything, synchronize once (§3.5)
};

/// Executes the pipeline on a fresh DeviceSim and returns the virtual
/// elapsed time, including `temp_allocs` per-step temporary allocations
/// under the selected allocation mode.
[[nodiscard]] double run_pipeline(const arch::GpuArch& gpu,
                                  std::span<const sim::KernelProfile> kernels,
                                  std::span<const sim::LaunchConfig> launches,
                                  LaunchMode mode, sim::AllocMode alloc_mode,
                                  int temp_allocs_per_step = 0);

/// Real column physics for tests: saturation adjustment — condense vapor
/// above saturation into cloud water, conserving total water and warming
/// by the latent heat. Arrays are per-column.
struct ColumnState {
  std::vector<double> temperature;  ///< K
  std::vector<double> vapor;        ///< kg/kg
  std::vector<double> cloud;        ///< kg/kg
};
void saturation_adjust(ColumnState& state, double latent_factor = 2.5);
/// Saturation mixing ratio used by saturation_adjust (Tetens-flavored).
[[nodiscard]] double saturation_vapor(double temperature_k);

}  // namespace exa::apps::e3sm
