#include "apps/e3sm/dycore.hpp"

#include <cmath>
#include <numbers>

#include "pfw/parallel.hpp"
#include "support/assert.hpp"

namespace exa::apps::e3sm {

Dycore::Dycore(std::size_t nx, std::size_t nz, double dt)
    : nx_(nx),
      nz_(nz),
      dt_(dt),
      q_("tracer", nx, nz),
      u_("u", nx, nz),
      w_("w", nx, nz),
      fx_("flux_x", nx, nz),
      fz_("flux_z", nx, nz + 1),
      qnew_("tracer_new", nx, nz) {
  EXA_REQUIRE(nx >= 4 && nz >= 4);
  EXA_REQUIRE_MSG(dt > 0.0 && dt < 0.45, "CFL: dt must be < 0.45");
  // A fixed swirling, divergence-light velocity field with |u|,|w| <= 1.
  for (std::size_t i = 0; i < nx_; ++i) {
    for (std::size_t k = 0; k < nz_; ++k) {
      const double x = (static_cast<double>(i) + 0.5) / static_cast<double>(nx_);
      const double z = (static_cast<double>(k) + 0.5) / static_cast<double>(nz_);
      u_(i, k) = 0.8 * std::cos(std::numbers::pi * (z - 0.5));
      w_(i, k) = 0.4 * std::sin(2.0 * std::numbers::pi * x) *
                 std::sin(std::numbers::pi * z);
    }
  }
}

void Dycore::init_blob(double cx_frac, double cz_frac, double radius_frac) {
  const double cx = cx_frac * static_cast<double>(nx_);
  const double cz = cz_frac * static_cast<double>(nz_);
  const double r = radius_frac * static_cast<double>(nx_);
  for (std::size_t i = 0; i < nx_; ++i) {
    for (std::size_t k = 0; k < nz_; ++k) {
      const double dx = (static_cast<double>(i) + 0.5) - cx;
      const double dz = (static_cast<double>(k) + 0.5) - cz;
      const double dist = std::sqrt(dx * dx + dz * dz);
      q_(i, k) = dist < r
                     ? 0.5 * (1.0 + std::cos(std::numbers::pi * dist / r))
                     : 0.0;
    }
  }
}

double Dycore::flux_x(std::size_t face_i, std::size_t k) const {
  // Face between cell (face_i - 1, k) and (face_i, k), periodic.
  const std::size_t left = (face_i + nx_ - 1) % nx_;
  const double uf = 0.5 * (u_(left, k) + u_(face_i, k));
  return uf >= 0.0 ? uf * q_(left, k) : uf * q_(face_i, k);
}

double Dycore::flux_z(std::size_t i, std::size_t face_k) const {
  // Face below cell (i, face_k); rigid walls at face 0 and face nz.
  if (face_k == 0 || face_k == nz_) return 0.0;
  const double wf = 0.5 * (w_(i, face_k - 1) + w_(i, face_k));
  return wf >= 0.0 ? wf * q_(i, face_k - 1) : wf * q_(i, face_k);
}

void Dycore::step_split() {
  const std::size_t nx = nx_, nz = nz_;
  pfw::WorkCost flux_cost{12.0, 32.0, 8.0, 40, 0.0};
  // Chunked bodies: each cell writes only its own flux/tracer entry, so
  // the per-chunk inner loops stay bitwise identical to per-index dispatch.
  pfw::parallel_for_chunks(
      "dycore_flux_x", nx * nz,
      [this, nz](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          fx_(idx / nz, idx % nz) = flux_x(idx / nz, idx % nz);
        }
      },
      flux_cost);
  pfw::parallel_for_chunks(
      "dycore_flux_z", nx * (nz + 1),
      [this, nz](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          fz_(idx / (nz + 1), idx % (nz + 1)) =
              flux_z(idx / (nz + 1), idx % (nz + 1));
        }
      },
      flux_cost);
  pfw::parallel_for_chunks(
      "dycore_update", nx * nz,
      [this, nx, nz](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::size_t i = idx / nz;
          const std::size_t k = idx % nz;
          const double div = (fx_((i + 1) % nx, k) - fx_(i, k)) +
                             (fz_(i, k + 1) - fz_(i, k));
          qnew_(i, k) = q_(i, k) - dt_ * div;
        }
      },
      pfw::WorkCost{8.0, 48.0, 8.0, 32, 0.0});
  pfw::deep_copy(qnew_, q_);
  pfw::fence();
  last_kernels_ = 3;
}

void Dycore::step_fused() {
  const std::size_t nx = nx_, nz = nz_;
  pfw::parallel_for(
      "dycore_fused", nx * nz,
      [this, nx, nz](std::size_t idx) {
        const std::size_t i = idx / nz;
        const std::size_t k = idx % nz;
        // Face fluxes recomputed in registers: more flops, no flux arrays.
        const double div = (flux_x((i + 1) % nx, k) - flux_x(i, k)) +
                           (flux_z(i, k + 1) - flux_z(i, k));
        qnew_(i, k) = q_(i, k) - dt_ * div;
      },
      pfw::WorkCost{40.0, 40.0, 8.0, 72, 0.0});
  pfw::deep_copy(qnew_, q_);
  pfw::fence();
  last_kernels_ = 1;
}

double Dycore::total_mass() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < nx_; ++i) {
    for (std::size_t k = 0; k < nz_; ++k) sum += q_(i, k);
  }
  return sum;
}

double Dycore::min_value() const {
  double lo = q_(0, 0);
  for (std::size_t i = 0; i < nx_; ++i) {
    for (std::size_t k = 0; k < nz_; ++k) lo = std::min(lo, q_(i, k));
  }
  return lo;
}

}  // namespace exa::apps::e3sm
