#pragma once
/// \file dycore.hpp
/// A miniWeather-flavored 2-D finite-volume advection dycore written on
/// the pfw portability framework — the functional half of the E3SM §3.5
/// story. Upwind fluxes, periodic in x, rigid (zero-flux) top and bottom.
///
/// Two execution schedules compute *bitwise identical* states:
///  * split: three kernels per step (x-fluxes, z-fluxes, update) with
///    flux temporaries round-tripping through memory;
///  * fused: one kernel recomputing face fluxes in registers — more
///    flops, fewer launches, less traffic (the fusion tradeoff).

#include <cstddef>

#include "pfw/view.hpp"

namespace exa::apps::e3sm {

class Dycore {
 public:
  /// Grid of nx x nz cells; dt must satisfy the CFL bound for the built-in
  /// swirling velocity field (|u|,|w| <= 1).
  Dycore(std::size_t nx, std::size_t nz, double dt);

  /// Initializes the tracer with a smooth blob (cosine bump).
  void init_blob(double cx_frac = 0.5, double cz_frac = 0.5,
                 double radius_frac = 0.2);

  /// One step via three kernels (flux_x, flux_z, update).
  void step_split();
  /// One step via a single fused kernel. Identical result.
  void step_fused();

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const pfw::View<double>& tracer() const { return q_; }
  [[nodiscard]] double total_mass() const;
  [[nodiscard]] double min_value() const;
  [[nodiscard]] int kernels_launched_last_step() const { return last_kernels_; }

 private:
  [[nodiscard]] double flux_x(std::size_t face_i, std::size_t k) const;
  [[nodiscard]] double flux_z(std::size_t i, std::size_t face_k) const;

  std::size_t nx_, nz_;
  double dt_;
  pfw::View<double> q_;    ///< (nx, nz) tracer
  pfw::View<double> u_;    ///< (nx, nz) x-velocity at cell centers
  pfw::View<double> w_;    ///< (nx, nz) z-velocity at cell centers
  pfw::View<double> fx_;   ///< (nx, nz) x-face fluxes (face i-1/2 of cell i)
  pfw::View<double> fz_;   ///< (nx, nz+1) z-face fluxes
  pfw::View<double> qnew_;
  int last_kernels_ = 0;
};

}  // namespace exa::apps::e3sm
