#pragma once
/// \file chemistry.hpp
/// Pele's chemistry substrate (§3.8): a skeletal H2-O2 kinetics mechanism
/// with two integration strategies —
///  * *pointwise explicit* (the historical approach: each cell integrated
///    independently with a small explicit method), and
///  * *batched implicit* (the CVODE-style optimization: all cells of a box
///    assembled into one large system, advanced with backward-Euler Newton
///    iterations and batched dense linear solves).
///
/// The kinetics are real (mass action, element-conserving), so tests can
/// assert conservation, integrator agreement, and approach to equilibrium.

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace exa::apps::pele {

/// Species of the skeletal mechanism.
enum Species : std::size_t { kH2 = 0, kO2, kH2O, kH, kO, kOH, kNumSpecies };

[[nodiscard]] std::string species_name(std::size_t s);

using Conc = std::array<double, kNumSpecies>;  ///< molar concentrations

/// One irreversible elementary reaction with integer stoichiometry.
struct Reaction {
  double rate_constant = 0.0;                  ///< isothermal k
  std::array<int, kNumSpecies> reactants{};    ///< stoichiometric coefficients
  std::array<int, kNumSpecies> products{};
};

/// The skeletal H2-O2 mechanism (5 reactions, element conserving, stiff:
/// rate constants span ~6 orders of magnitude).
[[nodiscard]] const std::vector<Reaction>& mechanism();

/// Molar production rates wdot(c) by mass action.
void production_rates(const Conc& c, Conc& wdot);

/// Dense finite-difference Jacobian d wdot / d c (row-major NS x NS).
void jacobian_fd(const Conc& c, std::span<double> jac);

/// Element totals (H, O atom counts) — conserved by the mechanism.
struct Elements {
  double h = 0.0;
  double o = 0.0;
};
[[nodiscard]] Elements element_totals(const Conc& c);

/// A fresh stoichiometric-ish mixture (H2:O2 = 2:1 plus radicals seed).
[[nodiscard]] Conc ignition_mixture();

// --- integrators -------------------------------------------------------------

struct IntegrateStats {
  std::uint64_t rhs_evals = 0;
  std::uint64_t jacobian_evals = 0;
  std::uint64_t linear_solves = 0;
  std::uint64_t newton_iters = 0;
};

/// Pointwise explicit RK4 with fixed substeps per cell.
IntegrateStats integrate_rk4_pointwise(std::span<Conc> cells, double dt,
                                       int substeps);

/// Batched backward Euler: every cell advanced with Newton iterations; the
/// per-cell dense linear solves are batched (one LU per cell per Newton
/// iteration, executed as a batch as MAGMA does for PeleLM(eX)).
IntegrateStats integrate_be_batched(std::span<Conc> cells, double dt,
                                    double newton_tol = 1e-12,
                                    int max_newton = 25);

}  // namespace exa::apps::pele
