#include "apps/pele/amr.hpp"

#include <algorithm>
#include <cstdint>

#include "support/assert.hpp"

namespace exa::apps::pele {

BoxGrid::BoxGrid(std::size_t boxes_per_edge, std::size_t cells_per_box,
                 std::size_t ghost)
    : bx_(boxes_per_edge), n_(cells_per_box), g_(ghost) {
  EXA_REQUIRE(bx_ >= 1 && n_ >= 2 && g_ >= 1 && g_ <= n_);
  boxes_.resize(bx_ * bx_ * bx_);
  for (std::size_t i = 0; i < bx_; ++i) {
    for (std::size_t j = 0; j < bx_; ++j) {
      for (std::size_t k = 0; k < bx_; ++k) {
        Box& b = box(i, j, k);
        b.n = n_;
        b.ghost = g_;
        b.ix = i;
        b.iy = j;
        b.iz = k;
        b.data.assign(b.stride() * b.stride() * b.stride(), 0.0);
      }
    }
  }
}

Box& BoxGrid::box(std::size_t i, std::size_t j, std::size_t k) {
  EXA_REQUIRE(i < bx_ && j < bx_ && k < bx_);
  return boxes_[(i * bx_ + j) * bx_ + k];
}

const Box& BoxGrid::box(std::size_t i, std::size_t j, std::size_t k) const {
  EXA_REQUIRE(i < bx_ && j < bx_ && k < bx_);
  return boxes_[(i * bx_ + j) * bx_ + k];
}

void BoxGrid::fill(
    const std::function<double(std::size_t, std::size_t, std::size_t)>& f) {
  for (Box& b : boxes_) {
    for (std::size_t x = 0; x < n_; ++x) {
      for (std::size_t y = 0; y < n_; ++y) {
        for (std::size_t z = 0; z < n_; ++z) {
          b.at(x + g_, y + g_, z + g_) =
              f(b.ix * n_ + x, b.iy * n_ + y, b.iz * n_ + z);
        }
      }
    }
  }
}

void BoxGrid::exchange_ghosts() {
  const std::size_t s = n_ + 2 * g_;
  // For each box, fill ghosts from neighbors (or replicate at the domain
  // boundary). Loop over the full ghost-inclusive index space; interior
  // indices are skipped.
  for (Box& b : boxes_) {
    for (std::size_t x = 0; x < s; ++x) {
      for (std::size_t y = 0; y < s; ++y) {
        for (std::size_t z = 0; z < s; ++z) {
          const bool interior = x >= g_ && x < n_ + g_ && y >= g_ &&
                                y < n_ + g_ && z >= g_ && z < n_ + g_;
          if (interior) continue;
          // Global cell coordinates this ghost cell refers to (signed).
          auto global_of = [&](std::size_t local, std::size_t bcoord) {
            return static_cast<long>(bcoord * n_) + static_cast<long>(local) -
                   static_cast<long>(g_);
          };
          long gx = global_of(x, b.ix);
          long gy = global_of(y, b.iy);
          long gz = global_of(z, b.iz);
          const long max = static_cast<long>(bx_ * n_) - 1;
          gx = std::clamp(gx, 0L, max);
          gy = std::clamp(gy, 0L, max);
          gz = std::clamp(gz, 0L, max);
          const Box& src = box(static_cast<std::size_t>(gx) / n_,
                               static_cast<std::size_t>(gy) / n_,
                               static_cast<std::size_t>(gz) / n_);
          b.at(x, y, z) =
              src.at(static_cast<std::size_t>(gx) % n_ + g_,
                     static_cast<std::size_t>(gy) % n_ + g_,
                     static_cast<std::size_t>(gz) % n_ + g_);
        }
      }
    }
  }
}

void BoxGrid::stencil_step(double alpha) {
  for (Box& b : boxes_) {
    Box next = b;
    for (std::size_t x = g_; x < n_ + g_; ++x) {
      for (std::size_t y = g_; y < n_ + g_; ++y) {
        for (std::size_t z = g_; z < n_ + g_; ++z) {
          const double lap = b.at(x - 1, y, z) + b.at(x + 1, y, z) +
                             b.at(x, y - 1, z) + b.at(x, y + 1, z) +
                             b.at(x, y, z - 1) + b.at(x, y, z + 1) -
                             6.0 * b.at(x, y, z);
          next.at(x, y, z) = b.at(x, y, z) + alpha * lap;
        }
      }
    }
    b = std::move(next);
  }
}

std::vector<double> BoxGrid::flatten() const {
  const std::size_t N = domain_cells();
  std::vector<double> out(N * N * N);
  for (const Box& b : boxes_) {
    for (std::size_t x = 0; x < n_; ++x) {
      for (std::size_t y = 0; y < n_; ++y) {
        for (std::size_t z = 0; z < n_; ++z) {
          out[((b.ix * n_ + x) * N + (b.iy * n_ + y)) * N + (b.iz * n_ + z)] =
              b.at(x + g_, y + g_, z + g_);
        }
      }
    }
  }
  return out;
}

double BoxGrid::ghost_bytes_per_exchange() const {
  // Six faces per box, each n^2 * g cells of 8 bytes.
  const double face = static_cast<double>(n_) * static_cast<double>(n_) *
                      static_cast<double>(g_) * 8.0;
  return 6.0 * face * static_cast<double>(box_count());
}

void reference_stencil_step(std::vector<double>& field, std::size_t n,
                            double alpha) {
  EXA_REQUIRE(field.size() >= n * n * n);
  std::vector<double> next(field.size());
  auto at = [&](long x, long y, long z) {
    const long m = static_cast<long>(n) - 1;
    x = std::clamp(x, 0L, m);
    y = std::clamp(y, 0L, m);
    z = std::clamp(z, 0L, m);
    return field[(static_cast<std::size_t>(x) * n +
                  static_cast<std::size_t>(y)) *
                     n +
                 static_cast<std::size_t>(z)];
  };
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t z = 0; z < n; ++z) {
        const auto lx = static_cast<long>(x);
        const auto ly = static_cast<long>(y);
        const auto lz = static_cast<long>(z);
        const double lap = at(lx - 1, ly, lz) + at(lx + 1, ly, lz) +
                           at(lx, ly - 1, lz) + at(lx, ly + 1, lz) +
                           at(lx, ly, lz - 1) + at(lx, ly, lz + 1) -
                           6.0 * at(lx, ly, lz);
        next[(x * n + y) * n + z] = at(lx, ly, lz) + alpha * lap;
      }
    }
  }
  field = std::move(next);
}

EbFlags make_sphere_eb(std::size_t n, double radius_fraction) {
  EXA_REQUIRE(n >= 2);
  EXA_REQUIRE(radius_fraction > 0.0 && radius_fraction < 1.0);
  EbFlags eb;
  eb.covered.assign(n * n * n, 0);
  const double c = 0.5 * static_cast<double>(n - 1);
  const double r = radius_fraction * 0.5 * static_cast<double>(n);
  const double r2 = r * r;
  auto idx = [n](std::size_t x, std::size_t y, std::size_t z) {
    return (x * n + y) * n + z;
  };
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t z = 0; z < n; ++z) {
        const double dx = static_cast<double>(x) - c;
        const double dy = static_cast<double>(y) - c;
        const double dz = static_cast<double>(z) - c;
        eb.covered[idx(x, y, z)] = (dx * dx + dy * dy + dz * dz <= r2) ? 1 : 0;
      }
    }
  }
  // Cut cells: uncovered cells with at least one covered face neighbor.
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t z = 0; z < n; ++z) {
        if (eb.covered[idx(x, y, z)]) continue;
        bool cut = false;
        auto check = [&](long xx, long yy, long zz) {
          if (xx < 0 || yy < 0 || zz < 0 || xx >= static_cast<long>(n) ||
              yy >= static_cast<long>(n) || zz >= static_cast<long>(n)) {
            return;
          }
          if (eb.covered[idx(static_cast<std::size_t>(xx),
                             static_cast<std::size_t>(yy),
                             static_cast<std::size_t>(zz))]) {
            cut = true;
          }
        };
        const auto lx = static_cast<long>(x);
        const auto ly = static_cast<long>(y);
        const auto lz = static_cast<long>(z);
        check(lx - 1, ly, lz);
        check(lx + 1, ly, lz);
        check(lx, ly - 1, lz);
        check(lx, ly + 1, lz);
        check(lx, ly, lz - 1);
        check(lx, ly, lz + 1);
        if (cut) ++eb.cut_cells;
      }
    }
  }
  return eb;
}

}  // namespace exa::apps::pele
